(* Incremental (ECO) re-decomposition: edit scripts, session
   persistence, and the bit-identity contract of
   [Decomposer.redecompose] against a cold run on the edited layout. *)

module D = Mpl.Decomposer
module E = Mpl.Eco
module Rect = Mpl_geometry.Rect
module Polygon = Mpl_geometry.Polygon
module Layout = Mpl_layout.Layout
module Layout_io = Mpl_layout.Layout_io
module Benchgen = Mpl_layout.Benchgen

let min_s = 80 (* quadruple patterning radius for the default tech *)

let params ?(jobs = 1) ?(cache = false) ?(cache_warm = false) () =
  {
    D.default_params with
    D.jobs;
    cache;
    cache_warm;
    solver_budget_s = 0. (* unlimited: keep exact runs deterministic *);
  }

let algo = D.Exact

let decompose_with p layout = D.decompose ~params:p ~min_s algo layout

let session_of p layout =
  let g, rep = decompose_with p layout in
  (D.snapshot ~params:p ~min_s algo g layout rep, rep)

let redecompose_exn p prev edits =
  match D.redecompose ~params:p ~prev ~edits algo with
  | Ok r -> r
  | Error m -> Alcotest.failf "redecompose failed: %s" m

(* ------------------------------------------------------------------ *)
(* Edit scripts *)

let test_edit_roundtrip () =
  let edits =
    [
      E.Move { index = 3; dx = -40; dy = 20 };
      E.Remove 7;
      E.Add
        (Polygon.of_rects
           [
             Rect.make ~x0:0 ~y0:0 ~x1:20 ~y1:60;
             Rect.make ~x0:20 ~y0:40 ~x1:80 ~y1:60;
           ]);
    ]
  in
  match E.parse_edits (E.edits_to_string edits) with
  | Error m -> Alcotest.failf "parse failed: %s" m
  | Ok back ->
    Alcotest.(check string)
      "edit scripts round-trip" (E.edits_to_string edits)
      (E.edits_to_string back)

let test_edit_errors () =
  let bad s =
    match E.parse_edits s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "expected parse error for %S" s
  in
  bad "MOVE 1 2";
  bad "REMOVE x";
  bad "ADD 1 0 0 10";
  bad "ADD 1 10 10 0 0";
  bad "FROB 1";
  (* apply-time validation *)
  let layout =
    Layout.make Layout.default_tech
      [ Polygon.of_rect (Rect.make ~x0:0 ~y0:0 ~x1:20 ~y1:20) ]
  in
  let bad_apply edits =
    match E.apply layout edits with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail "expected apply error"
  in
  bad_apply [ E.Remove 1 ];
  bad_apply [ E.Remove (-1) ];
  bad_apply [ E.Remove 0; E.Move { index = 0; dx = 5; dy = 0 } ]

let test_apply_mapping () =
  let feat x = Polygon.of_rect (Rect.make ~x0:x ~y0:0 ~x1:(x + 20) ~y1:20) in
  let layout = Layout.make Layout.default_tech [ feat 0; feat 500; feat 1000 ] in
  match
    E.apply layout
      [ E.Remove 1; E.Add (feat 2000); E.Move { index = 2; dx = 0; dy = 40 } ]
  with
  | Error m -> Alcotest.fail m
  | Ok (edited, new_of_old) ->
    Alcotest.(check int) "feature count" 3 (Array.length edited.Layout.features);
    Alcotest.(check (array (option int)))
      "survivors keep order, adds append"
      [| Some 0; None; Some 1 |] new_of_old;
    let bb = Polygon.bbox edited.Layout.features.(1) in
    Alcotest.(check int) "move translated geometry" 40 bb.Rect.y0

(* ------------------------------------------------------------------ *)
(* Session persistence *)

let test_session_roundtrip () =
  let layout = Benchgen.circuit "C432" in
  let s, _rep = session_of (params ()) layout in
  let path = Filename.temp_file "mpld-eco" ".session" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      E.save s path;
      let s' = E.load path in
      Alcotest.(check string) "layout text" s.E.layout_text s'.E.layout_text;
      Alcotest.(check string) "hash" s.E.layout_hash s'.E.layout_hash;
      Alcotest.(check int) "min_s" s.E.min_s s'.E.min_s;
      Alcotest.(check string) "salt" s.E.salt s'.E.salt;
      Alcotest.(check (array int)) "seg counts" s.E.seg_counts s'.E.seg_counts;
      Alcotest.(check int) "comps" (Array.length s.E.comps)
        (Array.length s'.E.comps);
      Array.iteri
        (fun i (c : E.comp) ->
          let c' = s'.E.comps.(i) in
          Alcotest.(check (array int)) "features" c.E.features c'.E.features;
          Alcotest.(check (array int)) "colors" c.E.colors c'.E.colors;
          Alcotest.(check int) "scaled" c.E.scaled c'.E.scaled)
        s.E.comps;
      (* flipping one byte anywhere must be detected *)
      let raw =
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      let flip = Bytes.of_string raw in
      let mid = Bytes.length flip / 2 in
      Bytes.set flip mid
        (if Bytes.get flip mid = 'x' then 'y' else 'x');
      let oc = open_out_bin path in
      output_bytes oc flip;
      close_out oc;
      match E.load path with
      | _ -> Alcotest.fail "expected Bad_file on tampered session"
      | exception E.Bad_file _ -> ())

(* ------------------------------------------------------------------ *)
(* Pinned unit: an edit inside one component leaves every other
   component's bytes verbatim *)

let two_cluster_layout () =
  (* Cluster A around x=0, cluster B around x=5000 — far beyond the
     min_s + hp = 100 nm interaction radius, so two components. *)
  let r x y = Polygon.of_rect (Rect.make ~x0:x ~y0:y ~x1:(x + 20) ~y1:(y + 20)) in
  Layout.make Layout.default_tech
    [
      r 0 0; r 60 0; r 120 0; r 60 60;
      r 5000 0; r 5060 0; r 5120 0; r 5060 60;
    ]

let comp_for (s : E.session) f =
  match
    Array.find_opt (fun (c : E.comp) -> Array.exists (( = ) f) c.E.features)
      s.E.comps
  with
  | Some c -> c
  | None -> Alcotest.failf "no component contains feature %d" f

let test_pinned_untouched_verbatim () =
  let layout = two_cluster_layout () in
  let p = params () in
  let s0, _ = session_of p layout in
  (* nudge one cluster-A feature; cluster B must be untouched *)
  let edits = [ E.Move { index = 1; dx = 0; dy = 20 } ] in
  let _edited, rep, s1 = redecompose_exn p s0 edits in
  (match rep.D.eco with
  | None -> Alcotest.fail "eco stats missing"
  | Some e ->
    Alcotest.(check bool) "reused something" true (e.D.reused_components > 0);
    Alcotest.(check bool) "re-solved something" true (e.D.dirty_components > 0));
  let b0 = comp_for s0 4 and b1 = comp_for s1 4 in
  Alcotest.(check (array int)) "B features verbatim" b0.E.features b1.E.features;
  Alcotest.(check (array int)) "B colors verbatim" b0.E.colors b1.E.colors;
  Alcotest.(check int) "B cost verbatim" b0.E.scaled b1.E.scaled

(* ------------------------------------------------------------------ *)
(* Full bit-identity vs. a cold run, across jobs x cache *)

let check_matches_cold p prev edits =
  let edited, rep, next = redecompose_exn p prev edits in
  let g_cold, cold = decompose_with p edited in
  if rep.D.colors <> cold.D.colors then
    Alcotest.failf "coloring differs from cold run (%d vs %d vertices)"
      (Array.length rep.D.colors)
      (Array.length cold.D.colors);
  Alcotest.(check int) "scaled cost matches cold run" cold.D.cost.Mpl.Coloring.scaled
    rep.D.cost.Mpl.Coloring.scaled;
  (* the chained session must be exactly what snapshot-of-cold captures *)
  let cold_snap = D.snapshot ~params:p ~min_s algo g_cold edited cold in
  Alcotest.(check (array int)) "seg counts chain" cold_snap.E.seg_counts
    next.E.seg_counts;
  Alcotest.(check string) "layout hash chains" cold_snap.E.layout_hash
    next.E.layout_hash;
  next

let test_matrix_bit_identity () =
  let layout = Benchgen.circuit "C499" in
  List.iter
    (fun (jobs, cache) ->
      let p = params ~jobs ~cache () in
      let s0, _ = session_of p layout in
      let edits = E.generate ~seed:5 ~count:4 layout in
      let s1 = check_matches_cold p s0 edits in
      (* chain a second edit on the updated session *)
      let layout1 =
        match Layout_io.of_string s1.E.layout_text with
        | l -> l
        | exception Layout_io.Parse_error _ ->
          Alcotest.fail "chained session layout unparseable"
      in
      let edits2 = E.generate ~seed:6 ~count:3 layout1 in
      ignore (check_matches_cold p s1 edits2))
    [ (1, false); (1, true); (2, false); (2, true) ]

(* cache_warm changes solver trajectories by design (warm starts), so
   there we only demand legality plus verbatim reuse of untouched
   components — checked via the session, whose untouched comps carry
   the previous bytes. *)
let test_cache_warm_legal () =
  let layout = two_cluster_layout () in
  let p = { (params ~jobs:2 ~cache:true ()) with D.cache_warm = true } in
  let s0, _ = session_of p layout in
  let edits = [ E.Move { index = 5; dx = 20; dy = 0 } ] in
  let _edited, rep, s1 = redecompose_exn p s0 edits in
  Alcotest.(check bool) "complete" true (Mpl.Coloring.is_complete rep.D.colors);
  Alcotest.(check bool) "in range" true
    (Mpl.Coloring.check_range ~k:4 rep.D.colors);
  let a0 = comp_for s0 0 and a1 = comp_for s1 0 in
  Alcotest.(check (array int)) "untouched comp verbatim" a0.E.colors a1.E.colors

let test_salt_mismatch () =
  let layout = two_cluster_layout () in
  let s0, _ = session_of (params ()) layout in
  let p5 = { (params ()) with D.k = 5 } in
  match D.redecompose ~params:p5 ~prev:s0 ~edits:[] algo with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected salt mismatch error"

(* ------------------------------------------------------------------ *)
(* qcheck: random layouts x random edit scripts x jobs x cache *)

let eco_gen =
  QCheck.Gen.(
    int_range 1 2 >>= fun rows ->
    int_range 2 5 >>= fun cells ->
    int_range 0 2 >>= fun gadgets ->
    int_range 0 10_000 >>= fun seed ->
    int_range 1 5 >>= fun edit_count ->
    int_range 0 1_000 >>= fun edit_seed ->
    int_range 1 2 >>= fun jobs ->
    bool >|= fun cache ->
    ( {
        Benchgen.name = "eco-qcheck";
        seed;
        rows;
        cells_per_row = cells;
        density = 0.45;
        wire_fraction = 0.4;
        sparse_gap_prob = 0.8;
        native_five = 0;
        native_six = 0;
        hard_blocks = 0;
        stitch_gadgets = gadgets;
        penta_six = 0;
      },
      edit_count,
      edit_seed,
      jobs,
      cache ))

let eco_print (spec, edit_count, edit_seed, jobs, cache) =
  Printf.sprintf "rows=%d cells=%d gadgets=%d seed=%d edits=%d eseed=%d jobs=%d cache=%b"
    spec.Benchgen.rows spec.Benchgen.cells_per_row spec.Benchgen.stitch_gadgets
    spec.Benchgen.seed edit_count edit_seed jobs cache

let prop_redecompose_matches_cold =
  QCheck.Test.make ~count:15
    ~name:"redecompose = cold decompose of edited layout"
    (QCheck.make ~print:eco_print eco_gen)
    (fun (spec, edit_count, edit_seed, jobs, cache) ->
      let layout = Benchgen.generate spec in
      let p = params ~jobs ~cache () in
      let s0, _ = session_of p layout in
      let edits = E.generate ~seed:edit_seed ~count:edit_count layout in
      let edited, rep, _next = redecompose_exn p s0 edits in
      let _g, cold = decompose_with p edited in
      Mpl.Coloring.is_complete rep.D.colors
      && Mpl.Coloring.check_range ~k:4 rep.D.colors
      && rep.D.colors = cold.D.colors)

(* ------------------------------------------------------------------ *)
(* Satellite: Benchgen.synth round-trips through Layout_io *)

let test_synth_layout_io_roundtrip () =
  let layout = Benchgen.generate (Benchgen.synth ~seed:3 ~features:2_000 ()) in
  let text = Layout_io.to_string layout in
  match Layout_io.of_string text with
  | exception Layout_io.Parse_error { line; msg } ->
    Alcotest.failf "parse error at line %d: %s" line msg
  | back ->
    Alcotest.(check string) "name" layout.Layout.name back.Layout.name;
    Alcotest.(check int) "feature count"
      (Array.length layout.Layout.features)
      (Array.length back.Layout.features);
    Alcotest.(check bool) "tech" true (layout.Layout.tech = back.Layout.tech);
    Array.iteri
      (fun i p ->
        let q = back.Layout.features.(i) in
        if Polygon.rects p <> Polygon.rects q then
          Alcotest.failf "feature %d rects differ" i)
      layout.Layout.features;
    Alcotest.(check string) "re-serialization identical" text
      (Layout_io.to_string back)

let suite =
  [
    Alcotest.test_case "edit script round-trip" `Quick test_edit_roundtrip;
    Alcotest.test_case "edit script errors" `Quick test_edit_errors;
    Alcotest.test_case "apply mapping" `Quick test_apply_mapping;
    Alcotest.test_case "session save/load + tamper" `Quick
      test_session_roundtrip;
    Alcotest.test_case "untouched component verbatim (pinned)" `Quick
      test_pinned_untouched_verbatim;
    Alcotest.test_case "bit-identity across jobs x cache" `Slow
      test_matrix_bit_identity;
    Alcotest.test_case "cache_warm stays legal and reuses" `Quick
      test_cache_warm_legal;
    Alcotest.test_case "salt mismatch rejected" `Quick test_salt_mismatch;
    QCheck_alcotest.to_alcotest prop_redecompose_matches_cold;
    Alcotest.test_case "synth round-trips through Layout_io" `Quick
      test_synth_layout_io_roundtrip;
  ]
