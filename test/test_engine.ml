(* Tests for the mpl_engine subsystem: the work-stealing domain pool
   (ordering, exception propagation), the canonical-signature cache
   (permutation-equivalent pieces hit, inequivalent pieces miss, exact
   vs permuted reuse policies), the batch driver's deduplication, the
   atomic shared solver budget, and the end-to-end determinism /
   cache-correctness property: on random layouts, every algorithm
   produces identical (cn#, st#) — and, in exact cache mode, identical
   colorings — at every jobs / cache setting. *)

module Pool = Mpl_engine.Pool
module Cache = Mpl_engine.Cache
module Engine = Mpl_engine.Engine
module G = Mpl.Decomp_graph
module C = Mpl.Coloring
module D = Mpl.Decomposer

(* ------------------------------------------------------------------ *)
(* Pool *)

let test_pool_ordering () =
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          let out = Pool.map_list pool (fun x -> x * x) (List.init 100 Fun.id) in
          Alcotest.(check (list int))
            (Printf.sprintf "squares in order at jobs=%d" jobs)
            (List.init 100 (fun x -> x * x))
            out))
    [ 1; 2; 4 ]

exception Boom of int

let test_pool_exception () =
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          match
            Pool.map_list pool
              (fun x -> if x = 37 then raise (Boom x) else x)
              (List.init 100 Fun.id)
          with
          | _ -> Alcotest.fail "expected Boom"
          | exception Boom x ->
            Alcotest.(check int)
              (Printf.sprintf "failing task's payload at jobs=%d" jobs)
              37 x))
    [ 1; 4 ]

let test_pool_try_await () =
  Pool.with_pool ~jobs:2 (fun pool ->
      let ok = Pool.submit pool (fun () -> 41 + 1) in
      let bad = Pool.submit pool (fun () -> raise (Boom 7)) in
      let also_ok = Pool.submit pool (fun () -> "fine") in
      Alcotest.(check int) "ok future" 42
        (match Pool.try_await pool ok with Ok v -> v | Error _ -> -1);
      (match Pool.try_await pool bad with
      | Ok () -> Alcotest.fail "expected Error"
      | Error (Boom x, _bt) -> Alcotest.(check int) "payload isolated" 7 x
      | Error (e, _) -> raise e);
      (* The failure is confined to its own future. *)
      Alcotest.(check string) "later future unaffected" "fine"
        (Pool.await pool also_ok))

let test_pool_reuse_after_await () =
  Pool.with_pool ~jobs:3 (fun pool ->
      (* Interleave submit/await rounds on one pool. *)
      for round = 0 to 4 do
        let futs = List.init 20 (fun i -> Pool.submit pool (fun () -> (round * 100) + i)) in
        List.iteri
          (fun i fut ->
            Alcotest.(check int) "round-trip" ((round * 100) + i) (Pool.await pool fut))
          futs
      done)

let test_pool_priority () =
  (* At jobs=1 nothing runs until the caller helps in [await], so the
     whole queue is visible when execution starts: tasks must run in
     (priority desc, submission order) heap order. *)
  Pool.with_pool ~jobs:1 (fun pool ->
      let ran = ref [] in
      let task tag () = ran := tag :: !ran in
      let futs =
        List.map
          (fun (prio, tag) -> Pool.submit ~priority:prio pool (task tag))
          [ (0, "a0"); (5, "b5"); (1, "c1"); (5, "d5"); (9, "e9") ]
      in
      List.iter (fun f -> Pool.await pool f) futs;
      Alcotest.(check (list string))
        "priority desc, FIFO among equals"
        [ "e9"; "b5"; "d5"; "c1"; "a0" ]
        (List.rev !ran))

let test_pool_bounded_backpressure () =
  (* A bound smaller than the burst: submission must make progress by
     helping (never deadlock, even at jobs=1) and every future must
     still resolve to its own result. *)
  Pool.with_pool ~jobs:1 ~bound:4 (fun pool ->
      let futs = List.init 32 (fun i -> Pool.submit pool (fun () -> i * 3)) in
      List.iteri
        (fun i fut ->
          Alcotest.(check int) "bounded round-trip" (i * 3) (Pool.await pool fut))
        futs)

let test_pool_group () =
  Pool.with_pool ~jobs:1 (fun pool ->
      (* Members run sequentially in list order and each gets its own
         future; one member's failure never poisons its siblings. *)
      let ran = ref [] in
      let member i () =
        ran := i :: !ran;
        if i = 2 then raise (Boom i) else i * 10
      in
      let futs = Pool.submit_group pool (List.init 5 member) in
      Alcotest.(check int) "five futures" 5 (List.length futs);
      List.iteri
        (fun i fut ->
          match Pool.try_await pool fut with
          | Ok v -> Alcotest.(check int) "member result" (i * 10) v
          | Error (Boom 2, _) when i = 2 -> ()
          | Error (e, _) -> raise e)
        futs;
      Alcotest.(check (list int)) "members ran in list order" [ 0; 1; 2; 3; 4 ]
        (List.rev !ran))

let test_pool_cancel_drops_queued () =
  (* jobs = 1 leaves every submitted task queued until the caller
     helps, so a cancel before any await must drop all of them at
     dequeue time without a single body running. *)
  Pool.with_pool ~jobs:1 (fun pool ->
      let tok = Pool.token () in
      let ran = Atomic.make 0 in
      let k = 16 in
      let futs =
        List.init k (fun i ->
            Pool.submit ~cancel:tok pool (fun () ->
                Atomic.incr ran;
                i))
      in
      Alcotest.(check bool) "not yet cancelled" false (Pool.cancelled tok);
      Pool.cancel tok;
      Pool.cancel tok;
      (* idempotent *)
      Alcotest.(check bool) "cancelled" true (Pool.cancelled tok);
      (* The eager sweep settles the drop accounting without waiting
         for a consumer to stumble over the corpses. *)
      Alcotest.(check int) "sweep drops every queued task" k
        (Pool.discard_cancelled pool);
      Alcotest.(check int) "token counted every drop" k (Pool.drops tok);
      Alcotest.(check int) "queue emptied" 0 (Pool.queue_depth pool);
      Alcotest.(check int) "no task body ever ran" 0 (Atomic.get ran);
      List.iter
        (fun fut ->
          match Pool.try_await pool fut with
          | Error (Pool.Cancelled, _) -> ()
          | Ok _ -> Alcotest.fail "dropped task returned a value"
          | Error (e, _) -> raise e)
        futs;
      (* The pool itself is unharmed: later uncancelled work runs. *)
      let f = Pool.submit pool (fun () -> 7) in
      Alcotest.(check int) "pool still serves" 7 (Pool.await pool f))

let test_pool_cancel_at_dequeue () =
  (* Without an eager sweep a cancelled task is dropped exactly when a
     consumer would otherwise run it; awaiting the batch observes every
     drop as Cancelled, and group members count individually. *)
  Pool.with_pool ~jobs:1 (fun pool ->
      let tok = Pool.token () in
      let ran = Atomic.make 0 in
      let singles =
        List.init 5 (fun i ->
            Pool.submit ~cancel:tok pool (fun () ->
                Atomic.incr ran;
                i))
      in
      let group =
        Pool.submit_group ~cancel:tok pool
          (List.init 3 (fun i () ->
               Atomic.incr ran;
               i))
      in
      Pool.cancel tok;
      List.iter
        (fun fut ->
          match Pool.try_await pool fut with
          | Error (Pool.Cancelled, _) -> ()
          | Ok _ -> Alcotest.fail "cancelled task ran"
          | Error (e, _) -> raise e)
        (singles @ group);
      Alcotest.(check int) "every logical task dropped at dequeue" 8
        (Pool.drops tok);
      Alcotest.(check int) "no task body ever ran" 0 (Atomic.get ran))

let test_pool_invalid () =
  Alcotest.check_raises "jobs=0 rejected" (Invalid_argument "Pool.create: jobs < 1")
    (fun () -> ignore (Pool.create ~jobs:0 ()));
  let pool = Pool.create ~jobs:2 () in
  Pool.shutdown pool;
  Pool.shutdown pool;
  (* idempotent *)
  Alcotest.check_raises "submit after shutdown"
    (Invalid_argument "Pool.submit: pool is shut down") (fun () ->
      ignore (Pool.submit pool (fun () -> ())))

(* ------------------------------------------------------------------ *)
(* Cache *)

(* A labeled path a-b-c (conflict), plus one stitch edge. *)
let sig_of_edges ~n ~ce ~se =
  Cache.signature ~n ~relations:[| ce; se |]

let test_cache_permuted_hit () =
  (* The same 4-vertex gadget under two different labelings. *)
  let s1 = sig_of_edges ~n:4 ~ce:[ (0, 1); (1, 2); (2, 3) ] ~se:[ (0, 3) ] in
  let s2 = sig_of_edges ~n:4 ~ce:[ (3, 2); (2, 1); (1, 0) ] ~se:[ (3, 0) ] in
  Alcotest.(check bool) "same canonical key" true (String.equal s1.Cache.key s2.Cache.key);
  let cache = Cache.create ~mode:Cache.Permuted () in
  Cache.store cache s1 ([| 0; 1; 2; 0 |], ());
  (match Cache.find cache s2 with
  | None -> Alcotest.fail "expected permuted hit"
  | Some (colors, ()) ->
    (* The mapped coloring must preserve the edge structure: conflict
       endpoints differently colored, stitch endpoints equal here. *)
    List.iter
      (fun (u, v) ->
        Alcotest.(check bool) "conflict stays bichromatic" true
          (colors.(u) <> colors.(v)))
      [ (3, 2); (2, 1); (1, 0) ];
    Alcotest.(check bool) "stitch stays monochromatic" true
      (colors.(3) = colors.(0)));
  Alcotest.(check int) "one hit" 1 (Cache.hits cache)

let test_cache_inequivalent_miss () =
  (* C6 vs two triangles: identical degree sequences (all 2-regular),
     indistinguishable by WL refinement — the full serialization in the
     key is what keeps them apart. *)
  let c6 = sig_of_edges ~n:6 ~ce:[ (0, 1); (1, 2); (2, 3); (3, 4); (4, 5); (5, 0) ] ~se:[] in
  let tri2 = sig_of_edges ~n:6 ~ce:[ (0, 1); (1, 2); (2, 0); (3, 4); (4, 5); (5, 3) ] ~se:[] in
  Alcotest.(check bool) "different keys" false (String.equal c6.Cache.key tri2.Cache.key);
  (* Relation identity matters: a conflict path is not a stitch path. *)
  let conf = sig_of_edges ~n:3 ~ce:[ (0, 1); (1, 2) ] ~se:[] in
  let stit = sig_of_edges ~n:3 ~ce:[] ~se:[ (0, 1); (1, 2) ] in
  Alcotest.(check bool) "relations distinguished" false
    (String.equal conf.Cache.key stit.Cache.key)

let test_cache_exact_requires_same_labeling () =
  let s1 = sig_of_edges ~n:3 ~ce:[ (0, 1); (1, 2) ] ~se:[] in
  let s2 = sig_of_edges ~n:3 ~ce:[ (2, 1); (1, 0) ] ~se:[] in
  (* same labeled graph, edges listed differently: serial equal *)
  let s3 = sig_of_edges ~n:3 ~ce:[ (0, 2); (2, 1) ] ~se:[] in
  (* relabeled path: key equal, serial different *)
  let cache = Cache.create ~mode:Cache.Exact () in
  Cache.store cache s1 ([| 0; 1; 0 |], ());
  (match Cache.find cache s2 with
  | Some (colors, ()) ->
    Alcotest.(check (array int)) "byte-identical piece returns stored coloring"
      [| 0; 1; 0 |] colors
  | None -> Alcotest.fail "expected exact hit");
  Alcotest.(check bool) "same key for relabeled path" true
    (String.equal s1.Cache.key s3.Cache.key);
  Alcotest.(check bool) "exact mode refuses relabeled piece" true
    (Cache.find cache s3 = None)

let test_cache_transfer () =
  let s1 = sig_of_edges ~n:4 ~ce:[ (0, 1); (1, 2); (2, 3) ] ~se:[] in
  let s2 = sig_of_edges ~n:4 ~ce:[ (3, 2); (2, 1); (1, 0) ] ~se:[] in
  let colors = [| 0; 1; 2; 3 |] in
  let mapped = Cache.transfer s1 s2 colors in
  List.iter
    (fun (u, v) ->
      Alcotest.(check bool) "adjacent differ after transfer" true
        (mapped.(u) <> mapped.(v)))
    [ (3, 2); (2, 1); (1, 0) ]

let test_cache_find_similar () =
  let s1 = sig_of_edges ~n:4 ~ce:[ (0, 1); (1, 2); (2, 3) ] ~se:[ (0, 3) ] in
  let s2 = sig_of_edges ~n:4 ~ce:[ (3, 2); (2, 1); (1, 0) ] ~se:[ (3, 0) ] in
  (* Even an Exact-mode cache serves warm hints on a key-only match. *)
  let cache = Cache.create ~mode:Cache.Exact () in
  Alcotest.(check bool) "empty cache: no hint" true
    (Cache.find_similar cache s2 = None);
  Cache.store cache s1 ([| 0; 1; 2; 0 |], ());
  (match Cache.find_similar cache s2 with
  | None -> Alcotest.fail "expected a warm hint"
  | Some colors ->
    (* The hint is a structurally valid coloring of s2's labeling. *)
    List.iter
      (fun (u, v) ->
        Alcotest.(check bool) "hint keeps conflicts bichromatic" true
          (colors.(u) <> colors.(v)))
      [ (3, 2); (2, 1); (1, 0) ]);
  Alcotest.(check int) "warm hit counted" 1 (Cache.warm_hits cache);
  (* Hint probes never touch the answer-cache hit/miss counters. *)
  Alcotest.(check int) "no answer hits" 0 (Cache.hits cache);
  Alcotest.(check int) "no answer misses" 0 (Cache.misses cache)

let test_decomposer_cache_warm () =
  (* Four disjoint copies of the same K5 gadget (degree 4 = k, so
     low-degree peeling cannot dissolve them): the first solve
     populates the warm cache, later isomorphic pieces probe it. *)
  let ce = ref [] in
  for b = 0 to 3 do
    let base = b * 5 in
    for i = 0 to 4 do
      for j = i + 1 to 4 do
        ce := (base + i, base + j) :: !ce
      done
    done
  done;
  let g = Mpl.Decomp_graph.of_edges ~n:20 !ce in
  let params =
    {
      Mpl.Decomposer.default_params with
      Mpl.Decomposer.cache_warm = true;
      metrics = true;
    }
  in
  let r = Mpl.Decomposer.assign ~params Mpl.Decomposer.Sdp_backtrack g in
  Alcotest.(check bool) "complete coloring" true
    (Mpl.Coloring.is_complete r.Mpl.Decomposer.colors);
  (* K5 on 4 masks costs exactly one conflict per copy. *)
  Alcotest.(check int) "K5 x4 conflict count" 4
    r.Mpl.Decomposer.cost.Mpl.Coloring.conflicts;
  match r.Mpl.Decomposer.metrics with
  | None -> Alcotest.fail "expected a metrics snapshot"
  | Some snap ->
    let counter name =
      match Mpl_obs.Metrics.find_counter snap name with
      | Some v -> v
      | None -> Alcotest.failf "missing %s counter" name
    in
    Alcotest.(check bool) "warm hits on repeated pieces" true
      (counter "cache.warm_hits" > 0);
    Alcotest.(check bool) "warm starts reached the SDP" true
      (counter "sdp.warm_starts" > 0)

(* ------------------------------------------------------------------ *)
(* Engine batch driver *)

let test_engine_dedup () =
  (* Five pieces, three distinct up to labeling: the driver must solve
     each distinct labeled piece once in Exact mode. *)
  let path a b c = (3, [ (a, b); (b, c) ]) in
  let pieces = [ path 0 1 2; path 0 1 2; path 2 1 0; path 0 2 1; path 0 1 2 ] in
  let solves = Atomic.make 0 in
  let solve (n, ce) =
    Atomic.incr solves;
    (* proper 2-coloring of a path by BFS would be overkill: brute it *)
    let s = sig_of_edges ~n ~ce ~se:[] in
    ignore s;
    (Array.init n (fun v -> v mod 2), ())
  in
  let signature (n, ce) = Some (sig_of_edges ~n ~ce ~se:[]) in
  Pool.with_pool ~jobs:2 (fun pool ->
      let cache = Cache.create ~mode:Cache.Exact () in
      let results, stats =
        Engine.solve_pieces ~pool ~cache ~signature ~solve pieces
      in
      Alcotest.(check int) "five results" 5 (List.length results);
      (* [path 0 1 2] appears three times (one leader + two reuses);
         [path 2 1 0] serializes identically to [path 0 1 2]?? No: the
         serial lists edges as sorted (min,max) pairs, so 0-1,1-2 and
         2-1,1-0 are the same labeled graph -> reused as well. [path 0 2 1]
         is a different labeling -> solved fresh. *)
      Alcotest.(check int) "distinct labelings solved"
        (Atomic.get solves) stats.Engine.solved;
      Alcotest.(check int) "two distinct labeled pieces" 2 stats.Engine.solved;
      Alcotest.(check int) "three batch reuses" 3 stats.Engine.reused)

let test_engine_prepopulated_cache () =
  let piece = (2, [ (0, 1) ]) in
  let signature (n, ce) = Some (sig_of_edges ~n ~ce ~se:[]) in
  let cache = Cache.create ~mode:Cache.Exact () in
  Pool.with_pool ~jobs:1 (fun pool ->
      let _, s1 =
        Engine.solve_pieces ~pool ~cache ~signature
          ~solve:(fun (n, _) -> (Array.make n 0, ()))
          [ piece ]
      in
      Alcotest.(check int) "first run solves" 1 s1.Engine.solved;
      let _, s2 =
        Engine.solve_pieces ~pool ~cache ~signature
          ~solve:(fun _ -> Alcotest.fail "must not re-solve")
          [ piece; piece ]
      in
      Alcotest.(check int) "second run all hits" 2 s2.Engine.hits)

let test_engine_recover () =
  (* A solver that dies on one piece: with [recover], the batch survives
     and only that piece gets the substitute result. *)
  let pieces = [ (2, [ (0, 1) ]); (3, [ (0, 1); (1, 2) ]); (2, [ (0, 1) ]) ] in
  let solve (n, ce) =
    if n = 3 then raise (Boom n);
    ignore ce;
    (Array.make n 0, `Solved)
  in
  let recover (n, _ce) e _bt =
    (match e with Boom 3 -> () | _ -> Alcotest.fail "wrong exception");
    (Array.make n 9, `Recovered)
  in
  Pool.with_pool ~jobs:2 (fun pool ->
      let results, stats =
        Engine.solve_pieces ~pool ~recover ~solve pieces
      in
      Alcotest.(check int) "one failure" 1 stats.Engine.failed;
      (match results with
      | [ (_, `Solved); (c, `Recovered); (_, `Solved) ] ->
        Alcotest.(check (array int)) "substitute coloring" [| 9; 9; 9 |] c
      | _ -> Alcotest.fail "unexpected batch results");
      (* Without [recover] the exception still escapes. *)
      match
        Engine.solve_pieces ~pool ~solve [ (3, [ (0, 1); (1, 2) ]) ]
      with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom 3 -> ())

let test_engine_validate_rejects () =
  (* Prepopulate the cache with an out-of-range coloring; a validating
     driver must reject the hit and re-solve. *)
  let piece = (2, [ (0, 1) ]) in
  let signature (n, ce) = Some (sig_of_edges ~n ~ce ~se:[]) in
  let cache = Cache.create ~mode:Cache.Exact () in
  let s = sig_of_edges ~n:2 ~ce:[ (0, 1) ] ~se:[] in
  Cache.store cache s ([| 9; 9 |], ());
  let solves = Atomic.make 0 in
  let solve (n, _) =
    Atomic.incr solves;
    (Array.init n (fun v -> v), ())
  in
  let validate _ colors = Array.for_all (fun c -> c >= 0 && c < 4) colors in
  Pool.with_pool ~jobs:1 (fun pool ->
      let results, stats =
        Engine.solve_pieces ~pool ~cache ~signature ~validate ~solve [ piece ]
      in
      Alcotest.(check int) "hit rejected" 1 stats.Engine.rejected;
      Alcotest.(check int) "no accepted hit" 0 stats.Engine.hits;
      Alcotest.(check int) "re-solved" 1 (Atomic.get solves);
      match results with
      | [ (c, ()) ] ->
        Alcotest.(check (array int)) "fresh coloring used" [| 0; 1 |] c
      | _ -> Alcotest.fail "unexpected results")

let test_cache_corrupt_dropped () =
  (* An injected store-time corruption must be caught by the checksum:
     the damaged entry is dropped on probe, never returned. *)
  let fault =
    Mpl_engine.Fault.arm
      { Mpl_engine.Fault.site = Mpl_engine.Fault.Cache_corrupt;
        seed = 0; shots = 1 }
  in
  let cache = Cache.create ~mode:Cache.Exact ~fault () in
  let s = sig_of_edges ~n:2 ~ce:[ (0, 1) ] ~se:[] in
  Cache.store cache s ([| 0; 1 |], ());
  Alcotest.(check int) "entry stored" 1 (Cache.length cache);
  Alcotest.(check bool) "corrupted entry not served" true
    (Cache.find cache s = None);
  Alcotest.(check int) "drop counted" 1 (Cache.corrupt_drops cache);
  Alcotest.(check int) "entry evicted" 0 (Cache.length cache);
  (* The next store is past the injection window and survives. *)
  Cache.store cache s ([| 0; 1 |], ());
  match Cache.find cache s with
  | Some (c, ()) -> Alcotest.(check (array int)) "clean store hits" [| 0; 1 |] c
  | None -> Alcotest.fail "expected hit after clean store"

(* ------------------------------------------------------------------ *)
(* LRU byte budget + disk persistence *)

(* Distinct path graphs: every length gets its own canonical key. *)
let path_sig n =
  sig_of_edges ~n ~ce:(List.init (n - 1) (fun i -> (i, i + 1))) ~se:[]

let path_colors s = Array.init s.Cache.n (fun v -> v mod 2)

(* Measure what one entry is charged by storing it alone. *)
let entry_size s =
  let c = Cache.create ~mode:Cache.Exact () in
  Cache.store c s (path_colors s, ());
  Cache.bytes c

let test_cache_lru_eviction_order () =
  let a = path_sig 6 and b = path_sig 7 and c = path_sig 8 in
  (* d is strictly smaller than any resident entry, so pushing it over
     the budget evicts exactly one LRU victim. *)
  let d = path_sig 3 in
  let budget = entry_size a + entry_size b + entry_size c in
  let cache = Cache.create ~mode:Cache.Exact ~byte_budget:budget () in
  List.iter (fun s -> Cache.store cache s (path_colors s, ())) [ a; b; c ];
  Alcotest.(check int) "all three resident" 3 (Cache.length cache);
  (* Touch [a]: recency refresh makes [b] the LRU entry. *)
  Alcotest.(check bool) "refresh probe hits" true (Cache.find cache a <> None);
  Cache.store cache d (path_colors d, ());
  Alcotest.(check int) "one eviction" 1 (Cache.evictions cache);
  Alcotest.(check bool) "LRU victim evicted" true (Cache.find cache b = None);
  List.iter
    (fun (name, s) ->
      Alcotest.(check bool) (name ^ " survives") true (Cache.find cache s <> None))
    [ ("touched entry", a); ("recent entry", c); ("new entry", d) ];
  Alcotest.(check bool) "still within budget" true (Cache.bytes cache <= budget)

let test_cache_byte_budget_modes () =
  List.iter
    (fun mode ->
      let sigs = List.init 10 (fun i -> path_sig (i + 3)) in
      let total = List.fold_left (fun acc s -> acc + entry_size s) 0 sigs in
      let budget = total / 2 in
      let cache = Cache.create ~mode ~byte_budget:budget () in
      List.iter
        (fun s ->
          Cache.store cache s (path_colors s, ());
          Alcotest.(check bool) "resident bytes within budget" true
            (Cache.bytes cache <= budget))
        sigs;
      Alcotest.(check bool) "budget forced evictions" true
        (Cache.evictions cache > 0);
      Alcotest.(check bool) "not all entries resident" true
        (Cache.length cache < List.length sigs);
      (* The snapshot agrees with the individual accessors. *)
      let st = Cache.stats cache in
      Alcotest.(check int) "stats entries" (Cache.length cache) st.Cache.entries;
      Alcotest.(check int) "stats bytes" (Cache.bytes cache)
        st.Cache.resident_bytes;
      Alcotest.(check (option int)) "stats budget" (Some budget)
        st.Cache.byte_budget;
      Alcotest.(check int) "stats evictions" (Cache.evictions cache)
        st.Cache.s_evictions)
    [ Cache.Exact; Cache.Permuted ]

let test_cache_salt_partitions () =
  let relations = [| [ (0, 1); (1, 2) ]; [] |] in
  let s4 = Cache.signature_salted ~salt:"k=4" ~n:3 ~relations in
  let s5 = Cache.signature_salted ~salt:"k=5" ~n:3 ~relations in
  Alcotest.(check bool) "salts split the key space" false
    (String.equal s4.Cache.key s5.Cache.key);
  let cache = Cache.create ~mode:Cache.Permuted () in
  Cache.store cache s4 ([| 0; 1; 0 |], ());
  Alcotest.(check bool) "same piece, other salt: miss" true
    (Cache.find cache s5 = None);
  Alcotest.check_raises "newline salts rejected"
    (Invalid_argument "Cache.signature: salt must not contain newlines")
    (fun () ->
      ignore (Cache.signature_salted ~salt:"a\nb" ~n:1 ~relations:[| [] |]))

let read_lines path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file -> List.rev acc
  in
  go []

let write_lines path lines =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) @@ fun () ->
  List.iter
    (fun l ->
      output_string oc l;
      output_char oc '\n')
    lines

let test_cache_persist_roundtrip_corruption () =
  let sigs = [ path_sig 3; path_sig 4; path_sig 5 ] in
  let cache = Cache.create ~mode:Cache.Exact () in
  List.iter (fun s -> Cache.store cache s (path_colors s, ())) sigs;
  let path = Filename.temp_file "mplcache" ".txt" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Cache.save cache ~value_to_string:(fun () -> "") path;
      (* Clean round trip: every entry survives and hits. *)
      let fresh = Cache.create ~mode:Cache.Exact () in
      let loaded, dropped =
        Cache.load fresh ~value_of_string:(fun _ -> Some ()) path
      in
      Alcotest.(check (pair int int)) "clean load" (3, 0) (loaded, dropped);
      List.iter
        (fun s ->
          match Cache.find fresh s with
          | Some (colors, ()) ->
            Alcotest.(check (array int)) "round-tripped coloring"
              (path_colors s) colors
          | None -> Alcotest.fail "entry lost in round trip")
        sigs;
      (* Flip one character of the SECOND entry's coloring line (the
         format is one header plus four lines per entry, LRU-first, so
         that is line index 3 + 4*1). The checksum must drop exactly
         that entry; its neighbours are untouched. *)
      let lines = Array.of_list (read_lines path) in
      Alcotest.(check int) "expected file shape" 13 (Array.length lines);
      let idx = 3 + (4 * 1) in
      let l = lines.(idx) in
      let last = String.length l - 1 in
      lines.(idx) <-
        String.sub l 0 last ^ (if l.[last] = '0' then "1" else "0");
      write_lines path (Array.to_list lines);
      let damaged = Cache.create ~mode:Cache.Exact () in
      let loaded, dropped =
        Cache.load damaged ~value_of_string:(fun _ -> Some ()) path
      in
      Alcotest.(check (pair int int)) "one entry dropped" (2, 1)
        (loaded, dropped);
      Alcotest.(check bool) "corrupted entry gone" true
        (Cache.find damaged (path_sig 4) = None);
      Alcotest.(check bool) "first neighbour intact" true
        (Cache.find damaged (path_sig 3) <> None);
      Alcotest.(check bool) "second neighbour intact" true
        (Cache.find damaged (path_sig 5) <> None);
      (* A mode-mismatched file is refused outright. *)
      let wrong = Cache.create ~mode:Cache.Permuted () in
      match Cache.load wrong ~value_of_string:(fun _ -> Some ()) path with
      | _ -> Alcotest.fail "expected Bad_file"
      | exception Cache.Bad_file _ -> ())

(* ------------------------------------------------------------------ *)
(* Phase breakdown *)

let test_phases_report () =
  (* Dense-enough layout that solving does real work on both paths. *)
  let spec =
    {
      Mpl_layout.Benchgen.name = "phases";
      seed = 11;
      rows = 2;
      cells_per_row = 6;
      density = 0.5;
      wire_fraction = 0.4;
      sparse_gap_prob = 0.7;
      native_five = 1;
      native_six = 0;
      hard_blocks = 0;
      stitch_gadgets = 1;
      penta_six = 0;
    }
  in
  let layout = Mpl_layout.Benchgen.generate spec in
  let g = G.of_layout layout ~min_s:80 in
  let run jobs =
    let params = { D.default_params with D.jobs; solver_budget_s = 0. } in
    D.assign ~params D.Sdp_backtrack g
  in
  let seq = run 1 and par = run 2 in
  let sane p =
    p.D.division_s >= 0. && p.D.solve_s >= 0. && p.D.merge_s >= 0.
  in
  Alcotest.(check bool) "sequential phases sane" true (sane seq.D.phases);
  Alcotest.(check bool) "sequential path has no merge phase" true
    (seq.D.phases.D.merge_s = 0.);
  Alcotest.(check bool) "streamed phases sane" true (sane par.D.phases);
  Alcotest.(check bool) "streamed run solved something" true
    (par.D.phases.D.solve_s > 0.);
  Alcotest.(check (array int)) "same coloring both paths" seq.D.colors
    par.D.colors

(* ------------------------------------------------------------------ *)
(* Shared atomic budget *)

let test_budget_atomic () =
  let b = Mpl_util.Timer.budget 0. in
  Alcotest.(check bool) "unlimited never expires" false (Mpl_util.Timer.expired b);
  Alcotest.(check bool) "unlimited never trips" false (Mpl_util.Timer.tripped b);
  let b = Mpl_util.Timer.budget 1e-9 in
  Unix.sleepf 0.002;
  (* Observe expiry from a pool worker; the latch must be visible to
     the coordinating thread afterwards. *)
  Pool.with_pool ~jobs:2 (fun pool ->
      let fut = Pool.submit pool (fun () -> Mpl_util.Timer.expired b) in
      Alcotest.(check bool) "expired in worker" true (Pool.await pool fut));
  Alcotest.(check bool) "trip latched across domains" true
    (Mpl_util.Timer.tripped b)

(* ------------------------------------------------------------------ *)
(* End-to-end determinism + cache correctness on random layouts *)

let layout_gen =
  QCheck.Gen.(
    int_range 1 2 >>= fun rows ->
    int_range 2 5 >>= fun cells ->
    int_range 0 1 >>= fun five ->
    int_range 0 2 >>= fun gadgets ->
    int_range 0 10_000 >|= fun seed ->
    {
      Mpl_layout.Benchgen.name = "qcheck";
      seed;
      rows;
      cells_per_row = cells;
      density = 0.45;
      wire_fraction = 0.4;
      sparse_gap_prob = 0.8;
      native_five = five;
      native_six = 0;
      hard_blocks = 0;
      stitch_gadgets = gadgets;
      penta_six = 0;
    })

let layout_print spec =
  Printf.sprintf "rows=%d cells=%d five=%d gadgets=%d seed=%d"
    spec.Mpl_layout.Benchgen.rows spec.Mpl_layout.Benchgen.cells_per_row
    spec.Mpl_layout.Benchgen.native_five
    spec.Mpl_layout.Benchgen.stitch_gadgets spec.Mpl_layout.Benchgen.seed

let layout_arb = QCheck.make ~print:layout_print layout_gen

let prop_jobs_cache_invariant =
  QCheck.Test.make ~count:20 ~name:"jobs x cache: identical costs, valid colorings"
    layout_arb (fun spec ->
      let layout = Mpl_layout.Benchgen.generate spec in
      let g = G.of_layout layout ~min_s:80 in
      List.for_all
        (fun algo ->
          let run jobs cache =
            let params =
              {
                D.default_params with
                D.jobs;
                cache;
                solver_budget_s = 0. (* unlimited: keep runs deterministic *);
              }
            in
            D.assign ~params algo g
          in
          let reference = run 1 false in
          let ok r =
            C.is_complete r.D.colors
            && C.check_range ~k:4 r.D.colors
            && C.evaluate g r.D.colors = r.D.cost
            && r.D.cost.C.conflicts = reference.D.cost.C.conflicts
            && r.D.cost.C.stitches = reference.D.cost.C.stitches
            && r.D.colors = reference.D.colors
            && r.D.division.Mpl.Division.pieces
               = reference.D.division.Mpl.Division.pieces
          in
          List.for_all ok
            [
              run 2 false; run 4 false; run 1 true; run 2 true; run 4 true;
            ])
        [ D.Linear; D.Sdp_greedy; D.Sdp_backtrack; D.Exact ])

let prop_permuted_cache_valid =
  QCheck.Test.make ~count:15
    ~name:"permuted cache: valid colorings, deterministic across jobs"
    layout_arb (fun spec ->
      let layout = Mpl_layout.Benchgen.generate spec in
      let g = G.of_layout layout ~min_s:80 in
      List.for_all
        (fun algo ->
          let run jobs =
            let params =
              {
                D.default_params with
                D.jobs;
                cache = true;
                cache_permuted = true;
                solver_budget_s = 0.;
              }
            in
            D.assign ~params algo g
          in
          let r1 = run 1 in
          let r4 = run 4 in
          C.is_complete r1.D.colors
          && C.check_range ~k:4 r1.D.colors
          && C.evaluate g r1.D.colors = r1.D.cost
          && r1.D.colors = r4.D.colors
          && r1.D.cost = r4.D.cost)
        [ D.Linear; D.Sdp_backtrack ])

let suite =
  [
    Alcotest.test_case "pool: map ordering" `Quick test_pool_ordering;
    Alcotest.test_case "pool: exception propagation" `Quick test_pool_exception;
    Alcotest.test_case "pool: try_await isolates failures" `Quick
      test_pool_try_await;
    Alcotest.test_case "pool: reuse across rounds" `Quick test_pool_reuse_after_await;
    Alcotest.test_case "pool: priority ordering" `Quick test_pool_priority;
    Alcotest.test_case "pool: bounded queue backpressure" `Quick
      test_pool_bounded_backpressure;
    Alcotest.test_case "pool: task groups" `Quick test_pool_group;
    Alcotest.test_case "pool: cancel sweeps queued tasks" `Quick
      test_pool_cancel_drops_queued;
    Alcotest.test_case "pool: cancel observed at dequeue" `Quick
      test_pool_cancel_at_dequeue;
    Alcotest.test_case "pool: argument validation" `Quick test_pool_invalid;
    Alcotest.test_case "decomposer: phase breakdown" `Quick test_phases_report;
    Alcotest.test_case "cache: permuted hit" `Quick test_cache_permuted_hit;
    Alcotest.test_case "cache: inequivalent miss" `Quick test_cache_inequivalent_miss;
    Alcotest.test_case "cache: exact labeling policy" `Quick
      test_cache_exact_requires_same_labeling;
    Alcotest.test_case "cache: transfer" `Quick test_cache_transfer;
    Alcotest.test_case "cache: warm hints" `Quick test_cache_find_similar;
    Alcotest.test_case "decomposer: warm-start cache" `Quick
      test_decomposer_cache_warm;
    Alcotest.test_case "engine: batch dedup" `Quick test_engine_dedup;
    Alcotest.test_case "engine: prepopulated cache" `Quick
      test_engine_prepopulated_cache;
    Alcotest.test_case "engine: per-piece recovery" `Quick test_engine_recover;
    Alcotest.test_case "engine: cache-hit validation" `Quick
      test_engine_validate_rejects;
    Alcotest.test_case "cache: corruption detected by checksum" `Quick
      test_cache_corrupt_dropped;
    Alcotest.test_case "cache: LRU eviction order" `Quick
      test_cache_lru_eviction_order;
    Alcotest.test_case "cache: byte budget in both modes" `Quick
      test_cache_byte_budget_modes;
    Alcotest.test_case "cache: salt partitions the table" `Quick
      test_cache_salt_partitions;
    Alcotest.test_case "cache: persistence round trip + corruption" `Quick
      test_cache_persist_roundtrip_corruption;
    Alcotest.test_case "timer: atomic shared budget" `Quick test_budget_atomic;
    QCheck_alcotest.to_alcotest prop_jobs_cache_invariant;
    QCheck_alcotest.to_alcotest prop_permuted_cache_valid;
  ]
