(* Golden tests for the paper's worked examples and headline claims. *)

module G = Mpl.Decomp_graph
module C = Mpl.Coloring
module D = Mpl.Decomposer
module Rect = Mpl_geometry.Rect
module Polygon = Mpl_geometry.Polygon

let contact x y =
  Polygon.of_rect (Rect.make ~x0:x ~y0:y ~x1:(x + 20) ~y1:(y + 20))

(* Fig. 1: the 2x2 contact clique that is a native TPL conflict and is
   resolved by QPL. *)
let test_fig1 () =
  let layout =
    Mpl_layout.Layout.make Mpl_layout.Layout.default_tech
      [ contact 0 0; contact 40 0; contact 0 40; contact 40 40 ]
  in
  let g = G.of_layout layout ~min_s:80 in
  Alcotest.(check int) "K4 structure" 6 (List.length (G.conflict_edges g));
  let cn k =
    let params = { D.default_params with D.k } in
    (D.assign ~params D.Exact g).D.cost.C.conflicts
  in
  Alcotest.(check int) "TPL cannot decompose" 1 (cn 3);
  Alcotest.(check int) "QPL resolves it" 0 (cn 4)

(* Fig. 4: greedy coloring order can be trapped — a naive a..e greedy
   that gives d a fresh color leaves e stuck. Algorithm 2's defenses
   (stack peeling of non-critical vertices, peer selection over three
   orders, the color-friendly hint a->d) must color the graph
   conflict-free; in this implementation the peel stage already
   dissolves the trap (a and c have conflict degree 3 < 4), which is
   itself the paper's point that such patterns are non-critical for
   QPL. *)
let fig4_graph ~friendly =
  G.of_edges
    ~friendly_edges:(if friendly then [ (0, 3) ] else [])
    ~n:5
    [ (0, 1); (1, 2); (0, 3); (1, 3); (2, 3); (0, 4); (1, 4); (2, 4); (3, 4) ]

let test_fig4 () =
  let g = fig4_graph ~friendly:true in
  let colors = Mpl.Linear_color.solve ~k:4 ~alpha:0.1 g in
  Alcotest.(check int) "linear assignment escapes the trap" 0
    (C.evaluate g colors).C.conflicts;
  (* The graph is 4-colorable, so the exact solver agrees. *)
  let exact = Mpl.Exact_color.solve ~k:4 ~alpha:0.1 (fig4_graph ~friendly:false) in
  Alcotest.(check int) "exact reference" 0 exact.Mpl.Bnb.scaled_cost

(* Fig. 5: a 3-cut between two components; color rotation reconnects
   them without adding conflicts (Lemma 1). *)
let test_fig5_rotation () =
  (* Two triangles joined by a 3-cut a-d, b-e, c-f as in the figure. *)
  let g =
    G.of_edges ~n:6
      [ (0, 1); (1, 2); (0, 2); (3, 4); (4, 5); (3, 5); (0, 3); (1, 4); (2, 5) ]
  in
  let solver piece =
    (Mpl.Exact_color.solve ~k:4 ~alpha:0.1 piece).Mpl.Bnb.colors
  in
  let stats = Mpl.Division.fresh_stats () in
  let colors = Mpl.Division.assign ~stats ~k:4 ~alpha:0.1 ~solver g in
  Alcotest.(check int) "rotation adds no conflict" 0
    (C.evaluate g colors).C.conflicts

(* Fig. 6: GH-tree of the decomposition graph; removing tree edges of
   weight < 4 leaves the 3-cut-separated groups. *)
let test_fig6_ghtree () =
  (* A 4-edge-connected core {2,3,4} (triangle with doubled connectivity
     via extra vertices is overkill; use K4 on {2,3,4,5}) with pendant
     vertices 0 and 1 attached by 3 edges each. *)
  let g =
    Mpl_graph.Ugraph.of_edges 6
      [ (2, 3); (2, 4); (2, 5); (3, 4); (3, 5); (4, 5);
        (0, 2); (0, 3); (0, 4);
        (1, 3); (1, 4); (1, 5) ]
  in
  let ght = Mpl_graph.Gomory_hu.build g in
  Alcotest.(check int) "pendant cut value" 3
    (Mpl_graph.Gomory_hu.min_cut_value ght 0 2);
  let groups = Mpl_graph.Gomory_hu.components_with_min_weight ght 4 in
  let sizes =
    Array.to_list groups |> List.map Array.length |> List.sort compare
  in
  Alcotest.(check (list int)) "three components after 3-cut removal"
    [ 1; 1; 4 ] sizes

(* Fig. 7: brick pattern at min_s = 2 s_m + w_m contains a K5. *)
let test_fig7 () =
  let bar x y w =
    Polygon.of_rect (Rect.make ~x0:x ~y0:y ~x1:(x + w) ~y1:(y + 20))
  in
  let bricks = ref [] in
  for r = 0 to 4 do
    let offset = r * 30 mod 120 in
    for i = 0 to 3 do
      bricks := bar (offset + (i * 120)) (r * 40) 100 :: !bricks
    done
  done;
  let layout = Mpl_layout.Layout.make Mpl_layout.Layout.default_tech !bricks in
  let g = G.of_layout ~max_stitches_per_feature:0 layout ~min_s:60 in
  let cn k =
    let params = { D.default_params with D.k } in
    (D.assign ~params D.Exact g).D.cost.C.conflicts
  in
  Alcotest.(check bool) "not 4-colorable (K5 present)" true (cn 4 > 0);
  Alcotest.(check int) "5 masks suffice" 0 (cn 5)

(* Eq. (1)-(3): the four ideal color vectors of Fig. 3 have pairwise
   inner product -1/3; general K uses -1/(K-1). *)
let test_fig3_vectors () =
  let vectors =
    Array.map Mpl_numeric.Vec.of_array
      [|
        [| 0.; 0.; 1. |];
        [| 0.; 2. *. sqrt 2. /. 3.; -1. /. 3. |];
        [| sqrt 6. /. 3.; -.sqrt 2. /. 3.; -1. /. 3. |];
        [| -.sqrt 6. /. 3.; -.sqrt 2. /. 3.; -1. /. 3. |];
      |]
  in
  Array.iteri
    (fun i vi ->
      Array.iteri
        (fun j vj ->
          let dot = Mpl_numeric.Vec.dot vi vj in
          if i = j then
            Alcotest.(check (float 1e-9)) "unit norm" 1. dot
          else
            Alcotest.(check (float 1e-9))
              "pairwise -1/3"
              (Mpl_numeric.Sdp.ideal_offdiag 4)
              dot)
        vectors)
    vectors

(* Table 1 golden spot-checks on the small circuits (exact optimum). *)
let test_table1_small_circuits () =
  let check name expected_cn =
    let layout = Mpl_layout.Benchgen.circuit name in
    let g = G.of_layout layout ~min_s:80 in
    let r = D.assign D.Exact g in
    Alcotest.(check int) (name ^ " conflicts") expected_cn
      r.D.cost.C.conflicts
  in
  check "C432" 2;
  check "C499" 1;
  check "C880" 1;
  check "C1355" 0;
  check "S1488" 0

(* Table 2 golden spot-check: C6288's pentuple native conflicts. *)
let test_table2_c6288 () =
  let layout = Mpl_layout.Benchgen.circuit "C6288" in
  let g = G.of_layout layout ~min_s:110 in
  let params = { D.default_params with D.k = 5 } in
  let r = D.assign ~params D.Exact g in
  Alcotest.(check int) "19 pentuple conflicts (paper: 19)" 19
    r.D.cost.C.conflicts

(* The layout-level entry point builds the same graph as the manual
   path and reports a verifiable result. *)
let test_decompose_entry_point () =
  let layout = Mpl_layout.Benchgen.circuit "C499" in
  let g, report =
    D.decompose ~min_s:80 Mpl.Decomposer.Sdp_backtrack layout
  in
  let manual = G.of_layout layout ~min_s:80 in
  Alcotest.(check int) "same graph" manual.G.n g.G.n;
  let re = C.evaluate g report.D.colors in
  Alcotest.(check int) "reported cost verifiable" report.D.cost.C.scaled
    re.C.scaled

(* The four color assignment algorithms ranked as in the paper: exact
   <= SDP+Backtrack <= Linear and SDP+Greedy on a hard-block circuit. *)
let test_algorithm_ordering () =
  let layout = Mpl_layout.Benchgen.circuit "S38417" in
  let g = G.of_layout layout ~min_s:80 in
  let cn algo = (D.assign algo g).D.cost.C.conflicts in
  let exact = cn D.Exact in
  let bt = cn D.Sdp_backtrack in
  let linear = cn D.Linear in
  let greedy = cn D.Sdp_greedy in
  Alcotest.(check int) "SDP+Backtrack optimal" exact bt;
  Alcotest.(check bool) "Linear within 15%" true
    (float_of_int linear <= 1.15 *. float_of_int exact +. 1.);
  Alcotest.(check bool) "Greedy worse than backtrack" true (greedy >= bt)

let suite =
  [
    Alcotest.test_case "fig 1: TPL native conflict" `Quick test_fig1;
    Alcotest.test_case "fig 4: color-friendly rule" `Quick test_fig4;
    Alcotest.test_case "fig 5: rotation lemma" `Quick test_fig5_rotation;
    Alcotest.test_case "fig 6: GH-tree 3-cut removal" `Quick test_fig6_ghtree;
    Alcotest.test_case "fig 7: K5 in regular patterns" `Quick test_fig7;
    Alcotest.test_case "fig 3: ideal color vectors" `Quick test_fig3_vectors;
    Alcotest.test_case "table 1 small-circuit optima" `Slow
      test_table1_small_circuits;
    Alcotest.test_case "table 2 C6288 golden" `Slow test_table2_c6288;
    Alcotest.test_case "decompose entry point" `Quick
      test_decompose_entry_point;
    Alcotest.test_case "algorithm quality ordering" `Slow
      test_algorithm_ordering;
  ]
