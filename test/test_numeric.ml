(* Tests for the numeric substrate: symmetric eigendecomposition, PSD
   projection, and the coloring SDP solver. *)

module Sym = Mpl_numeric.Symmetric
module Sdp = Mpl_numeric.Sdp
module Vec = Mpl_numeric.Vec

let sym_gen n =
  QCheck.Gen.(
    list_repeat (n * n) (float_range (-3.) 3.) >|= fun l ->
    let a = Array.of_list l in
    Array.init n (fun i ->
        Array.init n (fun j ->
            (a.((i * n) + j) +. a.((j * n) + i)) /. 2.)))

let test_vec_ops () =
  let v = Vec.of_array [| 3.; 4. |] in
  Alcotest.(check (float 1e-9)) "norm" 5. (Vec.norm v);
  let u = Vec.copy v in
  Vec.normalize u;
  Alcotest.(check (float 1e-9)) "unit" 1. (Vec.norm u);
  let w = Vec.zero 2 in
  Vec.axpy ~alpha:2. v w;
  Alcotest.(check (float 1e-9)) "axpy" 6. (Vec.get w 0);
  Alcotest.(check (float 1e-9)) "roundtrip" 4. (Vec.to_array v).(1);
  let z = Vec.of_array [| 0.; 0. |] in
  Vec.normalize z;
  Alcotest.(check (float 1e-9)) "degenerate normalize" 1. (Vec.norm z)

let prop_eigh_reconstructs =
  QCheck.Test.make ~name:"eigh reconstructs the matrix" ~count:60
    (QCheck.make QCheck.Gen.(int_range 1 8 >>= sym_gen))
    (fun a ->
      let n = Array.length a in
      let w, v = Sym.eigh a in
      let recon = Array.make_matrix n n 0. in
      for e = 0 to n - 1 do
        for i = 0 to n - 1 do
          for j = 0 to n - 1 do
            recon.(i).(j) <- recon.(i).(j) +. (w.(e) *. v.(i).(e) *. v.(j).(e))
          done
        done
      done;
      Sym.frobenius_distance a recon < 1e-6 *. float_of_int (n * n))

let prop_eigh_orthonormal =
  QCheck.Test.make ~name:"eigh eigenvectors orthonormal" ~count:60
    (QCheck.make QCheck.Gen.(int_range 1 8 >>= sym_gen))
    (fun a ->
      let n = Array.length a in
      let _, v = Sym.eigh a in
      let ok = ref true in
      for e = 0 to n - 1 do
        for f = 0 to n - 1 do
          let dot = ref 0. in
          for i = 0 to n - 1 do
            dot := !dot +. (v.(i).(e) *. v.(i).(f))
          done;
          let expect = if e = f then 1. else 0. in
          if abs_float (!dot -. expect) > 1e-6 then ok := false
        done
      done;
      !ok)

let prop_project_psd =
  QCheck.Test.make ~name:"PSD projection is PSD and idempotent-ish" ~count:60
    (QCheck.make QCheck.Gen.(int_range 1 7 >>= sym_gen))
    (fun a ->
      let p = Sym.project_psd a in
      let w, _ = Sym.eigh p in
      Array.for_all (fun x -> x > -1e-7) w
      && Sym.frobenius_distance p (Sym.project_psd p) < 1e-6)

let clique_problem n k =
  let edges = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      edges := (i, j) :: !edges
    done
  done;
  {
    Sdp.n;
    conflict_edges = Array.of_list !edges;
    stitch_edges = [||];
    k;
    alpha = 0.1;
  }

(* The SDP optimum of K_n with bound -1/(k-1):
   - if n <= k, all pairs sit at the bound: C(n,2) * (-1/(k-1));
   - if n > k, the barycentric spread gives -n/2 (sum of all pairs of n
     unit vectors summing to zero). *)
let test_clique_optima () =
  let check n k expected =
    let sol = Sdp.solve (clique_problem n k) in
    Alcotest.(check (float 0.05))
      (Printf.sprintf "K%d with k=%d" n k)
      expected sol.Sdp.objective
  in
  check 4 4 (-2.0);
  check 5 4 (-2.5);
  check 6 4 (-3.0);
  check 3 4 (-1.0);
  check 5 5 (-2.5);
  check 6 5 (-3.0)

let test_gram_properties () =
  let sol = Sdp.solve (clique_problem 5 4) in
  for i = 0 to 4 do
    Alcotest.(check (float 0.02)) "unit diagonal" 1. (Sdp.gram sol i i);
    for j = 0 to 4 do
      Alcotest.(check (float 1e-9))
        "symmetric" (Sdp.gram sol i j) (Sdp.gram sol j i);
      Alcotest.(check bool) "clamped" true
        (Sdp.gram sol i j >= -1. && Sdp.gram sol i j <= 1.)
    done
  done

let test_constraint_near_feasible () =
  (* K4, k=4: every conflict Gram entry should be near the -1/3 bound. *)
  let sol = Sdp.solve (clique_problem 4 4) in
  for i = 0 to 3 do
    for j = i + 1 to 3 do
      Alcotest.(check bool) "above bound" true
        (Sdp.gram sol i j >= Sdp.ideal_offdiag 4 -. 0.05)
    done
  done

let test_stitch_attraction () =
  (* Two vertices joined only by a stitch edge end up parallel. *)
  let p =
    {
      Sdp.n = 2;
      conflict_edges = [||];
      stitch_edges = [| (0, 1) |];
      k = 4;
      alpha = 0.1;
    }
  in
  let sol = Sdp.solve p in
  (* The stitch pull is weak (alpha = 0.1), so the projected-gradient
     iterate lands clearly positive but short of 1. *)
  Alcotest.(check bool) "parallel" true (Sdp.gram sol 0 1 > 0.5)

let test_modes_agree_on_k4 () =
  List.iter
    (fun mode ->
      let options = { Sdp.default_options with Sdp.mode } in
      let sol = Sdp.solve ~options (clique_problem 4 4) in
      Alcotest.(check bool)
        "objective within 20% of -2" true
        (sol.Sdp.objective < -1.6))
    [ Sdp.Projected; Sdp.Lagrangian; Sdp.Penalty ]

(* Random SDP instances mixing conflict and stitch edges. *)
let sdp_problem_gen =
  QCheck.Gen.(
    triple (int_range 2 12) (int_range 10 70) (int_range 0 9999)
    >|= fun (n, p, seed) ->
    let rng = Mpl_util.Rng.create seed in
    let ce = ref [] and se = ref [] in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        let r = Mpl_util.Rng.int rng 100 in
        if r < p then ce := (i, j) :: !ce
        else if r < p + 15 then se := (i, j) :: !se
      done
    done;
    {
      Sdp.n;
      conflict_edges = Array.of_list !ce;
      stitch_edges = Array.of_list !se;
      k = 4;
      alpha = 0.1;
    })

let sdp_problem_arb =
  QCheck.make
    ~print:(fun p ->
      Printf.sprintf "n=%d ce=%d se=%d" p.Sdp.n
        (Array.length p.Sdp.conflict_edges)
        (Array.length p.Sdp.stitch_edges))
    sdp_problem_gen

(* The flat edge-sparse kernel must replicate the dense reference's
   float-operation sequence exactly: not "close", bit-identical. *)
let prop_flat_matches_dense =
  QCheck.Test.make ~name:"flat SDP kernel bit-identical to dense reference"
    ~count:40 sdp_problem_arb
    (fun p ->
      let options = { Sdp.default_options with Sdp.mode = Sdp.Projected } in
      let flat = Sdp.solve ~options p in
      let dense = Sdp.solve_dense ~options p in
      Int64.bits_of_float flat.Sdp.objective
      = Int64.bits_of_float dense.Sdp.objective
      && flat.Sdp.iterations = dense.Sdp.iterations
      &&
      let ok = ref true in
      for c = 0 to (p.Sdp.n * p.Sdp.n) - 1 do
        if
          Int64.bits_of_float (Float.Array.get flat.Sdp.gram c)
          <> Int64.bits_of_float (Float.Array.get dense.Sdp.gram c)
        then ok := false
      done;
      !ok)

let test_warm_start () =
  let p = clique_problem 5 4 in
  let cold = Sdp.solve p in
  Alcotest.(check bool) "cold solve not marked warm" false cold.Sdp.warm;
  let warm = Sdp.solve ~warm:[| 0; 1; 2; 3; 0 |] p in
  Alcotest.(check bool) "warm solve marked warm" true warm.Sdp.warm;
  (* A warm start changes the trajectory, never the feasible set: the
     solution still satisfies the box constraints and lands at a
     comparable objective. *)
  Alcotest.(check bool)
    "warm objective comparable" true
    (warm.Sdp.objective < cold.Sdp.objective +. 0.3);
  for i = 0 to 4 do
    for j = i + 1 to 4 do
      Alcotest.(check bool) "warm above bound" true
        (Sdp.gram warm i j >= Sdp.ideal_offdiag 4 -. 0.05)
    done
  done;
  Alcotest.check_raises "warm length mismatch"
    (Invalid_argument "Sdp.solve: warm coloring length mismatch") (fun () ->
      ignore (Sdp.solve ~warm:[| 0; 1 |] p))

let test_ideal_offdiag () =
  Alcotest.(check (float 1e-9)) "k=4" (-1. /. 3.) (Sdp.ideal_offdiag 4);
  Alcotest.(check (float 1e-9)) "k=5" (-0.25) (Sdp.ideal_offdiag 5);
  Alcotest.check_raises "k=1" (Invalid_argument "Sdp.ideal_offdiag: k < 2")
    (fun () -> ignore (Sdp.ideal_offdiag 1))

let test_empty_problem () =
  let sol =
    Sdp.solve
      { Sdp.n = 0; conflict_edges = [||]; stitch_edges = [||]; k = 4; alpha = 0.1 }
  in
  Alcotest.(check (float 1e-9)) "empty objective" 0. sol.Sdp.objective

let suite =
  [
    Alcotest.test_case "vec ops" `Quick test_vec_ops;
    QCheck_alcotest.to_alcotest prop_eigh_reconstructs;
    QCheck_alcotest.to_alcotest prop_eigh_orthonormal;
    QCheck_alcotest.to_alcotest prop_project_psd;
    Alcotest.test_case "clique SDP optima" `Quick test_clique_optima;
    Alcotest.test_case "gram properties" `Quick test_gram_properties;
    Alcotest.test_case "near-feasible constraints" `Quick
      test_constraint_near_feasible;
    Alcotest.test_case "stitch attraction" `Quick test_stitch_attraction;
    Alcotest.test_case "all modes reasonable on K4" `Quick
      test_modes_agree_on_k4;
    QCheck_alcotest.to_alcotest prop_flat_matches_dense;
    Alcotest.test_case "warm start" `Quick test_warm_start;
    Alcotest.test_case "ideal offdiag" `Quick test_ideal_offdiag;
    Alcotest.test_case "empty problem" `Quick test_empty_problem;
  ]
