(* mpl_obs: JSON codec, metrics registry, span sink, exporters, and the
   end-to-end guarantee that tracing never perturbs decomposition
   results. *)

module Obs = Mpl_obs.Obs
module Sink = Mpl_obs.Sink
module Metrics = Mpl_obs.Metrics
module Json = Mpl_obs.Json
module Export = Mpl_obs.Export
module D = Mpl.Decomposer
module C = Mpl.Coloring

(* ------------------------------------------------------------------ *)
(* Json *)

let parse_ok s =
  match Json.parse s with
  | Ok v -> v
  | Error e -> Alcotest.failf "parse %S: %s" s e

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("a", Json.List [ Json.Int 1; Json.Float 2.5; Json.Bool true ]);
        ("b", Json.Null);
        ("c", Json.Str "x\"y\\z\n");
      ]
  in
  let s = Json.to_string v in
  Alcotest.(check bool) "round-trip" true (parse_ok s = v)

let test_json_parse () =
  (match parse_ok "{\"k\": [1, -2.5e1, \"\\u00e9\", true, null]}" with
  | Json.Obj [ ("k", Json.List [ a; b; c; d; e ]) ] ->
    Alcotest.(check bool) "int" true (a = Json.Int 1);
    Alcotest.(check (float 1e-9)) "float" (-25.) (Option.get (Json.to_float b));
    Alcotest.(check bool) "utf8 escape" true (c = Json.Str "\xc3\xa9");
    Alcotest.(check bool) "bool" true (d = Json.Bool true);
    Alcotest.(check bool) "null" true (e = Json.Null)
  | _ -> Alcotest.fail "unexpected shape");
  List.iter
    (fun s ->
      match Json.parse s with
      | Ok _ -> Alcotest.failf "accepted malformed %S" s
      | Error _ -> ())
    [ "{"; "[1,]"; "nul"; "\"unterminated"; "{\"a\" 1}"; "[1] trailing" ]

let test_json_member () =
  let v = parse_ok "{\"x\": {\"y\": 3}}" in
  match Json.member "x" v with
  | Some inner ->
    Alcotest.(check bool) "nested" true (Json.member "y" inner = Some (Json.Int 3));
    Alcotest.(check bool) "missing" true (Json.member "z" inner = None)
  | None -> Alcotest.fail "member x"

(* ------------------------------------------------------------------ *)
(* Metrics *)

let test_metrics_basics () =
  let m = Metrics.create () in
  let c = Metrics.counter m "c" in
  Metrics.incr c;
  Metrics.add c 4;
  let g = Metrics.gauge m "g" in
  Metrics.set g 2.;
  Metrics.max_gauge g 7.;
  Metrics.max_gauge g 3.;
  let h = Metrics.histogram m "h" in
  List.iter (Metrics.observe h) [ 0.5; 1.; 3.; 1024. ];
  let s = Metrics.snapshot m in
  Alcotest.(check (option int)) "counter" (Some 5) (Metrics.find_counter s "c");
  Alcotest.(check (list (pair string (float 1e-9)))) "gauge" [ ("g", 7.) ]
    s.Metrics.gauges;
  match s.Metrics.histograms with
  | [ ("h", hs) ] ->
    Alcotest.(check int) "count" 4 hs.Metrics.count;
    Alcotest.(check (float 1e-9)) "sum" 1028.5 hs.Metrics.sum;
    Alcotest.(check (float 1e-9)) "min" 0.5 hs.Metrics.min_v;
    Alcotest.(check (float 1e-9)) "max" 1024. hs.Metrics.max_v;
    (* 0.5 -> [0,1); 1 -> [1,2); 3 -> [2,4); 1024 -> [1024,2048) *)
    Alcotest.(check bool) "buckets" true
      (hs.Metrics.buckets
      = [ (0., 1., 1); (1., 2., 1); (2., 4., 1); (1024., 2048., 1) ])
  | _ -> Alcotest.fail "expected one histogram"

let test_metrics_null () =
  let m = Metrics.null in
  Alcotest.(check bool) "disabled" false (Metrics.enabled m);
  Metrics.incr (Metrics.counter m "c");
  Metrics.observe (Metrics.histogram m "h") 1.;
  Metrics.set (Metrics.gauge m "g") 1.;
  let s = Metrics.snapshot m in
  Alcotest.(check bool) "empty snapshot" true
    (s.Metrics.counters = [] && s.Metrics.gauges = []
   && s.Metrics.histograms = [])

(* ------------------------------------------------------------------ *)
(* Sink *)

let test_sink_nesting () =
  let sink = Sink.create () in
  let obs = Obs.make ~sink () in
  let r =
    Obs.span obs "outer" (fun () ->
        Obs.span obs "inner.a" (fun () -> ()) ;
        Obs.span obs "inner.b" (fun () -> 41) + 1)
  in
  Alcotest.(check int) "value" 42 r;
  let events = Sink.events sink in
  Alcotest.(check (list string)) "order: parents before children"
    [ "outer"; "inner.a"; "inner.b" ]
    (List.map (fun (e : Sink.event) -> e.Sink.name) events);
  let outer = List.hd events in
  List.iter
    (fun (e : Sink.event) ->
      Alcotest.(check bool) (e.Sink.name ^ " inside outer") true
        (e.Sink.ts_ns >= outer.Sink.ts_ns
        && Int64.add e.Sink.ts_ns e.Sink.dur_ns
           <= Int64.add outer.Sink.ts_ns outer.Sink.dur_ns))
    (List.tl events);
  Alcotest.(check string) "default category" "inner"
    (List.nth events 1).Sink.cat

let test_sink_null () =
  let calls = ref 0 in
  let r =
    Sink.span Sink.null "x" (fun () ->
        incr calls;
        7)
  in
  Alcotest.(check int) "runs thunk" 1 !calls;
  Alcotest.(check int) "value" 7 r;
  Alcotest.(check int) "no events" 0 (List.length (Sink.events Sink.null))

let test_sink_exception () =
  let sink = Sink.create () in
  (try Sink.span sink "boom" (fun () -> failwith "x") with Failure _ -> ());
  Alcotest.(check int) "span recorded on raise" 1
    (List.length (Sink.events sink))

(* ------------------------------------------------------------------ *)
(* Export *)

let test_chrome_export () =
  let sink = Sink.create () in
  let obs = Obs.make ~sink () in
  Obs.span obs "phase.a" ~args:[ ("n", Sink.Int 3) ] (fun () ->
      Obs.span obs "phase.b" (fun () -> ()));
  let s = Export.chrome_json (Sink.events sink) in
  (match Export.validate_chrome ~required:[ "phase.a"; "phase.b" ] s with
  | Ok n -> Alcotest.(check int) "span count" 2 n
  | Error e -> Alcotest.failf "invalid chrome trace: %s" e);
  (match Export.validate_chrome ~required:[ "phase.c" ] s with
  | Ok _ -> Alcotest.fail "missing required span not detected"
  | Error _ -> ());
  match Export.validate_chrome "{\"traceEvents\": 3}" with
  | Ok _ -> Alcotest.fail "accepted non-list traceEvents"
  | Error _ -> ()

let test_metrics_export () =
  let m = Metrics.create () in
  Metrics.add (Metrics.counter m "a.count") 3;
  Metrics.observe (Metrics.histogram m "a.hist") 5.;
  let j = Export.metrics_json (Metrics.snapshot m) in
  (* The export is valid JSON and survives a parse round-trip. *)
  let s = Json.to_string j in
  match Json.parse s with
  | Error e -> Alcotest.failf "metrics json: %s" e
  | Ok v ->
    let counters = Option.get (Json.member "counters" v) in
    Alcotest.(check bool) "counter value" true
      (Json.member "a.count" counters = Some (Json.Int 3))

let test_metrics_percentiles () =
  let m = Metrics.create () in
  let h = Metrics.histogram m "lat" in
  for v = 1 to 1000 do
    Metrics.observe h (float_of_int v)
  done;
  let s = Metrics.snapshot m in
  let hs =
    match Metrics.find_histogram s "lat" with
    | Some hs -> hs
    | None -> Alcotest.fail "histogram missing from snapshot"
  in
  (match Metrics.percentiles hs [ 0.5; 0.9; 0.99 ] with
  | [ p50; p90; p99 ] ->
    (* Log2 buckets bound any estimate within 2x of the true value. *)
    let within true_v est =
      est >= true_v /. 2. && est <= Float.min (true_v *. 2.) hs.Metrics.max_v
    in
    Alcotest.(check bool) "p50 within 2x of 500" true (within 500. p50);
    Alcotest.(check bool) "p90 within 2x of 900" true (within 900. p90);
    Alcotest.(check bool) "p99 within 2x of 990" true (within 990. p99);
    Alcotest.(check bool) "monotone" true (p50 <= p90 && p90 <= p99)
  | _ -> Alcotest.fail "percentiles arity");
  (* Edge quantiles clamp to the observed extremes. *)
  Alcotest.(check (float 1e-9)) "q=0 is min" 1. (Metrics.percentile hs 0.);
  Alcotest.(check (float 1e-9)) "q=1 is max" 1000. (Metrics.percentile hs 1.);
  (* A constant distribution is exact at every quantile: min = max
     clamps the in-bucket interpolation. *)
  let m2 = Metrics.create () in
  let h2 = Metrics.histogram m2 "const" in
  for _ = 1 to 100 do
    Metrics.observe h2 42.
  done;
  let hs2 =
    Option.get (Metrics.find_histogram (Metrics.snapshot m2) "const")
  in
  List.iter
    (fun q ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "constant q=%.2f" q)
        42. (Metrics.percentile hs2 q))
    [ 0.01; 0.5; 0.99 ];
  (* Empty histogram: everything is 0. *)
  let hs3 = Option.get (Metrics.find_histogram (Metrics.snapshot m2) "const") in
  ignore hs3;
  let m3 = Metrics.create () in
  let _ = Metrics.histogram m3 "empty" in
  let hs4 = Option.get (Metrics.find_histogram (Metrics.snapshot m3) "empty") in
  Alcotest.(check (float 1e-9)) "empty" 0. (Metrics.percentile hs4 0.5)

(* ------------------------------------------------------------------ *)
(* Prometheus exposition *)

let test_prometheus_roundtrip () =
  let m = Metrics.create () in
  Metrics.add (Metrics.counter m "server.served") 12;
  Metrics.set (Metrics.gauge m "cache.bytes") 4096.;
  let h = Metrics.histogram m "server.e2e_ns" in
  List.iter (Metrics.observe h) [ 0.25; 3.; 3.; 900.; 1.5e6 ];
  let text = Export.prometheus (Metrics.snapshot m) in
  (match Export.validate_prometheus text with
  | Ok n -> Alcotest.(check bool) "sample count" true (n >= 7)
  | Error e -> Alcotest.failf "own exposition rejected: %s" e);
  Alcotest.(check bool) "namespaced, sanitized name" true
    (let rec contains i =
       i + 16 <= String.length text
       && (String.sub text i 16 = "mpl_server_served" || contains (i + 1))
     in
     contains 0
     ||
     let rec c2 i =
       i + 17 <= String.length text
       && (String.sub text i 17 = "mpl_server_served" || c2 (i + 1))
     in
     c2 0)

let test_prometheus_rejects () =
  List.iter
    (fun (what, text) ->
      match Export.validate_prometheus text with
      | Ok _ -> Alcotest.failf "accepted %s" what
      | Error _ -> ())
    [
      ("bad metric name", "# TYPE 1bad counter\n1bad 0\n");
      ("bad sample value", "# TYPE a counter\na zzz\n");
      ("duplicate TYPE", "# TYPE a counter\n# TYPE a counter\na 1\n");
      ("unknown type", "# TYPE a sparkline\na 1\n");
      ( "non-cumulative histogram",
        "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\n\
         h_bucket{le=\"+Inf\"} 5\nh_sum 9\nh_count 5\n" );
      ( "missing +Inf bucket",
        "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_sum 5\nh_count 5\n" );
      ( "count disagrees with +Inf",
        "# TYPE h histogram\nh_bucket{le=\"1\"} 5\n\
         h_bucket{le=\"+Inf\"} 5\nh_sum 5\nh_count 7\n" );
      ( "non-monotone le",
        "# TYPE h histogram\nh_bucket{le=\"5\"} 1\nh_bucket{le=\"2\"} 2\n\
         h_bucket{le=\"+Inf\"} 3\nh_sum 5\nh_count 3\n" );
    ];
  (* And a known-good handwritten document parses. *)
  match
    Export.validate_prometheus
      "# TYPE up gauge\nup 1\n# TYPE h histogram\nh_bucket{le=\"1\"} 2\n\
       h_bucket{le=\"+Inf\"} 4\nh_sum 6.5\nh_count 4\n"
  with
  | Ok n -> Alcotest.(check int) "handwritten samples" 5 n
  | Error e -> Alcotest.failf "rejected good doc: %s" e

(* ------------------------------------------------------------------ *)
(* Access-log rotation *)

let test_logfile_rotation () =
  let path = Filename.temp_file "mpld-log" ".jsonl" in
  let rotated = path ^ ".1" in
  let cleanup () =
    List.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) [ path; rotated ]
  in
  Fun.protect ~finally:cleanup (fun () ->
      let t = Mpl_obs.Logfile.open_ ~max_bytes:256 path in
      let line = String.make 63 'x' in
      for _ = 1 to 20 do
        Mpl_obs.Logfile.write t line
      done;
      Mpl_obs.Logfile.close t;
      Alcotest.(check bool) "rotated at least once" true
        (Mpl_obs.Logfile.rotations t >= 1);
      Alcotest.(check bool) "rotated file exists" true (Sys.file_exists rotated);
      (* Disk footprint stays bounded by ~2x max_bytes. *)
      let size p = (Unix.stat p).Unix.st_size in
      Alcotest.(check bool) "live file within budget" true (size path <= 256);
      Alcotest.(check bool) "rotated file within budget" true
        (size rotated <= 256);
      (* Every surviving line is intact (no torn writes across rotation). *)
      let ic = open_in path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          try
            while true do
              Alcotest.(check string) "line intact" line (input_line ic)
            done
          with End_of_file -> ()))

(* ------------------------------------------------------------------ *)
(* Sink ambient tags (request-scoped attribution) *)

let test_sink_tags () =
  let sink = Sink.create ~tags:[ ("rid", Sink.Str "7"); ("k", Sink.Int 4) ] () in
  let obs = Obs.make ~sink () in
  Obs.span obs "outer" (fun () ->
      Obs.span obs "inner.x" ~args:[ ("n", Sink.Int 3) ] (fun () -> ()));
  let events = Sink.events sink in
  Alcotest.(check int) "both spans" 2 (List.length events);
  List.iter
    (fun (e : Sink.event) ->
      Alcotest.(check bool) (e.Sink.name ^ " tagged rid") true
        (List.mem ("rid", Sink.Str "7") e.Sink.args);
      Alcotest.(check bool) (e.Sink.name ^ " tagged k") true
        (List.mem ("k", Sink.Int 4) e.Sink.args))
    events;
  (* Explicit span args survive alongside the ambient tags. *)
  let inner =
    List.find (fun (e : Sink.event) -> e.Sink.name = "inner.x") events
  in
  Alcotest.(check bool) "own args kept" true
    (List.mem ("n", Sink.Int 3) inner.Sink.args)

(* ------------------------------------------------------------------ *)
(* Monotonic timer (satellite: Timer now reads CLOCK_MONOTONIC) *)

let test_timer_monotonic () =
  let a = Mpl_util.Timer.now_ns () in
  let b = Mpl_util.Timer.now_ns () in
  Alcotest.(check bool) "non-decreasing" true (Int64.compare a b <= 0);
  let t = Mpl_util.Timer.start () in
  ignore (Sys.opaque_identity (Array.init 1000 (fun i -> i * i)));
  Alcotest.(check bool) "elapsed >= 0" true (Mpl_util.Timer.elapsed_s t >= 0.)

(* ------------------------------------------------------------------ *)
(* End-to-end: tracing never perturbs results; traces are well-formed *)

let layout_gen =
  QCheck.Gen.(
    int_range 1 2 >>= fun rows ->
    int_range 2 4 >>= fun cells ->
    int_range 0 1 >>= fun five ->
    int_range 0 2 >>= fun gadgets ->
    int_range 0 10_000 >|= fun seed ->
    {
      Mpl_layout.Benchgen.name = "qcheck-obs";
      seed;
      rows;
      cells_per_row = cells;
      density = 0.45;
      wire_fraction = 0.4;
      sparse_gap_prob = 0.8;
      native_five = five;
      native_six = 0;
      hard_blocks = 0;
      stitch_gadgets = gadgets;
      penta_six = 0;
    })

let layout_print spec =
  Printf.sprintf "rows=%d cells=%d five=%d gadgets=%d seed=%d"
    spec.Mpl_layout.Benchgen.rows spec.Mpl_layout.Benchgen.cells_per_row
    spec.Mpl_layout.Benchgen.native_five
    spec.Mpl_layout.Benchgen.stitch_gadgets spec.Mpl_layout.Benchgen.seed

let layout_arb = QCheck.make ~print:layout_print layout_gen

(* Spans on one domain must nest like a call stack: sorted by start
   time (ties: longer first), every span either starts after the top of
   the stack ends, or lies entirely within it. *)
let well_nested events =
  let by_tid = Hashtbl.create 8 in
  List.iter
    (fun (e : Sink.event) ->
      Hashtbl.replace by_tid e.Sink.tid
        (e :: (Option.value ~default:[] (Hashtbl.find_opt by_tid e.Sink.tid))))
    events;
  Hashtbl.fold
    (fun _tid evs acc ->
      acc
      &&
      let evs =
        List.sort
          (fun (a : Sink.event) (b : Sink.event) ->
            let c = Int64.compare a.Sink.ts_ns b.Sink.ts_ns in
            if c <> 0 then c else Int64.compare b.Sink.dur_ns a.Sink.dur_ns)
          (List.rev evs)
      in
      let fits (e : Sink.event) (top : Sink.event) =
        e.Sink.ts_ns >= top.Sink.ts_ns
        && Int64.add e.Sink.ts_ns e.Sink.dur_ns
           <= Int64.add top.Sink.ts_ns top.Sink.dur_ns
      in
      let rec go stack = function
        | [] -> true
        | (e : Sink.event) :: rest ->
          let stack =
            (* Pop finished spans. *)
            let rec pop = function
              | top :: below
                when Int64.add top.Sink.ts_ns top.Sink.dur_ns <= e.Sink.ts_ns
                     && not (fits e top) ->
                pop below
              | s -> s
            in
            pop stack
          in
          (match stack with
          | [] -> go [ e ] rest
          | top :: _ -> fits e top && go (e :: stack) rest)
      in
      go [] evs)
    by_tid true

let prop_trace_is_pure_observation =
  QCheck.Test.make ~count:12
    ~name:"tracing: identical results, valid well-nested Chrome trace"
    layout_arb (fun spec ->
      let layout = Mpl_layout.Benchgen.generate spec in
      List.for_all
        (fun algo ->
          let run ~jobs ~trace =
            let params =
              {
                D.default_params with
                D.jobs;
                cache = jobs > 1;
                solver_budget_s = 0.;
                trace;
                metrics = trace <> None;
              }
            in
            D.decompose ~params ~min_s:80 algo layout
          in
          let _, reference = run ~jobs:1 ~trace:None in
          List.for_all
            (fun jobs ->
              let sink = Sink.create () in
              let g, r = run ~jobs ~trace:(Some sink) in
              let events = Sink.events sink in
              let chrome = Export.chrome_json events in
              let required =
                [
                  "assign";
                  "graph.build";
                  "graph.stitch_split";
                  "graph.neighbor_search";
                  "division.components";
                ]
                @ (if jobs > 1 then [ "engine.batch" ] else [])
              in
              let valid =
                match Export.validate_chrome ~required chrome with
                | Ok _ -> true
                | Error e ->
                  QCheck.Test.fail_reportf "invalid trace (jobs=%d): %s" jobs e
              in
              valid && well_nested events
              && r.D.colors = reference.D.colors
              && r.D.cost = reference.D.cost
              && C.is_complete r.D.colors
              && C.evaluate g r.D.colors = r.D.cost
              (* metrics were collected and cover the whole graph *)
              &&
              match r.D.metrics with
              | None -> QCheck.Test.fail_report "metrics snapshot missing"
              | Some snap ->
                Metrics.find_counter snap "graph.nodes"
                = Some g.Mpl.Decomp_graph.n)
            [ 1; 2; 4 ])
        [ D.Linear; D.Sdp_backtrack ])

let suite =
  [
    Alcotest.test_case "json: round-trip" `Quick test_json_roundtrip;
    Alcotest.test_case "json: parse" `Quick test_json_parse;
    Alcotest.test_case "json: member" `Quick test_json_member;
    Alcotest.test_case "metrics: basics" `Quick test_metrics_basics;
    Alcotest.test_case "metrics: null registry" `Quick test_metrics_null;
    Alcotest.test_case "metrics: percentiles" `Quick test_metrics_percentiles;
    Alcotest.test_case "export: prometheus round trip" `Quick
      test_prometheus_roundtrip;
    Alcotest.test_case "export: prometheus validator rejects" `Quick
      test_prometheus_rejects;
    Alcotest.test_case "logfile: rotation" `Quick test_logfile_rotation;
    Alcotest.test_case "sink: ambient tags" `Quick test_sink_tags;
    Alcotest.test_case "sink: nesting" `Quick test_sink_nesting;
    Alcotest.test_case "sink: null" `Quick test_sink_null;
    Alcotest.test_case "sink: exception safety" `Quick test_sink_exception;
    Alcotest.test_case "export: chrome trace" `Quick test_chrome_export;
    Alcotest.test_case "export: metrics json" `Quick test_metrics_export;
    Alcotest.test_case "timer: monotonic" `Quick test_timer_monotonic;
    QCheck_alcotest.to_alcotest prop_trace_is_pure_observation;
  ]
