(* Unit and property tests for Mpl_graph, validated against brute-force
   oracles on random graphs. *)

module Ugraph = Mpl_graph.Ugraph
module Dsu = Mpl_graph.Dsu
module Connectivity = Mpl_graph.Connectivity
module Biconnected = Mpl_graph.Biconnected
module Maxflow = Mpl_graph.Maxflow
module Gomory_hu = Mpl_graph.Gomory_hu
module Oracle = Mpl_graph.Oracle

(* Random graph generator: n in [2,10], each edge present with ~p. *)
let graph_gen =
  QCheck.Gen.(
    int_range 2 10 >>= fun n ->
    int_range 0 100 >>= fun p ->
    let edges = ref [] in
    let rec collect i j k =
      if i >= n then return (n, !edges, k)
      else if j >= n then collect (i + 1) (i + 2) k
      else
        int_range 0 99 >>= fun r ->
        if r < p then begin
          edges := (i, j) :: !edges;
          collect i (j + 1) (k + 1)
        end
        else collect i (j + 1) k
    in
    collect 0 1 0 >|= fun (n, edges, _) -> (n, edges))

let graph_arb =
  QCheck.make
    ~print:(fun (n, edges) ->
      Printf.sprintf "n=%d edges=[%s]" n
        (String.concat ";"
           (List.map (fun (u, v) -> Printf.sprintf "(%d,%d)" u v) edges)))
    graph_gen

let build (n, edges) = Ugraph.of_edges n edges

let test_dsu () =
  let d = Dsu.create 5 in
  Alcotest.(check int) "initial count" 5 (Dsu.count d);
  Alcotest.(check bool) "union 0 1" true (Dsu.union d 0 1);
  Alcotest.(check bool) "union again" false (Dsu.union d 1 0);
  Alcotest.(check bool) "same" true (Dsu.same d 0 1);
  Alcotest.(check bool) "not same" false (Dsu.same d 0 2);
  ignore (Dsu.union d 2 3);
  ignore (Dsu.union d 0 3);
  Alcotest.(check int) "count after unions" 2 (Dsu.count d);
  let sizes =
    Array.to_list (Dsu.groups d) |> List.map List.length |> List.sort compare
  in
  Alcotest.(check (list int)) "group sizes" [ 1; 4 ] sizes

let test_ugraph_basics () =
  let g = Ugraph.create 4 in
  Ugraph.add_edge g 0 1;
  Ugraph.add_edge g 1 0;
  (* duplicate collapses *)
  Alcotest.(check int) "edge count" 1 (Ugraph.edge_count g);
  Alcotest.(check bool) "mem" true (Ugraph.mem_edge g 1 0);
  Alcotest.(check int) "degree" 1 (Ugraph.degree g 0);
  Alcotest.check_raises "self loop"
    (Invalid_argument "Ugraph.add_edge: self-loop") (fun () ->
      Ugraph.add_edge g 2 2)

let test_induced () =
  let g = Ugraph.of_edges 5 [ (0, 1); (1, 2); (2, 3); (3, 4); (0, 4) ] in
  let sub, back = Ugraph.induced g [| 0; 1; 4 |] in
  Alcotest.(check int) "sub n" 3 (Ugraph.n sub);
  Alcotest.(check int) "sub edges" 2 (Ugraph.edge_count sub);
  Alcotest.(check (array int)) "back map" [| 0; 1; 4 |] back

let prop_components_partition =
  QCheck.Test.make ~name:"components partition the vertex set" ~count:300
    graph_arb
    (fun (n, edges) ->
      let g = build (n, edges) in
      let comps = Connectivity.components g in
      let all = Array.concat (Array.to_list comps) in
      Array.sort compare all;
      all = Array.init n Fun.id)

let prop_components_closed =
  QCheck.Test.make ~name:"no edge crosses components" ~count:300 graph_arb
    (fun (n, edges) ->
      let g = build (n, edges) in
      let lbl, _ = Connectivity.labels g in
      List.for_all (fun (u, v) -> lbl.(u) = lbl.(v)) edges)

let prop_articulation_matches_oracle =
  QCheck.Test.make ~name:"articulation points match brute force" ~count:300
    graph_arb
    (fun (n, edges) ->
      let g = build (n, edges) in
      let fast = Biconnected.articulation_points g in
      let ok = ref true in
      for v = 0 to n - 1 do
        if fast.(v) <> Oracle.is_articulation g v then ok := false
      done;
      !ok)

let prop_blocks_cover_edges =
  QCheck.Test.make ~name:"biconnected blocks cover all edges" ~count:300
    graph_arb
    (fun (n, edges) ->
      let g = build (n, edges) in
      let blocks = Biconnected.blocks g in
      List.for_all
        (fun (u, v) ->
          List.exists
            (fun b ->
              let has x = Array.exists (( = ) x) b in
              has u && has v)
            blocks)
        edges)

let prop_maxflow_matches_oracle =
  QCheck.Test.make ~name:"Dinic max-flow = brute-force min cut" ~count:200
    graph_arb
    (fun (n, edges) ->
      let g = build (n, edges) in
      let net = Maxflow.of_ugraph g in
      let ok = ref true in
      for s = 0 to n - 1 do
        let t = (s + 1) mod n in
        if s <> t then begin
          let flow = Maxflow.max_flow net ~s ~t:t in
          if flow <> Oracle.min_st_cut g ~s ~t then ok := false
        end
      done;
      !ok)

let prop_min_cut_side_valid =
  QCheck.Test.make ~name:"residual cut side has cut-value crossing edges"
    ~count:200 graph_arb
    (fun (n, edges) ->
      let g = build (n, edges) in
      n < 2
      ||
      let net = Maxflow.of_ugraph g in
      let flow = Maxflow.max_flow net ~s:0 ~t:(n - 1) in
      let side = Maxflow.min_cut_side net ~s:0 in
      let in_side = Array.make n false in
      Array.iter (fun v -> in_side.(v) <- true) side;
      let crossing =
        List.length (List.filter (fun (u, v) -> in_side.(u) <> in_side.(v)) edges)
      in
      in_side.(0) && (not in_side.(n - 1)) && crossing = flow)

let prop_bounded_flow_is_min =
  QCheck.Test.make ~name:"bounded max-flow = min(max flow, bound)" ~count:200
    graph_arb
    (fun (n, edges) ->
      let g = build (n, edges) in
      let net = Maxflow.of_ugraph g in
      let ok = ref true in
      for s = 0 to n - 1 do
        let t = (s + 1) mod n in
        if s <> t then begin
          let full = Maxflow.max_flow net ~s ~t:t in
          for b = 0 to 5 do
            let f = Maxflow.max_flow_bounded net ~bound:b ~s ~t:t in
            if f <> min full b then ok := false;
            (* Below the bound the run ended on an empty level graph, so
               the residual witnesses a genuine minimum cut. *)
            if f < b then begin
              let side = Maxflow.min_cut_side net ~s in
              let in_side = Array.make n false in
              Array.iter (fun v -> in_side.(v) <- true) side;
              let crossing =
                List.length
                  (List.filter (fun (u, v) -> in_side.(u) <> in_side.(v)) edges)
              in
              if not (in_side.(s) && (not in_side.(t)) && crossing = f) then
                ok := false
            end
          done
        end
      done;
      !ok)

(* The central Gomory-Hu property: tree min-edge on the path = min cut. *)
let connected_graph_gen =
  QCheck.Gen.(
    graph_gen >|= fun (n, edges) ->
    (* Chain all vertices so the graph is connected. *)
    let chain = List.init (n - 1) (fun i -> (i, i + 1)) in
    (n, List.sort_uniq compare (chain @ edges)))

let connected_graph_arb =
  QCheck.make
    ~print:(fun (n, edges) ->
      Printf.sprintf "n=%d edges=[%s]" n
        (String.concat ";"
           (List.map (fun (u, v) -> Printf.sprintf "(%d,%d)" u v) edges)))
    connected_graph_gen

let prop_gomory_hu_all_pairs =
  QCheck.Test.make ~name:"GH-tree gives all-pairs min cut values" ~count:150
    connected_graph_arb
    (fun (n, edges) ->
      let g = build (n, edges) in
      let ght = Gomory_hu.build g in
      let net = Maxflow.of_ugraph g in
      let ok = ref true in
      for u = 0 to n - 1 do
        for v = u + 1 to n - 1 do
          let tree = Gomory_hu.min_cut_value ght u v in
          let direct = Maxflow.max_flow net ~s:u ~t:v in
          if tree <> direct then ok := false
        done
      done;
      !ok)

let prop_gh_components_separated_by_small_cut =
  QCheck.Test.make
    ~name:"GH groups: inside pairs have cut >= w, cross pairs < w" ~count:100
    connected_graph_arb
    (fun (n, edges) ->
      let g = build (n, edges) in
      let ght = Gomory_hu.build g in
      let w = 3 in
      let groups = Gomory_hu.components_with_min_weight ght w in
      let group_of = Array.make n (-1) in
      Array.iteri
        (fun gi vs -> Array.iter (fun v -> group_of.(v) <- gi) vs)
        groups;
      let net = Maxflow.of_ugraph g in
      let ok = ref true in
      for u = 0 to n - 1 do
        for v = u + 1 to n - 1 do
          let cut = Maxflow.max_flow net ~s:u ~t:v in
          if group_of.(u) = group_of.(v) then begin
            if cut < w then ok := false
          end
          else if cut >= w then ok := false
        done
      done;
      !ok)

(* The structure the division stage relies on from a K-bounded tree:
   every uncapped edge records its pair's true min cut, capped edges
   record exactly the bound, and the minimum recorded weight equals
   min(lambda, K) where lambda is the graph's global min cut — so "is
   there a cut < K, and how small" answers identically to the exact
   tree. *)
let prop_bounded_gh_small_cut_structure =
  QCheck.Test.make
    ~name:"K-bounded GH tree: sound edges, exact global min below K"
    ~count:150 connected_graph_arb
    (fun (n, edges) ->
      let g = build (n, edges) in
      let b = 4 in
      let full = Gomory_hu.build g in
      let bounded = Gomory_hu.build ~bound:b g in
      let net = Maxflow.of_ugraph g in
      let min_w t =
        Array.fold_left
          (fun acc (_, _, w) -> min acc w)
          max_int (Gomory_hu.tree_edges t)
      in
      let sound = ref true and at_cap = ref 0 in
      Array.iter
        (fun (v, p, w) ->
          if w >= b then begin
            incr at_cap;
            if w > b then sound := false
          end
          else if w <> Maxflow.max_flow net ~s:v ~t:p then sound := false)
        (Gomory_hu.tree_edges bounded);
      ignore edges;
      !sound
      && !at_cap = Gomory_hu.capped bounded
      && (n < 2 || min_w bounded = min (min_w full) b))

let test_known_cut () =
  (* Two triangles joined by one bridge: min cut across = 1. *)
  let g =
    Ugraph.of_edges 6 [ (0, 1); (1, 2); (0, 2); (3, 4); (4, 5); (3, 5); (2, 3) ]
  in
  let net = Maxflow.of_ugraph g in
  Alcotest.(check int) "bridge cut" 1 (Maxflow.max_flow net ~s:0 ~t:5);
  Alcotest.(check int) "triangle cut" 2 (Maxflow.max_flow net ~s:0 ~t:1);
  let ght = Gomory_hu.build g in
  Alcotest.(check int) "tree bridge value" 1 (Gomory_hu.min_cut_value ght 0 5);
  let groups = Gomory_hu.components_with_min_weight ght 2 in
  Alcotest.(check int) "two groups at w=2" 2 (Array.length groups)

let test_gomory_hu_errors () =
  let g = Ugraph.of_edges 3 [ (0, 1); (1, 2) ] in
  let ght = Gomory_hu.build g in
  Alcotest.check_raises "u = v"
    (Invalid_argument "Gomory_hu.min_cut_value: u = v") (fun () ->
      ignore (Gomory_hu.min_cut_value ght 1 1));
  Alcotest.(check int) "n" 3 (Gomory_hu.n ght);
  Alcotest.(check int) "tree edges" 2 (Array.length (Gomory_hu.tree_edges ght));
  (* Removing edges below weight 1 removes nothing. *)
  Alcotest.(check int) "w=1 keeps everything" 1
    (Array.length (Gomory_hu.components_with_min_weight ght 1));
  (* Removing everything below weight 99 isolates all vertices. *)
  Alcotest.(check int) "w=99 isolates" 3
    (Array.length (Gomory_hu.components_with_min_weight ght 99))

let test_maxflow_reset_between_queries () =
  let g = Ugraph.of_edges 4 [ (0, 1); (1, 2); (2, 3); (0, 2); (1, 3) ] in
  let net = Maxflow.of_ugraph g in
  let a1 = Maxflow.max_flow net ~s:0 ~t:3 in
  let a2 = Maxflow.max_flow net ~s:0 ~t:3 in
  Alcotest.(check int) "repeatable" a1 a2;
  let b = Maxflow.max_flow net ~s:1 ~t:2 in
  let a3 = Maxflow.max_flow net ~s:0 ~t:3 in
  Alcotest.(check int) "interleaved queries repeatable" a1 a3;
  Alcotest.(check bool) "other pair sane" true (b >= 1)

let test_weighted_maxflow () =
  let net = Maxflow.create 3 in
  Maxflow.add_edge net 0 1 ~cap:5;
  Maxflow.add_edge net 1 2 ~cap:3;
  Alcotest.(check int) "bottleneck" 3 (Maxflow.max_flow net ~s:0 ~t:2)

let suite =
  [
    Alcotest.test_case "gomory-hu edge cases" `Quick test_gomory_hu_errors;
    Alcotest.test_case "maxflow reset" `Quick test_maxflow_reset_between_queries;
    Alcotest.test_case "weighted maxflow" `Quick test_weighted_maxflow;
    Alcotest.test_case "dsu" `Quick test_dsu;
    Alcotest.test_case "ugraph basics" `Quick test_ugraph_basics;
    Alcotest.test_case "induced subgraph" `Quick test_induced;
    QCheck_alcotest.to_alcotest prop_components_partition;
    QCheck_alcotest.to_alcotest prop_components_closed;
    QCheck_alcotest.to_alcotest prop_articulation_matches_oracle;
    QCheck_alcotest.to_alcotest prop_blocks_cover_edges;
    QCheck_alcotest.to_alcotest prop_maxflow_matches_oracle;
    QCheck_alcotest.to_alcotest prop_min_cut_side_valid;
    QCheck_alcotest.to_alcotest prop_bounded_flow_is_min;
    QCheck_alcotest.to_alcotest prop_gomory_hu_all_pairs;
    QCheck_alcotest.to_alcotest prop_bounded_gh_small_cut_structure;
    QCheck_alcotest.to_alcotest prop_gh_components_separated_by_small_cut;
    Alcotest.test_case "known cuts" `Quick test_known_cut;
  ]
