(* End-to-end tests for the mpl_server subsystem: protocol round
   trips, server/one-shot parity (bit-identical colorings over a Unix
   socket, including under concurrent mixed-priority requests), the
   shared cross-request cache (second identical request fully
   cache-served), resilience reporting under fault injection, and the
   persisted-cache warm restart. *)

module Server = Mpl_server.Server
module Client = Mpl_server.Client
module Proto = Mpl_server.Proto
module Ring = Mpl_server.Ring
module Engine = Mpl_engine.Engine
module Fault = Mpl_engine.Fault
module D = Mpl.Decomposer
module C = Mpl.Coloring
module G = Mpl.Decomp_graph

(* ------------------------------------------------------------------ *)
(* Protocol round trips (pure, no sockets) *)

let test_proto_request_roundtrip () =
  let r =
    {
      Proto.k = 5;
      algo = D.Sdp_backtrack;
      jobs = 3;
      priority = 7;
      min_s = Some 110;
      cache = false;
      permuted = true;
      inject = Some { Fault.site = Fault.Solver_raise; seed = 9; shots = 2 };
      deadline_ms = Some 250;
      windows = 4;
      window_nm = Some 5000;
    }
  in
  let line = Proto.encode_request r ~body_len:123 in
  Alcotest.(check bool) "newline-terminated" true
    (String.length line > 0 && line.[String.length line - 1] = '\n');
  match Proto.parse_command (String.sub line 0 (String.length line - 1)) with
  | Ok (Proto.Decompose (len, r')) ->
    Alcotest.(check int) "body length" 123 len;
    Alcotest.(check bool) "request fields survive" true (r' = r)
  | Ok _ -> Alcotest.fail "parsed as a different command"
  | Error msg -> Alcotest.failf "round trip failed: %s" msg

let test_proto_reply_roundtrips () =
  let check_roundtrip name line expected =
    Alcotest.(check bool) "line framed" true
      (line.[String.length line - 1] = '\n');
    match Proto.parse_reply (String.sub line 0 (String.length line - 1)) with
    | Ok r -> Alcotest.(check bool) name true (r = expected)
    | Error msg -> Alcotest.failf "%s: %s" name msg
  in
  check_roundtrip "busy" (Proto.busy_line ~inflight:4 ~limit:4)
    (Proto.Busy (4, 4));
  check_roundtrip "piece"
    (Proto.piece_line ~idx:2 ~back:[| 5; 9; 11 |] ~colors:[| 0; 3; 1 |])
    (Proto.Piece { idx = 2; cells = [| (5, 0); (9, 3); (11, 1) |] });
  check_roundtrip "done" (Proto.done_line [| 1; 0; 2; 3 |])
    (Proto.Done [| 1; 0; 2; 3 |]);
  check_roundtrip "err"
    (Proto.err_line ~code:"parse" ~line:12 "bad rect\nnext")
    (Proto.Err { code = "parse"; line = Some 12; msg = "bad rect; next" });
  let cost =
    {
      Proto.conflicts = 3;
      stitches = 7;
      scaled = 37;
      elapsed_s = 0.25;
      timed_out = false;
    }
  in
  check_roundtrip "cost" (Proto.cost_line cost) (Proto.Cost cost);
  check_roundtrip "timeout"
    (Proto.timeout_line ~deadline_ms:50 ~elapsed_ms:1312)
    (Proto.Timeout { deadline_ms = 50; elapsed_ms = 1312 });
  check_roundtrip "cancelled"
    (Proto.cancelled_line ~reason:"shutdown")
    (Proto.Cancelled "shutdown")

(* ------------------------------------------------------------------ *)
(* A small but non-trivial layout shared by every server test. *)

let spec =
  {
    Mpl_layout.Benchgen.name = "serve";
    seed = 7;
    rows = 2;
    cells_per_row = 6;
    density = 0.5;
    wire_fraction = 0.4;
    sparse_gap_prob = 0.7;
    native_five = 1;
    native_six = 0;
    hard_blocks = 0;
    stitch_gadgets = 1;
    penta_six = 0;
  }

let layout = lazy (Mpl_layout.Benchgen.generate spec)
let body = lazy (Mpl_layout.Layout_io.to_string (Lazy.force layout))
let min_s = 80

(* A wider layout for the lifecycle tests: enough independent pieces
   that a request torn down mid-stream provably leaves work queued. *)
let heavy_spec =
  { spec with Mpl_layout.Benchgen.name = "serve-heavy"; rows = 6; cells_per_row = 16 }

let heavy_body =
  lazy (Mpl_layout.Layout_io.to_string (Mpl_layout.Benchgen.generate heavy_spec))

(* Bigger still, for the hard-deadline test: even the soft-degraded
   (cheap-rung) pipeline must still be mid-flight when the watchdog's
   first 10 ms poll fires, so TIMEOUT is the deterministic outcome. *)
let slow_spec =
  { spec with Mpl_layout.Benchgen.name = "serve-slow"; rows = 16; cells_per_row = 48 }

let slow_body =
  lazy (Mpl_layout.Layout_io.to_string (Mpl_layout.Benchgen.generate slow_spec))

let reference = Hashtbl.create 4

(* One-shot result for parity checks, computed once per algorithm. *)
let one_shot algo =
  match Hashtbl.find_opt reference algo with
  | Some r -> r
  | None ->
    let _g, r = D.decompose ~min_s algo (Lazy.force layout) in
    Hashtbl.add reference algo r;
    r

let request ?(algo = D.Sdp_backtrack) ?(priority = 0) ?(cache = true)
    ?inject () =
  {
    Proto.default_request with
    Proto.algo;
    priority;
    cache;
    inject;
    min_s = Some min_s;
  }

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Server harness: boot on a fresh Unix socket, run the body, then
   drain gracefully (request_stop + join runs the cache save). *)

let sock_counter = ref 0

let fresh_sock () =
  incr sock_counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "mpld-test-%d-%d.sock" (Unix.getpid ()) !sock_counter)

let with_server ?(jobs = 2) ?(max_inflight = 8) ?cache_budget ?persist
    ?(ring = 32) ?access_log
    ?(grace_ms = Server.default_config.Server.grace_ms) ?fault f =
  let sock = fresh_sock () in
  let cfg =
    {
      Server.default_config with
      Server.unix_socket = Some sock;
      jobs;
      max_inflight;
      cache_budget;
      persist;
      ring;
      access_log;
      grace_ms;
      fault;
    }
  in
  let t = Server.create cfg in
  let th = Thread.create Server.run t in
  Fun.protect
    ~finally:(fun () ->
      Server.request_stop t;
      Thread.join th;
      try Sys.remove sock with Sys_error _ -> ())
    (fun () ->
      (* The listener binds asynchronously: poll until it accepts. *)
      let rec wait n =
        if n = 0 then Alcotest.fail "server did not come up";
        match Client.connect_unix sock with
        | c -> Client.close c
        | exception Unix.Unix_error _ ->
          Thread.delay 0.01;
          wait (n - 1)
      in
      wait 500;
      f sock t)

let with_client sock f =
  let c = Client.connect_unix sock in
  Fun.protect ~finally:(fun () -> Client.close c) (fun () -> f c)

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "request failed: %s" (Client.error_to_string e)

(* The lifecycle tests write into sockets the server may already have
   torn down; EPIPE must surface as Unix_error, not kill the runner. *)
let () =
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  with Invalid_argument _ -> ()

(* One integer counter out of the STATS "server" block. *)
let server_counter stats name =
  match Mpl_obs.Json.parse stats with
  | Error e -> Alcotest.failf "stats not JSON: %s" e
  | Ok v -> (
    match Mpl_obs.Json.member "server" v with
    | None -> Alcotest.fail "stats has no server block"
    | Some server -> (
      match Mpl_obs.Json.member name server with
      | Some (Mpl_obs.Json.Int n) -> n
      | _ -> Alcotest.failf "stats server.%s missing" name))

(* Teardown is asynchronous to the client's view of the connection:
   poll for the server-side effect instead of sleeping blindly. *)
let rec poll_until ?(tries = 500) msg f =
  if not (f ()) then
    if tries = 0 then Alcotest.fail msg
    else begin
      Thread.delay 0.01;
      poll_until ~tries:(tries - 1) msg f
    end

(* Raw-socket client for misbehaving-peer tests (the Client module is
   deliberately too well-behaved to vanish mid-request). *)
let raw_connect sock =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX sock);
  fd

let raw_write fd s =
  let n = String.length s in
  let rec go i =
    if i < n then
      match Unix.write_substring fd s i (n - i) with
      | w -> go (i + w)
      | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> ()
  in
  go 0


(* ------------------------------------------------------------------ *)
(* Parity: the served result is bit-identical to the one-shot path. *)

let check_parity algo (out : Client.outcome) =
  let r = one_shot algo in
  Alcotest.(check (array int)) "bit-identical coloring" r.D.colors out.colors;
  Alcotest.(check int) "same conflicts" r.D.cost.C.conflicts
    out.cost.Proto.conflicts;
  Alcotest.(check int) "same stitches" r.D.cost.C.stitches
    out.cost.Proto.stitches;
  Alcotest.(check bool) "stream matches final coloring" true
    out.streams_consistent;
  Alcotest.(check bool) "pieces were streamed" true (out.streamed_pieces > 0)

let test_serve_parity () =
  with_server (fun sock _t ->
      with_client sock (fun c ->
          Alcotest.(check bool) "ping" true (Client.ping c);
          (* Two algorithms through one shared cache: the parameter
             salt keeps their entries apart. *)
          List.iter
            (fun algo ->
              let out = ok (Client.decompose c ~request:(request ~algo ()) (Lazy.force body)) in
              check_parity algo out)
            [ D.Sdp_backtrack; D.Linear ];
          (let s = ok (Client.stats c) in
           Alcotest.(check bool) "stats is JSON" true (s.[0] = '{');
           Alcotest.(check bool) "stats has server block" true
             (contains s "\"served\"");
           Alcotest.(check bool) "stats has cache block" true
             (contains s "\"cache\""));
          let m = ok (Client.metrics c) in
          Alcotest.(check bool) "metrics is JSON" true (m.[0] = '{')))

let test_serve_concurrent_priorities () =
  with_server ~jobs:2 ~max_inflight:8 (fun sock _t ->
      let algo = D.Sdp_backtrack in
      let n = 8 in
      let priorities = [| 0; 9; 1; 5; 9; 0; 5; 1 |] in
      let results = Array.make n None in
      let worker i =
        let r =
          try
            with_client sock (fun c ->
                Client.decompose c
                  ~request:(request ~algo ~priority:priorities.(i) ())
                  (Lazy.force body))
          with e -> Error (Client.Protocol (Printexc.to_string e))
        in
        results.(i) <- Some r
      in
      let threads = List.init n (fun i -> Thread.create worker i) in
      List.iter Thread.join threads;
      Array.iteri
        (fun i r ->
          match r with
          | None -> Alcotest.failf "request %d never completed" i
          | Some r ->
            (* Priority changes scheduling only: every concurrent
               request must still be bit-identical to the one-shot. *)
            check_parity algo (ok r))
        results)

(* ------------------------------------------------------------------ *)
(* Shared cache: a repeated request is served without solving. *)

let test_serve_repeat_cache_hits () =
  with_server (fun sock _t ->
      with_client sock (fun c ->
          let req = request () in
          let first = ok (Client.decompose c ~request:req (Lazy.force body)) in
          let second = ok (Client.decompose c ~request:req (Lazy.force body)) in
          Alcotest.(check (array int)) "identical colorings" first.colors
            second.colors;
          match second.engine with
          | None -> Alcotest.fail "expected engine stats"
          | Some e ->
            Alcotest.(check bool) "routed pieces" true (e.Engine.pieces > 0);
            Alcotest.(check int) "nothing solved fresh" 0 e.Engine.solved;
            Alcotest.(check int) "every piece cache-served" e.Engine.pieces
              e.Engine.hits;
            (match second.cache with
            | None -> Alcotest.fail "expected a CACHE line"
            | Some ci ->
              Alcotest.(check bool) "shared cache is resident" true
                (ci.Proto.entries > 0 && ci.Proto.bytes > 0))))

(* ------------------------------------------------------------------ *)
(* Fault injection: the RESILIENCE line reflects the degraded solve,
   and the degraded coloring is still complete, in range and honestly
   costed. *)

let test_serve_inject_resilience () =
  with_server ~jobs:1 (fun sock _t ->
      with_client sock (fun c ->
          let inject = { Fault.site = Fault.Solver_raise; seed = 0; shots = 1 } in
          let req = request ~cache:false ~inject () in
          let out = ok (Client.decompose c ~request:req (Lazy.force body)) in
          Alcotest.(check bool) "injection fired" true out.resilience.Proto.fired;
          Alcotest.(check bool) "solver failure recorded" true
            (out.resilience.Proto.piece_failures >= 1);
          Alcotest.(check bool) "fallback ladder ran" true
            (out.resilience.Proto.fallbacks >= 1);
          (* The injected raise is absorbed by the fallback ladder, so
             the engine driver itself never sees a failure. *)
          (match out.engine with
          | Some e -> Alcotest.(check int) "no driver-level failures" 0 e.Engine.failed
          | None -> Alcotest.fail "expected engine stats");
          (* Degraded, not wrong: the reply's cost must be the true cost
             of the reply's coloring. *)
          Alcotest.(check bool) "coloring complete" true
            (C.is_complete out.colors);
          Alcotest.(check bool) "coloring in range" true
            (C.check_range ~k:4 out.colors);
          let g = G.of_layout (Lazy.force layout) ~min_s in
          let cost = C.evaluate g out.colors in
          Alcotest.(check int) "honest conflicts" cost.C.conflicts
            out.cost.Proto.conflicts;
          Alcotest.(check int) "honest stitches" cost.C.stitches
            out.cost.Proto.stitches))

(* ------------------------------------------------------------------ *)
(* Request lifecycle: disconnect mid-stream, hard deadlines, injected
   write stalls, and protocol garbage — none of which may wedge a
   handler thread, leak an inflight slot, or run queued pieces of a
   dead request. *)

let outcome_in ring outcomes =
  List.exists (fun (e : Ring.entry) -> List.mem e.Ring.outcome outcomes) ring

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_serve_disconnect_drops_queued () =
  (* The client vanishes exactly at the first PIECE send: Conn_drop's
     third occurrence on this connection (body read, ACK, first piece).
     Injection makes the race-free version of pulling the plug — with
     jobs = 1 every later piece is still queued at that moment, and
     none of them may ever run. *)
  let access_log = Filename.temp_file "mpld-access" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove access_log with Sys_error _ -> ())
    (fun () ->
      with_server ~jobs:1 ~access_log
        ~fault:{ Fault.site = Fault.Conn_drop; seed = 2; shots = 1 }
        (fun sock t ->
          (with_client sock (fun c ->
               match
                 Client.decompose c
                   ~request:(request ~algo:D.Linear ~cache:false ())
                   (Lazy.force heavy_body)
               with
               | Ok _ -> Alcotest.fail "expected the dropped conn to fail"
               | Error e ->
                 Alcotest.(check bool) "client sees transport trouble" true
                   (Client.retryable e)));
          poll_until "disconnect never landed in the ring" (fun () ->
              outcome_in (Server.requests t) [ "disconnected" ]);
          poll_until "inflight slot never released" (fun () ->
              server_counter (Server.stats_json t) "inflight" = 0);
          let stats = Server.stats_json t in
          Alcotest.(check bool) "queued pieces were dropped unrun" true
            (server_counter stats "dropped_tasks" >= 1);
          Alcotest.(check bool) "teardown counted as cancelled" true
            (server_counter stats "cancelled" >= 1);
          (* One access-log line, outcome "disconnected", and never a
             backtrace dumped into the log. *)
          let log = read_file access_log in
          Alcotest.(check bool) "access log has the disconnect" true
            (contains log "\"disconnected\"");
          Alcotest.(check bool) "no backtrace in the log" false
            (contains log "Raised at");
          (* The server shrugs it off: the fault is spent, so the same
             request now round-trips bit-identically. *)
          with_client sock (fun c ->
              Alcotest.(check bool) "server still answers" true
                (Client.ping c);
              let out =
                ok (Client.decompose c ~request:(request ()) (Lazy.force body))
              in
              check_parity D.Sdp_backtrack out)))

let test_serve_deadline_timeout () =
  with_server ~jobs:1 ~grace_ms:0 (fun sock t ->
      with_client sock (fun c ->
          let req =
            { (request ~cache:false ()) with Proto.deadline_ms = Some 1 }
          in
          (match Client.decompose c ~request:req (Lazy.force slow_body) with
          | Ok _ -> Alcotest.fail "expected TIMEOUT, the request completed"
          | Error (Client.Timed_out { deadline_ms; elapsed_ms }) ->
            Alcotest.(check int) "echoed deadline" 1 deadline_ms;
            Alcotest.(check bool) "elapsed past the deadline" true
              (elapsed_ms >= 1)
          | Error e ->
            Alcotest.failf "expected TIMEOUT, got %s"
              (Client.error_to_string e));
          (* TIMEOUT is terminal for the request, not the connection. *)
          Alcotest.(check bool) "connection still usable" true (Client.ping c));
      poll_until "timeout outcome never reached the ring" (fun () ->
          outcome_in (Server.requests t) [ "timeout" ]);
      let stats = Server.stats_json t in
      Alcotest.(check bool) "timeouts counted" true
        (server_counter stats "timeouts" >= 1);
      Alcotest.(check bool) "cancelled pieces dropped unrun" true
        (server_counter stats "dropped_tasks" >= 1))

let test_serve_write_stall_reaps () =
  with_server ~jobs:1
    ~fault:{ Fault.site = Fault.Write_stall; seed = 0; shots = 1 }
    (fun sock t ->
      (* The server's very first reply write stalls: the connection is
         reaped, the request torn down, and the client sees transport
         trouble it may retry — never a hang. *)
      (with_client sock (fun c ->
           match Client.decompose c ~request:(request ()) (Lazy.force body) with
           | Ok _ -> Alcotest.fail "expected the stalled reply to fail"
           | Error e ->
             Alcotest.(check bool) "transport error is retryable" true
               (Client.retryable e)));
      poll_until "stalled connection never reaped" (fun () ->
          server_counter (Server.stats_json t) "reaped_conns" >= 1);
      poll_until "torn-down request never left the ring" (fun () ->
          outcome_in (Server.requests t) [ "disconnected" ]);
      (* shots = 1: the fault is spent, a plain retry succeeds. *)
      with_client sock (fun c ->
          let out =
            ok (Client.decompose c ~request:(request ()) (Lazy.force body))
          in
          check_parity D.Sdp_backtrack out))

let test_serve_protocol_fuzz () =
  with_server ~jobs:1 (fun sock t ->
      let rng = Mpl_util.Rng.create 0xf02 in
      let n_streams = 1000 in
      for _ = 1 to n_streams do
        let fd = raw_connect sock in
        let payload =
          match Mpl_util.Rng.int rng 4 with
          | 0 ->
            (* binary garbage, newlines included by chance *)
            String.init
              (Mpl_util.Rng.int rng 200)
              (fun _ -> Char.chr (Mpl_util.Rng.int rng 256))
          | 1 ->
            (* truncated upload: promises a body, never delivers *)
            Printf.sprintf
              "DECOMPOSE %d k=4 algo=linear priority=0 cache=1 permuted=0\n"
              (1 + Mpl_util.Rng.int rng 4096)
          | 2 ->
            (* absurd length prefix: refused before any allocation *)
            "DECOMPOSE 999999999 k=4 algo=linear priority=0 cache=1 permuted=0\n"
          | _ ->
            (* a well-formed header torn mid-line *)
            let line =
              Proto.encode_request (request ()) ~body_len:64
            in
            String.sub line 0 (Mpl_util.Rng.int rng (String.length line))
        in
        raw_write fd payload;
        Unix.close fd
      done;
      (* Whatever the garbage did, the server still serves: PING after
         every stream, and not one inflight slot leaked. *)
      with_client sock (fun c ->
          Alcotest.(check bool) "ping after the storm" true (Client.ping c));
      poll_until "inflight leaked under fuzz" (fun () ->
          server_counter (Server.stats_json t) "inflight" = 0);
      with_client sock (fun c ->
          let out =
            ok (Client.decompose c ~request:(request ()) (Lazy.force body))
          in
          check_parity D.Sdp_backtrack out))

(* Any single armed network fault: a retrying client converges on the
   bit-identical coloring, and cancelled + timeouts accounts for every
   torn-down request in the ring. *)
let prop_network_fault_retry =
  QCheck.Test.make ~count:6 ~name:"serve: retry under one network fault"
    QCheck.(
      make
        ~print:(fun (site, seed) ->
          Printf.sprintf "%s seed=%d" (Fault.site_name site) seed)
        Gen.(
          pair
            (oneofl [ Fault.Conn_drop; Fault.Write_stall; Fault.Torn_frame ])
            (int_bound 3)))
    (fun (site, seed) ->
      with_server ~jobs:1 ~fault:{ Fault.site; seed; shots = 1 }
        (fun sock t ->
          let rec attempt n =
            if n = 0 then
              Alcotest.fail "fault never cleared within 10 attempts";
            let r =
              try
                with_client sock (fun c ->
                    Client.decompose c ~request:(request ()) (Lazy.force body))
              with Unix.Unix_error _ -> Error (Client.Protocol "connect")
            in
            match r with
            | Ok out -> out
            | Error e when Client.retryable e -> attempt (n - 1)
            | Error e ->
              Alcotest.failf "non-retryable under %s: %s" (Fault.site_name site)
                (Client.error_to_string e)
          in
          let out = attempt 10 in
          let reference = one_shot D.Sdp_backtrack in
          let parity = out.Client.colors = reference.D.colors in
          (* Teardown bookkeeping finishes just after the client's view
             of the failure; settle before auditing the ring. *)
          poll_until "inflight never settled" (fun () ->
              server_counter (Server.stats_json t) "inflight" = 0);
          let entries = Server.requests t in
          let torn =
            List.length
              (List.filter
                 (fun (e : Ring.entry) ->
                   List.mem e.Ring.outcome
                     [ "timeout"; "cancelled"; "disconnected" ])
                 entries)
          in
          let known =
            List.for_all
              (fun (e : Ring.entry) ->
                List.mem e.Ring.outcome [ "ok"; "disconnected" ])
              entries
          in
          let stats = Server.stats_json t in
          let accounted =
            server_counter stats "cancelled" + server_counter stats "timeouts"
            = torn
          in
          parity && known && accounted))

(* ------------------------------------------------------------------ *)
(* HTTP admin plane: /metrics, /healthz, /requests, /trace?id= are all
   served on the protocol socket (request-line sniffing), and the
   artifacts pass the same validators tier1 runs on them. *)

let http_get sock path =
  with_client sock (fun c ->
      match Client.http c path with
      | Ok (status, body) -> (status, body)
      | Error e -> Alcotest.failf "GET %s: %s" path (Client.error_to_string e))

let test_serve_http_admin () =
  with_server (fun sock t ->
      (* Serve one request first so every endpoint has data. *)
      let out =
        with_client sock (fun c ->
            ok (Client.decompose c ~request:(request ()) (Lazy.force body)))
      in
      let rid =
        match out.Client.rid with
        | Some rid -> rid
        | None -> Alcotest.fail "ACK carried no rid"
      in
      (* /metrics: valid Prometheus text exposition. *)
      let status, text = http_get sock "/metrics" in
      Alcotest.(check int) "/metrics status" 200 status;
      (match Mpl_obs.Export.validate_prometheus text with
      | Ok n -> Alcotest.(check bool) "/metrics samples" true (n > 10)
      | Error e -> Alcotest.failf "/metrics invalid: %s" e);
      Alcotest.(check bool) "/metrics has served counter" true
        (contains text "mpl_server_served");
      Alcotest.(check bool) "/metrics has cache bytes gauge" true
        (contains text "mpl_cache_bytes");
      Alcotest.(check bool) "/metrics has e2e histogram" true
        (contains text "mpl_server_e2e_ns_bucket");
      (* /healthz: healthy and accepting. *)
      let status, health = http_get sock "/healthz" in
      Alcotest.(check int) "/healthz status" 200 status;
      Alcotest.(check bool) "/healthz ok" true (contains health "\"ok\"");
      (* /requests: the ring holds our request, newest first. *)
      let status, reqs = http_get sock "/requests" in
      Alcotest.(check int) "/requests status" 200 status;
      (match Mpl_obs.Json.parse reqs with
      | Error e -> Alcotest.failf "/requests not JSON: %s" e
      | Ok v -> (
        match Mpl_obs.Json.member "requests" v with
        | Some (Mpl_obs.Json.List (entry :: _)) ->
          Alcotest.(check bool) "entry has our rid" true
            (Mpl_obs.Json.member "id" entry = Some (Mpl_obs.Json.Int rid));
          Alcotest.(check bool) "entry outcome ok" true
            (Mpl_obs.Json.member "outcome" entry
            = Some (Mpl_obs.Json.Str "ok"))
        | _ -> Alcotest.fail "/requests entries missing"));
      (* /trace?id=: a valid Chrome trace of that one request. *)
      let status, trace =
        http_get sock (Printf.sprintf "/trace?id=%d" rid)
      in
      Alcotest.(check int) "/trace status" 200 status;
      (match
         Mpl_obs.Export.validate_chrome
           ~required:[ "assign"; "engine.batch" ]
           trace
       with
      | Ok spans -> Alcotest.(check bool) "/trace spans" true (spans > 0)
      | Error e -> Alcotest.failf "/trace invalid: %s" e);
      (* Unknown ids and paths fail cleanly. *)
      let status, _ = http_get sock "/trace?id=999999" in
      Alcotest.(check int) "unknown rid is 404" 404 status;
      let status, _ = http_get sock "/nope" in
      Alcotest.(check int) "unknown path is 404" 404 status;
      ignore t)

(* ------------------------------------------------------------------ *)
(* Request-scoped traces: under concurrent mixed-priority load, every
   ring entry's trace is well-nested and every one of its events is
   tagged with that request's rid — even though the shared pool lets
   one request's threads help solve another's pieces. *)

let test_serve_request_traces_concurrent () =
  with_server ~jobs:2 (fun sock t ->
      let n = 4 in
      let priorities = [| 0; 9; 5; 1 |] in
      let rids = Array.make n None in
      let worker i =
        with_client sock (fun c ->
            let out =
              ok
                (Client.decompose c
                   ~request:(request ~priority:priorities.(i) ())
                   (Lazy.force body))
            in
            rids.(i) <- out.Client.rid)
      in
      let threads = List.init n (fun i -> Thread.create worker i) in
      List.iter Thread.join threads;
      Array.iteri
        (fun i rid ->
          let rid =
            match rid with
            | Some rid -> rid
            | None -> Alcotest.failf "request %d: no rid" i
          in
          match Server.trace_events t rid with
          | None -> Alcotest.failf "rid %d: no trace in the ring" rid
          | Some events ->
            Alcotest.(check bool)
              (Printf.sprintf "rid %d: non-empty trace" rid)
              true (events <> []);
            let tag = ("rid", Mpl_obs.Sink.Str (string_of_int rid)) in
            List.iter
              (fun (e : Mpl_obs.Sink.event) ->
                if not (List.mem tag e.Mpl_obs.Sink.args) then
                  Alcotest.failf "rid %d: event %s tagged %s" rid
                    e.Mpl_obs.Sink.name
                    (match
                       List.assoc_opt "rid" e.Mpl_obs.Sink.args
                     with
                    | Some (Mpl_obs.Sink.Str s) -> s
                    | _ -> "<none>"))
              events;
            Alcotest.(check bool)
              (Printf.sprintf "rid %d: well-nested" rid)
              true
              (Test_obs.well_nested events))
        rids;
      (* The ring kept all four, one entry per request. *)
      let entries = Server.requests t in
      Alcotest.(check bool) "ring holds all requests" true
        (List.length entries >= n))

(* ------------------------------------------------------------------ *)
(* Telemetry off (ring=0, no access log): the served path must stay
   bit-identical to the direct decomposition — no per-request sink, no
   clock-dependent behavior change. *)

let test_serve_invariance_telemetry_off () =
  with_server ~ring:0 (fun sock t ->
      with_client sock (fun c ->
          List.iter
            (fun algo ->
              let out =
                ok
                  (Client.decompose c ~request:(request ~algo ())
                     (Lazy.force body))
              in
              check_parity algo out)
            [ D.Sdp_backtrack; D.Linear ]);
      Alcotest.(check int) "ring stays empty" 0
        (List.length (Server.requests t));
      (* No request carried a deadline, so the deadline clock was never
         armed: its probe counter must not even exist in the registry —
         the invariant is "zero reads", not "zero elapsed". *)
      let m = with_client sock (fun c -> ok (Client.metrics c)) in
      Alcotest.(check bool) "deadline clock never armed" false
        (contains m "deadline");
      (* The admin plane still answers; /trace just has nothing. *)
      let status, _ = http_get sock "/metrics" in
      Alcotest.(check int) "/metrics still served" 200 status;
      let status, _ = http_get sock "/trace?id=1" in
      Alcotest.(check int) "/trace disabled" 404 status)

(* ------------------------------------------------------------------ *)
(* Persistence: a restarted server answers from the reloaded cache. *)

let test_serve_persist_warm_restart () =
  let persist = Filename.temp_file "mpld-cache" ".txt" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove persist with Sys_error _ -> ())
    (fun () ->
      Sys.remove persist;
      (* first life: populate and (on drain) persist the cache *)
      let first =
        with_server ~persist (fun sock _t ->
            with_client sock (fun c ->
                ok (Client.decompose c ~request:(request ()) (Lazy.force body))))
      in
      Alcotest.(check bool) "cache file persisted" true
        (Sys.file_exists persist);
      (* second life: the very first request is answered warm *)
      with_server ~persist (fun sock _t ->
          with_client sock (fun c ->
              let out =
                ok (Client.decompose c ~request:(request ()) (Lazy.force body))
              in
              Alcotest.(check (array int)) "warm restart parity" first.colors
                out.colors;
              match out.engine with
              | None -> Alcotest.fail "expected engine stats"
              | Some e ->
                Alcotest.(check int) "no fresh solves after reload" 0
                  e.Engine.solved;
                Alcotest.(check int) "all pieces from the reloaded cache"
                  e.Engine.pieces e.Engine.hits)))

let suite =
  [
    Alcotest.test_case "proto: request round trip" `Quick
      test_proto_request_roundtrip;
    Alcotest.test_case "proto: reply round trips" `Quick
      test_proto_reply_roundtrips;
    Alcotest.test_case "serve: one-shot parity + admin" `Quick
      test_serve_parity;
    Alcotest.test_case "serve: concurrent mixed priorities" `Quick
      test_serve_concurrent_priorities;
    Alcotest.test_case "serve: repeat request fully cached" `Quick
      test_serve_repeat_cache_hits;
    Alcotest.test_case "serve: resilience under injection" `Quick
      test_serve_inject_resilience;
    Alcotest.test_case "serve: disconnect drops queued pieces" `Quick
      test_serve_disconnect_drops_queued;
    Alcotest.test_case "serve: hard deadline times out" `Quick
      test_serve_deadline_timeout;
    Alcotest.test_case "serve: write stall reaps the connection" `Quick
      test_serve_write_stall_reaps;
    Alcotest.test_case "serve: protocol fuzz leaves a live server" `Quick
      test_serve_protocol_fuzz;
    QCheck_alcotest.to_alcotest prop_network_fault_retry;
    Alcotest.test_case "serve: HTTP admin plane" `Quick test_serve_http_admin;
    Alcotest.test_case "serve: per-request traces under concurrency" `Quick
      test_serve_request_traces_concurrent;
    Alcotest.test_case "serve: telemetry off is invariant" `Quick
      test_serve_invariance_telemetry_off;
    Alcotest.test_case "serve: persisted cache warm restart" `Quick
      test_serve_persist_warm_restart;
  ]
