(* Tests for the core decomposition library: graph model, cost model,
   every color-assignment algorithm (cross-checked against the
   brute-force chromatic oracle), and the division pipeline's
   optimality-preservation guarantees. *)

module G = Mpl.Decomp_graph
module C = Mpl.Coloring
module D = Mpl.Decomposer

let clique n =
  let edges = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      edges := (i, j) :: !edges
    done
  done;
  G.of_edges ~n !edges

(* Random decomposition graph: conflict edges with probability p plus a
   few stitch edges on otherwise-unrelated pairs. *)
let dg_gen =
  QCheck.Gen.(
    int_range 2 9 >>= fun n ->
    int_range 10 60 >>= fun p ->
    int_range 0 2 >>= fun stitches ->
    int_range 0 10000 >|= fun seed ->
    let rng = Mpl_util.Rng.create seed in
    let ce = ref [] and used = Hashtbl.create 16 in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        if Mpl_util.Rng.int rng 100 < p then begin
          ce := (i, j) :: !ce;
          Hashtbl.replace used (i, j) ()
        end
      done
    done;
    let se = ref [] in
    let attempts = ref 0 in
    while List.length !se < stitches && !attempts < 50 do
      incr attempts;
      let i = Mpl_util.Rng.int rng n and j = Mpl_util.Rng.int rng n in
      let i, j = (min i j, max i j) in
      if i <> j && (not (Hashtbl.mem used (i, j))) then begin
        Hashtbl.replace used (i, j) ();
        se := (i, j) :: !se
      end
    done;
    (n, !ce, !se))

let dg_print (n, ce, se) =
  Printf.sprintf "n=%d ce=[%s] se=[%s]" n
    (String.concat ";" (List.map (fun (u, v) -> Printf.sprintf "%d-%d" u v) ce))
    (String.concat ";" (List.map (fun (u, v) -> Printf.sprintf "%d-%d" u v) se))

let dg_arb = QCheck.make ~print:dg_print dg_gen

let build (n, ce, se) = G.of_edges ~stitch_edges:se ~n ce

let test_of_edges_validation () =
  Alcotest.check_raises "self loop" (Invalid_argument "Decomp_graph: self-loop")
    (fun () -> ignore (G.of_edges ~n:3 [ (1, 1) ]));
  Alcotest.check_raises "both conflict and stitch"
    (Invalid_argument "Decomp_graph: edge is both conflict and stitch")
    (fun () -> ignore (G.of_edges ~stitch_edges:[ (0, 1) ] ~n:2 [ (1, 0) ]));
  let g = G.of_edges ~n:3 [ (0, 1); (1, 0); (1, 2) ] in
  Alcotest.(check int) "duplicates collapsed" 2 (List.length (G.conflict_edges g))

let test_degrees_and_lookup () =
  let g = G.of_edges ~stitch_edges:[ (0, 2) ] ~n:3 [ (0, 1) ] in
  Alcotest.(check int) "conflict degree" 1 (G.conflict_degree g 0);
  Alcotest.(check int) "stitch degree" 1 (G.stitch_degree g 0);
  Alcotest.(check bool) "has_conflict" true (G.has_conflict g 1 0);
  Alcotest.(check bool) "no conflict" false (G.has_conflict g 0 2)

let test_subgraph () =
  let g = G.of_edges ~stitch_edges:[ (2, 3) ] ~n:4 [ (0, 1); (1, 2) ] in
  let sub, back = G.subgraph g [| 1; 2; 3 |] in
  Alcotest.(check int) "sub n" 3 sub.G.n;
  Alcotest.(check int) "sub conflicts" 1 (List.length (G.conflict_edges sub));
  Alcotest.(check int) "sub stitches" 1 (List.length (G.stitch_edges sub));
  Alcotest.(check (array int)) "back" [| 1; 2; 3 |] back

let test_coloring_cost () =
  let g = G.of_edges ~stitch_edges:[ (2, 3) ] ~n:4 [ (0, 1); (1, 2) ] in
  let cost = C.evaluate g [| 0; 0; 1; 2 |] in
  Alcotest.(check int) "conflicts" 1 cost.C.conflicts;
  Alcotest.(check int) "stitches" 1 cost.C.stitches;
  Alcotest.(check int) "scaled" 1100 cost.C.scaled;
  (* Unassigned vertices count for nothing. *)
  let partial = C.evaluate g [| 0; 0; -1; 2 |] in
  Alcotest.(check int) "partial conflicts" 1 partial.C.conflicts;
  Alcotest.(check int) "partial stitches" 0 partial.C.stitches

let test_permutation_invariance () =
  let g = G.of_edges ~stitch_edges:[ (0, 3) ] ~n:4 [ (0, 1); (1, 2); (2, 3) ] in
  let colors = [| 0; 1; 2; 0 |] in
  let sigma = [| 3; 0; 2; 1 |] in
  let c1 = C.evaluate g colors in
  let c2 = C.evaluate g (C.permute colors sigma) in
  Alcotest.(check int) "conflicts invariant" c1.C.conflicts c2.C.conflicts;
  Alcotest.(check int) "stitches invariant" c1.C.stitches c2.C.stitches

(* The CSR adjacency must agree, relation by relation, with a naive
   list-of-neighbors model built from the same (deduplicated) edge
   list: identical degrees, identical sorted neighbor runs, and the
   same answers under [has_conflict] and [subgraph]. *)
let prop_csr_matches_list_adjacency =
  QCheck.Test.make ~name:"CSR adjacency = naive list adjacency" ~count:300
    dg_arb
    (fun ((n, ce, se) as inst) ->
      let g = build inst in
      let naive edges =
        let adj = Array.make n [] in
        let seen = Hashtbl.create 16 in
        List.iter
          (fun (u, v) ->
            let key = (min u v, max u v) in
            if not (Hashtbl.mem seen key) then begin
              Hashtbl.replace seen key ();
              adj.(u) <- v :: adj.(u);
              adj.(v) <- u :: adj.(v)
            end)
          edges;
        Array.map (fun l -> List.sort_uniq compare l) adj
      in
      let run adj v =
        let out = ref [] in
        G.iter adj v (fun w -> out := w :: !out);
        List.rev !out
      in
      let matches (adj : G.adj) reference =
        List.for_all
          (fun v ->
            G.deg adj v = List.length reference.(v)
            && run adj v = reference.(v))
          (List.init n Fun.id)
      in
      let cref = naive ce and sref = naive se in
      matches g.G.conflict cref
      && matches g.G.stitch sref
      && List.for_all
           (fun u ->
             List.for_all
               (fun v -> G.has_conflict g u v = List.mem v cref.(u))
               (List.init n Fun.id))
           (List.init n Fun.id)
      &&
      (* Induced subgraph on the even vertices: CSR restriction must
         equal the naive adjacency of the filtered edge lists. *)
      let vs = Array.of_list (List.filter (fun v -> v mod 2 = 0) (List.init n Fun.id)) in
      let m = Array.length vs in
      if m = 0 then true
      else begin
        let fwd = Array.make n (-1) in
        Array.iteri (fun i v -> fwd.(v) <- i) vs;
        let restrict edges =
          List.filter_map
            (fun (u, v) ->
              if fwd.(u) >= 0 && fwd.(v) >= 0 then Some (fwd.(u), fwd.(v))
              else None)
            edges
        in
        let sub, back = G.subgraph g vs in
        let nsub edges =
          let a = Array.make m [] in
          List.iter
            (fun (u, v) ->
              a.(u) <- v :: a.(u);
              a.(v) <- u :: a.(v))
            edges;
          Array.map (fun l -> List.sort_uniq compare l) a
        in
        back = vs
        && (let cr = nsub (restrict (G.conflict_edges g)) in
            List.for_all
              (fun v -> run sub.G.conflict v = cr.(v))
              (List.init m Fun.id))
        && (let sr = nsub (restrict (G.stitch_edges g)) in
            List.for_all
              (fun v -> run sub.G.stitch v = sr.(v))
              (List.init m Fun.id))
      end)

(* Conflict-only optimality: every solver path must match the oracle. *)
let conflict_optimum (n, ce) =
  Mpl_graph.Oracle.chromatic_cost (Mpl_graph.Ugraph.of_edges n ce) ~k:4

let prop_exact_matches_oracle =
  QCheck.Test.make ~name:"Exact B&B conflicts = chromatic oracle" ~count:200
    dg_arb
    (fun ((n, ce, _) as inst) ->
      let g = build inst in
      let r = Mpl.Exact_color.solve ~k:4 ~alpha:0.1 g in
      let cost = C.evaluate g r.Mpl.Bnb.colors in
      (* With alpha << 1 the exact optimum always minimizes conflicts
         first when stitch edges are few. *)
      ignore n;
      cost.C.conflicts <= conflict_optimum (n, ce)
      && r.Mpl.Bnb.optimal)

let prop_ilp_matches_exact =
  QCheck.Test.make ~name:"ILP encoding optimum = exact B&B optimum" ~count:60
    dg_arb
    (fun ((_, _, _) as inst) ->
      let g = build inst in
      let exact = Mpl.Exact_color.solve ~k:4 ~alpha:0.1 g in
      let ilp = Mpl.Ilp_color.solve ~k:4 ~alpha:0.1 g in
      let ec = C.evaluate g exact.Mpl.Bnb.colors in
      let ic = C.evaluate g ilp.Mpl.Ilp_color.colors in
      ilp.Mpl.Ilp_color.optimal && ic.C.scaled = ec.C.scaled)

let prop_sdp_backtrack_near_optimal =
  QCheck.Test.make ~name:"SDP+Backtrack = exact optimum on small graphs"
    ~count:60 dg_arb
    (fun inst ->
      let g = build inst in
      let exact = Mpl.Exact_color.solve ~k:4 ~alpha:0.1 g in
      let sol = Mpl.Sdp_color.relax ~k:4 ~alpha:0.1 g in
      let colors = Mpl.Sdp_color.backtrack ~k:4 ~alpha:0.1 sol g in
      let bc = C.evaluate g colors in
      (* Backtrack explores the merged graph exhaustively at these sizes,
         so it must reach the exact optimum. *)
      bc.C.scaled <= exact.Mpl.Bnb.scaled_cost + 100)

let prop_linear_legal_and_bounded =
  QCheck.Test.make ~name:"Linear assignment complete, in-range, sane"
    ~count:300 dg_arb
    (fun inst ->
      let g = build inst in
      let colors = Mpl.Linear_color.solve ~k:4 ~alpha:0.1 g in
      C.is_complete colors && C.check_range ~k:4 colors)

let prop_linear_popped_conflict_free =
  (* Vertices with conflict degree < k and stitch degree < 2 are peeled;
     Algorithm 2 guarantees they never pay a conflict. Whole-graph low
     degree => zero conflicts. *)
  QCheck.Test.make ~name:"Linear: sparse graphs color conflict-free"
    ~count:300
    (QCheck.make
       QCheck.Gen.(
         int_range 2 12 >|= fun n ->
         (n, List.init (n - 1) (fun i -> (i, i + 1)))))
    (fun (n, path) ->
      let g = G.of_edges ~n path in
      let colors = Mpl.Linear_color.solve ~k:4 ~alpha:0.1 g in
      (C.evaluate g colors).C.conflicts = 0)

let prop_greedy_map_complete =
  QCheck.Test.make ~name:"SDP greedy mapping complete and in range"
    ~count:100 dg_arb
    (fun inst ->
      let g = build inst in
      if g.G.n = 0 then true
      else begin
        let sol = Mpl.Sdp_color.relax ~k:4 ~alpha:0.1 g in
        let colors = Mpl.Sdp_color.greedy_map ~k:4 sol g in
        C.is_complete colors && C.check_range ~k:4 colors
      end)

(* Division must preserve the conflict optimum when the per-piece solver
   is exact (peel removes only cost-free vertices, biconnected blocks are
   cost-additive, GH cuts always admit a conflict-free rotation). *)
let prop_division_preserves_conflict_optimum =
  QCheck.Test.make
    ~name:"division + exact solver preserves the conflict optimum"
    ~count:150 dg_arb
    (fun ((n, ce, _) as inst) ->
      let g = build inst in
      let solver piece =
        (Mpl.Exact_color.solve ~k:4 ~alpha:0.1 piece).Mpl.Bnb.colors
      in
      let colors = Mpl.Division.assign ~k:4 ~alpha:0.1 ~solver g in
      let cost = C.evaluate g colors in
      ignore n;
      C.is_complete colors && cost.C.conflicts = conflict_optimum (n, ce))

let prop_division_no_worse_for_heuristics =
  QCheck.Test.make
    ~name:"divided linear never beats the exact optimum (sanity)" ~count:150
    dg_arb
    (fun ((n, ce, _) as inst) ->
      let g = build inst in
      let solver piece = Mpl.Linear_color.solve ~k:4 ~alpha:0.1 piece in
      let colors = Mpl.Division.assign ~k:4 ~alpha:0.1 ~solver g in
      (C.evaluate g colors).C.conflicts >= conflict_optimum (n, ce))

let prop_division_stage_toggles =
  QCheck.Test.make ~name:"every stage subset yields a complete coloring"
    ~count:100 dg_arb
    (fun inst ->
      let g = build inst in
      List.for_all
        (fun stages ->
          let solver piece =
            (Mpl.Exact_color.solve ~k:4 ~alpha:0.1 piece).Mpl.Bnb.colors
          in
          let colors = Mpl.Division.assign ~stages ~k:4 ~alpha:0.1 ~solver g in
          C.is_complete colors)
        [
          Mpl.Division.all_stages;
          Mpl.Division.no_stages;
          { Mpl.Division.all_stages with Mpl.Division.use_ghtree = false };
          { Mpl.Division.all_stages with Mpl.Division.use_peel = false };
          {
            Mpl.Division.all_stages with
            Mpl.Division.use_biconnected = false;
          };
        ])

let prop_bounded_cuts_invariant =
  (* The K-bounded GH-tree stage is a pure optimization: the division
     must select identical cuts and hence reassemble the bit-identical
     coloring, end to end. *)
  QCheck.Test.make
    ~name:"bounded GH cuts leave division output bit-identical" ~count:200
    dg_arb
    (fun inst ->
      let g = build inst in
      let solve bounded_cuts =
        Mpl.Division.assign ~bounded_cuts ~k:4 ~alpha:0.1
          ~solver:(Mpl.Linear_color.solve ~k:4 ~alpha:0.1)
          g
      in
      solve true = solve false)

let prop_k_patterning_general =
  (* Section 5: the whole pipeline works for any K; K_n needs exactly
     C(n - k, 2)-free... just check cliques: cn(K_n, k) = sum of excess
     pairings, i.e. the oracle. *)
  QCheck.Test.make ~name:"general K-patterning matches oracle (k=3..6)"
    ~count:40
    (QCheck.make QCheck.Gen.(pair (int_range 2 8) (int_range 3 6)))
    (fun (n, k) ->
      let g = clique n in
      let params = { D.default_params with D.k } in
      let report = D.assign ~params D.Exact g in
      report.D.cost.C.conflicts
      = Mpl_graph.Oracle.chromatic_cost (G.conflict_graph g) ~k)

let test_rotation_lemma () =
  (* Lemma 1: two K5s joined by a 3-cut. Every vertex has conflict degree
     >= 4, so peeling leaves the graph intact and the GH-tree stage must
     find the 3-cut; rotation then reconnects the two K5s without adding
     a conflict beyond their two native ones. *)
  let k5 base =
    let edges = ref [] in
    for i = 0 to 4 do
      for j = i + 1 to 4 do
        edges := (base + i, base + j) :: !edges
      done
    done;
    !edges
  in
  let edges = k5 0 @ k5 5 @ [ (0, 5); (1, 6); (2, 7) ] in
  let g = G.of_edges ~n:10 edges in
  let solver piece =
    (Mpl.Exact_color.solve ~k:4 ~alpha:0.1 piece).Mpl.Bnb.colors
  in
  let stats = Mpl.Division.fresh_stats () in
  let colors = Mpl.Division.assign ~stats ~k:4 ~alpha:0.1 ~solver g in
  Alcotest.(check int) "exactly the two native conflicts" 2
    (C.evaluate g colors).C.conflicts;
  Alcotest.(check bool) "a GH cut actually fired" true
    (stats.Mpl.Division.cuts >= 1)

let test_report_consistency () =
  let g = clique 6 in
  List.iter
    (fun algo ->
      let r = D.assign algo g in
      let re = C.evaluate g r.D.colors in
      Alcotest.(check int)
        (D.algorithm_name algo ^ " cost matches colors")
        r.D.cost.C.scaled re.C.scaled)
    [ D.Ilp; D.Exact; D.Sdp_backtrack; D.Sdp_greedy; D.Linear ]

let test_k6_needs_two () =
  let g = clique 6 in
  List.iter
    (fun algo ->
      let r = D.assign algo g in
      Alcotest.(check int) (D.algorithm_name algo ^ " K6 cost") 2
        r.D.cost.C.conflicts)
    [ D.Ilp; D.Exact; D.Sdp_backtrack; D.Sdp_greedy; D.Linear ]

let test_decomposer_deterministic () =
  let layout = Mpl_layout.Benchgen.circuit "C499" in
  let g = G.of_edges ~n:0 [] in
  ignore g;
  let graph = G.of_layout layout ~min_s:80 in
  List.iter
    (fun algo ->
      let a = D.assign algo graph and b = D.assign algo graph in
      Alcotest.(check (array int))
        (D.algorithm_name algo ^ " deterministic")
        a.D.colors b.D.colors)
    [ D.Exact; D.Sdp_backtrack; D.Sdp_greedy; D.Linear ]

let test_post_passes () =
  let layout = Mpl_layout.Benchgen.circuit "C432" in
  let graph = G.of_layout layout ~min_s:80 in
  let base = D.assign D.Linear graph in
  List.iter
    (fun post ->
      let params = { D.default_params with D.post } in
      let r = D.assign ~params D.Linear graph in
      Alcotest.(check bool) "post pass never worse" true
        (r.D.cost.C.scaled <= base.D.cost.C.scaled))
    [ D.No_post; D.Local_search; D.Anneal 2000 ];
  let params = { D.default_params with D.balance = true } in
  let r = D.assign ~params D.Linear graph in
  Alcotest.(check int) "balance keeps cost" base.D.cost.C.scaled
    r.D.cost.C.scaled;
  Alcotest.(check bool) "balance helps imbalance" true
    (Mpl.Balance.imbalance ~k:4 r.D.colors
    <= Mpl.Balance.imbalance ~k:4 base.D.colors +. 1e-9)

let suite =
  [
    Alcotest.test_case "decomposer deterministic" `Quick
      test_decomposer_deterministic;
    Alcotest.test_case "post passes" `Quick test_post_passes;
    Alcotest.test_case "of_edges validation" `Quick test_of_edges_validation;
    Alcotest.test_case "degrees and lookup" `Quick test_degrees_and_lookup;
    Alcotest.test_case "subgraph" `Quick test_subgraph;
    Alcotest.test_case "coloring cost" `Quick test_coloring_cost;
    Alcotest.test_case "permutation invariance" `Quick
      test_permutation_invariance;
    QCheck_alcotest.to_alcotest prop_csr_matches_list_adjacency;
    QCheck_alcotest.to_alcotest prop_exact_matches_oracle;
    QCheck_alcotest.to_alcotest prop_ilp_matches_exact;
    QCheck_alcotest.to_alcotest prop_sdp_backtrack_near_optimal;
    QCheck_alcotest.to_alcotest prop_linear_legal_and_bounded;
    QCheck_alcotest.to_alcotest prop_linear_popped_conflict_free;
    QCheck_alcotest.to_alcotest prop_greedy_map_complete;
    QCheck_alcotest.to_alcotest prop_division_preserves_conflict_optimum;
    QCheck_alcotest.to_alcotest prop_division_no_worse_for_heuristics;
    QCheck_alcotest.to_alcotest prop_division_stage_toggles;
    QCheck_alcotest.to_alcotest prop_bounded_cuts_invariant;
    QCheck_alcotest.to_alcotest prop_k_patterning_general;
    Alcotest.test_case "rotation lemma (3-cut)" `Quick test_rotation_lemma;
    Alcotest.test_case "report consistency" `Quick test_report_consistency;
    Alcotest.test_case "K6 costs two conflicts" `Quick test_k6_needs_two;
  ]
