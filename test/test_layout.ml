(* Tests for the layout substrate: stitch generation, text I/O, and the
   benchmark generator. *)

module Layout = Mpl_layout.Layout
module Stitch = Mpl_layout.Stitch
module Layout_io = Mpl_layout.Layout_io
module Benchgen = Mpl_layout.Benchgen
module Rect = Mpl_geometry.Rect
module Polygon = Mpl_geometry.Polygon

let contact x y =
  Polygon.of_rect (Rect.make ~x0:x ~y0:y ~x1:(x + 20) ~y1:(y + 20))

let wire x0 x1 y =
  Polygon.of_rect (Rect.make ~x0 ~y0:y ~x1 ~y1:(y + 20))

let test_tech_distances () =
  let t = Layout.default_tech in
  Alcotest.(check int) "quadruple min_s" 80 (Layout.quadruple_min_s t);
  Alcotest.(check int) "pentuple min_s" 110 (Layout.pentuple_min_s t);
  Alcotest.(check int) "kclique min_s" 60 (Layout.kclique_min_s t)

let test_stitch_none_for_contacts () =
  let layout = Layout.make Layout.default_tech [ contact 0 0; contact 100 0 ] in
  let s = Stitch.split layout ~min_s:80 in
  Alcotest.(check int) "one node per contact" 2 (Array.length s.Stitch.nodes);
  Alcotest.(check int) "no stitch edges" 0 (List.length s.Stitch.stitch_edges)

let test_stitch_splits_wire_over_gap () =
  (* A wire over two contact clusters separated by a gap: the free span
     over the gap yields a stitch candidate. *)
  let layout =
    Layout.make Layout.default_tech
      [ contact 0 0; contact 200 0; wire (-40) 260 60 ]
  in
  let s = Stitch.split layout ~min_s:80 in
  let wire_nodes =
    Array.to_list s.Stitch.nodes
    |> List.filter (fun n -> n.Stitch.feature = 2)
  in
  Alcotest.(check bool) "wire was split" true (List.length wire_nodes >= 2);
  Alcotest.(check int) "stitch edges chain the segments"
    (List.length wire_nodes - 1)
    (List.length s.Stitch.stitch_edges);
  (* Segments tile the original wire exactly. *)
  let total =
    List.fold_left
      (fun acc n -> acc + Mpl_geometry.Polygon.area n.Stitch.shape)
      0 wire_nodes
  in
  Alcotest.(check int) "segments tile the wire" (300 * 20) total

let test_stitch_limit () =
  let layout =
    Layout.make Layout.default_tech
      [ contact 0 0; contact 200 0; contact 400 0; contact 600 0;
        wire (-40) 660 60 ]
  in
  let s = Stitch.split ~max_stitches_per_feature:1 layout ~min_s:80 in
  let wire_nodes =
    Array.to_list s.Stitch.nodes
    |> List.filter (fun n -> n.Stitch.feature = 4)
  in
  Alcotest.(check int) "at most limit+1 segments" 2 (List.length wire_nodes);
  let s0 = Stitch.split ~max_stitches_per_feature:0 layout ~min_s:80 in
  Alcotest.(check int) "limit 0 disables splitting" 5
    (Array.length s0.Stitch.nodes)

let test_io_roundtrip () =
  let layout =
    Layout.make ~name:"roundtrip" Layout.default_tech
      [
        contact 0 0;
        Polygon.of_rects
          [ Rect.make ~x0:0 ~y0:100 ~x1:20 ~y1:160;
            Rect.make ~x0:20 ~y0:100 ~x1:80 ~y1:120 ];
      ]
  in
  let s = Layout_io.to_string layout in
  let back = Layout_io.of_string s in
  Alcotest.(check string) "name" "roundtrip" back.Layout.name;
  Alcotest.(check int) "features" 2 (Layout.feature_count back);
  Alcotest.(check string) "stable serialization" s (Layout_io.to_string back)

let test_io_errors () =
  let check_fails name input =
    match Layout_io.of_string input with
    | exception Layout_io.Parse_error _ -> ()
    | _ -> Alcotest.fail (name ^ ": expected parse error")
  in
  check_fails "garbage" "WHAT 1 2\n";
  check_fails "R outside feature" "R 0 0 1 1\n";
  check_fails "unterminated" "FEATURE\nR 0 0 1 1\n";
  check_fails "empty feature" "FEATURE\nEND\n";
  check_fails "degenerate rect" "FEATURE\nR 0 0 0 5\nEND\n";
  check_fails "negative-extent rect" "FEATURE\nR 10 0 0 5\nEND\n";
  check_fails "non-integer coordinate" "FEATURE\nR 0 0 nan 5\nEND\n";
  check_fails "zero TECH" "TECH 0 20 20\n";
  check_fails "negative TECH" "TECH 20 -20 20\n";
  (* The structured error names the offending line. *)
  match Layout_io.of_string "NAME x\nTECH 20 20 20\nR 0 0 1 1\n" with
  | exception Layout_io.Parse_error { line; msg = _ } ->
    Alcotest.(check int) "error carries the line number" 3 line
  | _ -> Alcotest.fail "expected parse error with line info"

(* Fuzz the parser: random byte mutations and truncations of a valid
   layout must either parse or raise [Parse_error] — never any other
   exception, never a crash. *)
let test_io_fuzz () =
  let base = Layout_io.to_string (Benchgen.circuit "C432") in
  let n = String.length base in
  let rng = Mpl_util.Rng.create 0xF00D in
  for _ = 1 to 1000 do
    let b = Bytes.of_string base in
    (* 1-4 random byte replacements from a hostile alphabet. *)
    for _ = 0 to Mpl_util.Rng.int rng 4 do
      let pos = Mpl_util.Rng.int rng n in
      let repl = "RFE0-9 \nXD#.~\255" in
      Bytes.set b pos repl.[Mpl_util.Rng.int rng (String.length repl)]
    done;
    (* Sometimes truncate mid-line as well. *)
    let s =
      if Mpl_util.Rng.int rng 4 = 0 then
        Bytes.sub_string b 0 (Mpl_util.Rng.int rng n)
      else Bytes.to_string b
    in
    match Layout_io.of_string s with
    | _ -> ()
    | exception Layout_io.Parse_error _ -> ()
    | exception e ->
      Alcotest.fail
        (Printf.sprintf "parser leaked %s on mutated input"
           (Printexc.to_string e))
  done

let test_io_comments_and_blanks () =
  let layout =
    Layout_io.of_string "# a comment\n\nNAME x\nTECH 20 20 20\nFEATURE\nR 0 0 5 5\nEND\n"
  in
  Alcotest.(check int) "one feature" 1 (Layout.feature_count layout)

let test_benchgen_deterministic () =
  let a = Benchgen.circuit "C432" and b = Benchgen.circuit "C432" in
  Alcotest.(check string) "identical layouts"
    (Layout_io.to_string a) (Layout_io.to_string b)

let test_benchgen_circuits_exist () =
  List.iter
    (fun name ->
      let spec = Benchgen.spec_of_circuit name in
      Alcotest.(check string) "name matches" name spec.Benchgen.name)
    Benchgen.table1_circuits;
  Alcotest.(check bool) "table2 subset of table1" true
    (List.for_all
       (fun c -> List.mem c Benchgen.table1_circuits)
       Benchgen.table2_circuits);
  Alcotest.(check bool) "unknown raises" true
    (match Benchgen.spec_of_circuit "nope" with
    | exception Not_found -> true
    | _ -> false)

let test_benchgen_sizes_monotone () =
  let count name = Layout.feature_count (Benchgen.circuit name) in
  Alcotest.(check bool) "S-series bigger than C-series" true
    (count "S38417" > 3 * count "C7552");
  Alcotest.(check bool) "C432 smallest-ish" true (count "C432" < count "C7552")

let test_injected_conflicts_exact () =
  (* A spec with ONLY native clusters must cost exactly its textbook
     conflict count under QPL. *)
  let spec =
    {
      (Benchgen.spec_of_circuit "C432") with
      Benchgen.rows = 0;
      cells_per_row = 0;
      native_five = 3;
      native_six = 2;
      hard_blocks = 0;
      stitch_gadgets = 0;
      penta_six = 0;
      name = "injected";
    }
  in
  let layout = Benchgen.generate spec in
  let g = Mpl.Decomp_graph.of_layout layout ~min_s:80 in
  let r = Mpl.Decomposer.assign Mpl.Decomposer.Exact g in
  Alcotest.(check int) "3 fives + 2 sixes = 7 conflicts" 7
    r.Mpl.Decomposer.cost.Mpl.Coloring.conflicts;
  (* And under pentuple: fives free, sixes cost 1 each. *)
  let g5 = Mpl.Decomp_graph.of_layout layout ~min_s:110 in
  let params = { Mpl.Decomposer.default_params with Mpl.Decomposer.k = 5 } in
  let r5 = Mpl.Decomposer.assign ~params Mpl.Decomposer.Exact g5 in
  Alcotest.(check int) "pentuple: 2 conflicts" 2
    r5.Mpl.Decomposer.cost.Mpl.Coloring.conflicts

let test_stitch_gadget_costs_one_stitch () =
  let spec =
    {
      (Benchgen.spec_of_circuit "C432") with
      Benchgen.rows = 0;
      cells_per_row = 0;
      native_five = 0;
      native_six = 0;
      hard_blocks = 0;
      stitch_gadgets = 5;
      penta_six = 0;
      name = "gadgets";
    }
  in
  let layout = Benchgen.generate spec in
  let g = Mpl.Decomp_graph.of_layout layout ~min_s:80 in
  let r = Mpl.Decomposer.assign Mpl.Decomposer.Exact g in
  Alcotest.(check int) "no conflicts" 0 r.Mpl.Decomposer.cost.Mpl.Coloring.conflicts;
  Alcotest.(check int) "one stitch per gadget" 5
    r.Mpl.Decomposer.cost.Mpl.Coloring.stitches

let test_penta_six_cluster () =
  let spec =
    {
      (Benchgen.spec_of_circuit "C432") with
      Benchgen.rows = 0;
      cells_per_row = 0;
      native_five = 0;
      native_six = 0;
      hard_blocks = 0;
      stitch_gadgets = 0;
      penta_six = 4;
      name = "penta";
    }
  in
  let layout = Benchgen.generate spec in
  let g4 = Mpl.Decomp_graph.of_layout layout ~min_s:80 in
  let r4 = Mpl.Decomposer.assign Mpl.Decomposer.Exact g4 in
  Alcotest.(check int) "QPL clean" 0 r4.Mpl.Decomposer.cost.Mpl.Coloring.conflicts;
  let g5 = Mpl.Decomp_graph.of_layout layout ~min_s:110 in
  let params = { Mpl.Decomposer.default_params with Mpl.Decomposer.k = 5 } in
  let r5 = Mpl.Decomposer.assign ~params Mpl.Decomposer.Exact g5 in
  Alcotest.(check int) "one pentuple conflict each" 4
    r5.Mpl.Decomposer.cost.Mpl.Coloring.conflicts

let test_hard_block_structure () =
  let spec =
    {
      (Benchgen.spec_of_circuit "C432") with
      Benchgen.rows = 0;
      cells_per_row = 0;
      native_five = 0;
      native_six = 0;
      hard_blocks = 1;
      stitch_gadgets = 0;
      penta_six = 0;
      name = "hard";
    }
  in
  let layout = Benchgen.generate spec in
  let g = Mpl.Decomp_graph.of_layout layout ~min_s:80 in
  Alcotest.(check int) "51 contacts" 51 g.Mpl.Decomp_graph.n;
  let stats = Mpl.Division.fresh_stats () in
  let solver piece =
    (Mpl.Exact_color.solve ~k:4 ~alpha:0.1 piece).Mpl.Bnb.colors
  in
  let colors = Mpl.Division.assign ~stats ~k:4 ~alpha:0.1 ~solver g in
  Alcotest.(check int) "one QPL conflict" 1
    (Mpl.Coloring.evaluate g colors).Mpl.Coloring.conflicts;
  (* The peeled interior must survive division as one large piece —
     that is what makes the block hard for exact solvers. *)
  Alcotest.(check bool) "large piece survives division" true
    (stats.Mpl.Division.largest_piece >= 40)

(* End-to-end: random layouts through geometry -> graph -> division ->
   every algorithm; results are legal and heuristics never beat exact. *)
let random_layout_gen =
  QCheck.Gen.(
    int_range 0 100000 >|= fun seed ->
    let rng = Mpl_util.Rng.create seed in
    let feats = ref [] in
    let placed = ref [] in
    let n_contacts = 5 + Mpl_util.Rng.int rng 20 in
    let attempts = ref 0 in
    while List.length !placed < n_contacts && !attempts < 500 do
      incr attempts;
      let x = Mpl_util.Rng.int rng 800 and y = Mpl_util.Rng.int rng 400 in
      if
        List.for_all
          (fun (px, py) ->
            let dx = x - px and dy = y - py in
            (dx * dx) + (dy * dy) >= 40 * 40)
          !placed
      then placed := (x, y) :: !placed
    done;
    List.iter (fun (x, y) -> feats := contact x y :: !feats) !placed;
    (* A couple of wires above the contacts. *)
    for i = 0 to Mpl_util.Rng.int rng 3 - 1 do
      let x0 = Mpl_util.Rng.int rng 400 in
      let len = 200 + Mpl_util.Rng.int rng 400 in
      feats := wire x0 (x0 + len) (500 + (i * 120)) :: !feats
    done;
    (seed, Layout.make Layout.default_tech !feats))

let random_layout_arb =
  QCheck.make ~print:(fun (seed, _) -> Printf.sprintf "seed=%d" seed)
    random_layout_gen

let prop_end_to_end_random_layouts =
  QCheck.Test.make ~name:"random layouts: all algorithms legal, exact best"
    ~count:60 random_layout_arb
    (fun (_, layout) ->
      let g = Mpl.Decomp_graph.of_layout layout ~min_s:80 in
      let run algo = Mpl.Decomposer.assign algo g in
      let exact = run Mpl.Decomposer.Exact in
      List.for_all
        (fun algo ->
          let r = run algo in
          (* Conflicts are the sound comparison: divided-exact attains
             the global conflict optimum, which no coloring can beat.
             (Stitch counts can tie-break either way across rotation
             choices.) *)
          Mpl.Coloring.is_complete r.Mpl.Decomposer.colors
          && Mpl.Coloring.check_range ~k:4 r.Mpl.Decomposer.colors
          && r.Mpl.Decomposer.cost.Mpl.Coloring.conflicts
             >= exact.Mpl.Decomposer.cost.Mpl.Coloring.conflicts)
        [
          Mpl.Decomposer.Sdp_backtrack;
          Mpl.Decomposer.Sdp_greedy;
          Mpl.Decomposer.Linear;
        ])

(* Rigid transforms must preserve the decomposition problem exactly:
   same graph size, same edge counts, same optimal cost. *)
let test_transform_invariance () =
  let layout = Benchgen.circuit "C432" in
  let cost_of l =
    let g = Mpl.Decomp_graph.of_layout l ~min_s:80 in
    let r = Mpl.Decomposer.assign Mpl.Decomposer.Exact g in
    ( g.Mpl.Decomp_graph.n,
      List.length (Mpl.Decomp_graph.conflict_edges g),
      List.length (Mpl.Decomp_graph.stitch_edges g),
      r.Mpl.Decomposer.cost.Mpl.Coloring.scaled )
  in
  let quad_t =
    Alcotest.(pair (pair int int) (pair int int))
  in
  let pack (a, b, c, d) = ((a, b), (c, d)) in
  let reference = cost_of layout in
  List.iter
    (fun (name, transform) ->
      Alcotest.check quad_t name (pack reference)
        (pack (cost_of (transform layout))))
    [
      ("translate", Mpl_layout.Transform.translate ~dx:1234 ~dy:(-777));
      ("mirror_x", Mpl_layout.Transform.mirror_x);
      ("mirror_y", Mpl_layout.Transform.mirror_y);
      ("rotate90", Mpl_layout.Transform.rotate90);
    ]

let test_transform_roundtrip () =
  let layout = Benchgen.circuit "C880" in
  let back =
    layout
    |> Mpl_layout.Transform.rotate90 |> Mpl_layout.Transform.rotate90
    |> Mpl_layout.Transform.rotate90 |> Mpl_layout.Transform.rotate90
  in
  Alcotest.(check string) "four rotations are the identity"
    (Layout_io.to_string layout) (Layout_io.to_string back);
  let back2 =
    layout |> Mpl_layout.Transform.mirror_x |> Mpl_layout.Transform.mirror_x
  in
  Alcotest.(check string) "double mirror is the identity"
    (Layout_io.to_string layout) (Layout_io.to_string back2)

let test_vertical_wire_split () =
  let vwire =
    Polygon.of_rect (Rect.make ~x0:60 ~y0:(-40) ~x1:80 ~y1:260)
  in
  let layout =
    Layout.make Layout.default_tech [ contact 0 0; contact 0 200; vwire ]
  in
  let s = Stitch.split layout ~min_s:80 in
  let wire_nodes =
    Array.to_list s.Stitch.nodes
    |> List.filter (fun n -> n.Stitch.feature = 2)
  in
  Alcotest.(check bool) "vertical wire split" true (List.length wire_nodes >= 2)

let suite =
  [
    Alcotest.test_case "tech distances" `Quick test_tech_distances;
    Alcotest.test_case "transform invariance" `Slow test_transform_invariance;
    QCheck_alcotest.to_alcotest prop_end_to_end_random_layouts;
    Alcotest.test_case "transform roundtrips" `Quick test_transform_roundtrip;
    Alcotest.test_case "vertical wire split" `Quick test_vertical_wire_split;
    Alcotest.test_case "contacts never split" `Quick
      test_stitch_none_for_contacts;
    Alcotest.test_case "wire split over gap" `Quick
      test_stitch_splits_wire_over_gap;
    Alcotest.test_case "stitch limit" `Quick test_stitch_limit;
    Alcotest.test_case "io roundtrip" `Quick test_io_roundtrip;
    Alcotest.test_case "io errors" `Quick test_io_errors;
    Alcotest.test_case "io fuzz: only Parse_error" `Quick test_io_fuzz;
    Alcotest.test_case "io comments" `Quick test_io_comments_and_blanks;
    Alcotest.test_case "benchgen deterministic" `Quick
      test_benchgen_deterministic;
    Alcotest.test_case "benchgen circuits" `Quick test_benchgen_circuits_exist;
    Alcotest.test_case "benchgen sizes" `Quick test_benchgen_sizes_monotone;
    Alcotest.test_case "injected conflicts exact" `Quick
      test_injected_conflicts_exact;
    Alcotest.test_case "stitch gadget forces one stitch" `Quick
      test_stitch_gadget_costs_one_stitch;
    Alcotest.test_case "penta-six cluster" `Quick test_penta_six_cluster;
    Alcotest.test_case "hard block structure" `Quick test_hard_block_structure;
  ]
