(* Tests for fault-tolerant solving: the deterministic Fault injector,
   the per-piece fallback ladder and its provenance reporting, and the
   qcheck property that any single injected fault still yields a legal
   coloring — with pure perturbations (worker delay, cache corruption)
   additionally leaving the output bit-identical. *)

module F = Mpl_engine.Fault
module G = Mpl.Decomp_graph
module C = Mpl.Coloring
module D = Mpl.Decomposer
module Division = Mpl.Division
module Layout = Mpl_layout.Layout
module Benchgen = Mpl_layout.Benchgen
module Rect = Mpl_geometry.Rect
module Polygon = Mpl_geometry.Polygon

(* ------------------------------------------------------------------ *)
(* Fault spec parsing *)

let test_parse () =
  (match F.parse "solver_raise:seed=7" with
  | Ok { F.site = F.Solver_raise; seed = 7; shots = 1 } -> ()
  | Ok sp -> Alcotest.fail ("unexpected spec " ^ F.spec_to_string sp)
  | Error e -> Alcotest.fail e);
  (match F.parse "cache_corrupt" with
  | Ok { F.site = F.Cache_corrupt; seed = 0; shots = 1 } -> ()
  | _ -> Alcotest.fail "defaults wrong");
  (match F.parse "budget_trip:seed=3:shots=2" with
  | Ok sp ->
    Alcotest.(check string) "roundtrip" "budget_trip:seed=3:shots=2"
      (F.spec_to_string sp)
  | Error e -> Alcotest.fail e);
  (match F.parse "delay" with
  | Ok { F.site = F.Worker_delay; _ } -> ()
  | _ -> Alcotest.fail "alias not accepted");
  List.iter
    (fun bad ->
      match F.parse bad with
      | Ok _ -> Alcotest.fail (bad ^ ": expected parse error")
      | Error _ -> ())
    [ ""; "nope"; "solver_raise:seed=x"; "solver_raise:shots=0";
      "solver_raise:frobnicate=1" ]

let test_firing_window () =
  (* seed selects the 0-based occurrence; shots widens the window. *)
  let t = F.arm { F.site = F.Solver_raise; seed = 2; shots = 2 } in
  let fires = List.init 6 (fun _ -> F.fires t F.Solver_raise) in
  Alcotest.(check (list bool)) "occurrences 2 and 3 fire"
    [ false; false; true; true; false; false ]
    fires;
  Alcotest.(check int) "two shots fired" 2 (F.fire_count t);
  Alcotest.(check bool) "other sites never fire" false
    (F.fires t F.Budget_trip);
  Alcotest.(check bool) "none never fires" false
    (F.fires F.none F.Solver_raise)

(* ------------------------------------------------------------------ *)
(* Fallback ladder on a K4 clique (one leaf solve, no division) *)

(* Four contacts pairwise closer than min_s = 80: a K4 conflict clique,
   perfectly 4-colorable. *)
let clique_graph () =
  let contact x y =
    Polygon.of_rect (Rect.make ~x0:x ~y0:y ~x1:(x + 20) ~y1:(y + 20))
  in
  let layout =
    Layout.make Layout.default_tech
      [ contact 0 0; contact 40 0; contact 0 40; contact 40 40 ]
  in
  G.of_layout layout ~min_s:80

let run_faulted ?(algo = D.Exact) ?site ?(fseed = 0) ?(shots = 1) g =
  let fault =
    Option.map (fun site -> { F.site; seed = fseed; shots }) site
  in
  let params =
    {
      D.default_params with
      D.stages = Division.no_stages;
      solver_budget_s = 0.;
      fault;
    }
  in
  D.assign ~params algo g

let check_legal g (r : D.report) =
  Alcotest.(check bool) "coloring complete" true (C.is_complete r.D.colors);
  Alcotest.(check bool) "colors in range" true (C.check_range ~k:4 r.D.colors);
  Alcotest.(check bool) "reported cost consistent" true
    (C.evaluate g r.D.colors = r.D.cost)

let check_ladder ~algo ~shots ~solved_by ~attempts () =
  let g = clique_graph () in
  let r = run_faulted ~algo ~site:F.Solver_raise ~shots g in
  check_legal g r;
  (* K4 with k = 4 is conflict-free for every rung of the ladder. *)
  Alcotest.(check int) "clique stays conflict-free" 0 r.D.cost.C.conflicts;
  let res = r.D.resilience in
  Alcotest.(check bool) "fault fired" true res.D.fault_fired;
  Alcotest.(check int) "one degraded piece" 1 res.D.degraded;
  Alcotest.(check int) "one raising piece" 1 res.D.piece_failures;
  match res.D.failures with
  | [ pf ] ->
    Alcotest.(check string) "failed step" (D.algorithm_name algo)
      pf.D.failed_step;
    Alcotest.(check string) "solved by" solved_by pf.D.solved_by;
    Alcotest.(check int) "attempts" attempts pf.D.attempts
  | l -> Alcotest.fail (Printf.sprintf "%d failure records" (List.length l))

let test_ladder_exact () =
  (* Exact raises -> SDP+Backtrack and Linear both tried, both tie at
     cost 0, earliest rung wins. *)
  check_ladder ~algo:D.Exact ~shots:1 ~solved_by:"SDP+Backtrack" ~attempts:3 ()

let test_ladder_sdp () =
  check_ladder ~algo:D.Sdp_backtrack ~shots:1 ~solved_by:"Linear" ~attempts:2 ()

let test_ladder_linear () =
  (* Linear has no algorithmic rung below it: the terminal greedy
     coloring takes over. *)
  check_ladder ~algo:D.Linear ~shots:1 ~solved_by:"greedy" ~attempts:2 ()

let test_ladder_cascade () =
  (* shots=3 also poisons both fallback rungs: only greedy remains. *)
  check_ladder ~algo:D.Exact ~shots:3 ~solved_by:"greedy" ~attempts:4 ()

let test_budget_trip () =
  let g = clique_graph () in
  let r = run_faulted ~algo:D.Exact ~site:F.Budget_trip g in
  check_legal g r;
  Alcotest.(check bool) "run flagged timed out" true r.D.timed_out;
  let res = r.D.resilience in
  Alcotest.(check bool) "fault fired" true res.D.fault_fired;
  Alcotest.(check int) "one degraded piece" 1 res.D.degraded;
  Alcotest.(check int) "no raising piece" 0 res.D.piece_failures;
  match res.D.failures with
  | [ pf ] ->
    Alcotest.(check string) "error names the trip" "budget/node-cap trip"
      pf.D.error;
    (* The tripped solver's partial result ties the heuristics at cost 0
       and wins as the earliest candidate. *)
    Alcotest.(check string) "partial result kept" "Exact-BnB" pf.D.solved_by;
    Alcotest.(check int) "attempts" 3 pf.D.attempts
  | l -> Alcotest.fail (Printf.sprintf "%d failure records" (List.length l))

let test_no_fault_no_noise () =
  (* An armed-but-never-firing spec and an unarmed run agree exactly. *)
  let g = clique_graph () in
  let clean = run_faulted ~algo:D.Exact g in
  let inert = run_faulted ~algo:D.Exact ~site:F.Solver_raise ~fseed:7 g in
  (* Only one leaf solve: occurrence 7 never happens. *)
  Alcotest.(check bool) "armed fault did not fire" false
    inert.D.resilience.D.fault_fired;
  Alcotest.(check int) "nothing degraded" 0 inert.D.resilience.D.degraded;
  Alcotest.(check bool) "colorings identical" true
    (inert.D.colors = clean.D.colors);
  Alcotest.(check bool) "clean run reports no resilience noise" true
    (clean.D.resilience = D.no_resilience)

let test_fallback_cost_bound () =
  (* On a hard single-piece graph, a faulted exact solve may degrade but
     never below the Linear solver's quality: Linear is always among the
     ladder's candidates and the cheapest candidate wins. *)
  let spec =
    {
      (Benchgen.spec_of_circuit "C432") with
      Benchgen.rows = 0;
      cells_per_row = 0;
      native_five = 0;
      native_six = 0;
      hard_blocks = 1;
      stitch_gadgets = 0;
      penta_six = 0;
      name = "hard";
    }
  in
  let g = G.of_layout (Benchgen.generate spec) ~min_s:80 in
  let faulted = run_faulted ~algo:D.Exact ~site:F.Solver_raise g in
  let linear = run_faulted ~algo:D.Linear g in
  check_legal g faulted;
  Alcotest.(check int) "degraded" 1 faulted.D.resilience.D.degraded;
  Alcotest.(check bool)
    (Printf.sprintf "faulted cost %d within linear bound %d"
       faulted.D.cost.C.scaled linear.D.cost.C.scaled)
    true
    (faulted.D.cost.C.scaled <= linear.D.cost.C.scaled)

(* ------------------------------------------------------------------ *)
(* Property: any single injected fault still yields a legal coloring;
   pure perturbations leave the output bit-identical. *)

let spec_gen =
  QCheck.Gen.(
    int_range 1 2 >>= fun rows ->
    int_range 2 4 >>= fun cells ->
    int_range 0 2 >>= fun gadgets ->
    int_range 0 10_000 >|= fun seed ->
    {
      Mpl_layout.Benchgen.name = "fault-qcheck";
      seed;
      rows;
      cells_per_row = cells;
      density = 0.45;
      wire_fraction = 0.4;
      sparse_gap_prob = 0.8;
      native_five = 1;
      native_six = 0;
      hard_blocks = 0;
      stitch_gadgets = gadgets;
      penta_six = 0;
    })

let case_gen =
  QCheck.Gen.(
    spec_gen >>= fun spec ->
    oneofl [ F.Solver_raise; F.Worker_delay; F.Cache_corrupt; F.Budget_trip ]
    >>= fun site ->
    oneofl [ D.Linear; D.Sdp_backtrack; D.Exact ] >>= fun algo ->
    int_range 0 7 >>= fun fseed ->
    oneofl [ 1; 2 ] >>= fun jobs ->
    bool >|= fun cache -> (spec, site, algo, fseed, jobs, cache))

let case_print (spec, site, algo, fseed, jobs, cache) =
  Printf.sprintf "%s algo=%s seed=%d jobs=%d cache=%b layout_seed=%d rows=%d"
    (F.site_name site) (D.algorithm_name algo) fseed jobs cache
    spec.Mpl_layout.Benchgen.seed spec.Mpl_layout.Benchgen.rows

let prop_single_fault =
  QCheck.Test.make ~count:30
    ~name:"single fault: legal coloring, accurate degradation provenance"
    (QCheck.make ~print:case_print case_gen)
    (fun (spec, site, algo, fseed, jobs, cache) ->
      let layout = Mpl_layout.Benchgen.generate spec in
      let g = G.of_layout layout ~min_s:80 in
      let base =
        { D.default_params with D.jobs; cache; solver_budget_s = 0. }
      in
      let reference = D.assign ~params:base algo g in
      let params =
        { base with D.fault = Some { F.site; seed = fseed; shots = 1 } }
      in
      let r = D.assign ~params algo g in
      let res = r.D.resilience in
      C.is_complete r.D.colors
      && C.check_range ~k:4 r.D.colors
      && C.evaluate g r.D.colors = r.D.cost
      &&
      match site with
      | F.Worker_delay | F.Cache_corrupt ->
        (* Pure perturbations: recovery is a fresh solve or a schedule
           shift, never a degradation — output stays bit-identical. *)
        res.degraded = 0 && r.D.colors = reference.D.colors
      | F.Solver_raise | F.Budget_trip ->
        (* If the fault actually hit a solve, the report must say so. *)
        (not res.fault_fired) || res.degraded >= 1
      | F.Conn_drop | F.Write_stall | F.Torn_frame ->
        (* Network sites are probed only by the server's connection
           I/O; a pipeline run never reaches them. *)
        res.degraded = 0 && r.D.colors = reference.D.colors)

let suite =
  [
    Alcotest.test_case "fault spec parsing" `Quick test_parse;
    Alcotest.test_case "deterministic firing window" `Quick test_firing_window;
    Alcotest.test_case "ladder: exact -> sdp" `Quick test_ladder_exact;
    Alcotest.test_case "ladder: sdp -> linear" `Quick test_ladder_sdp;
    Alcotest.test_case "ladder: linear -> greedy" `Quick test_ladder_linear;
    Alcotest.test_case "ladder: cascade to greedy" `Quick test_ladder_cascade;
    Alcotest.test_case "budget trip degrades, keeps partial" `Quick
      test_budget_trip;
    Alcotest.test_case "armed but unfired is noise-free" `Quick
      test_no_fault_no_noise;
    Alcotest.test_case "degradation within linear bound" `Quick
      test_fallback_cost_bound;
    QCheck_alcotest.to_alcotest prop_single_fault;
  ]
