(* Tests for the geometric window sharding front-end: plan geometry,
   border-component reconciliation (Lemma 1 rotation at the former
   window border), and the headline contract — sharded output
   bit-identical to the unsharded run at every windows/jobs/cache
   setting. *)

module Rect = Mpl_geometry.Rect
module Polygon = Mpl_geometry.Polygon
module Layout = Mpl_layout.Layout
module G = Mpl.Decomp_graph
module S = Mpl.Shard
module D = Mpl.Decomposer
module Div = Mpl.Division

let contact x y =
  Polygon.of_rect (Rect.make ~x0:x ~y0:y ~x1:(x + 20) ~y1:(y + 20))

(* Random mixed contact/wire layouts: positions on a 3000x1000 nm
   extent, dense enough that components regularly straddle window
   borders, with wires long enough to stitch-split. *)
let random_layout seed ncontacts nwires =
  let rng = Mpl_util.Rng.create seed in
  let feats = ref [] in
  for _ = 1 to ncontacts do
    let x = Mpl_util.Rng.int rng 3000 and y = Mpl_util.Rng.int rng 1000 in
    feats := contact x y :: !feats
  done;
  for _ = 1 to nwires do
    let x = Mpl_util.Rng.int rng 2600 and y = Mpl_util.Rng.int rng 1000 in
    let w = 200 + Mpl_util.Rng.int rng 400 in
    feats :=
      Polygon.of_rect (Rect.make ~x0:x ~y0:y ~x1:(x + w) ~y1:(y + 20))
      :: !feats
  done;
  Layout.make ~name:"rand" Layout.default_tech (List.rev !feats)

let layout_gen =
  QCheck.Gen.(
    int_range 0 100_000 >>= fun seed ->
    int_range 5 90 >>= fun nc ->
    int_range 0 8 >|= fun nw -> (seed, nc, nw))

let layout_arb =
  QCheck.make
    ~print:(fun (s, nc, nw) -> Printf.sprintf "seed=%d nc=%d nw=%d" s nc nw)
    layout_gen

(* Plan geometry invariants: members ascending, every feature core in
   exactly one window, and the halo contract — every feature within the
   halo radius of a window's core extent is a member of that window. *)
let prop_plan_geometry =
  QCheck.Test.make ~name:"shard plan: cover, unique ownership, halo" ~count:80
    layout_arb (fun (seed, nc, nw) ->
      let layout = random_layout seed nc nw in
      let nf = Array.length layout.Layout.features in
      let halo = 100 in
      List.for_all
        (fun windows ->
          let sh = S.plan ~windows ~halo layout in
          let owned = Array.make nf 0 in
          Array.iter
            (fun (w : S.window) ->
              let sorted = ref true in
              Array.iteri
                (fun j m ->
                  if j > 0 && m <= w.S.members.(j - 1) then sorted := false)
                w.S.members;
              if not !sorted then QCheck.Test.fail_report "members not ascending";
              Array.iteri
                (fun j m -> if w.S.core.(j) then owned.(m) <- owned.(m) + 1)
                w.S.members)
            sh.S.windows;
          Array.iter
            (fun c ->
              if c <> 1 then QCheck.Test.fail_report "feature not owned once")
            owned;
          let boxes = Array.map Polygon.bbox layout.Layout.features in
          Array.iter
            (fun (w : S.window) ->
              let ext = ref None in
              Array.iteri
                (fun j m ->
                  if w.S.core.(j) then
                    ext :=
                      Some
                        (match !ext with
                        | None -> boxes.(m)
                        | Some e -> Rect.union_bbox e boxes.(m)))
                w.S.members;
              let e = Option.get !ext in
              let mem = Hashtbl.create 16 in
              Array.iter (fun m -> Hashtbl.replace mem m ()) w.S.members;
              Array.iteri
                (fun i b ->
                  if Rect.distance2 b e <= halo * halo then
                    if not (Hashtbl.mem mem i) then
                      QCheck.Test.fail_report "halo feature missing")
                boxes)
            sh.S.windows;
          true)
        [ 2; 3; 5 ])

let sharded_params ~windows ~jobs ~cache =
  { D.default_params with windows; jobs; cache }

(* The headline contract: for the self-contained algorithms the sharded
   decomposition is bit-identical to the unsharded one at every
   windows x jobs x cache setting. *)
let prop_sharded_equals_unsharded =
  QCheck.Test.make ~name:"sharded = unsharded (windows x jobs x cache)"
    ~count:40 layout_arb (fun (seed, nc, nw) ->
      let layout = random_layout seed nc nw in
      let _, base = D.decompose ~min_s:80 D.Linear layout in
      List.for_all
        (fun windows ->
          List.for_all
            (fun jobs ->
              List.for_all
                (fun cache ->
                  let r =
                    D.decompose_sharded
                      ~params:(sharded_params ~windows ~jobs ~cache)
                      ~min_s:80 D.Linear layout
                  in
                  r.D.colors = base.D.colors
                  && r.D.cost.Mpl.Coloring.scaled
                     = base.D.cost.Mpl.Coloring.scaled)
                [ false; true ])
            [ 1; 2 ])
        [ 2; 3; 5 ])

(* Same contract for the SDP pipeline (fewer cases: it is slower). *)
let prop_sharded_equals_unsharded_sdp =
  QCheck.Test.make ~name:"sharded = unsharded (SDP+Backtrack)" ~count:10
    layout_arb (fun (seed, nc, nw) ->
      let layout = random_layout seed nc nw in
      let _, base = D.decompose ~min_s:80 D.Sdp_backtrack layout in
      List.for_all
        (fun windows ->
          let r =
            D.decompose_sharded
              ~params:(sharded_params ~windows ~jobs:2 ~cache:true)
              ~min_s:80 D.Sdp_backtrack layout
          in
          r.D.colors = base.D.colors)
        [ 2; 4 ])

(* Lemma 1 rotation (Division.best_rotation) on a hand-built
   border-straddling pair: a crossing conflict forces the rotation that
   separates the endpoint colors; a crossing stitch picks the rotation
   that aligns them. *)
let test_best_rotation () =
  let r = Div.best_rotation ~k:4 ~alpha:0.1 [| 0 |] [| 0 |] [ (0, 0) ] [] in
  Alcotest.(check bool)
    "conflict endpoints separated" true
    ((0 + r) mod 4 <> 0);
  let r = Div.best_rotation ~k:4 ~alpha:0.1 [| 2 |] [| 0 |] [] [ (0, 0) ] in
  Alcotest.(check int) "stitch endpoints aligned" 2 r;
  (* Conflict beats stitch at the default weights: rotating to satisfy
     the conflict is worth breaking the stitch. *)
  let r =
    Div.best_rotation ~k:4 ~alpha:0.1 [| 0; 1 |] [| 0; 1 |]
      [ (0, 0) ]
      [ (1, 1) ]
  in
  Alcotest.(check bool) "conflict wins" true ((0 + r) mod 4 <> 0)

(* A conflict chain across the whole extent: under any 2-window cut it
   is one border-straddling component. The rebuilt border piece must be
   bit-identical to the unsharded graph (which is that single
   component), and the end-to-end sharded coloring identical too. *)
let test_border_component () =
  let feats = List.init 20 (fun i -> contact (i * 60) 0) in
  let layout = Layout.make ~name:"chain" Layout.default_tech feats in
  let sh = S.plan ~windows:2 ~halo:100 layout in
  Alcotest.(check int) "two windows" 2 (Array.length sh.S.windows);
  let acc = S.fresh_acc sh in
  let interiors =
    List.concat_map
      (S.scan_window ~acc ~min_s:80 ~hp:20 layout)
      (Array.to_list sh.S.windows)
  in
  Alcotest.(check int) "no interior pieces" 0 (List.length interiors);
  let border = S.border_pieces acc ~min_s:80 ~hp:20 in
  Alcotest.(check int) "one border class" 1 (List.length border);
  let p = List.hd border in
  let g = G.of_layout layout ~min_s:80 in
  Alcotest.(check int) "all vertices" g.G.n p.S.graph.G.n;
  Alcotest.(check (list (pair int int)))
    "conflict edges bit-identical" (G.conflict_edges g)
    (G.conflict_edges p.S.graph);
  Array.iteri
    (fun v f -> Alcotest.(check int) "canonical back map" v f)
    p.S.back_feature;
  let _, base = D.decompose ~min_s:80 D.Linear layout in
  let r =
    D.decompose_sharded
      ~params:{ D.default_params with windows = 2 }
      ~min_s:80 D.Linear layout
  in
  Alcotest.(check (array int)) "colors identical" base.D.colors r.D.colors

(* Window-count extremes collapse gracefully: 1 window (and more
   windows than features) still reproduce the unsharded output. *)
let test_window_extremes () =
  let layout = random_layout 7 40 3 in
  let _, base = D.decompose ~min_s:80 D.Linear layout in
  List.iter
    (fun windows ->
      let r =
        D.decompose_sharded
          ~params:{ D.default_params with windows }
          ~min_s:80 D.Linear layout
      in
      Alcotest.(check (array int))
        (Printf.sprintf "windows=%d" windows)
        base.D.colors r.D.colors)
    [ 1; 1000 ];
  (* window_nm sizing takes precedence and also matches. *)
  let r =
    D.decompose_sharded
      ~params:{ D.default_params with windows = 1; window_nm = Some 700 }
      ~min_s:80 D.Linear layout
  in
  Alcotest.(check (array int)) "window_nm=700" base.D.colors r.D.colors

(* The synthetic generator is deterministic and lands near its feature
   target; a sharded run over it matches unsharded. *)
let test_synth_generator () =
  let spec = Mpl_layout.Benchgen.synth ~seed:11 ~features:2000 () in
  let l1 = Mpl_layout.Benchgen.generate spec in
  let l2 = Mpl_layout.Benchgen.generate spec in
  let n = Array.length l1.Layout.features in
  Alcotest.(check int)
    "deterministic" n
    (Array.length l2.Layout.features);
  Alcotest.(check bool)
    (Printf.sprintf "near target (got %d)" n)
    true
    (n > 1600 && n < 2400);
  let _, base = D.decompose ~min_s:80 D.Linear l1 in
  let r =
    D.decompose_sharded
      ~params:{ D.default_params with windows = 6; jobs = 2; cache = true }
      ~min_s:80 D.Linear l1
  in
  Alcotest.(check (array int)) "sharded = unsharded" base.D.colors r.D.colors

let test_sharded_guards () =
  let layout = random_layout 3 10 0 in
  Alcotest.check_raises "post pass rejected"
    (Invalid_argument "decompose_sharded: post passes need the whole graph")
    (fun () ->
      ignore
        (D.decompose_sharded
           ~params:{ D.default_params with post = D.Local_search }
           ~min_s:80 D.Linear layout));
  Alcotest.check_raises "balance rejected"
    (Invalid_argument "decompose_sharded: balance needs the whole graph")
    (fun () ->
      ignore
        (D.decompose_sharded
           ~params:{ D.default_params with balance = true }
           ~min_s:80 D.Linear layout))

let suite =
  [
    QCheck_alcotest.to_alcotest prop_plan_geometry;
    QCheck_alcotest.to_alcotest prop_sharded_equals_unsharded;
    QCheck_alcotest.to_alcotest prop_sharded_equals_unsharded_sdp;
    Alcotest.test_case "Lemma 1 rotation at a window border" `Quick
      test_best_rotation;
    Alcotest.test_case "border-straddling component rebuilt bit-identical"
      `Quick test_border_component;
    Alcotest.test_case "window-count extremes" `Quick test_window_extremes;
    Alcotest.test_case "synthetic generator" `Quick test_synth_generator;
    Alcotest.test_case "sharded guards" `Quick test_sharded_guards;
  ]
