let () =
  Alcotest.run "mpl"
    [
      ("util", Test_util.suite);
      ("geometry", Test_geometry.suite);
      ("graph", Test_graph.suite);
      ("ilp", Test_ilp.suite);
      ("numeric", Test_numeric.suite);
      ("layout", Test_layout.suite);
      ("core", Test_core.suite);
      ("engine", Test_engine.suite);
      ("server", Test_server.suite);
      ("fault", Test_fault.suite);
      ("obs", Test_obs.suite);
      ("extensions", Test_extensions.suite);
      ("shard", Test_shard.suite);
      ("eco", Test_eco.suite);
      ("paper", Test_paper.suite);
    ]
