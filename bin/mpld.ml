(* mpld — multiple-patterning layout decomposer CLI.

   Subcommands:
     gen         generate a synthetic benchmark layout file
     decompose   decompose a layout file (or named benchmark) and report
     stats       print decomposition-graph and division statistics
     trace-check validate a Chrome trace emitted by --trace *)

open Cmdliner

let algorithm_conv =
  let parse = function
    | "ilp" -> Ok Mpl.Decomposer.Ilp
    | "exact" -> Ok Mpl.Decomposer.Exact
    | "sdp-backtrack" | "sdp" -> Ok Mpl.Decomposer.Sdp_backtrack
    | "sdp-greedy" -> Ok Mpl.Decomposer.Sdp_greedy
    | "linear" -> Ok Mpl.Decomposer.Linear
    | s -> Error (`Msg (Printf.sprintf "unknown algorithm %S" s))
  in
  let print ppf a =
    Format.pp_print_string ppf
      (match a with
      | Mpl.Decomposer.Ilp -> "ilp"
      | Mpl.Decomposer.Exact -> "exact"
      | Mpl.Decomposer.Sdp_backtrack -> "sdp-backtrack"
      | Mpl.Decomposer.Sdp_greedy -> "sdp-greedy"
      | Mpl.Decomposer.Linear -> "linear")
  in
  Arg.conv (parse, print)

let load_layout source =
  if Sys.file_exists source then begin
    (* Bad input is a user error: report file:line and exit 2, never a
       backtrace. *)
    try Mpl_layout.Layout_io.load source with
    | Mpl_layout.Layout_io.Parse_error { line; msg } ->
      Printf.eprintf "error: %s:%d: %s\n" source line msg;
      exit 2
    | Sys_error msg ->
      Printf.eprintf "error: %s\n" msg;
      exit 2
  end
  else
    try Mpl_layout.Benchgen.circuit source
    with Not_found ->
      Printf.eprintf
        "error: %s is neither a file nor a known benchmark circuit\n" source;
      exit 2

let circuit_arg =
  let doc =
    "Layout file, or a benchmark circuit name (C432 .. S15850) generated \
     on the fly."
  in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"LAYOUT" ~doc)

let k_arg =
  let doc = "Number of masks (colors); 4 = quadruple patterning." in
  Arg.(value & opt int 4 & info [ "k" ] ~docv:"K" ~doc)

let min_s_arg =
  let doc =
    "Minimum coloring distance in nm. Default: the paper's setting for \
     the chosen K (80 for K=4, 110 for K=5)."
  in
  Arg.(value & opt (some int) None & info [ "min-s" ] ~docv:"NM" ~doc)

let algo_arg =
  let doc = "Color assignment algorithm: ilp, exact, sdp-backtrack, sdp-greedy, linear." in
  Arg.(
    value
    & opt algorithm_conv Mpl.Decomposer.Linear
    & info [ "a"; "algorithm" ] ~docv:"ALGO" ~doc)

let budget_arg =
  let doc = "Wall-clock budget in seconds for exact algorithms." in
  Arg.(value & opt float 60. & info [ "budget" ] ~docv:"S" ~doc)

let jobs_arg =
  let doc =
    "Number of concurrent piece solvers (domains). 1 = sequential."
  in
  Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let no_cache_arg =
  let doc =
    "Disable the canonical-signature cache that deduplicates repeated \
     components."
  in
  Arg.(value & flag & info [ "no-cache" ] ~doc)

let cache_permuted_arg =
  let doc =
    "Let the cache reuse colorings across relabeled isomorphic components \
     too (higher hit rate; colorings may differ from an uncached run, \
     costs of reused components are preserved)."
  in
  Arg.(value & flag & info [ "cache-permuted" ] ~doc)

let cache_warm_arg =
  let doc =
    "Warm-start the SDP solver of each piece from the cached coloring of \
     a previously solved piece with the same canonical signature. Never \
     skips a solve; warm-started solves may converge early, so colorings \
     can differ (equally valid) from a cold run."
  in
  Arg.(value & flag & info [ "cache-warm" ] ~doc)

let engine_params base ~jobs ~no_cache ~cache_permuted ~cache_warm =
  {
    base with
    Mpl.Decomposer.jobs;
    cache = not no_cache;
    cache_permuted;
    cache_warm;
  }

let fault_conv =
  let parse s =
    match Mpl_engine.Fault.parse s with
    | Ok spec -> Ok spec
    | Error msg -> Error (`Msg msg)
  in
  let print ppf sp =
    Format.pp_print_string ppf (Mpl_engine.Fault.spec_to_string sp)
  in
  Arg.conv (parse, print)

let inject_arg =
  let doc =
    "Inject one deterministic fault: \
     $(docv) = SITE[:seed=N][:shots=N] with SITE one of solver_raise, \
     worker_delay, cache_corrupt, budget_trip (pipeline sites), or \
     conn_drop, write_stall, torn_frame (network sites, honoured by \
     $(b,mpld serve) on its connection I/O). A pipeline-site run must \
     still produce a legal coloring; degradations are reported."
  in
  Arg.(
    value
    & opt (some fault_conv) None
    & info [ "inject" ] ~docv:"FAULT" ~doc)

let trace_arg =
  let doc =
    "Write a Chrome trace_event JSON profile of the run to $(docv) \
     (open in chrome://tracing or ui.perfetto.dev)."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let metrics_arg =
  let doc = "Collect run metrics and print the registry to stderr." in
  Arg.(value & flag & info [ "metrics" ] ~doc)

let verbose_arg =
  let doc = "Print per-phase timing summaries to stderr." in
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc)

let refine_arg =
  let doc = "Run a local-search refinement pass after division." in
  Arg.(value & flag & info [ "refine" ] ~doc)

let balance_arg =
  let doc = "Rebalance mask densities (cost-free) after assignment." in
  Arg.(value & flag & info [ "balance" ] ~doc)

let colors_arg =
  let doc =
    "Write the final coloring to $(docv), one color per line in vertex \
     order (diffable against $(b,mpld client --colors))."
  in
  Arg.(value & opt (some string) None & info [ "colors" ] ~docv:"FILE" ~doc)

let windows_arg =
  let doc =
    "Shard the layout into $(docv) geometric window strips with halo \
     overlaps and decompose window by window, bounding peak memory to \
     the largest window. Output is bit-identical to an unsharded run. \
     1 (the default) decomposes whole-layout."
  in
  Arg.(value & opt int 1 & info [ "windows" ] ~docv:"N" ~doc)

let window_size_arg =
  let doc =
    "Target window strip width in nm for sharding (takes precedence \
     over --windows)."
  in
  Arg.(value & opt (some int) None & info [ "window-size" ] ~docv:"NM" ~doc)

let max_heap_arg =
  let doc =
    "Abort with exit code 7 if the OCaml major heap exceeds $(docv) \
     megabytes (checked at every major collection). Use with --windows \
     to enforce the sharded memory bound."
  in
  Arg.(value & opt (some int) None & info [ "max-heap-mb" ] ~docv:"MB" ~doc)

(* Heap-budget enforcement for --max-heap-mb: a Gc alarm fires at the
   end of every major collection; breaching the budget is a hard,
   deliberate failure (exit 7) so CI can assert the sharded path really
   stays within its window-bounded footprint. OCAMLRUNPARAM has no true
   heap cap, hence this alarm. *)
let arm_heap_budget = function
  | None -> ()
  | Some mb ->
    let budget_words = mb * 1024 * 1024 / (Sys.word_size / 8) in
    ignore
      (Gc.create_alarm (fun () ->
           let hw = (Gc.quick_stat ()).Gc.heap_words in
           if hw > budget_words then begin
             Printf.eprintf
               "error: heap budget exceeded: %d MB in use, budget %d MB\n%!"
               (hw * (Sys.word_size / 8) / 1024 / 1024)
               mb;
             exit 7
           end))

let peak_heap_mb () =
  float_of_int ((Gc.quick_stat ()).Gc.top_heap_words * (Sys.word_size / 8))
  /. 1024. /. 1024.

let write_colors path colors =
  let oc = open_out path in
  Array.iter (fun c -> Printf.fprintf oc "%d\n" c) colors;
  close_out oc

let resolve_min_s ~k ~min_s =
  match min_s with
  | Some m -> m
  | None ->
    let tech = Mpl_layout.Layout.default_tech in
    if k >= 5 then Mpl_layout.Layout.pentuple_min_s tech
    else Mpl_layout.Layout.quadruple_min_s tech

(* Per-mask usage table from report.balance: feature/vertex/area tallies
   in mask order, shared by decompose -v and redecompose -v. *)
let print_balance = function
  | None -> ()
  | Some b ->
    Array.iteri
      (fun c nf ->
        Format.eprintf "mask %d: features=%d vertices=%d area=%d@." c nf
          b.Mpl.Decomposer.mask_vertices.(c)
          b.Mpl.Decomposer.mask_area.(c))
      b.Mpl.Decomposer.mask_features

let session_out_arg =
  let doc =
    "Write an ECO session snapshot of this decomposition to $(docv) for a \
     later $(b,mpld redecompose). Incompatible with --windows (the \
     snapshot needs the whole graph)."
  in
  Arg.(value & opt (some string) None & info [ "session" ] ~docv:"FILE" ~doc)

let decompose_cmd =
  let run source k min_s algo budget refine balance jobs no_cache
      cache_permuted cache_warm inject trace metrics verbose colors_out
      windows window_nm max_heap_mb session_out =
    arm_heap_budget max_heap_mb;
    let layout = load_layout source in
    let min_s = resolve_min_s ~k ~min_s in
    let sharded = windows > 1 || window_nm <> None in
    if sharded && (refine || balance) then begin
      Printf.eprintf
        "error: --windows is incompatible with --refine/--balance (global \
         passes need the whole graph)\n";
      exit 2
    end;
    if sharded && session_out <> None then begin
      Printf.eprintf
        "error: --session is incompatible with --windows (the snapshot \
         needs the whole graph)\n";
      exit 2
    end;
    (* -v needs span data even without a trace file. *)
    let sink =
      if trace <> None || verbose then Some (Mpl_obs.Sink.create ()) else None
    in
    let params =
      engine_params ~jobs ~no_cache ~cache_permuted ~cache_warm
        {
          Mpl.Decomposer.default_params with
          k;
          solver_budget_s = budget;
          post =
            (if refine then Mpl.Decomposer.Local_search
             else Mpl.Decomposer.No_post);
          balance;
          trace = sink;
          metrics;
          fault = inject;
          windows;
          window_nm;
        }
    in
    Format.printf "%a@." Mpl_layout.Layout.pp_summary layout;
    let report =
      if sharded then begin
        let report =
          Mpl.Decomposer.decompose_sharded ~params ~min_s algo layout
        in
        Format.printf
          "sharded: windows=%s vertices=%d peak_heap=%.1fMB (min_s=%d, k=%d)@."
          (match window_nm with
          | Some nm -> Printf.sprintf "%dnm" nm
          | None -> string_of_int windows)
          (Array.length report.Mpl.Decomposer.colors)
          (peak_heap_mb ()) min_s k;
        report
      end
      else begin
        let g, report = Mpl.Decomposer.decompose ~params ~min_s algo layout in
        Format.printf "graph: %a (min_s=%d, k=%d)@." Mpl.Decomp_graph.pp g
          min_s k;
        (match session_out with
        | Some path ->
          Mpl.Eco.save
            (Mpl.Decomposer.snapshot ~params ~min_s algo g layout report)
            path;
          Format.eprintf "session: wrote %s@." path
        | None -> ());
        report
      end
    in
    Format.printf "%a@." Mpl.Decomposer.pp_report report;
    if verbose then print_balance report.Mpl.Decomposer.balance;
    let res = report.Mpl.Decomposer.resilience in
    if inject <> None || res.Mpl.Decomposer.degraded > 0 then
      Format.printf
        "resilience: degraded=%d piece_failures=%d fallbacks=%d fired=%b@."
        res.Mpl.Decomposer.degraded res.Mpl.Decomposer.piece_failures
        res.Mpl.Decomposer.fallback_attempts res.Mpl.Decomposer.fault_fired;
    if balance then
      Format.printf "mask usage: %s@."
        (String.concat " "
           (Array.to_list
              (Array.map string_of_int
                 (Mpl.Balance.usage ~k report.Mpl.Decomposer.colors))));
    (match colors_out with
    | Some path ->
      write_colors path report.Mpl.Decomposer.colors;
      Format.eprintf "colors: wrote %d entries to %s@."
        (Array.length report.Mpl.Decomposer.colors)
        path
    | None -> ());
    (match sink with
    | None -> ()
    | Some sink ->
      let events = Mpl_obs.Sink.events sink in
      if verbose then
        Format.eprintf "-- phases --@.%a" Mpl_obs.Export.pp_phases events;
      match trace with
      | None -> ()
      | Some file ->
        Mpl_obs.Export.write_chrome ~process_name:("mpld " ^ source) file
          events;
        Format.eprintf "trace: wrote %d spans to %s@." (List.length events)
          file);
    match report.Mpl.Decomposer.metrics with
    | Some snap when metrics ->
      Format.eprintf "-- metrics --@.%a" Mpl_obs.Export.pp_metrics snap
    | Some _ | None -> ()
  in
  let term =
    Term.(
      const run $ circuit_arg $ k_arg $ min_s_arg $ algo_arg $ budget_arg
      $ refine_arg $ balance_arg $ jobs_arg $ no_cache_arg
      $ cache_permuted_arg $ cache_warm_arg $ inject_arg $ trace_arg
      $ metrics_arg $ verbose_arg $ colors_arg $ windows_arg
      $ window_size_arg $ max_heap_arg $ session_out_arg)
  in
  Cmd.v (Cmd.info "decompose" ~doc:"Decompose a layout and report cost") term

let redecompose_cmd =
  let session_pos_arg =
    let doc = "ECO session file written by $(b,mpld decompose --session)." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"SESSION" ~doc)
  in
  let edits_pos_arg =
    let doc =
      "Edit-script file (ADD/REMOVE/MOVE lines, as written by \
       $(b,mpld gen edits))."
    in
    Arg.(required & pos 1 (some string) None & info [] ~docv:"EDITS" ~doc)
  in
  let save_layout_arg =
    let doc = "Write the edited layout to $(docv) (Layout_io format)." in
    Arg.(
      value & opt (some string) None & info [ "save-layout" ] ~docv:"FILE" ~doc)
  in
  let run session_file edits_file k algo jobs no_cache cache_permuted
      cache_warm metrics verbose colors_out session_out save_layout =
    let prev =
      try Mpl.Eco.load session_file with
      | Mpl.Eco.Bad_file msg ->
        Printf.eprintf "error: %s: %s\n" session_file msg;
        exit 2
      | Sys_error msg ->
        Printf.eprintf "error: %s\n" msg;
        exit 2
    in
    let edits_text =
      try
        let ic = open_in_bin edits_file in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      with Sys_error msg ->
        Printf.eprintf "error: %s\n" msg;
        exit 2
    in
    let edits =
      match Mpl.Eco.parse_edits edits_text with
      | Ok e -> e
      | Error msg ->
        Printf.eprintf "error: %s: %s\n" edits_file msg;
        exit 2
    in
    let params =
      engine_params ~jobs ~no_cache ~cache_permuted ~cache_warm
        { Mpl.Decomposer.default_params with k; metrics }
    in
    match Mpl.Decomposer.redecompose ~params ~prev ~edits algo with
    | Error msg ->
      Printf.eprintf "error: %s\n" msg;
      exit 2
    | Ok (edited, report, next) ->
      Format.printf "%a@." Mpl_layout.Layout.pp_summary edited;
      Format.printf "%a@." Mpl.Decomposer.pp_report report;
      (match report.Mpl.Decomposer.eco with
      | Some e ->
        Format.printf "eco: reused=%d dirty=%d dirty_features=%d@."
          e.Mpl.Decomposer.reused_components e.Mpl.Decomposer.dirty_components
          e.Mpl.Decomposer.dirty_features
      | None -> ());
      if verbose then print_balance report.Mpl.Decomposer.balance;
      (match save_layout with
      | Some path ->
        Mpl_layout.Layout_io.save edited path;
        Format.eprintf "layout: wrote %s@." path
      | None -> ());
      (match session_out with
      | Some path ->
        Mpl.Eco.save next path;
        Format.eprintf "session: wrote %s@." path
      | None -> ());
      (match colors_out with
      | Some path ->
        write_colors path report.Mpl.Decomposer.colors;
        Format.eprintf "colors: wrote %d entries to %s@."
          (Array.length report.Mpl.Decomposer.colors)
          path
      | None -> ());
      match report.Mpl.Decomposer.metrics with
      | Some snap when metrics ->
        Format.eprintf "-- metrics --@.%a" Mpl_obs.Export.pp_metrics snap
      | Some _ | None -> ()
  in
  let term =
    Term.(
      const run $ session_pos_arg $ edits_pos_arg $ k_arg $ algo_arg
      $ jobs_arg $ no_cache_arg $ cache_permuted_arg $ cache_warm_arg
      $ metrics_arg $ verbose_arg $ colors_arg $ session_out_arg
      $ save_layout_arg)
  in
  Cmd.v
    (Cmd.info "redecompose"
       ~doc:
         "Incrementally re-decompose an edited layout from an ECO session, \
          re-solving only the components the edit touches")
    term

let gen_cmd =
  let out_arg =
    let doc = "Output layout file." in
    Arg.(required & pos 1 (some string) None & info [] ~docv:"OUT" ~doc)
  in
  let features_arg =
    let doc =
      "$(b,synth) mode: target feature count (100k-1M scale inputs for \
       --windows)."
    in
    Arg.(value & opt int 100_000 & info [ "features" ] ~docv:"N" ~doc)
  in
  let seed_arg =
    let doc = "$(b,synth) mode: generator seed." in
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let density_arg =
    let doc = "$(b,synth) mode: motif density in 0..1." in
    Arg.(value & opt float 0.5 & info [ "density" ] ~docv:"D" ~doc)
  in
  let wires_arg =
    let doc =
      "$(b,synth) mode: routing-wire fraction in 0..1 (stitch richness)."
    in
    Arg.(value & opt float 0.4 & info [ "wires" ] ~docv:"W" ~doc)
  in
  let gadgets_arg =
    let doc =
      "$(b,synth) mode: number of guaranteed one-stitch gadgets to inject."
    in
    Arg.(value & opt int 0 & info [ "stitch-gadgets" ] ~docv:"N" ~doc)
  in
  let base_layout_arg =
    let doc =
      "$(b,edits) mode: the base layout file (or circuit name) the edit \
       script is generated against."
    in
    Arg.(value & opt (some string) None & info [ "layout" ] ~docv:"LAYOUT" ~doc)
  in
  let count_arg =
    let doc = "$(b,edits) mode: number of edits to generate." in
    Arg.(value & opt int 16 & info [ "count" ] ~docv:"N" ~doc)
  in
  let run name out features seed density wires gadgets base_layout count =
    if name = "edits" then begin
      (* Deterministic ECO edit script over an existing layout: the
         redecompose benchmarks and smokes feed on this. *)
      match base_layout with
      | None ->
        Printf.eprintf "error: gen edits needs --layout LAYOUT\n";
        exit 2
      | Some src ->
        let layout = load_layout src in
        let edits = Mpl.Eco.generate ~seed ~count layout in
        let oc = open_out out in
        output_string oc (Mpl.Eco.edits_to_string edits);
        close_out oc;
        Format.printf "wrote %d edits against %s to %s@." (List.length edits)
          src out
    end
    else
    let spec =
      if name = "synth" then
        Some
          (Mpl_layout.Benchgen.synth ~density ~wire_fraction:wires
             ~stitch_gadgets:gadgets ~seed ~features ())
      else
        match Mpl_layout.Benchgen.spec_of_circuit name with
        | spec -> Some spec
        | exception Not_found -> None
    in
    match spec with
    | Some spec ->
      let layout = Mpl_layout.Benchgen.generate spec in
      Mpl_layout.Layout_io.save layout out;
      Format.printf "wrote %a to %s@." Mpl_layout.Layout.pp_summary layout out
    | None ->
      Printf.eprintf "error: unknown circuit %s (or use \"synth\")\n" name;
      exit 2
  in
  let name_arg =
    let doc =
      "Benchmark circuit name (C432 .. S15850), $(b,synth) for the \
       parametric generator sized by --features/--seed/--density/--wires, \
       or $(b,edits) for an ECO edit script over --layout."
    in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"CIRCUIT" ~doc)
  in
  let term =
    Term.(
      const run $ name_arg $ out_arg $ features_arg $ seed_arg $ density_arg
      $ wires_arg $ gadgets_arg $ base_layout_arg $ count_arg)
  in
  Cmd.v
    (Cmd.info "gen"
       ~doc:
         "Generate a synthetic benchmark layout (named circuit or \
          parametric synth), or an ECO edit script")
    term

let socket_arg =
  let doc = "Unix-domain socket path." in
  Arg.(value & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)

let port_arg =
  let doc = "TCP port." in
  Arg.(value & opt (some int) None & info [ "port" ] ~docv:"PORT" ~doc)

let host_arg =
  let doc = "TCP host/bind address." in
  Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"HOST" ~doc)

(* Exit codes for anything talking to a server, so scripts can
   distinguish "retry later" from "give up":
     0 success          1 protocol / server error
     2 usage            3 server busy (admission control)
     4 deadline expired or cancelled server-side
     5 could not connect *)
let connect_target ~socket ~host ~port =
  match (socket, port) with
  | Some path, _ -> path
  | None, Some p -> Printf.sprintf "%s:%d" host p
  | None, None -> "?"

let try_connect ~socket ~host ~port =
  match (socket, port) with
  | Some path, _ -> (
    try Ok (Mpl_server.Client.connect_unix path) with e -> Error e)
  | None, Some p -> (
    try Ok (Mpl_server.Client.connect_tcp host p) with e -> Error e)
  | None, None ->
    Printf.eprintf "error: needs --socket PATH or --port PORT\n";
    exit 2

let connect_error_line ~socket ~host ~port e =
  let target = connect_target ~socket ~host ~port in
  match e with
  | Unix.Unix_error (ue, _, _) ->
    Printf.sprintf "connect %s: %s" target (Unix.error_message ue)
  | Not_found -> Printf.sprintf "connect %s: host not found" target
  | e -> Printf.sprintf "connect %s: %s" target (Printexc.to_string e)

let connect_or_die ~socket ~host ~port =
  match try_connect ~socket ~host ~port with
  | Ok conn -> conn
  | Error e ->
    Printf.eprintf "error: %s\n" (connect_error_line ~socket ~host ~port e);
    exit 5

(* Pretty-print a live server's STATS JSON: counters one-per-line plus
   the latency percentile estimates the SLO histograms feed. *)
let print_server_stats json =
  match Mpl_obs.Json.parse json with
  | Error e ->
    Printf.eprintf "error: unparseable STATS reply: %s\n" e;
    exit 1
  | Ok root ->
    let open Mpl_obs.Json in
    let num path obj =
      match member path obj with
      | Some v -> to_float v
      | None -> None
    in
    let fmt_num = function
      | Some f ->
        if Float.is_integer f && Float.abs f < 1e15 then
          Printf.sprintf "%.0f" f
        else Printf.sprintf "%.3f" f
      | None -> "-"
    in
    (match member "server" root with
    | Some srv ->
      Printf.printf
        "server: served=%s rejected=%s errors=%s inflight=%s/%s jobs=%s \
         uptime=%ss queue=%s/%s\n"
        (fmt_num (num "served" srv))
        (fmt_num (num "rejected" srv))
        (fmt_num (num "errors" srv))
        (fmt_num (num "inflight" srv))
        (fmt_num (num "max_inflight" srv))
        (fmt_num (num "jobs" srv))
        (fmt_num (num "uptime_s" srv))
        (fmt_num (num "queue_depth" srv))
        (fmt_num (num "queue_bound" srv))
    | None -> ());
    (match member "latency" root with
    | Some lat ->
      List.iter
        (fun key ->
          match member key lat with
          | Some (Obj _ as h) ->
            Printf.printf "latency %-12s n=%s p50=%sms p90=%sms p99=%sms\n" key
              (fmt_num (num "count" h))
              (fmt_num (num "p50_ms" h))
              (fmt_num (num "p90_ms" h))
              (fmt_num (num "p99_ms" h))
          | Some Null | None -> Printf.printf "latency %-12s (empty)\n" key
          | Some _ -> ())
        [ "e2e"; "queue_wait"; "first_piece"; "solve" ]
    | None -> ());
    match member "cache" root with
    | Some c ->
      Printf.printf
        "cache: entries=%s bytes=%s hits=%s misses=%s evictions=%s\n"
        (fmt_num (num "entries" c))
        (fmt_num (num "bytes" c))
        (fmt_num (num "hits" c))
        (fmt_num (num "misses" c))
        (fmt_num (num "evictions" c))
    | None -> ()

let stats_cmd =
  let layout_opt_arg =
    let doc =
      "Layout file or benchmark circuit name. Omit when querying a live \
       server with --socket/--port."
    in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"LAYOUT" ~doc)
  in
  let run socket host port source k min_s =
    if socket <> None || port <> None then begin
      (* Live-server mode: fetch STATS and render it, percentiles
         included, so p50/p90/p99 request latency is one command away
         after load. *)
      let conn = connect_or_die ~socket ~host ~port in
      Fun.protect
        ~finally:(fun () -> Mpl_server.Client.close conn)
        (fun () ->
          match Mpl_server.Client.stats conn with
          | Ok json -> print_server_stats json
          | Error e ->
            Printf.eprintf "error: %s\n"
              (Mpl_server.Client.error_to_string e);
            exit 1)
    end
    else begin
    let source =
      match source with
      | Some s -> s
      | None ->
        Printf.eprintf
          "error: LAYOUT required (or --socket/--port for a live server)\n";
        exit 2
    in
    let layout = load_layout source in
    let min_s = resolve_min_s ~k ~min_s in
    let g = Mpl.Decomp_graph.of_layout layout ~min_s in
    let ug = Mpl.Decomp_graph.union_graph g in
    let comps = Mpl_graph.Connectivity.components ug in
    let sizes = Array.map Array.length comps in
    Array.sort compare sizes;
    let largest = if Array.length sizes = 0 then 0 else sizes.(Array.length sizes - 1) in
    Format.printf "%a@." Mpl_layout.Layout.pp_summary layout;
    Format.printf "graph: %a (min_s=%d)@." Mpl.Decomp_graph.pp g min_s;
    Format.printf "components: %d (largest %d)@." (Array.length comps) largest;
    (* Division-stage counts come from a metrics-enabled dry run of the
       full division pipeline under the cheap linear solver; the cache
       is on so its memory footprint can be reported too. *)
    let params =
      { Mpl.Decomposer.default_params with k; metrics = true; cache = true }
    in
    let r = Mpl.Decomposer.assign ~params Mpl.Decomposer.Linear g in
    (match r.Mpl.Decomposer.metrics with
    | None -> ()
    | Some snap ->
      let c name =
        Option.value ~default:0 (Mpl_obs.Metrics.find_counter snap name)
      in
      Format.printf
        "division: pieces=%d peeled=%d bicon_splits=%d gh_cuts=%d \
         maxflow_calls=%d bounded_exits=%d@."
        (c "division.pieces") (c "division.peeled")
        (c "division.bicon_splits") (c "division.gh_cuts")
        (c "division.maxflow_calls")
        (c "division.bounded_exits"));
    match r.Mpl.Decomposer.cache with
    | None -> ()
    | Some cs ->
      Format.printf
        "cache: entries=%d bytes=%d hits=%d misses=%d evictions=%d@."
        cs.Mpl_engine.Cache.entries cs.Mpl_engine.Cache.resident_bytes
        cs.Mpl_engine.Cache.s_hits cs.Mpl_engine.Cache.s_misses
        cs.Mpl_engine.Cache.s_evictions
    end
  in
  let term =
    Term.(
      const run $ socket_arg $ host_arg $ port_arg $ layout_opt_arg $ k_arg
      $ min_s_arg)
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Print decomposition-graph and division-pipeline statistics, or \
          query a live server's counters and latency percentiles with \
          --socket/--port")
    term

let trace_check_cmd =
  let file_arg =
    let doc = "Chrome trace JSON file (as written by decompose --trace)." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"TRACE" ~doc)
  in
  let require_arg =
    let doc = "Fail unless a span named $(docv) is present (repeatable)." in
    Arg.(value & opt_all string [] & info [ "require" ] ~docv:"NAME" ~doc)
  in
  let run file required =
    let ic = open_in_bin file in
    let s =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    match Mpl_obs.Export.validate_chrome ~required s with
    | Ok spans -> Format.printf "%s: valid, %d spans@." file spans
    | Error e ->
      Format.eprintf "%s: invalid trace: %s@." file e;
      exit 1
  in
  let term = Term.(const run $ file_arg $ require_arg) in
  Cmd.v
    (Cmd.info "trace-check"
       ~doc:"Validate a Chrome trace emitted by decompose --trace")
    term

let prom_check_cmd =
  let file_arg =
    let doc = "Prometheus text-exposition file (as served by /metrics)." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc)
  in
  let run file =
    let ic = open_in_bin file in
    let s =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    match Mpl_obs.Export.validate_prometheus s with
    | Ok samples -> Format.printf "%s: valid, %d samples@." file samples
    | Error e ->
      Format.eprintf "%s: invalid exposition: %s@." file e;
      exit 1
  in
  let term = Term.(const run $ file_arg) in
  Cmd.v
    (Cmd.info "prom-check"
       ~doc:"Validate a Prometheus text exposition fetched from /metrics")
    term

let conflicts_cmd =
  let run source k min_s budget =
    let layout = load_layout source in
    let min_s = resolve_min_s ~k ~min_s in
    let params =
      { Mpl.Decomposer.default_params with k; solver_budget_s = budget }
    in
    let g, report =
      Mpl.Decomposer.decompose ~params ~min_s Mpl.Decomposer.Exact layout
    in
    Format.printf "%a@." Mpl.Decomposer.pp_report report;
    let colors = report.Mpl.Decomposer.colors in
    List.iter
      (fun (u, v) ->
        if colors.(u) = colors.(v) then begin
          let fu = g.Mpl.Decomp_graph.feature.(u)
          and fv = g.Mpl.Decomp_graph.feature.(v) in
          let center f =
            Mpl_geometry.Rect.center
              (Mpl_geometry.Polygon.bbox layout.Mpl_layout.Layout.features.(f))
          in
          let xu, yu = center fu and xv, yv = center fv in
          Format.printf
            "conflict: features %d (%.0f,%.0f) and %d (%.0f,%.0f), color %d@."
            fu xu yu fv xv yv colors.(u)
        end)
      (Mpl.Decomp_graph.conflict_edges g)
  in
  let term = Term.(const run $ circuit_arg $ k_arg $ min_s_arg $ budget_arg) in
  Cmd.v
    (Cmd.info "conflicts"
       ~doc:"Locate the unresolved conflicts of an exact decomposition")
    term

let svg_cmd =
  let out_arg =
    let doc = "Output SVG file." in
    Arg.(required & pos 1 (some string) None & info [] ~docv:"OUT" ~doc)
  in
  let run source out k min_s algo budget =
    let layout = load_layout source in
    let min_s = resolve_min_s ~k ~min_s in
    let params =
      { Mpl.Decomposer.default_params with k; solver_budget_s = budget }
    in
    let g, report = Mpl.Decomposer.decompose ~params ~min_s algo layout in
    Mpl.Render.save ~min_s layout g report.Mpl.Decomposer.colors out;
    Format.printf "%a@." Mpl.Decomposer.pp_report report;
    Format.printf "wrote %s@." out
  in
  let term =
    Term.(const run $ circuit_arg $ out_arg $ k_arg $ min_s_arg $ algo_arg $ budget_arg)
  in
  Cmd.v (Cmd.info "svg" ~doc:"Decompose a layout and render the masks to SVG") term

let report_cmd =
  let run source k min_s budget jobs no_cache cache_permuted cache_warm =
    let layout = load_layout source in
    let min_s = resolve_min_s ~k ~min_s in
    let g = Mpl.Decomp_graph.of_layout layout ~min_s in
    let lb = Mpl.Lower_bound.conflict_lower_bound ~k g in
    Format.printf "%a@." Mpl_layout.Layout.pp_summary layout;
    Format.printf "graph: %a (min_s=%d, k=%d)@." Mpl.Decomp_graph.pp g min_s k;
    Format.printf "clique lower bound on conflicts: %d@." lb;
    List.iter
      (fun algo ->
        let params =
          engine_params ~jobs ~no_cache ~cache_permuted ~cache_warm
            { Mpl.Decomposer.default_params with k; solver_budget_s = budget }
        in
        let r = Mpl.Decomposer.assign ~params algo g in
        let balanced =
          Mpl.Balance.rebalance ~k ~alpha:0.1 g r.Mpl.Decomposer.colors
        in
        Format.printf "%a | gap vs LB: %d | imbalance %.3f -> %.3f@."
          Mpl.Decomposer.pp_report r
          (r.Mpl.Decomposer.cost.Mpl.Coloring.conflicts - lb)
          (Mpl.Balance.imbalance ~k r.Mpl.Decomposer.colors)
          (Mpl.Balance.imbalance ~k balanced))
      [
        Mpl.Decomposer.Sdp_backtrack;
        Mpl.Decomposer.Sdp_greedy;
        Mpl.Decomposer.Linear;
      ]
  in
  let term =
    Term.(
      const run $ circuit_arg $ k_arg $ min_s_arg $ budget_arg $ jobs_arg
      $ no_cache_arg $ cache_permuted_arg $ cache_warm_arg)
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Compare the heuristic algorithms on one layout, with certified \
          lower bounds and mask-density balance")
    term

let density_cmd =
  let window_arg =
    let doc = "Density window side in nm." in
    Arg.(value & opt int 2000 & info [ "window" ] ~docv:"NM" ~doc)
  in
  let run source k min_s algo budget window =
    let layout = load_layout source in
    let min_s = resolve_min_s ~k ~min_s in
    let params =
      { Mpl.Decomposer.default_params with k; solver_budget_s = budget }
    in
    let g, report = Mpl.Decomposer.decompose ~params ~min_s algo layout in
    Format.printf "%a@." Mpl.Decomposer.pp_report report;
    let d =
      Mpl.Density.compute ~min_s ~window ~k layout g
        report.Mpl.Decomposer.colors
    in
    Format.printf "%a@." Mpl.Density.pp_summary d
  in
  let term =
    Term.(
      const run $ circuit_arg $ k_arg $ min_s_arg $ algo_arg $ budget_arg
      $ window_arg)
  in
  Cmd.v
    (Cmd.info "density" ~doc:"Per-mask pattern-density map of a decomposition")
    term

(* ---- serving ---- *)

let serve_cmd =
  let max_inflight_arg =
    let doc =
      "Maximum concurrently decomposing requests; excess requests get an \
       immediate BUSY reply."
    in
    Arg.(value & opt int 4 & info [ "max-inflight" ] ~docv:"N" ~doc)
  in
  let cache_budget_arg =
    let doc =
      "Byte budget of the shared piece cache (least-recently-used entries \
       are evicted beyond it). Unlimited when omitted."
    in
    Arg.(value & opt (some int) None & info [ "cache-budget" ] ~docv:"BYTES" ~doc)
  in
  let persist_arg =
    let doc =
      "Persist the shared cache to $(docv): loaded on boot, saved on \
       graceful shutdown (and periodically, see --persist-every)."
    in
    Arg.(value & opt (some string) None & info [ "persist" ] ~docv:"FILE" ~doc)
  in
  let persist_every_arg =
    let doc = "Also save the cache every N served requests (0 = off)." in
    Arg.(value & opt int 0 & info [ "persist-every" ] ~docv:"N" ~doc)
  in
  let ring_arg =
    let doc =
      "Keep the last $(docv) request summaries (with per-request traces) \
       for the /requests and /trace admin endpoints. 0 disables \
       per-request telemetry entirely — the served path then reads no \
       clocks beyond the aggregate counters."
    in
    Arg.(value & opt int 32 & info [ "ring" ] ~docv:"N" ~doc)
  in
  let log_arg =
    let doc = "Append one JSON line per finished request to $(docv)." in
    Arg.(value & opt (some string) None & info [ "log" ] ~docv:"FILE" ~doc)
  in
  let log_max_bytes_arg =
    let doc =
      "Rotate the access log (rename to FILE.1) when it would exceed \
       $(docv) bytes."
    in
    Arg.(
      value
      & opt int (8 * 1024 * 1024)
      & info [ "log-max-bytes" ] ~docv:"BYTES" ~doc)
  in
  let read_timeout_arg =
    let doc =
      "Reap a connection whose partially sent command line or request \
       body stalls longer than $(docv) milliseconds (slowloris \
       protection). 0 disables the read deadline."
    in
    Arg.(value & opt int 10_000 & info [ "read-timeout-ms" ] ~docv:"MS" ~doc)
  in
  let write_timeout_arg =
    let doc =
      "Reap a connection whose client stops draining its socket for \
       $(docv) milliseconds mid-reply; the request's queued pieces are \
       cancelled. 0 disables the write deadline."
    in
    Arg.(value & opt int 10_000 & info [ "write-timeout-ms" ] ~docv:"MS" ~doc)
  in
  let grace_arg =
    let doc =
      "Extra milliseconds past a request's deadline=MS before the hard \
       cancel: the soft deadline degrades the solve via the fallback \
       ladder; only if the degraded pipeline still cannot finish within \
       the grace is the request cancelled with a TIMEOUT reply."
    in
    Arg.(value & opt int 1000 & info [ "grace-ms" ] ~docv:"MS" ~doc)
  in
  let max_body_arg =
    let doc =
      "Refuse DECOMPOSE bodies larger than $(docv) bytes (ERR proto, \
       before any allocation)."
    in
    Arg.(
      value
      & opt int (64 * 1024 * 1024)
      & info [ "max-body-bytes" ] ~docv:"BYTES" ~doc)
  in
  let sessions_arg =
    let doc =
      "Keep ECO sessions for the last $(docv) distinct decomposed layouts \
       (keyed by layout hash), enabling REDECOMPOSE requests that re-solve \
       only the edited region. 0 disables incremental serving."
    in
    Arg.(value & opt int 8 & info [ "sessions" ] ~docv:"N" ~doc)
  in
  let run socket port host jobs max_inflight cache_budget cache_permuted
      persist persist_every ring access_log log_max_bytes read_timeout_ms
      write_timeout_ms grace_ms max_body_bytes inject sessions =
    if socket = None && port = None then begin
      Printf.eprintf "error: serve needs --socket PATH and/or --port PORT\n";
      exit 2
    end;
    let log msg = Printf.eprintf "mpld-serve: %s\n%!" msg in
    let config =
      {
        Mpl_server.Server.unix_socket = socket;
        tcp_port = port;
        tcp_host = host;
        jobs;
        max_inflight;
        cache_budget;
        cache_permuted;
        persist;
        persist_every;
        ring;
        access_log;
        log_max_bytes;
        log = Some log;
        read_timeout_s = float_of_int read_timeout_ms /. 1000.;
        write_timeout_s = float_of_int write_timeout_ms /. 1000.;
        grace_ms;
        max_body_bytes;
        fault = inject;
        sessions;
      }
    in
    let srv = Mpl_server.Server.create config in
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
    let stop _ = Mpl_server.Server.request_stop srv in
    Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
    Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
    Mpl_server.Server.run srv
  in
  let term =
    Term.(
      const run $ socket_arg $ port_arg $ host_arg $ jobs_arg
      $ max_inflight_arg $ cache_budget_arg $ cache_permuted_arg
      $ persist_arg $ persist_every_arg $ ring_arg $ log_arg
      $ log_max_bytes_arg $ read_timeout_arg $ write_timeout_arg
      $ grace_arg $ max_body_arg $ inject_arg $ sessions_arg)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the decomposition server: concurrent requests on a shared \
          solver pool and a persistent shared piece cache")
    term

let client_cmd =
  let layout_arg =
    let doc =
      "Layout file, or a benchmark circuit name generated on the fly. \
       Omit for admin requests (--stats, --metrics, --ping, --quit)."
    in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"LAYOUT" ~doc)
  in
  let priority_cl_arg =
    let doc =
      "Request priority: pieces of a higher-priority request are solved \
       before any lower-priority request's on the shared pool."
    in
    Arg.(value & opt int 0 & info [ "priority" ] ~docv:"P" ~doc)
  in
  let stats_flag =
    Arg.(value & flag & info [ "stats" ] ~doc:"Print the server STATS JSON.")
  in
  let metrics_flag =
    Arg.(
      value & flag & info [ "metrics" ] ~doc:"Print the server METRICS JSON.")
  in
  let ping_flag =
    Arg.(value & flag & info [ "ping" ] ~doc:"Check server liveness.")
  in
  let quit_flag =
    Arg.(
      value & flag
      & info [ "quit" ] ~doc:"Ask the server to shut down gracefully.")
  in
  let http_arg =
    let doc =
      "Fetch $(docv) from the server's HTTP admin plane (e.g. /metrics, \
       /healthz, /requests, /trace?id=N) and print the body. Exits \
       nonzero unless the status is 2xx."
    in
    Arg.(value & opt (some string) None & info [ "http" ] ~docv:"PATH" ~doc)
  in
  let deadline_arg =
    let doc =
      "Server-side deadline in milliseconds: past it the solve degrades \
       to its cheapest rung, and past it plus the server's grace the \
       request is cancelled with a TIMEOUT reply (exit code 4)."
    in
    Arg.(value & opt (some int) None & info [ "deadline-ms" ] ~docv:"MS" ~doc)
  in
  let retries_arg =
    let doc =
      "Retry a BUSY reply, a dropped/torn connection, or a transient \
       connect failure up to $(docv) times with capped exponential \
       backoff. TIMEOUT/CANCELLED and server ERR replies are never \
       retried."
    in
    Arg.(value & opt int 0 & info [ "retries" ] ~docv:"N" ~doc)
  in
  let edits_arg =
    let doc =
      "Send a REDECOMPOSE instead of a DECOMPOSE: $(docv) is an ECO \
       edit-script file applied against the server's session for LAYOUT \
       (which must have been decomposed on this server first). Only the \
       re-solved pieces are streamed back."
    in
    Arg.(value & opt (some string) None & info [ "edits" ] ~docv:"FILE" ~doc)
  in
  let backoff_arg =
    let doc =
      "Base backoff in milliseconds for --retries: sleep base*2^i with \
       deterministic +/-25% jitter, capped at 2000 ms."
    in
    Arg.(value & opt int 100 & info [ "backoff-ms" ] ~docv:"MS" ~doc)
  in
  let run socket host port layout k min_s algo priority no_cache permuted
      inject deadline_ms retries backoff_ms colors_out windows window_nm
      do_stats do_metrics do_ping do_quit http_path edits_path =
    let fail e =
      Printf.eprintf "error: %s\n" (Mpl_server.Client.error_to_string e);
      exit
        (match e with
        | Mpl_server.Client.Busy _ -> 3
        | Mpl_server.Client.Timed_out _ | Mpl_server.Client.Cancelled _ -> 4
        | Mpl_server.Client.Remote _ | Mpl_server.Client.Protocol _ -> 1)
    in
    let with_conn f =
      let conn = connect_or_die ~socket ~host ~port in
      Fun.protect
        ~finally:(fun () -> Mpl_server.Client.close conn)
        (fun () -> f conn)
    in
    match http_path with
    | Some path ->
      with_conn (fun conn ->
          match Mpl_server.Client.http conn path with
          | Error e -> fail e
          | Ok (status, body) ->
            print_string body;
            if String.length body > 0 && body.[String.length body - 1] <> '\n'
            then print_newline ();
            if status < 200 || status > 299 then begin
              Printf.eprintf "error: HTTP %d\n" status;
              exit 1
            end)
    | None -> (
      if do_quit then with_conn Mpl_server.Client.quit
      else if do_stats || do_metrics then
        with_conn (fun conn ->
            (if do_stats then
               match Mpl_server.Client.stats conn with
               | Ok json -> print_endline json
               | Error e -> fail e);
            if do_metrics then
              match Mpl_server.Client.metrics conn with
              | Ok json -> print_endline json
              | Error e -> fail e)
      else if do_ping then
        with_conn (fun conn ->
            if Mpl_server.Client.ping conn then print_endline "PONG"
            else begin
              Printf.eprintf "error: no PONG\n";
              exit 1
            end)
      else
        match layout with
        | None ->
          Printf.eprintf
            "error: LAYOUT required unless an admin flag is given\n";
          exit 2
        | Some source ->
          (* With --edits the positional LAYOUT names the *base* layout:
             its canonical hash keys the server-side session, and the
             request body is the edit script. *)
          let submit, body =
            match edits_path with
            | Some edits_file ->
              let hash = Mpl.Eco.hash_layout (load_layout source) in
              let body =
                try
                  let ic = open_in_bin edits_file in
                  Fun.protect
                    ~finally:(fun () -> close_in_noerr ic)
                    (fun () -> really_input_string ic (in_channel_length ic))
                with Sys_error msg ->
                  Printf.eprintf "error: %s\n" msg;
                  exit 2
              in
              ( (fun conn request body ->
                  Mpl_server.Client.redecompose conn ~request ~hash body),
                body )
            | None ->
              let body =
                if Sys.file_exists source then begin
                  let ic = open_in_bin source in
                  Fun.protect
                    ~finally:(fun () -> close_in_noerr ic)
                    (fun () -> really_input_string ic (in_channel_length ic))
                end
                else
                  match Mpl_layout.Benchgen.circuit source with
                  | layout -> Mpl_layout.Layout_io.to_string layout
                  | exception Not_found ->
                    Printf.eprintf
                      "error: %s is neither a file nor a known benchmark \
                       circuit\n"
                      source;
                    exit 2
              in
              ( (fun conn request body ->
                  Mpl_server.Client.decompose conn ~request body),
                body )
          in
          let request =
            {
              Mpl_server.Proto.default_request with
              k;
              algo;
              min_s;
              priority;
              cache = not no_cache;
              permuted;
              inject;
              deadline_ms;
              windows;
              window_nm;
            }
          in
          (* Retry loop: each attempt opens a fresh connection (a BUSY
             or torn reply leaves the old one unusable). Retryable
             failures and transient connect errors draw sleeps from one
             shared deterministic backoff schedule; a TIMEOUT/CANCELLED
             or ERR reply fails immediately — an identical retry would
             meet the same fate. *)
          let rec go sleeps =
            match try_connect ~socket ~host ~port with
            | Error e -> (
              match sleeps with
              | s :: rest when Mpl_server.Client.transient_connect_error e ->
                Printf.eprintf "retry: %s (backing off %.0f ms)\n%!"
                  (connect_error_line ~socket ~host ~port e)
                  (s *. 1000.);
                Unix.sleepf s;
                go rest
              | _ ->
                Printf.eprintf "error: %s\n"
                  (connect_error_line ~socket ~host ~port e);
                exit 5)
            | Ok conn -> (
              let r =
                Fun.protect
                  ~finally:(fun () -> Mpl_server.Client.close conn)
                  (fun () -> submit conn request body)
              in
              match r with
              | Ok o -> o
              | Error e -> (
                match sleeps with
                | s :: rest when Mpl_server.Client.retryable e ->
                  Printf.eprintf "retry: %s (backing off %.0f ms)\n%!"
                    (Mpl_server.Client.error_to_string e)
                    (s *. 1000.);
                  Unix.sleepf s;
                  go rest
                | _ -> fail e))
          in
          let o =
            go
              (Mpl_server.Client.backoff_schedule ~base_ms:backoff_ms ~retries
                 ())
          in
          (match o.Mpl_server.Client.rid with
          | Some rid -> Printf.printf "rid: %d\n" rid
          | None -> ());
              let c = o.Mpl_server.Client.cost in
              Printf.printf
                "cost: conflicts=%d stitches=%d scaled=%d elapsed=%.3f \
                 timed_out=%b\n"
                c.Mpl_server.Proto.conflicts c.Mpl_server.Proto.stitches
                c.Mpl_server.Proto.scaled c.Mpl_server.Proto.elapsed_s
                c.Mpl_server.Proto.timed_out;
              (match o.Mpl_server.Client.engine with
              | Some e ->
                Printf.printf
                  "engine: pieces=%d solved=%d hits=%d reused=%d failed=%d \
                   rejected=%d\n"
                  e.Mpl_engine.Engine.pieces e.Mpl_engine.Engine.solved
                  e.Mpl_engine.Engine.hits e.Mpl_engine.Engine.reused
                  e.Mpl_engine.Engine.failed e.Mpl_engine.Engine.rejected
              | None -> ());
              let r = o.Mpl_server.Client.resilience in
              Printf.printf
                "resilience: degraded=%d piece_failures=%d fallbacks=%d \
                 fired=%b\n"
                r.Mpl_server.Proto.degraded r.Mpl_server.Proto.piece_failures
                r.Mpl_server.Proto.fallbacks r.Mpl_server.Proto.fired;
              (match o.Mpl_server.Client.cache with
              | Some cs ->
                Printf.printf "cache: entries=%d bytes=%d evictions=%d\n"
                  cs.Mpl_server.Proto.entries cs.Mpl_server.Proto.bytes
                  cs.Mpl_server.Proto.evictions
              | None -> ());
              (match o.Mpl_server.Client.reused with
              | Some (reused, dirty, features) ->
                Printf.printf "eco: reused=%d dirty=%d features=%d\n" reused
                  dirty features
              | None -> ());
              Printf.printf "stream: pieces=%d cells=%d consistent=%b\n"
                o.Mpl_server.Client.streamed_pieces
                o.Mpl_server.Client.streamed_cells
                o.Mpl_server.Client.streams_consistent;
              (match colors_out with
              | Some path ->
                write_colors path o.Mpl_server.Client.colors;
                Printf.eprintf "colors: wrote %d entries to %s\n"
                  (Array.length o.Mpl_server.Client.colors)
                  path
              | None -> ());
          if not o.Mpl_server.Client.streams_consistent then exit 1)
  in
  let term =
    Term.(
      const run $ socket_arg $ host_arg $ port_arg $ layout_arg $ k_arg
      $ min_s_arg $ algo_arg $ priority_cl_arg $ no_cache_arg
      $ cache_permuted_arg $ inject_arg $ deadline_arg $ retries_arg
      $ backoff_arg $ colors_arg $ windows_arg $ window_size_arg
      $ stats_flag $ metrics_flag $ ping_flag $ quit_flag $ http_arg
      $ edits_arg)
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Submit a layout to a running mpld server (or query its admin \
          endpoints)")
    term

let () =
  (* Writing to a server that reaped our connection must surface as
     EPIPE (handled) in every subcommand, never kill the process. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let doc = "multiple-patterning (K>=4) layout decomposition" in
  let info = Cmd.info "mpld" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            decompose_cmd;
            redecompose_cmd;
            gen_cmd;
            stats_cmd;
            trace_check_cmd;
            prom_check_cmd;
            conflicts_cmd;
            svg_cmd;
            report_cmd;
            density_cmd;
            serve_cmd;
            client_cmd;
          ]))
