(* mpld — multiple-patterning layout decomposer CLI.

   Subcommands:
     gen         generate a synthetic benchmark layout file
     decompose   decompose a layout file (or named benchmark) and report
     stats       print decomposition-graph and division statistics
     trace-check validate a Chrome trace emitted by --trace *)

open Cmdliner

let algorithm_conv =
  let parse = function
    | "ilp" -> Ok Mpl.Decomposer.Ilp
    | "exact" -> Ok Mpl.Decomposer.Exact
    | "sdp-backtrack" | "sdp" -> Ok Mpl.Decomposer.Sdp_backtrack
    | "sdp-greedy" -> Ok Mpl.Decomposer.Sdp_greedy
    | "linear" -> Ok Mpl.Decomposer.Linear
    | s -> Error (`Msg (Printf.sprintf "unknown algorithm %S" s))
  in
  let print ppf a =
    Format.pp_print_string ppf
      (match a with
      | Mpl.Decomposer.Ilp -> "ilp"
      | Mpl.Decomposer.Exact -> "exact"
      | Mpl.Decomposer.Sdp_backtrack -> "sdp-backtrack"
      | Mpl.Decomposer.Sdp_greedy -> "sdp-greedy"
      | Mpl.Decomposer.Linear -> "linear")
  in
  Arg.conv (parse, print)

let load_layout source =
  if Sys.file_exists source then begin
    (* Bad input is a user error: report file:line and exit 2, never a
       backtrace. *)
    try Mpl_layout.Layout_io.load source with
    | Mpl_layout.Layout_io.Parse_error { line; msg } ->
      Printf.eprintf "error: %s:%d: %s\n" source line msg;
      exit 2
    | Sys_error msg ->
      Printf.eprintf "error: %s\n" msg;
      exit 2
  end
  else
    try Mpl_layout.Benchgen.circuit source
    with Not_found ->
      Printf.eprintf
        "error: %s is neither a file nor a known benchmark circuit\n" source;
      exit 2

let circuit_arg =
  let doc =
    "Layout file, or a benchmark circuit name (C432 .. S15850) generated \
     on the fly."
  in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"LAYOUT" ~doc)

let k_arg =
  let doc = "Number of masks (colors); 4 = quadruple patterning." in
  Arg.(value & opt int 4 & info [ "k" ] ~docv:"K" ~doc)

let min_s_arg =
  let doc =
    "Minimum coloring distance in nm. Default: the paper's setting for \
     the chosen K (80 for K=4, 110 for K=5)."
  in
  Arg.(value & opt (some int) None & info [ "min-s" ] ~docv:"NM" ~doc)

let algo_arg =
  let doc = "Color assignment algorithm: ilp, exact, sdp-backtrack, sdp-greedy, linear." in
  Arg.(
    value
    & opt algorithm_conv Mpl.Decomposer.Linear
    & info [ "a"; "algorithm" ] ~docv:"ALGO" ~doc)

let budget_arg =
  let doc = "Wall-clock budget in seconds for exact algorithms." in
  Arg.(value & opt float 60. & info [ "budget" ] ~docv:"S" ~doc)

let jobs_arg =
  let doc =
    "Number of concurrent piece solvers (domains). 1 = sequential."
  in
  Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let no_cache_arg =
  let doc =
    "Disable the canonical-signature cache that deduplicates repeated \
     components."
  in
  Arg.(value & flag & info [ "no-cache" ] ~doc)

let cache_permuted_arg =
  let doc =
    "Let the cache reuse colorings across relabeled isomorphic components \
     too (higher hit rate; colorings may differ from an uncached run, \
     costs of reused components are preserved)."
  in
  Arg.(value & flag & info [ "cache-permuted" ] ~doc)

let cache_warm_arg =
  let doc =
    "Warm-start the SDP solver of each piece from the cached coloring of \
     a previously solved piece with the same canonical signature. Never \
     skips a solve; warm-started solves may converge early, so colorings \
     can differ (equally valid) from a cold run."
  in
  Arg.(value & flag & info [ "cache-warm" ] ~doc)

let engine_params base ~jobs ~no_cache ~cache_permuted ~cache_warm =
  {
    base with
    Mpl.Decomposer.jobs;
    cache = not no_cache;
    cache_permuted;
    cache_warm;
  }

let fault_conv =
  let parse s =
    match Mpl_engine.Fault.parse s with
    | Ok spec -> Ok spec
    | Error msg -> Error (`Msg msg)
  in
  let print ppf sp =
    Format.pp_print_string ppf (Mpl_engine.Fault.spec_to_string sp)
  in
  Arg.conv (parse, print)

let inject_arg =
  let doc =
    "Inject one deterministic fault: \
     $(docv) = SITE[:seed=N][:shots=N] with SITE one of solver_raise, \
     worker_delay, cache_corrupt, budget_trip. The run must still \
     produce a legal coloring; degradations are reported."
  in
  Arg.(
    value
    & opt (some fault_conv) None
    & info [ "inject" ] ~docv:"FAULT" ~doc)

let trace_arg =
  let doc =
    "Write a Chrome trace_event JSON profile of the run to $(docv) \
     (open in chrome://tracing or ui.perfetto.dev)."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let metrics_arg =
  let doc = "Collect run metrics and print the registry to stderr." in
  Arg.(value & flag & info [ "metrics" ] ~doc)

let verbose_arg =
  let doc = "Print per-phase timing summaries to stderr." in
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc)

let refine_arg =
  let doc = "Run a local-search refinement pass after division." in
  Arg.(value & flag & info [ "refine" ] ~doc)

let balance_arg =
  let doc = "Rebalance mask densities (cost-free) after assignment." in
  Arg.(value & flag & info [ "balance" ] ~doc)

let resolve_min_s ~k ~min_s =
  match min_s with
  | Some m -> m
  | None ->
    let tech = Mpl_layout.Layout.default_tech in
    if k >= 5 then Mpl_layout.Layout.pentuple_min_s tech
    else Mpl_layout.Layout.quadruple_min_s tech

let decompose_cmd =
  let run source k min_s algo budget refine balance jobs no_cache
      cache_permuted cache_warm inject trace metrics verbose =
    let layout = load_layout source in
    let min_s = resolve_min_s ~k ~min_s in
    (* -v needs span data even without a trace file. *)
    let sink =
      if trace <> None || verbose then Some (Mpl_obs.Sink.create ()) else None
    in
    let params =
      engine_params ~jobs ~no_cache ~cache_permuted ~cache_warm
        {
          Mpl.Decomposer.default_params with
          k;
          solver_budget_s = budget;
          post =
            (if refine then Mpl.Decomposer.Local_search
             else Mpl.Decomposer.No_post);
          balance;
          trace = sink;
          metrics;
          fault = inject;
        }
    in
    let g, report = Mpl.Decomposer.decompose ~params ~min_s algo layout in
    Format.printf "%a@." Mpl_layout.Layout.pp_summary layout;
    Format.printf "graph: %a (min_s=%d, k=%d)@." Mpl.Decomp_graph.pp g min_s k;
    Format.printf "%a@." Mpl.Decomposer.pp_report report;
    let res = report.Mpl.Decomposer.resilience in
    if inject <> None || res.Mpl.Decomposer.degraded > 0 then
      Format.printf
        "resilience: degraded=%d piece_failures=%d fallbacks=%d fired=%b@."
        res.Mpl.Decomposer.degraded res.Mpl.Decomposer.piece_failures
        res.Mpl.Decomposer.fallback_attempts res.Mpl.Decomposer.fault_fired;
    if balance then
      Format.printf "mask usage: %s@."
        (String.concat " "
           (Array.to_list
              (Array.map string_of_int
                 (Mpl.Balance.usage ~k report.Mpl.Decomposer.colors))));
    (match sink with
    | None -> ()
    | Some sink ->
      let events = Mpl_obs.Sink.events sink in
      if verbose then
        Format.eprintf "-- phases --@.%a" Mpl_obs.Export.pp_phases events;
      match trace with
      | None -> ()
      | Some file ->
        Mpl_obs.Export.write_chrome ~process_name:("mpld " ^ source) file
          events;
        Format.eprintf "trace: wrote %d spans to %s@." (List.length events)
          file);
    match report.Mpl.Decomposer.metrics with
    | Some snap when metrics ->
      Format.eprintf "-- metrics --@.%a" Mpl_obs.Export.pp_metrics snap
    | Some _ | None -> ()
  in
  let term =
    Term.(
      const run $ circuit_arg $ k_arg $ min_s_arg $ algo_arg $ budget_arg
      $ refine_arg $ balance_arg $ jobs_arg $ no_cache_arg
      $ cache_permuted_arg $ cache_warm_arg $ inject_arg $ trace_arg
      $ metrics_arg $ verbose_arg)
  in
  Cmd.v (Cmd.info "decompose" ~doc:"Decompose a layout and report cost") term

let gen_cmd =
  let out_arg =
    let doc = "Output layout file." in
    Arg.(required & pos 1 (some string) None & info [] ~docv:"OUT" ~doc)
  in
  let run name out =
    match Mpl_layout.Benchgen.spec_of_circuit name with
    | spec ->
      let layout = Mpl_layout.Benchgen.generate spec in
      Mpl_layout.Layout_io.save layout out;
      Format.printf "wrote %a to %s@." Mpl_layout.Layout.pp_summary layout out
    | exception Not_found ->
      Printf.eprintf "error: unknown circuit %s\n" name;
      exit 2
  in
  let name_arg =
    let doc = "Benchmark circuit name (C432 .. S15850)." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"CIRCUIT" ~doc)
  in
  let term = Term.(const run $ name_arg $ out_arg) in
  Cmd.v (Cmd.info "gen" ~doc:"Generate a synthetic benchmark layout") term

let stats_cmd =
  let run source k min_s =
    let layout = load_layout source in
    let min_s = resolve_min_s ~k ~min_s in
    let g = Mpl.Decomp_graph.of_layout layout ~min_s in
    let ug = Mpl.Decomp_graph.union_graph g in
    let comps = Mpl_graph.Connectivity.components ug in
    let sizes = Array.map Array.length comps in
    Array.sort compare sizes;
    let largest = if Array.length sizes = 0 then 0 else sizes.(Array.length sizes - 1) in
    Format.printf "%a@." Mpl_layout.Layout.pp_summary layout;
    Format.printf "graph: %a (min_s=%d)@." Mpl.Decomp_graph.pp g min_s;
    Format.printf "components: %d (largest %d)@." (Array.length comps) largest;
    (* Division-stage counts come from a metrics-enabled dry run of the
       full division pipeline under the cheap linear solver. *)
    let params = { Mpl.Decomposer.default_params with k; metrics = true } in
    let r = Mpl.Decomposer.assign ~params Mpl.Decomposer.Linear g in
    match r.Mpl.Decomposer.metrics with
    | None -> ()
    | Some snap ->
      let c name =
        Option.value ~default:0 (Mpl_obs.Metrics.find_counter snap name)
      in
      Format.printf
        "division: pieces=%d peeled=%d bicon_splits=%d gh_cuts=%d \
         maxflow_calls=%d bounded_exits=%d@."
        (c "division.pieces") (c "division.peeled")
        (c "division.bicon_splits") (c "division.gh_cuts")
        (c "division.maxflow_calls")
        (c "division.bounded_exits")
  in
  let term = Term.(const run $ circuit_arg $ k_arg $ min_s_arg) in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Print decomposition-graph and division-pipeline statistics")
    term

let trace_check_cmd =
  let file_arg =
    let doc = "Chrome trace JSON file (as written by decompose --trace)." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"TRACE" ~doc)
  in
  let require_arg =
    let doc = "Fail unless a span named $(docv) is present (repeatable)." in
    Arg.(value & opt_all string [] & info [ "require" ] ~docv:"NAME" ~doc)
  in
  let run file required =
    let ic = open_in_bin file in
    let s =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    match Mpl_obs.Export.validate_chrome ~required s with
    | Ok spans -> Format.printf "%s: valid, %d spans@." file spans
    | Error e ->
      Format.eprintf "%s: invalid trace: %s@." file e;
      exit 1
  in
  let term = Term.(const run $ file_arg $ require_arg) in
  Cmd.v
    (Cmd.info "trace-check"
       ~doc:"Validate a Chrome trace emitted by decompose --trace")
    term

let conflicts_cmd =
  let run source k min_s budget =
    let layout = load_layout source in
    let min_s = resolve_min_s ~k ~min_s in
    let params =
      { Mpl.Decomposer.default_params with k; solver_budget_s = budget }
    in
    let g, report =
      Mpl.Decomposer.decompose ~params ~min_s Mpl.Decomposer.Exact layout
    in
    Format.printf "%a@." Mpl.Decomposer.pp_report report;
    let colors = report.Mpl.Decomposer.colors in
    List.iter
      (fun (u, v) ->
        if colors.(u) = colors.(v) then begin
          let fu = g.Mpl.Decomp_graph.feature.(u)
          and fv = g.Mpl.Decomp_graph.feature.(v) in
          let center f =
            Mpl_geometry.Rect.center
              (Mpl_geometry.Polygon.bbox layout.Mpl_layout.Layout.features.(f))
          in
          let xu, yu = center fu and xv, yv = center fv in
          Format.printf
            "conflict: features %d (%.0f,%.0f) and %d (%.0f,%.0f), color %d@."
            fu xu yu fv xv yv colors.(u)
        end)
      (Mpl.Decomp_graph.conflict_edges g)
  in
  let term = Term.(const run $ circuit_arg $ k_arg $ min_s_arg $ budget_arg) in
  Cmd.v
    (Cmd.info "conflicts"
       ~doc:"Locate the unresolved conflicts of an exact decomposition")
    term

let svg_cmd =
  let out_arg =
    let doc = "Output SVG file." in
    Arg.(required & pos 1 (some string) None & info [] ~docv:"OUT" ~doc)
  in
  let run source out k min_s algo budget =
    let layout = load_layout source in
    let min_s = resolve_min_s ~k ~min_s in
    let params =
      { Mpl.Decomposer.default_params with k; solver_budget_s = budget }
    in
    let g, report = Mpl.Decomposer.decompose ~params ~min_s algo layout in
    Mpl.Render.save ~min_s layout g report.Mpl.Decomposer.colors out;
    Format.printf "%a@." Mpl.Decomposer.pp_report report;
    Format.printf "wrote %s@." out
  in
  let term =
    Term.(const run $ circuit_arg $ out_arg $ k_arg $ min_s_arg $ algo_arg $ budget_arg)
  in
  Cmd.v (Cmd.info "svg" ~doc:"Decompose a layout and render the masks to SVG") term

let report_cmd =
  let run source k min_s budget jobs no_cache cache_permuted cache_warm =
    let layout = load_layout source in
    let min_s = resolve_min_s ~k ~min_s in
    let g = Mpl.Decomp_graph.of_layout layout ~min_s in
    let lb = Mpl.Lower_bound.conflict_lower_bound ~k g in
    Format.printf "%a@." Mpl_layout.Layout.pp_summary layout;
    Format.printf "graph: %a (min_s=%d, k=%d)@." Mpl.Decomp_graph.pp g min_s k;
    Format.printf "clique lower bound on conflicts: %d@." lb;
    List.iter
      (fun algo ->
        let params =
          engine_params ~jobs ~no_cache ~cache_permuted ~cache_warm
            { Mpl.Decomposer.default_params with k; solver_budget_s = budget }
        in
        let r = Mpl.Decomposer.assign ~params algo g in
        let balanced =
          Mpl.Balance.rebalance ~k ~alpha:0.1 g r.Mpl.Decomposer.colors
        in
        Format.printf "%a | gap vs LB: %d | imbalance %.3f -> %.3f@."
          Mpl.Decomposer.pp_report r
          (r.Mpl.Decomposer.cost.Mpl.Coloring.conflicts - lb)
          (Mpl.Balance.imbalance ~k r.Mpl.Decomposer.colors)
          (Mpl.Balance.imbalance ~k balanced))
      [
        Mpl.Decomposer.Sdp_backtrack;
        Mpl.Decomposer.Sdp_greedy;
        Mpl.Decomposer.Linear;
      ]
  in
  let term =
    Term.(
      const run $ circuit_arg $ k_arg $ min_s_arg $ budget_arg $ jobs_arg
      $ no_cache_arg $ cache_permuted_arg $ cache_warm_arg)
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Compare the heuristic algorithms on one layout, with certified \
          lower bounds and mask-density balance")
    term

let density_cmd =
  let window_arg =
    let doc = "Density window side in nm." in
    Arg.(value & opt int 2000 & info [ "window" ] ~docv:"NM" ~doc)
  in
  let run source k min_s algo budget window =
    let layout = load_layout source in
    let min_s = resolve_min_s ~k ~min_s in
    let params =
      { Mpl.Decomposer.default_params with k; solver_budget_s = budget }
    in
    let g, report = Mpl.Decomposer.decompose ~params ~min_s algo layout in
    Format.printf "%a@." Mpl.Decomposer.pp_report report;
    let d =
      Mpl.Density.compute ~min_s ~window ~k layout g
        report.Mpl.Decomposer.colors
    in
    Format.printf "%a@." Mpl.Density.pp_summary d
  in
  let term =
    Term.(
      const run $ circuit_arg $ k_arg $ min_s_arg $ algo_arg $ budget_arg
      $ window_arg)
  in
  Cmd.v
    (Cmd.info "density" ~doc:"Per-mask pattern-density map of a decomposition")
    term

let () =
  let doc = "multiple-patterning (K>=4) layout decomposition" in
  let info = Cmd.info "mpld" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            decompose_cmd;
            gen_cmd;
            stats_cmd;
            trace_check_cmd;
            conflicts_cmd;
            svg_cmd;
            report_cmd;
            density_cmd;
          ]))
