#!/bin/sh
# Tier-1 verification: full build + test suite + a parallel-path smoke run.
set -e
cd "$(dirname "$0")"

dune build @all
dune runtest

# Smoke: end-to-end decompose through the mpl_engine path (2 domains,
# cache on by default in the CLI).
dune exec bin/mpld.exe -- decompose C880 -a linear -j 2

# Smoke: kernel parity. Exits nonzero if the bounded max-flow, bounded
# Gomory–Hu tree, or flat SDP kernels ever disagree with their
# reference implementations (bit-identical grams, identical cut
# structure, identical end-to-end colorings).
dune exec bench/main.exe -- --kernels --check

# Smoke: streamed-pipeline parity on a real S-circuit. jobs is a pure
# performance knob: the streamed run (-j 2) must report the identical
# cn#/st#/pieces line as the sequential reference (-j 1, cache off).
seq_line=$(dune exec bin/mpld.exe -- decompose S15850 -a linear -j 1 --no-cache \
  | grep "cn#")
par_line=$(dune exec bin/mpld.exe -- decompose S15850 -a linear -j 2 --no-cache \
  | grep "cn#")
seq_sig=$(echo "$seq_line" | sed 's/CPU=[0-9.]*s//')
par_sig=$(echo "$par_line" | sed 's/CPU=[0-9.]*s//')
if [ "$seq_sig" != "$par_sig" ]; then
  echo "tier1: streamed run diverged from sequential reference" >&2
  echo "  -j 1: $seq_line" >&2
  echo "  -j 2: $par_line" >&2
  exit 1
fi

# Smoke: tracing + metrics emit parseable output covering the pipeline.
trace=$(mktemp /tmp/mpld-trace.XXXXXX.json)
dune exec bin/mpld.exe -- decompose C432 -a linear -j 2 \
  --trace "$trace" --metrics
dune exec bin/mpld.exe -- trace-check "$trace" \
  --require graph.build --require graph.neighbor_search \
  --require division.components --require division.peel \
  --require engine.batch --require assign
rm -f "$trace"

# Smoke: fault injection degrades gracefully. The injected solver raise
# must not escape to the CLI (exit 0) and the run must report at least
# one degraded piece in the metrics dump.
out=$(dune exec bin/mpld.exe -- decompose C432 -a linear -j 2 \
  --inject solver_raise:seed=0 --metrics 2>&1)
echo "$out" | grep -q "resilience: degraded=[1-9]" || {
  echo "tier1: fault injection did not degrade any piece" >&2
  echo "$out" >&2
  exit 1
}
echo "$out" | grep -Eq "solver\.degraded +[1-9]" || {
  echo "tier1: solver.degraded metric missing from --metrics output" >&2
  echo "$out" >&2
  exit 1
}

# Smoke: malformed layouts are rejected with a file:line diagnostic and
# exit code 2 — never a raw OCaml backtrace.
bad=$(mktemp /tmp/mpld-bad.XXXXXX)
printf 'NAME bad\nTECH 20 20 20\nFEATURE\nR 0 0 0 5\nEND\n' > "$bad"
if err=$(dune exec bin/mpld.exe -- decompose "$bad" 2>&1); then
  echo "tier1: malformed layout was accepted" >&2
  rm -f "$bad"
  exit 1
fi
rm -f "$bad"
echo "$err" | grep -q ":4:" || {
  echo "tier1: parse error lacks the offending line number" >&2
  echo "$err" >&2
  exit 1
}
case "$err" in
*"Raised at"*)
  echo "tier1: parse error leaked a backtrace" >&2
  exit 1 ;;
esac

# Smoke: the decomposition server. Boot on a temp Unix socket with a
# persisted cache; the served coloring must be byte-identical to the
# one-shot CLI's, a repeated request must be answered entirely from the
# shared cache, the admin endpoints must answer, and after a graceful
# shutdown a restarted server must answer warm from the persisted file.
MPLD=_build/default/bin/mpld.exe
sock=/tmp/mpld-smoke-$$.sock
cachef=/tmp/mpld-smoke-$$.cache
srvlog=/tmp/mpld-smoke-$$.log
ref=$(mktemp /tmp/mpld-ref.XXXXXX)
got=$(mktemp /tmp/mpld-got.XXXXXX)
srv=""
server_fail() {
  echo "tier1: $1" >&2
  [ -n "$srv" ] && kill "$srv" 2>/dev/null
  cat "$srvlog" >&2
  exit 1
}
start_server() {
  "$MPLD" serve --socket "$sock" -j 2 --persist "$cachef" "$@" 2>> "$srvlog" &
  srv=$!
  i=0
  while [ ! -S "$sock" ]; do
    i=$((i + 1))
    [ "$i" -gt 100 ] && server_fail "server did not come up"
    sleep 0.1
  done
}

"$MPLD" decompose S15850 -a linear --colors "$ref" > /dev/null 2>&1

start_server
"$MPLD" client --socket "$sock" S15850 -a linear --colors "$got" \
  > /dev/null 2>&1
cmp -s "$ref" "$got" || server_fail "served coloring diverged from one-shot"

# The identical repeat request must be answered without a single fresh
# solve — every piece served from the shared cache.
rep=$("$MPLD" client --socket "$sock" S15850 -a linear 2>/dev/null)
echo "$rep" | grep -Eq "engine: pieces=[1-9][0-9]* solved=0 hits=[1-9]" \
  || server_fail "repeat request was not fully cache-served: $rep"

"$MPLD" client --socket "$sock" --stats 2>/dev/null | grep -q '"served"' \
  || server_fail "STATS endpoint missing server counters"
"$MPLD" client --socket "$sock" --metrics 2>/dev/null | grep -q 'cache' \
  || server_fail "METRICS endpoint missing cache metrics"

# Graceful shutdown persists the cache...
"$MPLD" client --socket "$sock" --quit 2>/dev/null
wait "$srv" || server_fail "server exited nonzero on graceful shutdown"
srv=""
[ -s "$cachef" ] || server_fail "shutdown did not persist the cache"

# ...and a restarted server answers its very first request warm. The
# restart also carries the telemetry flags so the admin plane can be
# smoked against a live server: per-request rid, /metrics passing the
# exposition validator, /healthz, /requests, a per-request Chrome
# trace, and the JSONL access log.
accesslog=/tmp/mpld-smoke-$$.access.jsonl
promf=/tmp/mpld-smoke-$$.prom
tracef=/tmp/mpld-smoke-$$.trace.json
start_server --ring 16 --log "$accesslog"
warm=$("$MPLD" client --socket "$sock" S15850 -a linear --colors "$got" \
  2>/dev/null)
echo "$warm" | grep -Eq "engine: pieces=[1-9][0-9]* solved=0 hits=[1-9]" \
  || server_fail "restarted server did not reload the persisted cache: $warm"
cmp -s "$ref" "$got" || server_fail "warm-restart coloring diverged"
echo "$warm" | grep -q "^rid: " \
  || server_fail "served reply carried no request id: $warm"
rid=$(echo "$warm" | sed -n 's/^rid: //p')

"$MPLD" client --socket "$sock" --http /metrics > "$promf" 2>/dev/null \
  || server_fail "GET /metrics failed"
"$MPLD" prom-check "$promf" \
  || server_fail "/metrics failed the Prometheus exposition validator"
"$MPLD" client --socket "$sock" --http /healthz 2>/dev/null \
  | grep -q '"status": *"ok"' \
  || server_fail "/healthz did not report ok"
"$MPLD" client --socket "$sock" --http /requests 2>/dev/null \
  | grep -q "\"id\": *$rid" \
  || server_fail "/requests ring does not list rid $rid"
"$MPLD" client --socket "$sock" --http "/trace?id=$rid" > "$tracef" \
  2>/dev/null || server_fail "GET /trace?id=$rid failed"
"$MPLD" trace-check "$tracef" --require assign --require engine.batch \
  || server_fail "per-request trace failed validation"
"$MPLD" stats --socket "$sock" 2>/dev/null | grep -q "p99" \
  || server_fail "live stats missing latency percentiles"
grep -q "\"rid\":$rid" "$accesslog" \
  || server_fail "access log missing the served request"

"$MPLD" client --socket "$sock" --quit 2>/dev/null
wait "$srv" || server_fail "server exited nonzero after warm restart"
srv=""
rm -f "$sock" "$cachef" "$srvlog" "$ref" "$got" "$accesslog" "$promf" \
  "$tracef"

# Smoke: request lifecycle hardening. Client exit codes: 0 ok,
# 1 protocol/remote, 3 busy, 4 deadline, 5 connect failure.
errf=$(mktemp /tmp/mpld-err.XXXXXX)

# A dead socket is one clean error line and the connect exit code —
# never a backtrace, for --stats and --quit alike.
for flag in --stats --quit; do
  rc=0
  "$MPLD" client --socket "/tmp/mpld-gone-$$.sock" "$flag" \
    > /dev/null 2> "$errf" || rc=$?
  [ "$rc" -eq 5 ] || server_fail "dead-socket $flag exit: got $rc, want 5"
  [ "$(wc -l < "$errf")" -eq 1 ] \
    || server_fail "dead-socket $flag error is not one line"
  if grep -q "Raised at" "$errf"; then
    server_fail "dead-socket $flag error leaked a backtrace"
  fi
done

# One server, three injuries: a write stall tears down the first
# request (reaped conn, transport error to the client), a 1 ms
# deadline with zero grace times out hard, and a held slot with
# max-inflight 1 BUSYs a bounded retrier into giving up.
# Teardown bookkeeping (slot release, queue sweep) is asynchronous to
# the client's view of a failure, so health is polled, not asserted.
wait_healthz() {
  i=0
  until "$MPLD" client --socket "$sock" --http /healthz 2>/dev/null \
    | grep -q '"status": *"ok"'; do
    i=$((i + 1))
    if [ "$i" -gt 50 ]; then
      server_fail "/healthz did not settle to ok $1"
    fi
    sleep 0.2
  done
}
start_server --max-inflight 1 --grace-ms 0 --inject write_stall:shots=1

rc=0
"$MPLD" client --socket "$sock" S15850 -a linear --no-cache \
  > /dev/null 2>> "$srvlog" || rc=$?
[ "$rc" -eq 1 ] || server_fail "stalled-write client exit: got $rc, want 1"

rc=0
"$MPLD" client --socket "$sock" S15850 -a linear --no-cache \
  --deadline-ms 1 > /dev/null 2> "$errf" || rc=$?
[ "$rc" -eq 4 ] || server_fail "deadline client exit: got $rc, want 4"
grep -q "timed out" "$errf" || server_fail "deadline error lacks the cause"

wait_healthz "after the stall and the timeout"

"$MPLD" client --socket "$sock" S38584 -a sdp-backtrack --no-cache \
  > /dev/null 2>> "$srvlog" &
holder=$!
sleep 0.5
rc=0
"$MPLD" client --socket "$sock" S15850 -a linear --no-cache \
  --retries 3 --backoff-ms 50 > /dev/null 2> "$errf" || rc=$?
[ "$rc" -eq 3 ] || server_fail "busy retrier exit: got $rc, want 3"
grep -q "^retry:" "$errf" || server_fail "retrier never logged a backoff"
# Kill the holder mid-stream: the server must cancel its queued pieces
# and free the slot for the next (patient) client.
kill "$holder" 2>/dev/null
wait "$holder" 2>/dev/null || true
rc=0
"$MPLD" client --socket "$sock" S15850 -a linear --no-cache \
  --retries 10 --backoff-ms 200 > /dev/null 2>> "$srvlog" || rc=$?
[ "$rc" -eq 0 ] || server_fail "post-recovery client exit: got $rc, want 0"

wait_healthz "after the gauntlet"
"$MPLD" client --socket "$sock" --http /metrics > "$promf" 2>/dev/null \
  || server_fail "GET /metrics failed after the gauntlet"
for m in mpl_server_cancelled mpl_server_timeouts mpl_server_reaped_conns \
  mpl_server_dropped_tasks; do
  grep -q "^$m " "$promf" \
    || server_fail "/metrics missing lifecycle counter $m"
done
grep -Eq "^mpl_server_timeouts [1-9]" "$promf" \
  || server_fail "/metrics never counted the deadline timeout"
grep -Eq "^mpl_server_reaped_conns [1-9]" "$promf" \
  || server_fail "/metrics never counted the reaped connection"

"$MPLD" client --socket "$sock" --quit 2>/dev/null
wait "$srv" || server_fail "server exited nonzero after the gauntlet"
srv=""
rm -f "$sock" "$cachef" "$errf" "$promf" "$srvlog"

# Gate: bench compare. The committed baseline compared to itself must
# pass, and a perturbed copy (one row slowed 2x) must fail.
baseline=bench/results/latest.json
perturbed=$(mktemp /tmp/mpld-perturbed.XXXXXX.json)
dune exec bench/main.exe -- compare "$baseline" "$baseline" > /dev/null \
  || { echo "tier1: bench compare rejected identical documents" >&2; exit 1; }
sed 's/"wall_s": \([0-9]*\)\./"wall_s": 9\1./' "$baseline" > "$perturbed"
if dune exec bench/main.exe -- compare "$baseline" "$perturbed" > /dev/null
then
  echo "tier1: bench compare missed a planted regression" >&2
  rm -f "$perturbed"
  exit 1
fi
rm -f "$perturbed"

# Gate: candidate-only bench rows are informational ("new: <key>"),
# never regressions — the matrix must be able to grow without breaking
# old baselines.
emptyb=$(mktemp /tmp/mpld-empty.XXXXXX.json)
printf '{"schema_version": 8, "results": [], "kernels": []}\n' > "$emptyb"
newout=$(dune exec bench/main.exe -- compare "$emptyb" "$baseline") \
  || { echo "tier1: bench compare failed a new-rows-only candidate" >&2
       exit 1; }
echo "$newout" | grep -q "^new: " \
  || { echo "tier1: bench compare did not report candidate-only rows" >&2
       exit 1; }
rm -f "$emptyb"

# Smoke: geometric window sharding. Generate a ~100k-feature synthetic
# layout and decompose it sharded under a fixed heap budget — the
# in-process Gc alarm implements the cap (exit 7 past it), since
# OCAMLRUNPARAM has no hard heap limit. A sharded 8-window run fits in
# a fraction of the whole-graph footprint.
synth=$(mktemp /tmp/mpld-synth.XXXXXX)
dune exec bin/mpld.exe -- gen synth "$synth" --features 100000 --seed 1 \
  > /dev/null
dune exec bin/mpld.exe -- decompose "$synth" -a linear -j 2 --windows 8 \
  --max-heap-mb 512 > /dev/null \
  || { echo "tier1: sharded 100k decompose failed or blew the budget" >&2
       exit 1; }
rm -f "$synth"

# Sharded colorings must be byte-identical to the whole-graph path on
# real circuits, cached-parallel and sequential-uncached alike.
shref=$(mktemp /tmp/mpld-shref.XXXXXX)
shgot=$(mktemp /tmp/mpld-shgot.XXXXXX)
for c in C880 S38417 S35932 S38584 S15850; do
  for opts in "-j 2" "-j 1 --no-cache"; do
    dune exec bin/mpld.exe -- decompose "$c" -a linear $opts \
      --colors "$shref" > /dev/null
    dune exec bin/mpld.exe -- decompose "$c" -a linear $opts --windows 4 \
      --colors "$shgot" > /dev/null
    cmp -s "$shref" "$shgot" || {
      echo "tier1: sharded coloring diverged from whole-graph on $c ($opts)" >&2
      exit 1
    }
  done
done
rm -f "$shref" "$shgot"

# Smoke: incremental (ECO) re-decomposition. Decompose a synthetic
# layout capturing a session, generate a deterministic edit script,
# redecompose incrementally, and cold-decompose the edited layout: the
# colorings must be byte-identical and the incremental run must have
# reused at least one untouched component verbatim.
esynth=$(mktemp /tmp/mpld-eco-base.XXXXXX)
eedits=$(mktemp /tmp/mpld-eco-edits.XXXXXX)
esess=$(mktemp /tmp/mpld-eco-sess.XXXXXX)
eedited=$(mktemp /tmp/mpld-eco-edited.XXXXXX)
ecoref=$(mktemp /tmp/mpld-eco-ref.XXXXXX)
ecogot=$(mktemp /tmp/mpld-eco-got.XXXXXX)
dune exec bin/mpld.exe -- gen synth "$esynth" --features 20000 --seed 3 \
  > /dev/null
dune exec bin/mpld.exe -- decompose "$esynth" -a linear -j 2 \
  --session "$esess" > /dev/null 2>&1
dune exec bin/mpld.exe -- gen edits "$eedits" --layout "$esynth" \
  --count 40 --seed 5 > /dev/null
ecoout=$(dune exec bin/mpld.exe -- redecompose "$esess" "$eedits" \
  -a linear -j 2 --save-layout "$eedited" --colors "$ecogot" 2>/dev/null)
echo "$ecoout" | grep -Eq "eco: reused=[1-9]" || {
  echo "tier1: redecompose reused no component" >&2
  echo "$ecoout" >&2
  exit 1
}
dune exec bin/mpld.exe -- decompose "$eedited" -a linear -j 2 \
  --colors "$ecoref" > /dev/null 2>&1
cmp -s "$ecoref" "$ecogot" || {
  echo "tier1: incremental coloring diverged from the cold run" >&2
  exit 1
}

# The same contract over a socket: a DECOMPOSE captures the session
# server-side (--sessions defaults to 8), then a REDECOMPOSE of the
# same layout streams only the dirty pieces, reports a REUSED line,
# and still hands back the full (cold-identical) coloring.
sock=/tmp/mpld-eco-$$.sock
cachef=/tmp/mpld-eco-$$.cache
srvlog=/tmp/mpld-eco-$$.log
start_server
"$MPLD" client --socket "$sock" "$esynth" -a linear > /dev/null 2>&1 \
  || server_fail "ECO base DECOMPOSE failed"
srvout=$("$MPLD" client --socket "$sock" "$esynth" -a linear \
  --edits "$eedits" --colors "$ecogot" 2>/dev/null) \
  || server_fail "REDECOMPOSE over the socket failed: $srvout"
echo "$srvout" | grep -Eq "eco: reused=[1-9]" \
  || server_fail "socket redecompose reused no component: $srvout"
cmp -s "$ecoref" "$ecogot" \
  || server_fail "socket incremental coloring diverged from the cold run"
"$MPLD" client --socket "$sock" --quit 2>/dev/null
wait "$srv" || server_fail "ECO server exited nonzero on shutdown"
srv=""
rm -f "$sock" "$cachef" "$srvlog" "$esynth" "$eedits" "$esess" "$eedited" \
  "$ecoref" "$ecogot"

echo "tier1: OK"
