#!/bin/sh
# Tier-1 verification: full build + test suite + a parallel-path smoke run.
set -e
cd "$(dirname "$0")"

dune build @all
dune runtest

# Smoke: end-to-end decompose through the mpl_engine path (2 domains,
# cache on by default in the CLI).
dune exec bin/mpld.exe -- decompose C880 -a linear -j 2

echo "tier1: OK"
