#!/bin/sh
# Tier-1 verification: full build + test suite + a parallel-path smoke run.
set -e
cd "$(dirname "$0")"

dune build @all
dune runtest

# Smoke: end-to-end decompose through the mpl_engine path (2 domains,
# cache on by default in the CLI).
dune exec bin/mpld.exe -- decompose C880 -a linear -j 2

# Smoke: tracing + metrics emit parseable output covering the pipeline.
trace=$(mktemp /tmp/mpld-trace.XXXXXX.json)
dune exec bin/mpld.exe -- decompose C432 -a linear -j 2 \
  --trace "$trace" --metrics
dune exec bin/mpld.exe -- trace-check "$trace" \
  --require graph.build --require graph.neighbor_search \
  --require division.components --require division.peel \
  --require engine.batch --require assign
rm -f "$trace"

echo "tier1: OK"
