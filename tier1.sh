#!/bin/sh
# Tier-1 verification: full build + test suite + a parallel-path smoke run.
set -e
cd "$(dirname "$0")"

dune build @all
dune runtest

# Smoke: end-to-end decompose through the mpl_engine path (2 domains,
# cache on by default in the CLI).
dune exec bin/mpld.exe -- decompose C880 -a linear -j 2

# Smoke: kernel parity. Exits nonzero if the bounded max-flow, bounded
# Gomory–Hu tree, or flat SDP kernels ever disagree with their
# reference implementations (bit-identical grams, identical cut
# structure, identical end-to-end colorings).
dune exec bench/main.exe -- --kernels --check

# Smoke: streamed-pipeline parity on a real S-circuit. jobs is a pure
# performance knob: the streamed run (-j 2) must report the identical
# cn#/st#/pieces line as the sequential reference (-j 1, cache off).
seq_line=$(dune exec bin/mpld.exe -- decompose S15850 -a linear -j 1 --no-cache \
  | grep "cn#")
par_line=$(dune exec bin/mpld.exe -- decompose S15850 -a linear -j 2 --no-cache \
  | grep "cn#")
seq_sig=$(echo "$seq_line" | sed 's/CPU=[0-9.]*s//')
par_sig=$(echo "$par_line" | sed 's/CPU=[0-9.]*s//')
if [ "$seq_sig" != "$par_sig" ]; then
  echo "tier1: streamed run diverged from sequential reference" >&2
  echo "  -j 1: $seq_line" >&2
  echo "  -j 2: $par_line" >&2
  exit 1
fi

# Smoke: tracing + metrics emit parseable output covering the pipeline.
trace=$(mktemp /tmp/mpld-trace.XXXXXX.json)
dune exec bin/mpld.exe -- decompose C432 -a linear -j 2 \
  --trace "$trace" --metrics
dune exec bin/mpld.exe -- trace-check "$trace" \
  --require graph.build --require graph.neighbor_search \
  --require division.components --require division.peel \
  --require engine.batch --require assign
rm -f "$trace"

# Smoke: fault injection degrades gracefully. The injected solver raise
# must not escape to the CLI (exit 0) and the run must report at least
# one degraded piece in the metrics dump.
out=$(dune exec bin/mpld.exe -- decompose C432 -a linear -j 2 \
  --inject solver_raise:seed=0 --metrics 2>&1)
echo "$out" | grep -q "resilience: degraded=[1-9]" || {
  echo "tier1: fault injection did not degrade any piece" >&2
  echo "$out" >&2
  exit 1
}
echo "$out" | grep -Eq "solver\.degraded +[1-9]" || {
  echo "tier1: solver.degraded metric missing from --metrics output" >&2
  echo "$out" >&2
  exit 1
}

# Smoke: malformed layouts are rejected with a file:line diagnostic and
# exit code 2 — never a raw OCaml backtrace.
bad=$(mktemp /tmp/mpld-bad.XXXXXX)
printf 'NAME bad\nTECH 20 20 20\nFEATURE\nR 0 0 0 5\nEND\n' > "$bad"
if err=$(dune exec bin/mpld.exe -- decompose "$bad" 2>&1); then
  echo "tier1: malformed layout was accepted" >&2
  rm -f "$bad"
  exit 1
fi
rm -f "$bad"
echo "$err" | grep -q ":4:" || {
  echo "tier1: parse error lacks the offending line number" >&2
  echo "$err" >&2
  exit 1
}
case "$err" in
*"Raised at"*)
  echo "tier1: parse error leaked a backtrace" >&2
  exit 1 ;;
esac

echo "tier1: OK"
