(** Rectilinear polygons represented as unions of axis-aligned rectangles.

    Layout features (wires, contacts, jogged shapes) are stored as a
    non-empty list of rectangles whose union is connected. Distance
    between polygons is the minimum rectangle-pair distance, which is
    exact for closed rectilinear regions. *)

type t

val of_rects : Rect.t list -> t
(** Build a polygon from its rectangle decomposition. Raises
    [Invalid_argument] if the list is empty or the union is not
    connected (rectangles must pairwise chain through touching
    contacts). *)

val of_rect : Rect.t -> t
(** Single-rectangle polygon. *)

val rects : t -> Rect.t list
(** The rectangle decomposition (in construction order). *)

val bbox : t -> Rect.t
(** Bounding box. *)

val area : t -> int
(** Total area, counting overlapping sub-rectangle regions once is NOT
    guaranteed; benchmark features use disjoint decompositions where this
    is the exact area. *)

val distance2 : t -> t -> int
(** Squared Euclidean distance between the two closed regions. *)

val distance : t -> t -> float
(** Euclidean distance between the two closed regions. *)

val pp : Format.formatter -> t -> unit
