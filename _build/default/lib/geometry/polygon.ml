type t = { rects : Rect.t list; bbox : Rect.t }

(* Union-find style connectivity check over the rectangle list. *)
let connected rl =
  match rl with
  | [] -> false
  | first :: _ ->
    let a = Array.of_list rl in
    let n = Array.length a in
    let seen = Array.make n false in
    let stack = ref [ 0 ] in
    seen.(0) <- true;
    ignore first;
    let visited = ref 1 in
    let rec loop () =
      match !stack with
      | [] -> ()
      | i :: rest ->
        stack := rest;
        for j = 0 to n - 1 do
          if (not seen.(j)) && Rect.touches a.(i) a.(j) then begin
            seen.(j) <- true;
            incr visited;
            stack := j :: !stack
          end
        done;
        loop ()
    in
    loop ();
    !visited = n

let of_rects rl =
  match rl with
  | [] -> invalid_arg "Polygon.of_rects: empty"
  | first :: rest ->
    if not (connected rl) then
      invalid_arg "Polygon.of_rects: disconnected rectangle union";
    let bbox = List.fold_left Rect.union_bbox first rest in
    { rects = rl; bbox }

let of_rect r = { rects = [ r ]; bbox = r }

let rects t = t.rects
let bbox t = t.bbox
let area t = List.fold_left (fun acc r -> acc + Rect.area r) 0 t.rects

let distance2 a b =
  let best = ref max_int in
  List.iter
    (fun ra ->
      List.iter
        (fun rb ->
          let d = Rect.distance2 ra rb in
          if d < !best then best := d)
        b.rects)
    a.rects;
  !best

let distance a b = sqrt (float_of_int (distance2 a b))

let pp ppf t =
  Format.fprintf ppf "@[<h>poly{%a}@]"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ";")
       Rect.pp)
    t.rects
