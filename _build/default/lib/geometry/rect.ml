type t = { x0 : int; y0 : int; x1 : int; y1 : int }

let make ~x0 ~y0 ~x1 ~y1 =
  if x0 >= x1 || y0 >= y1 then
    invalid_arg
      (Printf.sprintf "Rect.make: degenerate rectangle (%d,%d)-(%d,%d)" x0 y0
         x1 y1);
  { x0; y0; x1; y1 }

let of_corners (xa, ya) (xb, yb) =
  make ~x0:(min xa xb) ~y0:(min ya yb) ~x1:(max xa xb) ~y1:(max ya yb)

let width r = r.x1 - r.x0
let height r = r.y1 - r.y0
let area r = width r * height r

let center r =
  (float_of_int (r.x0 + r.x1) /. 2., float_of_int (r.y0 + r.y1) /. 2.)

let translate r ~dx ~dy =
  { x0 = r.x0 + dx; y0 = r.y0 + dy; x1 = r.x1 + dx; y1 = r.y1 + dy }

let inflate r d =
  make ~x0:(r.x0 - d) ~y0:(r.y0 - d) ~x1:(r.x1 + d) ~y1:(r.y1 + d)

let overlaps a b = a.x0 < b.x1 && b.x0 < a.x1 && a.y0 < b.y1 && b.y0 < a.y1
let touches a b = a.x0 <= b.x1 && b.x0 <= a.x1 && a.y0 <= b.y1 && b.y0 <= a.y1
let contains_point r x y = r.x0 <= x && x <= r.x1 && r.y0 <= y && y <= r.y1

let intersection a b =
  let x0 = max a.x0 b.x0 and y0 = max a.y0 b.y0 in
  let x1 = min a.x1 b.x1 and y1 = min a.y1 b.y1 in
  if x0 < x1 && y0 < y1 then Some { x0; y0; x1; y1 } else None

let union_bbox a b =
  { x0 = min a.x0 b.x0; y0 = min a.y0 b.y0; x1 = max a.x1 b.x1; y1 = max a.y1 b.y1 }

(* Gap along one axis between [a0,a1] and [b0,b1]; 0 when they overlap. *)
let axis_gap a0 a1 b0 b1 =
  if a1 < b0 then b0 - a1 else if b1 < a0 then a0 - b1 else 0

let distance2 a b =
  let dx = axis_gap a.x0 a.x1 b.x0 b.x1 in
  let dy = axis_gap a.y0 a.y1 b.y0 b.y1 in
  (dx * dx) + (dy * dy)

let distance a b = sqrt (float_of_int (distance2 a b))

let equal a b = a.x0 = b.x0 && a.y0 = b.y0 && a.x1 = b.x1 && a.y1 = b.y1
let compare = Stdlib.compare

let pp ppf r =
  Format.fprintf ppf "[%d,%d..%d,%d]" r.x0 r.y0 r.x1 r.y1
