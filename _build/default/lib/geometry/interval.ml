type t = int * int

let length (lo, hi) = hi - lo

let overlaps (a0, a1) (b0, b1) = a0 <= b1 && b0 <= a1

let merge ivs =
  let sorted = List.sort compare (List.filter (fun (lo, hi) -> lo <= hi) ivs) in
  let rec go acc = function
    | [] -> List.rev acc
    | (lo, hi) :: rest -> begin
      match acc with
      | (plo, phi) :: acc' when lo <= phi -> go ((plo, max phi hi) :: acc') rest
      | _ -> go ((lo, hi) :: acc) rest
    end
  in
  go [] sorted

let complement (lo, hi) covered =
  let rec go cursor acc = function
    | [] -> if cursor < hi then (cursor, hi) :: acc else acc
    | (clo, chi) :: rest ->
      let acc = if clo > cursor then (cursor, min clo hi) :: acc else acc in
      go (max cursor chi) acc rest
  in
  List.rev (go lo [] covered)

let dilate margin (lo, hi) = (lo - margin, hi + margin)
