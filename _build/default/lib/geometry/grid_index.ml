type entry = { id : int; box : Rect.t }

type t = {
  cell : int;
  buckets : (int * int, entry list ref) Hashtbl.t;
  mutable entries : entry list;
}

let create ~cell =
  if cell <= 0 then invalid_arg "Grid_index.create: cell must be positive";
  { cell; buckets = Hashtbl.create 1024; entries = [] }

let cell_range t lo hi =
  let a = if lo >= 0 then lo / t.cell else (lo - t.cell + 1) / t.cell in
  let b = if hi >= 0 then hi / t.cell else (hi - t.cell + 1) / t.cell in
  (a, b)

let iter_cells t (r : Rect.t) f =
  let cx0, cx1 = cell_range t r.Rect.x0 r.Rect.x1 in
  let cy0, cy1 = cell_range t r.Rect.y0 r.Rect.y1 in
  for cx = cx0 to cx1 do
    for cy = cy0 to cy1 do
      f (cx, cy)
    done
  done

let add t id box =
  let e = { id; box } in
  t.entries <- e :: t.entries;
  let record key =
    match Hashtbl.find_opt t.buckets key with
    | Some l -> l := e :: !l
    | None -> Hashtbl.add t.buckets key (ref [ e ])
  in
  iter_cells t box record

let query t r ~radius =
  let grown = Rect.inflate r radius in
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  let visit key =
    match Hashtbl.find_opt t.buckets key with
    | None -> ()
    | Some l ->
      List.iter
        (fun e ->
          if not (Hashtbl.mem seen e.id) then begin
            Hashtbl.add seen e.id ();
            if Rect.touches grown e.box then out := e.id :: !out
          end)
        !l
  in
  iter_cells t grown visit;
  !out

let iter_pairs t ~radius f =
  let entries = Array.of_list t.entries in
  (* Visit each entry once; query the grid for candidate partners and
     report the pair only from the lower id so it fires exactly once. *)
  Array.iter
    (fun e ->
      let grown = Rect.inflate e.box radius in
      let seen = Hashtbl.create 16 in
      let visit key =
        match Hashtbl.find_opt t.buckets key with
        | None -> ()
        | Some l ->
          List.iter
            (fun e' ->
              if e'.id > e.id && not (Hashtbl.mem seen e'.id) then begin
                Hashtbl.add seen e'.id ();
                if Rect.touches grown e'.box then f e.id e'.id
              end)
            !l
      in
      iter_cells t grown visit)
    entries
