(** 1-D integer intervals [\[lo, hi\]].

    The projection step of stitch-candidate generation works on the
    footprints of neighbor shapes along a wire's long axis: merge the
    covered intervals, complement them within the wire's interior, and
    keep the spans long enough for a legal stitch. *)

type t = int * int
(** [(lo, hi)] with [lo <= hi]; empty intervals are represented by
    [lo > hi] and normalized away by the operations below. *)

val length : t -> int
(** [hi - lo]; negative for an empty interval. *)

val overlaps : t -> t -> bool
(** Do the closed intervals share a point? *)

val merge : t list -> t list
(** Union of the intervals as a minimal sorted list of disjoint
    intervals (touching intervals are coalesced). *)

val complement : t -> t list -> t list
(** [complement span covered] is the list of maximal sub-intervals of
    [span] not covered by the MERGED, SORTED list [covered], in
    ascending order. *)

val dilate : int -> t -> t
(** Grow by the margin on both sides. *)
