(** Axis-aligned integer rectangles.

    All coordinates are in layout database units (1 unit = 1 nm in the
    benchmark suites). Rectangles are closed regions [\[x0,x1\] x \[y0,y1\]]
    with strictly positive width and height. *)

type t = private { x0 : int; y0 : int; x1 : int; y1 : int }

val make : x0:int -> y0:int -> x1:int -> y1:int -> t
(** Build a rectangle. Raises [Invalid_argument] unless [x0 < x1] and
    [y0 < y1]. *)

val of_corners : (int * int) -> (int * int) -> t
(** Rectangle spanning two opposite corners (any orientation). *)

val width : t -> int
val height : t -> int
val area : t -> int

val center : t -> float * float
(** Geometric center. *)

val translate : t -> dx:int -> dy:int -> t

val inflate : t -> int -> t
(** [inflate r d] grows [r] by [d] on every side ([d] may be negative as
    long as the result stays non-degenerate). *)

val overlaps : t -> t -> bool
(** Do the closed interiors share a point of positive area? *)

val touches : t -> t -> bool
(** Do the closed rectangles intersect at all (including edge/corner
    contact)? *)

val contains_point : t -> int -> int -> bool

val intersection : t -> t -> t option
(** Positive-area intersection, if any. *)

val union_bbox : t -> t -> t
(** Smallest rectangle containing both. *)

val distance2 : t -> t -> int
(** Squared Euclidean distance between the closed rectangles (0 if they
    touch). Stays within [int] range for coordinates below ~2^30. *)

val distance : t -> t -> float
(** Euclidean distance between the closed rectangles. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
