lib/geometry/grid_index.mli: Rect
