lib/geometry/interval.ml: List
