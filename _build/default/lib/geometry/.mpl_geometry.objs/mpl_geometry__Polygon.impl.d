lib/geometry/polygon.ml: Array Format List Rect
