lib/geometry/polygon.mli: Format Rect
