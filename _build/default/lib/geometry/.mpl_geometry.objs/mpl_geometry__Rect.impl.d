lib/geometry/rect.ml: Format Printf Stdlib
