lib/geometry/interval.mli:
