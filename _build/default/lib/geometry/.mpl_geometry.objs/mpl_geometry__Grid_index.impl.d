lib/geometry/grid_index.ml: Array Hashtbl List Rect
