(** Uniform-grid spatial index over rectangles.

    Decomposition-graph construction needs all feature pairs within the
    minimum coloring distance. Bucketing feature bounding boxes into a
    uniform grid of cells sized to that query radius makes the
    neighbor sweep linear in the number of features for realistic
    layouts. *)

type t

val create : cell:int -> t
(** Fresh index with square cells of side [cell] (> 0). *)

val add : t -> int -> Rect.t -> unit
(** [add t id r] registers item [id] with bounding box [r]. *)

val query : t -> Rect.t -> radius:int -> int list
(** [query t r ~radius] returns ids whose registered boxes may lie within
    [radius] of [r] (a superset: exact distance must be re-checked by the
    caller). Each id is returned at most once. *)

val iter_pairs : t -> radius:int -> (int -> int -> unit) -> unit
(** [iter_pairs t ~radius f] calls [f i j] (with [i < j]) for every pair
    of registered items whose boxes may be within [radius]. Pairs are
    visited exactly once. *)
