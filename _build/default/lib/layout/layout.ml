type tech = { half_pitch : int; min_width : int; min_space : int }

let default_tech = { half_pitch = 20; min_width = 20; min_space = 20 }

let quadruple_min_s t = (2 * t.min_space) + (2 * t.min_width)
let pentuple_min_s t = (3 * t.min_space) + (5 * t.min_width / 2)
let kclique_min_s t = (2 * t.min_space) + t.min_width

type t = {
  tech : tech;
  features : Mpl_geometry.Polygon.t array;
  name : string;
}

let make ?(name = "layout") tech features =
  { tech; features = Array.of_list features; name }

let feature_count t = Array.length t.features

let bbox t =
  if Array.length t.features = 0 then None
  else begin
    let acc = ref (Mpl_geometry.Polygon.bbox t.features.(0)) in
    Array.iter
      (fun p -> acc := Mpl_geometry.Rect.union_bbox !acc (Mpl_geometry.Polygon.bbox p))
      t.features;
    Some !acc
  end

let pp_summary ppf t =
  Format.fprintf ppf "%s: %d features (hp=%d, w_m=%d, s_m=%d)" t.name
    (feature_count t) t.tech.half_pitch t.tech.min_width t.tech.min_space
