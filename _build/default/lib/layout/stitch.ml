module Rect = Mpl_geometry.Rect
module Polygon = Mpl_geometry.Polygon
module Grid_index = Mpl_geometry.Grid_index

type node = { feature : int; shape : Polygon.t }

type t = { nodes : node array; stitch_edges : (int * int) list }

type orient = Horizontal | Vertical

(* A wire is a single rectangle clearly longer than wide. *)
let wire_orientation tech (p : Polygon.t) =
  match Polygon.rects p with
  | [ r ] ->
    let w = Rect.width r and h = Rect.height r in
    let min_len = 2 * tech.Layout.min_width in
    if w >= h + min_len then Some (Horizontal, r)
    else if h >= w + min_len then Some (Vertical, r)
    else None
  | [] | _ :: _ :: _ -> None

module Interval = Mpl_geometry.Interval

(* Candidate stitch abscissae for one wire. [margin] dilates neighbor
   projections and keeps stitches away from wire ends. *)
let stitch_positions ~margin ~limit (orient, r) neighbor_boxes =
  let axis_lo, axis_hi =
    match orient with
    | Horizontal -> (r.Rect.x0, r.Rect.x1)
    | Vertical -> (r.Rect.y0, r.Rect.y1)
  in
  let interior = (axis_lo + margin, axis_hi - margin) in
  if snd interior - fst interior <= 0 then []
  else begin
    let proj (b : Rect.t) =
      Interval.dilate margin
        (match orient with
        | Horizontal -> (b.Rect.x0, b.Rect.x1)
        | Vertical -> (b.Rect.y0, b.Rect.y1))
    in
    let covered = Interval.merge (List.map proj neighbor_boxes) in
    let free = Interval.complement interior covered in
    let good = List.filter (fun iv -> Interval.length iv >= margin) free in
    let cuts = List.map (fun (lo, hi) -> (lo + hi) / 2) good in
    let rec take n = function
      | [] -> []
      | x :: rest -> if n = 0 then [] else x :: take (n - 1) rest
    in
    take limit cuts
  end

let cut_wire (orient, r) positions =
  let sorted = List.sort_uniq compare positions in
  let segments =
    let rec go lo = function
      | [] ->
        [ (match orient with
          | Horizontal -> Rect.make ~x0:lo ~y0:r.Rect.y0 ~x1:r.Rect.x1 ~y1:r.Rect.y1
          | Vertical -> Rect.make ~x0:r.Rect.x0 ~y0:lo ~x1:r.Rect.x1 ~y1:r.Rect.y1) ]
      | c :: rest ->
        let seg =
          match orient with
          | Horizontal -> Rect.make ~x0:lo ~y0:r.Rect.y0 ~x1:c ~y1:r.Rect.y1
          | Vertical -> Rect.make ~x0:r.Rect.x0 ~y0:lo ~x1:r.Rect.x1 ~y1:c
        in
        seg :: go c rest
    in
    match orient with
    | Horizontal -> go r.Rect.x0 sorted
    | Vertical -> go r.Rect.y0 sorted
  in
  segments

let split ?(max_stitches_per_feature = 3) (layout : Layout.t) ~min_s =
  let features = layout.Layout.features in
  let nf = Array.length features in
  if max_stitches_per_feature = 0 || nf = 0 then
    {
      nodes = Array.init nf (fun i -> { feature = i; shape = features.(i) });
      stitch_edges = [];
    }
  else begin
    let cell = max min_s 16 in
    let index = Grid_index.create ~cell in
    Array.iteri (fun i p -> Grid_index.add index i (Polygon.bbox p)) features;
    let margin = layout.Layout.tech.Layout.min_width in
    let nodes = ref [] in
    let edges = ref [] in
    let next = ref 0 in
    let emit feature shape =
      let id = !next in
      incr next;
      nodes := { feature; shape } :: !nodes;
      id
    in
    Array.iteri
      (fun i p ->
        match wire_orientation layout.Layout.tech p with
        | None -> ignore (emit i p)
        | Some wire ->
          let box = Polygon.bbox p in
          let cand = Grid_index.query index box ~radius:min_s in
          let neighbor_boxes =
            List.filter_map
              (fun j ->
                if j = i then None
                else begin
                  let q = features.(j) in
                  if Polygon.distance2 p q <= min_s * min_s then
                    Some (Polygon.bbox q)
                  else None
                end)
              cand
          in
          let cuts =
            stitch_positions ~margin ~limit:max_stitches_per_feature wire
              neighbor_boxes
          in
          let segments = cut_wire wire cuts in
          let ids = List.map (fun r -> emit i (Polygon.of_rect r)) segments in
          let rec chain = function
            | a :: (b :: _ as rest) ->
              edges := (a, b) :: !edges;
              chain rest
            | [ _ ] | [] -> ()
          in
          chain ids)
      features;
    { nodes = Array.of_list (List.rev !nodes); stitch_edges = List.rev !edges }
  end
