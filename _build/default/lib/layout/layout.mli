(** Layouts: a technology description plus a bag of polygonal features.

    Coordinates are nanometers. The benchmark suites follow the paper's
    setup: Metal1-like layers scaled to 20 nm half-pitch with minimum
    feature width w_m = 20 nm and minimum spacing s_m = 20 nm. *)

type tech = {
  half_pitch : int;  (** hp, used by the color-friendly rule *)
  min_width : int;  (** w_m *)
  min_space : int;  (** s_m *)
}

val default_tech : tech
(** hp = 20, w_m = 20, s_m = 20 (paper Section 6). *)

val quadruple_min_s : tech -> int
(** min_s = 2 s_m + 2 w_m (80 nm at default tech) — the paper's QPL
    coloring distance. *)

val pentuple_min_s : tech -> int
(** min_s = 3 s_m + 2.5 w_m (110 nm at default tech) — the paper's
    pentuple coloring distance. *)

val kclique_min_s : tech -> int
(** min_s = 2 s_m + w_m (60 nm) — the distance at which 1-D regular
    patterns already contain K5 (paper Fig. 7). *)

type t = {
  tech : tech;
  features : Mpl_geometry.Polygon.t array;
  name : string;
}

val make : ?name:string -> tech -> Mpl_geometry.Polygon.t list -> t

val feature_count : t -> int

val bbox : t -> Mpl_geometry.Rect.t option
(** Bounding box of all features; [None] when empty. *)

val pp_summary : Format.formatter -> t -> unit
