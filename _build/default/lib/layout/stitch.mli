(** Projection-based stitch-candidate generation.

    A stitch splits one polygonal feature into two touching sub-features
    printed on different masks. A stitch position is only legal where no
    conflicting neighbor is "opposite" the wire — otherwise both halves
    would still conflict and the stitch is useless. Following the
    double/triple-patterning literature, we project every neighbor within
    the coloring distance onto the long axis of a wire, dilate each
    projection by the minimum overlap margin, and take maximal uncovered
    interior spans as stitch candidates.

    Only single-rectangle features whose long side is at least
    [2 * min_width] beyond the short side are considered for splitting;
    contacts and jogged polygons are kept whole. *)

type node = {
  feature : int;  (** index of the originating feature in the layout *)
  shape : Mpl_geometry.Polygon.t;  (** the (possibly split) sub-feature *)
}

type t = {
  nodes : node array;
  stitch_edges : (int * int) list;
      (** pairs of node indices joined by a stitch candidate *)
}

val split : ?max_stitches_per_feature:int -> Layout.t -> min_s:int -> t
(** Compute decomposition-graph nodes and stitch edges for a layout under
    coloring distance [min_s]. With [max_stitches_per_feature] = 0 the
    result has one node per feature and no stitch edges. Default limit:
    3 stitches per feature. *)
