lib/layout/layout_io.ml: Array Buffer Fun Layout List Mpl_geometry Printf String
