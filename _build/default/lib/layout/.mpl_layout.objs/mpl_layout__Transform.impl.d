lib/layout/transform.ml: Array Layout List Mpl_geometry
