lib/layout/stitch.mli: Layout Mpl_geometry
