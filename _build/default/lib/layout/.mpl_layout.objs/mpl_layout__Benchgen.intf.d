lib/layout/benchgen.mli: Layout
