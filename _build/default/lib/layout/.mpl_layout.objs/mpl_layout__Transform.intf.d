lib/layout/transform.mli: Layout
