lib/layout/layout.mli: Format Mpl_geometry
