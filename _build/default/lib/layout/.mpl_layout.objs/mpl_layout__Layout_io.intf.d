lib/layout/layout_io.mli: Layout
