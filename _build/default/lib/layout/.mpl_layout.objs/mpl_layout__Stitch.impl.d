lib/layout/stitch.ml: Array Layout List Mpl_geometry
