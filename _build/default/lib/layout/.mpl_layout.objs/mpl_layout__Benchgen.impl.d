lib/layout/benchgen.ml: Layout List Mpl_geometry Mpl_util
