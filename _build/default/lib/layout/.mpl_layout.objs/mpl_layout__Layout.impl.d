lib/layout/layout.ml: Array Format Mpl_geometry
