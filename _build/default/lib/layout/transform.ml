module Rect = Mpl_geometry.Rect
module Polygon = Mpl_geometry.Polygon

let map_rects f (layout : Layout.t) =
  {
    layout with
    Layout.features =
      Array.map
        (fun p -> Polygon.of_rects (List.map f (Polygon.rects p)))
        layout.Layout.features;
  }

let translate ~dx ~dy layout =
  map_rects (fun r -> Rect.translate r ~dx ~dy) layout

let mirror_x layout =
  map_rects
    (fun r ->
      Rect.make ~x0:(-r.Rect.x1) ~y0:r.Rect.y0 ~x1:(-r.Rect.x0) ~y1:r.Rect.y1)
    layout

let mirror_y layout =
  map_rects
    (fun r ->
      Rect.make ~x0:r.Rect.x0 ~y0:(-r.Rect.y1) ~x1:r.Rect.x1 ~y1:(-r.Rect.y0))
    layout

let rotate90 layout =
  map_rects
    (fun r ->
      Rect.make ~x0:(-r.Rect.y1) ~y0:r.Rect.x0 ~x1:(-r.Rect.y0) ~y1:r.Rect.x1)
    layout
