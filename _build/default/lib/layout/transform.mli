(** Rigid layout transformations.

    Decomposition is invariant under translation, mirroring, and 90°
    rotation — useful for placing reusable blocks, and a strong
    end-to-end property for the test suite (the decomposition graph of a
    transformed layout is isomorphic, so optimal costs are identical). *)

val translate : dx:int -> dy:int -> Layout.t -> Layout.t

val mirror_x : Layout.t -> Layout.t
(** Reflect across the y-axis (x -> -x). *)

val mirror_y : Layout.t -> Layout.t
(** Reflect across the x-axis (y -> -y). *)

val rotate90 : Layout.t -> Layout.t
(** Rotate 90° counterclockwise about the origin ((x,y) -> (-y,x)). *)
