lib/util/rng.mli:
