lib/util/intset.mli:
