lib/util/timer.mli:
