lib/util/intset.ml: Array List
