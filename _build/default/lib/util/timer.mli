(** Wall-clock timing helpers used by the decomposition flow and the
    benchmark harness. *)

type t
(** A started stopwatch. *)

val start : unit -> t
(** Start a stopwatch now. *)

val elapsed_s : t -> float
(** Seconds elapsed since [start]. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f ()] and returns its result with the elapsed seconds. *)

type budget
(** A deadline for bounded searches (e.g. the ILP baseline). *)

val budget : float -> budget
(** [budget s] expires [s] seconds from now. Non-positive [s] never
    expires. *)

val expired : budget -> bool
(** Has the deadline passed? *)
