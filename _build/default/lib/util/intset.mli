(** Small helpers over integer arrays and sets that the graph and coloring
    code use repeatedly. *)

val sort_uniq : int list -> int list
(** Ascending order, duplicates removed. *)

val array_min : int array -> int
(** Minimum element. Raises [Invalid_argument] on empty arrays. *)

val array_max : int array -> int
(** Maximum element. Raises [Invalid_argument] on empty arrays. *)

val argmin : float array -> int
(** Index of the (first) minimum. Raises [Invalid_argument] on empty
    arrays. *)

val argmax : float array -> int
(** Index of the (first) maximum. Raises [Invalid_argument] on empty
    arrays. *)

val init_list : int -> (int -> 'a) -> 'a list
(** [init_list n f] is [[f 0; ...; f (n-1)]]. *)

val sum : int array -> int
(** Sum of all elements. *)

val fsum : float array -> float
(** Sum of all elements. *)
