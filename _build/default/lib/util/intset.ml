let sort_uniq l = List.sort_uniq compare l

let array_min a =
  if Array.length a = 0 then invalid_arg "Intset.array_min";
  Array.fold_left min a.(0) a

let array_max a =
  if Array.length a = 0 then invalid_arg "Intset.array_max";
  Array.fold_left max a.(0) a

let arg_by better a =
  if Array.length a = 0 then invalid_arg "Intset.arg";
  let best = ref 0 in
  for i = 1 to Array.length a - 1 do
    if better a.(i) a.(!best) then best := i
  done;
  !best

let argmin a = arg_by ( < ) a
let argmax a = arg_by ( > ) a

let init_list n f = List.init n f

let sum a = Array.fold_left ( + ) 0 a
let fsum a = Array.fold_left ( +. ) 0. a
