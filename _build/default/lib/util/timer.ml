type t = float

let start () = Unix.gettimeofday ()

let elapsed_s t = Unix.gettimeofday () -. t

let time f =
  let t = start () in
  let x = f () in
  (x, elapsed_s t)

type budget = float option

let budget s = if s <= 0. then None else Some (Unix.gettimeofday () +. s)

let expired = function
  | None -> false
  | Some deadline -> Unix.gettimeofday () > deadline
