(** Deterministic pseudo-random number generation.

    A small SplitMix64 generator with explicit state, so that benchmark
    layouts and property seeds are reproducible across machines and OCaml
    versions (unlike [Stdlib.Random], whose algorithm may change). *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator from a 63-bit seed. *)

val copy : t -> t
(** Independent copy of the current state. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin. *)

val range : t -> int -> int -> int
(** [range t lo hi] is uniform in [\[lo, hi\]] inclusive. Requires
    [lo <= hi]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val split : t -> t
(** [split t] derives an independent child generator, advancing [t]. *)
