type algorithm = Ilp | Exact | Sdp_backtrack | Sdp_greedy | Linear

let algorithm_name = function
  | Ilp -> "ILP"
  | Exact -> "Exact-BnB"
  | Sdp_backtrack -> "SDP+Backtrack"
  | Sdp_greedy -> "SDP+Greedy"
  | Linear -> "Linear"

type post_pass = No_post | Local_search | Anneal of int

type params = {
  k : int;
  alpha : float;
  tth : float;
  sdp_options : Mpl_numeric.Sdp.options;
  solver_budget_s : float;
  node_cap : int;
  stages : Division.stages;
  post : post_pass;
  balance : bool;
}

let default_params =
  {
    k = 4;
    alpha = 0.1;
    tth = 0.9;
    sdp_options = Mpl_numeric.Sdp.default_options;
    solver_budget_s = 60.;
    node_cap = 2_000_000;
    stages = Division.all_stages;
    post = No_post;
    balance = false;
  }

type report = {
  algorithm : algorithm;
  params : params;
  cost : Coloring.cost;
  colors : Coloring.t;
  elapsed_s : float;
  timed_out : bool;
  division : Division.stats;
}

(* Leaf solver for one divided piece. The exact algorithms share one
   wall-clock budget across all pieces (the paper reports a single CPU
   number per circuit); when it expires, remaining pieces fall back to a
   greedy coloring and the run is flagged N/A. *)
let make_solver ~params ~budget ~timed_out algorithm (piece : Decomp_graph.t) =
  let k = params.k and alpha = params.alpha in
  match algorithm with
  | Linear -> Linear_color.solve ~k ~alpha piece
  | Exact ->
    let r =
      Exact_color.solve ~node_cap:params.node_cap ~budget ~k ~alpha piece
    in
    if not r.Bnb.optimal then timed_out := true;
    r.Bnb.colors
  | Ilp ->
    if Mpl_util.Timer.expired budget then begin
      timed_out := true;
      Bnb.greedy ~k (Bnb.instance_of_graph ~alpha piece)
    end
    else begin
      let r = Ilp_color.solve ~budget ~k ~alpha piece in
      if not r.Ilp_color.optimal then timed_out := true;
      r.Ilp_color.colors
    end
  | Sdp_greedy ->
    if piece.Decomp_graph.n <= 1 then Array.make piece.Decomp_graph.n 0
    else begin
      let sol = Sdp_color.relax ~options:params.sdp_options ~k ~alpha piece in
      Sdp_color.greedy_map ~k sol piece
    end
  | Sdp_backtrack ->
    if piece.Decomp_graph.n <= 1 then Array.make piece.Decomp_graph.n 0
    else begin
      let sol = Sdp_color.relax ~options:params.sdp_options ~k ~alpha piece in
      Sdp_color.backtrack ~tth:params.tth ~node_cap:params.node_cap ~k ~alpha
        sol piece
    end

let assign ?(params = default_params) algorithm g =
  let stats = Division.fresh_stats () in
  let timed_out = ref false in
  let budget =
    match algorithm with
    | Ilp | Exact -> Mpl_util.Timer.budget params.solver_budget_s
    | Sdp_backtrack | Sdp_greedy | Linear -> Mpl_util.Timer.budget 0.
  in
  let solver = make_solver ~params ~budget ~timed_out algorithm in
  let (colors, elapsed_s) =
    Mpl_util.Timer.time (fun () ->
        let colors =
          Division.assign ~stages:params.stages ~stats ~k:params.k
            ~alpha:params.alpha ~solver g
        in
        let colors =
          match params.post with
          | No_post -> colors
          | Local_search ->
            Refine.local_search ~k:params.k ~alpha:params.alpha g colors
          | Anneal iterations ->
            Refine.anneal ~iterations ~k:params.k ~alpha:params.alpha g colors
        in
        if params.balance then
          Balance.rebalance ~k:params.k ~alpha:params.alpha g colors
        else colors)
  in
  assert (Coloring.is_complete colors);
  assert (Coloring.check_range ~k:params.k colors);
  let cost = Coloring.evaluate ~alpha:params.alpha g colors in
  {
    algorithm;
    params;
    cost;
    colors;
    elapsed_s;
    timed_out = !timed_out;
    division = stats;
  }

let decompose ?params ?max_stitches_per_feature ~min_s algorithm layout =
  let g = Decomp_graph.of_layout ?max_stitches_per_feature layout ~min_s in
  (g, assign ?params algorithm g)

let pp_report ppf r =
  Format.fprintf ppf
    "%-13s cn#=%-4d st#=%-5d cost=%.1f CPU=%.3fs pieces=%d largest=%d%s"
    (algorithm_name r.algorithm) r.cost.Coloring.conflicts
    r.cost.Coloring.stitches
    (float_of_int r.cost.Coloring.scaled /. 1000.)
    r.elapsed_s r.division.Division.pieces r.division.Division.largest_piece
    (if r.timed_out then " (TIMEOUT)" else "")
