(** Exact k-coloring of a decomposition graph by branch-and-bound.

    Reference optimum for tests and the engine behind the ILP row when
    the generic MILP formulation is not wanted. Within the node cap and
    budget the result is provably optimal for
    [conflict# + alpha * stitch#]. *)

val solve :
  ?node_cap:int ->
  ?budget:Mpl_util.Timer.budget ->
  k:int ->
  alpha:float ->
  Decomp_graph.t ->
  Bnb.result
