(** SVG rendering of decomposed layouts.

    Draws every decomposition-graph node (feature or wire segment)
    filled with its mask color, overlays unresolved conflicts as red
    links and paid stitches as dashed links — the visual a mask engineer
    checks first. *)

val mask_palette : string array
(** Hex fill colors for masks 0..7 (K up to 8 renders distinctly). *)

val to_svg :
  ?max_stitches_per_feature:int ->
  ?min_s:int ->
  Mpl_layout.Layout.t ->
  Decomp_graph.t ->
  Coloring.t ->
  string
(** [to_svg layout g colors] renders the layout with the given
    assignment. [g] must be the graph built from [layout] with the same
    [max_stitches_per_feature] and [min_s] (defaults: 3 and the
    quadruple-patterning distance) — the node shapes are recomputed from
    the layout, and a mismatch with [g.n] raises [Invalid_argument]. *)

val save :
  ?max_stitches_per_feature:int ->
  ?min_s:int ->
  Mpl_layout.Layout.t ->
  Decomp_graph.t ->
  Coloring.t ->
  string ->
  unit
(** Write the SVG to a file path. *)
