let usage ~k colors =
  let counts = Array.make k 0 in
  Array.iter (fun c -> if c >= 0 then counts.(c) <- counts.(c) + 1) colors;
  counts

let imbalance ~k colors =
  let counts = usage ~k colors in
  let total = Array.fold_left ( + ) 0 counts in
  if total = 0 then 0.
  else begin
    let mx = Array.fold_left max counts.(0) counts in
    let mn = Array.fold_left min counts.(0) counts in
    float_of_int (mx - mn) /. (float_of_int total /. float_of_int k)
  end

let weighted_usage ~k ~weights colors =
  let counts = Array.make k 0 in
  Array.iteri
    (fun v c -> if c >= 0 then counts.(c) <- counts.(c) + weights.(v))
    colors;
  counts

let rebalance ?(max_passes = 5) ?weights ~k ~alpha (g : Decomp_graph.t) colors
    =
  let n = g.Decomp_graph.n in
  let weights =
    match weights with
    | Some w ->
      if Array.length w <> n then
        invalid_arg "Balance.rebalance: weights length mismatch";
      w
    | None -> Array.make n 1
  in
  let ws = Coloring.stitch_weight ~alpha in
  let colors = Array.copy colors in
  let counts = weighted_usage ~k ~weights colors in
  let improved = ref true in
  let passes = ref 0 in
  while !improved && !passes < max_passes do
    improved := false;
    incr passes;
    for v = 0 to n - 1 do
      let current = colors.(v) in
      if current >= 0 && weights.(v) > 0 then begin
        (* Cheapest admissible move: a zero-cost color whose usage stays
           strictly lower than the current mask's even after receiving
           this vertex's weight (guaranteeing the max-min spread never
           grows). *)
        let best = ref current in
        for c = 0 to k - 1 do
          if
            c <> current
            && counts.(c) + weights.(v) < counts.(!best)
            && Refine.move_delta ~ws g colors v c = 0
          then best := c
        done;
        if !best <> current then begin
          counts.(current) <- counts.(current) - weights.(v);
          counts.(!best) <- counts.(!best) + weights.(v);
          colors.(v) <- !best;
          improved := true
        end
      end
    done
  done;
  colors
