(** Per-mask pattern-density maps.

    Mask balance in {!Balance} counts vertices; what lithography actually
    cares about is *area* density per mask, uniform across the die. This
    module rasterizes a decomposed layout into square windows and reports
    per-window, per-mask area — the standard density-map check run
    before accepting a decomposition. *)

type t = {
  window : int;  (** window side in nm *)
  nx : int;
  ny : int;
  x0 : int;
  y0 : int;
  area : int array array array;  (** [area.(mask).(ix).(iy)] in nm^2 *)
}

val compute :
  ?max_stitches_per_feature:int ->
  ?min_s:int ->
  window:int ->
  k:int ->
  Mpl_layout.Layout.t ->
  Decomp_graph.t ->
  Coloring.t ->
  t
(** Rasterize. Node shapes are recomputed from the layout exactly as
    {!Render.to_svg} does; [g.n] must match. *)

val mask_totals : t -> int array
(** Total area per mask over the whole die. *)

val worst_window_imbalance : t -> float
(** Max over windows of (max mask area - min mask area) / window area;
    0 when every window is perfectly balanced or empty. *)

val pp_summary : Format.formatter -> t -> unit
