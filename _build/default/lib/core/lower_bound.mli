(** Clique-based lower bounds on the conflict count.

    A clique of size m > k in the conflict graph forces at least
    [excess_pairs m k] monochromatic edges (partition m vertices into k
    color classes as evenly as possible; the within-class pairs are
    unavoidable). Summing the bound over vertex-disjoint cliques of the
    divided pieces gives a certified lower bound on any decomposition's
    conflict number — letting callers report optimality gaps for the
    heuristic algorithms without running an exact solver. *)

val excess_pairs : int -> int -> int
(** [excess_pairs m k]: minimum monochromatic pairs when m mutually
    conflicting vertices share k colors; 0 when [m <= k]. *)

val max_clique : ?node_cap:int -> Mpl_graph.Ugraph.t -> int array
(** A maximum clique of the graph (branch-and-bound with greedy coloring
    bound; anytime under [node_cap], in which case the best clique found
    so far is returned). Sorted ascending. *)

val conflict_lower_bound : k:int -> Decomp_graph.t -> int
(** Certified lower bound on the conflict number of any k-coloring:
    greedily extracts vertex-disjoint cliques from each connected
    component of the conflict graph and sums their excess pairs. *)
