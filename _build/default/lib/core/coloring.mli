(** Color assignments and their cost.

    A coloring maps every vertex of a decomposition graph to a mask in
    [0..k-1]. The decomposition objective is
    [conflict# + alpha * stitch#]; internally costs are integers in
    milli-units ([weight_conflict] per conflict, [round (alpha * 1000)]
    per stitch) so comparisons are exact. *)

type t = int array
(** [colors.(v)] in [0 .. k-1]; [-1] marks an unassigned vertex. *)

val weight_conflict : int
(** 1000: one conflict in milli-units. *)

val stitch_weight : alpha:float -> int
(** [round (alpha * 1000)]. *)

type cost = { conflicts : int; stitches : int; scaled : int }

val evaluate : ?alpha:float -> Decomp_graph.t -> t -> cost
(** Count monochromatic conflict edges and bichromatic stitch edges.
    Unassigned vertices contribute to neither side of their edges.
    Default [alpha] is 0.1 (the paper's setting). *)

val check_range : k:int -> t -> bool
(** Are all assigned colors within [0..k-1]? *)

val is_complete : t -> bool

val permute : t -> int array -> t
(** [permute colors sigma] maps color [c] to [sigma.(c)] (a fresh
    array). Costs are invariant under any bijection. *)

val rotate_in_place : t -> int array -> k:int -> by:int -> unit
(** [rotate_in_place colors vs ~k ~by] adds [by] (mod k) to the color of
    every vertex in [vs] (paper Fig. 5 color rotation). *)
