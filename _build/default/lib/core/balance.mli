(** Mask density balancing.

    Multiple-patterning masks should carry comparable pattern density
    (the paper's companion work, ICCAD'13 ref. [10], optimizes "balanced
    density" explicitly). This module measures per-mask usage and
    rebalances a finished coloring by recoloring vertices whose move is
    cost-free, always toward the currently least-used mask — so the
    decomposition objective never degrades. *)

val usage : k:int -> Coloring.t -> int array
(** Vertices per mask. *)

val imbalance : k:int -> Coloring.t -> float
(** [(max - min) / mean] of mask usage; 0 for perfectly balanced, 0 for
    empty colorings. *)

val weighted_usage : k:int -> weights:int array -> Coloring.t -> int array
(** Weight per mask (e.g. pattern area when [weights] holds node
    areas). *)

val rebalance :
  ?max_passes:int ->
  ?weights:int array ->
  k:int ->
  alpha:float ->
  Decomp_graph.t ->
  Coloring.t ->
  Coloring.t
(** Greedy zero-cost rebalancing (default 5 passes). With [weights]
    (one non-negative weight per vertex; default all 1) the pass
    balances weighted usage — pass node areas to balance pattern
    density instead of vertex counts. The returned coloring has
    identical conflict and stitch counts. *)
