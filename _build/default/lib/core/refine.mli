(** Post-assignment refinement.

    The paper's Algorithm 2 ends with a greedy per-vertex refinement
    pass; this module provides that as a standalone step plus a
    simulated-annealing variant (an "extension/future work" style
    improvement) that can escape single-move local optima. Both operate
    on a complete coloring and never return a worse one. *)

val move_delta : ws:int -> Decomp_graph.t -> Coloring.t -> int -> int -> int
(** [move_delta ~ws g colors v c]: scaled-cost change of recoloring [v]
    to [c] ([ws] = stitch weight in milli-units). Exposed for other
    cost-preserving passes (e.g. {!Balance}). *)

val local_search :
  ?max_passes:int -> k:int -> alpha:float -> Decomp_graph.t -> Coloring.t ->
  Coloring.t
(** Steepest-descent recoloring: repeatedly move any vertex to the color
    minimizing its local cost until a pass makes no improvement (or
    [max_passes], default 10, is reached). Returns a fresh array. *)

val anneal :
  ?seed:int ->
  ?iterations:int ->
  ?initial_temperature:float ->
  k:int ->
  alpha:float ->
  Decomp_graph.t ->
  Coloring.t ->
  Coloring.t
(** Simulated annealing over single-vertex recolor moves with a
    geometric cooling schedule (defaults: 20_000 iterations, T0 = 2.0
    conflicts). Deterministic in [seed]; tracks and returns the best
    coloring visited, so the result never costs more than the input. *)
