module Lp = Mpl_ilp.Lp
module Milp = Mpl_ilp.Milp

type result = { colors : int array; objective : float; optimal : bool }

let build_model ~k ~alpha (g : Decomp_graph.t) =
  let n = g.Decomp_graph.n in
  let ce = Decomp_graph.conflict_edges g in
  let se = Decomp_graph.stitch_edges g in
  let nce = List.length ce and nse = List.length se in
  let x v c = (v * k) + c in
  let z_base = n * k in
  let s_base = z_base + nce in
  let nvars = s_base + nse in
  let objective = Array.make nvars 0. in
  for e = 0 to nce - 1 do
    objective.(z_base + e) <- 1.
  done;
  for e = 0 to nse - 1 do
    objective.(s_base + e) <- alpha
  done;
  let constraints = ref [] in
  (* One color per vertex. *)
  for v = 0 to n - 1 do
    let coeffs = List.init k (fun c -> (x v c, 1.)) in
    constraints := { Lp.coeffs; rel = Lp.Eq; rhs = 1. } :: !constraints
  done;
  (* Conflict indicators: x_uc + x_vc - z_e <= 1 for every color. *)
  List.iteri
    (fun e (u, v) ->
      for c = 0 to k - 1 do
        constraints :=
          {
            Lp.coeffs = [ (x u c, 1.); (x v c, 1.); (z_base + e, -1.) ];
            rel = Lp.Le;
            rhs = 1.;
          }
          :: !constraints
      done)
    ce;
  (* Stitch indicators: x_uc - x_vc - s_e <= 0 both ways. *)
  List.iteri
    (fun e (u, v) ->
      for c = 0 to k - 1 do
        constraints :=
          {
            Lp.coeffs = [ (x u c, 1.); (x v c, -1.); (s_base + e, -1.) ];
            rel = Lp.Le;
            rhs = 0.;
          }
          :: !constraints;
        constraints :=
          {
            Lp.coeffs = [ (x v c, 1.); (x u c, -1.); (s_base + e, -1.) ];
            rel = Lp.Le;
            rhs = 0.;
          }
          :: !constraints
      done)
    se;
  let binary = Array.make nvars false in
  for v = 0 to n - 1 do
    for c = 0 to k - 1 do
      binary.(x v c) <- true
    done
  done;
  { Milp.lp = { Lp.nvars; objective; constraints = !constraints }; binary }

let extract_colors ~k n x =
  Array.init n (fun v ->
      let best = ref 0 and best_val = ref neg_infinity in
      for c = 0 to k - 1 do
        let value = x.((v * k) + c) in
        if value > !best_val then begin
          best_val := value;
          best := c
        end
      done;
      !best)

let solve ?budget ~k ~alpha (g : Decomp_graph.t) =
  let n = g.Decomp_graph.n in
  let model = build_model ~k ~alpha g in
  let fallback () =
    let inst = Bnb.instance_of_graph ~alpha g in
    Bnb.greedy ~k inst
  in
  let finish colors optimal =
    let cost = Coloring.evaluate ~alpha g colors in
    {
      colors;
      objective =
        float_of_int cost.Coloring.conflicts
        +. (alpha *. float_of_int cost.Coloring.stitches);
      optimal;
    }
  in
  match Milp.solve ?budget model with
  | Milp.Optimal (_, x) -> finish (extract_colors ~k n x) true
  | Milp.Timeout (Some (_, x)) -> finish (extract_colors ~k n x) false
  | Milp.Timeout None -> finish (fallback ()) false
  | Milp.Infeasible ->
    (* The one-hot model is always feasible; reaching this means the LP
       ran into numerical trouble. Degrade gracefully. *)
    finish (fallback ()) false
