module Rect = Mpl_geometry.Rect
module Polygon = Mpl_geometry.Polygon
module Stitch = Mpl_layout.Stitch

type t = {
  window : int;
  nx : int;
  ny : int;
  x0 : int;
  y0 : int;
  area : int array array array;
}

(* Area of [r] clipped to the window at (ix, iy). *)
let clipped_area t (r : Rect.t) ix iy =
  let wx0 = t.x0 + (ix * t.window) and wy0 = t.y0 + (iy * t.window) in
  let x0 = max r.Rect.x0 wx0 and y0 = max r.Rect.y0 wy0 in
  let x1 = min r.Rect.x1 (wx0 + t.window) and y1 = min r.Rect.y1 (wy0 + t.window) in
  if x0 < x1 && y0 < y1 then (x1 - x0) * (y1 - y0) else 0

let compute ?(max_stitches_per_feature = 3) ?min_s ~window ~k
    (layout : Mpl_layout.Layout.t) (g : Decomp_graph.t) colors =
  if window <= 0 then invalid_arg "Density.compute: window must be positive";
  let min_s =
    match min_s with
    | Some m -> m
    | None -> Mpl_layout.Layout.quadruple_min_s layout.Mpl_layout.Layout.tech
  in
  let split = Stitch.split ~max_stitches_per_feature layout ~min_s in
  let nodes = split.Stitch.nodes in
  if Array.length nodes <> g.Decomp_graph.n then
    invalid_arg "Density.compute: node count mismatch";
  let bbox =
    match Mpl_layout.Layout.bbox layout with
    | Some b -> b
    | None -> Rect.make ~x0:0 ~y0:0 ~x1:window ~y1:window
  in
  let nx = ((Rect.width bbox + window - 1) / window) + 1 in
  let ny = ((Rect.height bbox + window - 1) / window) + 1 in
  let t =
    {
      window;
      nx;
      ny;
      x0 = bbox.Rect.x0;
      y0 = bbox.Rect.y0;
      area = Array.init k (fun _ -> Array.make_matrix nx ny 0);
    }
  in
  Array.iteri
    (fun v node ->
      let mask = colors.(v) in
      if mask >= 0 && mask < k then
        List.iter
          (fun r ->
            (* Only windows the rect overlaps. *)
            let ix0 = max 0 ((r.Rect.x0 - t.x0) / window) in
            let ix1 = min (nx - 1) ((r.Rect.x1 - t.x0) / window) in
            let iy0 = max 0 ((r.Rect.y0 - t.y0) / window) in
            let iy1 = min (ny - 1) ((r.Rect.y1 - t.y0) / window) in
            for ix = ix0 to ix1 do
              for iy = iy0 to iy1 do
                t.area.(mask).(ix).(iy) <-
                  t.area.(mask).(ix).(iy) + clipped_area t r ix iy
              done
            done)
          (Polygon.rects node.Stitch.shape))
    nodes;
  t

let mask_totals t =
  Array.map
    (fun grid -> Array.fold_left (fun acc col -> acc + Array.fold_left ( + ) 0 col) 0 grid)
    t.area

let worst_window_imbalance t =
  let k = Array.length t.area in
  if k = 0 then 0.
  else begin
    let worst = ref 0. in
    let wa = float_of_int (t.window * t.window) in
    for ix = 0 to t.nx - 1 do
      for iy = 0 to t.ny - 1 do
        let mx = ref min_int and mn = ref max_int in
        for m = 0 to k - 1 do
          let a = t.area.(m).(ix).(iy) in
          if a > !mx then mx := a;
          if a < !mn then mn := a
        done;
        if !mx > 0 then begin
          let spread = float_of_int (!mx - !mn) /. wa in
          if spread > !worst then worst := spread
        end
      done
    done;
    !worst
  end

let pp_summary ppf t =
  let totals = mask_totals t in
  Format.fprintf ppf "@[<h>density %dx%d windows of %dnm; mask areas:" t.nx
    t.ny t.window;
  Array.iteri (fun m a -> Format.fprintf ppf " m%d=%d" m a) totals;
  Format.fprintf ppf "; worst window spread %.4f@]"
    (worst_window_imbalance t)
