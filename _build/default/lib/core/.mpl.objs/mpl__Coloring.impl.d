lib/core/coloring.ml: Array Decomp_graph Float
