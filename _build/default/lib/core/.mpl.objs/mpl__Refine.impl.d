lib/core/refine.ml: Array Coloring Decomp_graph Mpl_util
