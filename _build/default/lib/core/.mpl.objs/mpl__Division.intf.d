lib/core/division.mli: Decomp_graph
