lib/core/decomposer.mli: Coloring Decomp_graph Division Format Mpl_layout Mpl_numeric
