lib/core/decomposer.ml: Array Balance Bnb Coloring Decomp_graph Division Exact_color Format Ilp_color Linear_color Mpl_numeric Mpl_util Refine Sdp_color
