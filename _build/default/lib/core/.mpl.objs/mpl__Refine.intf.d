lib/core/refine.mli: Coloring Decomp_graph
