lib/core/division.ml: Array Coloring Decomp_graph Hashtbl List Mpl_graph Queue
