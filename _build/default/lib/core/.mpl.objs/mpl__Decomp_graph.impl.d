lib/core/decomp_graph.ml: Array Format Hashtbl List Mpl_geometry Mpl_graph Mpl_layout
