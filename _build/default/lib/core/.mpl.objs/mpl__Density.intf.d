lib/core/density.mli: Coloring Decomp_graph Format Mpl_layout
