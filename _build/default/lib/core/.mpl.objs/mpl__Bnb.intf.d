lib/core/bnb.mli: Decomp_graph Mpl_util
