lib/core/exact_color.mli: Bnb Decomp_graph Mpl_util
