lib/core/lower_bound.ml: Array Decomp_graph Fun Hashtbl List Mpl_graph
