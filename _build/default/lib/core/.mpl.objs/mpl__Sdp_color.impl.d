lib/core/sdp_color.ml: Array Bnb Coloring Decomp_graph Hashtbl List Mpl_graph Mpl_numeric
