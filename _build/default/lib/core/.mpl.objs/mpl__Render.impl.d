lib/core/render.ml: Array Buffer Decomp_graph Fun List Mpl_geometry Mpl_layout Printf
