lib/core/linear_color.ml: Array Coloring Decomp_graph Hashtbl List Queue
