lib/core/lower_bound.mli: Decomp_graph Mpl_graph
