lib/core/render.mli: Coloring Decomp_graph Mpl_layout
