lib/core/ilp_color.ml: Array Bnb Coloring Decomp_graph List Mpl_ilp
