lib/core/coloring.mli: Decomp_graph
