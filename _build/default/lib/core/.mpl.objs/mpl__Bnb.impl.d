lib/core/bnb.ml: Array Coloring Decomp_graph List Mpl_util Queue
