lib/core/decomp_graph.mli: Format Mpl_graph Mpl_layout
