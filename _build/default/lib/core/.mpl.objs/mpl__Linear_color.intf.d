lib/core/linear_color.mli: Decomp_graph
