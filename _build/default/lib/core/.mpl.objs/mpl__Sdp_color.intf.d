lib/core/sdp_color.mli: Decomp_graph Mpl_numeric Mpl_util
