lib/core/ilp_color.mli: Decomp_graph Mpl_ilp Mpl_util
