lib/core/balance.mli: Coloring Decomp_graph
