lib/core/exact_color.ml: Bnb
