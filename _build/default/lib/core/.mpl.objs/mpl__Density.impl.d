lib/core/density.ml: Array Decomp_graph Format List Mpl_geometry Mpl_layout
