lib/core/balance.ml: Array Coloring Decomp_graph Refine
