module Ugraph = Mpl_graph.Ugraph
module Connectivity = Mpl_graph.Connectivity

let excess_pairs m k =
  if m <= k || k <= 0 then 0
  else begin
    (* Even partition: r classes of size q+1 and k-r of size q. *)
    let q = m / k and r = m mod k in
    let pairs s = s * (s - 1) / 2 in
    (r * pairs (q + 1)) + ((k - r) * pairs q)
  end

(* Max clique by branch-and-bound: candidates ordered by degree; the
   bound is |current| + |candidates| (a greedy-coloring bound would be
   tighter but degree-sorted candidate pruning is enough at
   post-division component sizes). *)
let max_clique ?(node_cap = 500_000) g =
  let n = Ugraph.n g in
  let adj =
    Array.init n (fun v ->
        let s = Hashtbl.create 8 in
        List.iter (fun u -> Hashtbl.replace s u ()) (Ugraph.neighbors g v);
        s)
  in
  let best = ref [] in
  let nodes = ref 0 in
  let rec extend current candidates =
    incr nodes;
    if !nodes <= node_cap then begin
      if List.length current > List.length !best then best := current;
      let rec loop = function
        | [] -> ()
        | v :: rest ->
          if List.length current + 1 + List.length rest > List.length !best
          then begin
            let cand' = List.filter (fun u -> Hashtbl.mem adj.(v) u) rest in
            extend (v :: current) cand';
            loop rest
          end
      in
      loop candidates
    end
  in
  let order = List.init n Fun.id in
  let order =
    List.sort (fun a b -> compare (Ugraph.degree g b) (Ugraph.degree g a)) order
  in
  extend [] order;
  let a = Array.of_list !best in
  Array.sort compare a;
  a

let conflict_lower_bound ~k (g : Decomp_graph.t) =
  let cg = Decomp_graph.conflict_graph g in
  let comps = Connectivity.components cg in
  let total = ref 0 in
  Array.iter
    (fun comp ->
      if Array.length comp > k then begin
        (* Repeatedly take a maximum clique, count its excess, and remove
           it; disjoint cliques give independent (additive) bounds. *)
        let sub, _ = Ugraph.induced cg comp in
        let remaining = ref sub in
        let continue = ref true in
        while !continue do
          let clique = max_clique !remaining in
          if Array.length clique <= k then continue := false
          else begin
            total := !total + excess_pairs (Array.length clique) k;
            let in_clique = Hashtbl.create 8 in
            Array.iter (fun v -> Hashtbl.replace in_clique v ()) clique;
            let keep =
              Array.of_list
                (List.filter
                   (fun i -> not (Hashtbl.mem in_clique i))
                   (List.init (Ugraph.n !remaining) Fun.id))
            in
            if Array.length keep <= k then continue := false
            else begin
              let sub', _ = Ugraph.induced !remaining keep in
              remaining := sub'
            end
          end
        done
      end)
    comps;
  !total
