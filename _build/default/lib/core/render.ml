module Rect = Mpl_geometry.Rect
module Polygon = Mpl_geometry.Polygon
module Stitch = Mpl_layout.Stitch

let mask_palette =
  [|
    "#4477aa"; "#ee6677"; "#228833"; "#ccbb44";
    "#66ccee"; "#aa3377"; "#bbbbbb"; "#000000";
  |]

let center_of (p : Polygon.t) = Rect.center (Polygon.bbox p)

let to_svg ?(max_stitches_per_feature = 3) ?min_s (layout : Mpl_layout.Layout.t)
    (g : Decomp_graph.t) colors =
  let min_s =
    match min_s with
    | Some m -> m
    | None -> Mpl_layout.Layout.quadruple_min_s layout.Mpl_layout.Layout.tech
  in
  let split = Stitch.split ~max_stitches_per_feature layout ~min_s in
  let nodes = split.Stitch.nodes in
  if Array.length nodes <> g.Decomp_graph.n then
    invalid_arg
      "Render.to_svg: node count mismatch (wrong min_s or stitch limit?)";
  let buf = Buffer.create 65536 in
  let bbox =
    match Mpl_layout.Layout.bbox layout with
    | Some b -> Rect.inflate b 40
    | None -> Rect.make ~x0:0 ~y0:0 ~x1:100 ~y1:100
  in
  Buffer.add_string buf
    (Printf.sprintf
       "<svg xmlns=\"http://www.w3.org/2000/svg\" viewBox=\"%d %d %d %d\">\n"
       bbox.Rect.x0 bbox.Rect.y0 (Rect.width bbox) (Rect.height bbox));
  Buffer.add_string buf
    (Printf.sprintf
       "<rect x=\"%d\" y=\"%d\" width=\"%d\" height=\"%d\" fill=\"#ffffff\"/>\n"
       bbox.Rect.x0 bbox.Rect.y0 (Rect.width bbox) (Rect.height bbox));
  (* Feature geometry, filled by mask. *)
  Array.iteri
    (fun v node ->
      let color =
        let c = colors.(v) in
        if c >= 0 && c < Array.length mask_palette then mask_palette.(c)
        else "#888888"
      in
      List.iter
        (fun r ->
          Buffer.add_string buf
            (Printf.sprintf
               "<rect x=\"%d\" y=\"%d\" width=\"%d\" height=\"%d\" \
                fill=\"%s\" stroke=\"#333333\" stroke-width=\"1\"/>\n"
               r.Rect.x0 r.Rect.y0 (Rect.width r) (Rect.height r) color))
        (Polygon.rects node.Stitch.shape))
    nodes;
  (* Paid stitches: dashed dark links between segment centers. *)
  List.iter
    (fun (u, v) ->
      if colors.(u) >= 0 && colors.(v) >= 0 && colors.(u) <> colors.(v) then begin
        let xu, yu = center_of nodes.(u).Stitch.shape in
        let xv, yv = center_of nodes.(v).Stitch.shape in
        Buffer.add_string buf
          (Printf.sprintf
             "<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" \
              stroke=\"#222222\" stroke-width=\"3\" \
              stroke-dasharray=\"6,4\"/>\n"
             xu yu xv yv)
      end)
    (Decomp_graph.stitch_edges g);
  (* Unresolved conflicts: thick red links. *)
  List.iter
    (fun (u, v) ->
      if colors.(u) >= 0 && colors.(u) = colors.(v) then begin
        let xu, yu = center_of nodes.(u).Stitch.shape in
        let xv, yv = center_of nodes.(v).Stitch.shape in
        Buffer.add_string buf
          (Printf.sprintf
             "<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" \
              stroke=\"#dd0000\" stroke-width=\"4\"/>\n"
             xu yu xv yv)
      end)
    (Decomp_graph.conflict_edges g);
  Buffer.add_string buf "</svg>\n";
  Buffer.contents buf

let save ?max_stitches_per_feature ?min_s layout g colors path =
  let svg = to_svg ?max_stitches_per_feature ?min_s layout g colors in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc svg)
