(** Linear color assignment (paper Algorithm 2, Section 3.2).

    Three stages, all linear in the vertex count:

    + iterative removal of non-critical vertices — conflict degree < k
      and stitch degree < 2 — onto a stack;
    + greedy coloring of the remaining core under three vertex orders
      processed simultaneously (SEQUENCE, DEGREE, 3ROUND — peer
      selection), each order guided by the color-friendly rule
      (Definition 2): friendly neighbors pull a vertex toward their own
      color;
    + greedy post-refinement, then stack pop-up where every popped vertex
      always has a conflict-free color available.

    The 3ROUND order is not spelled out in the paper; we implement it as
    three rounds — vertices of conflict degree >= k, then their
    neighbors, then the rest (see DESIGN.md). *)

val solve : k:int -> alpha:float -> Decomp_graph.t -> int array

val friendly_bonus : int
(** Milli-unit score bonus per same-colored color-friendly neighbor
    (exposed for the ablation bench). *)

val solve_no_friendly : k:int -> alpha:float -> Decomp_graph.t -> int array
(** Ablation: the same algorithm with the color-friendly rule turned
    off. *)
