let solve ?node_cap ?budget ~k ~alpha g =
  let inst = Bnb.instance_of_graph ~alpha g in
  Bnb.solve ?node_cap ?budget ~k inst
