(** ILP color assignment (the paper's exact baseline, extended from the
    triple-patterning formulation of ref. [4]).

    One-hot encoding: binary [x_vc] selects vertex v's color; a
    continuous conflict indicator [z_e >= x_uc + x_vc - 1] counts
    monochromatic conflict edges and a stitch indicator
    [s_e >= x_uc - x_vc] counts bichromatic stitch edges. The model is
    solved with the in-repo branch-and-bound MILP solver; see DESIGN.md
    for the GUROBI substitution note. *)

type result = {
  colors : int array;
  objective : float;  (** conflict# + alpha * stitch# of [colors] *)
  optimal : bool;  (** false when the budget expired first *)
}

val solve :
  ?budget:Mpl_util.Timer.budget ->
  k:int ->
  alpha:float ->
  Decomp_graph.t ->
  result
(** On timeout without incumbent the greedy fallback coloring is
    returned with [optimal = false]. *)

val build_model : k:int -> alpha:float -> Decomp_graph.t -> Mpl_ilp.Milp.t
(** The raw MILP model (exposed for tests). Variable layout: [x_vc] at
    index [v*k + c], then one [z] per conflict edge, then one [s] per
    stitch edge. *)
