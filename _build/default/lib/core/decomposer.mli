(** End-to-end layout decomposition (paper Fig. 2): decomposition-graph
    construction, graph division, per-piece color assignment, and cost
    reporting. *)

type algorithm =
  | Ilp  (** exact baseline via the MILP encoding (budgeted) *)
  | Exact  (** exact baseline via specialized branch-and-bound (budgeted) *)
  | Sdp_backtrack  (** paper Algorithm 1 *)
  | Sdp_greedy
  | Linear  (** paper Algorithm 2 *)

val algorithm_name : algorithm -> string

type post_pass =
  | No_post
  | Local_search  (** steepest-descent recoloring ({!Refine}) *)
  | Anneal of int  (** simulated annealing with the given iterations *)

type params = {
  k : int;  (** number of masks; 4 = QPLD *)
  alpha : float;  (** stitch weight, paper: 0.1 *)
  tth : float;  (** SDP merge threshold, paper: 0.9 *)
  sdp_options : Mpl_numeric.Sdp.options;
  solver_budget_s : float;
      (** total wall-clock budget for exact solvers (Ilp / Exact) across
          all components; <= 0 means unlimited *)
  node_cap : int;  (** branch-and-bound node cap per piece *)
  stages : Division.stages;
  post : post_pass;  (** optional global refinement after division *)
  balance : bool;  (** cost-free mask-density rebalancing ({!Balance}) *)
}

val default_params : params
(** QPLD defaults: k = 4, alpha = 0.1, tth = 0.9, 60 s exact budget,
    full division pipeline. *)

type report = {
  algorithm : algorithm;
  params : params;
  cost : Coloring.cost;
  colors : Coloring.t;
  elapsed_s : float;  (** color-assignment time (graph already built) *)
  timed_out : bool;  (** exact solver hit its budget: treat as N/A *)
  division : Division.stats;
}

val assign : ?params:params -> algorithm -> Decomp_graph.t -> report
(** Run division + color assignment on a prebuilt decomposition graph. *)

val decompose :
  ?params:params ->
  ?max_stitches_per_feature:int ->
  min_s:int ->
  algorithm ->
  Mpl_layout.Layout.t ->
  Decomp_graph.t * report
(** Build the decomposition graph from the layout, then [assign]. *)

val pp_report : Format.formatter -> report -> unit
