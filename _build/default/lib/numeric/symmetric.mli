(** Dense symmetric-matrix kernels for the projected SDP solver.

    Matrices are [float array array] of shape n x n; symmetry is the
    caller's invariant. Sizes here are post-division component sizes
    (tens of vertices), so O(n^3) cyclic Jacobi is the right tool. *)

val eigh : float array array -> float array * float array array
(** [eigh a] returns [(w, v)] with eigenvalues [w] and orthonormal
    eigenvectors as the COLUMNS of [v] ([v.(i).(j)] is component i of
    eigenvector j), such that [a = v diag(w) v^T]. [a] is not modified. *)

val project_psd : float array array -> float array array
(** Nearest (Frobenius) positive-semidefinite matrix: negative
    eigenvalues clipped to zero. *)

val frobenius_distance : float array array -> float array array -> float
