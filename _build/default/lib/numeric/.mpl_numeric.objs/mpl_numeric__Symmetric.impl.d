lib/numeric/symmetric.ml: Array
