lib/numeric/vec.ml: Array Mpl_util
