lib/numeric/symmetric.mli:
