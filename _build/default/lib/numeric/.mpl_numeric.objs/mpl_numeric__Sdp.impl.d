lib/numeric/sdp.ml: Array List Mpl_util Symmetric Vec
