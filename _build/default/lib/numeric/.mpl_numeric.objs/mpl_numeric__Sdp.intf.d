lib/numeric/sdp.mli:
