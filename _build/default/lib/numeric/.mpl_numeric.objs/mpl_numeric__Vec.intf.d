lib/numeric/vec.mli: Mpl_util
