type t = float array

let zero n = Array.make n 0.

let copy = Array.copy

let dot a b =
  let s = ref 0. in
  for i = 0 to Array.length a - 1 do
    s := !s +. (a.(i) *. b.(i))
  done;
  !s

let norm a = sqrt (dot a a)

let axpy ~alpha x y =
  for i = 0 to Array.length x - 1 do
    y.(i) <- (alpha *. x.(i)) +. y.(i)
  done

let scale c a =
  for i = 0 to Array.length a - 1 do
    a.(i) <- c *. a.(i)
  done

let normalize a =
  let n = norm a in
  if n < 1e-12 then begin
    Array.fill a 0 (Array.length a) 0.;
    a.(0) <- 1.
  end
  else scale (1. /. n) a

let random_unit rng r =
  let v = Array.init r (fun _ -> Mpl_util.Rng.float rng 2.0 -. 1.0) in
  normalize v;
  v
