type t = { parent : int array; weight : int array }

let build g =
  let n = Ugraph.n g in
  let parent = Array.make n 0 in
  let weight = Array.make n 0 in
  if n > 1 then begin
    let net = Maxflow.of_ugraph g in
    for i = 1 to n - 1 do
      let f = Maxflow.max_flow net ~s:i ~t:parent.(i) in
      weight.(i) <- f;
      let side = Maxflow.min_cut_side net ~s:i in
      let on_side = Array.make n false in
      Array.iter (fun v -> on_side.(v) <- true) side;
      for j = i + 1 to n - 1 do
        if on_side.(j) && parent.(j) = parent.(i) then parent.(j) <- i
      done
    done
  end;
  { parent; weight }

let n t = Array.length t.parent

let tree_edges t =
  Array.init
    (Array.length t.parent - 1)
    (fun k ->
      let v = k + 1 in
      (v, t.parent.(v), t.weight.(v)))

let min_cut_value t u v =
  if u = v then invalid_arg "Gomory_hu.min_cut_value: u = v";
  let n = Array.length t.parent in
  let depth = Array.make n (-1) in
  let rec d x = if x = 0 then 0 else if depth.(x) >= 0 then depth.(x) else begin
    let dx = 1 + d t.parent.(x) in
    depth.(x) <- dx;
    dx
  end in
  depth.(0) <- 0;
  let rec walk a b acc =
    if a = b then acc
    else if d a >= d b then walk t.parent.(a) b (min acc t.weight.(a))
    else walk a t.parent.(b) (min acc t.weight.(b))
  in
  walk u v max_int

let components_with_min_weight t w =
  let n = Array.length t.parent in
  let dsu = Dsu.create n in
  for v = 1 to n - 1 do
    if t.weight.(v) >= w then ignore (Dsu.union dsu v t.parent.(v))
  done;
  let groups = Dsu.groups dsu in
  Array.map Array.of_list groups
