(** Biconnected (2-vertex-connected) components.

    Splitting the decomposition graph at articulation vertices lets each
    block be colored independently: the shared cut vertex has one color in
    each block, and a color permutation aligns them without changing
    either block's internal cost. *)

val articulation_points : Ugraph.t -> bool array
(** [articulation_points g] flags every cut vertex. *)

val blocks : Ugraph.t -> int array list
(** The biconnected components (blocks) of the graph, each as the sorted
    array of its vertices. An articulation vertex appears in every block
    it joins; bridge edges form 2-vertex blocks; isolated vertices form
    singleton blocks. *)
