(** Connected components and breadth-first search. *)

val components : Ugraph.t -> int array array
(** The connected components, each an ascending array of vertices. *)

val component_of : Ugraph.t -> int -> int array
(** Vertices reachable from the given source (ascending). *)

val labels : Ugraph.t -> int array * int
(** [labels g] is [(lbl, k)]: [lbl.(v)] is the component index of [v]
    in [0..k-1]. *)

val is_connected : Ugraph.t -> bool
