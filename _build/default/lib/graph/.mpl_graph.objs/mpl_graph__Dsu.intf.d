lib/graph/dsu.mli:
