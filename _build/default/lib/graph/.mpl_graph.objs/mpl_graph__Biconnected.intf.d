lib/graph/biconnected.mli: Ugraph
