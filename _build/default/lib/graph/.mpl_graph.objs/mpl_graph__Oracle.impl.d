lib/graph/oracle.ml: Array List Ugraph
