lib/graph/maxflow.mli: Ugraph
