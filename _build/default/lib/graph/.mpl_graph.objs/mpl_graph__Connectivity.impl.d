lib/graph/connectivity.ml: Array List Queue Ugraph
