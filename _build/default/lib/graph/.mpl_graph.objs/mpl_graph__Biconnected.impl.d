lib/graph/biconnected.ml: Array Hashtbl List Ugraph
