lib/graph/gomory_hu.mli: Ugraph
