lib/graph/ugraph.mli: Format
