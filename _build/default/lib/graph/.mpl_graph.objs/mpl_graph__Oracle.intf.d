lib/graph/oracle.mli: Ugraph
