lib/graph/gomory_hu.ml: Array Dsu Maxflow Ugraph
