lib/graph/dsu.ml: Array Hashtbl
