(** Brute-force reference implementations used only by the test suite to
    validate the real algorithms on small random graphs. *)

val min_st_cut : Ugraph.t -> s:int -> t:int -> int
(** Exact minimum s-t edge cut by subset enumeration. Only usable for
    graphs with at most ~16 vertices. *)

val is_articulation : Ugraph.t -> int -> bool
(** Does deleting the vertex increase the number of connected components
    among the remaining vertices? *)

val chromatic_cost : Ugraph.t -> k:int -> int
(** Minimum number of monochromatic edges over all k-colorings, by
    exhaustive enumeration. Only usable for at most ~12 vertices. *)
