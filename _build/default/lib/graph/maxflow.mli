(** Dinic's blocking-flow maximum-flow algorithm (paper ref. [22]).

    The GH-tree construction needs many unit-capacity s-t flows on the
    same undirected graph, so the network is built once and reset between
    queries. *)

type t

val of_ugraph : Ugraph.t -> t
(** Unit-capacity undirected network with one arc pair per edge. *)

val create : int -> t
(** Empty network on [n] vertices (for weighted use). *)

val add_edge : t -> int -> int -> cap:int -> unit
(** Add an undirected edge with capacity [cap] in both directions. *)

val max_flow : t -> s:int -> t:int -> int
(** Maximum flow value between two distinct vertices. Resets any previous
    flow first. *)

val min_cut_side : t -> s:int -> int array
(** After [max_flow], the source-side vertex set of a minimum cut
    (vertices reachable from [s] in the residual network), ascending. *)
