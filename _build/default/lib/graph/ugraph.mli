(** Simple undirected graphs on vertices [0 .. n-1].

    This is the shared substrate for the division pipeline: adjacency is
    stored as growable lists during construction and can be frozen into
    arrays for traversal-heavy algorithms. Parallel edges are collapsed;
    self-loops are rejected. *)

type t

val create : int -> t
(** [create n] is the empty graph on [n] vertices. *)

val n : t -> int
(** Vertex count. *)

val add_edge : t -> int -> int -> unit
(** Add the undirected edge. Ignores duplicates; raises
    [Invalid_argument] on self-loops or out-of-range endpoints. *)

val mem_edge : t -> int -> int -> bool
val degree : t -> int -> int

val neighbors : t -> int -> int list
(** Neighbor list (unsorted, no duplicates). *)

val edges : t -> (int * int) list
(** Every edge once, as [(u, v)] with [u < v]. *)

val edge_count : t -> int

val of_edges : int -> (int * int) list -> t
(** Graph with the given vertex count and edges. *)

val induced : t -> int array -> t * int array
(** [induced g vs] is the subgraph induced by the vertex set [vs]
    (which must not contain duplicates), relabeled to [0..|vs|-1] in the
    order given, together with the map from new index to original
    vertex. *)

val pp : Format.formatter -> t -> unit
