let min_st_cut g ~s ~t =
  let n = Ugraph.n g in
  if n > 20 then invalid_arg "Oracle.min_st_cut: graph too large";
  let edges = Ugraph.edges g in
  let best = ref max_int in
  for mask = 0 to (1 lsl n) - 1 do
    if mask land (1 lsl s) <> 0 && mask land (1 lsl t) = 0 then begin
      let crossing =
        List.fold_left
          (fun acc (u, v) ->
            let su = mask land (1 lsl u) <> 0
            and sv = mask land (1 lsl v) <> 0 in
            if su <> sv then acc + 1 else acc)
          0 edges
      in
      if crossing < !best then best := crossing
    end
  done;
  !best

(* Components of the graph restricted to V \ {skip} (skip = -1 for none). *)
let count_components g skip =
  let n = Ugraph.n g in
  let seen = Array.make n false in
  let comps = ref 0 in
  for s = 0 to n - 1 do
    if s <> skip && not seen.(s) then begin
      incr comps;
      let stack = ref [ s ] in
      seen.(s) <- true;
      while !stack <> [] do
        match !stack with
        | [] -> ()
        | u :: rest ->
          stack := rest;
          List.iter
            (fun w ->
              if w <> skip && not seen.(w) then begin
                seen.(w) <- true;
                stack := w :: !stack
              end)
            (Ugraph.neighbors g u)
      done
    end
  done;
  !comps

(* comps(G - v) = comps(G) - 1 + pieces, where pieces is the number of
   components v's former neighborhood splits into; v is an articulation
   point iff pieces >= 2, i.e. iff comps(G - v) > comps(G). *)
let is_articulation g v =
  Ugraph.degree g v > 0 && count_components g v > count_components g (-1)

let chromatic_cost g ~k =
  let n = Ugraph.n g in
  if n > 14 then invalid_arg "Oracle.chromatic_cost: graph too large";
  let edges = Ugraph.edges g in
  let colors = Array.make n 0 in
  let best = ref max_int in
  let rec assign i =
    if i = n then begin
      let cost =
        List.fold_left
          (fun acc (u, v) -> if colors.(u) = colors.(v) then acc + 1 else acc)
          0 edges
      in
      if cost < !best then best := cost
    end
    else
      for c = 0 to k - 1 do
        colors.(i) <- c;
        assign (i + 1)
      done
  in
  assign 0;
  !best
