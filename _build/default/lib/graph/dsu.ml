type t = { parent : int array; rank : int array; mutable count : int }

let create n =
  { parent = Array.init n (fun i -> i); rank = Array.make n 0; count = n }

let rec find t i =
  let p = t.parent.(i) in
  if p = i then i
  else begin
    let root = find t p in
    t.parent.(i) <- root;
    root
  end

let union t a b =
  let ra = find t a and rb = find t b in
  if ra = rb then false
  else begin
    let ra, rb =
      if t.rank.(ra) < t.rank.(rb) then (rb, ra) else (ra, rb)
    in
    t.parent.(rb) <- ra;
    if t.rank.(ra) = t.rank.(rb) then t.rank.(ra) <- t.rank.(ra) + 1;
    t.count <- t.count - 1;
    true
  end

let same t a b = find t a = find t b

let groups t =
  let n = Array.length t.parent in
  let index = Hashtbl.create 16 in
  let next = ref 0 in
  let buckets = Array.make t.count [] in
  for i = n - 1 downto 0 do
    let r = find t i in
    let g =
      match Hashtbl.find_opt index r with
      | Some g -> g
      | None ->
        let g = !next in
        incr next;
        Hashtbl.add index r g;
        g
    in
    buckets.(g) <- i :: buckets.(g)
  done;
  buckets

let count t = t.count
