type t = {
  n : int;
  adj : (int, unit) Hashtbl.t array;
  mutable edge_count : int;
}

let create n =
  { n; adj = Array.init n (fun _ -> Hashtbl.create 4); edge_count = 0 }

let n t = t.n

let check t v =
  if v < 0 || v >= t.n then invalid_arg "Ugraph: vertex out of range"

let mem_edge t u v =
  check t u;
  check t v;
  Hashtbl.mem t.adj.(u) v

let add_edge t u v =
  check t u;
  check t v;
  if u = v then invalid_arg "Ugraph.add_edge: self-loop";
  if not (Hashtbl.mem t.adj.(u) v) then begin
    Hashtbl.add t.adj.(u) v ();
    Hashtbl.add t.adj.(v) u ();
    t.edge_count <- t.edge_count + 1
  end

let degree t v =
  check t v;
  Hashtbl.length t.adj.(v)

let neighbors t v =
  check t v;
  Hashtbl.fold (fun u () acc -> u :: acc) t.adj.(v) []

let edges t =
  let out = ref [] in
  for u = 0 to t.n - 1 do
    Hashtbl.iter (fun v () -> if u < v then out := (u, v) :: !out) t.adj.(u)
  done;
  !out

let edge_count t = t.edge_count

let of_edges n es =
  let g = create n in
  List.iter (fun (u, v) -> add_edge g u v) es;
  g

let induced t vs =
  let m = Array.length vs in
  let back = Array.copy vs in
  let fwd = Hashtbl.create m in
  Array.iteri (fun i v -> Hashtbl.add fwd v i) vs;
  let g = create m in
  Array.iteri
    (fun i v ->
      Hashtbl.iter
        (fun u () ->
          match Hashtbl.find_opt fwd u with
          | Some j when j > i -> add_edge g i j
          | Some _ | None -> ())
        t.adj.(v))
    vs;
  (g, back)

let pp ppf t =
  Format.fprintf ppf "@[<h>graph(n=%d, m=%d)@]" t.n t.edge_count
