(** Gomory-Hu tree by Gusfield's algorithm (paper refs. [20, 21]).

    The tree encodes all-pairs minimum-cut *values* of a connected
    undirected unit-capacity graph with n-1 max-flow computations: the
    minimum cut between u and v equals the smallest edge weight on the
    tree path between them. Note that Gusfield's variant is
    flow-equivalent only — the bipartition induced by a tree edge is not
    necessarily a minimum cut, so consumers that need an actual cut must
    re-run one max-flow (see [Mpl.Division]). *)

type t

val build : Ugraph.t -> t
(** Build the tree. The graph must be connected (verify with
    [Connectivity.is_connected]); otherwise results are undefined. *)

val n : t -> int

val tree_edges : t -> (int * int * int) array
(** [(v, parent, weight)] for every non-root vertex [v]; the root is
    vertex 0. *)

val min_cut_value : t -> int -> int -> int
(** Minimum cut value between two distinct vertices, read off the tree
    path. *)

val components_with_min_weight : t -> int -> int array array
(** [components_with_min_weight t w] removes every tree edge of weight
    < [w] and returns the resulting vertex groups (paper Algorithm 3,
    line 2-3). *)
