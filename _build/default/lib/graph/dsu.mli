(** Disjoint-set union (union-find) with path compression and union by
    rank. Used for independent-component computation and for merging SDP
    pairs into the merged graph of paper Algorithm 1. *)

type t

val create : int -> t
(** [create n] makes [n] singleton sets named [0 .. n-1]. *)

val find : t -> int -> int
(** Canonical representative. *)

val union : t -> int -> int -> bool
(** Merge the two sets; returns [false] if they were already one. *)

val same : t -> int -> int -> bool
(** Are the two elements in the same set? *)

val groups : t -> int list array
(** All current sets, each as a list of members; indexed arbitrarily but
    deterministically. *)

val count : t -> int
(** Number of distinct sets. *)
