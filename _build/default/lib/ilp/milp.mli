(** 0/1 mixed-integer programming by LP-relaxation branch-and-bound.

    This is the exact "ILP" engine of the paper's Table 1 baseline. A
    depth-first search branches on the most fractional binary variable;
    each node's LP relaxation (with branched variables substituted out)
    gives the lower bound. A wall-clock budget reproduces the paper's
    ">3600 s -> N/A" behaviour on large instances. *)

type t = {
  lp : Lp.t;  (** relaxation; binaries additionally constrained to 0/1 *)
  binary : bool array;  (** length [lp.nvars]; non-binary vars stay continuous *)
}

type outcome =
  | Optimal of float * float array
  | Infeasible
  | Timeout of (float * float array) option
      (** budget exhausted; carries the incumbent if one was found *)

val solve : ?budget:Mpl_util.Timer.budget -> t -> outcome
