lib/ilp/milp.mli: Lp Mpl_util
