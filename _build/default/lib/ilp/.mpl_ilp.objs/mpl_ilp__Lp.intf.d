lib/ilp/lp.mli:
