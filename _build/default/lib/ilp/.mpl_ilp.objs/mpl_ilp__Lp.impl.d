lib/ilp/lp.ml: Array List
