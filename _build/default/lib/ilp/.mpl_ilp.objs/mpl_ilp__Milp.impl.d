lib/ilp/milp.ml: Array Float List Lp Mpl_util
