type relation = Le | Ge | Eq

type constr = { coeffs : (int * float) list; rel : relation; rhs : float }

type t = { nvars : int; objective : float array; constraints : constr list }

type result = Optimal of float * float array | Infeasible | Unbounded

let eps = 1e-9

(* Tableau layout: columns are [structural | slack/surplus | artificial],
   plus a separate rhs column. [basis.(row)] names the basic column of
   each row. The reduced-cost row is recomputed from the cost vector on
   every pricing step; at these sizes the O(m n) recomputation is cheaper
   than keeping the row consistent through pivots and avoids drift. *)
type tableau = {
  m : int;
  ncols : int;
  a : float array array; (* m x ncols *)
  b : float array; (* m *)
  basis : int array; (* m *)
  art_start : int; (* first artificial column *)
}

let pivot tab ~row ~col =
  let arow = tab.a.(row) in
  let p = arow.(col) in
  for j = 0 to tab.ncols - 1 do
    arow.(j) <- arow.(j) /. p
  done;
  tab.b.(row) <- tab.b.(row) /. p;
  for i = 0 to tab.m - 1 do
    if i <> row then begin
      let f = tab.a.(i).(col) in
      if abs_float f > 0. then begin
        let airow = tab.a.(i) in
        for j = 0 to tab.ncols - 1 do
          airow.(j) <- airow.(j) -. (f *. arow.(j))
        done;
        tab.b.(i) <- tab.b.(i) -. (f *. tab.b.(row))
      end
    end
  done;
  tab.basis.(row) <- col

(* Reduced costs r_j = c_j - c_B . (column j of the tableau). *)
let reduced_costs tab cost =
  let r = Array.copy cost in
  for i = 0 to tab.m - 1 do
    let cb = cost.(tab.basis.(i)) in
    if cb <> 0. then begin
      let arow = tab.a.(i) in
      for j = 0 to tab.ncols - 1 do
        r.(j) <- r.(j) -. (cb *. arow.(j))
      done
    end
  done;
  r

let objective_value tab cost =
  let z = ref 0. in
  for i = 0 to tab.m - 1 do
    z := !z +. (cost.(tab.basis.(i)) *. tab.b.(i))
  done;
  !z

(* Minimize cost over the tableau; allowed.(j) = false forbids entering.
   Returns `Opt or `Unbounded. Bland's rule (lowest eligible index) kicks
   in after a pivot budget to break potential cycles. *)
let optimize tab cost allowed =
  let max_iters = 200 + (50 * (tab.ncols + tab.m)) in
  let rec loop iter =
    if iter > max_iters then `Opt (* numerically stuck: accept current *)
    else begin
      let r = reduced_costs tab cost in
      let bland = iter > max_iters / 2 in
      let enter = ref (-1) in
      (* Dantzig pricing normally, Bland's rule when cycling is a risk. *)
      for j = 0 to tab.ncols - 1 do
        if allowed.(j) && r.(j) < -.eps then
          if bland then begin
            if !enter < 0 then enter := j
          end
          else if !enter < 0 || r.(j) < r.(!enter) then enter := j
      done;
      if !enter < 0 then `Opt
      else begin
        let col = !enter in
        let leave = ref (-1) in
        let best_ratio = ref infinity in
        for i = 0 to tab.m - 1 do
          let aij = tab.a.(i).(col) in
          if aij > eps then begin
            let ratio = tab.b.(i) /. aij in
            if
              ratio < !best_ratio -. eps
              || (bland
                 && ratio < !best_ratio +. eps
                 && !leave >= 0
                 && tab.basis.(i) < tab.basis.(!leave))
            then begin
              best_ratio := ratio;
              leave := i
            end
          end
        done;
        if !leave < 0 then `Unbounded
        else begin
          pivot tab ~row:!leave ~col;
          loop (iter + 1)
        end
      end
    end
  in
  loop 0

let solve lp =
  let constrs = Array.of_list lp.constraints in
  let m = Array.length constrs in
  if m = 0 then
    (* No constraints: optimum is 0 unless some objective coefficient is
       negative (then unbounded below with x >= 0). *)
    if Array.exists (fun c -> c < -.eps) lp.objective then Unbounded
    else Optimal (0., Array.make lp.nvars 0.)
  else begin
    (* Count extra columns: one slack/surplus per inequality, one
       artificial per Ge/Eq row (after sign normalization). *)
    let rows =
      Array.map
        (fun c ->
          if c.rhs < 0. then
            ( List.map (fun (v, x) -> (v, -.x)) c.coeffs,
              (match c.rel with Le -> Ge | Ge -> Le | Eq -> Eq),
              -.c.rhs )
          else (c.coeffs, c.rel, c.rhs))
        constrs
    in
    let n_slack = Array.fold_left (fun acc (_, rel, _) -> match rel with Eq -> acc | Le | Ge -> acc + 1) 0 rows in
    let n_art = Array.fold_left (fun acc (_, rel, _) -> match rel with Le -> acc | Ge | Eq -> acc + 1) 0 rows in
    let art_start = lp.nvars + n_slack in
    let ncols = art_start + n_art in
    let a = Array.make_matrix m ncols 0. in
    let b = Array.make m 0. in
    let basis = Array.make m (-1) in
    let next_slack = ref lp.nvars in
    let next_art = ref art_start in
    Array.iteri
      (fun i (coeffs, rel, rhs) ->
        List.iter (fun (v, x) -> a.(i).(v) <- a.(i).(v) +. x) coeffs;
        b.(i) <- rhs;
        (match rel with
        | Le ->
          a.(i).(!next_slack) <- 1.;
          basis.(i) <- !next_slack;
          incr next_slack
        | Ge ->
          a.(i).(!next_slack) <- -1.;
          incr next_slack;
          a.(i).(!next_art) <- 1.;
          basis.(i) <- !next_art;
          incr next_art
        | Eq ->
          a.(i).(!next_art) <- 1.;
          basis.(i) <- !next_art;
          incr next_art))
      rows;
    let tab = { m; ncols; a; b; basis; art_start } in
    let allowed = Array.make ncols true in
    (* Phase 1: drive artificials to zero. *)
    if n_art > 0 then begin
      let cost1 = Array.make ncols 0. in
      for j = art_start to ncols - 1 do
        cost1.(j) <- 1.
      done;
      (match optimize tab cost1 allowed with
      | `Unbounded -> assert false (* phase-1 objective is bounded below by 0 *)
      | `Opt -> ());
      if objective_value tab cost1 > 1e-6 then raise Exit
    end;
    (* Forbid artificials from re-entering; pivot out any still basic. *)
    for j = art_start to ncols - 1 do
      allowed.(j) <- false
    done;
    for i = 0 to m - 1 do
      if tab.basis.(i) >= art_start then begin
        let found = ref (-1) in
        for j = 0 to art_start - 1 do
          if !found < 0 && abs_float tab.a.(i).(j) > 1e-7 then found := j
        done;
        if !found >= 0 then pivot tab ~row:i ~col:!found
        (* else: redundant row; the basic artificial stays at value 0 and
           never changes, which is harmless. *)
      end
    done;
    (* Phase 2. *)
    let cost2 = Array.make ncols 0. in
    Array.blit lp.objective 0 cost2 0 lp.nvars;
    match optimize tab cost2 allowed with
    | `Unbounded -> Unbounded
    | `Opt ->
      let x = Array.make lp.nvars 0. in
      for i = 0 to m - 1 do
        if tab.basis.(i) < lp.nvars then x.(tab.basis.(i)) <- tab.b.(i)
      done;
      Optimal (objective_value tab cost2, x)
  end

let solve lp = try solve lp with Exit -> Infeasible
