(** Linear programs in inequality form and a dense two-phase primal
    simplex solver.

    This is the relaxation engine under the branch-and-bound MILP solver
    that stands in for the paper's GUROBI baseline. Problems are
    "minimize c.x subject to linear constraints, x >= 0"; the coloring
    encodings never need explicit upper bounds because one-hot rows bound
    the binaries. Sizes after graph division are tiny (tens of
    variables), so a dense tableau is the right tool. *)

type relation = Le | Ge | Eq

type constr = {
  coeffs : (int * float) list;  (** sparse row: (variable, coefficient) *)
  rel : relation;
  rhs : float;
}

type t = {
  nvars : int;
  objective : float array;  (** minimized; length [nvars] *)
  constraints : constr list;
}

type result =
  | Optimal of float * float array  (** objective value, primal point *)
  | Infeasible
  | Unbounded

val solve : t -> result
(** Two-phase primal simplex with Bland's anti-cycling rule. *)
