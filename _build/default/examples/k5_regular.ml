(* Paper Fig. 7: at min_s = 2 s_m + w_m = 60 nm even regular 1-D "brick"
   patterns contain K5 structures, so the decomposition graph is neither
   planar nor 4-colorable — the motivation for general K-patterning.

     dune exec examples/k5_regular.exe *)

let () =
  let bar x y w =
    Mpl_geometry.Polygon.of_rect
      (Mpl_geometry.Rect.make ~x0:x ~y0:y ~x1:(x + w) ~y1:(y + 20))
  in
  let bricks = ref [] in
  for r = 0 to 4 do
    let offset = r * 30 mod 120 in
    for i = 0 to 5 do
      bricks := bar (offset + (i * 120)) (r * 40) 100 :: !bricks
    done
  done;
  let layout =
    Mpl_layout.Layout.make ~name:"fig7-bricks" Mpl_layout.Layout.default_tech
      !bricks
  in
  let min_s =
    Mpl_layout.Layout.kclique_min_s layout.Mpl_layout.Layout.tech
  in
  let graph =
    Mpl.Decomp_graph.of_layout ~max_stitches_per_feature:0 layout ~min_s
  in
  Format.printf "brick pattern at min_s = %d nm: %a@." min_s
    Mpl.Decomp_graph.pp graph;
  List.iter
    (fun k ->
      let params = { Mpl.Decomposer.default_params with Mpl.Decomposer.k } in
      let report =
        Mpl.Decomposer.assign ~params Mpl.Decomposer.Sdp_backtrack graph
      in
      Format.printf
        "k = %d masks: %d conflict(s), %d stitch(es) in %.3f s@." k
        report.Mpl.Decomposer.cost.Mpl.Coloring.conflicts
        report.Mpl.Decomposer.cost.Mpl.Coloring.stitches
        report.Mpl.Decomposer.elapsed_s)
    [ 4; 5; 6 ]
