(* Paper Fig. 1: a 2x2 contact cluster inside a standard cell is a
   4-clique in the decomposition graph. Triple patterning cannot
   decompose it (one native conflict no matter what); quadruple
   patterning resolves it with zero conflicts.

     dune exec examples/native_conflict.exe *)

let () =
  let contact x y =
    Mpl_geometry.Polygon.of_rect
      (Mpl_geometry.Rect.make ~x0:x ~y0:y ~x1:(x + 20) ~y1:(y + 20))
  in
  let layout =
    Mpl_layout.Layout.make ~name:"fig1" Mpl_layout.Layout.default_tech
      [ contact 0 0; contact 40 0; contact 0 40; contact 40 40 ]
  in
  let graph = Mpl.Decomp_graph.of_layout layout ~min_s:80 in
  Format.printf "decomposition graph: %a (a K4)@." Mpl.Decomp_graph.pp graph;
  List.iter
    (fun k ->
      let params = { Mpl.Decomposer.default_params with Mpl.Decomposer.k } in
      let report = Mpl.Decomposer.assign ~params Mpl.Decomposer.Exact graph in
      Format.printf "k = %d masks: %d conflict(s)%s@." k
        report.Mpl.Decomposer.cost.Mpl.Coloring.conflicts
        (if report.Mpl.Decomposer.cost.Mpl.Coloring.conflicts = 0 then
           " — decomposable"
         else " — native conflict")
    )
    [ 2; 3; 4 ]
