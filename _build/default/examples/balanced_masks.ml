(* Mask balancing and density maps: decompose a benchmark circuit, then
   rebalance mask usage at zero cost and compare the per-window density
   maps — the uniformity check a fab runs on each mask (cf. the authors'
   ICCAD'13 balanced-density decomposer).

     dune exec examples/balanced_masks.exe [CIRCUIT] *)

let () =
  let circuit = if Array.length Sys.argv > 1 then Sys.argv.(1) else "C7552" in
  let layout =
    try Mpl_layout.Benchgen.circuit circuit
    with Not_found ->
      Printf.eprintf "unknown circuit %s\n" circuit;
      exit 2
  in
  let min_s = Mpl_layout.Layout.quadruple_min_s layout.Mpl_layout.Layout.tech in
  let g = Mpl.Decomp_graph.of_layout layout ~min_s in
  let report = Mpl.Decomposer.assign Mpl.Decomposer.Linear g in
  let colors = report.Mpl.Decomposer.colors in
  (* Weight each node by its pattern area so the rebalance targets
     density, not just vertex counts. *)
  let split = Mpl_layout.Stitch.split layout ~min_s in
  let weights =
    Array.map
      (fun node -> Mpl_geometry.Polygon.area node.Mpl_layout.Stitch.shape)
      split.Mpl_layout.Stitch.nodes
  in
  let balanced = Mpl.Balance.rebalance ~weights ~k:4 ~alpha:0.1 g colors in
  Format.printf "%a@." Mpl_layout.Layout.pp_summary layout;
  Format.printf "%a@." Mpl.Decomposer.pp_report report;
  Format.printf "vertex usage before: %s (imbalance %.3f)@."
    (String.concat " "
       (Array.to_list (Array.map string_of_int (Mpl.Balance.usage ~k:4 colors))))
    (Mpl.Balance.imbalance ~k:4 colors);
  Format.printf "vertex usage after:  %s (imbalance %.3f)@."
    (String.concat " "
       (Array.to_list
          (Array.map string_of_int (Mpl.Balance.usage ~k:4 balanced))))
    (Mpl.Balance.imbalance ~k:4 balanced);
  let density c = Mpl.Density.compute ~min_s ~window:2000 ~k:4 layout g c in
  Format.printf "before: %a@." Mpl.Density.pp_summary (density colors);
  Format.printf "after:  %a@." Mpl.Density.pp_summary (density balanced);
  let cost = Mpl.Coloring.evaluate g balanced in
  Format.printf "cost unchanged: cn#=%d st#=%d@." cost.Mpl.Coloring.conflicts
    cost.Mpl.Coloring.stitches
