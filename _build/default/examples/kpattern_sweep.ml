(* Section 5 of the paper: the whole framework generalizes to any
   K-patterning. Sweep K = 3..6 over one benchmark circuit, using the
   paper's coloring distance for each K (the radius grows with the mask
   count in a real process; we reuse the paper's two calibrated points
   and interpolate for the others).

     dune exec examples/kpattern_sweep.exe [CIRCUIT] *)

let min_s_for_k tech k =
  match k with
  | 3 -> Mpl_layout.Layout.kclique_min_s tech (* 60 nm *)
  | 4 -> Mpl_layout.Layout.quadruple_min_s tech (* 80 nm *)
  | 5 -> Mpl_layout.Layout.pentuple_min_s tech (* 110 nm *)
  | _ -> Mpl_layout.Layout.pentuple_min_s tech + ((k - 5) * 25)

let () =
  let circuit = if Array.length Sys.argv > 1 then Sys.argv.(1) else "C6288" in
  let layout =
    try Mpl_layout.Benchgen.circuit circuit
    with Not_found ->
      Printf.eprintf "unknown circuit %s\n" circuit;
      exit 2
  in
  Format.printf "%a@." Mpl_layout.Layout.pp_summary layout;
  Format.printf "%3s %6s %9s %5s %5s %8s %8s@." "k" "min_s" "algorithm"
    "cn#" "st#" "CPU(s)" "pieces";
  List.iter
    (fun k ->
      let min_s = min_s_for_k layout.Mpl_layout.Layout.tech k in
      let graph = Mpl.Decomp_graph.of_layout layout ~min_s in
      List.iter
        (fun algo ->
          let params =
            { Mpl.Decomposer.default_params with Mpl.Decomposer.k }
          in
          let r = Mpl.Decomposer.assign ~params algo graph in
          Format.printf "%3d %6d %9s %5d %5d %8.3f %8d@." k min_s
            (match algo with
            | Mpl.Decomposer.Linear -> "linear"
            | Mpl.Decomposer.Sdp_backtrack -> "sdp+bt"
            | Mpl.Decomposer.Ilp | Mpl.Decomposer.Exact
            | Mpl.Decomposer.Sdp_greedy ->
              "other")
            r.Mpl.Decomposer.cost.Mpl.Coloring.conflicts
            r.Mpl.Decomposer.cost.Mpl.Coloring.stitches
            r.Mpl.Decomposer.elapsed_s
            r.Mpl.Decomposer.division.Mpl.Division.pieces)
        [ Mpl.Decomposer.Sdp_backtrack; Mpl.Decomposer.Linear ])
    [ 3; 4; 5; 6 ]
