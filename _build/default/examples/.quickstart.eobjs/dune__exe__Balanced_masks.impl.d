examples/balanced_masks.ml: Array Format Mpl Mpl_geometry Mpl_layout Printf String Sys
