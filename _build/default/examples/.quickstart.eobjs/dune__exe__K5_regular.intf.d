examples/k5_regular.mli:
