examples/kpattern_sweep.ml: Array Format List Mpl Mpl_layout Printf Sys
