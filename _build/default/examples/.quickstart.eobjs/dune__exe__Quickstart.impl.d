examples/quickstart.ml: Array Format Mpl Mpl_geometry Mpl_layout
