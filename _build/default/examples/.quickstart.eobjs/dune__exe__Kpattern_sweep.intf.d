examples/kpattern_sweep.mli:
