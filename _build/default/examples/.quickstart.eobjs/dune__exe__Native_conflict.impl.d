examples/native_conflict.ml: Format List Mpl Mpl_geometry Mpl_layout
