examples/quickstart.mli:
