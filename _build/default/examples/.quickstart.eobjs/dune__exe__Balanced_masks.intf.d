examples/balanced_masks.mli:
