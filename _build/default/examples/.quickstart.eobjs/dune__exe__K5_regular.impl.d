examples/k5_regular.ml: Format List Mpl Mpl_geometry Mpl_layout
