examples/native_conflict.mli:
