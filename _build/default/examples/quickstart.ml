(* Quickstart: build a tiny layout, decompose it into four masks, and
   print the assignment.

     dune exec examples/quickstart.exe *)

let () =
  (* Four contacts in a 2x2 cluster plus a wire passing above them. *)
  let contact x y =
    Mpl_geometry.Polygon.of_rect
      (Mpl_geometry.Rect.make ~x0:x ~y0:y ~x1:(x + 20) ~y1:(y + 20))
  in
  let wire =
    Mpl_geometry.Polygon.of_rect
      (Mpl_geometry.Rect.make ~x0:(-60) ~y0:105 ~x1:160 ~y1:125)
  in
  let layout =
    Mpl_layout.Layout.make ~name:"quickstart" Mpl_layout.Layout.default_tech
      [ contact 0 0; contact 40 0; contact 0 40; contact 40 40; wire ]
  in
  (* Decompose for quadruple patterning at the paper's 80 nm coloring
     distance using the linear color assignment. *)
  let min_s = Mpl_layout.Layout.quadruple_min_s layout.Mpl_layout.Layout.tech in
  let graph, report =
    Mpl.Decomposer.decompose ~min_s Mpl.Decomposer.Linear layout
  in
  Format.printf "layout: %a@." Mpl_layout.Layout.pp_summary layout;
  Format.printf "decomposition graph: %a@." Mpl.Decomp_graph.pp graph;
  Format.printf "result: %a@." Mpl.Decomposer.pp_report report;
  Array.iteri
    (fun v color ->
      Format.printf "  node %d (feature %d) -> mask %d@." v
        graph.Mpl.Decomp_graph.feature.(v)
        color)
    report.Mpl.Decomposer.colors
