(* Unit and property tests for Mpl_util. *)

module Rng = Mpl_util.Rng

let test_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_int_range () =
  let rng = Rng.create 7 in
  for _ = 1 to 10_000 do
    let x = Rng.int rng 17 in
    Alcotest.(check bool) "in range" true (x >= 0 && x < 17)
  done

let test_range_inclusive () =
  let rng = Rng.create 9 in
  let seen = Array.make 5 false in
  for _ = 1 to 1000 do
    let x = Rng.range rng 3 7 in
    Alcotest.(check bool) "in [3,7]" true (x >= 3 && x <= 7);
    seen.(x - 3) <- true
  done;
  Alcotest.(check bool) "all values hit" true (Array.for_all Fun.id seen)

let test_float_range () =
  let rng = Rng.create 11 in
  for _ = 1 to 10_000 do
    let x = Rng.float rng 1.0 in
    Alcotest.(check bool) "in [0,1)" true (x >= 0. && x < 1.)
  done

let test_split_independent () =
  let a = Rng.create 5 in
  let b = Rng.split a in
  let xa = Rng.int64 a and xb = Rng.int64 b in
  Alcotest.(check bool) "streams differ" true (xa <> xb)

let prop_shuffle_permutation =
  QCheck.Test.make ~name:"shuffle is a permutation" ~count:200
    QCheck.(pair small_int (small_list small_int))
    (fun (seed, l) ->
      let rng = Rng.create seed in
      let a = Array.of_list l in
      Rng.shuffle rng a;
      List.sort compare (Array.to_list a) = List.sort compare l)

let test_timer_budget () =
  Alcotest.(check bool) "unlimited never expires" false
    (Mpl_util.Timer.expired (Mpl_util.Timer.budget 0.));
  Alcotest.(check bool) "tiny budget expires" true
    (let b = Mpl_util.Timer.budget 1e-9 in
     Unix.sleepf 0.002;
     Mpl_util.Timer.expired b)

let test_intset () =
  Alcotest.(check (list int)) "sort_uniq" [ 1; 2; 3 ]
    (Mpl_util.Intset.sort_uniq [ 3; 1; 2; 1; 3 ]);
  Alcotest.(check int) "argmin" 2 (Mpl_util.Intset.argmin [| 3.; 2.; 1.; 5. |]);
  Alcotest.(check int) "argmax" 3 (Mpl_util.Intset.argmax [| 3.; 2.; 1.; 5. |]);
  Alcotest.(check int) "sum" 6 (Mpl_util.Intset.sum [| 1; 2; 3 |]);
  Alcotest.(check int) "array_min" 1 (Mpl_util.Intset.array_min [| 3; 1; 2 |]);
  Alcotest.(check int) "array_max" 3 (Mpl_util.Intset.array_max [| 3; 1; 2 |])

let test_copy_independent () =
  let a = Rng.create 3 in
  ignore (Rng.int64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copies advance identically" (Rng.int64 a)
    (Rng.int64 b)

let suite =
  [
    Alcotest.test_case "rng copy" `Quick test_copy_independent;
    Alcotest.test_case "rng determinism" `Quick test_determinism;
    Alcotest.test_case "rng int range" `Quick test_int_range;
    Alcotest.test_case "rng range inclusive" `Quick test_range_inclusive;
    Alcotest.test_case "rng float range" `Quick test_float_range;
    Alcotest.test_case "rng split" `Quick test_split_independent;
    QCheck_alcotest.to_alcotest prop_shuffle_permutation;
    Alcotest.test_case "timer budget" `Quick test_timer_budget;
    Alcotest.test_case "intset helpers" `Quick test_intset;
  ]
