(* Unit and property tests for Mpl_geometry. *)

module Rect = Mpl_geometry.Rect
module Polygon = Mpl_geometry.Polygon
module Grid_index = Mpl_geometry.Grid_index

let rect_gen =
  QCheck.Gen.(
    map
      (fun (x0, y0, w, h) ->
        Rect.make ~x0 ~y0 ~x1:(x0 + 1 + w) ~y1:(y0 + 1 + h))
      (quad (int_range (-500) 500) (int_range (-500) 500) (int_range 0 200)
         (int_range 0 200)))

let rect_arb = QCheck.make ~print:(Format.asprintf "%a" Rect.pp) rect_gen

let test_make_rejects_degenerate () =
  Alcotest.check_raises "zero width"
    (Invalid_argument "Rect.make: degenerate rectangle (0,0)-(0,5)")
    (fun () -> ignore (Rect.make ~x0:0 ~y0:0 ~x1:0 ~y1:5))

let test_basic_ops () =
  let r = Rect.make ~x0:0 ~y0:0 ~x1:10 ~y1:20 in
  Alcotest.(check int) "width" 10 (Rect.width r);
  Alcotest.(check int) "height" 20 (Rect.height r);
  Alcotest.(check int) "area" 200 (Rect.area r);
  let cx, cy = Rect.center r in
  Alcotest.(check (float 1e-9)) "cx" 5. cx;
  Alcotest.(check (float 1e-9)) "cy" 10. cy;
  let t = Rect.translate r ~dx:5 ~dy:(-3) in
  Alcotest.(check bool) "translate" true
    (Rect.equal t (Rect.make ~x0:5 ~y0:(-3) ~x1:15 ~y1:17))

let test_distance_cases () =
  let a = Rect.make ~x0:0 ~y0:0 ~x1:10 ~y1:10 in
  let b = Rect.make ~x0:20 ~y0:0 ~x1:30 ~y1:10 in
  Alcotest.(check int) "horizontal gap" 100 (Rect.distance2 a b);
  let c = Rect.make ~x0:20 ~y0:20 ~x1:30 ~y1:30 in
  Alcotest.(check int) "diagonal gap" 200 (Rect.distance2 a c);
  let d = Rect.make ~x0:5 ~y0:5 ~x1:15 ~y1:15 in
  Alcotest.(check int) "overlap" 0 (Rect.distance2 a d)

let prop_distance_symmetric =
  QCheck.Test.make ~name:"distance2 symmetric" ~count:500
    (QCheck.pair rect_arb rect_arb)
    (fun (a, b) -> Rect.distance2 a b = Rect.distance2 b a)

let prop_distance_zero_iff_touches =
  QCheck.Test.make ~name:"distance2 = 0 iff touching" ~count:500
    (QCheck.pair rect_arb rect_arb)
    (fun (a, b) -> Rect.distance2 a b = 0 = Rect.touches a b)

let prop_inflate_monotone =
  QCheck.Test.make ~name:"inflating shrinks distance" ~count:500
    (QCheck.pair rect_arb rect_arb)
    (fun (a, b) -> Rect.distance2 (Rect.inflate a 5) b <= Rect.distance2 a b)

let prop_intersection_inside =
  QCheck.Test.make ~name:"intersection inside both" ~count:500
    (QCheck.pair rect_arb rect_arb)
    (fun (a, b) ->
      match Rect.intersection a b with
      | None -> not (Rect.overlaps a b)
      | Some i ->
        Rect.overlaps a b
        && Rect.area i <= min (Rect.area a) (Rect.area b)
        && Rect.touches i a && Rect.touches i b)

let prop_union_bbox_contains =
  QCheck.Test.make ~name:"union bbox contains both" ~count:500
    (QCheck.pair rect_arb rect_arb)
    (fun (a, b) ->
      let u = Rect.union_bbox a b in
      Rect.distance2 u a = 0 && Rect.distance2 u b = 0
      && Rect.area u >= max (Rect.area a) (Rect.area b))

let test_polygon_connectivity () =
  let a = Rect.make ~x0:0 ~y0:0 ~x1:10 ~y1:10 in
  let b = Rect.make ~x0:10 ~y0:0 ~x1:20 ~y1:10 in
  let far = Rect.make ~x0:100 ~y0:100 ~x1:110 ~y1:110 in
  ignore (Polygon.of_rects [ a; b ]);
  Alcotest.check_raises "disconnected"
    (Invalid_argument "Polygon.of_rects: disconnected rectangle union")
    (fun () -> ignore (Polygon.of_rects [ a; far ]));
  Alcotest.check_raises "empty" (Invalid_argument "Polygon.of_rects: empty")
    (fun () -> ignore (Polygon.of_rects []))

let test_polygon_distance () =
  let l =
    Polygon.of_rects
      [ Rect.make ~x0:0 ~y0:0 ~x1:10 ~y1:40; Rect.make ~x0:10 ~y0:0 ~x1:40 ~y1:10 ]
  in
  let dot = Polygon.of_rect (Rect.make ~x0:20 ~y0:20 ~x1:30 ~y1:30) in
  (* Nearest sub-rectangle is the horizontal leg at distance 10 in y. *)
  Alcotest.(check int) "L-shape distance" 100 (Polygon.distance2 l dot)

(* The grid index must report every pair within the radius that a brute
   force scan finds (it may report more; the consumer re-checks). *)
let prop_grid_index_complete =
  let gen =
    QCheck.Gen.(list_size (int_range 2 40) rect_gen)
  in
  QCheck.Test.make ~name:"grid index finds all close pairs" ~count:100
    (QCheck.make gen)
    (fun rects ->
      let radius = 50 in
      let index = Grid_index.create ~cell:radius in
      List.iteri (fun i r -> Grid_index.add index i r) rects;
      let found = Hashtbl.create 16 in
      Grid_index.iter_pairs index ~radius (fun i j ->
          Hashtbl.replace found (min i j, max i j) ());
      let arr = Array.of_list rects in
      let ok = ref true in
      Array.iteri
        (fun i a ->
          Array.iteri
            (fun j b ->
              if i < j && Rect.distance2 a b <= radius * radius then
                if not (Hashtbl.mem found (i, j)) then ok := false)
            arr)
        arr;
      !ok)

let prop_grid_index_query =
  QCheck.Test.make ~name:"query superset of in-radius items" ~count:100
    (QCheck.pair rect_arb (QCheck.make QCheck.Gen.(list_size (int_range 1 30) rect_gen)))
    (fun (probe, rects) ->
      let radius = 60 in
      let index = Grid_index.create ~cell:radius in
      List.iteri (fun i r -> Grid_index.add index i r) rects;
      let hits = Grid_index.query index probe ~radius in
      List.for_all
        (fun (i, r) ->
          Rect.distance2 probe r > radius * radius || List.mem i hits)
        (List.mapi (fun i r -> (i, r)) rects))

module Interval = Mpl_geometry.Interval

let test_interval_merge () =
  Alcotest.(check (list (pair int int))) "merge overlapping"
    [ (0, 5); (7, 10) ]
    (Interval.merge [ (3, 5); (0, 2); (1, 4); (7, 9); (8, 10) ]);
  Alcotest.(check (list (pair int int))) "touching coalesce" [ (0, 4) ]
    (Interval.merge [ (0, 2); (2, 4) ]);
  Alcotest.(check (list (pair int int))) "drops empties" [ (1, 2) ]
    (Interval.merge [ (5, 3); (1, 2) ])

let test_interval_complement () =
  Alcotest.(check (list (pair int int))) "two gaps"
    [ (2, 3); (5, 8) ]
    (Interval.complement (0, 8) [ (0, 2); (3, 5) ]);
  Alcotest.(check (list (pair int int))) "fully covered" []
    (Interval.complement (0, 8) [ (-1, 9) ]);
  Alcotest.(check (list (pair int int))) "uncovered" [ (0, 8) ]
    (Interval.complement (0, 8) [])

let interval_gen =
  QCheck.Gen.(
    list_size (int_range 0 8)
      (map
         (fun (a, b) -> (min a b, max a b))
         (pair (int_range (-50) 50) (int_range (-50) 50))))

let prop_interval_merge_complement =
  QCheck.Test.make ~name:"merge/complement partition the span" ~count:300
    (QCheck.make interval_gen)
    (fun ivs ->
      let span = (-60, 60) in
      let covered = Interval.merge ivs in
      let free = Interval.complement span covered in
      (* Every integer point of the span is in exactly one side. *)
      let in_any list x = List.exists (fun (lo, hi) -> lo <= x && x <= hi) list in
      let ok = ref true in
      for x = -59 to 59 do
        (* Interior points: boundaries may belong to both sides. *)
        let covered_here = in_any covered x in
        let free_here =
          List.exists (fun (lo, hi) -> lo < x && x < hi) free
        in
        if covered_here && free_here then ok := false;
        if (not covered_here) && not (in_any free x) then ok := false
      done;
      !ok)

let suite =
  [
    Alcotest.test_case "interval merge" `Quick test_interval_merge;
    Alcotest.test_case "interval complement" `Quick test_interval_complement;
    QCheck_alcotest.to_alcotest prop_interval_merge_complement;
    Alcotest.test_case "rect rejects degenerate" `Quick
      test_make_rejects_degenerate;
    Alcotest.test_case "rect basic ops" `Quick test_basic_ops;
    Alcotest.test_case "rect distance cases" `Quick test_distance_cases;
    QCheck_alcotest.to_alcotest prop_distance_symmetric;
    QCheck_alcotest.to_alcotest prop_distance_zero_iff_touches;
    QCheck_alcotest.to_alcotest prop_inflate_monotone;
    QCheck_alcotest.to_alcotest prop_intersection_inside;
    QCheck_alcotest.to_alcotest prop_union_bbox_contains;
    Alcotest.test_case "polygon connectivity" `Quick test_polygon_connectivity;
    Alcotest.test_case "polygon distance" `Quick test_polygon_distance;
    QCheck_alcotest.to_alcotest prop_grid_index_complete;
    QCheck_alcotest.to_alcotest prop_grid_index_query;
  ]
