test/test_layout.ml: Alcotest Array List Mpl Mpl_geometry Mpl_layout Mpl_util Printf QCheck QCheck_alcotest
