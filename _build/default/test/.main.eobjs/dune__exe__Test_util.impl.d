test/test_util.ml: Alcotest Array Fun List Mpl_util QCheck QCheck_alcotest Unix
