test/test_geometry.ml: Alcotest Array Format Hashtbl List Mpl_geometry QCheck QCheck_alcotest
