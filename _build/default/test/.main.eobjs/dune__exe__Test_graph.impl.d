test/test_graph.ml: Alcotest Array Fun List Mpl_graph Printf QCheck QCheck_alcotest String
