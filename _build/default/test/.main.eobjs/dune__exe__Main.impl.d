test/main.ml: Alcotest Test_core Test_extensions Test_geometry Test_graph Test_ilp Test_layout Test_numeric Test_paper Test_util
