test/test_ilp.ml: Alcotest Array Fun List Mpl Mpl_ilp Mpl_util Printf QCheck QCheck_alcotest String Unix
