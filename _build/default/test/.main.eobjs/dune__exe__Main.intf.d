test/main.mli:
