test/test_extensions.ml: Alcotest Array List Mpl Mpl_geometry Mpl_graph Mpl_layout Mpl_util Printf QCheck QCheck_alcotest String
