test/test_core.ml: Alcotest Hashtbl List Mpl Mpl_graph Mpl_layout Mpl_util Printf QCheck QCheck_alcotest String
