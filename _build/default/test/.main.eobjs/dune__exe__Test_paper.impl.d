test/test_paper.ml: Alcotest Array List Mpl Mpl_geometry Mpl_graph Mpl_layout Mpl_numeric
