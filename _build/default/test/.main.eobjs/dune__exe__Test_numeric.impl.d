test/test_numeric.ml: Alcotest Array List Mpl_numeric Printf QCheck QCheck_alcotest
