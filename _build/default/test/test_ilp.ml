(* Tests for the simplex LP solver and the branch-and-bound MILP solver,
   cross-checked against hand-solved programs and brute enumeration. *)

module Lp = Mpl_ilp.Lp
module Milp = Mpl_ilp.Milp

let check_opt name expected_obj result =
  match result with
  | Lp.Optimal (obj, _) ->
    Alcotest.(check (float 1e-6)) name expected_obj obj
  | Lp.Infeasible -> Alcotest.fail (name ^ ": unexpectedly infeasible")
  | Lp.Unbounded -> Alcotest.fail (name ^ ": unexpectedly unbounded")

let test_lp_basic () =
  (* min -x - y s.t. x + y <= 4, x <= 3, y <= 3, x,y >= 0: opt -4. *)
  let lp =
    {
      Lp.nvars = 2;
      objective = [| -1.; -1. |];
      constraints =
        [
          { Lp.coeffs = [ (0, 1.); (1, 1.) ]; rel = Lp.Le; rhs = 4. };
          { Lp.coeffs = [ (0, 1.) ]; rel = Lp.Le; rhs = 3. };
          { Lp.coeffs = [ (1, 1.) ]; rel = Lp.Le; rhs = 3. };
        ];
    }
  in
  check_opt "basic LP" (-4.) (Lp.solve lp)

let test_lp_equality_and_ge () =
  (* min x + 2y s.t. x + y = 3, x >= 1: opt at (3,0) = 3. *)
  let lp =
    {
      Lp.nvars = 2;
      objective = [| 1.; 2. |];
      constraints =
        [
          { Lp.coeffs = [ (0, 1.); (1, 1.) ]; rel = Lp.Eq; rhs = 3. };
          { Lp.coeffs = [ (0, 1.) ]; rel = Lp.Ge; rhs = 1. };
        ];
    }
  in
  (match Lp.solve lp with
  | Lp.Optimal (obj, x) ->
    Alcotest.(check (float 1e-6)) "objective" 3. obj;
    Alcotest.(check (float 1e-6)) "x" 3. x.(0);
    Alcotest.(check (float 1e-6)) "y" 0. x.(1)
  | Lp.Infeasible | Lp.Unbounded -> Alcotest.fail "should be optimal")

let test_lp_infeasible () =
  let lp =
    {
      Lp.nvars = 1;
      objective = [| 1. |];
      constraints =
        [
          { Lp.coeffs = [ (0, 1.) ]; rel = Lp.Le; rhs = 1. };
          { Lp.coeffs = [ (0, 1.) ]; rel = Lp.Ge; rhs = 2. };
        ];
    }
  in
  Alcotest.(check bool) "infeasible" true (Lp.solve lp = Lp.Infeasible)

let test_lp_unbounded () =
  let lp =
    {
      Lp.nvars = 2;
      objective = [| -1.; 0. |];
      constraints = [ { Lp.coeffs = [ (1, 1.) ]; rel = Lp.Le; rhs = 1. } ];
    }
  in
  Alcotest.(check bool) "unbounded" true (Lp.solve lp = Lp.Unbounded)

let test_lp_negative_rhs () =
  (* min x s.t. -x <= -2  (i.e. x >= 2): opt 2. *)
  let lp =
    {
      Lp.nvars = 1;
      objective = [| 1. |];
      constraints = [ { Lp.coeffs = [ (0, -1.) ]; rel = Lp.Le; rhs = -2. } ];
    }
  in
  check_opt "negative rhs" 2. (Lp.solve lp)

let test_lp_degenerate () =
  (* Redundant constraints should not break phase 1. *)
  let lp =
    {
      Lp.nvars = 2;
      objective = [| 1.; 1. |];
      constraints =
        [
          { Lp.coeffs = [ (0, 1.); (1, 1.) ]; rel = Lp.Eq; rhs = 2. };
          { Lp.coeffs = [ (0, 2.); (1, 2.) ]; rel = Lp.Eq; rhs = 4. };
          { Lp.coeffs = [ (0, 1.) ]; rel = Lp.Ge; rhs = 0. };
        ];
    }
  in
  check_opt "degenerate" 2. (Lp.solve lp)

(* Random 0/1 knapsack-style MILPs checked against enumeration:
   min c.x  s.t.  a.x >= b, x binary. *)
let milp_gen =
  QCheck.Gen.(
    int_range 2 8 >>= fun n ->
    list_repeat n (int_range 1 9) >>= fun cost ->
    list_repeat n (int_range 1 9) >>= fun weight ->
    int_range 1 20 >|= fun b -> (n, cost, weight, b))

let milp_arb =
  QCheck.make
    ~print:(fun (n, c, w, b) ->
      Printf.sprintf "n=%d c=[%s] w=[%s] b=%d" n
        (String.concat ";" (List.map string_of_int c))
        (String.concat ";" (List.map string_of_int w))
        b)
    milp_gen

let brute_min (n, cost, weight, b) =
  let c = Array.of_list cost and w = Array.of_list weight in
  let best = ref None in
  for mask = 0 to (1 lsl n) - 1 do
    let total_w = ref 0 and total_c = ref 0 in
    for i = 0 to n - 1 do
      if mask land (1 lsl i) <> 0 then begin
        total_w := !total_w + w.(i);
        total_c := !total_c + c.(i)
      end
    done;
    if !total_w >= b then
      match !best with
      | Some bc when bc <= !total_c -> ()
      | Some _ | None -> best := Some !total_c
  done;
  !best

let prop_milp_matches_enumeration =
  QCheck.Test.make ~name:"MILP = brute-force covering optimum" ~count:150
    milp_arb
    (fun ((n, cost, weight, b) as instance) ->
      let lp =
        {
          Lp.nvars = n;
          objective = Array.of_list (List.map float_of_int cost);
          constraints =
            [
              {
                Lp.coeffs = List.mapi (fun i w -> (i, float_of_int w)) weight;
                rel = Lp.Ge;
                rhs = float_of_int b;
              };
              (* x_i <= 1 *)
            ]
            @ List.init n (fun i ->
                  { Lp.coeffs = [ (i, 1.) ]; rel = Lp.Le; rhs = 1. });
        }
      in
      let model = { Milp.lp; binary = Array.make n true } in
      match (Milp.solve model, brute_min instance) with
      | Milp.Optimal (obj, _), Some best ->
        abs_float (obj -. float_of_int best) < 1e-6
      | Milp.Infeasible, None -> true
      | Milp.Optimal _, None | Milp.Infeasible, Some _ -> false
      | Milp.Timeout _, _ -> false)

let test_milp_timeout () =
  (* A 30-binary model with a conflicting objective and a microscopic
     budget must report Timeout, not an answer. *)
  let n = 30 in
  let lp =
    {
      Lp.nvars = n;
      objective = Array.make n (-1.);
      constraints =
        List.init n (fun i -> { Lp.coeffs = [ (i, 1.) ]; rel = Lp.Le; rhs = 0.5 });
    }
  in
  let model = { Milp.lp; binary = Array.make n true } in
  let budget = Mpl_util.Timer.budget 1e-9 in
  Unix.sleepf 0.002;
  match Milp.solve ~budget model with
  | Milp.Timeout _ -> ()
  | Milp.Optimal _ | Milp.Infeasible -> Alcotest.fail "expected timeout"

let test_ilp_model_shape () =
  (* The one-hot QPLD encoding: n*k color binaries + one z per conflict
     edge + one s per stitch edge; n one-hot rows + k rows per conflict
     edge + 2k rows per stitch edge. *)
  let g =
    Mpl.Decomp_graph.of_edges ~stitch_edges:[ (2, 3) ] ~n:4 [ (0, 1); (1, 2) ]
  in
  let model = Mpl.Ilp_color.build_model ~k:4 ~alpha:0.1 g in
  Alcotest.(check int) "variables" ((4 * 4) + 2 + 1) model.Milp.lp.Lp.nvars;
  Alcotest.(check int) "constraints"
    (4 + (4 * 2) + (2 * 4 * 1))
    (List.length model.Milp.lp.Lp.constraints);
  Alcotest.(check int) "binaries" 16
    (Array.to_list model.Milp.binary |> List.filter Fun.id |> List.length)

let suite =
  [
    Alcotest.test_case "ilp model shape" `Quick test_ilp_model_shape;
    Alcotest.test_case "lp basic" `Quick test_lp_basic;
    Alcotest.test_case "lp eq and ge" `Quick test_lp_equality_and_ge;
    Alcotest.test_case "lp infeasible" `Quick test_lp_infeasible;
    Alcotest.test_case "lp unbounded" `Quick test_lp_unbounded;
    Alcotest.test_case "lp negative rhs" `Quick test_lp_negative_rhs;
    Alcotest.test_case "lp degenerate" `Quick test_lp_degenerate;
    QCheck_alcotest.to_alcotest prop_milp_matches_enumeration;
    Alcotest.test_case "milp timeout" `Quick test_milp_timeout;
  ]
