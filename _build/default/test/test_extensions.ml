(* Tests for the extension modules: clique lower bounds, refinement,
   density balancing, and SVG rendering. *)

module G = Mpl.Decomp_graph
module C = Mpl.Coloring

let clique n =
  let edges = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      edges := (i, j) :: !edges
    done
  done;
  G.of_edges ~n !edges

let dg_gen =
  QCheck.Gen.(
    int_range 2 9 >>= fun n ->
    int_range 10 70 >>= fun p ->
    int_range 0 10000 >|= fun seed ->
    let rng = Mpl_util.Rng.create seed in
    let ce = ref [] in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        if Mpl_util.Rng.int rng 100 < p then ce := (i, j) :: !ce
      done
    done;
    (n, !ce))

let dg_arb =
  QCheck.make
    ~print:(fun (n, ce) ->
      Printf.sprintf "n=%d ce=[%s]" n
        (String.concat ";"
           (List.map (fun (u, v) -> Printf.sprintf "%d-%d" u v) ce)))
    dg_gen

(* ------------------------- lower bounds -------------------------- *)

let test_excess_pairs () =
  Alcotest.(check int) "K4/4" 0 (Mpl.Lower_bound.excess_pairs 4 4);
  Alcotest.(check int) "K5/4" 1 (Mpl.Lower_bound.excess_pairs 5 4);
  Alcotest.(check int) "K6/4" 2 (Mpl.Lower_bound.excess_pairs 6 4);
  Alcotest.(check int) "K8/4" 4 (Mpl.Lower_bound.excess_pairs 8 4);
  Alcotest.(check int) "K6/5" 1 (Mpl.Lower_bound.excess_pairs 6 5);
  Alcotest.(check int) "K6/3" 3 (Mpl.Lower_bound.excess_pairs 6 3)

let test_max_clique_known () =
  let g = Mpl_graph.Ugraph.of_edges 6
      [ (0, 1); (0, 2); (1, 2); (2, 3); (3, 4); (4, 5); (3, 5) ]
  in
  Alcotest.(check int) "triangle found" 3
    (Array.length (Mpl.Lower_bound.max_clique g))

let prop_max_clique_is_clique =
  QCheck.Test.make ~name:"max_clique returns a clique" ~count:200 dg_arb
    (fun (n, ce) ->
      let g = Mpl_graph.Ugraph.of_edges n ce in
      let c = Mpl.Lower_bound.max_clique g in
      Array.for_all
        (fun u ->
          Array.for_all (fun v -> u = v || Mpl_graph.Ugraph.mem_edge g u v) c)
        c)

let prop_lower_bound_sound =
  QCheck.Test.make ~name:"clique LB <= chromatic optimum" ~count:200 dg_arb
    (fun (n, ce) ->
      let g = G.of_edges ~n ce in
      let lb = Mpl.Lower_bound.conflict_lower_bound ~k:4 g in
      let opt =
        Mpl_graph.Oracle.chromatic_cost (Mpl_graph.Ugraph.of_edges n ce) ~k:4
      in
      lb <= opt)

let test_lower_bound_tight_on_cliques () =
  List.iter
    (fun n ->
      Alcotest.(check int)
        (Printf.sprintf "tight on K%d" n)
        (Mpl.Lower_bound.excess_pairs n 4)
        (Mpl.Lower_bound.conflict_lower_bound ~k:4 (clique n)))
    [ 4; 5; 6; 7; 8 ]

(* --------------------------- refine ------------------------------ *)

let prop_local_search_never_worse =
  QCheck.Test.make ~name:"local search never increases cost" ~count:200
    (QCheck.pair dg_arb QCheck.small_int)
    (fun ((n, ce), seed) ->
      let g = G.of_edges ~n ce in
      let rng = Mpl_util.Rng.create seed in
      let colors = Array.init n (fun _ -> Mpl_util.Rng.int rng 4) in
      let refined = Mpl.Refine.local_search ~k:4 ~alpha:0.1 g colors in
      (C.evaluate g refined).C.scaled <= (C.evaluate g colors).C.scaled)

let prop_anneal_never_worse =
  QCheck.Test.make ~name:"annealing never increases cost" ~count:50
    (QCheck.pair dg_arb QCheck.small_int)
    (fun ((n, ce), seed) ->
      let g = G.of_edges ~n ce in
      let rng = Mpl_util.Rng.create seed in
      let colors = Array.init n (fun _ -> Mpl_util.Rng.int rng 4) in
      let refined =
        Mpl.Refine.anneal ~seed ~iterations:2000 ~k:4 ~alpha:0.1 g colors
      in
      (C.evaluate g refined).C.scaled <= (C.evaluate g colors).C.scaled
      && C.check_range ~k:4 refined)

let test_local_search_fixes_bad_coloring () =
  (* A path colored all-0 has n-1 conflicts; one pass fixes them all. *)
  let n = 10 in
  let g = G.of_edges ~n (List.init (n - 1) (fun i -> (i, i + 1))) in
  let refined = Mpl.Refine.local_search ~k:4 ~alpha:0.1 g (Array.make n 0) in
  Alcotest.(check int) "path becomes conflict-free" 0
    (C.evaluate g refined).C.conflicts

let test_anneal_deterministic () =
  let g = clique 6 in
  let colors = Array.make 6 0 in
  let a = Mpl.Refine.anneal ~seed:7 ~iterations:3000 ~k:4 ~alpha:0.1 g colors in
  let b = Mpl.Refine.anneal ~seed:7 ~iterations:3000 ~k:4 ~alpha:0.1 g colors in
  Alcotest.(check (array int)) "same seed, same result" a b

(* --------------------------- balance ----------------------------- *)

let test_usage_and_imbalance () =
  Alcotest.(check (array int)) "usage" [| 2; 1; 0; 1 |]
    (Mpl.Balance.usage ~k:4 [| 0; 0; 1; 3 |]);
  Alcotest.(check (float 1e-9)) "balanced" 0.
    (Mpl.Balance.imbalance ~k:4 [| 0; 1; 2; 3 |]);
  Alcotest.(check (float 1e-9)) "empty" 0. (Mpl.Balance.imbalance ~k:4 [||])

let prop_rebalance_preserves_cost =
  QCheck.Test.make ~name:"rebalance never changes the cost" ~count:200
    (QCheck.pair dg_arb QCheck.small_int)
    (fun ((n, ce), seed) ->
      let g = G.of_edges ~n ce in
      let rng = Mpl_util.Rng.create seed in
      let colors = Array.init n (fun _ -> Mpl_util.Rng.int rng 4) in
      let balanced = Mpl.Balance.rebalance ~k:4 ~alpha:0.1 g colors in
      let before = C.evaluate g colors and after = C.evaluate g balanced in
      before.C.conflicts = after.C.conflicts
      && before.C.stitches = after.C.stitches)

let prop_rebalance_no_worse_imbalance =
  QCheck.Test.make ~name:"rebalance never worsens the imbalance" ~count:200
    (QCheck.pair dg_arb QCheck.small_int)
    (fun ((n, ce), seed) ->
      let g = G.of_edges ~n ce in
      let rng = Mpl_util.Rng.create seed in
      let colors = Array.init n (fun _ -> Mpl_util.Rng.int rng 4) in
      let balanced = Mpl.Balance.rebalance ~k:4 ~alpha:0.1 g colors in
      Mpl.Balance.imbalance ~k:4 balanced
      <= Mpl.Balance.imbalance ~k:4 colors +. 1e-9)

let test_rebalance_isolated_vertices () =
  (* n isolated vertices all on mask 0 spread to perfect balance. *)
  let g = G.of_edges ~n:8 [] in
  let balanced = Mpl.Balance.rebalance ~k:4 ~alpha:0.1 g (Array.make 8 0) in
  Alcotest.(check (float 1e-9)) "perfectly balanced" 0.
    (Mpl.Balance.imbalance ~k:4 balanced)

(* --------------------------- density ----------------------------- *)

let density_layout () =
  let contact x y =
    Mpl_geometry.Polygon.of_rect
      (Mpl_geometry.Rect.make ~x0:x ~y0:y ~x1:(x + 20) ~y1:(y + 20))
  in
  Mpl_layout.Layout.make Mpl_layout.Layout.default_tech
    [ contact 0 0; contact 40 0; contact 0 40; contact 40 40 ]

let test_density_totals () =
  let layout = density_layout () in
  let g = G.of_layout layout ~min_s:80 in
  let r = Mpl.Decomposer.assign Mpl.Decomposer.Exact g in
  let d =
    Mpl.Density.compute ~min_s:80 ~window:100 ~k:4 layout g
      r.Mpl.Decomposer.colors
  in
  (* Four 400 nm^2 contacts, one per mask (K4 forces all distinct). *)
  Alcotest.(check (array int)) "each mask carries one contact"
    [| 400; 400; 400; 400 |]
    (Mpl.Density.mask_totals d)

let test_density_window_clipping () =
  (* A contact exactly astride two windows splits its area. *)
  let wire =
    Mpl_geometry.Polygon.of_rect
      (Mpl_geometry.Rect.make ~x0:0 ~y0:0 ~x1:200 ~y1:20)
  in
  let layout = Mpl_layout.Layout.make Mpl_layout.Layout.default_tech [ wire ] in
  let g = G.of_layout ~max_stitches_per_feature:0 layout ~min_s:80 in
  let d =
    Mpl.Density.compute ~max_stitches_per_feature:0 ~min_s:80 ~window:100
      ~k:4 layout g [| 0 |]
  in
  Alcotest.(check (array int)) "area conserved across windows" [| 4000; 0; 0; 0 |]
    (Mpl.Density.mask_totals d);
  Alcotest.(check int) "first window gets half" 2000 d.Mpl.Density.area.(0).(0).(0)

let prop_weighted_rebalance_preserves_cost =
  QCheck.Test.make ~name:"weighted rebalance never changes the cost"
    ~count:100
    (QCheck.pair dg_arb QCheck.small_int)
    (fun ((n, ce), seed) ->
      let g = G.of_edges ~n ce in
      let rng = Mpl_util.Rng.create seed in
      let colors = Array.init n (fun _ -> Mpl_util.Rng.int rng 4) in
      let weights = Array.init n (fun _ -> 1 + Mpl_util.Rng.int rng 100) in
      let balanced =
        Mpl.Balance.rebalance ~weights ~k:4 ~alpha:0.1 g colors
      in
      let before = C.evaluate g colors and after = C.evaluate g balanced in
      before.C.conflicts = after.C.conflicts
      && before.C.stitches = after.C.stitches)

(* --------------------------- render ------------------------------ *)

let test_svg_renders () =
  let contact x y =
    Mpl_geometry.Polygon.of_rect
      (Mpl_geometry.Rect.make ~x0:x ~y0:y ~x1:(x + 20) ~y1:(y + 20))
  in
  let layout =
    Mpl_layout.Layout.make Mpl_layout.Layout.default_tech
      [ contact 0 0; contact 40 0; contact 0 40; contact 40 40 ]
  in
  let g = G.of_layout layout ~min_s:80 in
  let report = Mpl.Decomposer.assign Mpl.Decomposer.Linear g in
  let svg = Mpl.Render.to_svg layout g report.Mpl.Decomposer.colors in
  Alcotest.(check bool) "svg header" true
    (String.length svg > 0 && String.sub svg 0 4 = "<svg");
  (* One background + four feature rects. *)
  let count_sub needle s =
    let n = ref 0 and i = ref 0 in
    let len = String.length needle in
    while !i + len <= String.length s do
      if String.sub s !i len = needle then incr n;
      incr i
    done;
    !n
  in
  Alcotest.(check int) "five rects" 5 (count_sub "<rect " svg);
  (* The K4 is 4-colorable: no red conflict lines. *)
  Alcotest.(check int) "no conflict markers" 0 (count_sub "#dd0000" svg)

let test_svg_marks_conflicts () =
  let contact x y =
    Mpl_geometry.Polygon.of_rect
      (Mpl_geometry.Rect.make ~x0:x ~y0:y ~x1:(x + 20) ~y1:(y + 20))
  in
  let layout =
    Mpl_layout.Layout.make Mpl_layout.Layout.default_tech
      [ contact 0 0; contact 40 0 ]
  in
  let g = G.of_layout layout ~min_s:80 in
  (* Force both on the same mask. *)
  let svg = Mpl.Render.to_svg layout g [| 1; 1 |] in
  Alcotest.(check bool) "conflict marker present" true
    (let rec find i =
       i + 7 <= String.length svg
       && (String.sub svg i 7 = "#dd0000" || find (i + 1))
     in
     find 0)

let test_svg_mismatch_detected () =
  let contact x y =
    Mpl_geometry.Polygon.of_rect
      (Mpl_geometry.Rect.make ~x0:x ~y0:y ~x1:(x + 20) ~y1:(y + 20))
  in
  let layout =
    Mpl_layout.Layout.make Mpl_layout.Layout.default_tech [ contact 0 0 ]
  in
  let g = G.of_edges ~n:5 [] in
  Alcotest.check_raises "node mismatch"
    (Invalid_argument
       "Render.to_svg: node count mismatch (wrong min_s or stitch limit?)")
    (fun () -> ignore (Mpl.Render.to_svg layout g (Array.make 5 0)))

let suite =
  [
    Alcotest.test_case "excess pairs" `Quick test_excess_pairs;
    Alcotest.test_case "max clique known" `Quick test_max_clique_known;
    QCheck_alcotest.to_alcotest prop_max_clique_is_clique;
    QCheck_alcotest.to_alcotest prop_lower_bound_sound;
    Alcotest.test_case "LB tight on cliques" `Quick
      test_lower_bound_tight_on_cliques;
    QCheck_alcotest.to_alcotest prop_local_search_never_worse;
    QCheck_alcotest.to_alcotest prop_anneal_never_worse;
    Alcotest.test_case "local search fixes path" `Quick
      test_local_search_fixes_bad_coloring;
    Alcotest.test_case "anneal deterministic" `Quick test_anneal_deterministic;
    Alcotest.test_case "usage and imbalance" `Quick test_usage_and_imbalance;
    QCheck_alcotest.to_alcotest prop_rebalance_preserves_cost;
    QCheck_alcotest.to_alcotest prop_rebalance_no_worse_imbalance;
    Alcotest.test_case "rebalance isolated" `Quick
      test_rebalance_isolated_vertices;
    Alcotest.test_case "density totals" `Quick test_density_totals;
    Alcotest.test_case "density window clipping" `Quick
      test_density_window_clipping;
    QCheck_alcotest.to_alcotest prop_weighted_rebalance_preserves_cost;
    Alcotest.test_case "svg renders" `Quick test_svg_renders;
    Alcotest.test_case "svg marks conflicts" `Quick test_svg_marks_conflicts;
    Alcotest.test_case "svg mismatch detected" `Quick
      test_svg_mismatch_detected;
  ]
