type t = { fd : Unix.file_descr; ic : in_channel }

let connect_unix path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX path)
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  { fd; ic = Unix.in_channel_of_descr fd }

let connect_tcp host port =
  let addr =
    try Unix.inet_addr_of_string host
    with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
  in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_INET (addr, port))
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  { fd; ic = Unix.in_channel_of_descr fd }

let close t = close_in_noerr t.ic

type outcome = {
  colors : int array;
  rid : int option;
  streamed_pieces : int;
  streamed_cells : int;
  streams_consistent : bool;
  cost : Proto.cost_reply;
  engine : Mpl_engine.Engine.stats option;
  resilience : Proto.resilience_reply;
  cache : Proto.cache_reply option;
  reused : (int * int * int) option;
}

type error =
  | Busy of int * int
  | Timed_out of { deadline_ms : int; elapsed_ms : int }
  | Cancelled of string
  | Remote of { code : string; line : int option; msg : string }
  | Protocol of string

let error_to_string = function
  | Busy (inflight, limit) ->
    Printf.sprintf "server busy (%d/%d requests in flight)" inflight limit
  | Timed_out { deadline_ms; elapsed_ms } ->
    Printf.sprintf "request timed out (deadline %d ms, elapsed %d ms)"
      deadline_ms elapsed_ms
  | Cancelled reason -> Printf.sprintf "request cancelled (%s)" reason
  | Remote { code; line = Some l; msg } ->
    Printf.sprintf "server error [%s] line %d: %s" code l msg
  | Remote { code; line = None; msg } ->
    Printf.sprintf "server error [%s]: %s" code msg
  | Protocol msg -> Printf.sprintf "protocol error: %s" msg

let retryable = function
  | Busy _ | Protocol _ -> true
  | Timed_out _ | Cancelled _ | Remote _ -> false

let transient_connect_error = function
  | Unix.Unix_error
      ( ( Unix.ECONNREFUSED | Unix.ECONNRESET | Unix.ECONNABORTED
        | Unix.ENOENT | Unix.EAGAIN | Unix.EINTR | Unix.ETIMEDOUT ),
        _,
        _ ) ->
    true
  | _ -> false

(* Capped exponential backoff with deterministic ±25% jitter: the
   jitter stream is a fixed-seed SplitMix64, so two runs with the same
   arguments sleep the same schedule (reproducible tests), while
   different seeds decorrelate a thundering herd. *)
let backoff_schedule ?(cap_ms = 2000) ?(seed = 0x6d706c64) ~base_ms ~retries
    () =
  let rng = Mpl_util.Rng.create seed in
  List.init (max 0 retries) (fun i ->
      let base =
        Float.min (float_of_int (max 1 cap_ms))
          (float_of_int (max 1 base_ms) *. (2. ** float_of_int i))
      in
      let jitter = 0.75 +. (0.5 *. Mpl_util.Rng.float rng 1.0) in
      base *. jitter /. 1000.)

(* A send to a server that vanished (reaped this connection, crashed)
   must surface as a retryable error, not an exception: EPIPE here is
   routine lifecycle, not a bug. *)
let send t s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off >= n then Ok ()
    else
      match Unix.write t.fd b off (n - off) with
      | w -> go (off + w)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception
          Unix.Unix_error
            ( ( Unix.EPIPE | Unix.ECONNRESET | Unix.ECONNABORTED
              | Unix.EBADF | Unix.ENOTCONN ),
              _,
              _ ) ->
        Error (Protocol "connection closed by server")
  in
  go 0

let read_reply t =
  match input_line t.ic with
  | exception End_of_file -> Error (Protocol "connection closed by server")
  | exception Sys_error msg -> Error (Protocol msg)
  | line -> (
    match Proto.parse_reply line with
    | Ok r -> Ok r
    | Error msg -> Error (Protocol msg))

let ( let* ) r f = Result.bind r f

(* Accumulate one reply stream until DONE; any ERR/BUSY ends it. The
   same stream shape serves DECOMPOSE and REDECOMPOSE — the latter just
   adds one REUSED line before DONE. *)
let read_stream t =
  let pieces = ref [] in
  let cost = ref None in
  let engine = ref None in
  let resilience = ref None in
  let cache = ref None in
  let reused = ref None in
  let rid = ref None in
  let rec loop () =
    let* reply = read_reply t in
    match reply with
    | Proto.Ack r ->
      rid := r;
      loop ()
    | Proto.Busy (i, l) -> Error (Busy (i, l))
    | Proto.Err { code; line; msg } -> Error (Remote { code; line; msg })
    | Proto.Piece { idx = _; cells } ->
      pieces := cells :: !pieces;
      loop ()
    | Proto.Cost c ->
      cost := Some c;
      loop ()
    | Proto.Engine e ->
      engine := Some e;
      loop ()
    | Proto.Resilience r ->
      resilience := Some r;
      loop ()
    | Proto.Cache_info c ->
      cache := Some c;
      loop ()
    | Proto.Reused { reused = r; dirty; features } ->
      reused := Some (r, dirty, features);
      loop ()
    | Proto.Done colors -> (
      match (!cost, !resilience) with
      | Some cost, Some resilience ->
        let streamed = List.rev !pieces in
        let streamed_cells =
          List.fold_left (fun n cs -> n + Array.length cs) 0 streamed
        in
        let streams_consistent =
          List.for_all
            (Array.for_all (fun (v, c) ->
                 v >= 0 && v < Array.length colors && colors.(v) = c))
            streamed
        in
        Ok
          {
            colors;
            rid = !rid;
            streamed_pieces = List.length streamed;
            streamed_cells;
            streams_consistent;
            cost;
            engine = !engine;
            resilience;
            cache = !cache;
            reused = !reused;
          }
      | _ -> Error (Protocol "DONE before COST/RESILIENCE"))
    | Proto.Timeout { deadline_ms; elapsed_ms } ->
      Error (Timed_out { deadline_ms; elapsed_ms })
    | Proto.Cancelled reason -> Error (Cancelled reason)
    | Proto.Pong | Proto.Bye | Proto.Json _ ->
      Error (Protocol "unexpected admin reply in a DECOMPOSE stream")
  in
  loop ()

let decompose t ?(request = Proto.default_request) body =
  let* () =
    send t (Proto.encode_request request ~body_len:(String.length body))
  in
  let* () = send t body in
  read_stream t

let redecompose t ?(request = Proto.default_request) ~hash body =
  let* () =
    send t
      (Proto.encode_redecompose request ~hash ~body_len:(String.length body))
  in
  let* () = send t body in
  read_stream t

let admin_json t verb =
  let* () = send t (verb ^ "\n") in
  let* reply = read_reply t in
  match reply with
  | Proto.Json s -> Ok s
  | Proto.Err { code; line; msg } -> Error (Remote { code; line; msg })
  | _ -> Error (Protocol ("unexpected reply to " ^ verb))

let stats t = admin_json t "STATS"
let metrics t = admin_json t "METRICS"

let ping t =
  match send t "PING\n" with
  | Error _ -> false
  | Ok () -> (
    match read_reply t with Ok Proto.Pong -> true | Ok _ | Error _ -> false)

let quit t =
  match send t "QUIT\n" with
  | Error _ -> ()
  | Ok () -> ( match read_reply t with Ok _ | Error _ -> ())

(* One-shot HTTP/1.0 fetch over the protocol socket (the server sniffs
   the request-line). The server closes after one response, so this
   consumes the connection — callers should treat [t] as spent. *)
let http t path =
  let* () = send t (Printf.sprintf "GET %s HTTP/1.0\r\n\r\n" path) in
  let strip_cr l =
    let n = String.length l in
    if n > 0 && l.[n - 1] = '\r' then String.sub l 0 (n - 1) else l
  in
  match input_line t.ic with
  | exception End_of_file -> Error (Protocol "connection closed by server")
  | exception Sys_error msg -> Error (Protocol msg)
  | status_line -> (
    match
      List.filter
        (fun s -> s <> "")
        (String.split_on_char ' ' (strip_cr status_line))
    with
    | version :: code :: _
      when String.length version >= 5 && String.sub version 0 5 = "HTTP/" -> (
      match int_of_string_opt code with
      | None -> Error (Protocol ("bad HTTP status line: " ^ status_line))
      | Some status ->
        (* headers to the blank line, then body to EOF *)
        let rec headers () =
          match input_line t.ic with
          | exception End_of_file -> ()
          | exception Sys_error _ -> ()
          | l -> if strip_cr l <> "" then headers ()
        in
        headers ();
        let buf = Buffer.create 4096 in
        let chunk = Bytes.create 4096 in
        let rec body () =
          match input t.ic chunk 0 (Bytes.length chunk) with
          | 0 -> ()
          | n ->
            Buffer.add_subbytes buf chunk 0 n;
            body ()
          | exception Sys_error _ -> ()
        in
        body ();
        Ok (status, Buffer.contents buf))
    | _ -> Error (Protocol ("bad HTTP status line: " ^ status_line)))
