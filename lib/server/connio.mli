(** Non-blocking connection I/O for the server: timed reads, buffered
    timed writes, and deterministic network fault injection.

    One [t] wraps one accepted socket. The fd is switched to
    non-blocking mode and every wait goes through [select], so a
    handler thread can never be pinned by a peer that stops reading or
    writing:

    - {b reads} — {!read_line} waits forever for the *first* byte of a
      line (an idle keep-alive connection is fine) but applies the
      read timeout as soon as a line is partially received (slowloris
      protection); {!read_exact} applies the read timeout to every
      wait with no progress (a slow-but-moving body upload never
      trips it, a stalled one does).
    - {b writes} — {!send} appends to a per-connection buffer and
      flushes it past a threshold; {!flush} writes the buffer out
      under one absolute write deadline. A reader that stops draining
      its socket surfaces as [Error Timeout]; a vanished peer
      ([EPIPE]/[ECONNRESET]) as [Error Closed]. Neither raises.

    When the injector is armed for a network site, each {!send} probes
    it: [Conn_drop] shuts the connection down, [Write_stall] reports
    an exhausted write deadline (without sleeping), [Torn_frame]
    writes half the payload and shuts down — so every teardown path is
    reachable deterministically. {!read_exact} additionally probes
    [Conn_drop], modeling a client vanishing mid-upload. After any
    fault or I/O failure the connection is {!alive}[ = false] and all
    further operations fail fast. *)

type t

type werr =
  | Timeout  (** write deadline exhausted: the peer stopped reading *)
  | Closed  (** peer gone ([EPIPE]/[ECONNRESET]/...) or already dead *)

val create :
  ?fault:Mpl_engine.Fault.t ->
  ?read_timeout_s:float ->
  ?write_timeout_s:float ->
  Unix.file_descr ->
  t
(** Wrap an accepted socket (sets [O_NONBLOCK]). Timeouts [<= 0]
    disable the respective deadline (waits become infinite). Defaults:
    10 s each, no fault. *)

val fd : t -> Unix.file_descr

val alive : t -> bool
(** [false] once any operation hit EOF, a peer error, a timeout, or an
    injected fault. *)

val read_line : ?timed:bool -> t -> (string, [ `Eof | `Timeout | `Too_long ]) result
(** Next newline-terminated line, newline stripped (lines are capped
    at 64 KiB — [`Too_long] past that). The wait for the first byte is
    unbounded (an idle keep-alive connection is fine); once any byte
    of the line arrived, each subsequent wait is bounded by the read
    timeout. With [~timed:true] the first byte is bounded too — used
    for HTTP header drains, where the peer already owes us a line. *)

val read_exact : t -> int -> (string, [ `Eof | `Timeout ]) result
(** Exactly [n] bytes (the length-prefixed request body). Every wait
    without progress is bounded by the read timeout. *)

val send : t -> string -> (unit, werr) result
(** Buffer [s] for writing, flushing if the buffer passed 8 KiB. *)

val flush : t -> (unit, werr) result
(** Write the buffered output out under one absolute write deadline. *)

val shutdown : t -> unit
(** Best-effort [Unix.shutdown] of both directions (wakes a peer
    blocked on the socket); does not close the fd. *)

val close : t -> unit
(** Close the fd. Idempotent; implies {!alive}[ = false]. *)
