type entry = {
  id : int;
  circuit : string;
  algo : string;
  k : int;
  priority : int;
  bytes : int;
  pieces : int;
  cache_hits : int;
  queue_wait_ns : int64;
  first_piece_ns : int64;
  solve_ns : int64;
  total_ns : int64;
  degraded : int;
  outcome : string;
  trace : Mpl_obs.Sink.event list;
}

(* Fixed-capacity circular buffer under one mutex. Entries are small
   (the per-request trace is capped by the server before insertion),
   so holding the lock across an add or a snapshot is cheap. *)
type t = {
  lock : Mutex.t;
  slots : entry option array;
  mutable next : int;  (* slot the next add writes *)
  mutable count : int;  (* live entries, <= capacity *)
}

let create capacity =
  if capacity < 1 then invalid_arg "Ring.create: capacity < 1";
  {
    lock = Mutex.create ();
    slots = Array.make capacity None;
    next = 0;
    count = 0;
  }

let capacity t = Array.length t.slots

let add t e =
  Mutex.lock t.lock;
  t.slots.(t.next) <- Some e;
  t.next <- (t.next + 1) mod Array.length t.slots;
  if t.count < Array.length t.slots then t.count <- t.count + 1;
  Mutex.unlock t.lock

let entries t =
  Mutex.lock t.lock;
  let cap = Array.length t.slots in
  let out = ref [] in
  (* Oldest-first walk accumulates into a newest-first list. *)
  for i = 0 to t.count - 1 do
    let idx = (t.next - t.count + i + (2 * cap)) mod cap in
    match t.slots.(idx) with
    | Some e -> out := e :: !out
    | None -> ()
  done;
  Mutex.unlock t.lock;
  !out

let find t id = List.find_opt (fun e -> e.id = id) (entries t)
