type request = {
  k : int;
  algo : Mpl.Decomposer.algorithm;
  jobs : int;
  priority : int;
  min_s : int option;
  cache : bool;
  permuted : bool;
  inject : Mpl_engine.Fault.spec option;
  deadline_ms : int option;
  windows : int;
  window_nm : int option;
}

let default_request =
  {
    k = 4;
    algo = Mpl.Decomposer.Linear;
    jobs = 1;
    priority = 0;
    min_s = None;
    cache = true;
    permuted = false;
    inject = None;
    deadline_ms = None;
    windows = 1;
    window_nm = None;
  }

let algorithm_of_name = function
  | "ilp" -> Some Mpl.Decomposer.Ilp
  | "exact" -> Some Mpl.Decomposer.Exact
  | "sdp-backtrack" | "sdp" -> Some Mpl.Decomposer.Sdp_backtrack
  | "sdp-greedy" -> Some Mpl.Decomposer.Sdp_greedy
  | "linear" -> Some Mpl.Decomposer.Linear
  | _ -> None

let name_of_algorithm = function
  | Mpl.Decomposer.Ilp -> "ilp"
  | Mpl.Decomposer.Exact -> "exact"
  | Mpl.Decomposer.Sdp_backtrack -> "sdp-backtrack"
  | Mpl.Decomposer.Sdp_greedy -> "sdp-greedy"
  | Mpl.Decomposer.Linear -> "linear"

type command =
  | Decompose of int * request
  | Redecompose of int * string * request
      (** body length, previous-layout session hash, request *)
  | Stats
  | Metrics
  | Ping
  | Quit

let encode_request_with ~verb ?hash r ~body_len =
  let b = Buffer.create 128 in
  Buffer.add_string b
    (Printf.sprintf "%s %d k=%d algo=%s jobs=%d priority=%d cache=%d permuted=%d"
       verb body_len r.k (name_of_algorithm r.algo) r.jobs r.priority
       (if r.cache then 1 else 0)
       (if r.permuted then 1 else 0));
  (match hash with
  | Some h -> Buffer.add_string b (Printf.sprintf " hash=%s" h)
  | None -> ());
  (match r.min_s with
  | Some m -> Buffer.add_string b (Printf.sprintf " min_s=%d" m)
  | None -> ());
  (match r.inject with
  | Some spec ->
    Buffer.add_string b (" inject=" ^ Mpl_engine.Fault.spec_to_string spec)
  | None -> ());
  (match r.deadline_ms with
  | Some ms -> Buffer.add_string b (Printf.sprintf " deadline=%d" ms)
  | None -> ());
  if r.windows <> 1 then
    Buffer.add_string b (Printf.sprintf " windows=%d" r.windows);
  (match r.window_nm with
  | Some nm -> Buffer.add_string b (Printf.sprintf " window_nm=%d" nm)
  | None -> ());
  Buffer.add_char b '\n';
  Buffer.contents b

let encode_request r ~body_len =
  encode_request_with ~verb:"DECOMPOSE" r ~body_len

let encode_redecompose r ~hash ~body_len =
  encode_request_with ~verb:"REDECOMPOSE" ~hash r ~body_len

(* Tokenizer shared by both directions: space-separated words, a
   trailing \r stripped (so CRLF clients work over TCP). *)
let tokens line =
  let line =
    let n = String.length line in
    if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line
  in
  List.filter (fun s -> s <> "") (String.split_on_char ' ' line)

let int_of s = int_of_string_opt s

(* key=value fields; unknown keys are ignored so the protocol can grow
   without breaking older peers. *)
let apply_field r tok =
  match String.index_opt tok '=' with
  | None -> Error (Printf.sprintf "malformed field %S (expected key=value)" tok)
  | Some i -> (
    let key = String.sub tok 0 i in
    let v = String.sub tok (i + 1) (String.length tok - i - 1) in
    let as_int f =
      match int_of v with
      | Some n -> Ok (f n)
      | None -> Error (Printf.sprintf "field %s: not an integer: %S" key v)
    in
    match key with
    | "k" -> as_int (fun k -> { r with k })
    | "jobs" -> as_int (fun jobs -> { r with jobs })
    | "priority" -> as_int (fun priority -> { r with priority })
    | "min_s" -> as_int (fun m -> { r with min_s = Some m })
    | "deadline" -> (
      match int_of v with
      | Some ms when ms > 0 -> Ok { r with deadline_ms = Some ms }
      | Some _ -> Error "field deadline: must be positive milliseconds"
      | None -> Error (Printf.sprintf "field deadline: not an integer: %S" v))
    | "cache" -> as_int (fun c -> { r with cache = c <> 0 })
    | "permuted" -> as_int (fun p -> { r with permuted = p <> 0 })
    | "windows" -> (
      match int_of v with
      | Some n when n >= 1 -> Ok { r with windows = n }
      | Some _ -> Error "field windows: must be >= 1"
      | None -> Error (Printf.sprintf "field windows: not an integer: %S" v))
    | "window_nm" -> (
      match int_of v with
      | Some nm when nm > 0 -> Ok { r with window_nm = Some nm }
      | Some _ -> Error "field window_nm: must be positive nanometers"
      | None ->
        Error (Printf.sprintf "field window_nm: not an integer: %S" v))
    | "algo" -> (
      match algorithm_of_name v with
      | Some algo -> Ok { r with algo }
      | None -> Error (Printf.sprintf "unknown algorithm %S" v))
    | "inject" -> (
      match Mpl_engine.Fault.parse v with
      | Ok spec -> Ok { r with inject = Some spec }
      | Error msg -> Error (Printf.sprintf "field inject: %s" msg))
    | _ -> Ok r)

let parse_command line =
  match tokens line with
  | [] -> Error "empty request line"
  | [ "STATS" ] -> Ok Stats
  | [ "METRICS" ] -> Ok Metrics
  | [ "PING" ] -> Ok Ping
  | [ "QUIT" ] -> Ok Quit
  | "DECOMPOSE" :: nbytes :: fields -> (
    match int_of nbytes with
    | None -> Error (Printf.sprintf "DECOMPOSE: bad body length %S" nbytes)
    | Some n when n < 0 -> Error "DECOMPOSE: negative body length"
    | Some n ->
      let rec go r = function
        | [] -> Ok (Decompose (n, r))
        | tok :: rest -> (
          match apply_field r tok with
          | Ok r -> go r rest
          | Error _ as e -> e)
      in
      go default_request fields)
  | "REDECOMPOSE" :: nbytes :: fields -> (
    match int_of nbytes with
    | None -> Error (Printf.sprintf "REDECOMPOSE: bad body length %S" nbytes)
    | Some n when n < 0 -> Error "REDECOMPOSE: negative body length"
    | Some n ->
      (* the session hash is the only REDECOMPOSE-specific field; the
         rest shares DECOMPOSE's vocabulary *)
      let hash = ref None in
      let rec go r = function
        | [] -> (
          match !hash with
          | Some h -> Ok (Redecompose (n, h, r))
          | None -> Error "REDECOMPOSE: missing hash= field")
        | tok :: rest -> (
          if String.length tok > 5 && String.sub tok 0 5 = "hash=" then begin
            hash := Some (String.sub tok 5 (String.length tok - 5));
            go r rest
          end
          else
            match apply_field r tok with
            | Ok r -> go r rest
            | Error _ as e -> e)
      in
      go default_request fields)
  | verb :: _ -> Error (Printf.sprintf "unknown request %S" verb)

type cost_reply = {
  conflicts : int;
  stitches : int;
  scaled : int;
  elapsed_s : float;
  timed_out : bool;
}

type resilience_reply = {
  degraded : int;
  piece_failures : int;
  fallbacks : int;
  fired : bool;
}

type cache_reply = {
  entries : int;
  bytes : int;
  hits : int;
  misses : int;
  warm_hits : int;
  corrupt_drops : int;
  evictions : int;
}

type reply =
  | Ack of int option
  | Busy of int * int
  | Piece of { idx : int; cells : (int * int) array }
  | Cost of cost_reply
  | Engine of Mpl_engine.Engine.stats
  | Resilience of resilience_reply
  | Cache_info of cache_reply
  | Reused of { reused : int; dirty : int; features : int }
  | Done of int array
  | Timeout of { deadline_ms : int; elapsed_ms : int }
  | Cancelled of string
  | Err of { code : string; line : int option; msg : string }
  | Pong
  | Bye
  | Json of string

let ack_line ?rid () =
  match rid with
  | Some id -> Printf.sprintf "ACK rid=%d\n" id
  | None -> "ACK\n"
let pong_line = "PONG\n"
let bye_line = "BYE\n"

let busy_line ~inflight ~limit = Printf.sprintf "BUSY %d %d\n" inflight limit

let piece_line ~idx ~back ~colors =
  let b = Buffer.create (16 + (8 * Array.length back)) in
  Buffer.add_string b (Printf.sprintf "PIECE %d %d" idx (Array.length back));
  Array.iteri
    (fun j v -> Buffer.add_string b (Printf.sprintf " %d:%d" v colors.(j)))
    back;
  Buffer.add_char b '\n';
  Buffer.contents b

let cost_line (c : cost_reply) =
  Printf.sprintf
    "COST conflicts=%d stitches=%d scaled=%d elapsed=%.6f timed_out=%d\n"
    c.conflicts c.stitches c.scaled c.elapsed_s
    (if c.timed_out then 1 else 0)

let engine_line (e : Mpl_engine.Engine.stats) =
  Printf.sprintf
    "ENGINE pieces=%d solved=%d hits=%d reused=%d failed=%d rejected=%d\n"
    e.Mpl_engine.Engine.pieces e.Mpl_engine.Engine.solved
    e.Mpl_engine.Engine.hits e.Mpl_engine.Engine.reused
    e.Mpl_engine.Engine.failed e.Mpl_engine.Engine.rejected

let resilience_line (r : resilience_reply) =
  Printf.sprintf
    "RESILIENCE degraded=%d piece_failures=%d fallbacks=%d fired=%d\n"
    r.degraded r.piece_failures r.fallbacks
    (if r.fired then 1 else 0)

let cache_line (c : cache_reply) =
  Printf.sprintf
    "CACHE entries=%d bytes=%d hits=%d misses=%d warm=%d drops=%d \
     evictions=%d\n"
    c.entries c.bytes c.hits c.misses c.warm_hits c.corrupt_drops c.evictions

let reused_line ~reused ~dirty ~features =
  Printf.sprintf "REUSED n=%d dirty=%d features=%d\n" reused dirty features

let done_line colors =
  let b = Buffer.create (8 + (4 * Array.length colors)) in
  Buffer.add_string b (Printf.sprintf "DONE %d" (Array.length colors));
  Array.iter (fun c -> Buffer.add_string b (Printf.sprintf " %d" c)) colors;
  Buffer.add_char b '\n';
  Buffer.contents b

let timeout_line ~deadline_ms ~elapsed_ms =
  Printf.sprintf "TIMEOUT deadline_ms=%d elapsed_ms=%d\n" deadline_ms
    elapsed_ms

(* Reasons are single lower-case tokens ("disconnected", "shutdown")
   so the line stays trivially tokenizable. *)
let cancelled_line ~reason = Printf.sprintf "CANCELLED %s\n" reason

let flatten_msg msg =
  String.concat "; "
    (List.filter (fun s -> s <> "") (String.split_on_char '\n' msg))

let err_line ~code ?line msg =
  match line with
  | Some l -> Printf.sprintf "ERR %s line=%d %s\n" code l (flatten_msg msg)
  | None -> Printf.sprintf "ERR %s %s\n" code (flatten_msg msg)

(* Reply-side key=value parsing: fields are fixed per line kind, so a
   missing or malformed field is a protocol error. *)
let field_int fields key =
  let prefix = key ^ "=" in
  let rec go = function
    | [] -> Error (Printf.sprintf "missing field %s" key)
    | tok :: rest ->
      if String.length tok > String.length prefix
         && String.sub tok 0 (String.length prefix) = prefix
      then
        match
          int_of
            (String.sub tok (String.length prefix)
               (String.length tok - String.length prefix))
        with
        | Some n -> Ok n
        | None -> Error (Printf.sprintf "bad field %S" tok)
      else go rest
  in
  go fields

let field_float fields key =
  let prefix = key ^ "=" in
  let rec go = function
    | [] -> Error (Printf.sprintf "missing field %s" key)
    | tok :: rest ->
      if String.length tok > String.length prefix
         && String.sub tok 0 (String.length prefix) = prefix
      then
        match
          float_of_string_opt
            (String.sub tok (String.length prefix)
               (String.length tok - String.length prefix))
        with
        | Some f -> Ok f
        | None -> Error (Printf.sprintf "bad field %S" tok)
      else go rest
  in
  go fields

let ( let* ) r f = Result.bind r f

let parse_reply line =
  if String.length line > 0 && line.[0] = '{' then Ok (Json line)
  else
    match tokens line with
    | [] -> Error "empty reply line"
    | "ACK" :: fields ->
      (* rid= is optional so pre-telemetry servers still parse *)
      Ok (Ack (Result.to_option (field_int fields "rid")))
    | [ "PONG" ] -> Ok Pong
    | [ "BYE" ] -> Ok Bye
    | [ "BUSY"; a; b ] -> (
      match (int_of a, int_of b) with
      | Some x, Some y -> Ok (Busy (x, y))
      | _ -> Error "BUSY: bad counters")
    | "PIECE" :: idx :: n :: cells -> (
      match (int_of idx, int_of n) with
      | Some idx, Some n when List.length cells = n -> (
        let parse_cell tok =
          match String.index_opt tok ':' with
          | None -> None
          | Some i -> (
            match
              ( int_of (String.sub tok 0 i),
                int_of
                  (String.sub tok (i + 1) (String.length tok - i - 1)) )
            with
            | Some v, Some c -> Some (v, c)
            | _ -> None)
        in
        let parsed = List.filter_map parse_cell cells in
        match List.length parsed = n with
        | true -> Ok (Piece { idx; cells = Array.of_list parsed })
        | false -> Error "PIECE: malformed cell")
      | _ -> Error "PIECE: bad header")
    | "COST" :: fields ->
      let* conflicts = field_int fields "conflicts" in
      let* stitches = field_int fields "stitches" in
      let* scaled = field_int fields "scaled" in
      let* elapsed_s = field_float fields "elapsed" in
      let* t = field_int fields "timed_out" in
      Ok (Cost { conflicts; stitches; scaled; elapsed_s; timed_out = t <> 0 })
    | "ENGINE" :: fields ->
      let* pieces = field_int fields "pieces" in
      let* solved = field_int fields "solved" in
      let* hits = field_int fields "hits" in
      let* reused = field_int fields "reused" in
      let* failed = field_int fields "failed" in
      let* rejected = field_int fields "rejected" in
      Ok
        (Engine
           {
             Mpl_engine.Engine.pieces;
             solved;
             hits;
             reused;
             failed;
             rejected;
           })
    | "RESILIENCE" :: fields ->
      let* degraded = field_int fields "degraded" in
      let* piece_failures = field_int fields "piece_failures" in
      let* fallbacks = field_int fields "fallbacks" in
      let* fired = field_int fields "fired" in
      Ok (Resilience { degraded; piece_failures; fallbacks; fired = fired <> 0 })
    | "CACHE" :: fields ->
      let* entries = field_int fields "entries" in
      let* bytes = field_int fields "bytes" in
      let* hits = field_int fields "hits" in
      let* misses = field_int fields "misses" in
      let* warm_hits = field_int fields "warm" in
      let* corrupt_drops = field_int fields "drops" in
      let* evictions = field_int fields "evictions" in
      Ok
        (Cache_info
           {
             entries;
             bytes;
             hits;
             misses;
             warm_hits;
             corrupt_drops;
             evictions;
           })
    | "REUSED" :: fields ->
      let* reused = field_int fields "n" in
      let* dirty = field_int fields "dirty" in
      let* features = field_int fields "features" in
      Ok (Reused { reused; dirty; features })
    | "DONE" :: n :: colors -> (
      match int_of n with
      | Some n when List.length colors = n -> (
        let parsed = List.filter_map int_of colors in
        match List.length parsed = n with
        | true -> Ok (Done (Array.of_list parsed))
        | false -> Error "DONE: malformed color")
      | _ -> Error "DONE: bad length")
    | "TIMEOUT" :: fields ->
      let* deadline_ms = field_int fields "deadline_ms" in
      let* elapsed_ms = field_int fields "elapsed_ms" in
      Ok (Timeout { deadline_ms; elapsed_ms })
    | [ "CANCELLED"; reason ] -> Ok (Cancelled reason)
    | [ "CANCELLED" ] -> Ok (Cancelled "unknown")
    | "ERR" :: code :: rest -> (
      match rest with
      | tok :: more
        when String.length tok > 5 && String.sub tok 0 5 = "line=" -> (
        match int_of (String.sub tok 5 (String.length tok - 5)) with
        | Some l ->
          Ok (Err { code; line = Some l; msg = String.concat " " more })
        | None -> Error "ERR: bad line field")
      | _ -> Ok (Err { code; line = None; msg = String.concat " " rest }))
    | verb :: _ -> Error (Printf.sprintf "unknown reply %S" verb)
