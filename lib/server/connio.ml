(* Non-blocking connection I/O with select-based deadlines.

   The in_channel-based transport this replaces had two lifecycle
   holes: a blocking [write] could pin a handler thread forever behind
   a reader that stopped draining its socket, and [input_line] gave no
   way to bound how long a half-sent request header may dangle
   (slowloris). Everything here funnels through two primitives —
   [wait_io] (select with an absolute monotonic deadline) and
   [write_all] — so every path is bounded and every peer-gone errno is
   mapped to a result instead of an exception. *)

type werr = Timeout | Closed

type t = {
  cfd : Unix.file_descr;
  fault : Mpl_engine.Fault.t;
  rbuf : Bytes.t;
  mutable rpos : int;  (* consumed prefix of rbuf *)
  mutable rend : int;  (* filled prefix of rbuf *)
  out : Buffer.t;
  read_timeout_s : float;  (* <= 0: unbounded *)
  write_timeout_s : float;  (* <= 0: unbounded *)
  mutable dead : bool;
  mutable closed : bool;
}

let rbuf_size = 8192
let flush_threshold = 8192
let max_line = 1 lsl 16

let create ?(fault = Mpl_engine.Fault.none) ?(read_timeout_s = 10.)
    ?(write_timeout_s = 10.) cfd =
  Unix.set_nonblock cfd;
  {
    cfd;
    fault;
    rbuf = Bytes.create rbuf_size;
    rpos = 0;
    rend = 0;
    out = Buffer.create 1024;
    read_timeout_s;
    write_timeout_s;
    dead = false;
    closed = false;
  }

let fd t = t.cfd
let alive t = (not t.dead) && not t.closed

let shutdown t = try Unix.shutdown t.cfd Unix.SHUTDOWN_ALL with _ -> ()

let close t =
  t.dead <- true;
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.cfd with _ -> ()
  end

(* Absolute deadline for one logical wait; None = unbounded. *)
let arm timeout_s =
  if timeout_s <= 0. then None
  else
    Some
      (Int64.add (Mpl_util.Timer.now_ns ())
         (Int64.of_float (timeout_s *. 1e9)))

(* Wait until the fd is readable/writable or the deadline passes.
   EINTR never consumes the deadline budget by accident: the remaining
   time is recomputed from the absolute deadline each retry. *)
let rec wait_io t ~deadline ~write =
  let tmo =
    match deadline with
    | None -> -1.
    | Some d ->
      let left = Int64.sub d (Mpl_util.Timer.now_ns ()) in
      if left <= 0L then 0. else Int64.to_float left /. 1e9
  in
  if tmo = 0. then Error Timeout
  else
    let rd = if write then [] else [ t.cfd ] in
    let wr = if write then [ t.cfd ] else [] in
    match Unix.select rd wr [] tmo with
    | [], [], _ -> if deadline = None then wait_io t ~deadline ~write else Error Timeout
    | _ -> Ok ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) ->
      wait_io t ~deadline ~write

(* One non-blocking read into [buf]. [Ok 0] is EOF; a peer-reset errno
   is EOF too (the distinction never matters to a reader). *)
let rec read_once t buf off len ~deadline =
  match Unix.read t.cfd buf off len with
  | n -> Ok n
  | exception Unix.Unix_error (Unix.EINTR, _, _) ->
    read_once t buf off len ~deadline
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> (
    match wait_io t ~deadline ~write:false with
    | Ok () -> read_once t buf off len ~deadline
    | Error Timeout -> Error `Timeout
    | Error Closed -> Ok 0)
  | exception
      Unix.Unix_error
        ((Unix.ECONNRESET | Unix.EPIPE | Unix.EBADF | Unix.ENOTCONN), _, _)
    ->
    Ok 0

let refill t ~deadline =
  match read_once t t.rbuf 0 (Bytes.length t.rbuf) ~deadline with
  | Ok n ->
    t.rpos <- 0;
    t.rend <- n;
    Ok n
  | Error _ as e -> e

let read_line ?(timed = false) t =
  if not (alive t) then Error `Eof
  else begin
    let acc = Buffer.create 80 in
    let rec go () =
      let nl = ref (-1) in
      (let i = ref t.rpos in
       while !nl < 0 && !i < t.rend do
         if Bytes.get t.rbuf !i = '\n' then nl := !i;
         incr i
       done);
      if !nl >= 0 then begin
        Buffer.add_subbytes acc t.rbuf t.rpos (!nl - t.rpos);
        t.rpos <- !nl + 1;
        if Buffer.length acc > max_line then begin
          t.dead <- true;
          Error `Too_long
        end
        else Ok (Buffer.contents acc)
      end
      else begin
        Buffer.add_subbytes acc t.rbuf t.rpos (t.rend - t.rpos);
        t.rpos <- 0;
        t.rend <- 0;
        if Buffer.length acc > max_line then begin
          t.dead <- true;
          Error `Too_long
        end
        else begin
          (* Idle between requests: wait forever (unless [timed]).
             Mid-line: the read timeout bounds how long a half-sent
             header may dangle. *)
          let deadline =
            if Buffer.length acc = 0 && not timed then None
            else arm t.read_timeout_s
          in
          match refill t ~deadline with
          | Ok 0 ->
            t.dead <- true;
            Error `Eof
          | Ok _ -> go ()
          | Error `Timeout ->
            t.dead <- true;
            Error `Timeout
        end
      end
    in
    go ()
  end

let read_exact t n =
  if not (alive t) then Error `Eof
  else if Mpl_engine.Fault.fires t.fault Mpl_engine.Fault.Conn_drop then begin
    shutdown t;
    t.dead <- true;
    Error `Eof
  end
  else begin
    let out = Bytes.create n in
    let have = min n (t.rend - t.rpos) in
    Bytes.blit t.rbuf t.rpos out 0 have;
    t.rpos <- t.rpos + have;
    if t.rpos = t.rend then begin
      t.rpos <- 0;
      t.rend <- 0
    end;
    let rec go filled =
      if filled >= n then Ok (Bytes.unsafe_to_string out)
      else begin
        (* A fresh deadline per read: progress resets the clock, so
           only a genuinely stalled upload trips it. *)
        match read_once t out filled (n - filled) ~deadline:(arm t.read_timeout_s) with
        | Ok 0 ->
          t.dead <- true;
          Error `Eof
        | Ok r -> go (filled + r)
        | Error `Timeout ->
          t.dead <- true;
          Error `Timeout
      end
    in
    go have
  end

let rec write_all t buf off len ~deadline =
  if len = 0 then Ok ()
  else
    match Unix.single_write t.cfd buf off len with
    | n -> write_all t buf (off + n) (len - n) ~deadline
    | exception Unix.Unix_error (Unix.EINTR, _, _) ->
      write_all t buf off len ~deadline
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> (
      match wait_io t ~deadline ~write:true with
      | Ok () -> write_all t buf off len ~deadline
      | Error _ ->
        t.dead <- true;
        Error Timeout)
    | exception
        Unix.Unix_error
          ( ( Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF | Unix.ENOTCONN
            | Unix.ESHUTDOWN ),
            _,
            _ ) ->
      t.dead <- true;
      Error Closed

let flush t =
  if t.dead then Error Closed
  else if Buffer.length t.out = 0 then Ok ()
  else begin
    let data = Buffer.to_bytes t.out in
    Buffer.clear t.out;
    (* One absolute deadline for the whole buffer: a reader draining
       one byte per second cannot stretch the flush indefinitely. *)
    write_all t data 0 (Bytes.length data) ~deadline:(arm t.write_timeout_s)
  end

let send t s =
  if t.dead then Error Closed
  else if Mpl_engine.Fault.fires t.fault Mpl_engine.Fault.Conn_drop then begin
    shutdown t;
    t.dead <- true;
    Error Closed
  end
  else if Mpl_engine.Fault.fires t.fault Mpl_engine.Fault.Write_stall
  then begin
    (* Models a reader that stopped draining: the outcome of a real
       stall (write deadline exhausted), without the wait. *)
    t.dead <- true;
    Error Timeout
  end
  else if Mpl_engine.Fault.fires t.fault Mpl_engine.Fault.Torn_frame
  then begin
    ignore (flush t);
    let half = String.length s / 2 in
    ignore
      (write_all t (Bytes.of_string s) 0 half ~deadline:(arm t.write_timeout_s));
    shutdown t;
    t.dead <- true;
    Error Closed
  end
  else begin
    Buffer.add_string t.out s;
    if Buffer.length t.out >= flush_threshold then flush t else Ok ()
  end
