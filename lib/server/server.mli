(** The decomposition daemon behind [mpld serve].

    One process owns one work-stealing {!Mpl_engine.Pool} and one
    shared, byte-budgeted {!Mpl_engine.Cache}; any number of client
    connections (Unix-domain and/or TCP) submit {!Proto} requests that
    are scheduled onto them. Three layers:

    - {b transport}: one listener thread multiplexes the listening
      sockets; each accepted connection gets a handler thread that
      reads newline-framed requests and streams replies. Handler
      threads coordinate pool work but solve nothing themselves, so
      OCaml's systhread serialization costs nothing — the parallelism
      lives in the pool's worker domains. A connection whose first
      line is an HTTP request-line is answered as HTTP/1.0 instead
      (see below) and closed after one response.
    - {b scheduler}: admission control bounds the number of requests
      decomposing at once ([max_inflight]); a request over the bound
      gets an immediate [BUSY] reply instead of queueing (the client
      owns its retry policy). Admitted requests map their protocol
      priority onto pool priorities through
      [Decomposer.params.priority_bias], scaled so that any
      higher-priority request's pieces dequeue before any
      lower-priority request's regardless of piece size.
    - {b shared cache}: all requests with compatible reuse semantics
      share one cache; piece signatures are salted with each request's
      solver-parameter fingerprint, so entries can never cross
      parameter settings. The cache is optionally persisted: loaded on
      boot, saved on graceful shutdown and every [persist_every]
      served requests. A request asking for the reuse mode the server
      cache was not built with ([permuted] vs. exact) gets a private
      per-request cache instead — never a mode-mismatched shared one.

    {b Request telemetry}: every [DECOMPOSE] gets a server-assigned id
    (echoed as [ACK rid=N]). With [ring > 0] each admitted request
    runs under a private span sink tagged with its id/circuit/k/algo
    (sharing the server-lifetime metrics registry), and every outcome
    — ok, error, parse, busy — lands a summary in a bounded in-memory
    ring and, with [access_log], one JSONL line in a size-rotated
    access log. Latency SLO histograms (queue wait,
    admission-to-first-piece, end-to-end) feed the p50/p90/p99
    estimates in [STATS]. With [ring = 0] and no access log the
    serving path reads no extra clocks per pipeline span and produces
    bit-identical colorings — the pre-telemetry behaviour.

    {b HTTP admin plane} (same listeners, sniffed per connection):
    [GET /metrics] (Prometheus text exposition), [GET /healthz]
    (admission/queue/cache gates; 200 or 503 + JSON), [GET /requests]
    (the ring as JSON, newest first), [GET /trace?id=N] (one request's
    Chrome trace). [HEAD] is honoured; anything else is 400/404.

    {b Request lifecycle}: every admitted request carries a
    {!Mpl_engine.Pool} cancel token threaded through the decomposition
    pipeline. A request with [deadline=MS] first degrades (the solver
    ladder drops to its cheap rung once the soft deadline passes) and,
    [grace_ms] later, is hard-cancelled by a watchdog: queued pieces
    are dropped at dequeue without running, the client gets a
    [TIMEOUT] terminal, and [server.timeouts] ticks. A client that
    disconnects or stops reading mid-stream is detected at the next
    piece flush: the token is cancelled, queued pieces are swept out
    of the shared pool ([server.dropped_tasks] counts them), the
    connection is reaped ([server.reaped_conns]) and the outcome lands
    in the ring/access log as ["disconnected"] — never a stuck handler
    thread, never an unhandled [EPIPE]. All connection I/O is
    non-blocking with read/write deadlines ({!Connio}), and the
    deterministic fault injector can tear any of these paths open on
    demand ([config.fault]).

    Shutdown (SIGTERM via {!request_stop}, or a client [QUIT]) is a
    clean drain: stop accepting, let in-flight requests finish, close
    lingering idle connections, persist the cache, then release the
    pool. *)

type config = {
  unix_socket : string option;  (** path to bind a Unix-domain listener *)
  tcp_port : int option;  (** port to bind a TCP listener *)
  tcp_host : string;  (** TCP bind address (default "127.0.0.1") *)
  jobs : int;  (** worker domains of the shared pool *)
  max_inflight : int;  (** concurrent DECOMPOSE bound; excess gets BUSY *)
  cache_budget : int option;  (** shared-cache byte budget *)
  cache_permuted : bool;  (** shared cache reuse mode (default exact) *)
  persist : string option;  (** cache persistence file *)
  persist_every : int;
      (** also save the cache every N served requests (0 = only on
          shutdown) *)
  log : (string -> unit) option;  (** operational log lines (no newline) *)
  ring : int;
      (** request-summary ring capacity (default 32); 0 disables both
          the ring and per-request span tracing *)
  access_log : string option;  (** JSONL access log path (default none) *)
  log_max_bytes : int;
      (** access-log rotation threshold (default 8 MiB) *)
  read_timeout_s : float;
      (** per-connection read deadline (default 10 s; [<= 0] disables):
          bounds every wait for the rest of a partially received
          command line (slowloris) and every stalled wait inside a
          length-prefixed body upload. The wait for the {e first} byte
          of a command line is always unbounded — idle keep-alive
          connections are legitimate. *)
  write_timeout_s : float;
      (** per-connection write deadline (default 10 s; [<= 0]
          disables): one absolute deadline per buffered flush. A
          client that stops draining its socket is reaped — the
          handler thread is never pinned behind a stalled reader, and
          the request's queued pieces are cancelled. *)
  grace_ms : int;
      (** extra time past a request's [deadline=MS] before the hard
          cancel (default 1000). The soft deadline degrades the solve
          through the fallback ladder; the hard deadline at
          [deadline + grace] cancels the request outright and replies
          [TIMEOUT]. *)
  max_body_bytes : int;
      (** largest accepted [DECOMPOSE] length prefix (default 64 MiB);
          an oversize prefix is refused with [ERR proto] before any
          allocation or read. *)
  fault : Mpl_engine.Fault.spec option;
      (** network fault injection ([conn_drop] / [write_stall] /
          [torn_frame]): armed once at {!create} and probed by every
          connection's sends and body reads, so the occurrence count
          is server-global and deterministic for sequential clients. *)
  sessions : int;
      (** ECO session table capacity (default 8; 0 disables). Every
          successful unsharded [DECOMPOSE] captures an
          {!Mpl.Eco.session} keyed by the layout's canonical hash; a
          [REDECOMPOSE hash=H] applies its edit-script body against
          that session, re-solves only the components inside the dirty
          window, streams only those [PIECE]s plus one [REUSED] line,
          and refreshes the table with the edited layout's session so
          edits chain. Least-recently-used sessions are dropped past
          the capacity. *)
}

val default_config : config
(** No listeners (callers must set at least one), [jobs = 1],
    [max_inflight = 4], unlimited exact-mode cache, no persistence,
    no log, [ring = 32], no access log, 10 s read/write timeouts,
    1 s deadline grace, 64 MiB body cap, no fault, [sessions = 8]. *)

type t

val create : config -> t
(** Allocate the pool and the shared cache; load the persisted cache
    if [persist] names a readable file (a structurally bad file is
    logged and ignored — the server boots cold rather than not at
    all); open the access log if configured.
    @raise Invalid_argument if no listener is configured, [jobs < 1],
    [max_inflight < 1], or [ring < 0]. *)

val request_stop : t -> unit
(** Begin graceful shutdown; safe to call from a signal handler and
    idempotent. {!run} returns once the drain completes. *)

val run : t -> unit
(** Bind the configured listeners and serve until {!request_stop} (or
    a client [QUIT]). Returns after the drain: all in-flight requests
    finished, sockets closed and the Unix socket path unlinked, cache
    persisted, pool shut down, access log closed.
    @raise Unix.Unix_error if a listener cannot bind. *)

val stats_json : t -> string
(** The [STATS] payload: server counters (served / rejected / errors /
    in-flight / limits / uptime / pool queue depth), request-latency
    percentiles, plus the shared cache's {!Mpl_engine.Cache.stats}, as
    one compact JSON line (no trailing newline). Exposed for tests. *)

val prometheus : t -> string
(** The [GET /metrics] body: gauges refreshed, then the registry in
    Prometheus text exposition format. Exposed for tests. *)

val requests : t -> Ring.entry list
(** The telemetry ring, newest first ([[]] when [ring = 0]). Exposed
    for tests. *)

val trace_events : t -> int -> Mpl_obs.Sink.event list option
(** A finished request's captured spans by request id; [None] when the
    id left the ring (or [ring = 0]). Exposed for tests. *)
