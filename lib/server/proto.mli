(** Wire protocol of the decomposition server.

    Text-based, newline-framed control lines with one length-prefixed
    binary body. A connection carries any number of requests in
    sequence. Client speaks first:

    {v
    DECOMPOSE <nbytes> k=4 algo=linear priority=0 cache=1 permuted=0 [min_s=N] [jobs=N] [inject=SPEC] [deadline=MS]
    <nbytes bytes of layout text (Layout_io format)>
    STATS | METRICS | PING | QUIT
    v}

    Server replies to a [DECOMPOSE] with either one [BUSY] line
    (admission control rejected it), one [ERR] line (bad layout /
    internal failure), or a stream

    {v
    ACK rid=<id>
    PIECE <idx> <n> <v>:<c> ...     (one per independent component,
                                     in deterministic component order)
    COST conflicts=.. stitches=.. scaled=.. elapsed=.. timed_out=0|1
    ENGINE pieces=.. solved=.. hits=.. reused=.. failed=.. rejected=..
    RESILIENCE degraded=.. piece_failures=.. fallbacks=.. fired=0|1
    CACHE entries=.. bytes=.. hits=.. misses=.. warm=.. drops=.. evictions=..
    DONE <n> <c0> ... <c(n-1)>
    v}

    where [PIECE] vertex ids and the [DONE] coloring are in the
    original decomposition-graph indexing. [STATS] and [METRICS] each
    return a single JSON line; [PING] returns [PONG]; [QUIT] returns
    [BYE] and starts a graceful server shutdown. All replies to one
    request finish before the next request on the connection is read,
    so a client never has to demultiplex.

    A request armed with [deadline=MS] may instead end with a
    [TIMEOUT deadline_ms=.. elapsed_ms=..] terminal line (the deadline
    expired and its grace period passed before the stream completed);
    a request torn down for another reason ends with
    [CANCELLED <reason>]. Both are terminal: no [DONE] follows. *)

type request = {
  k : int;  (** number of masks (default 4) *)
  algo : Mpl.Decomposer.algorithm;  (** default Linear *)
  jobs : int;
      (** advisory: the server solves on its own shared pool, whose
          worker count wins; accepted for one-shot compatibility *)
  priority : int;
      (** request priority; higher preempts lower-priority requests'
          queued pieces on the shared pool (scheduling only — results
          are identical at any priority) *)
  min_s : int option;  (** coloring distance; [None] = paper default for k *)
  cache : bool;  (** consult/populate the server's shared cache (default on) *)
  permuted : bool;  (** request Permuted-mode reuse semantics *)
  inject : Mpl_engine.Fault.spec option;  (** deterministic fault injection *)
  deadline_ms : int option;
      (** per-request deadline in milliseconds, armed server-side from
          request admission: past it, remaining solves degrade through
          the cheap ladder rung, and past the server's grace period the
          request is cancelled outright with a [TIMEOUT] terminal.
          [None] (the default) arms nothing *)
  windows : int;
      (** > 1 decomposes through the sharded geometric-window front-end
          ({!Mpl.Decomposer.decompose_sharded}), bounding the server's
          per-request graph residency to the largest window. Output is
          bit-identical to an unsharded run (default 1) *)
  window_nm : int option;
      (** window strip width in nm for sharding; takes precedence over
          [windows] when set *)
}

val default_request : request

val algorithm_of_name : string -> Mpl.Decomposer.algorithm option
(** CLI spellings: [ilp], [exact], [sdp-backtrack] (or [sdp]),
    [sdp-greedy], [linear]. *)

val name_of_algorithm : Mpl.Decomposer.algorithm -> string

type command =
  | Decompose of int * request  (** body byte count + parameters *)
  | Redecompose of int * string * request
      (** body byte count + session layout hash + parameters. The body
          is an edit script in [Mpl.Eco] text format; the hash names the
          server-side session (captured by a previous [DECOMPOSE] or
          [REDECOMPOSE] of the base layout) the edits apply to. *)
  | Stats
  | Metrics
  | Ping
  | Quit

val encode_request : request -> body_len:int -> string
(** The [DECOMPOSE] header line, newline included; the caller appends
    exactly [body_len] body bytes. *)

val encode_redecompose : request -> hash:string -> body_len:int -> string
(** The [REDECOMPOSE] header line, newline included; identical field
    vocabulary to {!encode_request} plus [hash=]. The caller appends
    exactly [body_len] bytes of edit-script text. *)

val parse_command : string -> (command, string) result
(** Parse one client control line (no trailing newline; a trailing
    [\r] is tolerated). *)

(** {1 Reply lines}

    Encoders return the full line, newline included. *)

type cost_reply = {
  conflicts : int;
  stitches : int;
  scaled : int;
  elapsed_s : float;
  timed_out : bool;
}

type resilience_reply = {
  degraded : int;
  piece_failures : int;
  fallbacks : int;
  fired : bool;
}

type cache_reply = {
  entries : int;
  bytes : int;
  hits : int;
  misses : int;
  warm_hits : int;
  corrupt_drops : int;
  evictions : int;
}

type reply =
  | Ack of int option
      (** [Some rid]: the server-assigned request id ([ACK rid=N]);
          [None] from servers predating request telemetry *)
  | Busy of int * int  (** in-flight, limit *)
  | Piece of { idx : int; cells : (int * int) array }
      (** [(vertex, color)] pairs in the original graph indexing *)
  | Cost of cost_reply
  | Engine of Mpl_engine.Engine.stats
  | Resilience of resilience_reply
  | Cache_info of cache_reply
  | Reused of { reused : int; dirty : int; features : int }
      (** [REDECOMPOSE] only: components reused verbatim from the
          session, components re-solved, and features re-solved *)
  | Done of int array
  | Timeout of { deadline_ms : int; elapsed_ms : int }
      (** terminal: the request's deadline (plus the server's grace
          period) expired before the stream finished *)
  | Cancelled of string
      (** terminal: the request was torn down; the payload is a
          one-token reason (e.g. ["shutdown"]) *)
  | Err of { code : string; line : int option; msg : string }
      (** [code] is [parse] (layout rejected, [line] set), [proto]
          (malformed request), or [internal] *)
  | Pong
  | Bye
  | Json of string  (** a [STATS] / [METRICS] JSON payload line *)

val ack_line : ?rid:int -> unit -> string
(** [ACK rid=N] when [rid] is given, bare [ACK] otherwise. *)

val busy_line : inflight:int -> limit:int -> string
val piece_line : idx:int -> back:int array -> colors:int array -> string
val cost_line : cost_reply -> string
val engine_line : Mpl_engine.Engine.stats -> string
val resilience_line : resilience_reply -> string
val cache_line : cache_reply -> string
val reused_line : reused:int -> dirty:int -> features:int -> string
val done_line : int array -> string
val timeout_line : deadline_ms:int -> elapsed_ms:int -> string
val cancelled_line : reason:string -> string
(** [reason] must be a single token without spaces or newlines. *)

val err_line : code:string -> ?line:int -> string -> string
(** Newlines in the message are flattened to ["; "]. *)

val pong_line : string
val bye_line : string

val parse_reply : string -> (reply, string) result
(** Parse one server reply line (client side). A line starting with
    [{] is returned as {!Json} verbatim. *)
