(** Bounded in-memory ring of recent request summaries.

    The server appends one {!entry} per finished [DECOMPOSE] (whatever
    the outcome); the newest [capacity] entries survive. Served over
    the admin plane as [/requests] (summaries) and [/trace?id=] (one
    entry's captured span trace). Thread-safe. *)

type entry = {
  id : int;  (** server-assigned request id (the [ACK rid=] value) *)
  circuit : string;  (** layout name, [""] when the body never parsed *)
  algo : string;  (** protocol spelling, e.g. ["linear"] *)
  k : int;
  priority : int;
  bytes : int;  (** request body length *)
  pieces : int;  (** engine pieces (0 when not solved) *)
  cache_hits : int;
  queue_wait_ns : int64;  (** receipt to admission *)
  first_piece_ns : int64;  (** admission to first streamed piece; [-1L] if none *)
  solve_ns : int64;  (** decompose call duration *)
  total_ns : int64;  (** receipt to full reply written *)
  degraded : int;  (** degraded pieces (resilience) *)
  outcome : string;
      (** ["ok"], ["busy"], ["parse"], ["error"], ["timeout"],
          ["cancelled"] or ["disconnected"] *)
  trace : Mpl_obs.Sink.event list;
      (** per-request spans, capped; [[]] unless request tracing is on *)
}

type t

val create : int -> t
(** [create capacity].
    @raise Invalid_argument if [capacity < 1]. *)

val capacity : t -> int

val add : t -> entry -> unit
(** Append, evicting the oldest entry once full. *)

val entries : t -> entry list
(** Live entries, newest first. *)

val find : t -> int -> entry option
(** Entry by request id. *)
