type config = {
  unix_socket : string option;
  tcp_port : int option;
  tcp_host : string;
  jobs : int;
  max_inflight : int;
  cache_budget : int option;
  cache_permuted : bool;
  persist : string option;
  persist_every : int;
  log : (string -> unit) option;
  ring : int;
  access_log : string option;
  log_max_bytes : int;
  read_timeout_s : float;
  write_timeout_s : float;
  grace_ms : int;
  max_body_bytes : int;
  fault : Mpl_engine.Fault.spec option;
  sessions : int;
}

let default_config =
  {
    unix_socket = None;
    tcp_port = None;
    tcp_host = "127.0.0.1";
    jobs = 1;
    max_inflight = 4;
    cache_budget = None;
    cache_permuted = false;
    persist = None;
    persist_every = 0;
    log = None;
    ring = 32;
    access_log = None;
    log_max_bytes = 8 * 1024 * 1024;
    read_timeout_s = 10.;
    write_timeout_s = 10.;
    grace_ms = 1000;
    max_body_bytes = 64 * 1024 * 1024;
    fault = None;
    sessions = 8;
  }

type t = {
  config : config;
  obs : Mpl_obs.Obs.t;
  metrics : Mpl_obs.Metrics.t;
  pool : Mpl_engine.Pool.t;
  cache : Mpl.Division.stats Mpl_engine.Cache.t;
  req_ring : Ring.t option;
  access : Mpl_obs.Logfile.t option;
  start_ns : int64;
  served_c : Mpl_obs.Metrics.counter;
  rejected_c : Mpl_obs.Metrics.counter;
  errors_c : Mpl_obs.Metrics.counter;
  admin_c : Mpl_obs.Metrics.counter;
  eco_c : Mpl_obs.Metrics.counter;
  cancelled_c : Mpl_obs.Metrics.counter;
  timeouts_c : Mpl_obs.Metrics.counter;
  reaped_c : Mpl_obs.Metrics.counter;
  dropped_c : Mpl_obs.Metrics.counter;
  latency_h : Mpl_obs.Metrics.histogram;
  queue_wait_h : Mpl_obs.Metrics.histogram;
  first_piece_h : Mpl_obs.Metrics.histogram;
  e2e_h : Mpl_obs.Metrics.histogram;
  inflight_g : Mpl_obs.Metrics.gauge;
  pool_depth_g : Mpl_obs.Metrics.gauge;
  uptime_g : Mpl_obs.Metrics.gauge;
  cache_bytes_g : Mpl_obs.Metrics.gauge;
  cache_entries_g : Mpl_obs.Metrics.gauge;
  lock : Mutex.t;
  drained : Condition.t;
  mutable inflight : int;
  mutable served : int;
  mutable rejected : int;
  mutable errors : int;
  mutable cancelled : int;
  mutable timeouts : int;
  mutable reaped : int;
  mutable dropped : int;
  mutable eco_requests : int;
  mutable next_rid : int;
  mutable conns : (Unix.file_descr * Thread.t option ref) list;
  (* ECO session table: bounded, keyed by the base layout's canonical
     hash, most-recently-used order in [session_lru]. Guarded by
     [lock]. Auto-captured from unsharded DECOMPOSEs, consumed and
     refreshed by REDECOMPOSE. *)
  sessions_tbl : (string, Mpl.Eco.session) Hashtbl.t;
  mutable session_lru : string list;
  save_lock : Mutex.t;
  stop : bool Atomic.t;
  stop_r : Unix.file_descr;
  stop_w : Unix.file_descr;
  fault : Mpl_engine.Fault.t;  (* network sites, probed by Connio *)
}

let log t msg = match t.config.log with Some f -> f msg | None -> ()

(* Persistence codec for the cache's metadata payload (the division
   statistics recorded with each solved component). *)
let stats_to_string (s : Mpl.Division.stats) =
  Printf.sprintf "%d %d %d %d" s.Mpl.Division.pieces
    s.Mpl.Division.largest_piece s.Mpl.Division.peeled s.Mpl.Division.cuts

let stats_of_string line =
  match
    List.filter (fun s -> s <> "") (String.split_on_char ' ' (String.trim line))
  with
  | [ a; b; c; d ] -> (
    match
      ( int_of_string_opt a,
        int_of_string_opt b,
        int_of_string_opt c,
        int_of_string_opt d )
    with
    | Some pieces, Some largest_piece, Some peeled, Some cuts ->
      Some { Mpl.Division.pieces; largest_piece; peeled; cuts }
    | _ -> None)
  | _ -> None

let create config =
  if config.unix_socket = None && config.tcp_port = None then
    invalid_arg "Server.create: no listener configured";
  if config.jobs < 1 then invalid_arg "Server.create: jobs < 1";
  if config.max_inflight < 1 then invalid_arg "Server.create: max_inflight < 1";
  if config.ring < 0 then invalid_arg "Server.create: ring < 0";
  if config.sessions < 0 then invalid_arg "Server.create: sessions < 0";
  (* A client vanishing mid-stream must surface as EPIPE on the write,
     not as a fatal SIGPIPE. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let metrics = Mpl_obs.Metrics.create () in
  let obs = Mpl_obs.Obs.make ~sink:Mpl_obs.Sink.null ~metrics () in
  let pool = Mpl_engine.Pool.create ~obs ~jobs:config.jobs () in
  let cache =
    Mpl_engine.Cache.create
      ~mode:
        (if config.cache_permuted then Mpl_engine.Cache.Permuted
         else Mpl_engine.Cache.Exact)
      ?byte_budget:config.cache_budget ~obs ()
  in
  let stop_r, stop_w = Unix.pipe () in
  let t =
    {
      config;
      obs;
      metrics;
      pool;
      cache;
      req_ring = (if config.ring > 0 then Some (Ring.create config.ring) else None);
      access =
        Option.map
          (Mpl_obs.Logfile.open_ ~max_bytes:config.log_max_bytes)
          config.access_log;
      start_ns = Mpl_util.Timer.now_ns ();
      served_c = Mpl_obs.Metrics.counter metrics "server.served";
      rejected_c = Mpl_obs.Metrics.counter metrics "server.rejected";
      errors_c = Mpl_obs.Metrics.counter metrics "server.errors";
      admin_c = Mpl_obs.Metrics.counter metrics "server.admin";
      eco_c = Mpl_obs.Metrics.counter metrics "server.eco_requests";
      cancelled_c = Mpl_obs.Metrics.counter metrics "server.cancelled";
      timeouts_c = Mpl_obs.Metrics.counter metrics "server.timeouts";
      reaped_c = Mpl_obs.Metrics.counter metrics "server.reaped_conns";
      dropped_c = Mpl_obs.Metrics.counter metrics "server.dropped_tasks";
      latency_h = Mpl_obs.Metrics.histogram metrics "server.request_ns";
      queue_wait_h = Mpl_obs.Metrics.histogram metrics "server.queue_wait_ns";
      first_piece_h = Mpl_obs.Metrics.histogram metrics "server.first_piece_ns";
      e2e_h = Mpl_obs.Metrics.histogram metrics "server.e2e_ns";
      inflight_g = Mpl_obs.Metrics.gauge metrics "server.inflight";
      pool_depth_g = Mpl_obs.Metrics.gauge metrics "pool.queue_depth";
      uptime_g = Mpl_obs.Metrics.gauge metrics "server.uptime_s";
      cache_bytes_g = Mpl_obs.Metrics.gauge metrics "cache.bytes";
      cache_entries_g = Mpl_obs.Metrics.gauge metrics "cache.entries";
      lock = Mutex.create ();
      drained = Condition.create ();
      inflight = 0;
      served = 0;
      rejected = 0;
      errors = 0;
      cancelled = 0;
      timeouts = 0;
      reaped = 0;
      dropped = 0;
      eco_requests = 0;
      next_rid = 0;
      conns = [];
      sessions_tbl = Hashtbl.create 16;
      session_lru = [];
      save_lock = Mutex.create ();
      stop = Atomic.make false;
      stop_r;
      stop_w;
      fault =
        (match config.fault with
        | Some spec -> Mpl_engine.Fault.arm spec
        | None -> Mpl_engine.Fault.none);
    }
  in
  (match config.persist with
  | Some path when Sys.file_exists path -> (
    match
      Mpl_engine.Cache.load t.cache ~value_of_string:stats_of_string path
    with
    | loaded, dropped ->
      log t
        (Printf.sprintf "cache: loaded %d entries from %s%s" loaded path
           (if dropped > 0 then Printf.sprintf " (%d dropped)" dropped
            else ""))
    | exception Mpl_engine.Cache.Bad_file msg ->
      log t (Printf.sprintf "cache: ignoring %s: %s" path msg)
    | exception Sys_error msg -> log t (Printf.sprintf "cache: %s" msg))
  | Some _ | None -> ());
  t

let fresh_rid t =
  Mutex.lock t.lock;
  t.next_rid <- t.next_rid + 1;
  let rid = t.next_rid in
  Mutex.unlock t.lock;
  rid

let request_stop t =
  if not (Atomic.exchange t.stop true) then
    try ignore (Unix.write t.stop_w (Bytes.make 1 '!') 0 1)
    with Unix.Unix_error _ | Sys_error _ -> ()

let save_cache t =
  match t.config.persist with
  | None -> ()
  | Some path ->
    Mutex.lock t.save_lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.save_lock)
      (fun () ->
        match
          Mpl_engine.Cache.save t.cache ~value_to_string:stats_to_string path
        with
        | () ->
          log t
            (Printf.sprintf "cache: saved %d entries (%d bytes) to %s"
               (Mpl_engine.Cache.length t.cache)
               (Mpl_engine.Cache.bytes t.cache)
               path)
        | exception e ->
          log t (Printf.sprintf "cache: save failed: %s" (Printexc.to_string e)))

(* The peer stopped being a peer: its socket timed out on write (it
   stopped draining), returned EPIPE/ECONNRESET (it vanished), or an
   injected network fault tore the connection. Raised by the checked
   send below and caught at exactly two levels — the request runner
   (which cancels queued work) and the connection loop (which reaps the
   connection). Never escapes the handler thread. *)
exception Client_gone of Connio.werr

(* All protocol writes go through here: a failed send is a lifecycle
   event, not an I/O detail, so it must not be ignorable. *)
let send cio s =
  match Connio.send cio s with
  | Ok () -> ()
  | Error e -> raise (Client_gone e)

(* The reply stream is buffered; terminal replies and admin responses
   must actually reach the wire before the handler moves on. *)
let send_flush cio s =
  send cio s;
  match Connio.flush cio with
  | Ok () -> ()
  | Error e -> raise (Client_gone e)

let bump_reaped t =
  Mpl_obs.Metrics.incr t.reaped_c;
  Mutex.lock t.lock;
  t.reaped <- t.reaped + 1;
  Mutex.unlock t.lock

let add_dropped t n =
  if n > 0 then begin
    Mpl_obs.Metrics.add t.dropped_c n;
    Mutex.lock t.lock;
    t.dropped <- t.dropped + n;
    Mutex.unlock t.lock
  end

(* One source of truth for the derived gauges: every snapshot consumer
   (STATS, METRICS, /metrics, /healthz) refreshes them from the live
   cache/pool/clock immediately before reading the registry, so the
   text path and the admin plane can never disagree. *)
let refresh_gauges t =
  let cs = Mpl_engine.Cache.stats t.cache in
  Mpl_obs.Metrics.set t.cache_bytes_g
    (float_of_int cs.Mpl_engine.Cache.resident_bytes);
  Mpl_obs.Metrics.set t.cache_entries_g
    (float_of_int cs.Mpl_engine.Cache.entries);
  Mpl_obs.Metrics.set t.pool_depth_g
    (float_of_int (Mpl_engine.Pool.queue_depth t.pool));
  Mpl_obs.Metrics.set t.uptime_g
    (Int64.to_float (Int64.sub (Mpl_util.Timer.now_ns ()) t.start_ns) *. 1e-9)

let ns_to_ms ns = ns *. 1e-6

(* p50/p90/p99 of a nanosecond histogram, rendered in milliseconds. *)
let percentile_json snap name =
  match Mpl_obs.Metrics.find_histogram snap name with
  | None -> Mpl_obs.Json.Null
  | Some h when h.Mpl_obs.Metrics.count = 0 -> Mpl_obs.Json.Null
  | Some h ->
    let ps = Mpl_obs.Metrics.percentiles h [ 0.5; 0.9; 0.99 ] in
    let open Mpl_obs.Json in
    Obj
      (("count", Int h.Mpl_obs.Metrics.count)
      :: List.map2
           (fun label v -> (label, Float (ns_to_ms v)))
           [ "p50_ms"; "p90_ms"; "p99_ms" ]
           ps)

let stats_json t =
  refresh_gauges t;
  Mutex.lock t.lock;
  let served = t.served
  and rejected = t.rejected
  and errors = t.errors
  and cancelled = t.cancelled
  and timeouts = t.timeouts
  and reaped = t.reaped
  and dropped = t.dropped
  and eco_requests = t.eco_requests
  and sessions = Hashtbl.length t.sessions_tbl
  and inflight = t.inflight in
  Mutex.unlock t.lock;
  let cs = Mpl_engine.Cache.stats t.cache in
  let snap = Mpl_obs.Metrics.snapshot t.metrics in
  let uptime_s =
    Int64.to_float (Int64.sub (Mpl_util.Timer.now_ns ()) t.start_ns) *. 1e-9
  in
  let open Mpl_obs.Json in
  to_string
    (Obj
       [
         ( "server",
           Obj
             [
               ("served", Int served);
               ("rejected", Int rejected);
               ("errors", Int errors);
               ("cancelled", Int cancelled);
               ("timeouts", Int timeouts);
               ("reaped_conns", Int reaped);
               ("dropped_tasks", Int dropped);
               ("eco_requests", Int eco_requests);
               ("sessions", Int sessions);
               ("session_cap", Int t.config.sessions);
               ("inflight", Int inflight);
               ("max_inflight", Int t.config.max_inflight);
               ("jobs", Int (Mpl_engine.Pool.jobs t.pool));
               ("uptime_s", Float uptime_s);
               ("queue_depth", Int (Mpl_engine.Pool.queue_depth t.pool));
               ("queue_bound", Int (Mpl_engine.Pool.bound t.pool));
             ] );
         ( "latency",
           Obj
             [
               ("e2e", percentile_json snap "server.e2e_ns");
               ("queue_wait", percentile_json snap "server.queue_wait_ns");
               ("first_piece", percentile_json snap "server.first_piece_ns");
               ("solve", percentile_json snap "server.request_ns");
             ] );
         ( "cache",
           Obj
             [
               ("entries", Int cs.Mpl_engine.Cache.entries);
               ("bytes", Int cs.Mpl_engine.Cache.resident_bytes);
               ( "budget",
                 match cs.Mpl_engine.Cache.byte_budget with
                 | Some b -> Int b
                 | None -> Null );
               ("hits", Int cs.Mpl_engine.Cache.s_hits);
               ("misses", Int cs.Mpl_engine.Cache.s_misses);
               ("warm_hits", Int cs.Mpl_engine.Cache.s_warm_hits);
               ("corrupt_drops", Int cs.Mpl_engine.Cache.s_corrupt_drops);
               ("evictions", Int cs.Mpl_engine.Cache.s_evictions);
             ] );
       ])

let metrics_json t =
  refresh_gauges t;
  Mpl_obs.Json.to_string
    (Mpl_obs.Export.metrics_json (Mpl_obs.Metrics.snapshot t.metrics))

let prometheus t =
  refresh_gauges t;
  Mpl_obs.Export.prometheus (Mpl_obs.Metrics.snapshot t.metrics)

let bump_errors t =
  Mpl_obs.Metrics.incr t.errors_c;
  Mutex.lock t.lock;
  t.errors <- t.errors + 1;
  Mutex.unlock t.lock

(* Request priorities dominate piece sizes on the shared pool: the
   per-piece priority within one request is its vertex count, so
   scaling the request priority by 2^20 keeps requests strictly
   ordered unless a single piece exceeds a million vertices. *)
let priority_scale = 1 lsl 20

let resolve_min_s ~k = function
  | Some m -> m
  | None ->
    let tech = Mpl_layout.Layout.default_tech in
    if k >= 5 then Mpl_layout.Layout.pentuple_min_s tech
    else Mpl_layout.Layout.quadruple_min_s tech

(* ------------------------------------------------------------------ *)
(* ECO session table *)

let rec take_drop n = function
  | [] -> ([], [])
  | l when n <= 0 -> ([], l)
  | x :: tl ->
    let keep, drop = take_drop (n - 1) tl in
    (x :: keep, drop)

let session_store t (s : Mpl.Eco.session) =
  let cap = t.config.sessions in
  if cap > 0 then begin
    let key = s.Mpl.Eco.layout_hash in
    Mutex.lock t.lock;
    Hashtbl.replace t.sessions_tbl key s;
    let keep, drop =
      take_drop cap (key :: List.filter (fun k -> k <> key) t.session_lru)
    in
    t.session_lru <- keep;
    List.iter (Hashtbl.remove t.sessions_tbl) drop;
    Mutex.unlock t.lock
  end

let session_find t key =
  Mutex.lock t.lock;
  let r = Hashtbl.find_opt t.sessions_tbl key in
  (match r with
  | Some _ ->
    t.session_lru <- key :: List.filter (fun k -> k <> key) t.session_lru
  | None -> ());
  Mutex.unlock t.lock;
  r

(* ------------------------------------------------------------------ *)
(* Request telemetry *)

(* Cap on captured spans per ring entry: a traced S-circuit run emits
   tens of thousands of spans; keeping the earliest [max_trace_events]
   preserves the pipeline structure while bounding ring memory. *)
let max_trace_events = 20_000

let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: tl -> x :: take (n - 1) tl

type req_timing = {
  rid : int;
  recv_ns : int64;  (* absolute, request line read *)
  queue_wait_ns : int64;
  mutable first_piece_ns : int64;  (* relative to admission; -1 = none *)
}

(* Every DECOMPOSE outcome — ok, error, parse failure or busy — lands
   one ring entry and one access-log line, so the admin plane never
   has blind spots for exactly the requests that went wrong. *)
let finish_request t (rp : Proto.request) (tm : req_timing) ~body_len ~circuit
    ~solve_ns ~pieces ~cache_hits ~degraded ~outcome ~sink =
  let total_ns = Int64.sub (Mpl_util.Timer.now_ns ()) tm.recv_ns in
  Mpl_obs.Metrics.observe t.e2e_h (Int64.to_float total_ns);
  (* Outcome accounting lives here, next to the ring entry and access
     line, so "every non-ok outcome is counted" holds by construction:
     there is exactly one finish_request per request. *)
  (match outcome with
  | "timeout" ->
    Mpl_obs.Metrics.incr t.timeouts_c;
    Mutex.lock t.lock;
    t.timeouts <- t.timeouts + 1;
    Mutex.unlock t.lock
  | "cancelled" | "disconnected" ->
    Mpl_obs.Metrics.incr t.cancelled_c;
    Mutex.lock t.lock;
    t.cancelled <- t.cancelled + 1;
    Mutex.unlock t.lock
  | _ -> ());
  let algo = Proto.name_of_algorithm rp.Proto.algo in
  (match t.req_ring with
  | None -> ()
  | Some ring ->
    let trace =
      match sink with
      | None -> []
      | Some s -> take max_trace_events (Mpl_obs.Sink.events s)
    in
    Ring.add ring
      {
        Ring.id = tm.rid;
        circuit;
        algo;
        k = rp.Proto.k;
        priority = rp.Proto.priority;
        bytes = body_len;
        pieces;
        cache_hits;
        queue_wait_ns = tm.queue_wait_ns;
        first_piece_ns = tm.first_piece_ns;
        solve_ns;
        total_ns;
        degraded;
        outcome;
        trace;
      });
  match t.access with
  | None -> ()
  | Some lg ->
    let ms ns = ns_to_ms (Int64.to_float ns) in
    let open Mpl_obs.Json in
    Mpl_obs.Logfile.write lg
      (to_string
         (Obj
            [
              ("ts", Float (Unix.gettimeofday ()));
              ("rid", Int tm.rid);
              ("outcome", Str outcome);
              ("circuit", Str circuit);
              ("algo", Str algo);
              ("k", Int rp.Proto.k);
              ("priority", Int rp.Proto.priority);
              ("bytes", Int body_len);
              ("pieces", Int pieces);
              ("cache_hits", Int cache_hits);
              ("degraded", Int degraded);
              ("queue_wait_ms", Float (ms tm.queue_wait_ns));
              ( "first_piece_ms",
                if tm.first_piece_ns < 0L then Null
                else Float (ms tm.first_piece_ns) );
              ("solve_ms", Float (ms solve_ns));
              ("total_ms", Float (ms total_ns));
            ]))

(* Why a request is being torn down before its DONE line. [Run] is the
   initial state; the first abort wins (compare-and-set), so a deadline
   expiring while the disconnect teardown is in flight cannot flip a
   "disconnected" into a "timeout". *)
type abort_reason = Running | Deadline | Disconnect

(* A deterministic refusal discovered mid-pipeline (unknown or
   mismatched session, corrupt edit script): reply [ERR <code>] instead
   of a stream, account it as an error. *)
exception Rejected of { code : string; msg : string }

(* The shared request runner: everything between the body read and the
   terminal reply — per-request sink, cancel token, deadline watchdog,
   the reply tail, outcome accounting — is identical for DECOMPOSE and
   REDECOMPOSE. [solve] produces the report plus any extra reply lines
   to send between CACHE and DONE (REDECOMPOSE's REUSED line). *)
let run_pipeline t cio (rp : Proto.request) (tm : req_timing) ~body_len
    ~circuit ~solve =
  let finish = finish_request t rp tm ~body_len in
  begin
    let rid_str = string_of_int tm.rid in
    (* Per-request span sink (ring enabled only): shares the server's
       aggregate metrics registry but collects spans privately, tagged
       with the request's identity, so /trace?id= can replay exactly
       one request. Ring off = the pre-telemetry null sink — the
       served pipeline reads no extra clocks and stays bit-identical
       (covered by the invariance property in the test suite). *)
    let sink =
      match t.req_ring with
      | None -> None
      | Some _ ->
        Some
          (Mpl_obs.Sink.create
             ~tags:
               [
                 ("rid", Mpl_obs.Sink.Str rid_str);
                 ("circuit", Mpl_obs.Sink.Str circuit);
                 ("k", Mpl_obs.Sink.Int rp.Proto.k);
                 ( "algo",
                   Mpl_obs.Sink.Str (Proto.name_of_algorithm rp.Proto.algo) );
               ]
             ())
    in
    let req_obs =
      match sink with
      | None -> t.obs
      | Some s -> Mpl_obs.Obs.make ~sink:s ~metrics:t.metrics ()
    in
    (* Every request carries a cancel token. With no deadline and no
       disconnect the flag is never set, so the flag-false path costs
       one atomic read per coordinator checkpoint, reads no clock, and
       the served pipeline stays bit-identical to the direct one. The
       first abort wins: the teardown reason is decided at the
       compare-and-set, not at whichever reply send happens last. *)
    let token = Mpl_engine.Pool.token () in
    let reason = Atomic.make Running in
    let abort why =
      ignore (Atomic.compare_and_set reason Running why);
      Mpl_engine.Pool.cancel token
    in
    let params =
      {
        Mpl.Decomposer.default_params with
        k = rp.Proto.k;
        jobs = max 1 rp.Proto.jobs;
        priority_bias = rp.Proto.priority * priority_scale;
        cache = rp.Proto.cache;
        cache_permuted = rp.Proto.permuted;
        fault = rp.Proto.inject;
        request_id = Some rid_str;
        cancel = Some token;
        deadline_s =
          Option.map (fun ms -> float_of_int ms /. 1000.) rp.Proto.deadline_ms;
        windows = rp.Proto.windows;
        window_nm = rp.Proto.window_nm;
      }
    in
    (* The shared table serves only requests whose reuse semantics
       match its mode; a mode-mismatched request gets a private
       per-request cache from the engine instead. *)
    let shared_cache =
      if
        rp.Proto.cache
        && rp.Proto.permuted
           = (Mpl_engine.Cache.mode t.cache = Mpl_engine.Cache.Permuted)
      then Some t.cache
      else None
    in
    let admit_ns = Mpl_util.Timer.now_ns () in
    let on_component idx back colors =
      (* Streamed on the coordinating thread in deterministic order,
         so the first call is the true first piece. *)
      if tm.first_piece_ns < 0L then begin
        tm.first_piece_ns <- Int64.sub (Mpl_util.Timer.now_ns ()) admit_ns;
        Mpl_obs.Metrics.observe t.first_piece_h
          (Int64.to_float tm.first_piece_ns)
      end;
      (* Flushed per piece: streamed progress should reach the wire
         promptly, and the flush is where a vanished or stalled client
         is detected — mid-stream, while queued pieces can still be
         dropped, not after all the solving is already done. *)
      match
        match Connio.send cio (Proto.piece_line ~idx ~back ~colors) with
        | Ok () -> Connio.flush cio
        | Error _ as e -> e
      with
      | Ok () -> ()
      | Error e ->
        abort Disconnect;
        raise (Client_gone e)
    in
    (* Hard-deadline watchdog: the soft deadline (params.deadline_s)
       degrades the solve via the fallback ladder; only if even the
       degraded pipeline cannot finish within the grace period does the
       watchdog cancel the token outright. Started only for requests
       that carry a deadline — the common path spawns no thread. *)
    let wd_stop = Atomic.make false in
    let watchdog =
      match rp.Proto.deadline_ms with
      | None -> None
      | Some ms ->
        let hard_ns =
          Int64.add admit_ns
            (Int64.mul 1_000_000L
               (Int64.of_int (ms + max 0 t.config.grace_ms)))
        in
        Some
          (Thread.create
             (fun () ->
               let rec loop () =
                 if not (Atomic.get wd_stop) then
                   if Mpl_util.Timer.now_ns () >= hard_ns then abort Deadline
                   else begin
                     Thread.delay 0.01;
                     loop ()
                   end
               in
               loop ())
             ())
    in
    let stop_watchdog () =
      Atomic.set wd_stop true;
      match watchdog with Some th -> Thread.join th | None -> ()
    in
    (* After any abort: queued-but-unstarted pieces of this request are
       still sitting in the shared pool. Sweep them out now (so other
       requests' tasks stop queueing behind dead work) and account
       every dropped task to server.dropped_tasks. *)
    let sweep () =
      if Mpl_engine.Pool.cancelled token then begin
        ignore (Mpl_engine.Pool.discard_cancelled t.pool);
        add_dropped t (Mpl_engine.Pool.drops token)
      end
    in
    let t0 = Mpl_util.Timer.now_ns () in
    let elapsed_solve () = Int64.sub (Mpl_util.Timer.now_ns ()) t0 in
    (try
       Fun.protect ~finally:stop_watchdog (fun () ->
           send cio (Proto.ack_line ~rid:tm.rid ());
           (match Connio.flush cio with
           | Ok () -> ()
           | Error e -> raise (Client_gone e));
           let report, extra =
             solve ~req_obs ~params ~shared_cache ~on_component
           in
           let cost = report.Mpl.Decomposer.cost in
           send cio
             (Proto.cost_line
                {
                  Proto.conflicts = cost.Mpl.Coloring.conflicts;
                  stitches = cost.Mpl.Coloring.stitches;
                  scaled = cost.Mpl.Coloring.scaled;
                  elapsed_s = report.Mpl.Decomposer.elapsed_s;
                  timed_out = report.Mpl.Decomposer.timed_out;
                });
           (match report.Mpl.Decomposer.engine with
           | Some e -> send cio (Proto.engine_line e)
           | None -> ());
           let res = report.Mpl.Decomposer.resilience in
           send cio
             (Proto.resilience_line
                {
                  Proto.degraded = res.Mpl.Decomposer.degraded;
                  piece_failures = res.Mpl.Decomposer.piece_failures;
                  fallbacks = res.Mpl.Decomposer.fallback_attempts;
                  fired = res.Mpl.Decomposer.fault_fired;
                });
           (match report.Mpl.Decomposer.cache with
           | Some cs ->
             send cio
               (Proto.cache_line
                  {
                    Proto.entries = cs.Mpl_engine.Cache.entries;
                    bytes = cs.Mpl_engine.Cache.resident_bytes;
                    hits = cs.Mpl_engine.Cache.s_hits;
                    misses = cs.Mpl_engine.Cache.s_misses;
                    warm_hits = cs.Mpl_engine.Cache.s_warm_hits;
                    corrupt_drops = cs.Mpl_engine.Cache.s_corrupt_drops;
                    evictions = cs.Mpl_engine.Cache.s_evictions;
                  })
           | None -> ());
           List.iter (send cio) extra;
           send cio (Proto.done_line report.Mpl.Decomposer.colors);
           (match Connio.flush cio with
           | Ok () -> ()
           | Error e ->
             abort Disconnect;
             raise (Client_gone e));
           let solve_ns = elapsed_solve () in
           Mpl_obs.Metrics.observe t.latency_h (Int64.to_float solve_ns);
           Mpl_obs.Metrics.incr t.served_c;
           let pieces, cache_hits =
             match report.Mpl.Decomposer.engine with
             | Some e -> (e.Mpl_engine.Engine.pieces, e.Mpl_engine.Engine.hits)
             | None -> (0, 0)
           in
           finish ~circuit ~solve_ns ~pieces ~cache_hits
             ~degraded:res.Mpl.Decomposer.degraded ~outcome:"ok" ~sink;
           let served =
             Mutex.lock t.lock;
             t.served <- t.served + 1;
             let s = t.served in
             Mutex.unlock t.lock;
             s
           in
           if
             t.config.persist_every > 0
             && served mod t.config.persist_every = 0
           then save_cache t)
     with
    | Mpl_engine.Pool.Cancelled -> (
      sweep ();
      let solve_ns = elapsed_solve () in
      match Atomic.get reason with
      | Deadline ->
        let deadline_ms = Option.value ~default:0 rp.Proto.deadline_ms in
        let elapsed_ms =
          Int64.to_int
            (Int64.div
               (Int64.sub (Mpl_util.Timer.now_ns ()) admit_ns)
               1_000_000L)
        in
        (try send_flush cio (Proto.timeout_line ~deadline_ms ~elapsed_ms)
         with Client_gone _ -> ());
        finish ~circuit ~solve_ns ~pieces:0 ~cache_hits:0 ~degraded:0
          ~outcome:"timeout" ~sink
      | Disconnect ->
        (* No reply: there is no one left to read it. *)
        finish ~circuit ~solve_ns ~pieces:0 ~cache_hits:0 ~degraded:0
          ~outcome:"disconnected" ~sink
      | Running ->
        (try send_flush cio (Proto.cancelled_line ~reason:"shutdown")
         with Client_gone _ -> ());
        finish ~circuit ~solve_ns ~pieces:0 ~cache_hits:0 ~degraded:0
          ~outcome:"cancelled" ~sink)
    | Client_gone w ->
      abort Disconnect;
      sweep ();
      (* A write timeout is a reap (we gave up on a stalled reader); a
         Closed is the peer giving up on us. Both cancel the same way. *)
      if w = Connio.Timeout then bump_reaped t;
      finish ~circuit ~solve_ns:(elapsed_solve ()) ~pieces:0 ~cache_hits:0
        ~degraded:0 ~outcome:"disconnected" ~sink
    | Rejected { code; msg } ->
      sweep ();
      bump_errors t;
      (try send_flush cio (Proto.err_line ~code msg)
       with Client_gone _ -> ());
      finish ~circuit ~solve_ns:(elapsed_solve ()) ~pieces:0 ~cache_hits:0
        ~degraded:0 ~outcome:"error" ~sink
    | e ->
      sweep ();
      bump_errors t;
      (try
         send_flush cio (Proto.err_line ~code:"internal" (Printexc.to_string e))
       with Client_gone _ -> ());
      finish ~circuit ~solve_ns:(elapsed_solve ()) ~pieces:0 ~cache_hits:0
        ~degraded:0 ~outcome:"error" ~sink)
  end

let run_request t cio (rp : Proto.request) (tm : req_timing) body =
  match Mpl_layout.Layout_io.of_string body with
  | exception Mpl_layout.Layout_io.Parse_error { line; msg } ->
    bump_errors t;
    (try send_flush cio (Proto.err_line ~code:"parse" ~line msg)
     with Client_gone _ -> ());
    finish_request t rp tm ~body_len:(String.length body) ~circuit:""
      ~solve_ns:0L ~pieces:0 ~cache_hits:0 ~degraded:0 ~outcome:"parse"
      ~sink:None
  | layout ->
    let circuit = layout.Mpl_layout.Layout.name in
    let min_s = resolve_min_s ~k:rp.Proto.k rp.Proto.min_s in
    run_pipeline t cio rp tm ~body_len:(String.length body) ~circuit
      ~solve:(fun ~req_obs ~params ~shared_cache ~on_component ->
        (* Sharded requests never build the whole-layout graph: the
           server's per-request residency stays bounded by the largest
           window even for very large bodies. *)
        if rp.Proto.windows > 1 || rp.Proto.window_nm <> None then
          ( Mpl.Decomposer.decompose_sharded ~params ~obs:req_obs ~pool:t.pool
              ?shared_cache ~on_component ~min_s rp.Proto.algo layout,
            [] )
        else begin
          let g = Mpl.Decomp_graph.of_layout ~obs:req_obs layout ~min_s in
          let report =
            Mpl.Decomposer.assign ~params ~obs:req_obs ~pool:t.pool
              ?shared_cache ~on_component rp.Proto.algo g
          in
          (* Capture the finished run as an ECO session, so a later
             REDECOMPOSE against this layout can reuse every component
             the edit does not touch. *)
          if t.config.sessions > 0 then
            session_store t
              (Mpl.Decomposer.snapshot ~params ~min_s rp.Proto.algo g layout
                 report);
          (report, [])
        end)

let run_redecompose t cio ~hash (rp : Proto.request) (tm : req_timing) body =
  Mpl_obs.Metrics.incr t.eco_c;
  Mutex.lock t.lock;
  t.eco_requests <- t.eco_requests + 1;
  Mutex.unlock t.lock;
  let body_len = String.length body in
  let fail ~code ~outcome msg =
    bump_errors t;
    (try send_flush cio (Proto.err_line ~code msg) with Client_gone _ -> ());
    finish_request t rp tm ~body_len ~circuit:"" ~solve_ns:0L ~pieces:0
      ~cache_hits:0 ~degraded:0 ~outcome ~sink:None
  in
  if rp.Proto.windows > 1 || rp.Proto.window_nm <> None then
    fail ~code:"proto" ~outcome:"error"
      "REDECOMPOSE does not take windows (the dirty sub-layout is already \
       bounded)"
  else
    match session_find t hash with
    | None ->
      fail ~code:"session" ~outcome:"session"
        (Printf.sprintf
           "no session for layout hash %s (DECOMPOSE the base layout first, \
            or raise --sessions)"
           hash)
    | Some prev -> (
      match Mpl.Eco.parse_edits body with
      | Error msg -> fail ~code:"parse" ~outcome:"parse" msg
      | Ok edits ->
        let circuit =
          "eco:" ^ String.sub hash 0 (min 12 (String.length hash))
        in
        run_pipeline t cio rp tm ~body_len ~circuit
          ~solve:(fun ~req_obs ~params ~shared_cache ~on_component ->
            match
              Mpl.Decomposer.redecompose ~params ~obs:req_obs ~pool:t.pool
                ?shared_cache ~on_component ~prev ~edits rp.Proto.algo
            with
            | Error msg -> raise (Rejected { code = "session"; msg })
            | Ok (_edited, report, next) ->
              session_store t next;
              let reused, dirty, features =
                match report.Mpl.Decomposer.eco with
                | Some e ->
                  ( e.Mpl.Decomposer.reused_components,
                    e.Mpl.Decomposer.dirty_components,
                    e.Mpl.Decomposer.dirty_features )
                | None -> (0, 0, 0)
              in
              (report, [ Proto.reused_line ~reused ~dirty ~features ])))

(* Shared admission front-end for the two body-carrying verbs: size
   cap, body read, inflight accounting, BUSY, then [run]. *)
let handle_submit t cio nbytes rp ~run =
  let recv_ns = Mpl_util.Timer.now_ns () in
  if nbytes > t.config.max_body_bytes then begin
    (* Refuse before allocating or reading: an absurd length prefix
       must not let one connection balloon server memory. *)
    (try
       send_flush cio
         (Proto.err_line ~code:"proto"
            (Printf.sprintf "request body too large (%d > %d bytes)" nbytes
               t.config.max_body_bytes))
     with Client_gone _ -> ());
    false
  end
  else
    match Connio.read_exact cio nbytes with
    | Error `Eof ->
      (try send_flush cio (Proto.err_line ~code:"proto" "truncated request body")
       with Client_gone _ -> ());
      false
    | Error `Timeout ->
      (* Stalled mid-upload: reap the connection. *)
      bump_reaped t;
      false
    | Ok body ->
    let admitted, inflight =
      Mutex.lock t.lock;
      let ok =
        (not (Atomic.get t.stop)) && t.inflight < t.config.max_inflight
      in
      if ok then begin
        t.inflight <- t.inflight + 1;
        Mpl_obs.Metrics.set t.inflight_g (float_of_int t.inflight)
      end
      else t.rejected <- t.rejected + 1;
      let infl = t.inflight in
      Mutex.unlock t.lock;
      (ok, infl)
    in
    let queue_wait_ns = Int64.sub (Mpl_util.Timer.now_ns ()) recv_ns in
    Mpl_obs.Metrics.observe t.queue_wait_h (Int64.to_float queue_wait_ns);
    let tm =
      { rid = fresh_rid t; recv_ns; queue_wait_ns; first_piece_ns = -1L }
    in
    if not admitted then begin
      Mpl_obs.Metrics.incr t.rejected_c;
      (try
         send_flush cio (Proto.busy_line ~inflight ~limit:t.config.max_inflight)
       with Client_gone _ -> ());
      finish_request t rp tm ~body_len:(String.length body) ~circuit:""
        ~solve_ns:0L ~pieces:0 ~cache_hits:0 ~degraded:0 ~outcome:"busy"
        ~sink:None
    end
    else
      Fun.protect
        ~finally:(fun () ->
          Mutex.lock t.lock;
          t.inflight <- t.inflight - 1;
          Mpl_obs.Metrics.set t.inflight_g (float_of_int t.inflight);
          Condition.broadcast t.drained;
          Mutex.unlock t.lock)
        (fun () -> run t cio rp tm body);
    true

let handle_decompose t cio nbytes rp = handle_submit t cio nbytes rp ~run:run_request

let handle_redecompose t cio nbytes hash rp =
  handle_submit t cio nbytes rp ~run:(fun t cio rp tm body ->
      run_redecompose t cio ~hash rp tm body)

(* ------------------------------------------------------------------ *)
(* HTTP admin plane *)

(* The line listener doubles as a minimal HTTP/1.0 responder: a
   connection whose first line is an HTTP request-line gets exactly one
   response and is closed. This keeps curl/Prometheus reachable over
   the very same socket the decompose protocol uses — no second
   listener, no extra select loop. *)

let requests_json t =
  let entries = match t.req_ring with Some r -> Ring.entries r | None -> [] in
  let open Mpl_obs.Json in
  let entry_json (e : Ring.entry) =
    Obj
      [
        ("id", Int e.Ring.id);
        ("circuit", Str e.Ring.circuit);
        ("algo", Str e.Ring.algo);
        ("k", Int e.Ring.k);
        ("priority", Int e.Ring.priority);
        ("bytes", Int e.Ring.bytes);
        ("pieces", Int e.Ring.pieces);
        ("cache_hits", Int e.Ring.cache_hits);
        ("degraded", Int e.Ring.degraded);
        ("outcome", Str e.Ring.outcome);
        ("queue_wait_ms", Float (ns_to_ms (Int64.to_float e.Ring.queue_wait_ns)));
        ( "first_piece_ms",
          if e.Ring.first_piece_ns < 0L then Null
          else Float (ns_to_ms (Int64.to_float e.Ring.first_piece_ns)) );
        ("solve_ms", Float (ns_to_ms (Int64.to_float e.Ring.solve_ns)));
        ("total_ms", Float (ns_to_ms (Int64.to_float e.Ring.total_ns)));
        ("trace_events", Int (List.length e.Ring.trace));
      ]
  in
  to_string
    (Obj
       [
         ("capacity", Int (match t.req_ring with Some r -> Ring.capacity r | None -> 0));
         ("requests", List (List.map entry_json entries));
       ])

let healthz t =
  refresh_gauges t;
  Mutex.lock t.lock;
  let inflight = t.inflight
  and cancelled = t.cancelled
  and timeouts = t.timeouts
  and reaped = t.reaped
  and dropped = t.dropped in
  Mutex.unlock t.lock;
  let stopping = Atomic.get t.stop in
  let depth = Mpl_engine.Pool.queue_depth t.pool in
  let bound = Mpl_engine.Pool.bound t.pool in
  let cs = Mpl_engine.Cache.stats t.cache in
  let accepting = not stopping in
  let inflight_ok = inflight < t.config.max_inflight in
  let queue_ok = depth < bound in
  let cache_ok =
    match cs.Mpl_engine.Cache.byte_budget with
    | None -> true
    | Some b -> cs.Mpl_engine.Cache.resident_bytes <= b
  in
  let ok = accepting && inflight_ok && queue_ok && cache_ok in
  let open Mpl_obs.Json in
  let body =
    to_string
      (Obj
         [
           ("status", Str (if ok then "ok" else "degraded"));
           ("accepting", Bool accepting);
           ("inflight", Int inflight);
           ("max_inflight", Int t.config.max_inflight);
           ("queue_depth", Int depth);
           ("queue_bound", Int bound);
           ("cancelled", Int cancelled);
           ("timeouts", Int timeouts);
           ("reaped_conns", Int reaped);
           ("dropped_tasks", Int dropped);
           ("cache_bytes", Int cs.Mpl_engine.Cache.resident_bytes);
           ( "cache_budget",
             match cs.Mpl_engine.Cache.byte_budget with
             | Some b -> Int b
             | None -> Null );
         ])
  in
  (ok, body)

let http_status_reason = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 503 -> "Service Unavailable"
  | _ -> "Error"

let http_respond cio ~head_only ~status ~ctype body =
  send cio
    (Printf.sprintf
       "HTTP/1.0 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\n\
        Connection: close\r\n\r\n"
       status (http_status_reason status) ctype (String.length body));
  if not head_only then send cio body;
  match Connio.flush cio with
  | Ok () -> ()
  | Error e -> raise (Client_gone e)

let query_param query key =
  let prefix = key ^ "=" in
  let plen = String.length prefix in
  List.find_map
    (fun tok ->
      if String.length tok >= plen && String.sub tok 0 plen = prefix then
        Some (String.sub tok plen (String.length tok - plen))
      else None)
    (String.split_on_char '&' query)

let http_dispatch t path query =
  match path with
  | "/metrics" -> (200, "text/plain; version=0.0.4", prometheus t)
  | "/healthz" ->
    let ok, body = healthz t in
    ((if ok then 200 else 503), "application/json", body ^ "\n")
  | "/requests" -> (200, "application/json", requests_json t ^ "\n")
  | "/trace" -> (
    match query_param query "id" with
    | None -> (400, "text/plain", "missing id query parameter\n")
    | Some id_str -> (
      match int_of_string_opt id_str with
      | None -> (400, "text/plain", "id is not an integer\n")
      | Some id -> (
        match t.req_ring with
        | None -> (404, "text/plain", "request tracing disabled (ring=0)\n")
        | Some ring -> (
          match Ring.find ring id with
          | None -> (404, "text/plain", "unknown request id\n")
          | Some e ->
            ( 200,
              "application/json",
              Mpl_obs.Export.chrome_json
                ~process_name:(Printf.sprintf "mpld rid=%d" id)
                e.Ring.trace )))))
  | _ -> (404, "text/plain", "not found\n")

let is_http_line line =
  let has_prefix p =
    String.length line > String.length p && String.sub line 0 (String.length p) = p
  in
  has_prefix "GET " || has_prefix "HEAD "

let handle_http t cio line =
  Mpl_obs.Metrics.incr t.admin_c;
  (* Drain the request headers up to the blank line; this responder
     never reads a body (GET/HEAD only). Every header line is timed —
     a client that sent a request-line owes us the rest promptly
     (slowloris protection for the admin plane). *)
  let rec drain () =
    match Connio.read_line ~timed:true cio with
    | Error (`Eof | `Too_long) -> ()
    | Error `Timeout -> bump_reaped t
    | Ok l ->
      let l =
        let n = String.length l in
        if n > 0 && l.[n - 1] = '\r' then String.sub l 0 (n - 1) else l
      in
      if l <> "" then drain ()
  in
  drain ();
  match
    List.filter (fun s -> s <> "") (String.split_on_char ' ' (String.trim line))
  with
  | meth :: target :: _ ->
    let path, query =
      match String.index_opt target '?' with
      | None -> (target, "")
      | Some i ->
        ( String.sub target 0 i,
          String.sub target (i + 1) (String.length target - i - 1) )
    in
    let status, ctype, body = http_dispatch t path query in
    http_respond cio ~head_only:(meth = "HEAD") ~status ~ctype body
  | _ ->
    http_respond cio ~head_only:false ~status:400 ~ctype:"text/plain"
      "bad request\n"

let handle_line t cio line =
  if is_http_line line then begin
    handle_http t cio line;
    false
  end
  else
    match Proto.parse_command line with
    | Error msg ->
      send_flush cio (Proto.err_line ~code:"proto" msg);
      false
    | Ok Proto.Ping ->
      Mpl_obs.Metrics.incr t.admin_c;
      send_flush cio Proto.pong_line;
      true
    | Ok Proto.Stats ->
      Mpl_obs.Metrics.incr t.admin_c;
      send_flush cio (stats_json t ^ "\n");
      true
    | Ok Proto.Metrics ->
      Mpl_obs.Metrics.incr t.admin_c;
      send_flush cio (metrics_json t ^ "\n");
      true
    | Ok Proto.Quit ->
      Mpl_obs.Metrics.incr t.admin_c;
      send_flush cio Proto.bye_line;
      request_stop t;
      false
    | Ok (Proto.Decompose (nbytes, rp)) -> handle_decompose t cio nbytes rp
    | Ok (Proto.Redecompose (nbytes, hash, rp)) ->
      handle_redecompose t cio nbytes hash rp

let rec serve_conn t cio =
  match Connio.read_line cio with
  | Error `Eof -> ()
  | Error `Timeout ->
    (* A half-sent command line that stalled: slowloris, reaped. *)
    bump_reaped t
  | Error `Too_long -> (
    try send_flush cio (Proto.err_line ~code:"proto" "line too long")
    with Client_gone _ -> ())
  | Ok line -> (
    match handle_line t cio line with
    | true -> serve_conn t cio
    | false -> ()
    | exception Client_gone Connio.Timeout ->
      (* The peer stopped draining its socket mid-reply: reap it. The
         request path handles its own Client_gone (it has a request to
         account); what reaches here is admin/HTTP replies. *)
      bump_reaped t
    | exception Client_gone Connio.Closed -> ())

let spawn_handler t fd =
  let cell = ref None in
  Mutex.lock t.lock;
  t.conns <- (fd, cell) :: t.conns;
  Mutex.unlock t.lock;
  let th =
    Thread.create
      (fun () ->
        let cio =
          Connio.create ~fault:t.fault
            ~read_timeout_s:t.config.read_timeout_s
            ~write_timeout_s:t.config.write_timeout_s fd
        in
        (try serve_conn t cio
         with _ -> () (* a dying connection never takes the server down *));
        Mutex.lock t.lock;
        t.conns <- List.filter (fun (f, _) -> f != fd) t.conns;
        Mutex.unlock t.lock;
        (* Connio owns the descriptor: this is the single close *)
        Connio.close cio)
      ()
  in
  cell := Some th

(* Test access to the telemetry ring. *)
let requests t = match t.req_ring with Some r -> Ring.entries r | None -> []

let trace_events t id =
  match t.req_ring with
  | None -> None
  | Some r -> Option.map (fun e -> e.Ring.trace) (Ring.find r id)

let make_unix_listener path =
  (match Unix.lstat path with
  | st when st.Unix.st_kind = Unix.S_SOCK -> (
    try Unix.unlink path with Unix.Unix_error _ -> ())
  | _ -> ()
  | exception Unix.Unix_error _ -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 64;
  fd

let make_tcp_listener host port =
  let addr =
    try Unix.inet_addr_of_string host
    with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
  in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (addr, port));
  Unix.listen fd 64;
  fd

let run t =
  let listeners =
    (match t.config.unix_socket with
    | Some path ->
      let fd = make_unix_listener path in
      log t (Printf.sprintf "listening on unix:%s" path);
      [ (fd, Some path) ]
    | None -> [])
    @
    match t.config.tcp_port with
    | Some port ->
      let fd = make_tcp_listener t.config.tcp_host port in
      log t (Printf.sprintf "listening on tcp:%s:%d" t.config.tcp_host port);
      [ (fd, None) ]
    | None -> []
  in
  let listen_fds = List.map fst listeners in
  let rec accept_loop () =
    if not (Atomic.get t.stop) then begin
      match Unix.select (t.stop_r :: listen_fds) [] [] (-1.) with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
      | ready, _, _ ->
        if List.mem t.stop_r ready || Atomic.get t.stop then ()
        else begin
          List.iter
            (fun lfd ->
              if List.mem lfd ready then
                match Unix.accept lfd with
                | cfd, _ -> spawn_handler t cfd
                | exception Unix.Unix_error _ -> ())
            listen_fds;
          accept_loop ()
        end
    end
  in
  accept_loop ();
  (* Graceful drain: no new connections, in-flight requests finish and
     send their full reply streams, then lingering idle connections are
     broken so their handlers exit. *)
  List.iter
    (fun (lfd, path) ->
      (try Unix.close lfd with Unix.Unix_error _ -> ());
      match path with
      | Some p -> ( try Unix.unlink p with Unix.Unix_error _ -> ())
      | None -> ())
    listeners;
  Mutex.lock t.lock;
  while t.inflight > 0 do
    Condition.wait t.drained t.lock
  done;
  let conns = t.conns in
  Mutex.unlock t.lock;
  List.iter
    (fun (fd, _) ->
      try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
    conns;
  List.iter
    (fun (_, cell) -> match !cell with Some th -> Thread.join th | None -> ())
    conns;
  save_cache t;
  Mpl_engine.Pool.shutdown t.pool;
  (match t.access with Some lg -> Mpl_obs.Logfile.close lg | None -> ());
  (try Unix.close t.stop_r with Unix.Unix_error _ -> ());
  (try Unix.close t.stop_w with Unix.Unix_error _ -> ());
  log t "stopped"
