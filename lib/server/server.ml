type config = {
  unix_socket : string option;
  tcp_port : int option;
  tcp_host : string;
  jobs : int;
  max_inflight : int;
  cache_budget : int option;
  cache_permuted : bool;
  persist : string option;
  persist_every : int;
  log : (string -> unit) option;
}

let default_config =
  {
    unix_socket = None;
    tcp_port = None;
    tcp_host = "127.0.0.1";
    jobs = 1;
    max_inflight = 4;
    cache_budget = None;
    cache_permuted = false;
    persist = None;
    persist_every = 0;
    log = None;
  }

type t = {
  config : config;
  obs : Mpl_obs.Obs.t;
  metrics : Mpl_obs.Metrics.t;
  pool : Mpl_engine.Pool.t;
  cache : Mpl.Division.stats Mpl_engine.Cache.t;
  served_c : Mpl_obs.Metrics.counter;
  rejected_c : Mpl_obs.Metrics.counter;
  errors_c : Mpl_obs.Metrics.counter;
  admin_c : Mpl_obs.Metrics.counter;
  latency_h : Mpl_obs.Metrics.histogram;
  inflight_g : Mpl_obs.Metrics.gauge;
  lock : Mutex.t;
  drained : Condition.t;
  mutable inflight : int;
  mutable served : int;
  mutable rejected : int;
  mutable errors : int;
  mutable conns : (Unix.file_descr * Thread.t option ref) list;
  save_lock : Mutex.t;
  stop : bool Atomic.t;
  stop_r : Unix.file_descr;
  stop_w : Unix.file_descr;
}

let log t msg = match t.config.log with Some f -> f msg | None -> ()

(* Persistence codec for the cache's metadata payload (the division
   statistics recorded with each solved component). *)
let stats_to_string (s : Mpl.Division.stats) =
  Printf.sprintf "%d %d %d %d" s.Mpl.Division.pieces
    s.Mpl.Division.largest_piece s.Mpl.Division.peeled s.Mpl.Division.cuts

let stats_of_string line =
  match
    List.filter (fun s -> s <> "") (String.split_on_char ' ' (String.trim line))
  with
  | [ a; b; c; d ] -> (
    match
      ( int_of_string_opt a,
        int_of_string_opt b,
        int_of_string_opt c,
        int_of_string_opt d )
    with
    | Some pieces, Some largest_piece, Some peeled, Some cuts ->
      Some { Mpl.Division.pieces; largest_piece; peeled; cuts }
    | _ -> None)
  | _ -> None

let create config =
  if config.unix_socket = None && config.tcp_port = None then
    invalid_arg "Server.create: no listener configured";
  if config.jobs < 1 then invalid_arg "Server.create: jobs < 1";
  if config.max_inflight < 1 then invalid_arg "Server.create: max_inflight < 1";
  let metrics = Mpl_obs.Metrics.create () in
  let obs = Mpl_obs.Obs.make ~sink:Mpl_obs.Sink.null ~metrics () in
  let pool = Mpl_engine.Pool.create ~obs ~jobs:config.jobs () in
  let cache =
    Mpl_engine.Cache.create
      ~mode:
        (if config.cache_permuted then Mpl_engine.Cache.Permuted
         else Mpl_engine.Cache.Exact)
      ?byte_budget:config.cache_budget ~obs ()
  in
  let stop_r, stop_w = Unix.pipe () in
  let t =
    {
      config;
      obs;
      metrics;
      pool;
      cache;
      served_c = Mpl_obs.Metrics.counter metrics "server.served";
      rejected_c = Mpl_obs.Metrics.counter metrics "server.rejected";
      errors_c = Mpl_obs.Metrics.counter metrics "server.errors";
      admin_c = Mpl_obs.Metrics.counter metrics "server.admin";
      latency_h = Mpl_obs.Metrics.histogram metrics "server.request_ns";
      inflight_g = Mpl_obs.Metrics.gauge metrics "server.inflight";
      lock = Mutex.create ();
      drained = Condition.create ();
      inflight = 0;
      served = 0;
      rejected = 0;
      errors = 0;
      conns = [];
      save_lock = Mutex.create ();
      stop = Atomic.make false;
      stop_r;
      stop_w;
    }
  in
  (match config.persist with
  | Some path when Sys.file_exists path -> (
    match
      Mpl_engine.Cache.load t.cache ~value_of_string:stats_of_string path
    with
    | loaded, dropped ->
      log t
        (Printf.sprintf "cache: loaded %d entries from %s%s" loaded path
           (if dropped > 0 then Printf.sprintf " (%d dropped)" dropped
            else ""))
    | exception Mpl_engine.Cache.Bad_file msg ->
      log t (Printf.sprintf "cache: ignoring %s: %s" path msg)
    | exception Sys_error msg -> log t (Printf.sprintf "cache: %s" msg))
  | Some _ | None -> ());
  t

let request_stop t =
  if not (Atomic.exchange t.stop true) then
    try ignore (Unix.write t.stop_w (Bytes.make 1 '!') 0 1)
    with Unix.Unix_error _ | Sys_error _ -> ()

let save_cache t =
  match t.config.persist with
  | None -> ()
  | Some path ->
    Mutex.lock t.save_lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.save_lock)
      (fun () ->
        match
          Mpl_engine.Cache.save t.cache ~value_to_string:stats_to_string path
        with
        | () ->
          log t
            (Printf.sprintf "cache: saved %d entries (%d bytes) to %s"
               (Mpl_engine.Cache.length t.cache)
               (Mpl_engine.Cache.bytes t.cache)
               path)
        | exception e ->
          log t (Printf.sprintf "cache: save failed: %s" (Printexc.to_string e)))

(* Direct-fd writes (no out_channel): the input side owns the only
   buffered channel on the descriptor, so closing never double-closes
   and a handler thread can stream PIECE lines without flush
   bookkeeping. *)
let send fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then
      match Unix.write fd b off (n - off) with
      | w -> go (off + w)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let stats_json t =
  Mutex.lock t.lock;
  let served = t.served
  and rejected = t.rejected
  and errors = t.errors
  and inflight = t.inflight in
  Mutex.unlock t.lock;
  let cs = Mpl_engine.Cache.stats t.cache in
  let open Mpl_obs.Json in
  to_string
    (Obj
       [
         ( "server",
           Obj
             [
               ("served", Int served);
               ("rejected", Int rejected);
               ("errors", Int errors);
               ("inflight", Int inflight);
               ("max_inflight", Int t.config.max_inflight);
               ("jobs", Int (Mpl_engine.Pool.jobs t.pool));
             ] );
         ( "cache",
           Obj
             [
               ("entries", Int cs.Mpl_engine.Cache.entries);
               ("bytes", Int cs.Mpl_engine.Cache.resident_bytes);
               ( "budget",
                 match cs.Mpl_engine.Cache.byte_budget with
                 | Some b -> Int b
                 | None -> Null );
               ("hits", Int cs.Mpl_engine.Cache.s_hits);
               ("misses", Int cs.Mpl_engine.Cache.s_misses);
               ("warm_hits", Int cs.Mpl_engine.Cache.s_warm_hits);
               ("corrupt_drops", Int cs.Mpl_engine.Cache.s_corrupt_drops);
               ("evictions", Int cs.Mpl_engine.Cache.s_evictions);
             ] );
       ])

let metrics_json t =
  Mpl_obs.Json.to_string
    (Mpl_obs.Export.metrics_json (Mpl_obs.Metrics.snapshot t.metrics))

let bump_errors t =
  Mpl_obs.Metrics.incr t.errors_c;
  Mutex.lock t.lock;
  t.errors <- t.errors + 1;
  Mutex.unlock t.lock

(* Request priorities dominate piece sizes on the shared pool: the
   per-piece priority within one request is its vertex count, so
   scaling the request priority by 2^20 keeps requests strictly
   ordered unless a single piece exceeds a million vertices. *)
let priority_scale = 1 lsl 20

let resolve_min_s ~k = function
  | Some m -> m
  | None ->
    let tech = Mpl_layout.Layout.default_tech in
    if k >= 5 then Mpl_layout.Layout.pentuple_min_s tech
    else Mpl_layout.Layout.quadruple_min_s tech

let run_request t fd (rp : Proto.request) body =
  match Mpl_layout.Layout_io.of_string body with
  | exception Mpl_layout.Layout_io.Parse_error { line; msg } ->
    bump_errors t;
    send fd (Proto.err_line ~code:"parse" ~line msg)
  | layout -> (
    send fd Proto.ack_line;
    let min_s = resolve_min_s ~k:rp.Proto.k rp.Proto.min_s in
    let params =
      {
        Mpl.Decomposer.default_params with
        k = rp.Proto.k;
        jobs = max 1 rp.Proto.jobs;
        priority_bias = rp.Proto.priority * priority_scale;
        cache = rp.Proto.cache;
        cache_permuted = rp.Proto.permuted;
        fault = rp.Proto.inject;
      }
    in
    (* The shared table serves only requests whose reuse semantics
       match its mode; a mode-mismatched request gets a private
       per-request cache from the engine instead. *)
    let shared_cache =
      if
        rp.Proto.cache
        && rp.Proto.permuted
           = (Mpl_engine.Cache.mode t.cache = Mpl_engine.Cache.Permuted)
      then Some t.cache
      else None
    in
    let on_component idx back colors =
      send fd (Proto.piece_line ~idx ~back ~colors)
    in
    let t0 = Mpl_util.Timer.now_ns () in
    match
      let g = Mpl.Decomp_graph.of_layout ~obs:t.obs layout ~min_s in
      Mpl.Decomposer.assign ~params ~obs:t.obs ~pool:t.pool ?shared_cache
        ~on_component rp.Proto.algo g
    with
    | exception e ->
      bump_errors t;
      send fd (Proto.err_line ~code:"internal" (Printexc.to_string e))
    | report ->
      let cost = report.Mpl.Decomposer.cost in
      send fd
        (Proto.cost_line
           {
             Proto.conflicts = cost.Mpl.Coloring.conflicts;
             stitches = cost.Mpl.Coloring.stitches;
             scaled = cost.Mpl.Coloring.scaled;
             elapsed_s = report.Mpl.Decomposer.elapsed_s;
             timed_out = report.Mpl.Decomposer.timed_out;
           });
      (match report.Mpl.Decomposer.engine with
      | Some e -> send fd (Proto.engine_line e)
      | None -> ());
      let res = report.Mpl.Decomposer.resilience in
      send fd
        (Proto.resilience_line
           {
             Proto.degraded = res.Mpl.Decomposer.degraded;
             piece_failures = res.Mpl.Decomposer.piece_failures;
             fallbacks = res.Mpl.Decomposer.fallback_attempts;
             fired = res.Mpl.Decomposer.fault_fired;
           });
      (match report.Mpl.Decomposer.cache with
      | Some cs ->
        send fd
          (Proto.cache_line
             {
               Proto.entries = cs.Mpl_engine.Cache.entries;
               bytes = cs.Mpl_engine.Cache.resident_bytes;
               hits = cs.Mpl_engine.Cache.s_hits;
               misses = cs.Mpl_engine.Cache.s_misses;
               warm_hits = cs.Mpl_engine.Cache.s_warm_hits;
               corrupt_drops = cs.Mpl_engine.Cache.s_corrupt_drops;
               evictions = cs.Mpl_engine.Cache.s_evictions;
             })
      | None -> ());
      send fd (Proto.done_line report.Mpl.Decomposer.colors);
      Mpl_obs.Metrics.observe t.latency_h
        (Int64.to_float (Int64.sub (Mpl_util.Timer.now_ns ()) t0));
      Mpl_obs.Metrics.incr t.served_c;
      let served =
        Mutex.lock t.lock;
        t.served <- t.served + 1;
        let s = t.served in
        Mutex.unlock t.lock;
        s
      in
      if
        t.config.persist_every > 0
        && served mod t.config.persist_every = 0
      then save_cache t)

let handle_decompose t fd ic nbytes rp =
  match really_input_string ic nbytes with
  | exception End_of_file ->
    send fd (Proto.err_line ~code:"proto" "truncated request body");
    false
  | body ->
    let admitted, inflight =
      Mutex.lock t.lock;
      let ok =
        (not (Atomic.get t.stop)) && t.inflight < t.config.max_inflight
      in
      if ok then begin
        t.inflight <- t.inflight + 1;
        Mpl_obs.Metrics.set t.inflight_g (float_of_int t.inflight)
      end
      else t.rejected <- t.rejected + 1;
      let infl = t.inflight in
      Mutex.unlock t.lock;
      (ok, infl)
    in
    if not admitted then begin
      Mpl_obs.Metrics.incr t.rejected_c;
      send fd (Proto.busy_line ~inflight ~limit:t.config.max_inflight)
    end
    else
      Fun.protect
        ~finally:(fun () ->
          Mutex.lock t.lock;
          t.inflight <- t.inflight - 1;
          Mpl_obs.Metrics.set t.inflight_g (float_of_int t.inflight);
          Condition.broadcast t.drained;
          Mutex.unlock t.lock)
        (fun () -> run_request t fd rp body);
    true

let handle_line t fd ic line =
  match Proto.parse_command line with
  | Error msg ->
    send fd (Proto.err_line ~code:"proto" msg);
    false
  | Ok Proto.Ping ->
    Mpl_obs.Metrics.incr t.admin_c;
    send fd Proto.pong_line;
    true
  | Ok Proto.Stats ->
    Mpl_obs.Metrics.incr t.admin_c;
    send fd (stats_json t ^ "\n");
    true
  | Ok Proto.Metrics ->
    Mpl_obs.Metrics.incr t.admin_c;
    send fd (metrics_json t ^ "\n");
    true
  | Ok Proto.Quit ->
    Mpl_obs.Metrics.incr t.admin_c;
    send fd Proto.bye_line;
    request_stop t;
    false
  | Ok (Proto.Decompose (nbytes, rp)) -> handle_decompose t fd ic nbytes rp

let rec serve_conn t fd ic =
  match input_line ic with
  | exception End_of_file -> ()
  | exception Sys_error _ -> ()
  | line -> if handle_line t fd ic line then serve_conn t fd ic

let spawn_handler t fd =
  let cell = ref None in
  Mutex.lock t.lock;
  t.conns <- (fd, cell) :: t.conns;
  Mutex.unlock t.lock;
  let th =
    Thread.create
      (fun () ->
        let ic = Unix.in_channel_of_descr fd in
        (try serve_conn t fd ic
         with _ -> () (* a dying connection never takes the server down *));
        Mutex.lock t.lock;
        t.conns <- List.filter (fun (f, _) -> f != fd) t.conns;
        Mutex.unlock t.lock;
        (* the in_channel owns the descriptor: this is the single close *)
        close_in_noerr ic)
      ()
  in
  cell := Some th

let make_unix_listener path =
  (match Unix.lstat path with
  | st when st.Unix.st_kind = Unix.S_SOCK -> (
    try Unix.unlink path with Unix.Unix_error _ -> ())
  | _ -> ()
  | exception Unix.Unix_error _ -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 64;
  fd

let make_tcp_listener host port =
  let addr =
    try Unix.inet_addr_of_string host
    with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
  in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (addr, port));
  Unix.listen fd 64;
  fd

let run t =
  let listeners =
    (match t.config.unix_socket with
    | Some path ->
      let fd = make_unix_listener path in
      log t (Printf.sprintf "listening on unix:%s" path);
      [ (fd, Some path) ]
    | None -> [])
    @
    match t.config.tcp_port with
    | Some port ->
      let fd = make_tcp_listener t.config.tcp_host port in
      log t (Printf.sprintf "listening on tcp:%s:%d" t.config.tcp_host port);
      [ (fd, None) ]
    | None -> []
  in
  let listen_fds = List.map fst listeners in
  let rec accept_loop () =
    if not (Atomic.get t.stop) then begin
      match Unix.select (t.stop_r :: listen_fds) [] [] (-1.) with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
      | ready, _, _ ->
        if List.mem t.stop_r ready || Atomic.get t.stop then ()
        else begin
          List.iter
            (fun lfd ->
              if List.mem lfd ready then
                match Unix.accept lfd with
                | cfd, _ -> spawn_handler t cfd
                | exception Unix.Unix_error _ -> ())
            listen_fds;
          accept_loop ()
        end
    end
  in
  accept_loop ();
  (* Graceful drain: no new connections, in-flight requests finish and
     send their full reply streams, then lingering idle connections are
     broken so their handlers exit. *)
  List.iter
    (fun (lfd, path) ->
      (try Unix.close lfd with Unix.Unix_error _ -> ());
      match path with
      | Some p -> ( try Unix.unlink p with Unix.Unix_error _ -> ())
      | None -> ())
    listeners;
  Mutex.lock t.lock;
  while t.inflight > 0 do
    Condition.wait t.drained t.lock
  done;
  let conns = t.conns in
  Mutex.unlock t.lock;
  List.iter
    (fun (fd, _) ->
      try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
    conns;
  List.iter
    (fun (_, cell) -> match !cell with Some th -> Thread.join th | None -> ())
    conns;
  save_cache t;
  Mpl_engine.Pool.shutdown t.pool;
  (try Unix.close t.stop_r with Unix.Unix_error _ -> ());
  (try Unix.close t.stop_w with Unix.Unix_error _ -> ());
  log t "stopped"
