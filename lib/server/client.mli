(** Blocking client for the {!Proto} protocol, used by [mpld client]
    and the test suite. One {!t} is one connection; requests on it are
    strictly sequential (send, then read the full reply stream). *)

type t

val connect_unix : string -> t
(** Connect to a Unix-domain socket path.
    @raise Unix.Unix_error on failure. *)

val connect_tcp : string -> int -> t
(** Connect to host:port.
    @raise Unix.Unix_error or [Not_found] (unresolvable host). *)

val close : t -> unit

type outcome = {
  colors : int array;  (** the full coloring, original vertex indexing *)
  rid : int option;
      (** the server-assigned request id from [ACK rid=N]; key for the
          admin plane's [/trace?id=] *)
  streamed_pieces : int;  (** [PIECE] lines received before [DONE] *)
  streamed_cells : int;  (** vertices covered by those lines *)
  streams_consistent : bool;
      (** every streamed [(vertex, color)] matched the final coloring *)
  cost : Proto.cost_reply;
  engine : Mpl_engine.Engine.stats option;
  resilience : Proto.resilience_reply;
  cache : Proto.cache_reply option;
}

type error =
  | Busy of int * int  (** admission control: in-flight, limit *)
  | Remote of { code : string; line : int option; msg : string }
      (** the server's [ERR] reply *)
  | Protocol of string  (** malformed reply / unexpected disconnect *)

val error_to_string : error -> string

val decompose :
  t -> ?request:Proto.request -> string -> (outcome, error) result
(** [decompose t body] submits the layout text [body] with the given
    request parameters (default {!Proto.default_request}) and reads
    replies until [DONE], [ERR] or [BUSY]. *)

val stats : t -> (string, error) result
(** The admin [STATS] JSON line. *)

val metrics : t -> (string, error) result
(** The admin [METRICS] JSON line. *)

val ping : t -> bool
(** [PING] round-trip; [false] on any protocol failure. *)

val quit : t -> unit
(** Send [QUIT] (starting a graceful server shutdown) and wait for
    [BYE] (or the connection to drop). *)

val http : t -> string -> (int * string, error) result
(** [http t path] issues [GET path HTTP/1.0] on the connection and
    returns the status code and response body. The server closes the
    connection after one HTTP response, so the client is spent —
    {!close} it and connect again for further requests. *)
