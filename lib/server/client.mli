(** Blocking client for the {!Proto} protocol, used by [mpld client]
    and the test suite. One {!t} is one connection; requests on it are
    strictly sequential (send, then read the full reply stream). *)

type t

val connect_unix : string -> t
(** Connect to a Unix-domain socket path.
    @raise Unix.Unix_error on failure. *)

val connect_tcp : string -> int -> t
(** Connect to host:port.
    @raise Unix.Unix_error or [Not_found] (unresolvable host). *)

val close : t -> unit

type outcome = {
  colors : int array;  (** the full coloring, original vertex indexing *)
  rid : int option;
      (** the server-assigned request id from [ACK rid=N]; key for the
          admin plane's [/trace?id=] *)
  streamed_pieces : int;  (** [PIECE] lines received before [DONE] *)
  streamed_cells : int;  (** vertices covered by those lines *)
  streams_consistent : bool;
      (** every streamed [(vertex, color)] matched the final coloring *)
  cost : Proto.cost_reply;
  engine : Mpl_engine.Engine.stats option;
  resilience : Proto.resilience_reply;
  cache : Proto.cache_reply option;
  reused : (int * int * int) option;
      (** [REDECOMPOSE] only: (components reused verbatim, components
          re-solved, features re-solved) from the [REUSED] line *)
}

type error =
  | Busy of int * int  (** admission control: in-flight, limit *)
  | Timed_out of { deadline_ms : int; elapsed_ms : int }
      (** the server's [TIMEOUT] terminal: the request's deadline (and
          grace period) expired server-side *)
  | Cancelled of string  (** the server's [CANCELLED <reason>] terminal *)
  | Remote of { code : string; line : int option; msg : string }
      (** the server's [ERR] reply *)
  | Protocol of string  (** malformed reply / unexpected disconnect *)

val error_to_string : error -> string

val retryable : error -> bool
(** Is retrying the identical request reasonable? [true] for {!Busy}
    (admission pressure) and {!Protocol} (torn replies / dropped
    connections — transport trouble, not request trouble); [false] for
    {!Remote} (deterministic rejection), {!Timed_out} and {!Cancelled}
    (an identical retry would meet the same deadline). *)

val transient_connect_error : exn -> bool
(** Is this exception from {!connect_unix} / {!connect_tcp} worth
    retrying (connection refused / reset / socket file not there yet)?
    [false] for anything that is not a transient [Unix_error]. *)

val backoff_schedule :
  ?cap_ms:int -> ?seed:int -> base_ms:int -> retries:int -> unit -> float list
(** [backoff_schedule ~base_ms ~retries ()] is the sleep (in seconds)
    before each retry: capped exponential ([base_ms * 2^i], capped at
    [cap_ms], default 2000) with deterministic ±25% jitter drawn from
    a SplitMix64 stream seeded by [seed] — identical arguments yield
    an identical schedule. *)

val decompose :
  t -> ?request:Proto.request -> string -> (outcome, error) result
(** [decompose t body] submits the layout text [body] with the given
    request parameters (default {!Proto.default_request}) and reads
    replies until [DONE], [ERR] or [BUSY]. *)

val redecompose :
  t -> ?request:Proto.request -> hash:string -> string -> (outcome, error) result
(** [redecompose t ~hash body] submits the edit script [body] (in
    [Mpl.Eco] text format) against the server-side session keyed by the
    base layout's [hash] and the request's cache-mode salt, and reads
    replies until [DONE], [ERR] or [BUSY]. The server streams only the
    re-solved (dirty) pieces; [outcome.colors] is still the full
    coloring of the edited layout, and [outcome.reused] reports how
    much was reused. A missing session surfaces as [Remote] with code
    ["session"] — fall back to {!decompose}. *)

val stats : t -> (string, error) result
(** The admin [STATS] JSON line. *)

val metrics : t -> (string, error) result
(** The admin [METRICS] JSON line. *)

val ping : t -> bool
(** [PING] round-trip; [false] on any protocol failure. *)

val quit : t -> unit
(** Send [QUIT] (starting a graceful server shutdown) and wait for
    [BYE] (or the connection to drop). *)

val http : t -> string -> (int * string, error) result
(** [http t path] issues [GET path HTTP/1.0] on the connection and
    returns the status code and response body. The server closes the
    connection after one HTTP response, so the client is spent —
    {!close} it and connect again for further requests. *)
