module Rect = Mpl_geometry.Rect
module Polygon = Mpl_geometry.Polygon
module Rng = Mpl_util.Rng

type spec = {
  name : string;
  seed : int;
  rows : int;
  cells_per_row : int;
  density : float;
  wire_fraction : float;
  sparse_gap_prob : float;
  native_five : int;
  native_six : int;
  hard_blocks : int;
  stitch_gadgets : int;
  penta_six : int;
}

(* Geometry constants, all in nm at the paper's 20 nm half-pitch tech:
   contacts are 20x20 squares on a 40 nm grid; a cell slot is 6 grid
   columns and 2 grid rows of contact sites; each row additionally has a
   wire track 135 nm above its contact zone. The track height and row
   pitch are chosen so that under the QPL radius (80 nm) a wire sees the
   top contact row below it (75 nm) and the next row's bottom contacts
   (45 nm) but never both rows of one cluster, and under the pentuple
   radius (110 nm) a wire plus any one cluster tops out at K5 — so the
   synthetic suite, like the paper's, is pentuple-friendly while keeping
   QPL native conflicts exactly where they are injected. *)
let contact = 20
let pitch = 40
let cell_cols = 6
let wire_y_offset = 125
let wire_h = 20
let row_pitch = 200

type motif = Empty | Single | Pair_h | Pair_v | Triple_l | Quad | Five | Six

(* Relative contact sites (col, row) of each motif; anchored at a random
   column inside the cell. Five is a K5 under 80 nm (2x2 block plus one),
   Six a K6 (2x3 block) — the paper's native-conflict patterns. *)
let motif_sites = function
  | Empty -> []
  | Single -> [ (0, 0) ]
  | Pair_h -> [ (0, 0); (1, 0) ]
  | Pair_v -> [ (0, 0); (0, 1) ]
  | Triple_l -> [ (0, 0); (1, 0); (0, 1) ]
  | Quad -> [ (0, 0); (1, 0); (0, 1); (1, 1) ]
  | Five -> [ (0, 0); (1, 0); (0, 1); (1, 1); (2, 0) ]
  | Six -> [ (0, 0); (1, 0); (2, 0); (0, 1); (1, 1); (2, 1) ]

let motif_width = function
  | Empty -> 0
  | Single -> 1
  | Pair_h -> 2
  | Pair_v -> 1
  | Triple_l | Quad -> 2
  | Five | Six -> 3

(* Weighted motif choice; density shifts mass from sparse to dense. *)
let pick_motif rng density =
  let d = density in
  let weights =
    [
      (Empty, 1.2 -. (0.8 *. d));
      (Single, 2.0 -. d);
      (Pair_h, 1.5);
      (Pair_v, 1.0);
      (Triple_l, 0.8 +. (0.8 *. d));
      (Quad, 0.3 +. (1.2 *. d));
    ]
  in
  let total = List.fold_left (fun acc (_, w) -> acc +. w) 0. weights in
  let x = Rng.float rng total in
  let rec pick acc = function
    | [] -> Quad
    | (m, w) :: rest -> if x < acc +. w then m else pick (acc +. w) rest
  in
  pick 0. weights

let contact_rect ~x ~y =
  Rect.make ~x0:x ~y0:y ~x1:(x + contact) ~y1:(y + contact)

(* One injected hard block: a 5x10 contact grid at 66 nm pitch — a king
   graph under BOTH coloring radii (80 nm: +/-1 col at 46 and the 65 nm
   diagonal conflict, 2 columns at 112 do not; same at 110 nm), so it is
   4-colorable by 2x2 tiling but its peeled interior survives every
   division stage — plus one extra contact at the center of an interior
   2x2 tile. Under the QPL radius the center conflicts with exactly its
   four tile corners (the next ring sits at 80.06 nm), forming a K5
   whose single conflict an exact solver must prove unavoidable inside a
   ~51-vertex 4-connected component — which is where the paper's ILP
   baseline burns its hours. Under the pentuple radius the center plus
   any king-graph clique (at most a 2x2 K4) still tops out at K5, so the
   block decomposes conflict-free with five masks, like the paper's
   benchmarks. *)
(* One stitch-forcing gadget: a "wide K4" — two vertical contact pairs
   120 nm apart (their 60 nm column gap keeps all four mutually within
   the 80 nm radius) — under a wire 95 nm above the bottom contact row.
   The wire conflicts with all four contacts, so unsplit it would be the
   fifth vertex of a K5; the empty middle column leaves a legal stitch
   span, and splitting there lets each half take the color its side's
   pair leaves free. The optimum is therefore exactly one stitch and no
   conflict — the paper's stitch mechanism in its minimal form. Under
   the pentuple radius the same five vertices are a plain K5 and need
   neither stitch nor conflict. *)
let stitch_gadget ~x ~y acc =
  let acc = ref acc in
  List.iter
    (fun (c, r) ->
      acc := contact_rect ~x:(x + (c * pitch)) ~y:(y + (r * pitch)) :: !acc)
    [ (0, 0); (0, 1); (2, 0); (2, 1) ];
  let wy = y + pitch + 55 in
  (!acc, Rect.make ~x0:(x - 60) ~y0:wy ~x1:(x + 160) ~y1:(wy + wire_h))

let hard_block ~variant ~x ~y acc =
  let hp = 66 in
  let acc = ref acc in
  for r = 0 to 4 do
    for c = 0 to 9 do
      acc := contact_rect ~x:(x + (c * hp)) ~y:(y + (r * hp)) :: !acc
    done
  done;
  (* Center-contact pattern cycles with the block index: a single center
     is the pure ILP-hardness case (optimum 1, all heuristics find it);
     two adjacent centers and a row of three are the greedy traps where
     Linear and SDP+Greedy report more conflicts than SDP+Backtrack,
     reproducing the paper's quality ordering. *)
  let centers =
    match variant mod 3 with
    | 0 -> [ (4, 2) ]
    | 1 -> [ (4, 2); (5, 2) ]
    | _ -> [ (3, 2); (4, 2); (5, 2) ]
  in
  List.iter
    (fun (c, r) ->
      acc := contact_rect ~x:(x + (c * hp) + 33) ~y:(y + (r * hp) + 33) :: !acc)
    centers;
  !acc

(* A pentuple-only native cluster: a 2x3 contact grid at 55 nm pitch.
   Under the 80 nm QPL radius the two-column link (90 nm) is absent, so
   the cluster is a chain of K4s and 4-colorable; under the 110 nm
   pentuple radius it closes into a K6 and costs exactly one conflict
   with five masks — how the paper's dense C6288 shows many pentuple
   native conflicts despite a clean QPL decomposition being impossible
   only 9 times. *)
let penta_six_cluster ~x ~y acc =
  let hp = 55 in
  let acc = ref acc in
  for r = 0 to 1 do
    for c = 0 to 2 do
      acc := contact_rect ~x:(x + (c * hp)) ~y:(y + (r * hp)) :: !acc
    done
  done;
  !acc

let generate spec =
  let rng = Rng.create spec.seed in
  let contacts = ref [] in
  let wires = ref [] in
  for row = 0 to spec.rows - 1 do
    let base_y = row * row_pitch in
    let x = ref 0 in
    let wire_cursor = ref min_int in
    for cell = 0 to spec.cells_per_row - 1 do
      ignore cell;
      let motif = pick_motif rng spec.density in
      let w = motif_width motif in
      let anchor = if w >= cell_cols then 0 else Rng.int rng (cell_cols - w) in
      List.iter
        (fun (c, r) ->
          let cx = !x + ((anchor + c) * pitch) in
          let cy = base_y + (r * pitch) in
          contacts := contact_rect ~x:cx ~y:cy :: !contacts)
        (motif_sites motif);
      (* Routing wire seeded at this cell, spanning 1-3 cells. *)
      if Rng.float rng 1.0 < spec.wire_fraction then begin
        let span = 1 + Rng.int rng 3 in
        let wx0 = max !x (!wire_cursor + (2 * pitch)) in
        let wx1 = !x + (span * cell_cols * pitch) in
        if wx1 - wx0 >= 3 * pitch then begin
          let wy = base_y + wire_y_offset in
          wires :=
            Rect.make ~x0:wx0 ~y0:wy ~x1:wx1 ~y1:(wy + wire_h) :: !wires;
          wire_cursor := wx1
        end
      end;
      (* Advance past the cell plus a 1- or 2-column gap: a 1-column gap
         leaves a 100 nm cross-boundary link that chains components under
         the 110 nm pentuple radius (but never raises the chromatic
         number past 5); 2 columns break even that. *)
      let gap =
        if Rng.float rng 1.0 < spec.sparse_gap_prob then 2 else 1
      in
      x := !x + ((cell_cols + gap) * pitch)
    done
  done;
  (* Native-conflict clusters and hard blocks live in their own bands
     below the rows, isolated from the organic cells and each other, so
     each contributes its exact textbook conflict count (K5: one QPL
     conflict, none pentuple; K6: two QPL conflicts, one pentuple). *)
  let native_y = (spec.rows * row_pitch) + 400 in
  for i = 0 to spec.native_five - 1 do
    List.iter
      (fun (c, r) ->
        contacts :=
          contact_rect ~x:((i * 400) + (c * pitch)) ~y:(native_y + (r * pitch))
          :: !contacts)
      (motif_sites Five)
  done;
  for i = 0 to spec.native_six - 1 do
    List.iter
      (fun (c, r) ->
        contacts :=
          contact_rect
            ~x:((i * 400) + (c * pitch))
            ~y:(native_y + 400 + (r * pitch))
          :: !contacts)
      (motif_sites Six)
  done;
  let gadget_y = native_y + 800 in
  (* Stitch gadgets fill their own rows of the band, 400 nm apart. *)
  let per_row = 120 in
  for i = 0 to spec.stitch_gadgets - 1 do
    let gx = 100 + (i mod per_row * 400) in
    let gy = gadget_y + (i / per_row * 400) in
    let cs, wire = stitch_gadget ~x:gx ~y:gy !contacts in
    contacts := cs;
    wires := wire :: !wires
  done;
  let penta_y = gadget_y + (((spec.stitch_gadgets + per_row - 1) / per_row) * 400) + 400 in
  for i = 0 to spec.penta_six - 1 do
    contacts := penta_six_cluster ~x:(i * 400) ~y:penta_y !contacts
  done;
  let hard_y = penta_y + 400 in
  let hard = ref [] in
  for b = 0 to spec.hard_blocks - 1 do
    hard := hard_block ~variant:b ~x:(b * 1200) ~y:hard_y !hard
  done;
  let features =
    List.rev_map Polygon.of_rect !contacts
    @ List.rev_map Polygon.of_rect !wires
    @ List.rev_map Polygon.of_rect !hard
  in
  Layout.make ~name:spec.name Layout.default_tech features

let base name seed rows cells density wire_fraction sparse_gap_prob five six
    hard gadgets penta =
  {
    name;
    seed;
    rows;
    cells_per_row = cells;
    density;
    wire_fraction;
    sparse_gap_prob;
    native_five = five;
    native_six = six;
    hard_blocks = hard;
    stitch_gadgets = gadgets;
    penta_six = penta;
  }

(* Parametric synthetic spec, sized by target feature count instead of a
   named circuit: standard-cell rows as above, near-square (a cell slot
   is ~280 nm wide at the usual 1-column gap, a row 200 nm tall, so
   rows ~ sqrt(1.4 * cells) balances the two extents — window strips cut
   along either axis then stay meaningful). The expected feature yield
   per cell follows from the motif weights analytically, so the actual
   count lands within a few percent of [features] at any density. *)
let synth ?(density = 0.5) ?(wire_fraction = 0.4) ?(stitch_gadgets = 0)
    ~seed ~features () =
  let d = density in
  let weights =
    [
      (0, 1.2 -. (0.8 *. d));
      (1, 2.0 -. d);
      (2, 1.5);
      (2, 1.0);
      (3, 0.8 +. (0.8 *. d));
      (4, 0.3 +. (1.2 *. d));
    ]
  in
  let total = List.fold_left (fun a (_, w) -> a +. w) 0. weights in
  let esites =
    List.fold_left (fun a (s, w) -> a +. (float_of_int s *. w)) 0. weights
    /. total
  in
  (* A seeded wire only lands when its span clears the previous wire by
     two columns; ~0.8 of seeds survive at the default gap layout. *)
  let per_cell = esites +. (wire_fraction *. 0.8) in
  let organic = max 1 (features - (5 * stitch_gadgets)) in
  let cells = float_of_int organic /. per_cell in
  let rows = max 1 (int_of_float (ceil (sqrt (cells *. 1.4)))) in
  let cells_per_row = max 1 (int_of_float (ceil (cells /. float_of_int rows))) in
  {
    name = Printf.sprintf "synth-%d-s%d" features seed;
    seed;
    rows;
    cells_per_row;
    density;
    wire_fraction;
    sparse_gap_prob = 1.0;
    native_five = 0;
    native_six = 0;
    hard_blocks = 0;
    stitch_gadgets;
    penta_six = 0;
  }

(* Sized to preserve the relative scale of the paper's suite: the C-series
   are small (ILP tractable), C6288 is the famously dense multiplier, the
   four S-series circuits are an order of magnitude larger with hard
   blocks that push exact ILP past any reasonable budget. Seeds fixed for
   reproducibility. *)
let specs =
  [
    base "C432" 432 5 48 0.35 0.30 1.00 2 0 0 0 0;
    base "C499" 499 5 56 0.35 0.35 1.00 1 0 0 4 0;
    base "C880" 880 6 58 0.35 0.30 1.00 1 0 0 0 0;
    base "C1355" 1355 7 62 0.40 0.35 1.00 0 0 0 4 0;
    base "C1908" 1908 7 70 0.40 0.35 1.00 2 0 0 3 0;
    base "C2670" 2670 8 74 0.40 0.40 1.00 0 0 0 6 0;
    base "C3540" 3540 9 78 0.45 0.35 1.00 1 0 0 3 0;
    base "C5315" 5315 10 86 0.45 0.45 1.00 1 0 0 12 0;
    base "C6288" 6288 12 90 0.80 0.05 1.00 9 0 0 0 19;
    base "C7552" 7552 12 96 0.45 0.45 1.00 2 0 0 12 1;
    base "S1488" 1488 7 70 0.40 0.40 1.00 0 0 0 6 0;
    base "S38417" 38417 30 150 0.50 0.45 1.00 18 0 2 520 0;
    base "S35932" 35932 34 160 0.55 0.45 1.00 45 0 4 1700 2;
    base "S38584" 38584 32 158 0.55 0.45 1.00 36 0 4 1600 0;
    base "S15850" 15850 31 152 0.55 0.45 1.00 37 0 4 1420 3;
  ]

let table1_circuits = List.map (fun s -> s.name) specs

let table2_circuits =
  [ "C6288"; "C7552"; "S38417"; "S35932"; "S38584"; "S15850" ]

let spec_of_circuit name =
  match List.find_opt (fun s -> s.name = name) specs with
  | Some s -> s
  | None -> raise Not_found

let circuit name = generate (spec_of_circuit name)
