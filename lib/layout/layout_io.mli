(** Plain-text layout interchange format.

    {v
    # comment
    NAME <identifier>
    TECH <half_pitch> <min_width> <min_space>
    FEATURE
    R <x0> <y0> <x1> <y1>
    R ...
    END
    v}

    Each [FEATURE .. END] block is one polygon given by its rectangle
    decomposition. *)

exception Parse_error of { line : int; msg : string }
(** The only exception {!of_string} raises on malformed input: [line]
    is the offending 1-based line number. Structural errors (bad
    numbers, degenerate rectangles, non-positive TECH rules, stray or
    unterminated blocks) are all reported this way — callers can print
    [file:line: msg] without pattern-matching on exception internals. *)

val to_string : Layout.t -> string
val of_string : string -> Layout.t

val save : Layout.t -> string -> unit
(** Write to a file path. *)

val load : string -> Layout.t
(** Read from a file path. Raises [Parse_error] or [Sys_error]. *)
