module Rect = Mpl_geometry.Rect
module Polygon = Mpl_geometry.Polygon

exception Parse_error of { line : int; msg : string }

let to_string (t : Layout.t) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "NAME %s\n" t.Layout.name);
  Buffer.add_string buf
    (Printf.sprintf "TECH %d %d %d\n" t.Layout.tech.Layout.half_pitch
       t.Layout.tech.Layout.min_width t.Layout.tech.Layout.min_space);
  Array.iter
    (fun p ->
      Buffer.add_string buf "FEATURE\n";
      List.iter
        (fun r ->
          Buffer.add_string buf
            (Printf.sprintf "R %d %d %d %d\n" r.Rect.x0 r.Rect.y0 r.Rect.x1
               r.Rect.y1))
        (Polygon.rects p);
      Buffer.add_string buf "END\n")
    t.Layout.features;
  Buffer.contents buf

let of_string s =
  let lines = String.split_on_char '\n' s in
  let name = ref "layout" in
  let tech = ref Layout.default_tech in
  let features = ref [] in
  let current = ref None in
  let fail lineno msg = raise (Parse_error { line = lineno; msg }) in
  let last_line = ref 0 in
  List.iteri
    (fun idx line ->
      let lineno = idx + 1 in
      last_line := lineno;
      let line = String.trim line in
      if line = "" || line.[0] = '#' then ()
      else begin
        match String.split_on_char ' ' line with
        | "NAME" :: rest -> name := String.concat " " rest
        | [ "TECH"; hp; wm; sm ] -> begin
          match (int_of_string_opt hp, int_of_string_opt wm, int_of_string_opt sm) with
          | Some half_pitch, Some min_width, Some min_space ->
            (* Non-positive rule values make every geometric predicate
               downstream meaningless; reject them at the boundary. *)
            if half_pitch <= 0 || min_width <= 0 || min_space <= 0 then
              fail lineno "TECH values must be positive";
            tech := { Layout.half_pitch; min_width; min_space }
          | _ -> fail lineno "bad TECH line"
        end
        | [ "FEATURE" ] ->
          if !current <> None then fail lineno "nested FEATURE";
          current := Some []
        | [ "R"; a; b; c; d ] -> begin
          match !current with
          | None -> fail lineno "R outside FEATURE block"
          | Some rl -> begin
            match
              ( int_of_string_opt a,
                int_of_string_opt b,
                int_of_string_opt c,
                int_of_string_opt d )
            with
            | Some x0, Some y0, Some x1, Some y1 ->
              let r =
                try Rect.make ~x0 ~y0 ~x1 ~y1
                with Invalid_argument m -> fail lineno m
              in
              current := Some (r :: rl)
          | _ -> fail lineno "bad R line"
          end
        end
        | [ "END" ] -> begin
          match !current with
          | None -> fail lineno "END without FEATURE"
          | Some [] -> fail lineno "empty FEATURE"
          | Some rl ->
            let poly =
              try Polygon.of_rects (List.rev rl)
              with Invalid_argument m -> fail lineno m
            in
            features := poly :: !features;
            current := None
        end
        | _ -> fail lineno (Printf.sprintf "unrecognized line %S" line)
      end)
    lines;
  if !current <> None then
    raise (Parse_error { line = !last_line; msg = "unterminated FEATURE block" });
  { Layout.tech = !tech; features = Array.of_list (List.rev !features); name = !name }

let save t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string t))

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      let s = really_input_string ic len in
      of_string s)
