(** Synthetic ISCAS-like benchmark layouts.

    The paper evaluates on Metal1 layers of the ISCAS-85/89 suites scaled
    to 20 nm half-pitch; that data is not redistributable, so this module
    generates layouts with the same structural knobs the decomposition
    algorithms are sensitive to (see DESIGN.md, substitutions):

    - rows of standard-cell-like contact motifs on a 40 nm grid, chained
      across cell boundaries into multi-cell conflict components;
    - routing wires above each row that couple neighboring rows, carry
      stitch candidates over inter-cell gaps, and chain along tracks;
    - injected K5 / K6 contact clusters reproducing the paper's native
      conflicts (Figs. 1 and 7);
    - injected "hard blocks" — 5 x 10 king-graph contact grids (4-edge-
      connected after division, so no cut-based splitting applies) fused
      with a K6, which is what makes exact ILP blow up on the S-series
      while the heuristics stay fast.

    All generation is deterministic in the spec's seed. *)

type spec = {
  name : string;
  seed : int;
  rows : int;
  cells_per_row : int;
  density : float;  (** 0..1, shifts motif weights toward dense clusters *)
  wire_fraction : float;  (** probability a cell seeds a routing wire *)
  sparse_gap_prob : float;
      (** probability a cell boundary gets a 2-column (non-conflicting)
          gap instead of a 1-column (chaining) gap *)
  native_five : int;  (** K5 clusters to inject (1 QPL conflict each) *)
  native_six : int;  (** K6 clusters to inject (2 QPL conflicts each) *)
  hard_blocks : int;  (** dense 4-connected blocks that stall exact ILP *)
  stitch_gadgets : int;
      (** wide-K4-under-wire gadgets, each forcing exactly one stitch in
          the QPL optimum (and none under pentuple) *)
  penta_six : int;
      (** 2x3 clusters at 55 nm pitch: conflict-free under QPL, one
          native conflict each under pentuple *)
}

val generate : spec -> Layout.t
(** Deterministic layout for the spec. *)

val synth :
  ?density:float ->
  ?wire_fraction:float ->
  ?stitch_gadgets:int ->
  seed:int ->
  features:int ->
  unit ->
  spec
(** Parametric synthetic spec sized by target feature count (100k–1M
    scale inputs for the sharded decomposer): tiled standard-cell rows
    in a near-square extent, no injected hard blocks or native
    clusters. [density] (default 0.5) shifts motif weights,
    [wire_fraction] (default 0.4) controls routing-wire (and hence
    organic stitch) richness, [stitch_gadgets] adds that many
    guaranteed one-stitch gadgets. The generated feature count lands
    within a few percent of [features]. Deterministic in the
    arguments; named ["synth-<features>-s<seed>"]. *)

val table1_circuits : string list
(** The 15 circuit names of paper Table 1, in order. *)

val table2_circuits : string list
(** The 6 densest circuits of paper Table 2, in order. *)

val spec_of_circuit : string -> spec
(** Spec for a named circuit. Raises [Not_found] for unknown names. *)

val circuit : string -> Layout.t
(** [generate (spec_of_circuit name)]. *)
