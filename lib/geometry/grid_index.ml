module Intbuf = Mpl_util.Intbuf

(* Flat uniform grid. Entries live in parallel coordinate buffers; the
   first query compiles a CSR bucket table (cell -> entry slots) and a
   per-entry stamp array. Queries then dedup candidates by bumping a
   global epoch and stamping visited slots — no per-call Hashtbl, no
   per-candidate allocation. Adding after a freeze just marks the table
   stale; the next query rebuilds it. *)

type t = {
  cell : int;
  ids : Intbuf.t; (* slot -> caller id *)
  bx0 : Intbuf.t;
  by0 : Intbuf.t;
  bx1 : Intbuf.t;
  by1 : Intbuf.t;
  cellmap : (int, int) Hashtbl.t; (* packed cell -> bucket index *)
  mutable bucket_off : int array; (* bucket -> first slot in items *)
  mutable bucket_items : int array; (* entry slots, grouped by bucket *)
  mutable stamp : int array; (* slot -> epoch of last visit *)
  mutable epoch : int;
  mutable frozen : int; (* entry count covered by the bucket table *)
}

let create ~cell =
  if cell <= 0 then invalid_arg "Grid_index.create: cell must be positive";
  {
    cell;
    ids = Intbuf.create ();
    bx0 = Intbuf.create ();
    by0 = Intbuf.create ();
    bx1 = Intbuf.create ();
    by1 = Intbuf.create ();
    cellmap = Hashtbl.create 1024;
    bucket_off = [| 0 |];
    bucket_items = [||];
    stamp = [||];
    epoch = 0;
    frozen = 0;
  }

(* Cells are packed into one int. Layout coordinates divided by the cell
   size stay far below 2^29, so the packing is injective. *)
let pack cx cy = (cx * 0x40000000) + cy

let floor_div t c = if c >= 0 then c / t.cell else (c - t.cell + 1) / t.cell

let add t id (box : Rect.t) =
  Intbuf.push t.ids id;
  Intbuf.push t.bx0 box.Rect.x0;
  Intbuf.push t.by0 box.Rect.y0;
  Intbuf.push t.bx1 box.Rect.x1;
  Intbuf.push t.by1 box.Rect.y1;
  t.frozen <- -1

let freeze t =
  let n = Intbuf.length t.ids in
  if t.frozen <> n then begin
    Hashtbl.reset t.cellmap;
    (* Pass 1: assign bucket indices and count coverage per bucket,
       streaming (bucket, slot) incidences into a scratch buffer. *)
    let counts = Intbuf.create () in
    let inc_b = Intbuf.create () in
    let inc_e = Intbuf.create () in
    for e = 0 to n - 1 do
      let cx0 = floor_div t (Intbuf.unsafe_get t.bx0 e)
      and cx1 = floor_div t (Intbuf.unsafe_get t.bx1 e)
      and cy0 = floor_div t (Intbuf.unsafe_get t.by0 e)
      and cy1 = floor_div t (Intbuf.unsafe_get t.by1 e) in
      for cx = cx0 to cx1 do
        for cy = cy0 to cy1 do
          let key = pack cx cy in
          let b =
            match Hashtbl.find_opt t.cellmap key with
            | Some b -> b
            | None ->
              let b = Intbuf.length counts in
              Hashtbl.add t.cellmap key b;
              Intbuf.push counts 0;
              b
          in
          Intbuf.set counts b (Intbuf.get counts b + 1);
          Intbuf.push inc_b b;
          Intbuf.push inc_e e
        done
      done
    done;
    (* Pass 2: prefix sums, then scatter slots into the CSR table. *)
    let nb = Intbuf.length counts in
    let off = Array.make (nb + 1) 0 in
    for b = 0 to nb - 1 do
      off.(b + 1) <- off.(b) + Intbuf.get counts b
    done;
    let items = Array.make off.(nb) 0 in
    let cursor = Array.copy off in
    for i = 0 to Intbuf.length inc_b - 1 do
      let b = Intbuf.unsafe_get inc_b i in
      items.(cursor.(b)) <- Intbuf.unsafe_get inc_e i;
      cursor.(b) <- cursor.(b) + 1
    done;
    t.bucket_off <- off;
    t.bucket_items <- items;
    t.stamp <- Array.make n 0;
    t.epoch <- 0;
    t.frozen <- n
  end

(* Visit every entry slot bucketed under a cell of the (already grown)
   box exactly once, using the epoch stamps for dedup. *)
let visit_region t ~gx0 ~gy0 ~gx1 ~gy1 f =
  freeze t;
  t.epoch <- t.epoch + 1;
  let epoch = t.epoch in
  let stamp = t.stamp in
  let cx0 = floor_div t gx0
  and cx1 = floor_div t gx1
  and cy0 = floor_div t gy0
  and cy1 = floor_div t gy1 in
  for cx = cx0 to cx1 do
    for cy = cy0 to cy1 do
      match Hashtbl.find_opt t.cellmap (pack cx cy) with
      | None -> ()
      | Some b ->
        for s = t.bucket_off.(b) to t.bucket_off.(b + 1) - 1 do
          let e = Array.unsafe_get t.bucket_items s in
          if Array.unsafe_get stamp e <> epoch then begin
            Array.unsafe_set stamp e epoch;
            f e
          end
        done
    done
  done

(* Closed-interval touch test against the grown box, on raw coords. *)
let touches t e ~gx0 ~gy0 ~gx1 ~gy1 =
  gx0 <= Intbuf.unsafe_get t.bx1 e
  && Intbuf.unsafe_get t.bx0 e <= gx1
  && gy0 <= Intbuf.unsafe_get t.by1 e
  && Intbuf.unsafe_get t.by0 e <= gy1

let query t (r : Rect.t) ~radius =
  let gx0 = r.Rect.x0 - radius
  and gy0 = r.Rect.y0 - radius
  and gx1 = r.Rect.x1 + radius
  and gy1 = r.Rect.y1 + radius in
  let out = ref [] in
  visit_region t ~gx0 ~gy0 ~gx1 ~gy1 (fun e ->
      if touches t e ~gx0 ~gy0 ~gx1 ~gy1 then
        out := Intbuf.unsafe_get t.ids e :: !out);
  !out

let iter_pairs t ~radius f =
  freeze t;
  let n = Intbuf.length t.ids in
  (* Visit each entry once; sweep the grid for candidate partners and
     report the pair only from the lower id so it fires exactly once. *)
  for e = 0 to n - 1 do
    let id = Intbuf.unsafe_get t.ids e in
    let gx0 = Intbuf.unsafe_get t.bx0 e - radius
    and gy0 = Intbuf.unsafe_get t.by0 e - radius
    and gx1 = Intbuf.unsafe_get t.bx1 e + radius
    and gy1 = Intbuf.unsafe_get t.by1 e + radius in
    visit_region t ~gx0 ~gy0 ~gx1 ~gy1 (fun e' ->
        let id' = Intbuf.unsafe_get t.ids e' in
        if id' > id && touches t e' ~gx0 ~gy0 ~gx1 ~gy1 then f id id')
  done
