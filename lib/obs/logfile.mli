(** Line-oriented (JSONL) log file with size-based rotation.

    Thread-safe: concurrent {!write}s serialize on an internal mutex
    and each line is flushed whole, so readers never see a torn line.
    When appending a line would push the file past [max_bytes], the
    current file is renamed to [path ^ ".1"] (replacing any earlier
    rotation — at most two files ever exist) and a fresh file is
    opened, so the log's disk footprint is bounded by roughly
    [2 * max_bytes]. *)

type t

val open_ : ?max_bytes:int -> string -> t
(** Open (or append to) [path]. [max_bytes] defaults to 8 MiB; values
    < 1 are clamped to 1. *)

val write : t -> string -> unit
(** Append one line (a ['\n'] is added) and flush. Rotates first if
    the line would not fit. *)

val path : t -> string

val rotations : t -> int
(** Number of rotations performed since {!open_}. *)

val close : t -> unit
