(** Span tracer with thread-local event buffers.

    A sink collects *complete spans* (name, category, begin timestamp,
    duration, arguments) from every thread that touches it. The hot
    path is race-free without locking: the first append from a thread
    registers a fresh buffer for that thread (one mutex acquisition per
    thread per sink, ever); every later append is a plain push onto the
    thread's own buffer. Buffers are keyed per systhread, not per
    domain, because the serving path runs several handler threads on
    domain 0 and pool helping can interleave two requests' spans on one
    domain. {!events} merges the buffers — call it only after all
    workers have finished with the sink (the decomposer flushes after
    the engine batch completes).

    {!null} is the disabled sink: {!span} on it runs the thunk with no
    clock reads and no event allocation, so an untraced run pays only a
    branch. Timestamps are monotonic ({!Mpl_util.Timer.now_ns}),
    relative to the sink's creation instant. *)

type arg = Int of int | Float of float | Str of string
(** Span argument values, rendered into the Chrome trace [args] object. *)

type event = {
  name : string;  (** span name, e.g. ["division.ghtree"] *)
  cat : string;  (** category, e.g. ["division"] — Chrome [cat] field *)
  ts_ns : int64;  (** begin time, ns since sink creation *)
  dur_ns : int64;  (** duration in ns *)
  tid : int;  (** thread id the span ran on *)
  args : (string * arg) list;
}

type t

val null : t
(** The disabled sink: every operation is a no-op. *)

val create : ?tags:(string * arg) list -> unit -> t
(** A fresh enabled sink; its epoch is the creation instant. [tags]
    are ambient span tags — appended to the [args] of every event the
    sink records, so a request-scoped sink stamps its request id,
    circuit, k and algorithm on every span without threading them
    through each call site. *)

val enabled : t -> bool

val tags : t -> (string * arg) list
(** The ambient tags passed at {!create} ([[]] for {!null}). *)

val span : t -> ?cat:string -> ?args:(string * arg) list -> string ->
  (unit -> 'a) -> 'a
(** [span t name f] runs [f ()] and, on an enabled sink, records a
    complete span around it (also when [f] raises). [cat] defaults to
    the prefix of [name] up to the first ['.'] (or [name] itself).
    Spans made by nested [span] calls on the same thread are properly
    nested by construction. *)

val record : t -> ?cat:string -> ?args:(string * arg) list -> name:string ->
  ts_ns:int64 -> dur_ns:int64 -> unit -> unit
(** Append an already-measured span ([ts_ns] in the sink's epoch, i.e.
    a {!Mpl_util.Timer.now_ns} reading minus {!epoch_ns}). For hot
    paths that avoid closure allocation. No-op on a disabled sink. *)

val epoch_ns : t -> int64
(** The sink's creation instant (absolute monotonic ns). *)

val events : t -> event list
(** All recorded events merged across threads, sorted by [ts_ns] (ties
    by longer duration first, so parents sort before their children).
    Only call after all threads are done recording. *)
