(** Span tracer with domain-local event buffers.

    A sink collects *complete spans* (name, category, begin timestamp,
    duration, arguments) from every domain that touches it. The hot
    path is race-free without locking: the first append from a domain
    registers a fresh buffer for that domain (one mutex acquisition per
    domain per sink, ever); every later append is a plain push onto the
    domain's own buffer. {!events} merges the buffers — call it only
    after all worker domains have been joined (the decomposer flushes
    after {!Mpl_engine.Pool.with_pool} returns).

    {!null} is the disabled sink: {!span} on it runs the thunk with no
    clock reads and no event allocation, so an untraced run pays only a
    branch. Timestamps are monotonic ({!Mpl_util.Timer.now_ns}),
    relative to the sink's creation instant. *)

type arg = Int of int | Float of float | Str of string
(** Span argument values, rendered into the Chrome trace [args] object. *)

type event = {
  name : string;  (** span name, e.g. ["division.ghtree"] *)
  cat : string;  (** category, e.g. ["division"] — Chrome [cat] field *)
  ts_ns : int64;  (** begin time, ns since sink creation *)
  dur_ns : int64;  (** duration in ns *)
  tid : int;  (** domain id the span ran on *)
  args : (string * arg) list;
}

type t

val null : t
(** The disabled sink: every operation is a no-op. *)

val create : unit -> t
(** A fresh enabled sink; its epoch is the creation instant. *)

val enabled : t -> bool

val span : t -> ?cat:string -> ?args:(string * arg) list -> string ->
  (unit -> 'a) -> 'a
(** [span t name f] runs [f ()] and, on an enabled sink, records a
    complete span around it (also when [f] raises). [cat] defaults to
    the prefix of [name] up to the first ['.'] (or [name] itself).
    Spans made by nested [span] calls on the same domain are properly
    nested by construction. *)

val record : t -> ?cat:string -> ?args:(string * arg) list -> name:string ->
  ts_ns:int64 -> dur_ns:int64 -> unit -> unit
(** Append an already-measured span ([ts_ns] in the sink's epoch, i.e.
    a {!Mpl_util.Timer.now_ns} reading minus {!epoch_ns}). For hot
    paths that avoid closure allocation. No-op on a disabled sink. *)

val epoch_ns : t -> int64
(** The sink's creation instant (absolute monotonic ns). *)

val events : t -> event list
(** All recorded events merged across domains, sorted by [ts_ns] (ties
    by longer duration first, so parents sort before their children).
    Only call after worker domains are joined. *)
