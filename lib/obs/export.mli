(** Exporters for traces and metrics.

    - Chrome [trace_event] JSON (the ["traceEvents"] object form with
      complete ["ph": "X"] events), loadable in [chrome://tracing] or
      {{:https://ui.perfetto.dev}Perfetto};
    - a flat JSON metrics summary and a human-readable text rendering;
    - a validator for emitted traces, used by the test suite and the
      [mpld trace-check] CI smoke step. *)

val chrome_json : ?process_name:string -> Sink.event list -> string
(** Chrome trace JSON: timestamps/durations in microseconds, one
    ["X"] event per span, thread ids from the originating domain, plus
    process/thread-name metadata events. *)

val write_chrome : ?process_name:string -> string -> Sink.event list -> unit
(** [write_chrome file events] writes {!chrome_json} to [file]. *)

val metrics_json : Metrics.snapshot -> Json.t
(** [{"counters": {..}, "gauges": {..}, "histograms": {name:
    {"count","sum","min","max","buckets":[[lo,hi,n],..]}, ..}}] *)

val pp_metrics : Format.formatter -> Metrics.snapshot -> unit
(** Aligned text rendering, one metric per line, histograms with
    count/sum/mean/min/max. *)

val prometheus : ?namespace:string -> Metrics.snapshot -> string
(** Prometheus text exposition (format 0.0.4) of a snapshot. Metric
    names are prefixed with [namespace] (default ["mpl"]) and
    sanitized (characters outside [[a-zA-Z0-9_:]] become ['_']).
    Counters and gauges emit a [# TYPE] line plus one sample;
    histograms emit cumulative [_bucket{le="..."}] samples over the
    non-empty log2 buckets, a closing [le="+Inf"] bucket, [_sum] and
    [_count]. *)

val validate_prometheus : string -> (int, string) result
(** Check a text exposition body: every sample line parses (metric
    name charset, label-set syntax, float-parseable value), every
    sample belongs to a preceding [# TYPE] family (histogram/summary
    samples may use the [_bucket]/[_sum]/[_count] suffixes), no family
    is declared twice, and each histogram family has non-decreasing
    [le]s with cumulative counts, a final [le="+Inf"] bucket, and a
    [_count] equal to it. Returns the number of samples on success. *)

val phase_totals : Sink.event list -> (string * (int * float)) list
(** Aggregate [(count, total seconds)] per span name, sorted by total
    descending. Nested spans of the same name all count, so this is a
    self-time-inclusive rollup per name. *)

val pp_phases : Format.formatter -> Sink.event list -> unit
(** Text rendering of {!phase_totals}. *)

val validate_chrome :
  ?required:string list -> string -> (int, string) result
(** [validate_chrome ~required s] parses [s] as JSON and checks it is a
    well-formed Chrome trace ({"traceEvents": [...]} with name/ph/ts on
    every event and ts+dur on every ["X"] event), and that every name
    in [required] occurs as a span name. Returns the number of span
    events on success. *)
