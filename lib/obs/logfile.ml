(* Line-oriented (JSONL) log writer with size-based rotation. The
   server's access log goes through one of these; writes come from
   concurrent handler threads, so the channel, size accounting and
   rotation are all guarded by one mutex. Rotation is rename-based:
   when the current file would exceed [max_bytes] the channel is
   closed, the file renamed to [path ^ ".1"] (clobbering any previous
   rotation), and a fresh file opened — a crash can lose at most the
   line being written. *)

type t = {
  path : string;
  max_bytes : int;
  lock : Mutex.t;
  mutable oc : out_channel;
  mutable size : int;
  mutable rotations : int;
}

let default_max_bytes = 8 * 1024 * 1024

let open_out_sized path =
  let oc =
    open_out_gen [ Open_wronly; Open_creat; Open_append ] 0o644 path
  in
  (oc, out_channel_length oc)

let open_ ?(max_bytes = default_max_bytes) path =
  let oc, size = open_out_sized path in
  {
    path;
    max_bytes = (if max_bytes < 1 then 1 else max_bytes);
    lock = Mutex.create ();
    oc;
    size;
    rotations = 0;
  }

let path t = t.path

let rotations t =
  Mutex.lock t.lock;
  let r = t.rotations in
  Mutex.unlock t.lock;
  r

let rotate_locked t =
  close_out_noerr t.oc;
  (try Sys.rename t.path (t.path ^ ".1") with Sys_error _ -> ());
  let oc, size = open_out_sized t.path in
  t.oc <- oc;
  t.size <- size;
  t.rotations <- t.rotations + 1

let write t line =
  let n = String.length line + 1 in
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      if t.size > 0 && t.size + n > t.max_bytes then rotate_locked t;
      output_string t.oc line;
      output_char t.oc '\n';
      flush t.oc;
      t.size <- t.size + n)

let close t =
  Mutex.lock t.lock;
  close_out_noerr t.oc;
  Mutex.unlock t.lock
