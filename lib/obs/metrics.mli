(** Registry of named counters, gauges, and log-scaled histograms.

    Handles are looked up (or created) by name once — typically at the
    start of a run or the construction of a pool/cache — and then
    updated lock-free: counters and histogram buckets are [Atomic]s,
    gauges and histogram sums are CAS loops, so concurrent updates from
    pool workers never lose increments. Registration itself takes the
    registry mutex, which is why instrumented code should hoist handle
    lookups out of hot loops.

    {!null} is the disabled registry: handle lookups on it return
    no-op handles without touching any table, and every update on a
    no-op handle is a single branch — the disabled path allocates
    nothing and contends on nothing. *)

type t

val null : t
(** The disabled registry. *)

val create : unit -> t

val enabled : t -> bool

(** {1 Counters} *)

type counter

val counter : t -> string -> counter
(** Find-or-create. On {!null} returns a no-op handle. *)

val incr : counter -> unit
val add : counter -> int -> unit

(** {1 Gauges} *)

type gauge

val gauge : t -> string -> gauge
val set : gauge -> float -> unit
val max_gauge : gauge -> float -> unit
(** [max_gauge g v] raises the gauge to [v] if [v] is larger. *)

(** {1 Histograms}

    Buckets are log-scaled in powers of two: bucket 0 holds values
    < 1, bucket [i >= 1] holds values in [[2^(i-1), 2^i)]. That spans
    piece sizes, solver node counts, and nanosecond latencies alike
    with 64 buckets. *)

type histogram

val histogram : t -> string -> histogram
val observe : histogram -> float -> unit

(** {1 Snapshots} *)

type hist_snapshot = {
  count : int;
  sum : float;
  min_v : float;  (** +inf when empty *)
  max_v : float;  (** -inf when empty *)
  buckets : (float * float * int) list;
      (** non-empty buckets as [(lo, hi, count)], ascending *)
}

type snapshot = {
  counters : (string * int) list;  (** sorted by name *)
  gauges : (string * float) list;
  histograms : (string * hist_snapshot) list;
}

val snapshot : t -> snapshot
(** A consistent-enough point-in-time view (each cell is read
    atomically; the set of cells is read under the registry mutex).
    The {!null} registry snapshots as empty. *)

val find_counter : snapshot -> string -> int option
(** Value of a counter in a snapshot, [None] when never registered. *)

val find_gauge : snapshot -> string -> float option
(** Value of a gauge in a snapshot, [None] when never registered. *)

val find_histogram : snapshot -> string -> hist_snapshot option
(** A histogram's snapshot by name, [None] when never registered. *)

(** {1 Percentile estimation}

    Estimated from the log2 buckets by linear interpolation inside the
    bucket containing the requested rank, clamped to the histogram's
    exact [min_v, max_v]. With power-of-two buckets the relative error
    is bounded by the bucket width (≤ 2x), in practice much tighter
    for smooth distributions; constant distributions are exact thanks
    to the min/max clamp. *)

val percentile : hist_snapshot -> float -> float
(** [percentile h q] for [q] in [[0, 1]]. Returns [0.] on an empty
    histogram; [q <= 0] gives [min_v], [q >= 1] gives [max_v]. *)

val percentiles : hist_snapshot -> float list -> float list
(** [percentiles h qs = List.map (percentile h) qs]. *)
