(** The observability context threaded through the decomposition
    pipeline: one trace {!Sink} plus one {!Metrics} registry.

    Every instrumented function takes an optional [?obs] defaulting to
    {!null}, whose sink and registry are both disabled — the
    uninstrumented path costs a branch per probe and allocates nothing,
    preserving bit-identical outputs. *)

type t = { sink : Sink.t; metrics : Metrics.t }

val null : t
(** Disabled sink and disabled registry. *)

val make : ?sink:Sink.t -> ?metrics:Metrics.t -> unit -> t
(** Missing components default to their disabled versions. *)

val tracing : t -> bool
(** Is the sink enabled? *)

val span : t -> ?cat:string -> ?args:(string * Sink.arg) list -> string ->
  (unit -> 'a) -> 'a
(** {!Sink.span} on the context's sink. *)
