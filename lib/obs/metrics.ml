(* Handles are [option]s over the live cells: [None] is the no-op
   handle handed out by the disabled registry, so updating it is one
   pattern-match branch with no allocation and no shared-memory
   traffic. *)

type counter = int Atomic.t option

type gauge = float Atomic.t option

type hist = {
  h_count : int Atomic.t;
  h_sum : float Atomic.t;
  h_min : float Atomic.t;
  h_max : float Atomic.t;
  h_buckets : int Atomic.t array;  (* log2 buckets, see mli *)
}

type histogram = hist option

type t = {
  enabled : bool;
  lock : Mutex.t;
  counters : (string, int Atomic.t) Hashtbl.t;
  gauges : (string, float Atomic.t) Hashtbl.t;
  histograms : (string, hist) Hashtbl.t;
}

let make ~enabled =
  {
    enabled;
    lock = Mutex.create ();
    counters = Hashtbl.create 64;
    gauges = Hashtbl.create 16;
    histograms = Hashtbl.create 16;
  }

let null = make ~enabled:false

let create () = make ~enabled:true

let enabled t = t.enabled

let find_or_add t table name fresh =
  Mutex.lock t.lock;
  let cell =
    match Hashtbl.find_opt table name with
    | Some c -> c
    | None ->
      let c = fresh () in
      Hashtbl.replace table name c;
      c
  in
  Mutex.unlock t.lock;
  cell

let counter t name =
  if not t.enabled then None
  else Some (find_or_add t t.counters name (fun () -> Atomic.make 0))

let incr = function None -> () | Some c -> Atomic.incr c

let add c n = match c with None -> () | Some c -> ignore (Atomic.fetch_and_add c n)

let gauge t name =
  if not t.enabled then None
  else Some (find_or_add t t.gauges name (fun () -> Atomic.make 0.))

let set g v = match g with None -> () | Some g -> Atomic.set g v

let rec cas_update cell f =
  let cur = Atomic.get cell in
  let next = f cur in
  if next <> cur && not (Atomic.compare_and_set cell cur next) then
    cas_update cell f

let max_gauge g v =
  match g with None -> () | Some g -> cas_update g (fun c -> Float.max c v)

let nbuckets = 64

let fresh_hist () =
  {
    h_count = Atomic.make 0;
    h_sum = Atomic.make 0.;
    h_min = Atomic.make Float.infinity;
    h_max = Atomic.make Float.neg_infinity;
    h_buckets = Array.init nbuckets (fun _ -> Atomic.make 0);
  }

let histogram t name =
  if not t.enabled then None
  else Some (find_or_add t t.histograms name fresh_hist)

(* Bucket 0: v < 1; bucket i >= 1: 2^(i-1) <= v < 2^i. *)
let bucket_index v =
  if not (v >= 1.) then 0
  else begin
    let i = 1 + int_of_float (Float.log2 v) in
    if i < 1 then 1 else if i >= nbuckets then nbuckets - 1 else i
  end

let observe h v =
  match h with
  | None -> ()
  | Some h ->
    Atomic.incr h.h_count;
    Atomic.incr h.h_buckets.(bucket_index v);
    cas_update h.h_sum (fun c -> c +. v);
    cas_update h.h_min (fun c -> Float.min c v);
    cas_update h.h_max (fun c -> Float.max c v)

(* ------------------------------------------------------------------ *)
(* Snapshots *)

type hist_snapshot = {
  count : int;
  sum : float;
  min_v : float;
  max_v : float;
  buckets : (float * float * int) list;
}

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * hist_snapshot) list;
}

let bucket_bounds i =
  if i = 0 then (0., 1.)
  else (Float.pow 2. (float_of_int (i - 1)), Float.pow 2. (float_of_int i))

let snap_hist h =
  let buckets = ref [] in
  for i = nbuckets - 1 downto 0 do
    let c = Atomic.get h.h_buckets.(i) in
    if c > 0 then begin
      let lo, hi = bucket_bounds i in
      buckets := (lo, hi, c) :: !buckets
    end
  done;
  {
    count = Atomic.get h.h_count;
    sum = Atomic.get h.h_sum;
    min_v = Atomic.get h.h_min;
    max_v = Atomic.get h.h_max;
    buckets = !buckets;
  }

let sorted_bindings table f =
  Hashtbl.fold (fun k v acc -> (k, f v) :: acc) table []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let snapshot t =
  Mutex.lock t.lock;
  let s =
    {
      counters = sorted_bindings t.counters Atomic.get;
      gauges = sorted_bindings t.gauges Atomic.get;
      histograms = sorted_bindings t.histograms snap_hist;
    }
  in
  Mutex.unlock t.lock;
  s

let find_counter s name = List.assoc_opt name s.counters
let find_gauge s name = List.assoc_opt name s.gauges
let find_histogram s name = List.assoc_opt name s.histograms

(* Percentile estimate from the log2 buckets: walk the cumulative
   counts to the bucket containing rank q*count, then interpolate
   linearly inside it. The result is clamped to the exact [min_v,
   max_v] the histogram tracked, which makes constant distributions
   exact and keeps tail estimates from overshooting the largest
   observed value by up to a full power of two. *)
let percentile h q =
  if h.count = 0 then 0.
  else if q <= 0. then h.min_v
  else if q >= 1. then h.max_v
  else begin
    let rank = q *. float_of_int h.count in
    let rec walk seen = function
      | [] -> h.max_v
      | (lo, hi, c) :: rest ->
        let seen' = seen +. float_of_int c in
        if seen' >= rank then begin
          let frac = (rank -. seen) /. float_of_int c in
          lo +. (frac *. (hi -. lo))
        end
        else walk seen' rest
    in
    let v = walk 0. h.buckets in
    Float.min h.max_v (Float.max h.min_v v)
  end

let percentiles h qs = List.map (percentile h) qs
