(** Minimal JSON tree, printer, and recursive-descent parser.

    Exists so the exporters ({!Export}) can emit valid JSON and — more
    importantly — so emitted artifacts (Chrome traces, metrics
    summaries, bench results) can be re-parsed and validated by the
    test suite and the [mpld trace-check] smoke step without any
    external JSON dependency. Not a general-purpose library: numbers
    are floats or OCaml ints, strings are byte sequences with the
    standard escapes ([\uXXXX] is decoded to UTF-8). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Parse a complete JSON document; the error string carries a byte
    offset. Trailing whitespace is allowed, trailing garbage is not. *)

val to_string : t -> string
(** Compact (single-line) serialization. Floats are printed with
    enough digits to round-trip; NaN/infinities become [null]. *)

val escape : string -> string
(** The quoted, escaped JSON form of a string (including the quotes). *)

val member : string -> t -> t option
(** Field lookup in an [Obj]; [None] on other constructors. *)

val to_float : t -> float option
(** Numeric value of an [Int] or [Float]. *)
