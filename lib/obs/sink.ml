type arg = Int of int | Float of float | Str of string

type event = {
  name : string;
  cat : string;
  ts_ns : int64;
  dur_ns : int64;
  tid : int;
  args : (string * arg) list;
}

(* Per-thread buffer: only its owning thread ever appends, so the
   mutable list needs no synchronization. Buffers are keyed by
   [Thread.id] rather than [Domain.self] because the server runs
   several handler systhreads on domain 0, and pool "helping" lets one
   request's thread execute another request's pieces — two threads on
   the same domain may therefore hit the same sink concurrently (well,
   interleaved under the domain lock, but with context switches between
   a read and a write). The domain-local slot holds an association
   list from thread id to buffer; it is only extended under [lock]
   (once per thread per sink, ever) and read without it — the ref read
   is atomic and the list cells are immutable. *)
type buffer = { tid : int; mutable items : event list }

type t = {
  enabled : bool;
  epoch : int64;
  tags : (string * arg) list;
  key : (int * buffer) list ref Domain.DLS.key;
  lock : Mutex.t;
  mutable buffers : buffer list;
}

let make ~enabled ~tags =
  {
    enabled;
    epoch = Mpl_util.Timer.now_ns ();
    tags;
    key = Domain.DLS.new_key (fun () -> ref []);
    lock = Mutex.create ();
    buffers = [];
  }

let null = make ~enabled:false ~tags:[]

let create ?(tags = []) () = make ~enabled:true ~tags

let enabled t = t.enabled

let epoch_ns t = t.epoch

let tags t = t.tags

let buffer_of t =
  let tid = Thread.id (Thread.self ()) in
  let slot = Domain.DLS.get t.key in
  match List.assq_opt tid !slot with
  | Some b -> b
  | None ->
    (* The slot is shared by every systhread on this domain, so the
       read-modify-write below must not interleave with another
       thread's — take the sink lock (which also guards [buffers]). *)
    Mutex.lock t.lock;
    let b =
      match List.assq_opt tid !slot with
      | Some b -> b
      | None ->
        let b = { tid; items = [] } in
        t.buffers <- b :: t.buffers;
        slot := (tid, b) :: !slot;
        b
    in
    Mutex.unlock t.lock;
    b

let default_cat name =
  match String.index_opt name '.' with
  | Some i -> String.sub name 0 i
  | None -> name

let record t ?cat ?(args = []) ~name ~ts_ns ~dur_ns () =
  if t.enabled then begin
    let b = buffer_of t in
    b.items <-
      {
        name;
        cat = (match cat with Some c -> c | None -> default_cat name);
        ts_ns;
        dur_ns;
        tid = b.tid;
        args = (if t.tags == [] then args else args @ t.tags);
      }
      :: b.items
  end

let span t ?cat ?args name f =
  if not t.enabled then f ()
  else begin
    let t0 = Mpl_util.Timer.now_ns () in
    let finish () =
      let t1 = Mpl_util.Timer.now_ns () in
      record t ?cat ?args ~name ~ts_ns:(Int64.sub t0 t.epoch)
        ~dur_ns:(Int64.sub t1 t0) ()
    in
    match f () with
    | x ->
      finish ();
      x
    | exception e ->
      finish ();
      raise e
  end

let events t =
  Mutex.lock t.lock;
  let buffers = t.buffers in
  Mutex.unlock t.lock;
  let all = List.concat_map (fun b -> b.items) buffers in
  (* Ties sort longer-duration first so an enclosing span precedes the
     zero-width children it may have started at the same tick. *)
  List.sort
    (fun a b ->
      let c = Int64.compare a.ts_ns b.ts_ns in
      if c <> 0 then c else Int64.compare b.dur_ns a.dur_ns)
    all
