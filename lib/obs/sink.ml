type arg = Int of int | Float of float | Str of string

type event = {
  name : string;
  cat : string;
  ts_ns : int64;
  dur_ns : int64;
  tid : int;
  args : (string * arg) list;
}

(* Per-domain buffer: only its owning domain ever appends, so the
   mutable list needs no synchronization. The buffer list itself is
   only extended under [lock] (once per domain), and is read by
   [events] after the workers are joined. *)
type buffer = { tid : int; mutable items : event list }

type t = {
  enabled : bool;
  epoch : int64;
  key : buffer option ref Domain.DLS.key;
  lock : Mutex.t;
  mutable buffers : buffer list;
}

let make ~enabled =
  {
    enabled;
    epoch = Mpl_util.Timer.now_ns ();
    key = Domain.DLS.new_key (fun () -> ref None);
    lock = Mutex.create ();
    buffers = [];
  }

let null = make ~enabled:false

let create () = make ~enabled:true

let enabled t = t.enabled

let epoch_ns t = t.epoch

let buffer_of t =
  let slot = Domain.DLS.get t.key in
  match !slot with
  | Some b -> b
  | None ->
    let b = { tid = (Domain.self () :> int); items = [] } in
    Mutex.lock t.lock;
    t.buffers <- b :: t.buffers;
    Mutex.unlock t.lock;
    slot := Some b;
    b

let push t ev =
  let b = buffer_of t in
  b.items <- ev :: b.items

let default_cat name =
  match String.index_opt name '.' with
  | Some i -> String.sub name 0 i
  | None -> name

let record t ?cat ?(args = []) ~name ~ts_ns ~dur_ns () =
  if t.enabled then
    push t
      {
        name;
        cat = (match cat with Some c -> c | None -> default_cat name);
        ts_ns;
        dur_ns;
        tid = (Domain.self () :> int);
        args;
      }

let span t ?cat ?args name f =
  if not t.enabled then f ()
  else begin
    let t0 = Mpl_util.Timer.now_ns () in
    let finish () =
      let t1 = Mpl_util.Timer.now_ns () in
      record t ?cat ?args ~name ~ts_ns:(Int64.sub t0 t.epoch)
        ~dur_ns:(Int64.sub t1 t0) ()
    in
    match f () with
    | x ->
      finish ();
      x
    | exception e ->
      finish ();
      raise e
  end

let events t =
  Mutex.lock t.lock;
  let buffers = t.buffers in
  Mutex.unlock t.lock;
  let all = List.concat_map (fun b -> b.items) buffers in
  (* Ties sort longer-duration first so an enclosing span precedes the
     zero-width children it may have started at the same tick. *)
  List.sort
    (fun a b ->
      let c = Int64.compare a.ts_ns b.ts_ns in
      if c <> 0 then c else Int64.compare b.dur_ns a.dur_ns)
    all
