let us_of_ns ns = Int64.to_float ns /. 1000.

let json_of_arg = function
  | Sink.Int i -> Json.Int i
  | Sink.Float f -> Json.Float f
  | Sink.Str s -> Json.Str s

(* Streamed through a Buffer rather than a Json.t tree: a traced
   S-series run emits tens of thousands of spans and the tree would
   double peak memory for no benefit. *)
let chrome_json ?(process_name = "mpl") events =
  let b = Buffer.create (4096 + (160 * List.length events)) in
  Buffer.add_string b "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  Buffer.add_string b
    (Printf.sprintf
       "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"ts\":0,\"args\":{\"name\":%s}}"
       (Json.escape process_name));
  let tids = Hashtbl.create 8 in
  List.iter
    (fun (e : Sink.event) ->
      if not (Hashtbl.mem tids e.Sink.tid) then begin
        Hashtbl.replace tids e.Sink.tid ();
        Buffer.add_string b
          (Printf.sprintf
             ",{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"ts\":0,\"args\":{\"name\":\"thread-%d\"}}"
             e.Sink.tid e.Sink.tid)
      end)
    events;
  List.iter
    (fun (e : Sink.event) ->
      Buffer.add_string b
        (Printf.sprintf
           ",{\"name\":%s,\"cat\":%s,\"ph\":\"X\",\"pid\":1,\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f"
           (Json.escape e.Sink.name) (Json.escape e.Sink.cat) e.Sink.tid
           (us_of_ns e.Sink.ts_ns) (us_of_ns e.Sink.dur_ns));
      (match e.Sink.args with
      | [] -> ()
      | args ->
        Buffer.add_string b ",\"args\":";
        Buffer.add_string b
          (Json.to_string (Json.Obj (List.map (fun (k, v) -> (k, json_of_arg v)) args))));
      Buffer.add_char b '}')
    events;
  Buffer.add_string b "]}";
  Buffer.contents b

let write_chrome ?process_name file events =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (chrome_json ?process_name events))

(* ------------------------------------------------------------------ *)
(* Metrics *)

let metrics_json (s : Metrics.snapshot) =
  let hist (h : Metrics.hist_snapshot) =
    Json.Obj
      [
        ("count", Json.Int h.Metrics.count);
        ("sum", Json.Float h.Metrics.sum);
        ( "min",
          if h.Metrics.count = 0 then Json.Null else Json.Float h.Metrics.min_v );
        ( "max",
          if h.Metrics.count = 0 then Json.Null else Json.Float h.Metrics.max_v );
        ( "buckets",
          Json.List
            (List.map
               (fun (lo, hi, n) ->
                 Json.List [ Json.Float lo; Json.Float hi; Json.Int n ])
               h.Metrics.buckets) );
      ]
  in
  Json.Obj
    [
      ( "counters",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) s.Metrics.counters) );
      ( "gauges",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) s.Metrics.gauges) );
      ( "histograms",
        Json.Obj (List.map (fun (k, h) -> (k, hist h)) s.Metrics.histograms) );
    ]

let pp_metrics ppf (s : Metrics.snapshot) =
  List.iter
    (fun (k, v) -> Format.fprintf ppf "%-32s %d@." k v)
    s.Metrics.counters;
  List.iter
    (fun (k, v) -> Format.fprintf ppf "%-32s %g@." k v)
    s.Metrics.gauges;
  List.iter
    (fun (k, (h : Metrics.hist_snapshot)) ->
      if h.Metrics.count = 0 then Format.fprintf ppf "%-32s (empty)@." k
      else
        Format.fprintf ppf "%-32s n=%d sum=%g mean=%g min=%g max=%g@." k
          h.Metrics.count h.Metrics.sum
          (h.Metrics.sum /. float_of_int h.Metrics.count)
          h.Metrics.min_v h.Metrics.max_v)
    s.Metrics.histograms

(* ------------------------------------------------------------------ *)
(* Prometheus text exposition (format 0.0.4) *)

let prom_sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
      | _ -> '_')
    name

(* Integral values render without an exponent or trailing zeros so
   counters and bucket counts read naturally; everything else goes
   through %g (parseable back by the validator). *)
let prom_float v =
  if v = Float.infinity then "+Inf"
  else if v = Float.neg_infinity then "-Inf"
  else if Float.is_nan v then "NaN"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%g" v

let prometheus ?(namespace = "mpl") (s : Metrics.snapshot) =
  let b = Buffer.create 4096 in
  let full name = namespace ^ "_" ^ prom_sanitize name in
  List.iter
    (fun (k, v) ->
      let n = full k in
      Buffer.add_string b (Printf.sprintf "# TYPE %s counter\n" n);
      Buffer.add_string b (Printf.sprintf "%s %d\n" n v))
    s.Metrics.counters;
  List.iter
    (fun (k, v) ->
      let n = full k in
      Buffer.add_string b (Printf.sprintf "# TYPE %s gauge\n" n);
      Buffer.add_string b (Printf.sprintf "%s %s\n" n (prom_float v)))
    s.Metrics.gauges;
  List.iter
    (fun (k, (h : Metrics.hist_snapshot)) ->
      let n = full k in
      Buffer.add_string b (Printf.sprintf "# TYPE %s histogram\n" n);
      let cum = ref 0 in
      List.iter
        (fun (_, hi, c) ->
          cum := !cum + c;
          Buffer.add_string b
            (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" n (prom_float hi) !cum))
        h.Metrics.buckets;
      Buffer.add_string b
        (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" n h.Metrics.count);
      Buffer.add_string b
        (Printf.sprintf "%s_sum %s\n" n (prom_float h.Metrics.sum));
      Buffer.add_string b (Printf.sprintf "%s_count %d\n" n h.Metrics.count))
    s.Metrics.histograms;
  Buffer.contents b

(* --- validator ---------------------------------------------------- *)

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'

let is_name_char c = is_name_start c || (c >= '0' && c <= '9')

let valid_metric_name s =
  String.length s > 0
  && is_name_start s.[0]
  && String.for_all is_name_char s

let valid_label_name s =
  String.length s > 0
  && (let c = s.[0] in
      (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_')
  && String.for_all (fun c -> is_name_char c && c <> ':') s

let parse_prom_value s =
  match String.lowercase_ascii s with
  | "+inf" | "inf" -> Some Float.infinity
  | "-inf" -> Some Float.neg_infinity
  | "nan" -> Some Float.nan
  | _ -> float_of_string_opt s

(* Parse a label set starting at index [i] (pointing at the opening
   brace). Returns [(labels, next_index)] or an error. Handles the
   backslash, quote and newline escapes of the exposition format. *)
let parse_labels line i =
  let n = String.length line in
  let labels = ref [] in
  let i = ref (i + 1) in
  let err msg = Error msg in
  let rec loop () =
    if !i >= n then err "unterminated label set"
    else if line.[!i] = '}' then begin
      incr i;
      Ok (List.rev !labels, !i)
    end
    else begin
      let start = !i in
      while !i < n && line.[!i] <> '=' && line.[!i] <> '}' do incr i done;
      if !i >= n || line.[!i] <> '=' then err "label without '='"
      else begin
        let lname = String.sub line start (!i - start) in
        if not (valid_label_name lname) then
          err (Printf.sprintf "bad label name %S" lname)
        else begin
          incr i;
          if !i >= n || line.[!i] <> '"' then err "label value not quoted"
          else begin
            incr i;
            let buf = Buffer.create 16 in
            let rec scan () =
              if !i >= n then err "unterminated label value"
              else
                match line.[!i] with
                | '"' ->
                  incr i;
                  labels := (lname, Buffer.contents buf) :: !labels;
                  if !i < n && line.[!i] = ',' then begin
                    incr i;
                    loop ()
                  end
                  else loop ()
                | '\\' ->
                  if !i + 1 >= n then err "dangling escape"
                  else begin
                    (match line.[!i + 1] with
                    | 'n' -> Buffer.add_char buf '\n'
                    | c -> Buffer.add_char buf c);
                    i := !i + 2;
                    scan ()
                  end
                | c ->
                  Buffer.add_char buf c;
                  incr i;
                  scan ()
            in
            scan ()
          end
        end
      end
    end
  in
  loop ()

type prom_sample = {
  ps_name : string;
  ps_labels : (string * string) list;
  ps_value : float;
}

let validate_prometheus text =
  let lines = String.split_on_char '\n' text in
  let families : (string, string) Hashtbl.t = Hashtbl.create 32 in
  let samples = ref [] in
  let err lineno msg = Error (Printf.sprintf "line %d: %s" lineno msg) in
  let parse_sample lineno line =
    (* name[{labels}] value [timestamp] *)
    let n = String.length line in
    let i = ref 0 in
    while !i < n && is_name_char line.[!i] do incr i done;
    let name = String.sub line 0 !i in
    if not (valid_metric_name name) then
      err lineno (Printf.sprintf "bad metric name in %S" line)
    else begin
      let labels_res =
        if !i < n && line.[!i] = '{' then parse_labels line !i
        else Ok ([], !i)
      in
      match labels_res with
      | Error m -> err lineno m
      | Ok (labels, j) ->
        let rest = String.trim (String.sub line j (n - j)) in
        let value_str =
          match String.index_opt rest ' ' with
          | Some k -> String.sub rest 0 k  (* drop optional timestamp *)
          | None -> rest
        in
        (match parse_prom_value value_str with
        | None -> err lineno (Printf.sprintf "bad sample value %S" value_str)
        | Some v ->
          samples := { ps_name = name; ps_labels = labels; ps_value = v }
                     :: !samples;
          Ok ())
    end
  in
  let parse_line lineno line =
    if String.length line = 0 then Ok ()
    else if line.[0] = '#' then begin
      match String.split_on_char ' ' line with
      | "#" :: "TYPE" :: name :: ty :: [] ->
        if not (valid_metric_name name) then
          err lineno (Printf.sprintf "bad family name %S" name)
        else if
          not (List.mem ty [ "counter"; "gauge"; "histogram"; "summary";
                             "untyped" ])
        then err lineno (Printf.sprintf "bad family type %S" ty)
        else if Hashtbl.mem families name then
          err lineno (Printf.sprintf "duplicate TYPE for %S" name)
        else begin
          Hashtbl.replace families name ty;
          Ok ()
        end
      | "#" :: "TYPE" :: _ -> err lineno "malformed TYPE line"
      | _ -> Ok () (* HELP lines and plain comments *)
    end
    else parse_sample lineno line
  in
  let rec scan lineno = function
    | [] -> Ok ()
    | line :: rest -> (
      match parse_line lineno line with
      | Ok () -> scan (lineno + 1) rest
      | Error _ as e -> e)
  in
  match scan 1 lines with
  | Error _ as e -> e
  | Ok () ->
    let samples = List.rev !samples in
    let family_of name =
      if Hashtbl.mem families name then Some name
      else
        let strip suffix =
          let ls = String.length suffix and ln = String.length name in
          if ln > ls && String.sub name (ln - ls) ls = suffix then begin
            let base = String.sub name 0 (ln - ls) in
            match Hashtbl.find_opt families base with
            | Some "histogram" | Some "summary" -> Some base
            | _ -> None
          end
          else None
        in
        (match strip "_bucket" with
        | Some b -> Some b
        | None -> (
          match strip "_sum" with
          | Some b -> Some b
          | None -> strip "_count"))
    in
    let orphan =
      List.find_opt (fun s -> family_of s.ps_name = None) samples
    in
    (match orphan with
    | Some s ->
      Error (Printf.sprintf "sample %S has no TYPE declaration" s.ps_name)
    | None ->
      (* Histogram families: buckets in le order, cumulative counts
         non-decreasing, closed by le="+Inf" whose value equals
         _count. *)
      let check_hist name =
        let buckets =
          List.filter (fun s -> s.ps_name = name ^ "_bucket") samples
        in
        let count =
          List.find_opt (fun s -> s.ps_name = name ^ "_count") samples
        in
        let rec walk last_le last_c = function
          | [] -> Ok last_c
          | s :: rest -> (
            match List.assoc_opt "le" s.ps_labels with
            | None -> Error (Printf.sprintf "%s_bucket without le label" name)
            | Some le_str -> (
              match parse_prom_value le_str with
              | None -> Error (Printf.sprintf "%s: bad le %S" name le_str)
              | Some le ->
                if le < last_le then
                  Error (Printf.sprintf "%s: le not non-decreasing" name)
                else if s.ps_value < last_c then
                  Error
                    (Printf.sprintf "%s: bucket counts not cumulative" name)
                else if rest = [] && le <> Float.infinity then
                  Error (Printf.sprintf "%s: last bucket is not +Inf" name)
                else walk le s.ps_value rest))
        in
        match buckets with
        | [] -> Error (Printf.sprintf "%s: histogram without buckets" name)
        | _ -> (
          match walk Float.neg_infinity Float.neg_infinity buckets with
          | Error _ as e -> e
          | Ok inf_count -> (
            match count with
            | None -> Error (Printf.sprintf "%s: missing _count" name)
            | Some c when c.ps_value <> inf_count ->
              Error (Printf.sprintf "%s: _count disagrees with +Inf bucket" name)
            | Some _ -> Ok ()))
      in
      let hist_names =
        Hashtbl.fold
          (fun name ty acc -> if ty = "histogram" then name :: acc else acc)
          families []
      in
      let rec check_all = function
        | [] -> Ok (List.length samples)
        | name :: rest -> (
          match check_hist name with
          | Ok () -> check_all rest
          | Error _ as e -> e)
      in
      check_all hist_names)

(* ------------------------------------------------------------------ *)
(* Phase rollup *)

let phase_totals events =
  let table : (string, int ref * float ref) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun (e : Sink.event) ->
      let count, total =
        match Hashtbl.find_opt table e.Sink.name with
        | Some cell -> cell
        | None ->
          let cell = (ref 0, ref 0.) in
          Hashtbl.replace table e.Sink.name cell;
          cell
      in
      incr count;
      total := !total +. (Int64.to_float e.Sink.dur_ns *. 1e-9))
    events;
  Hashtbl.fold (fun name (c, t) acc -> (name, (!c, !t)) :: acc) table []
  |> List.sort (fun (_, (_, a)) (_, (_, b)) -> compare b a)

let pp_phases ppf events =
  List.iter
    (fun (name, (count, total_s)) ->
      Format.fprintf ppf "%-28s %8.3fs  x%d@." name total_s count)
    (phase_totals events)

(* ------------------------------------------------------------------ *)
(* Validation *)

let validate_chrome ?(required = []) s =
  match Json.parse s with
  | Error e -> Error e
  | Ok root -> (
    match Json.member "traceEvents" root with
    | None -> Error "missing traceEvents field"
    | Some (Json.List events) -> (
      let spans = ref 0 in
      let seen = Hashtbl.create 32 in
      let check_event ev =
        let field k = Json.member k ev in
        match (field "name", field "ph") with
        | Some (Json.Str name), Some (Json.Str ph) -> (
          match field "ts" with
          | Some ts when Json.to_float ts <> None ->
            if String.equal ph "X" then begin
              match field "dur" with
              | Some d when Json.to_float d <> None ->
                incr spans;
                Hashtbl.replace seen name ();
                Ok ()
              | _ -> Error (Printf.sprintf "span %S lacks a numeric dur" name)
            end
            else Ok ()
          | _ -> Error (Printf.sprintf "event %S lacks a numeric ts" name))
        | _ -> Error "event lacks name/ph string fields"
      in
      let rec all = function
        | [] -> Ok ()
        | ev :: rest -> (
          match check_event ev with Ok () -> all rest | Error _ as e -> e)
      in
      match all events with
      | Error _ as e -> e
      | Ok () -> (
        match
          List.find_opt (fun name -> not (Hashtbl.mem seen name)) required
        with
        | Some missing -> Error (Printf.sprintf "missing span %S" missing)
        | None -> Ok !spans))
    | Some _ -> Error "traceEvents is not a list")
