let us_of_ns ns = Int64.to_float ns /. 1000.

let json_of_arg = function
  | Sink.Int i -> Json.Int i
  | Sink.Float f -> Json.Float f
  | Sink.Str s -> Json.Str s

(* Streamed through a Buffer rather than a Json.t tree: a traced
   S-series run emits tens of thousands of spans and the tree would
   double peak memory for no benefit. *)
let chrome_json ?(process_name = "mpl") events =
  let b = Buffer.create (4096 + (160 * List.length events)) in
  Buffer.add_string b "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  Buffer.add_string b
    (Printf.sprintf
       "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"ts\":0,\"args\":{\"name\":%s}}"
       (Json.escape process_name));
  let tids = Hashtbl.create 8 in
  List.iter
    (fun (e : Sink.event) ->
      if not (Hashtbl.mem tids e.Sink.tid) then begin
        Hashtbl.replace tids e.Sink.tid ();
        Buffer.add_string b
          (Printf.sprintf
             ",{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"ts\":0,\"args\":{\"name\":\"domain-%d\"}}"
             e.Sink.tid e.Sink.tid)
      end)
    events;
  List.iter
    (fun (e : Sink.event) ->
      Buffer.add_string b
        (Printf.sprintf
           ",{\"name\":%s,\"cat\":%s,\"ph\":\"X\",\"pid\":1,\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f"
           (Json.escape e.Sink.name) (Json.escape e.Sink.cat) e.Sink.tid
           (us_of_ns e.Sink.ts_ns) (us_of_ns e.Sink.dur_ns));
      (match e.Sink.args with
      | [] -> ()
      | args ->
        Buffer.add_string b ",\"args\":";
        Buffer.add_string b
          (Json.to_string (Json.Obj (List.map (fun (k, v) -> (k, json_of_arg v)) args))));
      Buffer.add_char b '}')
    events;
  Buffer.add_string b "]}";
  Buffer.contents b

let write_chrome ?process_name file events =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (chrome_json ?process_name events))

(* ------------------------------------------------------------------ *)
(* Metrics *)

let metrics_json (s : Metrics.snapshot) =
  let hist (h : Metrics.hist_snapshot) =
    Json.Obj
      [
        ("count", Json.Int h.Metrics.count);
        ("sum", Json.Float h.Metrics.sum);
        ( "min",
          if h.Metrics.count = 0 then Json.Null else Json.Float h.Metrics.min_v );
        ( "max",
          if h.Metrics.count = 0 then Json.Null else Json.Float h.Metrics.max_v );
        ( "buckets",
          Json.List
            (List.map
               (fun (lo, hi, n) ->
                 Json.List [ Json.Float lo; Json.Float hi; Json.Int n ])
               h.Metrics.buckets) );
      ]
  in
  Json.Obj
    [
      ( "counters",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) s.Metrics.counters) );
      ( "gauges",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) s.Metrics.gauges) );
      ( "histograms",
        Json.Obj (List.map (fun (k, h) -> (k, hist h)) s.Metrics.histograms) );
    ]

let pp_metrics ppf (s : Metrics.snapshot) =
  List.iter
    (fun (k, v) -> Format.fprintf ppf "%-32s %d@." k v)
    s.Metrics.counters;
  List.iter
    (fun (k, v) -> Format.fprintf ppf "%-32s %g@." k v)
    s.Metrics.gauges;
  List.iter
    (fun (k, (h : Metrics.hist_snapshot)) ->
      if h.Metrics.count = 0 then Format.fprintf ppf "%-32s (empty)@." k
      else
        Format.fprintf ppf "%-32s n=%d sum=%g mean=%g min=%g max=%g@." k
          h.Metrics.count h.Metrics.sum
          (h.Metrics.sum /. float_of_int h.Metrics.count)
          h.Metrics.min_v h.Metrics.max_v)
    s.Metrics.histograms

(* ------------------------------------------------------------------ *)
(* Phase rollup *)

let phase_totals events =
  let table : (string, int ref * float ref) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun (e : Sink.event) ->
      let count, total =
        match Hashtbl.find_opt table e.Sink.name with
        | Some cell -> cell
        | None ->
          let cell = (ref 0, ref 0.) in
          Hashtbl.replace table e.Sink.name cell;
          cell
      in
      incr count;
      total := !total +. (Int64.to_float e.Sink.dur_ns *. 1e-9))
    events;
  Hashtbl.fold (fun name (c, t) acc -> (name, (!c, !t)) :: acc) table []
  |> List.sort (fun (_, (_, a)) (_, (_, b)) -> compare b a)

let pp_phases ppf events =
  List.iter
    (fun (name, (count, total_s)) ->
      Format.fprintf ppf "%-28s %8.3fs  x%d@." name total_s count)
    (phase_totals events)

(* ------------------------------------------------------------------ *)
(* Validation *)

let validate_chrome ?(required = []) s =
  match Json.parse s with
  | Error e -> Error e
  | Ok root -> (
    match Json.member "traceEvents" root with
    | None -> Error "missing traceEvents field"
    | Some (Json.List events) -> (
      let spans = ref 0 in
      let seen = Hashtbl.create 32 in
      let check_event ev =
        let field k = Json.member k ev in
        match (field "name", field "ph") with
        | Some (Json.Str name), Some (Json.Str ph) -> (
          match field "ts" with
          | Some ts when Json.to_float ts <> None ->
            if String.equal ph "X" then begin
              match field "dur" with
              | Some d when Json.to_float d <> None ->
                incr spans;
                Hashtbl.replace seen name ();
                Ok ()
              | _ -> Error (Printf.sprintf "span %S lacks a numeric dur" name)
            end
            else Ok ()
          | _ -> Error (Printf.sprintf "event %S lacks a numeric ts" name))
        | _ -> Error "event lacks name/ph string fields"
      in
      let rec all = function
        | [] -> Ok ()
        | ev :: rest -> (
          match check_event ev with Ok () -> all rest | Error _ as e -> e)
      in
      match all events with
      | Error _ as e -> e
      | Ok () -> (
        match
          List.find_opt (fun name -> not (Hashtbl.mem seen name)) required
        with
        | Some missing -> Error (Printf.sprintf "missing span %S" missing)
        | None -> Ok !spans))
    | Some _ -> Error "traceEvents is not a list")
