type t = { sink : Sink.t; metrics : Metrics.t }

let null = { sink = Sink.null; metrics = Metrics.null }

let make ?(sink = Sink.null) ?(metrics = Metrics.null) () = { sink; metrics }

let tracing t = Sink.enabled t.sink

let span t ?cat ?args name f = Sink.span t.sink ?cat ?args name f
