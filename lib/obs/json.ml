type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing *)

let escape s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

let add_float b f =
  if Float.is_nan f || Float.abs f = Float.infinity then
    Buffer.add_string b "null"
  else if Float.is_integer f && Float.abs f < 1e16 then
    Buffer.add_string b (Printf.sprintf "%.1f" f)
  else Buffer.add_string b (Printf.sprintf "%.17g" f)

let rec add b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f -> add_float b f
  | Str s -> Buffer.add_string b (escape s)
  | List l ->
    Buffer.add_char b '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char b ',';
        add b x)
      l;
    Buffer.add_char b ']'
  | Obj fields ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b (escape k);
        Buffer.add_char b ':';
        add b v)
      fields;
    Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  add b v;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Parsing *)

exception Bad of int * string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then advance ()
    else fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let add_utf8 b cp =
    if cp < 0x80 then Buffer.add_char b (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char b (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char b (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        if !pos >= n then fail "unterminated escape";
        (match s.[!pos] with
        | '"' -> Buffer.add_char b '"'; advance ()
        | '\\' -> Buffer.add_char b '\\'; advance ()
        | '/' -> Buffer.add_char b '/'; advance ()
        | 'b' -> Buffer.add_char b '\b'; advance ()
        | 'f' -> Buffer.add_char b '\012'; advance ()
        | 'n' -> Buffer.add_char b '\n'; advance ()
        | 'r' -> Buffer.add_char b '\r'; advance ()
        | 't' -> Buffer.add_char b '\t'; advance ()
        | 'u' ->
          advance ();
          if !pos + 4 > n then fail "short \\u escape";
          let hex = String.sub s !pos 4 in
          (match int_of_string_opt ("0x" ^ hex) with
          | Some cp -> add_utf8 b cp
          | None -> fail "bad \\u escape");
          pos := !pos + 4
        | _ -> fail "bad escape");
        go ()
      | c ->
        Buffer.add_char b c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_num c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    match int_of_string_opt tok with
    | Some i -> Int i
    | None -> (
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail (Printf.sprintf "bad number %S" tok))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields ((k, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((k, v) :: acc)
          | _ -> fail "expected , or }"
        in
        Obj (fields [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected , or ]"
        in
        List (items [])
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad (at, msg) ->
    Error (Printf.sprintf "JSON parse error at byte %d: %s" at msg)

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let to_float = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | _ -> None
