(** Dinic's blocking-flow maximum-flow algorithm (paper ref. [22]).

    The GH-tree construction needs many unit-capacity s-t flows on the
    same undirected graph, so the network is built once and reset between
    queries. *)

type t

val of_ugraph : Ugraph.t -> t
(** Unit-capacity undirected network with one arc pair per edge. *)

val create : int -> t
(** Empty network on [n] vertices (for weighted use). *)

val add_edge : t -> int -> int -> cap:int -> unit
(** Add an undirected edge with capacity [cap] in both directions. *)

val max_flow : t -> s:int -> t:int -> int
(** Maximum flow value between two distinct vertices. Resets any previous
    flow first. *)

val max_flow_bounded : t -> bound:int -> s:int -> t:int -> int
(** [max_flow_bounded t ~bound ~s ~t] is [min (max_flow t ~s ~t) bound],
    but Dinic terminates as soon as the accumulated flow reaches
    [bound]: each phase augments by at least one unit, so the cost is
    O([bound] * E) instead of O(V^2 * E). This is all the GH-tree
    division stage needs — it only asks whether a cut is < K (paper
    Lemma 1 / Theorem 2), never the exact weight of a heavier one. When
    the returned value is < [bound] it is the exact maximum flow and the
    residual network is complete, so {!min_cut_side} is valid; when it
    equals [bound] the flow was truncated and the residual network does
    NOT witness a minimum cut. *)

val min_cut_side : t -> s:int -> int array
(** After [max_flow], the source-side vertex set of a minimum cut
    (vertices reachable from [s] in the residual network), ascending. *)
