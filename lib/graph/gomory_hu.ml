type t = {
  parent : int array;
  weight : int array;
  mutable capped : int;
}

(* Gusfield's construction, optionally K-bounded. With [bound = Some b]
   every flow runs through [Maxflow.max_flow_bounded ~bound:b]: a flow
   that reaches [b] proves the pair's minimum cut is >= b, the tree edge
   weight is recorded as the stand-in [b] ("uncuttable" for any consumer
   that only cares about cuts < b), and the reparenting step is skipped —
   the truncated residual network does not witness a minimum cut, so
   there is no valid side to reparent from. Skipping it is sound for the
   < b structure: recorded weights never exceed the true pairwise cut,
   and min-cut submodularity (cut(u,v) >= min over any u..v vertex
   sequence of the consecutive cuts) gives cut(u,v) >= the minimum
   recorded weight on the u..v tree path, so a tree with no edge below b
   proves no pair has a cut below b, and when the global minimum cut
   lambda is < b some tree edge records exactly lambda. *)
let build ?bound g =
  let n = Ugraph.n g in
  let parent = Array.make n 0 in
  let weight = Array.make n 0 in
  let t = { parent; weight; capped = 0 } in
  if n > 1 then begin
    let net = Maxflow.of_ugraph g in
    for i = 1 to n - 1 do
      let f =
        match bound with
        | None -> Maxflow.max_flow net ~s:i ~t:parent.(i)
        | Some b -> Maxflow.max_flow_bounded net ~bound:b ~s:i ~t:parent.(i)
      in
      weight.(i) <- f;
      let exact = match bound with None -> true | Some b -> f < b in
      if exact then begin
        let side = Maxflow.min_cut_side net ~s:i in
        let on_side = Array.make n false in
        Array.iter (fun v -> on_side.(v) <- true) side;
        for j = i + 1 to n - 1 do
          if on_side.(j) && parent.(j) = parent.(i) then parent.(j) <- i
        done
      end
      else t.capped <- t.capped + 1
    done
  end;
  t

let n t = Array.length t.parent

let capped t = t.capped

let tree_edges t =
  Array.init
    (Array.length t.parent - 1)
    (fun k ->
      let v = k + 1 in
      (v, t.parent.(v), t.weight.(v)))

let min_cut_value t u v =
  if u = v then invalid_arg "Gomory_hu.min_cut_value: u = v";
  let n = Array.length t.parent in
  let depth = Array.make n (-1) in
  let rec d x = if x = 0 then 0 else if depth.(x) >= 0 then depth.(x) else begin
    let dx = 1 + d t.parent.(x) in
    depth.(x) <- dx;
    dx
  end in
  depth.(0) <- 0;
  let rec walk a b acc =
    if a = b then acc
    else if d a >= d b then walk t.parent.(a) b (min acc t.weight.(a))
    else walk a t.parent.(b) (min acc t.weight.(b))
  in
  walk u v max_int

let components_with_min_weight t w =
  let n = Array.length t.parent in
  let dsu = Dsu.create n in
  for v = 1 to n - 1 do
    if t.weight.(v) >= w then ignore (Dsu.union dsu v t.parent.(v))
  done;
  let groups = Dsu.groups dsu in
  Array.map Array.of_list groups
