(* Arc-array representation: arc 2k and 2k+1 are mutual residuals. For an
   undirected edge of capacity c both arcs start at capacity c; pushing
   flow on one increases the residual of the other, which models
   undirected capacity exactly. *)

type t = {
  n : int;
  mutable head : int array; (* arc -> target vertex *)
  mutable cap : int array; (* arc -> residual capacity *)
  mutable cap0 : int array; (* arc -> initial capacity *)
  first : int list array; (* vertex -> incident arc ids *)
  mutable arcs : int;
  level : int array;
  cursor : int list array;
}

let create n =
  {
    n;
    head = Array.make 16 0;
    cap = Array.make 16 0;
    cap0 = Array.make 16 0;
    first = Array.make n [];
    arcs = 0;
    level = Array.make n (-1);
    cursor = Array.make n [];
  }

let grow t =
  let len = Array.length t.head in
  if t.arcs + 2 > len then begin
    let len' = len * 2 in
    let head' = Array.make len' 0 in
    let cap' = Array.make len' 0 in
    let cap0' = Array.make len' 0 in
    Array.blit t.head 0 head' 0 len;
    Array.blit t.cap 0 cap' 0 len;
    Array.blit t.cap0 0 cap0' 0 len;
    t.head <- head';
    t.cap <- cap';
    t.cap0 <- cap0'
  end

let add_edge t u v ~cap =
  if u = v then invalid_arg "Maxflow.add_edge: self-loop";
  if u < 0 || u >= t.n || v < 0 || v >= t.n then
    invalid_arg "Maxflow.add_edge: vertex out of range";
  grow t;
  let a = t.arcs in
  t.head.(a) <- v;
  t.cap.(a) <- cap;
  t.cap0.(a) <- cap;
  t.head.(a + 1) <- u;
  t.cap.(a + 1) <- cap;
  t.cap0.(a + 1) <- cap;
  t.first.(u) <- a :: t.first.(u);
  t.first.(v) <- (a + 1) :: t.first.(v);
  t.arcs <- t.arcs + 2

let of_ugraph g =
  let t = create (Ugraph.n g) in
  let off, nbr = Ugraph.csr g in
  for u = 0 to Ugraph.n g - 1 do
    for s = off.(u) to off.(u + 1) - 1 do
      let v = Array.unsafe_get nbr s in
      if u < v then add_edge t u v ~cap:1
    done
  done;
  t

let reset t = Array.blit t.cap0 0 t.cap 0 t.arcs

(* BFS building the level graph; true iff t is reachable. *)
let bfs t ~s ~t:sink =
  Array.fill t.level 0 t.n (-1);
  let q = Queue.create () in
  t.level.(s) <- 0;
  Queue.add s q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    List.iter
      (fun a ->
        let v = t.head.(a) in
        if t.cap.(a) > 0 && t.level.(v) < 0 then begin
          t.level.(v) <- t.level.(u) + 1;
          Queue.add v q
        end)
      t.first.(u)
  done;
  t.level.(sink) >= 0

(* DFS with arc cursors sending one augmenting unit at a time along the
   level graph. *)
let rec dfs t u sink pushed =
  if u = sink then pushed
  else begin
    let rec advance () =
      match t.cursor.(u) with
      | [] -> 0
      | a :: rest ->
        let v = t.head.(a) in
        if t.cap.(a) > 0 && t.level.(v) = t.level.(u) + 1 then begin
          let got = dfs t v sink (min pushed t.cap.(a)) in
          if got > 0 then begin
            t.cap.(a) <- t.cap.(a) - got;
            t.cap.(a lxor 1) <- t.cap.(a lxor 1) + got;
            got
          end
          else begin
            t.cursor.(u) <- rest;
            advance ()
          end
        end
        else begin
          t.cursor.(u) <- rest;
          advance ()
        end
    in
    advance ()
  end

(* Dinic phases until either the level graph no longer reaches the sink
   (the flow is then maximum) or the accumulated flow reaches [limit].
   Each phase augments by at least one unit, so the number of phases is
   bounded by the returned flow — with a small [limit] the whole run
   costs O(limit * E) instead of the general O(V^2 * E). The DFS is
   seeded with the remaining headroom, so the result never overshoots
   [limit]: it is exactly [min (true max flow) limit]. *)
let run t ~limit ~s ~sink =
  reset t;
  let flow = ref 0 in
  let bounded = ref false in
  while (not !bounded) && bfs t ~s ~t:sink do
    for v = 0 to t.n - 1 do
      t.cursor.(v) <- t.first.(v)
    done;
    let continue = ref true in
    while !continue do
      if !flow >= limit then begin
        bounded := true;
        continue := false
      end
      else begin
        let got = dfs t s sink (limit - !flow) in
        if got = 0 then continue := false else flow := !flow + got
      end
    done
  done;
  !flow

let max_flow t ~s ~t:sink =
  if s = sink then invalid_arg "Maxflow.max_flow: s = t";
  run t ~limit:max_int ~s ~sink

let max_flow_bounded t ~bound ~s ~t:sink =
  if s = sink then invalid_arg "Maxflow.max_flow_bounded: s = t";
  if bound < 0 then invalid_arg "Maxflow.max_flow_bounded: bound < 0";
  run t ~limit:bound ~s ~sink

let min_cut_side t ~s =
  let seen = Array.make t.n false in
  let q = Queue.create () in
  seen.(s) <- true;
  Queue.add s q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    List.iter
      (fun a ->
        let v = t.head.(a) in
        if t.cap.(a) > 0 && not seen.(v) then begin
          seen.(v) <- true;
          Queue.add v q
        end)
      t.first.(u)
  done;
  let out = ref [] in
  for v = t.n - 1 downto 0 do
    if seen.(v) then out := v :: !out
  done;
  Array.of_list !out
