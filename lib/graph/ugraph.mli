(** Simple undirected graphs on vertices [0 .. n-1].

    This is the shared substrate for the division pipeline. Adjacency is
    stored in CSR form: a flat offset array indexing a flat neighbor
    array whose per-vertex runs are sorted and deduplicated. Edges added
    through [add_edge] accumulate in a flat endpoint buffer and are
    frozen into the CSR arrays on the first read, so the common
    build-then-traverse pattern costs two passes and allocates no
    per-edge cells. Parallel edges are collapsed; self-loops are
    rejected. *)

type t

val create : int -> t
(** [create n] is the empty graph on [n] vertices. *)

val n : t -> int
(** Vertex count. *)

val add_edge : t -> int -> int -> unit
(** Add the undirected edge. Ignores duplicates; raises
    [Invalid_argument] on self-loops or out-of-range endpoints. *)

val mem_edge : t -> int -> int -> bool
(** Binary search in the sorted neighbor run — O(log deg). *)

val degree : t -> int -> int

val neighbors : t -> int -> int list
(** Neighbor list in ascending order, no duplicates. Allocates; prefer
    [iter_neighbors] or [csr] on hot paths. *)

val iter_neighbors : t -> int -> (int -> unit) -> unit
(** Apply to each neighbor in ascending order. Allocation-free. *)

val csr : t -> int array * int array
(** [(off, nbr)] after freezing: the neighbors of [v] are
    [nbr.(off.(v)) .. nbr.(off.(v+1) - 1)], sorted ascending. The arrays
    are owned by the graph — callers must not mutate them, and the
    reference is invalidated by a subsequent [add_edge]. *)

val of_csr : n:int -> off:int array -> nbr:int array -> t
(** Adopt prebuilt CSR arrays without copying. The caller asserts the
    representation invariants: [off] has length [n+1] with [off.(0) = 0]
    and [off.(n) = Array.length nbr], each run is strictly ascending
    with in-range endpoints and no self-loops, and adjacency is
    symmetric. Offsets are shape-checked; run contents are trusted. *)

val edges : t -> (int * int) list
(** Every edge once, as [(u, v)] with [u < v], ascending
    lexicographically. *)

val edge_count : t -> int

val of_edges : int -> (int * int) list -> t
(** Graph with the given vertex count and edges. *)

val induced : t -> int array -> t * int array
(** [induced g vs] is the subgraph induced by the vertex set [vs]
    (which must not contain duplicates), relabeled to [0..|vs|-1] in the
    order given, together with the map from new index to original
    vertex. *)

val pp : Format.formatter -> t -> unit
