let labels g =
  let n = Ugraph.n g in
  let lbl = Array.make n (-1) in
  let k = ref 0 in
  let queue = Queue.create () in
  for s = 0 to n - 1 do
    if lbl.(s) < 0 then begin
      lbl.(s) <- !k;
      Queue.add s queue;
      while not (Queue.is_empty queue) do
        let u = Queue.pop queue in
        Ugraph.iter_neighbors g u (fun v ->
            if lbl.(v) < 0 then begin
              lbl.(v) <- !k;
              Queue.add v queue
            end)
      done;
      incr k
    end
  done;
  (lbl, !k)

let components g =
  let lbl, k = labels g in
  let sizes = Array.make k 0 in
  Array.iter (fun c -> sizes.(c) <- sizes.(c) + 1) lbl;
  let comps = Array.map (fun s -> Array.make s 0) sizes in
  let fill = Array.make k 0 in
  Array.iteri
    (fun v c ->
      comps.(c).(fill.(c)) <- v;
      fill.(c) <- fill.(c) + 1)
    lbl;
  comps

let component_of g s =
  let n = Ugraph.n g in
  let seen = Array.make n false in
  let queue = Queue.create () in
  seen.(s) <- true;
  Queue.add s queue;
  let acc = ref [] in
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    acc := u :: !acc;
    Ugraph.iter_neighbors g u (fun v ->
        if not seen.(v) then begin
          seen.(v) <- true;
          Queue.add v queue
        end)
  done;
  let a = Array.of_list !acc in
  Array.sort compare a;
  a

let is_connected g =
  let _, k = labels g in
  k <= 1
