(* Compact CSR adjacency. Edges arrive through [add_edge] into a flat
   endpoint buffer; the first read freezes the buffer into offset /
   neighbor arrays with sorted, deduplicated runs. A later [add_edge]
   just reopens the buffer — the next freeze rebuilds from the frozen
   arrays plus the new endpoints, so construction and traversal can
   interleave (at rebuild cost) while the common build-then-traverse
   pattern pays exactly two passes and no per-edge boxing. *)

type t = {
  n : int;
  eu : Mpl_util.Intbuf.t; (* pending edge endpoints, paired slots *)
  ev : Mpl_util.Intbuf.t;
  mutable off : int array; (* vertex -> first slot in [nbr]; length n+1 *)
  mutable nbr : int array; (* sorted, deduplicated neighbor runs *)
}

let create n =
  if n < 0 then invalid_arg "Ugraph.create: negative size";
  {
    n;
    eu = Mpl_util.Intbuf.create ();
    ev = Mpl_util.Intbuf.create ();
    off = Array.make (n + 1) 0;
    nbr = [||];
  }

let n t = t.n

let check t v =
  if v < 0 || v >= t.n then invalid_arg "Ugraph: vertex out of range"

let sort_range = Mpl_util.Intsort.sort_range

let freeze t =
  let pending = Mpl_util.Intbuf.length t.eu in
  if pending > 0 then begin
    let n = t.n in
    let old_off = t.off and old_nbr = t.nbr in
    let eu = Mpl_util.Intbuf.data t.eu and ev = Mpl_util.Intbuf.data t.ev in
    (* Pass 1: directed endpoint counts (duplicates included). *)
    let cnt = Array.make (n + 1) 0 in
    for v = 0 to n - 1 do
      cnt.(v) <- old_off.(v + 1) - old_off.(v)
    done;
    for e = 0 to pending - 1 do
      let u = Array.unsafe_get eu e and v = Array.unsafe_get ev e in
      cnt.(u) <- cnt.(u) + 1;
      cnt.(v) <- cnt.(v) + 1
    done;
    let off = Array.make (n + 1) 0 in
    for v = 0 to n - 1 do
      off.(v + 1) <- off.(v) + cnt.(v)
    done;
    (* Pass 2: scatter, reusing [cnt] as per-vertex fill cursors. *)
    let nbr = Array.make off.(n) 0 in
    Array.blit off 0 cnt 0 (n + 1);
    for v = 0 to n - 1 do
      for s = old_off.(v) to old_off.(v + 1) - 1 do
        nbr.(cnt.(v)) <- old_nbr.(s);
        cnt.(v) <- cnt.(v) + 1
      done
    done;
    for e = 0 to pending - 1 do
      let u = Array.unsafe_get eu e and v = Array.unsafe_get ev e in
      nbr.(cnt.(u)) <- v;
      cnt.(u) <- cnt.(u) + 1;
      nbr.(cnt.(v)) <- u;
      cnt.(v) <- cnt.(v) + 1
    done;
    for v = 0 to n - 1 do
      sort_range nbr off.(v) off.(v + 1)
    done;
    (* Compact duplicate endpoints in place; rebuild offsets. *)
    let w = ref 0 in
    let run_start = ref 0 in
    for v = 0 to n - 1 do
      let lo = !run_start in
      run_start := off.(v + 1);
      let new_lo = !w in
      for s = lo to off.(v + 1) - 1 do
        if s = lo || nbr.(s) <> nbr.(s - 1) then begin
          nbr.(!w) <- nbr.(s);
          incr w
        end
      done;
      off.(v) <- new_lo
    done;
    off.(n) <- !w;
    t.off <- off;
    t.nbr <- if !w = Array.length nbr then nbr else Array.sub nbr 0 !w;
    Mpl_util.Intbuf.clear t.eu;
    Mpl_util.Intbuf.clear t.ev
  end

let add_edge t u v =
  check t u;
  check t v;
  if u = v then invalid_arg "Ugraph.add_edge: self-loop";
  Mpl_util.Intbuf.push t.eu u;
  Mpl_util.Intbuf.push t.ev v

(* Binary search in the sorted neighbor run of [u]. *)
let mem_edge t u v =
  check t u;
  check t v;
  freeze t;
  let lo = ref t.off.(u) and hi = ref t.off.(u + 1) in
  let found = ref false in
  while !hi > !lo do
    let mid = !lo + ((!hi - !lo) / 2) in
    let x = t.nbr.(mid) in
    if x = v then begin
      found := true;
      lo := !hi
    end
    else if x < v then lo := mid + 1
    else hi := mid
  done;
  !found

let degree t v =
  check t v;
  freeze t;
  t.off.(v + 1) - t.off.(v)

let neighbors t v =
  check t v;
  freeze t;
  let acc = ref [] in
  for s = t.off.(v + 1) - 1 downto t.off.(v) do
    acc := t.nbr.(s) :: !acc
  done;
  !acc

let iter_neighbors t v f =
  check t v;
  freeze t;
  for s = t.off.(v) to t.off.(v + 1) - 1 do
    f (Array.unsafe_get t.nbr s)
  done

let csr t =
  freeze t;
  (t.off, t.nbr)

let of_csr ~n ~off ~nbr =
  if n < 0 then invalid_arg "Ugraph.of_csr: negative size";
  if Array.length off <> n + 1 || off.(0) <> 0 || off.(n) <> Array.length nbr
  then invalid_arg "Ugraph.of_csr: malformed offsets";
  {
    n;
    eu = Mpl_util.Intbuf.create ();
    ev = Mpl_util.Intbuf.create ();
    off;
    nbr;
  }

let edges t =
  freeze t;
  let acc = ref [] in
  for u = t.n - 1 downto 0 do
    for s = t.off.(u + 1) - 1 downto t.off.(u) do
      let v = t.nbr.(s) in
      if u < v then acc := (u, v) :: !acc
    done
  done;
  !acc

let edge_count t =
  freeze t;
  t.off.(t.n) / 2

let of_edges n es =
  let g = create n in
  List.iter (fun (u, v) -> add_edge g u v) es;
  g

let induced t vs =
  freeze t;
  let m = Array.length vs in
  let back = Array.copy vs in
  let fwd = Array.make t.n (-1) in
  Array.iteri
    (fun i v ->
      check t v;
      fwd.(v) <- i)
    vs;
  let g = create m in
  Array.iteri
    (fun i v ->
      for s = t.off.(v) to t.off.(v + 1) - 1 do
        let j = fwd.(t.nbr.(s)) in
        if j > i then add_edge g i j
      done)
    vs;
  (g, back)

let pp ppf t = Format.fprintf ppf "@[<h>graph(n=%d, m=%d)@]" t.n (edge_count t)
