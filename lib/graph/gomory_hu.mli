(** Gomory-Hu tree by Gusfield's algorithm (paper refs. [20, 21]).

    The tree encodes all-pairs minimum-cut *values* of a connected
    undirected unit-capacity graph with n-1 max-flow computations: the
    minimum cut between u and v equals the smallest edge weight on the
    tree path between them. Note that Gusfield's variant is
    flow-equivalent only — the bipartition induced by a tree edge is not
    necessarily a minimum cut, so consumers that need an actual cut must
    re-run one max-flow (see [Mpl.Division]). *)

type t

val build : ?bound:int -> Ugraph.t -> t
(** Build the tree. The graph must be connected (verify with
    [Connectivity.is_connected]); otherwise results are undefined.

    With [~bound:b] every Gusfield flow runs K-bounded
    ({!Maxflow.max_flow_bounded}), terminating as soon as it reaches
    [b] — O(b * E) per flow instead of O(V^2 * E). A tree edge whose
    flow hit the bound is recorded with the stand-in weight [b]
    (meaning "the real cut is >= b"; counted in {!capped}), and the
    exact all-pairs property is weakened to exactly what (K-1)-cut
    division needs:

    - every tree edge with weight < [b] is the exact minimum-cut value
      of its endpoint pair;
    - if no tree edge has weight < [b], no vertex pair of the graph has
      a cut < [b] (min-cut submodularity along tree paths);
    - if the global minimum cut [lambda] is < [b], some tree edge
      records exactly [lambda].

    {!min_cut_value} on a bounded tree returns a lower bound on the true
    min cut, exact whenever it is < [b]. *)

val n : t -> int

val capped : t -> int
(** Number of tree edges whose bounded flow hit the bound during
    {!build} ("uncuttable" edges, weight recorded as the bound). Always
    0 for unbounded builds. *)

val tree_edges : t -> (int * int * int) array
(** [(v, parent, weight)] for every non-root vertex [v]; the root is
    vertex 0. *)

val min_cut_value : t -> int -> int -> int
(** Minimum cut value between two distinct vertices, read off the tree
    path. On a tree built with [~bound:b] this is a lower bound, exact
    when < [b]. *)

val components_with_min_weight : t -> int -> int array array
(** [components_with_min_weight t w] removes every tree edge of weight
    < [w] and returns the resulting vertex groups (paper Algorithm 3,
    line 2-3). On a bounded tree this is meaningful for [w <= bound]. *)
