(* Iterative Hopcroft-Tarjan DFS. An explicit stack of (vertex, parent,
   neighbor cursor) frames avoids native stack overflow on path-like
   layout graphs with tens of thousands of vertices. Cursors index
   straight into the graph's CSR neighbor array, so the walk allocates
   only the frames themselves.

   Invariant: tree and back edges are pushed on [edge_stack] in DFS
   order. When a child v of u finishes with low(v) >= disc(u), every
   edge pushed at or after the tree edge (u, v) belongs to one
   biconnected component, so popping up to and including (u, v) emits
   exactly that block. Since the root is discovered first in its
   component, every root child closes a block, and the edge stack is
   empty between components. *)

type frame = {
  v : int;
  parent : int;
  mutable cur : int; (* next slot in [nbr] to examine *)
  stop : int; (* end of [v]'s neighbor run *)
  mutable children : int;
}

let run g ~on_block =
  let n = Ugraph.n g in
  let off, nbr = Ugraph.csr g in
  let disc = Array.make n (-1) in
  let low = Array.make n 0 in
  let timer = ref 0 in
  let edge_stack = ref [] in
  let is_art = Array.make n false in
  let pop_block u v =
    let block = ref [] in
    let rec pop () =
      match !edge_stack with
      | [] -> ()
      | (a, b) :: rest ->
        edge_stack := rest;
        block := (a, b) :: !block;
        if not (a = u && b = v) then pop ()
    in
    pop ();
    on_block !block
  in
  for root = 0 to n - 1 do
    if disc.(root) < 0 then begin
      if off.(root + 1) = off.(root) then on_block []
      else begin
        disc.(root) <- !timer;
        low.(root) <- !timer;
        incr timer;
        let stack =
          ref
            [
              {
                v = root;
                parent = -1;
                cur = off.(root);
                stop = off.(root + 1);
                children = 0;
              };
            ]
        in
        let rec step () =
          match !stack with
          | [] -> ()
          | frame :: tail ->
            if frame.cur >= frame.stop then begin
              stack := tail;
              (match tail with
              | [] -> if frame.children >= 2 then is_art.(frame.v) <- true
              | pframe :: _ ->
                if low.(frame.v) < low.(pframe.v) then
                  low.(pframe.v) <- low.(frame.v);
                if low.(frame.v) >= disc.(pframe.v) then begin
                  if pframe.parent >= 0 then is_art.(pframe.v) <- true;
                  pop_block pframe.v frame.v
                end);
              step ()
            end
            else begin
              let w = nbr.(frame.cur) in
              frame.cur <- frame.cur + 1;
              if w <> frame.parent then begin
                if disc.(w) < 0 then begin
                  frame.children <- frame.children + 1;
                  edge_stack := (frame.v, w) :: !edge_stack;
                  disc.(w) <- !timer;
                  low.(w) <- !timer;
                  incr timer;
                  stack :=
                    {
                      v = w;
                      parent = frame.v;
                      cur = off.(w);
                      stop = off.(w + 1);
                      children = 0;
                    }
                    :: !stack
                end
                else if disc.(w) < disc.(frame.v) then begin
                  edge_stack := (frame.v, w) :: !edge_stack;
                  if disc.(w) < low.(frame.v) then low.(frame.v) <- disc.(w)
                end
              end;
              step ()
            end
        in
        step ()
      end
    end
  done;
  is_art

let articulation_points g = run g ~on_block:(fun _ -> ())

let blocks g =
  let out = ref [] in
  let iso = ref 0 in
  let record edge_list =
    match edge_list with
    | [] -> incr iso (* isolated vertex; resolved after the walk *)
    | _ ->
      let verts = Hashtbl.create 8 in
      List.iter
        (fun (a, b) ->
          Hashtbl.replace verts a ();
          Hashtbl.replace verts b ())
        edge_list;
      let a = Array.of_list (Hashtbl.fold (fun v () acc -> v :: acc) verts []) in
      Array.sort compare a;
      out := a :: !out
  in
  let _ = run g ~on_block:record in
  (* Isolated vertices become singleton blocks. *)
  for v = 0 to Ugraph.n g - 1 do
    if Ugraph.degree g v = 0 then out := [| v |] :: !out
  done;
  ignore !iso;
  List.rev !out
