(** End-to-end layout decomposition (paper Fig. 2): decomposition-graph
    construction, graph division, per-piece color assignment, and cost
    reporting.

    Division produces small *independent* pieces (paper Section 4), so
    per-piece color assignment parallelizes: with [jobs > 1] the
    independent components are solved concurrently on a
    {!Mpl_engine.Pool} of domains, and with [cache = true] repeated
    components — standard-cell layouts repeat the same conflict cliques
    thousands of times — are solved once and reused through the
    canonical-signature {!Mpl_engine.Cache}. Both knobs are pure
    performance controls: the default (exact) cache mode and the
    deterministic engine scheduling guarantee identical costs and
    colorings at every [jobs]/[cache] setting, and [jobs = 1] without
    the cache runs the historical sequential code path bit-for-bit.

    Solving is fault-tolerant per piece: a leaf solver that raises, or
    that is cut short by the shared budget or the node cap, degrades
    through a fallback ladder (exact → SDP backtracking → linear →
    greedy, run budget-free) instead of failing the run, and the report
    records which pieces degraded and what finally colored them
    ({!resilience}). Deterministic fault injection ({!Mpl_engine.Fault},
    [params.fault]) exercises these paths on demand. *)

type algorithm =
  | Ilp  (** exact baseline via the MILP encoding (budgeted) *)
  | Exact  (** exact baseline via specialized branch-and-bound (budgeted) *)
  | Sdp_backtrack  (** paper Algorithm 1 *)
  | Sdp_greedy
  | Linear  (** paper Algorithm 2 *)

val algorithm_name : algorithm -> string

type post_pass =
  | No_post
  | Local_search  (** steepest-descent recoloring ({!Refine}) *)
  | Anneal of int  (** simulated annealing with the given iterations *)

type params = {
  k : int;  (** number of masks; 4 = QPLD *)
  alpha : float;  (** stitch weight, paper: 0.1 *)
  tth : float;  (** SDP merge threshold, paper: 0.9 *)
  sdp_options : Mpl_numeric.Sdp.options;
  solver_budget_s : float;
      (** total wall-clock budget for exact solvers (Ilp / Exact) across
          all components — shared by all pool workers through an
          atomic-latched deadline; <= 0 means unlimited *)
  node_cap : int;  (** branch-and-bound node cap per piece *)
  stages : Division.stages;
  post : post_pass;  (** optional global refinement after division *)
  balance : bool;  (** cost-free mask-density rebalancing ({!Balance}) *)
  jobs : int;
      (** concurrent piece solvers; 1 = the sequential legacy path *)
  priority_bias : int;
      (** added to every pool-submission priority on the engine path
          (default 0). A server maps per-request priorities onto the
          shared pool with this: requests with a higher bias get their
          pieces dequeued first. Scheduling only — never changes any
          result. *)
  chunk_below : int;
      (** engine path: leaf pieces with fewer vertices than this are
          buffered and submitted to the pool in grouped chunks instead
          of one task each (default 32; 0 disables chunking) *)
  chunk_len : int;
      (** engine path: how many tiny leaves ride in one grouped
          submission (default 16) *)
  cache : bool;  (** memoize solved components by canonical signature *)
  cache_permuted : bool;
      (** reuse cached colorings across *relabeled* isomorphic
          components too ({!Mpl_engine.Cache.Permuted}); higher hit
          rate, but heuristic tie-breaks may then produce (equally
          valid) colorings differing from an uncached run *)
  cache_warm : bool;
      (** leaf-level warm-hint cache: remember every solved piece under
          its canonical signature and seed the SDP initial point of
          near-isomorphic pieces from the stored coloring
          ({!Mpl_engine.Cache.find_similar}). Never skips a solve, but
          warm-started solves may converge early, so results can differ
          (equally valid) from a cold run; off by default *)
  trace : Mpl_obs.Sink.t option;
      (** span sink for structured tracing; [None] (the default)
          disables tracing entirely — the traced and untraced runs
          produce bit-identical colorings and costs either way *)
  metrics : bool;
      (** accumulate a metrics registry during the run and attach its
          snapshot to the report *)
  fault : Mpl_engine.Fault.spec option;
      (** deterministic fault injection ([None], the default, injects
          nothing — the unarmed probes cost one branch each and the run
          is bit-identical to a build without them) *)
  request_id : string option;
      (** serving request id; when set, top-level spans ([assign],
          [engine.batch]) carry a ["rid"] argument so traces collected
          on a server-lifetime sink stay attributable per request.
          Purely observational: never affects outputs or cache
          signatures ([None], the default, adds nothing) *)
  cancel : Mpl_engine.Pool.token option;
      (** cancellation token for mid-run teardown (forces the engine
          path). The coordinator checks it at every leaf emission,
          component push, and component force, and attaches it to every
          pool submission: once {!Mpl_engine.Pool.cancel} is called,
          queued pieces are dropped at dequeue without running, the
          running ones finish but their results are discarded, and
          {!assign} raises {!Mpl_engine.Pool.Cancelled}. [None] (the
          default) adds one branch per checkpoint and nothing else *)
  deadline_s : float option;
      (** per-request deadline in seconds, measured from the start of
          {!assign} on the monotonic clock. Soft, ladder-aware: each
          piece probes the deadline once before its primary solve and,
          once expired, degrades straight through the cheap ladder rung
          (linear, then greedy) instead of solving — the run still
          returns a complete legal coloring, with [timed_out] set and
          the degradations recorded in {!resilience}. For the budgeted
          exact algorithms the shared solver budget is clamped to the
          deadline, so an in-flight ILP/BnB returns its incumbent at
          the deadline. [None] (the default, also <= 0) arms nothing:
          no deadline clock is created or read, and the
          [solver.deadline_checks] counter is never registered *)
  windows : int;
      (** {!decompose_sharded}: cut the layout into this many geometric
          window strips (default 1 = a single window covering the
          layout). Ignored by {!decompose}/{!assign}. A pure
          memory/locality knob: the sharded output is bit-identical at
          every setting *)
  window_nm : int option;
      (** {!decompose_sharded}: target window strip width in nm; takes
          precedence over [windows] when set. [None] (default) sizes by
          [windows] *)
}

val default_params : params
(** QPLD defaults: k = 4, alpha = 0.1, tth = 0.9, 60 s exact budget,
    full division pipeline, jobs = 1, cache off. *)

type piece_failure = {
  piece_n : int;  (** vertex count of the affected piece *)
  failed_step : string;
      (** what failed: an algorithm name, or ["component"] for a failure
          caught at the engine's component level *)
  error : string;  (** exception text, or ["budget/node-cap trip"] *)
  solved_by : string;
      (** the step whose coloring was kept: an algorithm name, the
          primary's name when its partial result won, or ["greedy"] *)
  attempts : int;  (** solve attempts on this piece, primary included *)
}

type resilience = {
  degraded : int;  (** pieces not solved cleanly by the primary solver *)
  piece_failures : int;  (** degraded pieces whose solver raised *)
  fallback_attempts : int;  (** total fallback-ladder rungs executed *)
  failures : piece_failure list;
      (** per-piece records, chronological, capped at 32 (the counters
          above are exact regardless) *)
  fault_fired : bool;  (** did an armed injection actually trigger? *)
}

val no_resilience : resilience

type phases = {
  division_s : float;
      (** coordinator wall spent on structural division (component
          scan, peel, biconnected, GH trees, subgraph extraction),
          solver work excluded *)
  solve_s : float;
      (** leaf-solver wall summed over every domain — can exceed the
          elapsed wall when [jobs > 1] *)
  merge_s : float;
      (** coordinator wall spent joining and reassembling colorings,
          solver work the coordinator picked up while helping the pool
          excluded; 0 on the sequential path (merging is interleaved
          with division there) *)
}

val no_phases : phases

type balance = {
  mask_features : int array;
      (** [mask_features.(c)]: features with at least one segment on
          mask [c] — a stitched feature counts on each mask it uses *)
  mask_vertices : int array;
      (** [mask_vertices.(c)]: graph vertices (stitch segments) on [c] *)
  mask_area : int array;
      (** [mask_area.(c)]: polygon area (nm²) printed on mask [c] *)
}
(** Per-mask usage tallies — the observational first slice of the
    balanced-masks roadmap item (density balancing affects etch bias).
    Derived from the final coloring only; no objective change. *)

type eco_stats = {
  dirty_components : int;  (** components re-solved by {!redecompose} *)
  reused_components : int;  (** components kept byte-for-byte *)
  dirty_features : int;  (** features inside the dirty window *)
}

type report = {
  algorithm : algorithm;
  params : params;
  cost : Coloring.cost;
  colors : Coloring.t;
  elapsed_s : float;  (** color-assignment time (graph already built) *)
  timed_out : bool;  (** exact solver hit its budget: treat as N/A *)
  division : Division.stats;
  phases : phases;  (** wall-clock breakdown of this assignment *)
  engine : Mpl_engine.Engine.stats option;
      (** pool/cache statistics; [None] on the sequential legacy path *)
  cache : Mpl_engine.Cache.stats option;
      (** size + traffic snapshot of the component cache taken as this
          run finished — the *shared* table's totals when one was
          supplied; [None] when the run used no component cache *)
  resilience : resilience;
      (** degradation provenance: which pieces fell down the fallback
          ladder, and what finally colored them. Equal to
          {!no_resilience} (modulo [fault_fired]) on a clean run. *)
  metrics : Mpl_obs.Metrics.snapshot option;
      (** snapshot of the run's metrics registry when
          [params.metrics]; [None] otherwise *)
  balance : balance option;
      (** per-mask usage; [None] on the sharded and incremental paths,
          which never materialize the whole graph *)
  eco : eco_stats option;  (** set only by {!redecompose} *)
}

val assign :
  ?params:params ->
  ?obs:Mpl_obs.Obs.t ->
  ?pool:Mpl_engine.Pool.t ->
  ?shared_cache:Division.stats Mpl_engine.Cache.t ->
  ?on_component:(int -> int array -> int array -> unit) ->
  algorithm ->
  Decomp_graph.t ->
  report
(** Run division + color assignment on a prebuilt decomposition graph.
    An observability context is built from [params.trace] /
    [params.metrics] unless one is passed explicitly ([obs] then takes
    precedence; {!decompose} uses this to share one context between
    graph construction and assignment). The whole assignment runs under
    an [assign] span; each leaf solve under a [solve.<algorithm>] span;
    post passes under [post.local_search] / [post.anneal] /
    [post.balance].

    The three server hooks all force the engine path (even at
    [jobs = 1], which otherwise runs the sequential legacy code):

    - [pool]: solve on this caller-owned {!Mpl_engine.Pool} instead of
      spinning up a private one — the serving daemon shares one pool
      across every in-flight request, with [params.priority_bias]
      arbitrating between them. [params.jobs] is ignored then (the
      pool's own worker count applies).
    - [shared_cache]: use this component cache instead of a private
      per-run table (only consulted when [params.cache]). Piece
      signatures are salted with a fingerprint of every
      result-affecting parameter (algorithm, k, alpha, tth, node cap),
      so one table safely serves requests with different parameters:
      entries from one setting can never hit probes from another.
    - [on_component]: called as [f idx back colors] for each
      independent component, in deterministic component-index order, as
      soon as its coloring is forced — [back.(j)] is the original
      vertex of the component's vertex [j]. Streaming replies hang off
      this. Called on the coordinating thread. *)

val decompose :
  ?params:params ->
  ?pool:Mpl_engine.Pool.t ->
  ?shared_cache:Division.stats Mpl_engine.Cache.t ->
  ?on_component:(int -> int array -> int array -> unit) ->
  ?max_stitches_per_feature:int ->
  min_s:int ->
  algorithm ->
  Mpl_layout.Layout.t ->
  Decomp_graph.t * report
(** Build the decomposition graph from the layout, then [assign] — both
    under one observability context, so a trace covers graph
    construction and assignment. The optional server hooks are passed
    through to {!assign}. *)

val decompose_sharded :
  ?params:params ->
  ?obs:Mpl_obs.Obs.t ->
  ?pool:Mpl_engine.Pool.t ->
  ?shared_cache:Division.stats Mpl_engine.Cache.t ->
  ?on_component:(int -> int array -> int array -> unit) ->
  ?max_stitches_per_feature:int ->
  min_s:int ->
  algorithm ->
  Mpl_layout.Layout.t ->
  report
(** Memory-bounded decomposition for very large layouts: cut the layout
    into [params.windows] geometric window strips (or strips of
    [params.window_nm] nm) with [min_s + half_pitch]-wide halo overlaps
    ({!Shard}), build each window's decomposition graph independently,
    and stream every connected component through the same
    division/solve/cache machinery as {!decompose} — components
    straddling window borders are reconciled exactly, at feature
    granularity, and rebuilt bit-identically from their owner windows'
    canonical segment shapes before flowing through the normal division
    pipeline (whose GH-cut merge applies the Lemma 1 color rotation
    across the former border). Peak residency is O(largest window) +
    O(coloring), never O(whole-layout graph); no global graph is built
    or returned.

    For the self-contained algorithms (Linear, SDP, and unbudgeted
    runs) the resulting coloring is bit-identical to
    [snd (decompose ...)] at every [windows]/[jobs]/[cache] setting.
    The engine path is always used (even at [jobs = 1]); cost is the
    sum of per-component costs, which equals the global
    {!Coloring.evaluate} because every conflict/stitch edge is
    intra-component. [on_component] streams components in
    deterministic emission order: window strips in geometric order,
    then border-straddling components by smallest feature id.

    @raise Invalid_argument when [params.post] or [params.balance]
    request a global refinement pass — those need the whole graph. *)

val snapshot :
  ?params:params ->
  min_s:int ->
  algorithm ->
  Decomp_graph.t ->
  Mpl_layout.Layout.t ->
  report ->
  Eco.session
(** Capture a finished {!decompose} run as a persistable {!Eco.session}
    for later {!redecompose}: the canonical layout text, the per-feature
    stitch-segment counts, and each connected component's feature set,
    coloring (in the component's ascending vertex order — exactly what
    {!Decomp_graph.subgraph} extracts) and cost. [params], [min_s],
    [algorithm], [g] and [layout] must be the ones the report came
    from. *)

val redecompose :
  ?params:params ->
  ?obs:Mpl_obs.Obs.t ->
  ?pool:Mpl_engine.Pool.t ->
  ?shared_cache:Division.stats Mpl_engine.Cache.t ->
  ?on_component:(int -> int array -> int array -> unit) ->
  prev:Eco.session ->
  edits:Eco.edit list ->
  algorithm ->
  (Mpl_layout.Layout.t * report * Eco.session, string) result
(** Incremental (ECO) re-decomposition: apply [edits] to the session's
    base layout and re-solve {e only} the components the edit can have
    touched, reusing every other component's coloring byte-for-byte.

    The dirty window is the edited rectangles dilated by
    [min_s + half_pitch] — exactly the radius within which the
    decomposition graph can change (every edge joins features within
    that distance, and a feature's stitch split depends only on its
    neighbors within [min_s]; DESIGN.md §15 gives the full argument).
    Dirty components are rebuilt as a sub-layout — bit-identical to the
    pieces a cold run on the whole edited layout would solve — and
    streamed through the standard division → engine pipeline, with the
    previous colorings seeded into the component cache (Exact hits skip
    unchanged-graph re-solves) and the warm-hint cache (SDP warm
    starts via {!Mpl_engine.Cache.find_similar}).

    At the deterministic settings (no [cache_warm], no fault injection)
    the full coloring is bit-identical to a cold {!decompose} of the
    edited layout; untouched components are reused verbatim under every
    setting. [on_component] fires only for dirty components, with
    [back] remapped to edited-layout vertex ids. Returns the edited
    layout, the report ([report.eco] set, [report.balance] absent —
    the whole graph is never built), and the next session, so edits
    chain. Errors (rather than raising) on a parameter fingerprint
    mismatch with the session, a corrupt session, an invalid edit
    script, or a requested global post/balance pass. *)

val pp_report : Format.formatter -> report -> unit
