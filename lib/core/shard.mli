(** Geometric window sharding of a layout for bounded-memory
    decomposition.

    The whole-layout pipeline builds one decomposition graph over every
    feature, so peak resident memory is O(layout). Sharding instead cuts
    the layout into geometric windows (strips along the longer bounding
    box axis), builds each window's graph independently — bounding the
    graph-construction working set to O(window) — and reconciles the
    connected components that straddle window borders exactly.

    Soundness rests on three facts about the unsharded build:

    - Stitch splitting is per-feature and depends only on the feature's
      neighbors within [min_s] ({!Mpl_layout.Stitch.split} projects
      neighbor boxes and merges intervals, order-independently), so a
      window containing a feature's whole [min_s] neighborhood
      reproduces its canonical segmentation.
    - Every edge incident to a feature joins it to a feature within the
      color-friendly radius [min_s + hp], so a window containing a
      feature's whole [min_s + hp] neighborhood (the {e halo}) sees
      every edge of that feature.
    - Feature-level conflict connectivity is segmentation-independent:
      a feature's segments partition it exactly, so two features have
      some conflict edge iff their polygon distance is at most [min_s] —
      regardless of how either was split. Window-border classification
      therefore runs at feature granularity and is immune to the (one
      permissible) inaccuracy of a sharded build: halo features near the
      window edge may be split non-canonically, because {e their} halos
      are not fully present.

    Every feature is {e owned} by exactly one window (by bounding-box
    center); a window additionally carries every feature within the halo
    radius of its core extent. A connected component (conflict + stitch)
    of a window graph whose features are all core is globally closed and
    is emitted as-is — its CSR piece is bit-identical to the matching
    component of an unsharded build. Components touching halo features
    are deferred: their core features join a global border set, feature
    pairs observed in conflict are unioned in a DSU, and after all
    windows each border class is {e rebuilt} from the canonical segment
    shapes recorded in each feature's owner window — again bit-identical
    to the unsharded component. Border pieces then flow through the same
    division pipeline, whose GH-cut merge reconnects the window-spanning
    halves by Lemma 1 color rotation ({!Division.best_rotation}). *)

type window = {
  members : int array;
      (** global feature ids present in this window, ascending: the core
          (owned) features plus every feature within the halo radius of
          the core extent *)
  core : bool array;  (** parallel to [members]: owned by this window? *)
}

type plan = {
  n_features : int;
  halo : int;  (** halo radius in nm: [min_s + half_pitch] *)
  windows : window array;
      (** strip order along the cutting axis; strips that own no feature
          are dropped *)
}

val plan : ?window_nm:int -> ?windows:int -> halo:int -> Mpl_layout.Layout.t -> plan
(** Cut the layout into strips along the longer bounding-box axis:
    [window_nm] (strip width in nm) takes precedence, else [windows]
    equal strips (default 1). Each feature is owned by the strip holding
    its bounding-box center; each window's member set is its core plus
    every feature within [halo] of the union bounding box of its core.
    Deterministic in the layout alone. *)

type piece = {
  graph : Decomp_graph.t;
  back_feature : int array;  (** vertex -> global feature id *)
  back_seg : int array;  (** vertex -> segment index within its feature *)
}
(** One globally closed connected component, ready for division. Vertex
    order is ascending [(feature, segment)] — the same order the
    component has in an unsharded build, so the piece (and its cache
    signature) is bit-identical to the unsharded
    {!Decomp_graph.subgraph} piece. *)

type acc
(** Cross-window accumulator: per-feature canonical segment counts, the
    feature-level DSU of observed conflict pairs, and the canonical
    segment shapes of border features. *)

val fresh_acc : plan -> acc

val scan_window :
  ?obs:Mpl_obs.Obs.t ->
  ?max_stitches_per_feature:int ->
  acc:acc ->
  min_s:int ->
  hp:int ->
  Mpl_layout.Layout.t ->
  window ->
  piece list
(** Build the window's graph, record every core feature's canonical
    segmentation, union observed conflict pairs into the DSU, and
    return the window's {e interior} components (all-core, globally
    closed) in deterministic component order. Core features of
    border-straddling components are marked in [acc] with their
    canonical segment shapes; components with no core feature belong to
    another window and are dropped. *)

val border_pieces : ?obs:Mpl_obs.Obs.t -> acc -> min_s:int -> hp:int -> piece list
(** After every window has been scanned: the globally merged
    border-straddling components, each rebuilt from canonical segment
    shapes via {!Decomp_graph.of_nodes}, in ascending order of their
    smallest feature id. *)

val offsets : acc -> int array * int
(** [(off, n)]: [off.(f)] is the global vertex id of feature [f]'s first
    segment in the canonical (feature-major) vertex order, [n] the total
    vertex count. Only valid after every window has been scanned. *)

val seg_count : acc -> int -> int
(** Canonical segment count of a feature (after its owner window has
    been scanned). *)
