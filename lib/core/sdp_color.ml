module Sdp = Mpl_numeric.Sdp
module Dsu = Mpl_graph.Dsu

let relax ?options ?warm ~k ~alpha (g : Decomp_graph.t) =
  let problem =
    {
      Sdp.n = g.Decomp_graph.n;
      conflict_edges = Array.of_list (Decomp_graph.conflict_edges g);
      stitch_edges = Array.of_list (Decomp_graph.stitch_edges g);
      k;
      alpha;
    }
  in
  Sdp.solve ?options ?warm problem

let greedy_map ~k (sol : Sdp.solution) (g : Decomp_graph.t) =
  let n = g.Decomp_graph.n in
  let order = Array.init n (fun i -> i) in
  Array.sort
    (fun a b ->
      compare (Decomp_graph.conflict_degree g b) (Decomp_graph.conflict_degree g a))
    order;
  let colors = Array.make n (-1) in
  let colored = ref [] in
  Array.iter
    (fun v ->
      let score = Array.make k 0. in
      (* Gram affinity toward every already-colored vertex of the
         component: vertices the SDP placed together pull v to their
         color. *)
      List.iter
        (fun u -> score.(colors.(u)) <- score.(colors.(u)) +. Sdp.gram sol v u)
        !colored;
      (* Hard local penalties dominate affinity. *)
      Decomp_graph.iter g.Decomp_graph.conflict v (fun u ->
          if colors.(u) >= 0 then
            score.(colors.(u)) <- score.(colors.(u)) -. 1000.);
      Decomp_graph.iter g.Decomp_graph.stitch v (fun u ->
          if colors.(u) >= 0 then begin
            (* A stitch is paid on every color except the neighbor's. *)
            for c = 0 to k - 1 do
              if c <> colors.(u) then score.(c) <- score.(c) -. 0.5
            done
          end);
      let best = ref 0 in
      for c = 1 to k - 1 do
        if score.(c) > score.(!best) then best := c
      done;
      colors.(v) <- !best;
      colored := v :: !colored)
    order;
  colors

(* Can groups [a] and [b] merge without trapping a conflict edge inside
   one vertex? *)
let groups_compatible g members ra rb =
  List.for_all
    (fun u -> List.for_all (fun v -> not (Decomp_graph.has_conflict g u v)) members.(rb))
    members.(ra)

let backtrack ?(obs = Mpl_obs.Obs.null) ?(tth = 0.9) ?node_cap ?budget ~k
    ~alpha (sol : Sdp.solution) (g : Decomp_graph.t) =
  let n = g.Decomp_graph.n in
  if n = 0 then [||]
  else begin
    (* Candidate merges, strongest affinity first. *)
    let pairs = ref [] in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        let x = Sdp.gram sol i j in
        if x >= tth then pairs := (x, i, j) :: !pairs
      done
    done;
    let pairs =
      List.sort (fun (a, _, _) (b, _, _) -> compare b a) !pairs
    in
    let dsu = Dsu.create n in
    let members = Array.init n (fun i -> [ i ]) in
    List.iter
      (fun (_, i, j) ->
        let ri = Dsu.find dsu i and rj = Dsu.find dsu j in
        if ri <> rj && groups_compatible g members ri rj then begin
          ignore (Dsu.union dsu i j);
          let r = Dsu.find dsu i in
          let other = if r = ri then rj else ri in
          members.(r) <- members.(ri) @ members.(rj);
          members.(other) <- []
        end)
      pairs;
    (* Relabel groups 0..m-1 and aggregate edge weights. *)
    let group_id = Hashtbl.create n in
    let group_of = Array.make n 0 in
    let m = ref 0 in
    for v = 0 to n - 1 do
      let r = Dsu.find dsu v in
      let gid =
        match Hashtbl.find_opt group_id r with
        | Some gid -> gid
        | None ->
          let gid = !m in
          incr m;
          Hashtbl.add group_id r gid;
          gid
      in
      group_of.(v) <- gid
    done;
    let m = !m in
    let wc = Coloring.weight_conflict in
    let ws = Coloring.stitch_weight ~alpha in
    let weights = Hashtbl.create 64 in
    let bump u v same diff =
      let key = (min u v, max u v) in
      let s0, d0 =
        match Hashtbl.find_opt weights key with Some p -> p | None -> (0, 0)
      in
      Hashtbl.replace weights key (s0 + same, d0 + diff)
    in
    List.iter
      (fun (u, v) ->
        let gu = group_of.(u) and gv = group_of.(v) in
        if gu <> gv then bump gu gv wc 0)
      (Decomp_graph.conflict_edges g);
    List.iter
      (fun (u, v) ->
        let gu = group_of.(u) and gv = group_of.(v) in
        if gu <> gv then bump gu gv 0 ws)
      (Decomp_graph.stitch_edges g);
    let adj = Array.make m [] in
    Hashtbl.iter
      (fun (u, v) (same_cost, diff_cost) ->
        adj.(u) <- { Bnb.target = v; same_cost; diff_cost } :: adj.(u);
        adj.(v) <- { Bnb.target = u; same_cost; diff_cost } :: adj.(v))
      weights;
    let inst = { Bnb.n = m; adj } in
    (* Seed with the greedy mapping projected onto groups. *)
    let greedy = greedy_map ~k sol g in
    let init = Array.make m 0 in
    for v = n - 1 downto 0 do
      init.(group_of.(v)) <- greedy.(v)
    done;
    let result = Bnb.solve ?node_cap ?budget ~init ~k inst in
    Mpl_obs.Metrics.observe
      (Mpl_obs.Metrics.histogram obs.Mpl_obs.Obs.metrics "solver.bnb_nodes")
      (float_of_int result.Bnb.nodes);
    Array.init n (fun v -> result.Bnb.colors.(group_of.(v)))
  end
