type edge = { target : int; same_cost : int; diff_cost : int }

type instance = { n : int; adj : edge list array }

let instance_of_graph ~alpha (g : Decomp_graph.t) =
  let wc = Coloring.weight_conflict in
  let ws = Coloring.stitch_weight ~alpha in
  let adj = Array.make g.Decomp_graph.n [] in
  let push u e = adj.(u) <- e :: adj.(u) in
  List.iter
    (fun (u, v) ->
      push u { target = v; same_cost = wc; diff_cost = 0 };
      push v { target = u; same_cost = wc; diff_cost = 0 })
    (Decomp_graph.conflict_edges g);
  List.iter
    (fun (u, v) ->
      push u { target = v; same_cost = 0; diff_cost = ws };
      push v { target = u; same_cost = 0; diff_cost = ws })
    (Decomp_graph.stitch_edges g);
  { n = g.Decomp_graph.n; adj }

(* Assignment order: BFS from the highest-degree vertex, preferring heavy
   vertices, so pruning meets dense subgraphs early. *)
let search_order inst =
  let n = inst.n in
  let deg = Array.map List.length inst.adj in
  let order = Array.make n 0 in
  let placed = Array.make n false in
  let idx = ref 0 in
  let by_degree = Array.init n (fun i -> i) in
  Array.sort (fun a b -> compare deg.(b) deg.(a)) by_degree;
  let queue = Queue.create () in
  Array.iter
    (fun s ->
      if not placed.(s) then begin
        placed.(s) <- true;
        Queue.add s queue;
        while not (Queue.is_empty queue) do
          let u = Queue.pop queue in
          order.(!idx) <- u;
          incr idx;
          let nbrs =
            List.map (fun e -> e.target) inst.adj.(u)
            |> List.sort_uniq compare
            |> List.sort (fun a b -> compare deg.(b) deg.(a))
          in
          List.iter
            (fun v ->
              if not placed.(v) then begin
                placed.(v) <- true;
                Queue.add v queue
              end)
            nbrs
        done
      end)
    by_degree;
  order

let delta inst colors v c =
  List.fold_left
    (fun acc e ->
      let cu = colors.(e.target) in
      if cu < 0 then acc
      else if cu = c then acc + e.same_cost
      else acc + e.diff_cost)
    0 inst.adj.(v)

let cost inst colors =
  let total = ref 0 in
  Array.iteri
    (fun u edges ->
      List.iter
        (fun e ->
          if e.target > u then
            total :=
              !total
              + (if colors.(u) = colors.(e.target) then e.same_cost
                 else e.diff_cost))
        edges)
    inst.adj;
  !total

let greedy ~k inst =
  let order = search_order inst in
  let colors = Array.make inst.n (-1) in
  Array.iter
    (fun v ->
      let best = ref 0 and best_d = ref max_int in
      for c = 0 to k - 1 do
        let d = delta inst colors v c in
        if d < !best_d then begin
          best_d := d;
          best := c
        end
      done;
      colors.(v) <- !best)
    order;
  colors

type result = {
  colors : int array;
  scaled_cost : int;
  optimal : bool;
  nodes : int;
}

let solve ?(node_cap = 2_000_000) ?(budget = Mpl_util.Timer.budget 0.)
    ?init ~k inst =
  let order = search_order inst in
  let colors = Array.make inst.n (-1) in
  let seed = greedy ~k inst in
  let best_cost = ref (cost inst seed) in
  let best = ref (Array.copy seed) in
  (match init with
  | Some c0 when Array.length c0 = inst.n && Array.for_all (fun c -> c >= 0 && c < k) c0 ->
    let c = cost inst c0 in
    if c < !best_cost then begin
      best_cost := c;
      best := Array.copy c0
    end
  | Some _ | None -> ());
  let nodes = ref 0 in
  let aborted = ref false in
  let rec branch t partial max_used =
    if !aborted then ()
    else if partial >= !best_cost then ()
    else if t = inst.n then begin
      (* A full assignment reached after the deadline must not be
         latched: the run is reported as aborted, and mixing in work
         completed past the deadline would make the result depend on
         scheduling noise. *)
      if Mpl_util.Timer.expired budget then aborted := true
      else begin
        best_cost := partial;
        best := Array.copy colors
      end
    end
    else begin
      let v = order.(t) in
      (* Symmetry breaking: a fresh color index beyond max_used+1 is
         isomorphic to max_used+1. *)
      let limit = min (k - 1) (max_used + 1) in
      for c = 0 to limit do
        if not !aborted then begin
          incr nodes;
          if !nodes land 0xFFF = 0 && Mpl_util.Timer.expired budget then
            aborted := true;
          if !nodes > node_cap then aborted := true;
          if not !aborted then begin
            let d = delta inst colors v c in
            if partial + d < !best_cost then begin
              colors.(v) <- c;
              branch (t + 1) (partial + d) (max max_used c);
              colors.(v) <- -1
            end
          end
        end
      done
    end
  in
  if inst.n > 0 then branch 0 0 (-1);
  {
    colors = !best;
    scaled_cost = !best_cost;
    optimal = not !aborted;
    nodes = !nodes;
  }
