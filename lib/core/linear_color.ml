let friendly_bonus = 10

(* Score of giving vertex [v] color [c] against the currently colored
   vertices: conflicts dominate, stitches next, the friendly rule breaks
   ties. Lower is better. *)
let color_penalty ~k ~ws ~fb (g : Decomp_graph.t) colors v c =
  let wc = Coloring.weight_conflict in
  let pen = ref 0 in
  Decomp_graph.iter g.Decomp_graph.conflict v (fun u ->
      if colors.(u) = c then pen := !pen + wc);
  Decomp_graph.iter g.Decomp_graph.stitch v (fun u ->
      if colors.(u) >= 0 && colors.(u) <> c then pen := !pen + ws);
  if fb > 0 then
    Decomp_graph.iter g.Decomp_graph.friendly v (fun u ->
        if colors.(u) = c then pen := !pen - fb);
  ignore k;
  !pen

let best_color ~k ~ws ~fb g colors v =
  let best = ref 0 and best_pen = ref max_int in
  for c = 0 to k - 1 do
    let pen = color_penalty ~k ~ws ~fb g colors v c in
    if pen < !best_pen then begin
      best_pen := pen;
      best := c
    end
  done;
  !best

(* Stage 1: peel non-critical vertices (d_conf < k, d_stit < 2) onto a
   stack with a worklist so the pass stays linear. *)
let peel ~k (g : Decomp_graph.t) =
  let n = g.Decomp_graph.n in
  let alive = Array.make n true in
  let dconf = Array.init n (Decomp_graph.deg g.Decomp_graph.conflict) in
  let dstit = Array.init n (Decomp_graph.deg g.Decomp_graph.stitch) in
  let stack = ref [] in
  let queue = Queue.create () in
  let queued = Array.make n false in
  let removable v = alive.(v) && dconf.(v) < k && dstit.(v) < 2 in
  for v = 0 to n - 1 do
    if removable v then begin
      Queue.add v queue;
      queued.(v) <- true
    end
  done;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    queued.(v) <- false;
    if removable v then begin
      alive.(v) <- false;
      stack := v :: !stack;
      let relax u arr =
        arr.(u) <- arr.(u) - 1;
        if removable u && not queued.(u) then begin
          Queue.add u queue;
          queued.(u) <- true
        end
      in
      Decomp_graph.iter g.Decomp_graph.conflict v (fun u ->
          if alive.(u) then relax u dconf);
      Decomp_graph.iter g.Decomp_graph.stitch v (fun u ->
          if alive.(u) then relax u dstit)
    end
  done;
  (alive, !stack)

(* The three peer-selection orders over the core. *)
let orders ~k (g : Decomp_graph.t) core =
  let sequence = Array.copy core in
  let degree = Array.copy core in
  Array.sort
    (fun a b ->
      let da = Decomp_graph.conflict_degree g a
      and db = Decomp_graph.conflict_degree g b in
      if da <> db then compare db da else compare a b)
    degree;
  let in_core = Hashtbl.create (Array.length core) in
  Array.iter (fun v -> Hashtbl.replace in_core v ()) core;
  let round = Array.make (Array.length core) 3 in
  let pos = Hashtbl.create (Array.length core) in
  Array.iteri (fun i v -> Hashtbl.replace pos v i) core;
  Array.iteri
    (fun i v ->
      if Decomp_graph.conflict_degree g v >= k then round.(i) <- 1)
    core;
  Array.iteri
    (fun i v ->
      if round.(i) = 1 then
        Decomp_graph.iter g.Decomp_graph.conflict v (fun u ->
            match Hashtbl.find_opt pos u with
            | Some j when round.(j) = 3 -> round.(j) <- 2
            | Some _ | None -> ()))
    core;
  let three_round = Array.copy core in
  let key v =
    match Hashtbl.find_opt pos v with Some i -> round.(i) | None -> 3
  in
  Array.sort
    (fun a b ->
      let ra = key a and rb = key b in
      if ra <> rb then compare ra rb else compare a b)
    three_round;
  [ sequence; degree; three_round ]

(* Cost of a coloring restricted to colored vertices. *)
let partial_cost ~ws (g : Decomp_graph.t) colors =
  let wc = Coloring.weight_conflict in
  let total = ref 0 in
  for u = 0 to g.Decomp_graph.n - 1 do
    if colors.(u) >= 0 then begin
      Decomp_graph.iter g.Decomp_graph.conflict u (fun v ->
          if u < v && colors.(v) = colors.(u) then total := !total + wc);
      Decomp_graph.iter g.Decomp_graph.stitch u (fun v ->
          if u < v && colors.(v) >= 0 && colors.(v) <> colors.(u) then
            total := !total + ws)
    end
  done;
  !total

let refine ~k ~ws ~fb ~passes (g : Decomp_graph.t) colors core =
  for _ = 1 to passes do
    Array.iter
      (fun v ->
        let current = colors.(v) in
        colors.(v) <- -1;
        let cur_pen = color_penalty ~k ~ws ~fb g colors v current in
        let cand = best_color ~k ~ws ~fb g colors v in
        let cand_pen = color_penalty ~k ~ws ~fb g colors v cand in
        colors.(v) <- (if cand_pen < cur_pen then cand else current))
      core
  done

let solve_with_bonus ~fb ~k ~alpha (g : Decomp_graph.t) =
  if k < 1 then invalid_arg "Linear_color.solve: k < 1";
  let n = g.Decomp_graph.n in
  let ws = Coloring.stitch_weight ~alpha in
  let alive, stack = peel ~k g in
  let core =
    Array.of_list
      (List.filter (fun v -> alive.(v)) (List.init n (fun v -> v)))
  in
  let colors = Array.make n (-1) in
  if Array.length core > 0 then begin
    (* Peer selection: run all three orders, keep the cheapest. *)
    let candidates =
      List.map
        (fun order ->
          let trial = Array.make n (-1) in
          Array.iter
            (fun v -> trial.(v) <- best_color ~k ~ws ~fb g trial v)
            order;
          (partial_cost ~ws g trial, trial))
        (orders ~k g core)
    in
    let _, chosen =
      List.fold_left
        (fun (bc, bt) (c, t) -> if c < bc then (c, t) else (bc, bt))
        (max_int, [||])
        candidates
    in
    Array.blit chosen 0 colors 0 n;
    refine ~k ~ws ~fb ~passes:2 g colors core
  end;
  (* Pop-up: every popped vertex had conflict degree < k when removed, so
     a conflict-free color is always available among the k choices. *)
  List.iter (fun v -> colors.(v) <- best_color ~k ~ws ~fb g colors v) stack;
  colors

let solve ~k ~alpha g = solve_with_bonus ~fb:friendly_bonus ~k ~alpha g
let solve_no_friendly ~k ~alpha g = solve_with_bonus ~fb:0 ~k ~alpha g
