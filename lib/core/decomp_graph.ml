module Ugraph = Mpl_graph.Ugraph
module Polygon = Mpl_geometry.Polygon
module Grid_index = Mpl_geometry.Grid_index
module Intbuf = Mpl_util.Intbuf
module Intsort = Mpl_util.Intsort

(* Each relation is stored in CSR form: [nbr.(off.(v)) .. off.(v+1)-1]
   is the sorted neighbor run of [v]. Construction is two flat passes
   over an endpoint stream — no intermediate list adjacency and no
   per-edge tuples on the hot [of_layout] / [subgraph] paths. *)

type adj = { off : int array; nbr : int array }

type t = {
  n : int;
  conflict : adj;
  stitch : adj;
  friendly : adj;
  feature : int array;
  varea : int array;
  mutable union_memo : Mpl_graph.Ugraph.t option;
}

let deg a v = a.off.(v + 1) - a.off.(v)

let iter a v f =
  for s = a.off.(v) to a.off.(v + 1) - 1 do
    f (Array.unsafe_get a.nbr s)
  done

(* CSR from [len] undirected edge pairs held in two flat endpoint
   arrays. Pairs must be in range, self-loop free, and deduplicated
   (checked by the callers that take user input). *)
let csr_of_pairs ~n eu ev len =
  let cnt = Array.make (n + 1) 0 in
  for e = 0 to len - 1 do
    let u = Array.unsafe_get eu e and v = Array.unsafe_get ev e in
    cnt.(u) <- cnt.(u) + 1;
    cnt.(v) <- cnt.(v) + 1
  done;
  let off = Array.make (n + 1) 0 in
  for v = 0 to n - 1 do
    off.(v + 1) <- off.(v) + cnt.(v)
  done;
  let nbr = Array.make off.(n) 0 in
  Array.blit off 0 cnt 0 (n + 1);
  for e = 0 to len - 1 do
    let u = Array.unsafe_get eu e and v = Array.unsafe_get ev e in
    nbr.(cnt.(u)) <- v;
    cnt.(u) <- cnt.(u) + 1;
    nbr.(cnt.(v)) <- u;
    cnt.(v) <- cnt.(v) + 1
  done;
  for v = 0 to n - 1 do
    if not (Intsort.is_sorted_range nbr off.(v) off.(v + 1)) then
      Intsort.sort_range nbr off.(v) off.(v + 1)
  done;
  { off; nbr }

let csr_of_bufs ~n eu ev =
  csr_of_pairs ~n (Intbuf.data eu) (Intbuf.data ev) (Intbuf.length eu)

let normalize_edges n edges =
  let seen = Hashtbl.create (List.length edges) in
  List.filter
    (fun (u, v) ->
      if u = v then invalid_arg "Decomp_graph: self-loop";
      if u < 0 || v < 0 || u >= n || v >= n then
        invalid_arg "Decomp_graph: vertex out of range";
      let key = (min u v, max u v) in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.add seen key ();
        true
      end)
    edges
  |> List.map (fun (u, v) -> (min u v, max u v))

let csr_of_list ~n edges =
  let len = List.length edges in
  let eu = Array.make (max len 1) 0 and ev = Array.make (max len 1) 0 in
  List.iteri
    (fun i (u, v) ->
      eu.(i) <- u;
      ev.(i) <- v)
    edges;
  csr_of_pairs ~n eu ev len

let of_edges ?(stitch_edges = []) ?(friendly_edges = []) ?feature ~n
    conflict_edges =
  let ce = normalize_edges n conflict_edges in
  let se = normalize_edges n stitch_edges in
  let fe = normalize_edges n friendly_edges in
  let ce_set = Hashtbl.create (List.length ce) in
  List.iter (fun e -> Hashtbl.add ce_set e ()) ce;
  List.iter
    (fun e ->
      if Hashtbl.mem ce_set e then
        invalid_arg "Decomp_graph: edge is both conflict and stitch")
    se;
  let feature =
    match feature with Some f -> f | None -> Array.init n (fun i -> i)
  in
  if Array.length feature <> n then
    invalid_arg "Decomp_graph: feature array length mismatch";
  {
    n;
    conflict = csr_of_list ~n ce;
    stitch = csr_of_list ~n se;
    friendly = csr_of_list ~n fe;
    feature;
    varea = Array.make n 1;
    union_memo = None;
  }

(* Neighbor search + CSR assembly over an already split node set. This
   is the single construction path for every layout-derived graph: the
   whole-layout build and the sharded per-window / border-component
   rebuilds all classify edges with the same distance predicates and
   sort the same CSR runs, which is what makes a reassembled border
   component bit-identical to the matching [subgraph] of an unsharded
   build. *)
let of_nodes ?(obs = Mpl_obs.Obs.null) (split : Mpl_layout.Stitch.t) ~hp
    ~min_s =
  let nodes = split.Mpl_layout.Stitch.nodes in
  let n = Array.length nodes in
  let cu = Intbuf.create () and cv = Intbuf.create () in
  let fu = Intbuf.create () and fv = Intbuf.create () in
  Mpl_obs.Obs.span obs "graph.neighbor_search"
    ~args:[ ("nodes", Mpl_obs.Sink.Int n) ]
    (fun () ->
      let friendly_radius = min_s + hp in
      let index = Grid_index.create ~cell:(max friendly_radius 16) in
      Array.iteri
        (fun i node ->
          Grid_index.add index i (Polygon.bbox node.Mpl_layout.Stitch.shape))
        nodes;
      let min_s2 = min_s * min_s in
      let friendly2 = friendly_radius * friendly_radius in
      Grid_index.iter_pairs index ~radius:friendly_radius (fun i j ->
          let ni = nodes.(i) and nj = nodes.(j) in
          if ni.Mpl_layout.Stitch.feature <> nj.Mpl_layout.Stitch.feature
          then begin
            let d2 =
              Polygon.distance2 ni.Mpl_layout.Stitch.shape
                nj.Mpl_layout.Stitch.shape
            in
            if d2 <= min_s2 then begin
              Intbuf.push cu i;
              Intbuf.push cv j
            end
            else if d2 <= friendly2 then begin
              Intbuf.push fu i;
              Intbuf.push fv j
            end
          end));
  let feature =
    Array.map (fun node -> node.Mpl_layout.Stitch.feature) nodes
  in
  (* The sweep reports each unordered pair once and never a self-loop,
     and stitch edges join distinct segments of one feature while
     conflicts join distinct features — so the CSR can be built directly
     with no normalization pass. *)
  let su = Intbuf.create () and sv = Intbuf.create () in
  List.iter
    (fun (a, b) ->
      Intbuf.push su a;
      Intbuf.push sv b)
    split.Mpl_layout.Stitch.stitch_edges;
  let m = obs.Mpl_obs.Obs.metrics in
  Mpl_obs.Metrics.add (Mpl_obs.Metrics.counter m "graph.nodes") n;
  Mpl_obs.Metrics.add
    (Mpl_obs.Metrics.counter m "graph.conflict_edges")
    (Intbuf.length cu);
  Mpl_obs.Metrics.add
    (Mpl_obs.Metrics.counter m "graph.stitch_edges")
    (Intbuf.length su);
  Mpl_obs.Metrics.add
    (Mpl_obs.Metrics.counter m "graph.friendly_edges")
    (Intbuf.length fu);
  {
    n;
    conflict = csr_of_bufs ~n cu cv;
    stitch = csr_of_bufs ~n su sv;
    friendly = csr_of_bufs ~n fu fv;
    feature;
    varea = Array.map (fun node -> Polygon.area node.Mpl_layout.Stitch.shape) nodes;
    union_memo = None;
  }

let of_layout ?(obs = Mpl_obs.Obs.null) ?max_stitches_per_feature
    (layout : Mpl_layout.Layout.t) ~min_s =
  Mpl_obs.Obs.span obs "graph.build" @@ fun () ->
  let split =
    Mpl_obs.Obs.span obs "graph.stitch_split" (fun () ->
        Mpl_layout.Stitch.split ?max_stitches_per_feature layout ~min_s)
  in
  let hp = layout.Mpl_layout.Layout.tech.Mpl_layout.Layout.half_pitch in
  of_nodes ~obs split ~hp ~min_s

let edges_of (a : adj) =
  let n = Array.length a.off - 1 in
  let out = ref [] in
  for u = n - 1 downto 0 do
    for s = a.off.(u + 1) - 1 downto a.off.(u) do
      let v = a.nbr.(s) in
      if u < v then out := (u, v) :: !out
    done
  done;
  !out

let conflict_edges t = edges_of t.conflict
let stitch_edges t = edges_of t.stitch
let friendly_edges t = edges_of t.friendly

let conflict_degree t v = deg t.conflict v
let stitch_degree t v = deg t.stitch v

let has_conflict t u v =
  (* Adjacency is sorted: binary search. *)
  let a = t.conflict in
  let rec bin lo hi =
    if lo >= hi then false
    else begin
      let mid = (lo + hi) / 2 in
      if a.nbr.(mid) = v then true
      else if a.nbr.(mid) < v then bin (mid + 1) hi
      else bin lo mid
    end
  in
  bin a.off.(u) a.off.(u + 1)

(* Conflict and stitch runs are disjoint and each sorted, so the union
   adjacency is a linear merge per vertex — handed to Ugraph as
   ready-made CSR, skipping its edge buffer entirely. Memoized: the
   division pipeline asks for the union of the same subgraph at up to
   three stages (components, biconnected, GH tree). The value is
   immutable, so a racing duplicate build is merely wasted work. *)
let build_union t =
  let c = t.conflict and s = t.stitch in
  let n = t.n in
  let off = Array.make (n + 1) 0 in
  for v = 0 to n - 1 do
    off.(v + 1) <- off.(v) + deg c v + deg s v
  done;
  let nbr = Array.make off.(n) 0 in
  for v = 0 to n - 1 do
    let i = ref c.off.(v)
    and j = ref s.off.(v)
    and w = ref off.(v) in
    let ci = c.off.(v + 1) and sj = s.off.(v + 1) in
    while !i < ci || !j < sj do
      let from_c =
        !j >= sj || (!i < ci && c.nbr.(!i) < s.nbr.(!j))
      in
      if from_c then begin
        nbr.(!w) <- c.nbr.(!i);
        incr i
      end
      else begin
        nbr.(!w) <- s.nbr.(!j);
        incr j
      end;
      incr w
    done
  done;
  Ugraph.of_csr ~n ~off ~nbr

let union_graph t =
  match t.union_memo with
  | Some ug -> ug
  | None ->
    let ug = build_union t in
    t.union_memo <- Some ug;
    ug

let conflict_graph t =
  Ugraph.of_csr ~n:t.n ~off:t.conflict.off ~nbr:t.conflict.nbr

let subgraph t vs =
  let m = Array.length vs in
  let fwd = Array.make t.n (-1) in
  Array.iteri (fun i v -> fwd.(v) <- i) vs;
  let restrict (a : adj) =
    let off = Array.make (m + 1) 0 in
    for i = 0 to m - 1 do
      let v = vs.(i) in
      let c = ref 0 in
      for s = a.off.(v) to a.off.(v + 1) - 1 do
        if fwd.(a.nbr.(s)) >= 0 then incr c
      done;
      off.(i + 1) <- off.(i) + !c
    done;
    let nbr = Array.make off.(m) 0 in
    let w = ref 0 in
    for i = 0 to m - 1 do
      let v = vs.(i) in
      for s = a.off.(v) to a.off.(v + 1) - 1 do
        let j = fwd.(a.nbr.(s)) in
        if j >= 0 then begin
          nbr.(!w) <- j;
          incr w
        end
      done;
      (* [fwd] is monotone when [vs] is ascending (the common case);
         otherwise restore the sorted-run invariant. *)
      if not (Intsort.is_sorted_range nbr off.(i) off.(i + 1)) then
        Intsort.sort_range nbr off.(i) off.(i + 1)
    done;
    { off; nbr }
  in
  let sub =
    {
      n = m;
      conflict = restrict t.conflict;
      stitch = restrict t.stitch;
      friendly = restrict t.friendly;
      feature = Array.map (fun v -> t.feature.(v)) vs;
      varea = Array.map (fun v -> t.varea.(v)) vs;
      union_memo = None;
    }
  in
  (sub, Array.copy vs)

let pp ppf t =
  let ce = List.length (conflict_edges t) in
  let se = List.length (stitch_edges t) in
  Format.fprintf ppf "decomp_graph(n=%d, ce=%d, se=%d)" t.n ce se
