module Ugraph = Mpl_graph.Ugraph
module Polygon = Mpl_geometry.Polygon
module Grid_index = Mpl_geometry.Grid_index

type t = {
  n : int;
  conflict : int array array;
  stitch : int array array;
  friendly : int array array;
  feature : int array;
}

let normalize_edges n edges =
  let seen = Hashtbl.create (List.length edges) in
  List.filter
    (fun (u, v) ->
      if u = v then invalid_arg "Decomp_graph: self-loop";
      if u < 0 || v < 0 || u >= n || v >= n then
        invalid_arg "Decomp_graph: vertex out of range";
      let key = (min u v, max u v) in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.add seen key ();
        true
      end)
    edges
  |> List.map (fun (u, v) -> (min u v, max u v))

let adjacency n edges =
  let adj = Array.make n [] in
  List.iter
    (fun (u, v) ->
      adj.(u) <- v :: adj.(u);
      adj.(v) <- u :: adj.(v))
    edges;
  Array.map
    (fun l ->
      let a = Array.of_list l in
      Array.sort compare a;
      a)
    adj

let of_edges ?(stitch_edges = []) ?(friendly_edges = []) ?feature ~n
    conflict_edges =
  let ce = normalize_edges n conflict_edges in
  let se = normalize_edges n stitch_edges in
  let fe = normalize_edges n friendly_edges in
  let ce_set = Hashtbl.create (List.length ce) in
  List.iter (fun e -> Hashtbl.add ce_set e ()) ce;
  List.iter
    (fun e ->
      if Hashtbl.mem ce_set e then
        invalid_arg "Decomp_graph: edge is both conflict and stitch")
    se;
  let feature =
    match feature with Some f -> f | None -> Array.init n (fun i -> i)
  in
  if Array.length feature <> n then
    invalid_arg "Decomp_graph: feature array length mismatch";
  {
    n;
    conflict = adjacency n ce;
    stitch = adjacency n se;
    friendly = adjacency n fe;
    feature;
  }

let of_layout ?(obs = Mpl_obs.Obs.null) ?max_stitches_per_feature
    (layout : Mpl_layout.Layout.t) ~min_s =
  Mpl_obs.Obs.span obs "graph.build" @@ fun () ->
  let split =
    Mpl_obs.Obs.span obs "graph.stitch_split" (fun () ->
        Mpl_layout.Stitch.split ?max_stitches_per_feature layout ~min_s)
  in
  let nodes = split.Mpl_layout.Stitch.nodes in
  let n = Array.length nodes in
  let conflicts = ref [] in
  let friendlies = ref [] in
  Mpl_obs.Obs.span obs "graph.neighbor_search"
    ~args:[ ("nodes", Mpl_obs.Sink.Int n) ]
    (fun () ->
      let hp = layout.Mpl_layout.Layout.tech.Mpl_layout.Layout.half_pitch in
      let friendly_radius = min_s + hp in
      let index = Grid_index.create ~cell:(max friendly_radius 16) in
      Array.iteri
        (fun i node ->
          Grid_index.add index i (Polygon.bbox node.Mpl_layout.Stitch.shape))
        nodes;
      let min_s2 = min_s * min_s in
      let friendly2 = friendly_radius * friendly_radius in
      Grid_index.iter_pairs index ~radius:friendly_radius (fun i j ->
          let ni = nodes.(i) and nj = nodes.(j) in
          if ni.Mpl_layout.Stitch.feature <> nj.Mpl_layout.Stitch.feature
          then begin
            let d2 =
              Polygon.distance2 ni.Mpl_layout.Stitch.shape
                nj.Mpl_layout.Stitch.shape
            in
            if d2 <= min_s2 then conflicts := (i, j) :: !conflicts
            else if d2 <= friendly2 then friendlies := (i, j) :: !friendlies
          end));
  let feature =
    Array.map (fun node -> node.Mpl_layout.Stitch.feature) nodes
  in
  let m = obs.Mpl_obs.Obs.metrics in
  Mpl_obs.Metrics.add (Mpl_obs.Metrics.counter m "graph.nodes") n;
  Mpl_obs.Metrics.add
    (Mpl_obs.Metrics.counter m "graph.conflict_edges")
    (List.length !conflicts);
  Mpl_obs.Metrics.add
    (Mpl_obs.Metrics.counter m "graph.stitch_edges")
    (List.length split.Mpl_layout.Stitch.stitch_edges);
  Mpl_obs.Metrics.add
    (Mpl_obs.Metrics.counter m "graph.friendly_edges")
    (List.length !friendlies);
  of_edges ~stitch_edges:split.Mpl_layout.Stitch.stitch_edges
    ~friendly_edges:!friendlies ~feature ~n !conflicts

let edges_of adj =
  let out = ref [] in
  Array.iteri
    (fun u nbrs -> Array.iter (fun v -> if u < v then out := (u, v) :: !out) nbrs)
    adj;
  List.rev !out

let conflict_edges t = edges_of t.conflict
let stitch_edges t = edges_of t.stitch
let friendly_edges t = edges_of t.friendly

let conflict_degree t v = Array.length t.conflict.(v)
let stitch_degree t v = Array.length t.stitch.(v)

let has_conflict t u v =
  (* Adjacency is sorted: binary search. *)
  let a = t.conflict.(u) in
  let rec bin lo hi =
    if lo >= hi then false
    else begin
      let mid = (lo + hi) / 2 in
      if a.(mid) = v then true
      else if a.(mid) < v then bin (mid + 1) hi
      else bin lo mid
    end
  in
  bin 0 (Array.length a)

let union_graph t =
  let g = Ugraph.create t.n in
  List.iter (fun (u, v) -> Ugraph.add_edge g u v) (conflict_edges t);
  List.iter (fun (u, v) -> Ugraph.add_edge g u v) (stitch_edges t);
  g

let conflict_graph t =
  let g = Ugraph.create t.n in
  List.iter (fun (u, v) -> Ugraph.add_edge g u v) (conflict_edges t);
  g

let subgraph t vs =
  let m = Array.length vs in
  let fwd = Hashtbl.create m in
  Array.iteri (fun i v -> Hashtbl.add fwd v i) vs;
  let restrict adj =
    Array.map
      (fun v ->
        let nbrs =
          Array.to_list adj.(v)
          |> List.filter_map (fun u -> Hashtbl.find_opt fwd u)
        in
        let a = Array.of_list nbrs in
        Array.sort compare a;
        a)
      vs
  in
  let sub =
    {
      n = m;
      conflict = restrict t.conflict;
      stitch = restrict t.stitch;
      friendly = restrict t.friendly;
      feature = Array.map (fun v -> t.feature.(v)) vs;
    }
  in
  (sub, Array.copy vs)

let pp ppf t =
  let ce = List.length (conflict_edges t) in
  let se = List.length (stitch_edges t) in
  Format.fprintf ppf "decomp_graph(n=%d, ce=%d, se=%d)" t.n ce se
