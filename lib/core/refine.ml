(* Scaled-cost delta of recoloring vertex [v] to [c]. *)
let move_delta ~ws (g : Decomp_graph.t) colors v c =
  let wc = Coloring.weight_conflict in
  let old_c = colors.(v) in
  if c = old_c then 0
  else begin
    let delta = ref 0 in
    Decomp_graph.iter g.Decomp_graph.conflict v (fun u ->
        if colors.(u) = old_c then delta := !delta - wc
        else if colors.(u) = c then delta := !delta + wc);
    Decomp_graph.iter g.Decomp_graph.stitch v (fun u ->
        if colors.(u) >= 0 then begin
          if colors.(u) = old_c then delta := !delta + ws
          else if colors.(u) = c then delta := !delta - ws
        end);
    !delta
  end

let local_search ?(max_passes = 10) ~k ~alpha (g : Decomp_graph.t) colors =
  let ws = Coloring.stitch_weight ~alpha in
  let colors = Array.copy colors in
  let improved = ref true in
  let passes = ref 0 in
  while !improved && !passes < max_passes do
    improved := false;
    incr passes;
    for v = 0 to g.Decomp_graph.n - 1 do
      let best = ref colors.(v) and best_delta = ref 0 in
      for c = 0 to k - 1 do
        let d = move_delta ~ws g colors v c in
        if d < !best_delta then begin
          best_delta := d;
          best := c
        end
      done;
      if !best <> colors.(v) then begin
        colors.(v) <- !best;
        improved := true
      end
    done
  done;
  colors

let anneal ?(seed = 1) ?(iterations = 20_000) ?(initial_temperature = 2.0)
    ~k ~alpha (g : Decomp_graph.t) colors =
  let n = g.Decomp_graph.n in
  if n = 0 then Array.copy colors
  else begin
    let ws = Coloring.stitch_weight ~alpha in
    let rng = Mpl_util.Rng.create seed in
    let current = Array.copy colors in
    let best = Array.copy colors in
    let best_cost = ref 0 and current_cost = ref 0 in
    (* Track costs as deltas from the starting point; only differences
       matter for acceptance and for the final best-vs-input check. *)
    let t0 = initial_temperature *. float_of_int Coloring.weight_conflict in
    let cooling = exp (log 0.001 /. float_of_int iterations) in
    let temperature = ref t0 in
    for _ = 1 to iterations do
      let v = Mpl_util.Rng.int rng n in
      let c = Mpl_util.Rng.int rng k in
      let d = move_delta ~ws g current v c in
      let accept =
        d <= 0
        || Mpl_util.Rng.float rng 1.0 < exp (-.float_of_int d /. !temperature)
      in
      if accept then begin
        current.(v) <- c;
        current_cost := !current_cost + d;
        if !current_cost < !best_cost then begin
          best_cost := !current_cost;
          Array.blit current 0 best 0 n
        end
      end;
      temperature := !temperature *. cooling
    done;
    best
  end
