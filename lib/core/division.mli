(** Graph division for K-patterning (paper Section 4).

    The pipeline recursively shrinks the decomposition graph before any
    color assignment runs:

    + independent (connected) components;
    + iterative removal of vertices with conflict degree < K and no
      stitch edges (safe: such a vertex always has a conflict-free color
      and contributes no stitch cost, so the reduced optimum equals the
      full optimum);
    + biconnected-component splitting — blocks meet at one articulation
      vertex, and any color permutation aligns a block with its parent
      without changing the block's internal cost;
    + GH-tree based (K-1)-cut removal (paper Algorithm 3 / Theorem 2):
      if the Gomory-Hu tree of a piece has an edge of weight < K, one
      max-flow recovers an actual minimum cut; both sides are solved
      recursively and reconnected by *color rotation* — each crossing
      conflict edge forbids exactly one of the K rotations, so with at
      most K-1 crossing edges a conflict-free rotation always exists
      (Lemma 1); among those the rotation with the cheapest crossing
      stitch cost is chosen.

    Every leaf piece is handed to the provided color-assignment
    [solver]. *)

type stages = {
  use_components : bool;
  use_peel : bool;
  use_biconnected : bool;
  use_ghtree : bool;
}

val all_stages : stages
val no_stages : stages
(** For ablation: the solver sees whole components / the whole graph. *)

type stats = {
  mutable pieces : int;  (** leaf pieces handed to the solver *)
  mutable largest_piece : int;
  mutable peeled : int;  (** vertices removed by low-degree peeling *)
  mutable cuts : int;  (** GH-tree splits performed *)
}

val plan :
  ?obs:Mpl_obs.Obs.t ->
  ?stages:stages ->
  ?stats:stats ->
  ?bounded_cuts:bool ->
  k:int ->
  alpha:float ->
  emit:(Decomp_graph.t -> unit -> int array) ->
  Decomp_graph.t ->
  unit ->
  int array
(** Streaming producer form of {!assign}. [plan ~emit g] runs the whole
    division analysis immediately — every stage is color-independent —
    and hands each leaf piece to [emit] the moment it is carved out.
    [emit sub] starts (or performs) the solve and returns a thunk for
    the piece's coloring; [plan] returns the merge thunk, which forces
    the leaf thunks in exactly the order the eager recursion consumed
    them and reassembles the full coloring (component scatter, peel
    replay, block rotation alignment, GH-cut best-rotation stitching).
    The merge result is bit-identical to [assign] with the same solver,
    no matter when or on which domain the emitted work actually runs —
    this is what lets the decomposer overlap division of later
    components with solving of earlier pieces. [stats] fields [pieces],
    [largest_piece], [peeled] and [cuts] are all fully counted by the
    time [plan] returns. *)

val assign :
  ?obs:Mpl_obs.Obs.t ->
  ?stages:stages ->
  ?stats:stats ->
  ?bounded_cuts:bool ->
  k:int ->
  alpha:float ->
  solver:(Decomp_graph.t -> int array) ->
  Decomp_graph.t ->
  int array
(** Divide, color every piece with [solver], reassemble. The result
    assigns every vertex a color in [0..k-1]. Equivalent to {!plan}
    with an [emit] that solves inline at emission.

    [bounded_cuts] (default [true]) caps every Gusfield max-flow of the
    GH-tree stage at [k]: only cuts strictly below [k] are actionable
    (Theorem 2), so Dinic may stop as soon as the flow reaches [k] —
    O(k*E) per flow instead of O(V^2*E). Flows that hit the cap are
    counted in the [division.bounded_exits] metric. [false] rebuilds the
    exact (unbounded) tree; both settings select identical cuts, which
    the test suite checks end-to-end.

    With [obs], each stage's own analysis work (component scan, peel
    fixpoint, block decomposition, GH tree and cut recovery — never the
    recursive solves underneath) runs under [division.components] /
    [division.peel] / [division.biconnected] / [division.ghtree] spans,
    and the registry accumulates [division.pieces], [division.peeled],
    [division.bicon_splits], [division.gh_cuts],
    [division.maxflow_calls], [division.bounded_exits] counters plus a
    [division.piece_size] histogram of leaf sizes. *)

val fresh_stats : unit -> stats

val best_rotation :
  k:int ->
  alpha:float ->
  int array ->
  int array ->
  (int * int) list ->
  (int * int) list ->
  int
(** [best_rotation ~k ~alpha colors_a colors_b crossing_conflict
    crossing_stitch] is the rotation [r] minimizing the crossing cost of
    recombining two independently colored sides: each crossing conflict
    edge [(a, b)] (an index into [colors_a] paired with an index into
    [colors_b]) costs {!Coloring.weight_conflict} when
    [colors_a.(a) = (colors_b.(b) + r) mod k], each crossing stitch edge
    costs {!Coloring.stitch_weight} when the rotated colors differ. Each
    crossing conflict edge forbids exactly one rotation, so with fewer
    than [k] of them a conflict-free rotation exists (paper Lemma 1).
    This is the recombination rule of the GH-cut stage, exposed for the
    sharded decomposer's window-border reconciliation. *)
