module Rect = Mpl_geometry.Rect
module Polygon = Mpl_geometry.Polygon
module Layout = Mpl_layout.Layout
module Layout_io = Mpl_layout.Layout_io
module Rng = Mpl_util.Rng

type edit =
  | Add of Polygon.t
  | Remove of int
  | Move of { index : int; dx : int; dy : int }

(* ------------------------------------------------------------------ *)
(* Edit-script text format                                            *)
(* ------------------------------------------------------------------ *)

let edits_to_string edits =
  let b = Buffer.create 256 in
  List.iter
    (fun e ->
      match e with
      | Remove i -> Buffer.add_string b (Printf.sprintf "REMOVE %d\n" i)
      | Move { index; dx; dy } ->
          Buffer.add_string b (Printf.sprintf "MOVE %d %d %d\n" index dx dy)
      | Add p ->
          let rects = Polygon.rects p in
          Buffer.add_string b (Printf.sprintf "ADD %d" (List.length rects));
          List.iter
            (fun r ->
              Buffer.add_string b
                (Printf.sprintf " %d %d %d %d" r.Rect.x0 r.Rect.y0 r.Rect.x1
                   r.Rect.y1))
            rects;
          Buffer.add_char b '\n')
    edits;
  Buffer.contents b

let parse_edits text =
  let err lineno msg =
    Error (Printf.sprintf "edit script line %d: %s" lineno msg)
  in
  let lines = String.split_on_char '\n' text in
  let rec go lineno acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
        let line =
          match String.index_opt line '\r' with
          | Some i -> String.sub line 0 i
          | None -> line
        in
        let line = String.trim line in
        if line = "" || line.[0] = '#' then go (lineno + 1) acc rest
        else
          let toks =
            String.split_on_char ' ' line |> List.filter (fun s -> s <> "")
          in
          let int s =
            match int_of_string_opt s with
            | Some v -> Ok v
            | None -> Error (Printf.sprintf "bad integer %S" s)
          in
          let ( let* ) r f =
            match r with Ok v -> f v | Error m -> err lineno m
          in
          match toks with
          | [ "REMOVE"; i ] ->
              let* i = int i in
              go (lineno + 1) (Remove i :: acc) rest
          | [ "MOVE"; i; dx; dy ] ->
              let* i = int i in
              let* dx = int dx in
              let* dy = int dy in
              go (lineno + 1) (Move { index = i; dx; dy } :: acc) rest
          | "ADD" :: n :: coords -> (
              let* n = int n in
              if n <= 0 then err lineno "ADD needs at least one rect"
              else if List.length coords <> 4 * n then
                err lineno
                  (Printf.sprintf "ADD %d expects %d coordinates" n (4 * n))
              else
                let* vals =
                  List.fold_left
                    (fun acc s ->
                      match acc with
                      | Error _ -> acc
                      | Ok vs -> (
                          match int_of_string_opt s with
                          | Some v -> Ok (v :: vs)
                          | None -> Error (Printf.sprintf "bad integer %S" s)))
                    (Ok []) coords
                in
                let vals = Array.of_list (List.rev vals) in
                match
                  let rects = ref [] in
                  for j = n - 1 downto 0 do
                    rects :=
                      Rect.make ~x0:vals.((4 * j) + 0) ~y0:vals.((4 * j) + 1)
                        ~x1:vals.((4 * j) + 2) ~y1:vals.((4 * j) + 3)
                      :: !rects
                  done;
                  Polygon.of_rects !rects
                with
                | p -> go (lineno + 1) (Add p :: acc) rest
                | exception Invalid_argument m -> err lineno m)
          | _ -> err lineno (Printf.sprintf "unrecognized edit %S" line))
  in
  try go 1 [] lines with Failure m -> Error (Printf.sprintf "edit script: %s" m)

(* ------------------------------------------------------------------ *)
(* Applying edits                                                     *)
(* ------------------------------------------------------------------ *)

let apply (base : Layout.t) edits =
  let nf = Array.length base.Layout.features in
  let slot = Array.make nf `Keep in
  let added = ref [] and n_added = ref 0 in
  let error = ref None in
  let fail msg = if !error = None then error := Some msg in
  let claim i what =
    if i < 0 || i >= nf then
      fail (Printf.sprintf "%s %d: index out of range (0..%d)" what i (nf - 1))
    else if slot.(i) <> `Keep then
      fail (Printf.sprintf "%s %d: feature edited twice" what i)
  in
  List.iter
    (fun e ->
      match e with
      | Remove i ->
          claim i "REMOVE";
          if !error = None then slot.(i) <- `Removed
      | Move { index = i; dx; dy } ->
          claim i "MOVE";
          if !error = None then (
            let moved =
              Polygon.rects base.Layout.features.(i)
              |> List.map (fun r -> Rect.translate r ~dx ~dy)
              |> Polygon.of_rects
            in
            slot.(i) <- `Moved moved)
      | Add p ->
          incr n_added;
          added := p :: !added)
    edits;
  match !error with
  | Some msg -> Error msg
  | None ->
      let new_of_old = Array.make nf None in
      let out = ref [] and next = ref 0 in
      for i = 0 to nf - 1 do
        match slot.(i) with
        | `Removed -> ()
        | `Keep ->
            new_of_old.(i) <- Some !next;
            incr next;
            out := base.Layout.features.(i) :: !out
        | `Moved p ->
            new_of_old.(i) <- Some !next;
            incr next;
            out := p :: !out
      done;
      List.iter (fun p -> out := p :: !out) (List.rev !added);
      let features = Array.of_list (List.rev !out) in
      let layout =
        Layout.make ~name:base.Layout.name base.Layout.tech
          (Array.to_list features)
      in
      Ok (layout, new_of_old)

let dirty_rects (base : Layout.t) edits =
  let nf = Array.length base.Layout.features in
  let acc = ref [] in
  let push_poly p = acc := List.rev_append (Polygon.rects p) !acc in
  List.iter
    (fun e ->
      match e with
      | Add p -> push_poly p
      | Remove i -> if i >= 0 && i < nf then push_poly base.Layout.features.(i)
      | Move { index = i; dx; dy } ->
          if i >= 0 && i < nf then (
            push_poly base.Layout.features.(i);
            List.iter
              (fun r -> acc := Rect.translate r ~dx ~dy :: !acc)
              (Polygon.rects base.Layout.features.(i))))
    edits;
  !acc

(* ------------------------------------------------------------------ *)
(* Deterministic edit generation                                      *)
(* ------------------------------------------------------------------ *)

let generate ~seed ~count (base : Layout.t) =
  let rng = Rng.create (0x65636f + (seed * 0x9e3779b)) in
  let nf = Array.length base.Layout.features in
  let used = Hashtbl.create (2 * count) in
  let pitch = max 1 base.Layout.tech.Layout.half_pitch in
  let wm = max 1 base.Layout.tech.Layout.min_width in
  (* An ECO reworks one region of the die, not uniformly sprinkled
     features: confine every edit to the smallest square window around
     a seed-chosen anchor that holds ~8x the requested edit count, so
     the dirty region scales with the edit, not with the die. *)
  let cand =
    if nf = 0 then [||]
    else begin
      let cx = Array.make nf 0 and cy = Array.make nf 0 in
      Array.iteri
        (fun i p ->
          let bb = Polygon.bbox p in
          cx.(i) <- (bb.Rect.x0 + bb.Rect.x1) / 2;
          cy.(i) <- (bb.Rect.y0 + bb.Rect.y1) / 2)
        base.Layout.features;
      let a = Rng.int rng nf in
      let ax = cx.(a) and ay = cy.(a) in
      let want = min nf (max 16 (count * 4)) in
      let inside r i = abs (cx.(i) - ax) <= r && abs (cy.(i) - ay) <= r in
      let n_inside r =
        let n = ref 0 in
        for i = 0 to nf - 1 do
          if inside r i then incr n
        done;
        !n
      in
      let r = ref (16 * pitch) in
      while n_inside !r < want && !r < 1 lsl 28 do
        r := !r * 2
      done;
      let out = ref [] in
      for i = nf - 1 downto 0 do
        if inside !r i then out := i :: !out
      done;
      Array.of_list !out
    end
  in
  let ncand = Array.length cand in
  (* pick an unedited window feature; None once (almost) all are taken *)
  let pick () =
    if ncand = 0 || Hashtbl.length used >= ncand then None
    else
      let rec try_ n =
        if n = 0 then None
        else
          let i = cand.(Rng.int rng ncand) in
          if Hashtbl.mem used i then try_ (n - 1) else Some i
      in
      try_ 64
  in
  let add_near () =
    let bx, by =
      if ncand = 0 then (0, 0)
      else
        let anchor = cand.(Rng.int rng ncand) in
        let bb = Polygon.bbox base.Layout.features.(anchor) in
        (bb.Rect.x1 + (pitch * (2 + Rng.int rng 6)), bb.Rect.y0)
    in
    let len = wm * (2 + Rng.int rng 6) in
    let horiz = Rng.bool rng in
    let w, h = if horiz then (len, wm) else (wm, len) in
    Add (Polygon.of_rect (Rect.make ~x0:bx ~y0:by ~x1:(bx + w) ~y1:(by + h)))
  in
  let rec edits_for n acc =
    if n = 0 then List.rev acc
    else
      let roll = Rng.int rng 10 in
      let e =
        if roll < 5 then
          match pick () with
          | None -> add_near ()
          | Some i ->
              Hashtbl.replace used i ();
              let delta () =
                let d = Rng.range rng (-3) 3 in
                if d = 0 then pitch else d * pitch
              in
              Move { index = i; dx = delta (); dy = delta () }
        else if roll < 8 then add_near ()
        else
          match pick () with
          | None -> add_near ()
          | Some i ->
              Hashtbl.replace used i ();
              Remove i
      in
      edits_for (n - 1) (e :: acc)
  in
  edits_for (max 0 count) []

(* ------------------------------------------------------------------ *)
(* Sessions                                                           *)
(* ------------------------------------------------------------------ *)

type comp = {
  features : int array;
  colors : int array;
  conflicts : int;
  stitches : int;
  scaled : int;
}

type session = {
  layout_text : string;
  layout_hash : string;
  min_s : int;
  salt : string;
  seg_counts : int array;
  comps : comp array;
}

let hash_layout layout = Digest.to_hex (Digest.string (Layout_io.to_string layout))

exception Bad_file of string

let magic = "mpld-eco-session 1"

let ints_line tag arr =
  let b = Buffer.create (16 + (Array.length arr * 4)) in
  Buffer.add_string b tag;
  Buffer.add_char b ' ';
  Buffer.add_string b (string_of_int (Array.length arr));
  Array.iter
    (fun v ->
      Buffer.add_char b ' ';
      Buffer.add_string b (string_of_int v))
    arr;
  Buffer.add_char b '\n';
  Buffer.contents b

let body_of_session s =
  let b = Buffer.create (String.length s.layout_text + 4096) in
  Buffer.add_string b (magic ^ "\n");
  Buffer.add_string b (Printf.sprintf "hash %s\n" s.layout_hash);
  Buffer.add_string b (Printf.sprintf "mins %d\n" s.min_s);
  Buffer.add_string b (Printf.sprintf "salt %s\n" s.salt);
  Buffer.add_string b (ints_line "segs" s.seg_counts);
  Buffer.add_string b
    (Printf.sprintf "layout %d\n" (String.length s.layout_text));
  Buffer.add_string b s.layout_text;
  Buffer.add_char b '\n';
  Buffer.add_string b (Printf.sprintf "comps %d\n" (Array.length s.comps));
  Array.iter
    (fun c ->
      Buffer.add_string b
        (Printf.sprintf "C %d %d %d\n" c.conflicts c.stitches c.scaled);
      Buffer.add_string b (ints_line "F" c.features);
      Buffer.add_string b (ints_line "K" c.colors))
    s.comps;
  Buffer.contents b

let save s path =
  let body = body_of_session s in
  let sum = Digest.to_hex (Digest.string body) in
  (* Atomic publish: write to a sibling temp file, then rename. *)
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc body;
      output_string oc (Printf.sprintf "sum %s\n" sum);
      flush oc);
  Sys.rename tmp path

(* Cursor-based reader over the whole file: the layout block is raw
   length-prefixed bytes, so a plain line loop cannot parse it. *)
type cursor = { buf : string; mutable pos : int }

let bad fmt = Printf.ksprintf (fun m -> raise (Bad_file m)) fmt

let read_line cur =
  if cur.pos >= String.length cur.buf then bad "truncated file"
  else
    match String.index_from_opt cur.buf cur.pos '\n' with
    | None ->
        let l = String.sub cur.buf cur.pos (String.length cur.buf - cur.pos) in
        cur.pos <- String.length cur.buf;
        l
    | Some i ->
        let l = String.sub cur.buf cur.pos (i - cur.pos) in
        cur.pos <- i + 1;
        l

let read_raw cur n =
  if n < 0 || cur.pos + n > String.length cur.buf then bad "truncated layout block"
  else begin
    let s = String.sub cur.buf cur.pos n in
    cur.pos <- cur.pos + n;
    s
  end

let expect_tag tag line =
  let tl = String.length tag in
  if
    String.length line > tl
    && String.sub line 0 tl = tag
    && line.[tl] = ' '
  then String.sub line (tl + 1) (String.length line - tl - 1)
  else bad "expected %S line, got %S" tag line

let parse_int what s =
  match int_of_string_opt s with
  | Some v -> v
  | None -> bad "bad %s %S" what s

let parse_ints tag line =
  let rest = expect_tag tag line in
  let toks =
    String.split_on_char ' ' rest |> List.filter (fun s -> s <> "")
  in
  match toks with
  | [] -> bad "empty %S line" tag
  | n :: vals ->
      let n = parse_int "count" n in
      if List.length vals <> n then bad "%S line length mismatch" tag
      else Array.of_list (List.map (parse_int "value") vals)

let load path =
  let ic = open_in_bin path in
  let raw =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  (* split off the trailing "sum <hex>\n" line and verify the body *)
  let sum_off =
    let no_nl =
      if String.length raw > 0 && raw.[String.length raw - 1] = '\n' then
        String.sub raw 0 (String.length raw - 1)
      else raw
    in
    match String.rindex_opt no_nl '\n' with
    | Some i -> i + 1
    | None -> bad "missing checksum line"
  in
  let body = String.sub raw 0 sum_off in
  let sum_line =
    String.trim (String.sub raw sum_off (String.length raw - sum_off))
  in
  let sum = expect_tag "sum" sum_line in
  if Digest.to_hex (Digest.string body) <> sum then bad "checksum mismatch";
  let cur = { buf = body; pos = 0 } in
  if read_line cur <> magic then bad "not an mpld eco session file";
  let layout_hash = expect_tag "hash" (read_line cur) in
  let min_s = parse_int "min_s" (expect_tag "mins" (read_line cur)) in
  let salt = expect_tag "salt" (read_line cur) in
  let seg_counts = parse_ints "segs" (read_line cur) in
  let nbytes =
    parse_int "layout length" (expect_tag "layout" (read_line cur))
  in
  let layout_text = read_raw cur nbytes in
  if read_line cur <> "" then bad "layout block not newline-terminated";
  if Digest.to_hex (Digest.string layout_text) <> layout_hash then
    bad "layout hash mismatch";
  let ncomps = parse_int "comps" (expect_tag "comps" (read_line cur)) in
  if ncomps < 0 then bad "negative component count";
  let nf = Array.length seg_counts in
  let comps =
    Array.init ncomps (fun _ ->
        let hdr = expect_tag "C" (read_line cur) in
        let conflicts, stitches, scaled =
          match
            String.split_on_char ' ' hdr |> List.filter (fun s -> s <> "")
          with
          | [ a; b; c ] ->
              ( parse_int "conflicts" a,
                parse_int "stitches" b,
                parse_int "scaled" c )
          | _ -> bad "bad component header %S" hdr
        in
        let features = parse_ints "F" (read_line cur) in
        let colors = parse_ints "K" (read_line cur) in
        let segs =
          Array.fold_left
            (fun acc f ->
              if f < 0 || f >= nf then bad "feature index %d out of range" f
              else acc + seg_counts.(f))
            0 features
        in
        if Array.length colors <> segs then
          bad "component colors/segments mismatch";
        { features; colors; conflicts; stitches; scaled })
  in
  { layout_text; layout_hash; min_s; salt; seg_counts; comps }
