module Connectivity = Mpl_graph.Connectivity
module Biconnected = Mpl_graph.Biconnected
module Gomory_hu = Mpl_graph.Gomory_hu
module Maxflow = Mpl_graph.Maxflow

type stages = {
  use_components : bool;
  use_peel : bool;
  use_biconnected : bool;
  use_ghtree : bool;
}

let all_stages =
  { use_components = true; use_peel = true; use_biconnected = true; use_ghtree = true }

let no_stages =
  {
    use_components = false;
    use_peel = false;
    use_biconnected = false;
    use_ghtree = false;
  }

type stats = {
  mutable pieces : int;
  mutable largest_piece : int;
  mutable peeled : int;
  mutable cuts : int;
}

let fresh_stats () = { pieces = 0; largest_piece = 0; peeled = 0; cuts = 0 }

(* Division-level peel: only vertices with NO stitch edges qualify (the
   reduced problem then has exactly the same optimum), unlike Algorithm
   2's internal d_stit < 2 rule which is heuristic. *)
let peel ~k (g : Decomp_graph.t) =
  let n = g.Decomp_graph.n in
  let alive = Array.make n true in
  let dconf = Array.init n (Decomp_graph.deg g.Decomp_graph.conflict) in
  let stack = ref [] in
  let queue = Queue.create () in
  let queued = Array.make n false in
  let removable v =
    alive.(v) && dconf.(v) < k && Decomp_graph.deg g.Decomp_graph.stitch v = 0
  in
  for v = 0 to n - 1 do
    if removable v then begin
      Queue.add v queue;
      queued.(v) <- true
    end
  done;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    queued.(v) <- false;
    if removable v then begin
      alive.(v) <- false;
      stack := v :: !stack;
      Decomp_graph.iter g.Decomp_graph.conflict v (fun u ->
          if alive.(u) then begin
            dconf.(u) <- dconf.(u) - 1;
            if removable u && not queued.(u) then begin
              Queue.add u queue;
              queued.(u) <- true
            end
          end)
    end
  done;
  (alive, !stack)

(* Conflict-free color for a popped vertex, friendly-tie-broken. *)
let pop_color ~k (g : Decomp_graph.t) colors v =
  let wc = Coloring.weight_conflict in
  let best = ref 0 and best_pen = ref max_int in
  for c = 0 to k - 1 do
    let pen = ref 0 in
    Decomp_graph.iter g.Decomp_graph.conflict v (fun u ->
        if colors.(u) = c then pen := !pen + wc);
    Decomp_graph.iter g.Decomp_graph.friendly v (fun u ->
        if colors.(u) = c then pen := !pen - 1);
    if !pen < !best_pen then begin
      best_pen := !pen;
      best := c
    end
  done;
  !best

(* Rotation of side-B colors minimizing the crossing cost; crossing
   conflict edges each forbid exactly one rotation, so with fewer than k
   of them a conflict-free rotation exists (paper Lemma 1). *)
let best_rotation ~k ~alpha colors_a colors_b crossing_conflict crossing_stitch =
  let wc = Coloring.weight_conflict in
  let ws = Coloring.stitch_weight ~alpha in
  let best_r = ref 0 and best_cost = ref max_int in
  for r = 0 to k - 1 do
    let cost = ref 0 in
    List.iter
      (fun (a, b) ->
        if colors_a.(a) = (colors_b.(b) + r) mod k then cost := !cost + wc)
      crossing_conflict;
    List.iter
      (fun (a, b) ->
        if colors_a.(a) <> (colors_b.(b) + r) mod k then cost := !cost + ws)
      crossing_stitch;
    if !cost < !best_cost then begin
      best_cost := !cost;
      best_r := r
    end
  done;
  !best_r

(* The division pipeline is a two-phase producer. [plan ~emit g] runs
   ALL structural analysis up front — component scan, peel fixpoint,
   block decomposition, GH trees, cut recovery, crossing-edge collection
   — none of which depends on any color. Every leaf piece is handed to
   [emit] the moment it is carved out; [emit] returns a thunk for that
   piece's eventual coloring (it may solve inline, or submit to a pool
   and return the join). [plan] returns the merge thunk, which forces
   the leaf thunks in exactly the order the eager recursion consumed
   them and reassembles: component scatter, core-then-popped peel
   replay, block-cut-tree BFS rotation alignment, GH-cut best-rotation
   stitching. Because analysis is color-independent and the merge
   consumes results in the plan's deterministic emit order, [plan]-then-
   [join] computes bit-identical colors to the old interleaved
   recursion — regardless of when or where the emitted thunks actually
   run. *)
let plan ?(obs = Mpl_obs.Obs.null) ?(stages = all_stages) ?stats
    ?(bounded_cuts = true) ~k ~alpha ~emit (g : Decomp_graph.t) =
  if k < 2 then invalid_arg "Division.plan: k < 2";
  let stats = match stats with Some s -> s | None -> fresh_stats () in
  (* Metric handles resolve to no-ops on a null registry. The stage
     spans below cover only each stage's own analysis (component scan,
     peel fixpoint, block decomposition, GH tree + cut recovery), never
     the emitted solves — so phase totals don't multiply count nested
     work. *)
  let m = obs.Mpl_obs.Obs.metrics in
  let c_pieces = Mpl_obs.Metrics.counter m "division.pieces" in
  let c_peeled = Mpl_obs.Metrics.counter m "division.peeled" in
  let c_bicon = Mpl_obs.Metrics.counter m "division.bicon_splits" in
  let c_cuts = Mpl_obs.Metrics.counter m "division.gh_cuts" in
  let c_maxflow = Mpl_obs.Metrics.counter m "division.maxflow_calls" in
  let c_bounded = Mpl_obs.Metrics.counter m "division.bounded_exits" in
  let h_size = Mpl_obs.Metrics.histogram m "division.piece_size" in
  let leaf sub =
    stats.pieces <- stats.pieces + 1;
    if sub.Decomp_graph.n > stats.largest_piece then
      stats.largest_piece <- sub.Decomp_graph.n;
    Mpl_obs.Metrics.incr c_pieces;
    Mpl_obs.Metrics.observe h_size (float_of_int sub.Decomp_graph.n);
    let th = emit sub in
    fun () ->
      let colors = th () in
      if Array.length colors <> sub.Decomp_graph.n then
        failwith
          (Printf.sprintf
             "Division.leaf: solver returned %d colors for a %d-vertex piece"
             (Array.length colors) sub.Decomp_graph.n);
      colors
  in
  let rec conquer sub =
    if stages.use_components then begin
      let comps =
        Mpl_obs.Obs.span obs "division.components" (fun () ->
            Connectivity.components (Decomp_graph.union_graph sub))
      in
      if Array.length comps > 1 then begin
        let parts =
          Array.map
            (fun comp ->
              let piece, back = Decomp_graph.subgraph sub comp in
              (connected piece, back))
            comps
        in
        fun () ->
          let colors = Array.make sub.Decomp_graph.n (-1) in
          Array.iter
            (fun (th, back) ->
              let pc = th () in
              Array.iteri (fun i v -> colors.(v) <- pc.(i)) back)
            parts;
          colors
      end
      else connected sub
    end
    else connected sub
  and connected sub =
    if stages.use_peel then begin
      let alive, stack =
        Mpl_obs.Obs.span obs "division.peel" (fun () -> peel ~k sub)
      in
      match stack with
      | [] -> blocks sub
      | _ ->
        stats.peeled <- stats.peeled + List.length stack;
        Mpl_obs.Metrics.add c_peeled (List.length stack);
        let core =
          Array.of_list
            (List.filter
               (fun v -> alive.(v))
               (List.init sub.Decomp_graph.n (fun v -> v)))
        in
        let core_th =
          if Array.length core > 0 then begin
            let piece, back = Decomp_graph.subgraph sub core in
            Some (conquer piece, back)
          end
          else None
        in
        fun () ->
          let colors = Array.make sub.Decomp_graph.n (-1) in
          (match core_th with
          | Some (th, back) ->
            let pc = th () in
            Array.iteri (fun i v -> colors.(v) <- pc.(i)) back
          | None -> ());
          List.iter (fun v -> colors.(v) <- pop_color ~k sub colors v) stack;
          colors
    end
    else blocks sub
  and blocks sub =
    if stages.use_biconnected then begin
      let bl =
        Mpl_obs.Obs.span obs "division.biconnected" (fun () ->
            Array.of_list (Biconnected.blocks (Decomp_graph.union_graph sub)))
      in
      if Array.length bl <= 1 then ghtree sub
      else begin
        Mpl_obs.Metrics.add c_bicon (Array.length bl - 1);
        (* BFS over the block-cut tree so every non-root block meets
           exactly one pre-colored (articulation) vertex. The traversal
           is purely structural, so it runs at plan time; the merge
           replays the blocks in the same visit order, aligning each
           with the already-colored shared vertex. *)
        let blocks_of = Array.make sub.Decomp_graph.n [] in
        Array.iteri
          (fun bi verts ->
            Array.iter (fun v -> blocks_of.(v) <- bi :: blocks_of.(v)) verts)
          bl;
        let visited = Array.make (Array.length bl) false in
        let queue = Queue.create () in
        let order = ref [] in
        for start = 0 to Array.length bl - 1 do
          if not visited.(start) then begin
            visited.(start) <- true;
            Queue.add start queue;
            while not (Queue.is_empty queue) do
              let bi = Queue.pop queue in
              let verts = bl.(bi) in
              let piece, back = Decomp_graph.subgraph sub verts in
              order := (connected piece, back) :: !order;
              Array.iter
                (fun v ->
                  List.iter
                    (fun bj ->
                      if not visited.(bj) then begin
                        visited.(bj) <- true;
                        Queue.add bj queue
                      end)
                    blocks_of.(v))
                verts
            done
          end
        done;
        let order = List.rev !order in
        fun () ->
          let colors = Array.make sub.Decomp_graph.n (-1) in
          List.iter
            (fun (th, back) ->
              let pc = th () in
              (* Align with the already-colored shared vertex, if any. *)
              let rotation = ref 0 in
              Array.iteri
                (fun i v ->
                  if colors.(v) >= 0 && !rotation = 0 then
                    rotation := ((colors.(v) - pc.(i)) mod k + k) mod k)
                back;
              Array.iteri
                (fun i v ->
                  if colors.(v) < 0 then colors.(v) <- (pc.(i) + !rotation) mod k)
                back)
            order;
          colors
      end
    end
    else ghtree sub
  and ghtree sub =
    if stages.use_ghtree && sub.Decomp_graph.n >= 2 then begin
      let ug, best =
        Mpl_obs.Obs.span obs "division.ghtree"
          ~args:[ ("n", Mpl_obs.Sink.Int sub.Decomp_graph.n) ]
          (fun () ->
            let ug = Decomp_graph.union_graph sub in
            (* Only cuts strictly below k are actionable, so cap each
               Gusfield max-flow at k: Dinic runs O(k*E) instead of
               O(V^2*E), and [capped] counts flows that hit the bound
               (recorded as "at least k", which Theorem 2 never needs to
               distinguish further). *)
            let ght =
              Gomory_hu.build ?bound:(if bounded_cuts then Some k else None) ug
            in
            Mpl_obs.Metrics.add c_bounded (Gomory_hu.capped ght);
            (* Gusfield's construction runs one max-flow per non-root
               vertex. *)
            Mpl_obs.Metrics.add c_maxflow (max 0 (sub.Decomp_graph.n - 1));
            let edges = Gomory_hu.tree_edges ght in
            let best = ref None in
            Array.iter
              (fun (v, p, w) ->
                match !best with
                | Some (_, _, bw) when bw <= w -> ()
                | _ -> if w < k then best := Some (v, p, w))
              edges;
            (ug, !best))
      in
      match best with
      | None -> leaf sub
      | Some (s, t, _) ->
        stats.cuts <- stats.cuts + 1;
        Mpl_obs.Metrics.incr c_cuts;
        (* Gusfield trees are only flow-equivalent: recover an actual
           minimum cut with one more max-flow before splitting. *)
        let side =
          Mpl_obs.Obs.span obs "division.ghtree" ~cat:"division"
            (fun () ->
              let net = Maxflow.of_ugraph ug in
              let _ = Maxflow.max_flow net ~s ~t in
              Mpl_obs.Metrics.incr c_maxflow;
              Maxflow.min_cut_side net ~s)
        in
        let in_a = Array.make sub.Decomp_graph.n false in
        Array.iter (fun v -> in_a.(v) <- true) side;
        let part flag =
          Array.of_list
            (List.filter
               (fun v -> in_a.(v) = flag)
               (List.init sub.Decomp_graph.n (fun v -> v)))
        in
        let va = part true and vb = part false in
        let piece_a, back_a = Decomp_graph.subgraph sub va in
        let piece_b, back_b = Decomp_graph.subgraph sub vb in
        let th_a = conquer piece_a in
        let th_b = conquer piece_b in
        (* Collect crossing edges expressed in local (A-global, B-local)
           indices for the rotation scan — structural, so plan-time. *)
        let pos_b = Hashtbl.create (Array.length vb) in
        Array.iteri (fun i v -> Hashtbl.add pos_b v i) back_b;
        let crossing edges_of =
          List.filter_map
            (fun (u, v) ->
              match (in_a.(u), in_a.(v)) with
              | true, false -> Some (u, Hashtbl.find pos_b v)
              | false, true -> Some (v, Hashtbl.find pos_b u)
              | true, true | false, false -> None)
            edges_of
        in
        let cross_conf = crossing (Decomp_graph.conflict_edges sub) in
        let cross_stit = crossing (Decomp_graph.stitch_edges sub) in
        fun () ->
          let ca = th_a () in
          let cb = th_b () in
          let colors = Array.make sub.Decomp_graph.n (-1) in
          Array.iteri (fun i v -> colors.(v) <- ca.(i)) back_a;
          let r = best_rotation ~k ~alpha colors cb cross_conf cross_stit in
          Array.iteri (fun i v -> colors.(v) <- (cb.(i) + r) mod k) back_b;
          colors
    end
    else leaf sub
  in
  conquer g

(* Eager sequential form. Output-identical to [plan] with an [emit]
   that solves inline (the invariance test suite checks this end to
   end), but implemented as the historical interleaved recursion: each
   subgraph dies as soon as its subtree is colored, where [plan]'s
   deferred join thunks keep every intermediate subgraph live until the
   final merge — measurably slower (~1.7x on the S-circuit suite) from
   promotion and major-GC pressure alone. The sequential path is the
   reproducibility baseline and the single-core hot path, so it keeps
   the allocation-friendly shape; the engine path pays [plan]'s
   retention cost only where division genuinely overlaps solving. *)
let assign ?(obs = Mpl_obs.Obs.null) ?(stages = all_stages) ?stats
    ?(bounded_cuts = true) ~k ~alpha ~solver (g : Decomp_graph.t) =
  if k < 2 then invalid_arg "Division.assign: k < 2";
  let stats = match stats with Some s -> s | None -> fresh_stats () in
  let m = obs.Mpl_obs.Obs.metrics in
  let c_pieces = Mpl_obs.Metrics.counter m "division.pieces" in
  let c_peeled = Mpl_obs.Metrics.counter m "division.peeled" in
  let c_bicon = Mpl_obs.Metrics.counter m "division.bicon_splits" in
  let c_cuts = Mpl_obs.Metrics.counter m "division.gh_cuts" in
  let c_maxflow = Mpl_obs.Metrics.counter m "division.maxflow_calls" in
  let c_bounded = Mpl_obs.Metrics.counter m "division.bounded_exits" in
  let h_size = Mpl_obs.Metrics.histogram m "division.piece_size" in
  let leaf sub =
    stats.pieces <- stats.pieces + 1;
    if sub.Decomp_graph.n > stats.largest_piece then
      stats.largest_piece <- sub.Decomp_graph.n;
    Mpl_obs.Metrics.incr c_pieces;
    Mpl_obs.Metrics.observe h_size (float_of_int sub.Decomp_graph.n);
    let colors = solver sub in
    if Array.length colors <> sub.Decomp_graph.n then
      failwith
        (Printf.sprintf
           "Division.leaf: solver returned %d colors for a %d-vertex piece"
           (Array.length colors) sub.Decomp_graph.n);
    colors
  in
  let rec conquer sub =
    if stages.use_components then begin
      let comps =
        Mpl_obs.Obs.span obs "division.components" (fun () ->
            Connectivity.components (Decomp_graph.union_graph sub))
      in
      if Array.length comps > 1 then begin
        let colors = Array.make sub.Decomp_graph.n (-1) in
        Array.iter
          (fun comp ->
            let piece, back = Decomp_graph.subgraph sub comp in
            let pc = connected piece in
            Array.iteri (fun i v -> colors.(v) <- pc.(i)) back)
          comps;
        colors
      end
      else connected sub
    end
    else connected sub
  and connected sub =
    if stages.use_peel then begin
      let alive, stack =
        Mpl_obs.Obs.span obs "division.peel" (fun () -> peel ~k sub)
      in
      match stack with
      | [] -> blocks sub
      | _ ->
        stats.peeled <- stats.peeled + List.length stack;
        Mpl_obs.Metrics.add c_peeled (List.length stack);
        let core =
          Array.of_list
            (List.filter
               (fun v -> alive.(v))
               (List.init sub.Decomp_graph.n (fun v -> v)))
        in
        let colors = Array.make sub.Decomp_graph.n (-1) in
        if Array.length core > 0 then begin
          let piece, back = Decomp_graph.subgraph sub core in
          let pc = conquer piece in
          Array.iteri (fun i v -> colors.(v) <- pc.(i)) back
        end;
        List.iter (fun v -> colors.(v) <- pop_color ~k sub colors v) stack;
        colors
    end
    else blocks sub
  and blocks sub =
    if stages.use_biconnected then begin
      let bl =
        Mpl_obs.Obs.span obs "division.biconnected" (fun () ->
            Array.of_list (Biconnected.blocks (Decomp_graph.union_graph sub)))
      in
      if Array.length bl <= 1 then ghtree sub
      else begin
        Mpl_obs.Metrics.add c_bicon (Array.length bl - 1);
        let colors = Array.make sub.Decomp_graph.n (-1) in
        let blocks_of = Array.make sub.Decomp_graph.n [] in
        Array.iteri
          (fun bi verts ->
            Array.iter (fun v -> blocks_of.(v) <- bi :: blocks_of.(v)) verts)
          bl;
        let visited = Array.make (Array.length bl) false in
        let queue = Queue.create () in
        for start = 0 to Array.length bl - 1 do
          if not visited.(start) then begin
            visited.(start) <- true;
            Queue.add start queue;
            while not (Queue.is_empty queue) do
              let bi = Queue.pop queue in
              let verts = bl.(bi) in
              let piece, back = Decomp_graph.subgraph sub verts in
              let pc = conquer piece in
              let rotation = ref 0 in
              Array.iteri
                (fun i v ->
                  if colors.(v) >= 0 && !rotation = 0 then
                    rotation := ((colors.(v) - pc.(i)) mod k + k) mod k)
                back;
              Array.iteri
                (fun i v ->
                  if colors.(v) < 0 then
                    colors.(v) <- (pc.(i) + !rotation) mod k)
                back;
              Array.iter
                (fun v ->
                  List.iter
                    (fun bj ->
                      if not visited.(bj) then begin
                        visited.(bj) <- true;
                        Queue.add bj queue
                      end)
                    blocks_of.(v))
                verts
            done
          end
        done;
        colors
      end
    end
    else ghtree sub
  and ghtree sub =
    if stages.use_ghtree && sub.Decomp_graph.n >= 2 then begin
      let ug, best =
        Mpl_obs.Obs.span obs "division.ghtree"
          ~args:[ ("n", Mpl_obs.Sink.Int sub.Decomp_graph.n) ]
          (fun () ->
            let ug = Decomp_graph.union_graph sub in
            let ght =
              Gomory_hu.build ?bound:(if bounded_cuts then Some k else None) ug
            in
            Mpl_obs.Metrics.add c_bounded (Gomory_hu.capped ght);
            Mpl_obs.Metrics.add c_maxflow (max 0 (sub.Decomp_graph.n - 1));
            let edges = Gomory_hu.tree_edges ght in
            let best = ref None in
            Array.iter
              (fun (v, p, w) ->
                match !best with
                | Some (_, _, bw) when bw <= w -> ()
                | _ -> if w < k then best := Some (v, p, w))
              edges;
            (ug, !best))
      in
      match best with
      | None -> leaf sub
      | Some (s, t, _) ->
        stats.cuts <- stats.cuts + 1;
        Mpl_obs.Metrics.incr c_cuts;
        let side =
          Mpl_obs.Obs.span obs "division.ghtree" ~cat:"division"
            (fun () ->
              let net = Maxflow.of_ugraph ug in
              let _ = Maxflow.max_flow net ~s ~t in
              Mpl_obs.Metrics.incr c_maxflow;
              Maxflow.min_cut_side net ~s)
        in
        let in_a = Array.make sub.Decomp_graph.n false in
        Array.iter (fun v -> in_a.(v) <- true) side;
        let part flag =
          Array.of_list
            (List.filter
               (fun v -> in_a.(v) = flag)
               (List.init sub.Decomp_graph.n (fun v -> v)))
        in
        let va = part true and vb = part false in
        let piece_a, back_a = Decomp_graph.subgraph sub va in
        let piece_b, back_b = Decomp_graph.subgraph sub vb in
        let ca = conquer piece_a and cb = conquer piece_b in
        let colors = Array.make sub.Decomp_graph.n (-1) in
        Array.iteri (fun i v -> colors.(v) <- ca.(i)) back_a;
        let pos_b = Hashtbl.create (Array.length vb) in
        Array.iteri (fun i v -> Hashtbl.add pos_b v i) back_b;
        let crossing edges_of =
          List.filter_map
            (fun (u, v) ->
              match (in_a.(u), in_a.(v)) with
              | true, false -> Some (u, Hashtbl.find pos_b v)
              | false, true -> Some (v, Hashtbl.find pos_b u)
              | true, true | false, false -> None)
            edges_of
        in
        let cross_conf = crossing (Decomp_graph.conflict_edges sub) in
        let cross_stit = crossing (Decomp_graph.stitch_edges sub) in
        let r = best_rotation ~k ~alpha colors cb cross_conf cross_stit in
        Array.iteri (fun i v -> colors.(v) <- (cb.(i) + r) mod k) back_b;
        colors
    end
    else leaf sub
  in
  conquer g
