(** SDP relaxation of a decomposition-graph component (paper Section 3.1
    / Section 5) and the two mappings of its Gram matrix back to colors:
    greedy (the baseline from ref. [4]) and backtrack (paper
    Algorithm 1). *)

val relax :
  ?options:Mpl_numeric.Sdp.options ->
  ?warm:int array ->
  k:int ->
  alpha:float ->
  Decomp_graph.t ->
  Mpl_numeric.Sdp.solution
(** Solve the vector-program relaxation for the component. [warm] seeds
    the solver from a known coloring's ideal Gram matrix (see
    {!Mpl_numeric.Sdp.solve}); used by the fallback ladder to restart
    from the previous rung's answer and by the warm-hint cache for
    near-isomorphic pieces. *)

val greedy_map :
  k:int -> Mpl_numeric.Sdp.solution -> Decomp_graph.t -> int array
(** Vertices in conflict-degree order each take the color with the
    highest accumulated Gram affinity to already-colored vertices,
    hard-penalizing same-color conflict neighbors. *)

val backtrack :
  ?obs:Mpl_obs.Obs.t ->
  ?tth:float ->
  ?node_cap:int ->
  ?budget:Mpl_util.Timer.budget ->
  k:int ->
  alpha:float ->
  Mpl_numeric.Sdp.solution ->
  Decomp_graph.t ->
  int array
(** Paper Algorithm 1: merge every pair with Gram entry >= [tth]
    (default 0.9) into one vertex of a weighted merged graph, then
    branch-and-bound search on the merged graph. Anytime under the node
    cap; seeded with the greedy mapping so it never does worse. With
    [obs], the merged search's expanded node count is observed into the
    [solver.bnb_nodes] histogram. *)
