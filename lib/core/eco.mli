(** Engineering-change-order (ECO) edit scripts and re-decomposition
    sessions.

    An ECO is a small edit to an already-decomposed layout: a few
    features added, removed, or nudged. Because every edge of the
    decomposition graph joins features within the color-friendly radius
    [min_s + hp] (see {!Shard} and DESIGN.md §15), an edit can only
    change the graph inside that dilation of the edited rectangles —
    every connected component entirely outside it keeps its coloring
    byte-for-byte. This module holds the two data types that make that
    reuse possible across process boundaries:

    - {!edit} scripts: a tiny line-oriented text format describing
      adds/removes/moves against a {e specific} base layout, plus a
      deterministic generator for benchmarks and tests.
    - {!session} snapshots: the base layout, per-component colorings
      and component costs from a previous decomposition, persisted with
      the same atomic tmp+rename, checksummed discipline as {!Cache}.

    The actual incremental solve lives in [Decomposer.redecompose];
    this module is pure data plumbing and depends only on the geometry
    and layout layers. *)

(** {1 Edits} *)

type edit =
  | Add of Mpl_geometry.Polygon.t  (** append a new feature *)
  | Remove of int  (** delete feature [index] of the base layout *)
  | Move of { index : int; dx : int; dy : int }
      (** translate feature [index] of the base layout *)

(** Indices always refer to the {e base} layout. Each base feature may
    be named by at most one edit; {!apply} rejects scripts that remove
    or move the same feature twice. *)

val edits_to_string : edit list -> string
(** Render to the edit-script text format:
    {v
    # comment
    MOVE <index> <dx> <dy>
    REMOVE <index>
    ADD <nrects> x0 y0 x1 y1 [x0 y0 x1 y1 ...]
    v} *)

val parse_edits : string -> (edit list, string) result
(** Parse the format written by {!edits_to_string}. Blank lines and
    [#] comments are ignored. Errors mention the offending line. *)

val apply :
  Mpl_layout.Layout.t ->
  edit list ->
  (Mpl_layout.Layout.t * int option array, string) result
(** [apply base edits] returns the edited layout together with
    [new_of_old]: [new_of_old.(i)] is the edited-layout index of base
    feature [i], or [None] if it was removed. Survivors keep their
    relative order; added features are appended after all survivors in
    script order (so an untouched component's features keep ascending
    order and its extracted pieces stay byte-identical). Errors on
    out-of-range indices or a feature edited twice. *)

val dirty_rects : Mpl_layout.Layout.t -> edit list -> Mpl_geometry.Rect.t list
(** Every rectangle whose presence changed: the base rectangles of
    removed and moved features, the translated rectangles of moved
    features, and the rectangles of added features. Dilating these by
    [min_s + hp] bounds the region where the decomposition graph can
    differ. *)

val generate : seed:int -> count:int -> Mpl_layout.Layout.t -> edit list
(** Deterministic pseudo-random edit script: roughly half moves (small
    multiples of the tech pitch), a third adds (new wire stubs near
    existing features), the rest removes. Edits are spatially
    localized, the way a real change order reworks one region of the
    die rather than sprinkling the whole layout: every target is drawn
    from the smallest square window around a seed-chosen anchor
    feature that holds about 4x [count] features, so the dirty region
    scales with the edit, not with the die. Never edits the same base
    feature twice; the same [seed]/[count]/layout always yields the
    same script. *)

(** {1 Sessions} *)

type comp = {
  features : int array;
      (** base-layout feature indices, ascending *)
  colors : int array;
      (** per-segment colors, segments in (feature, segment) order *)
  conflicts : int;
  stitches : int;
  scaled : int;  (** this component's cost in milli-units *)
}

type session = {
  layout_text : string;  (** canonical [Layout_io] text of the base *)
  layout_hash : string;  (** MD5 hex of [layout_text] *)
  min_s : int;
  salt : string;  (** parameter fingerprint; must match to reuse *)
  seg_counts : int array;  (** stitch segments per base feature *)
  comps : comp array;
}
(** Everything [Decomposer.redecompose] needs to reuse a previous run:
    the exact base layout (so edits resolve against the same bytes the
    colors were computed for), the stitch-segment count per feature (to
    place reused colors without re-splitting clean features), and each
    connected component's features, coloring and cost. *)

val hash_layout : Mpl_layout.Layout.t -> string
(** MD5 hex of the layout's canonical [Layout_io] text — the key under
    which servers index sessions. *)

exception Bad_file of string
(** Raised by {!load} on a missing/corrupt/foreign session file. *)

val save : session -> string -> unit
(** Atomic write (temp file + rename) with a whole-file checksum. *)

val load : string -> session
(** Inverse of {!save}; validates the checksum and all array lengths.
    @raise Bad_file on any structural damage.
    @raise Sys_error if the file cannot be read. *)
