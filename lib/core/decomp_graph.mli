(** The decomposition graph (paper Definition 1), plus the color-friendly
    relation (paper Definition 2).

    Vertices are sub-features (features after stitch splitting). Conflict
    edges join distinct features within the minimum coloring distance
    [min_s]; stitch edges join touching segments of one split feature;
    color-friendly edges join features at distance in (min_s, min_s+hp],
    which the linear color assignment uses as a same-color hint.

    Each relation is a CSR adjacency: flat offset and neighbor arrays
    with sorted, deduplicated per-vertex runs, built in two passes with
    no intermediate list adjacency. *)

type adj = { off : int array; nbr : int array }
(** The neighbors of [v] are [nbr.(off.(v)) .. nbr.(off.(v+1) - 1)],
    sorted ascending. Owned by the graph; callers must not mutate. *)

type t = private {
  n : int;
  conflict : adj;
  stitch : adj;
  friendly : adj;
  feature : int array;  (** vertex -> originating feature id *)
  varea : int array;
      (** vertex -> polygon area (nm²) of its segment; 1 per vertex for
          {!of_edges} graphs, which carry no geometry. Feeds the
          per-mask area tallies of [Decomposer]'s balance report. *)
  mutable union_memo : Mpl_graph.Ugraph.t option;
      (** lazily built {!union_graph}; internal *)
}

val deg : adj -> int -> int
(** Run length of a vertex. *)

val iter : adj -> int -> (int -> unit) -> unit
(** Apply to each neighbor in ascending order. Allocation-free. *)

val of_edges :
  ?stitch_edges:(int * int) list ->
  ?friendly_edges:(int * int) list ->
  ?feature:int array ->
  n:int ->
  (int * int) list ->
  t
(** Direct construction (tests, paper figures). The positional edge list
    is the conflict edges. Duplicate edges are collapsed; self-loops and
    edges that are both conflict and stitch are rejected. *)

val of_nodes :
  ?obs:Mpl_obs.Obs.t -> Mpl_layout.Stitch.t -> hp:int -> min_s:int -> t
(** Build from an already split node set: join segments of distinct
    features by conflict (distance <= [min_s]) and color-friendly
    (min_s < distance <= min_s + [hp]) edges; the split's own stitch
    edges are taken as-is. This is the construction path shared by
    {!of_layout} and the sharded decomposer's border-component rebuild —
    identical node shapes always produce identical CSR runs. *)

val of_layout :
  ?obs:Mpl_obs.Obs.t ->
  ?max_stitches_per_feature:int ->
  Mpl_layout.Layout.t ->
  min_s:int ->
  t
(** Build from a layout: stitch-split the features, then join sub-features
    of distinct features by conflict (distance <= min_s) and
    color-friendly (min_s < distance <= min_s + half_pitch) edges.

    With [obs], the construction runs under a [graph.build] span with
    [graph.stitch_split] and [graph.neighbor_search] children, and the
    registry accumulates [graph.nodes] / [graph.conflict_edges] /
    [graph.stitch_edges] / [graph.friendly_edges] counters. *)

val conflict_edges : t -> (int * int) list
(** Each conflict edge once, [(u, v)] with [u < v]. *)

val stitch_edges : t -> (int * int) list
val friendly_edges : t -> (int * int) list

val conflict_degree : t -> int -> int
val stitch_degree : t -> int -> int

val has_conflict : t -> int -> int -> bool

val union_graph : t -> Mpl_graph.Ugraph.t
(** Conflict and stitch edges together — connectivity for division.
    Built by merging the two sorted CSR runs per vertex straight into a
    [Ugraph] without touching its edge buffer, then memoized on the
    graph (the division pipeline needs it at up to three stages). *)

val conflict_graph : t -> Mpl_graph.Ugraph.t

val subgraph : t -> int array -> t * int array
(** [subgraph g vs] is the induced graph on [vs] (no duplicates),
    relabeled [0..], and the map back to the original vertex ids. *)

val pp : Format.formatter -> t -> unit
