type algorithm = Ilp | Exact | Sdp_backtrack | Sdp_greedy | Linear

let algorithm_name = function
  | Ilp -> "ILP"
  | Exact -> "Exact-BnB"
  | Sdp_backtrack -> "SDP+Backtrack"
  | Sdp_greedy -> "SDP+Greedy"
  | Linear -> "Linear"

type post_pass = No_post | Local_search | Anneal of int

type params = {
  k : int;
  alpha : float;
  tth : float;
  sdp_options : Mpl_numeric.Sdp.options;
  solver_budget_s : float;
  node_cap : int;
  stages : Division.stages;
  post : post_pass;
  balance : bool;
  jobs : int;
  cache : bool;
  cache_permuted : bool;
  trace : Mpl_obs.Sink.t option;
  metrics : bool;
}

let default_params =
  {
    k = 4;
    alpha = 0.1;
    tth = 0.9;
    sdp_options = Mpl_numeric.Sdp.default_options;
    solver_budget_s = 60.;
    node_cap = 2_000_000;
    stages = Division.all_stages;
    post = No_post;
    balance = false;
    jobs = 1;
    cache = false;
    cache_permuted = false;
    trace = None;
    metrics = false;
  }

(* One observability context per run: the caller-supplied span sink (if
   any) plus a private metrics registry whose snapshot lands in the
   report. Both default to the null implementations, in which case
   every probe in the pipeline is a no-op branch. *)
let make_obs params =
  let sink =
    match params.trace with Some s -> s | None -> Mpl_obs.Sink.null
  in
  let metrics =
    if params.metrics then Mpl_obs.Metrics.create () else Mpl_obs.Metrics.null
  in
  Mpl_obs.Obs.make ~sink ~metrics ()

type report = {
  algorithm : algorithm;
  params : params;
  cost : Coloring.cost;
  colors : Coloring.t;
  elapsed_s : float;
  timed_out : bool;
  division : Division.stats;
  engine : Mpl_engine.Engine.stats option;
  metrics : Mpl_obs.Metrics.snapshot option;
}

(* Leaf solver for one divided piece. The exact algorithms share one
   wall-clock budget across all pieces (the paper reports a single CPU
   number per circuit); when it expires, remaining pieces fall back to a
   greedy coloring and the run is flagged N/A. The budget deadline and
   the timeout flag are both safe to touch from pool workers. *)
let make_solver ~obs ~params ~budget ~timed_out algorithm
    (piece : Decomp_graph.t) =
  let k = params.k and alpha = params.alpha in
  let m = obs.Mpl_obs.Obs.metrics in
  Mpl_obs.Metrics.incr (Mpl_obs.Metrics.counter m "solver.solves");
  let trip () =
    Atomic.set timed_out true;
    Mpl_obs.Metrics.incr (Mpl_obs.Metrics.counter m "solver.budget_trips")
  in
  let observe_sdp (sol : Mpl_numeric.Sdp.solution) =
    Mpl_obs.Metrics.observe
      (Mpl_obs.Metrics.histogram m "solver.sdp_iterations")
      (float_of_int sol.Mpl_numeric.Sdp.iterations)
  in
  Mpl_obs.Obs.span obs
    ("solve." ^ algorithm_name algorithm)
    ~cat:"solve"
    ~args:[ ("n", Mpl_obs.Sink.Int piece.Decomp_graph.n) ]
  @@ fun () ->
  match algorithm with
  | Linear -> Linear_color.solve ~k ~alpha piece
  | Exact ->
    let r =
      Exact_color.solve ~node_cap:params.node_cap ~budget ~k ~alpha piece
    in
    Mpl_obs.Metrics.observe
      (Mpl_obs.Metrics.histogram m "solver.bnb_nodes")
      (float_of_int r.Bnb.nodes);
    if not r.Bnb.optimal then trip ();
    r.Bnb.colors
  | Ilp ->
    if Mpl_util.Timer.expired budget then begin
      trip ();
      Bnb.greedy ~k (Bnb.instance_of_graph ~alpha piece)
    end
    else begin
      let r = Ilp_color.solve ~budget ~k ~alpha piece in
      if not r.Ilp_color.optimal then trip ();
      r.Ilp_color.colors
    end
  | Sdp_greedy ->
    if piece.Decomp_graph.n <= 1 then Array.make piece.Decomp_graph.n 0
    else begin
      let sol = Sdp_color.relax ~options:params.sdp_options ~k ~alpha piece in
      observe_sdp sol;
      Sdp_color.greedy_map ~k sol piece
    end
  | Sdp_backtrack ->
    if piece.Decomp_graph.n <= 1 then Array.make piece.Decomp_graph.n 0
    else begin
      let sol = Sdp_color.relax ~options:params.sdp_options ~k ~alpha piece in
      observe_sdp sol;
      Sdp_color.backtrack ~obs ~tth:params.tth ~node_cap:params.node_cap ~k
        ~alpha sol piece
    end

(* Canonical signature of a piece for the engine cache: the three edge
   relations are all a solver ever reads (feature ids only matter for
   rendering), so they fully determine the solver's behavior up to its
   vertex-order tie-breaks. Oversized pieces are not worth hashing. *)
let signature_size_cap = 4096

let piece_signature (piece : Decomp_graph.t) =
  if piece.Decomp_graph.n > signature_size_cap then None
  else
    Some
      (Mpl_engine.Cache.signature ~n:piece.Decomp_graph.n
         ~relations:
           [|
             Decomp_graph.conflict_edges piece;
             Decomp_graph.stitch_edges piece;
             Decomp_graph.friendly_edges piece;
           |])

(* Parallel/cached assignment: split off the independent components
   (the same split the sequential division pipeline performs first),
   solve each component wholesale — internal division included — as one
   pool task, and scatter the colorings back. Components are the reuse
   unit precisely because they share no edge with the rest of the
   graph: substituting any valid coloring of a component can never
   change a crossing cost, so cache reuse is cost-exact by
   construction. *)
let engine_assign ~obs ~params ~stats ~solver (g : Decomp_graph.t) =
  let jobs = max 1 params.jobs in
  let comps =
    if params.stages.Division.use_components then
      Mpl_obs.Obs.span obs "division.components" (fun () ->
          Mpl_graph.Connectivity.components (Decomp_graph.union_graph g))
    else [| Array.init g.Decomp_graph.n (fun v -> v) |]
  in
  let pieces = Array.map (Decomp_graph.subgraph g) comps in
  let solve_piece (piece, _back) =
    let local = Division.fresh_stats () in
    let colors =
      Division.assign ~obs ~stages:params.stages ~stats:local ~k:params.k
        ~alpha:params.alpha ~solver piece
    in
    (colors, local)
  in
  let cache =
    if params.cache then
      Some
        (Mpl_engine.Cache.create
           ~mode:
             (if params.cache_permuted then Mpl_engine.Cache.Permuted
              else Mpl_engine.Cache.Exact)
           ~obs ())
    else None
  in
  let signature (piece, _back) =
    if params.cache then piece_signature piece else None
  in
  Mpl_engine.Pool.with_pool ~obs ~jobs (fun pool ->
      let results, estats =
        Mpl_engine.Engine.solve_pieces ~obs ~pool ?cache ~signature
          ~solve:solve_piece
          (Array.to_list pieces)
      in
      let colors = Array.make g.Decomp_graph.n (-1) in
      List.iteri
        (fun i (pc, local) ->
          let _piece, back = pieces.(i) in
          Array.iteri (fun j v -> colors.(v) <- pc.(j)) back;
          stats.Division.pieces <- stats.Division.pieces + local.Division.pieces;
          if local.Division.largest_piece > stats.Division.largest_piece then
            stats.Division.largest_piece <- local.Division.largest_piece;
          stats.Division.peeled <- stats.Division.peeled + local.Division.peeled;
          stats.Division.cuts <- stats.Division.cuts + local.Division.cuts)
        results;
      (colors, estats))

let assign ?(params = default_params) ?obs algorithm g =
  let obs = match obs with Some o -> o | None -> make_obs params in
  let stats = Division.fresh_stats () in
  let timed_out = Atomic.make false in
  let budget =
    match algorithm with
    | Ilp | Exact -> Mpl_util.Timer.budget params.solver_budget_s
    | Sdp_backtrack | Sdp_greedy | Linear -> Mpl_util.Timer.budget 0.
  in
  let solver = make_solver ~obs ~params ~budget ~timed_out algorithm in
  let engine_stats = ref None in
  let (colors, elapsed_s) =
    Mpl_util.Timer.time (fun () ->
        Mpl_obs.Obs.span obs "assign"
          ~args:
            [
              ("algorithm", Mpl_obs.Sink.Str (algorithm_name algorithm));
              ("n", Mpl_obs.Sink.Int g.Decomp_graph.n);
            ]
        @@ fun () ->
        let colors =
          (* jobs = 1 without the cache takes the exact historical
             sequential path; anything else routes through the engine.
             The two are output-identical at jobs = 1 (the engine's
             component split mirrors the division pipeline's own first
             stage), but keeping the legacy path makes the sequential
             fallback trivially bit-for-bit. *)
          if params.jobs <= 1 && not params.cache then
            Division.assign ~obs ~stages:params.stages ~stats ~k:params.k
              ~alpha:params.alpha ~solver g
          else begin
            let colors, estats = engine_assign ~obs ~params ~stats ~solver g in
            engine_stats := Some estats;
            colors
          end
        in
        let colors =
          match params.post with
          | No_post -> colors
          | Local_search ->
            Mpl_obs.Obs.span obs "post.local_search" (fun () ->
                Refine.local_search ~k:params.k ~alpha:params.alpha g colors)
          | Anneal iterations ->
            Mpl_obs.Obs.span obs "post.anneal" (fun () ->
                Refine.anneal ~iterations ~k:params.k ~alpha:params.alpha g
                  colors)
        in
        if params.balance then
          Mpl_obs.Obs.span obs "post.balance" (fun () ->
              Balance.rebalance ~k:params.k ~alpha:params.alpha g colors)
        else colors)
  in
  assert (Coloring.is_complete colors);
  assert (Coloring.check_range ~k:params.k colors);
  let cost = Coloring.evaluate ~alpha:params.alpha g colors in
  let metrics =
    let m = obs.Mpl_obs.Obs.metrics in
    if Mpl_obs.Metrics.enabled m then Some (Mpl_obs.Metrics.snapshot m)
    else None
  in
  {
    algorithm;
    params;
    cost;
    colors;
    elapsed_s;
    timed_out = Atomic.get timed_out;
    division = stats;
    engine = !engine_stats;
    metrics;
  }

let decompose ?(params = default_params) ?max_stitches_per_feature ~min_s
    algorithm layout =
  (* One context for the whole run, so the graph-construction spans and
     counters land in the same sink/registry as the assignment's. *)
  let obs = make_obs params in
  let g = Decomp_graph.of_layout ~obs ?max_stitches_per_feature layout ~min_s in
  (g, assign ~params ~obs algorithm g)

let pp_report ppf r =
  Format.fprintf ppf
    "%-13s cn#=%-4d st#=%-5d cost=%.1f CPU=%.3fs pieces=%d largest=%d%s%s"
    (algorithm_name r.algorithm) r.cost.Coloring.conflicts
    r.cost.Coloring.stitches
    (float_of_int r.cost.Coloring.scaled /. 1000.)
    r.elapsed_s r.division.Division.pieces r.division.Division.largest_piece
    (match r.engine with
    | Some e when r.params.cache ->
      Printf.sprintf " cache=%d/%d"
        (e.Mpl_engine.Engine.hits + e.Mpl_engine.Engine.reused)
        e.Mpl_engine.Engine.pieces
    | Some _ | None -> "")
    (if r.timed_out then " (TIMEOUT)" else "")
