type algorithm = Ilp | Exact | Sdp_backtrack | Sdp_greedy | Linear

let algorithm_name = function
  | Ilp -> "ILP"
  | Exact -> "Exact-BnB"
  | Sdp_backtrack -> "SDP+Backtrack"
  | Sdp_greedy -> "SDP+Greedy"
  | Linear -> "Linear"

type post_pass = No_post | Local_search | Anneal of int

type params = {
  k : int;
  alpha : float;
  tth : float;
  sdp_options : Mpl_numeric.Sdp.options;
  solver_budget_s : float;
  node_cap : int;
  stages : Division.stages;
  post : post_pass;
  balance : bool;
  jobs : int;
  priority_bias : int;
  chunk_below : int;
  chunk_len : int;
  cache : bool;
  cache_permuted : bool;
  cache_warm : bool;
  trace : Mpl_obs.Sink.t option;
  metrics : bool;
  fault : Mpl_engine.Fault.spec option;
  request_id : string option;
  cancel : Mpl_engine.Pool.token option;
  deadline_s : float option;
  windows : int;
  window_nm : int option;
}

let default_params =
  {
    k = 4;
    alpha = 0.1;
    tth = 0.9;
    sdp_options = Mpl_numeric.Sdp.default_options;
    solver_budget_s = 60.;
    node_cap = 2_000_000;
    stages = Division.all_stages;
    post = No_post;
    balance = false;
    jobs = 1;
    priority_bias = 0;
    chunk_below = 32;
    chunk_len = 16;
    cache = false;
    cache_permuted = false;
    cache_warm = false;
    trace = None;
    metrics = false;
    fault = None;
    request_id = None;
    cancel = None;
    deadline_s = None;
    windows = 1;
    window_nm = None;
  }

(* Stamp the serving request id onto a span's arguments, so even the
   aggregate (server-lifetime) trace attributes pipeline spans to the
   request that ran them. Per-request sinks additionally tag every
   event via [Sink.create ~tags]. *)
let rid_args params rest =
  match params.request_id with
  | None -> rest
  | Some id -> ("rid", Mpl_obs.Sink.Str id) :: rest

(* One observability context per run: the caller-supplied span sink (if
   any) plus a private metrics registry whose snapshot lands in the
   report. Both default to the null implementations, in which case
   every probe in the pipeline is a no-op branch. *)
let make_obs params =
  let sink =
    match params.trace with Some s -> s | None -> Mpl_obs.Sink.null
  in
  let metrics =
    if params.metrics then Mpl_obs.Metrics.create () else Mpl_obs.Metrics.null
  in
  Mpl_obs.Obs.make ~sink ~metrics ()

type piece_failure = {
  piece_n : int;
  failed_step : string;
  error : string;
  solved_by : string;
  attempts : int;
}

type resilience = {
  degraded : int;
  piece_failures : int;
  fallback_attempts : int;
  failures : piece_failure list;
  fault_fired : bool;
}

let no_resilience =
  {
    degraded = 0;
    piece_failures = 0;
    fallback_attempts = 0;
    failures = [];
    fault_fired = false;
  }

(* Mutable provenance accumulator shared by the leaf-solver wrapper and
   the engine-level recovery hook; both run on pool workers, hence the
   mutex. Individual failure records are capped — the counters stay
   exact either way. *)
let max_failure_records = 32

type prov = {
  mutable p_degraded : int;
  mutable p_failures : int;
  mutable p_fallbacks : int;
  mutable p_records : piece_failure list;  (* newest first *)
  p_lock : Mutex.t;
}

let fresh_prov () =
  {
    p_degraded = 0;
    p_failures = 0;
    p_fallbacks = 0;
    p_records = [];
    p_lock = Mutex.create ();
  }

let prov_record prov ~raised ~fallbacks (pf : piece_failure) =
  Mutex.lock prov.p_lock;
  prov.p_degraded <- prov.p_degraded + 1;
  if raised then prov.p_failures <- prov.p_failures + 1;
  prov.p_fallbacks <- prov.p_fallbacks + fallbacks;
  if List.length prov.p_records < max_failure_records then
    prov.p_records <- pf :: prov.p_records;
  Mutex.unlock prov.p_lock

let prov_snapshot prov ~fault =
  Mutex.lock prov.p_lock;
  let r =
    {
      degraded = prov.p_degraded;
      piece_failures = prov.p_failures;
      fallback_attempts = prov.p_fallbacks;
      failures = List.rev prov.p_records;
      fault_fired = Mpl_engine.Fault.fired fault;
    }
  in
  Mutex.unlock prov.p_lock;
  r

(* Wall-clock breakdown of one assignment. [division_s] and [merge_s]
   are coordinator-thread time (structural analysis / reassembly, with
   any solver work the coordinator picked up while helping the pool
   subtracted out); [solve_s] is total solver time summed over every
   domain, so it can exceed the elapsed wall when jobs > 1. *)
type phases = { division_s : float; solve_s : float; merge_s : float }

let no_phases = { division_s = 0.; solve_s = 0.; merge_s = 0. }

(* Per-mask usage tallies — the observational first slice of the
   balanced-masks roadmap item. Purely derived from the final coloring;
   no objective change. *)
type balance = {
  mask_features : int array;
  mask_vertices : int array;
  mask_area : int array;
}

(* What an incremental re-decomposition actually recomputed. *)
type eco_stats = {
  dirty_components : int;
  reused_components : int;
  dirty_features : int;
}

type report = {
  algorithm : algorithm;
  params : params;
  cost : Coloring.cost;
  colors : Coloring.t;
  elapsed_s : float;
  timed_out : bool;
  division : Division.stats;
  phases : phases;
  engine : Mpl_engine.Engine.stats option;
  cache : Mpl_engine.Cache.stats option;
  resilience : resilience;
  metrics : Mpl_obs.Metrics.snapshot option;
  balance : balance option;
  eco : eco_stats option;
}

(* Feature dedup relies on vertices of one feature being contiguous,
   which holds for every layout-derived graph (feature-major vertex
   order) and for [of_edges]'s identity default. *)
let compute_balance ~k (g : Decomp_graph.t) colors =
  let mask_features = Array.make k 0
  and mask_vertices = Array.make k 0
  and mask_area = Array.make k 0 in
  let last = Array.make k (-1) in
  for v = 0 to g.Decomp_graph.n - 1 do
    let c = colors.(v) in
    if c >= 0 then begin
      mask_vertices.(c) <- mask_vertices.(c) + 1;
      mask_area.(c) <- mask_area.(c) + g.Decomp_graph.varea.(v);
      let f = g.Decomp_graph.feature.(v) in
      if last.(c) <> f then begin
        last.(c) <- f;
        mask_features.(c) <- mask_features.(c) + 1
      end
    end
  done;
  { mask_features; mask_vertices; mask_area }

(* One attempt of one algorithm on one divided piece. Returns the
   coloring plus whether the attempt completed cleanly — [false] means
   the shared budget or the node cap cut the search short and the
   coloring is only the best incumbent. *)
let solve_once ~obs ~params ~budget ?warm algorithm (piece : Decomp_graph.t) =
  let k = params.k and alpha = params.alpha in
  let m = obs.Mpl_obs.Obs.metrics in
  let observe_sdp (sol : Mpl_numeric.Sdp.solution) =
    Mpl_obs.Metrics.observe
      (Mpl_obs.Metrics.histogram m "solver.sdp_iterations")
      (float_of_int sol.Mpl_numeric.Sdp.iterations);
    (* Registered on every SDP solve (not just warm ones) so the counter
       shows up as an explicit 0 in metrics snapshots of cold runs. *)
    let warm_c = Mpl_obs.Metrics.counter m "sdp.warm_starts" in
    if sol.Mpl_numeric.Sdp.warm then Mpl_obs.Metrics.incr warm_c
  in
  Mpl_obs.Obs.span obs
    ("solve." ^ algorithm_name algorithm)
    ~cat:"solve"
    ~args:[ ("n", Mpl_obs.Sink.Int piece.Decomp_graph.n) ]
  @@ fun () ->
  match algorithm with
  | Linear -> (Linear_color.solve ~k ~alpha piece, true)
  | Exact ->
    let r =
      Exact_color.solve ~node_cap:params.node_cap ~budget ~k ~alpha piece
    in
    Mpl_obs.Metrics.observe
      (Mpl_obs.Metrics.histogram m "solver.bnb_nodes")
      (float_of_int r.Bnb.nodes);
    (r.Bnb.colors, r.Bnb.optimal)
  | Ilp ->
    if Mpl_util.Timer.expired budget then
      (Bnb.greedy ~k (Bnb.instance_of_graph ~alpha piece), false)
    else begin
      let r = Ilp_color.solve ~budget ~k ~alpha piece in
      (r.Ilp_color.colors, r.Ilp_color.optimal)
    end
  | Sdp_greedy ->
    if piece.Decomp_graph.n <= 1 then (Array.make piece.Decomp_graph.n 0, true)
    else begin
      let sol =
        Sdp_color.relax ~options:params.sdp_options ?warm ~k ~alpha piece
      in
      observe_sdp sol;
      (Sdp_color.greedy_map ~k sol piece, true)
    end
  | Sdp_backtrack ->
    if piece.Decomp_graph.n <= 1 then (Array.make piece.Decomp_graph.n 0, true)
    else begin
      let sol =
        Sdp_color.relax ~options:params.sdp_options ?warm ~k ~alpha piece
      in
      observe_sdp sol;
      ( Sdp_color.backtrack ~obs ~tth:params.tth ~node_cap:params.node_cap ~k
          ~alpha sol piece,
        true )
    end

(* Escalation order when an attempt fails: strictly cheaper, more
   robust algorithms. The terminal greedy rung is handled separately in
   [recover_piece] — it cannot fail. *)
let fallback_chain = function
  | Ilp | Exact -> [ Sdp_backtrack; Linear ]
  | Sdp_backtrack | Sdp_greedy -> [ Linear ]
  | Linear -> []

(* Fallback ladder for one piece whose primary attempt raised or was
   cut short. Every remaining rung runs budget-free (a tripped shared
   budget must not starve the heuristics — they are the recovery path),
   and all rungs are tried so the cheapest resulting coloring wins;
   ties keep the earliest candidate (the primary's partial result
   first, then chain order). Rungs are themselves fault-eligible, so a
   multi-shot injection can cascade all the way down to greedy. *)
let recover_piece ?(cheap = false) ~obs ~params ~fault ~prov ~primary
    ~partial ~error piece =
  let k = params.k and alpha = params.alpha in
  let m = obs.Mpl_obs.Obs.metrics in
  let free_budget = Mpl_util.Timer.budget 0. in
  let attempts = ref 1 in
  let candidates = ref [] in
  (* Each rung restarts from the previous rung's coloring (initially the
     primary's tripped incumbent, when there is one): the SDP rungs seed
     their relaxation from it instead of a cold start, so the recovery
     resumes the search rather than repeating it. *)
  let last = ref None in
  let add name colors =
    candidates := !candidates @ [ (name, colors) ];
    last := Some colors
  in
  (match partial with
  | Some colors -> add (algorithm_name primary) colors
  | None -> ());
  List.iter
    (fun step ->
      incr attempts;
      Mpl_obs.Metrics.incr (Mpl_obs.Metrics.counter m "solver.fallbacks");
      match
        if Mpl_engine.Fault.fires fault Mpl_engine.Fault.Solver_raise then
          raise (Mpl_engine.Fault.Injected Mpl_engine.Fault.Solver_raise)
        else
          fst
            (solve_once ~obs ~params ~budget:free_budget ?warm:!last step
               piece)
      with
      | colors -> add (algorithm_name step) colors
      | exception _ -> ())
    (* An expired deadline skips the expensive middle rungs: recovery
       must cost less than the time that is already gone. *)
    (if cheap then (match primary with Linear -> [] | _ -> [ Linear ])
     else fallback_chain primary);
  if !candidates = [] then begin
    (* Everything raised: the greedy terminal rung always succeeds. *)
    incr attempts;
    Mpl_obs.Metrics.incr (Mpl_obs.Metrics.counter m "solver.fallbacks");
    add "greedy" (Bnb.greedy ~k (Bnb.instance_of_graph ~alpha piece))
  end;
  let best =
    List.fold_left
      (fun acc (name, colors) ->
        let cost = (Coloring.evaluate ~alpha piece colors).Coloring.scaled in
        match acc with
        | Some (_, _, best_cost) when best_cost <= cost -> acc
        | _ -> Some (name, colors, cost))
      None !candidates
  in
  let solved_by, colors, _ = Option.get best in
  Mpl_obs.Metrics.incr (Mpl_obs.Metrics.counter m "solver.degraded");
  prov_record prov ~raised:(partial = None)
    ~fallbacks:(!attempts - 1)
    {
      piece_n = piece.Decomp_graph.n;
      failed_step = algorithm_name primary;
      error;
      solved_by;
      attempts = !attempts;
    };
  colors

(* Canonical signature of a piece for the engine cache: the three edge
   relations are all a solver ever reads (feature ids only matter for
   rendering), so they fully determine the solver's behavior up to its
   vertex-order tie-breaks. Oversized pieces are not worth hashing.

   The signature is salted with a fingerprint of every parameter that
   can change what the solver returns for a given graph. Within one run
   the salt is constant — hit patterns are unchanged — but it makes the
   cache safe to *share across runs with different parameters* (the
   serving daemon keeps one table for all clients): a piece solved at
   k=4 under Linear can never be served to a k=5 SDP request. *)
let signature_size_cap = 4096

let params_salt ~params algorithm =
  Printf.sprintf "%s;k=%d;a=%h;t=%h;nc=%d" (algorithm_name algorithm)
    params.k params.alpha params.tth params.node_cap

let piece_signature ~salt (piece : Decomp_graph.t) =
  if piece.Decomp_graph.n > signature_size_cap then None
  else
    Some
      (Mpl_engine.Cache.signature_salted ~salt ~n:piece.Decomp_graph.n
         ~relations:
           [|
             Decomp_graph.conflict_edges piece;
             Decomp_graph.stitch_edges piece;
             Decomp_graph.friendly_edges piece;
           |])

(* Leaf solver for one divided piece. The exact algorithms share one
   wall-clock budget across all pieces (the paper reports a single CPU
   number per circuit). A clean attempt returns its coloring untouched —
   the no-fault, no-trip path is bit-identical to a build without this
   wrapper. An attempt that raises or is cut short (budget, node cap)
   degrades through [recover_piece] instead of failing the run. The
   budget deadline and the timeout flag are both safe to touch from
   pool workers. *)
let make_solver ~obs ~params ~budget ~deadline_over ~timed_out ~fault ~prov
    ~warm_cache ~salt algorithm (piece : Decomp_graph.t) =
  let m = obs.Mpl_obs.Obs.metrics in
  Mpl_obs.Metrics.incr (Mpl_obs.Metrics.counter m "solver.solves");
  (* Deadline trip: degrade instead of solving — the ladder-aware soft
     phase of a per-request deadline. The piece still gets a legal
     coloring from the cheapest rung; the hard phase (cancellation of
     queued pieces) is the server watchdog's job. *)
  if deadline_over () then begin
    Atomic.set timed_out true;
    Mpl_obs.Metrics.incr (Mpl_obs.Metrics.counter m "solver.deadline_trips");
    recover_piece ~cheap:true ~obs ~params ~fault ~prov ~primary:algorithm
      ~partial:None ~error:"deadline" piece
  end
  else begin
  (* Warm-hint probe: a previously solved piece with the same canonical
     key (near-isomorphic: same 1-WL structure, possibly different
     labeling) seeds this piece's SDP initial point. Only the SDP
     algorithms consume hints, and a hint never skips a solve. *)
  let uses_sdp =
    match algorithm with
    | Sdp_backtrack | Sdp_greedy -> true
    | Ilp | Exact | Linear -> false
  in
  let wsig =
    match warm_cache with
    | Some _ when uses_sdp && piece.Decomp_graph.n > 1 ->
      piece_signature ~salt piece
    | Some _ | None -> None
  in
  let warm =
    match (warm_cache, wsig) with
    | Some wc, Some s -> (
      match Mpl_engine.Cache.find_similar wc s with
      | Some hint when Coloring.check_range ~k:params.k hint -> Some hint
      | Some _ | None -> None)
    | _ -> None
  in
  let uses_budget = match algorithm with Ilp | Exact -> true | _ -> false in
  let forced_trip =
    uses_budget
    && Mpl_engine.Fault.fires fault Mpl_engine.Fault.Budget_trip
  in
  if forced_trip then Mpl_util.Timer.force_expire budget;
  let primary =
    match
      if Mpl_engine.Fault.fires fault Mpl_engine.Fault.Solver_raise then
        raise (Mpl_engine.Fault.Injected Mpl_engine.Fault.Solver_raise)
      else solve_once ~obs ~params ~budget ?warm algorithm piece
    with
    | r -> Ok r
    | exception e -> Error e
  in
  let finish colors =
    (match (warm_cache, wsig) with
    | Some wc, Some s -> Mpl_engine.Cache.store wc s (colors, ())
    | _ -> ());
    colors
  in
  finish
  @@
  match primary with
  (* A forced trip must take the degradation path even when the solver
     happened to finish before noticing the expired budget (e.g. its
     seed already pruned the whole search): the fault's contract is
     that this piece trips. *)
  | Ok (colors, true) when not forced_trip -> colors
  | Ok (colors, _) ->
    Atomic.set timed_out true;
    Mpl_obs.Metrics.incr (Mpl_obs.Metrics.counter m "solver.budget_trips");
    recover_piece ~obs ~params ~fault ~prov ~primary:algorithm
      ~partial:(Some colors) ~error:"budget/node-cap trip" piece
    | Error e ->
      Mpl_obs.Metrics.incr
        (Mpl_obs.Metrics.counter m "solver.piece_failures");
      recover_piece ~obs ~params ~fault ~prov ~primary:algorithm
        ~partial:None ~error:(Printexc.to_string e) piece
  end

(* Per-run solving context, shared by the whole-graph and sharded entry
   points: armed fault injector, provenance, deadline probe, shared
   solver budget, warm-hint cache, and the timed leaf solver with its
   phase accounting. [rc_solve_ns] totals solver wall across every
   domain; [rc_caller_ns] (written by the coordinating thread only — no
   lock needed) lets the engine paths subtract solver work the
   coordinator picked up while helping the pool out of their
   division/merge walls. *)
type run_ctx = {
  rc_salt : string;
  rc_stats : Division.stats;
  rc_timed_out : bool Atomic.t;
  rc_fault : Mpl_engine.Fault.t;
  rc_prov : prov;
  rc_solve_ns : int Atomic.t;
  rc_caller_ns : float ref;
  rc_solver : Decomp_graph.t -> int array;
}

let make_run_ctx ?ext_warm ~obs ~params algorithm =
  let salt = params_salt ~params algorithm in
  let stats = Division.fresh_stats () in
  let timed_out = Atomic.make false in
  let fault =
    match params.fault with
    | Some spec -> Mpl_engine.Fault.arm spec
    | None -> Mpl_engine.Fault.none
  in
  let prov = fresh_prov () in
  (* Per-request deadline (opt-in). Armed, it is a second monotonic
     budget: [deadline_over] is probed once per piece before the
     primary solve (soft degrade through the cheap ladder rung), and
     for the budgeted exact algorithms the shared solver budget is
     clamped to it so an in-flight ILP/BnB returns its incumbent at
     the deadline instead of running on. Unarmed, [deadline_over] is a
     constant [false]: no clock is created, read, or registered — the
     [solver.deadline_checks] counter only exists on deadline runs,
     which is what the served-invariance test keys on. *)
  let deadline_s =
    match params.deadline_s with Some d when d > 0. -> Some d | _ -> None
  in
  let deadline_over =
    match deadline_s with
    | None -> fun () -> false
    | Some d ->
      let db = Mpl_util.Timer.budget d in
      let checks =
        Mpl_obs.Metrics.counter obs.Mpl_obs.Obs.metrics
          "solver.deadline_checks"
      in
      fun () ->
        Mpl_obs.Metrics.incr checks;
        Mpl_util.Timer.expired db
  in
  let budget =
    match algorithm with
    | Ilp | Exact ->
      let b = params.solver_budget_s in
      let b =
        match deadline_s with
        | Some d -> if b <= 0. then d else Float.min b d
        | None -> b
      in
      Mpl_util.Timer.budget b
    | Sdp_backtrack | Sdp_greedy | Linear -> Mpl_util.Timer.budget 0.
  in
  (* Leaf-level warm-hint cache (opt-in): remembers every solved piece
     under its canonical key and seeds SDP solves of near-isomorphic
     pieces from the stored coloring. Unlike the engine's component
     cache this never skips a solve, but warm-started solves may stop
     early, so it is off by default to preserve the bit-identity
     contract of the cold path. *)
  let warm_cache =
    match ext_warm with
    | Some _ as w -> w
    | None ->
      if params.cache_warm then
        Some
          (Mpl_engine.Cache.create ~mode:Mpl_engine.Cache.Permuted ~obs ~fault
             ())
      else None
  in
  let base_solver =
    make_solver ~obs ~params ~budget ~deadline_over ~timed_out ~fault ~prov
      ~warm_cache ~salt algorithm
  in
  let solve_ns = Atomic.make 0 in
  let caller_ns = ref 0. in
  let coord = Domain.self () in
  let solver piece =
    let s0 = Mpl_util.Timer.now_ns () in
    Fun.protect
      ~finally:(fun () ->
        let dt =
          Int64.to_int (Int64.sub (Mpl_util.Timer.now_ns ()) s0)
        in
        ignore (Atomic.fetch_and_add solve_ns dt);
        if Domain.self () = coord then
          caller_ns := !caller_ns +. (float_of_int dt /. 1e9))
      (fun () -> base_solver piece)
  in
  {
    rc_salt = salt;
    rc_stats = stats;
    rc_timed_out = timed_out;
    rc_fault = fault;
    rc_prov = prov;
    rc_solve_ns = solve_ns;
    rc_caller_ns = caller_ns;
    rc_solver = solver;
  }

(* Streaming parallel/cached assignment: split off the independent
   components (the same split the sequential division pipeline performs
   first), then run each component through an {!Mpl_engine.Engine}
   stream. Components are the reuse unit precisely because they share
   no edge with the rest of the graph: substituting any valid coloring
   of a component can never change a crossing cost, so cache reuse is
   cost-exact by construction.

   Unlike the old one-task-per-component batch, a component that must
   be solved fresh is *divided on the coordinating thread the moment it
   is pushed* ({!Division.plan}), and every leaf piece it sheds is
   submitted to the pool right away — largest pieces at highest
   priority, tiny pieces chunked into grouped submissions. Workers
   therefore start solving the first component's leaves while the
   coordinator is still dividing later components, which is where the
   old pipeline serialized (division is cheap but the leaf solves
   behind one big component used to be invisible to the pool until the
   whole component's recursion finished on a single worker). *)
let engine_assign ~obs ~params ~stats ~solver ~fault ~prov ~caller_ns
    ~ext_pool ~shared_cache ~salt ~on_component (g : Decomp_graph.t) =
  let jobs = max 1 params.jobs in
  (* Coordinator-side cancellation checkpoints: one atomic read per
     leaf emission / component push / component force. When the token
     trips, the assignment unwinds with [Pool.Cancelled] — queued
     pieces are dropped at dequeue, running ones finish but their
     results are never looked at. *)
  let check_cancel () =
    match params.cancel with
    | Some tok when Mpl_engine.Pool.cancelled tok ->
      raise Mpl_engine.Pool.Cancelled
    | _ -> ()
  in
  let comps =
    if params.stages.Division.use_components then
      Mpl_obs.Obs.span obs "division.components" (fun () ->
          Mpl_graph.Connectivity.components (Decomp_graph.union_graph g))
    else [| Array.init g.Decomp_graph.n (fun v -> v) |]
  in
  let pieces = Array.map (Decomp_graph.subgraph g) comps in
  (* Component cache: the caller's shared cross-request table when one
     was provided (the serving daemon passes its own), a private
     per-run table otherwise. Reuse from either is cost-exact: the salt
     partitions entries by solver parameters, and the Exact default
     additionally pins hits to byte-identical labelings. *)
  let cache =
    if not params.cache then None
    else
      match shared_cache with
      | Some c -> Some c
      | None ->
        Some
          (Mpl_engine.Cache.create
             ~mode:
               (if params.cache_permuted then Mpl_engine.Cache.Permuted
                else Mpl_engine.Cache.Exact)
             ~obs ~fault ())
  in
  let signature (piece, _back) =
    if params.cache then piece_signature ~salt piece else None
  in
  (* Vet cached colorings before reuse (length, completeness, color
     range) and isolate component-level failures: if a whole component
     plan/merge dies outside the leaf-solver ladder, color it greedily
     rather than abort the run. *)
  let validate (piece, _back) colors =
    Array.length colors = piece.Decomp_graph.n
    && Coloring.is_complete colors
    && Coloring.check_range ~k:params.k colors
  in
  let recover (piece, _back) e bt =
    (* Cancellation is not a component failure: let it abort the whole
       assignment instead of greedy-recovering a torn-down request. *)
    (match e with
    | Mpl_engine.Pool.Cancelled -> Printexc.raise_with_backtrace e bt
    | _ -> ());
    let local = Division.fresh_stats () in
    local.Division.pieces <- 1;
    local.Division.largest_piece <- piece.Decomp_graph.n;
    let colors =
      Bnb.greedy ~k:params.k
        (Bnb.instance_of_graph ~alpha:params.alpha piece)
    in
    prov_record prov ~raised:true ~fallbacks:1
      {
        piece_n = piece.Decomp_graph.n;
        failed_step = "component";
        error = Printexc.to_string e;
        solved_by = "greedy";
        attempts = 1;
      };
    (colors, local)
  in
  let chunk_below = max 0 params.chunk_below in
  let chunk_len = max 1 params.chunk_len in
  let bias = params.priority_bias in
  (* A caller-owned pool (the serving daemon's, shared by every
     in-flight request) is used as-is; otherwise spin up a private one
     sized by [jobs] for the duration of this assignment. *)
  let run_with_pool f =
    match ext_pool with
    | Some pool -> f pool
    | None -> Mpl_engine.Pool.with_pool ~obs ~fault ~jobs f
  in
  run_with_pool (fun pool ->
      (* Tiny leaves (n < chunk_below) are buffered and submitted
         [chunk_len] at a time as one pool task ({!Pool.submit_group}):
         dominant-share circuits shed thousands of 2..10-vertex pieces
         whose per-task dispatch otherwise costs more than their solve.
         The buffer only lives on the coordinating thread; a join thunk
         that runs ahead of the flush flushes on demand. *)
      let pending = ref [] and pending_len = ref 0 in
      let flush () =
        match !pending with
        | [] -> ()
        | ps ->
          let ps = List.rev ps in
          pending := [];
          pending_len := 0;
          let prio =
            List.fold_left
              (fun m ((p : Decomp_graph.t), _) -> max m p.Decomp_graph.n)
              0 ps
          in
          let futs =
            Mpl_engine.Pool.submit_group ~priority:(bias + prio)
              ?cancel:params.cancel pool
              (List.map (fun (p, _) () -> solver p) ps)
          in
          List.iter2 (fun (_, slot) fut -> slot := Some fut) ps futs
      in
      let emit_leaf (piece : Decomp_graph.t) =
        check_cancel ();
        if piece.Decomp_graph.n >= chunk_below then begin
          let fut =
            Mpl_engine.Pool.submit ~priority:(bias + piece.Decomp_graph.n)
              ?cancel:params.cancel pool (fun () -> solver piece)
          in
          fun () -> Mpl_engine.Pool.await pool fut
        end
        else begin
          let slot = ref None in
          pending := (piece, slot) :: !pending;
          incr pending_len;
          if !pending_len >= chunk_len then flush ();
          fun () ->
            (match !slot with None -> flush () | Some _ -> ());
            Mpl_engine.Pool.await pool (Option.get !slot)
        end
      in
      (* Plant = divide now (coordinating thread), emitting leaves into
         the pool; join later. The division analysis and the emit order
         are deterministic and color-independent, so scheduling stays
         a pure performance knob. *)
      let plant (piece, _back) =
        let local = Division.fresh_stats () in
        let join =
          Division.plan ~obs ~stages:params.stages ~stats:local ~k:params.k
            ~alpha:params.alpha ~emit:emit_leaf piece
        in
        fun () -> (join (), local)
      in
      let t =
        Mpl_engine.Engine.stream ~obs ?cache ~signature ~validate ~recover
          ~plant ()
      in
      Mpl_obs.Obs.span obs "engine.batch"
        ~args:
          (rid_args params
             [ ("pieces", Mpl_obs.Sink.Int (Array.length pieces)) ])
      @@ fun () ->
      let t0 = Mpl_util.Timer.now_ns () and c0 = !caller_ns in
      let cells =
        Array.map
          (fun p ->
            check_cancel ();
            Mpl_engine.Engine.push t p)
          pieces
      in
      flush ();
      let t1 = Mpl_util.Timer.now_ns () and c1 = !caller_ns in
      (* Cells are forced in push (= component index) order, so the
         [on_component] stream is deterministic regardless of which
         worker finished which piece first — the serving layer relies
         on this to keep streamed replies reproducible. *)
      let results =
        Array.mapi
          (fun i cell ->
            check_cancel ();
            let ((pc, _local) as r) = Mpl_engine.Engine.force t cell in
            (match on_component with
            | Some f ->
              let _piece, back = pieces.(i) in
              f i back pc
            | None -> ());
            r)
          cells
      in
      let t2 = Mpl_util.Timer.now_ns () and c2 = !caller_ns in
      let estats = Mpl_engine.Engine.finish t in
      let colors = Array.make g.Decomp_graph.n (-1) in
      Array.iteri
        (fun i (pc, local) ->
          let _piece, back = pieces.(i) in
          Array.iteri (fun j v -> colors.(v) <- pc.(j)) back;
          stats.Division.pieces <- stats.Division.pieces + local.Division.pieces;
          if local.Division.largest_piece > stats.Division.largest_piece then
            stats.Division.largest_piece <- local.Division.largest_piece;
          stats.Division.peeled <- stats.Division.peeled + local.Division.peeled;
          stats.Division.cuts <- stats.Division.cuts + local.Division.cuts)
        results;
      let s ns = Int64.to_float ns /. 1e9 in
      let division_s = max 0. (s (Int64.sub t1 t0) -. (c1 -. c0)) in
      let merge_s = max 0. (s (Int64.sub t2 t1) -. (c2 -. c1)) in
      let cstats = Option.map Mpl_engine.Cache.stats cache in
      (colors, estats, cstats, division_s, merge_s))

let assign ?(params = default_params) ?obs ?pool ?shared_cache ?on_component
    algorithm g =
  let obs = match obs with Some o -> o | None -> make_obs params in
  let rc = make_run_ctx ~obs ~params algorithm in
  let salt = rc.rc_salt and stats = rc.rc_stats in
  let fault = rc.rc_fault and prov = rc.rc_prov in
  let timed_out = rc.rc_timed_out and solver = rc.rc_solver in
  let solve_ns = rc.rc_solve_ns and caller_ns = rc.rc_caller_ns in
  let engine_stats = ref None in
  let cache_stats = ref None in
  let phases = ref no_phases in
  (* Any server-supplied machinery (shared pool, cross-request cache,
     streaming callback) forces the engine path even at jobs = 1. *)
  let use_engine =
    params.jobs > 1 || params.cache || Option.is_some pool
    || Option.is_some shared_cache
    || Option.is_some on_component
    || Option.is_some params.cancel
  in
  let (colors, elapsed_s) =
    Mpl_util.Timer.time (fun () ->
        Mpl_obs.Obs.span obs "assign"
          ~args:
            (rid_args params
               [
                 ("algorithm", Mpl_obs.Sink.Str (algorithm_name algorithm));
                 ("n", Mpl_obs.Sink.Int g.Decomp_graph.n);
               ])
        @@ fun () ->
        let colors =
          (* jobs = 1 without the cache takes the exact historical
             sequential path; anything else routes through the engine.
             The two are output-identical at jobs = 1 (the engine's
             component split mirrors the division pipeline's own first
             stage), but keeping the legacy path makes the sequential
             fallback trivially bit-for-bit. *)
          if not use_engine then begin
            let a0 = Mpl_util.Timer.now_ns () in
            let colors =
              Division.assign ~obs ~stages:params.stages ~stats ~k:params.k
                ~alpha:params.alpha ~solver g
            in
            let wall =
              Int64.to_float (Int64.sub (Mpl_util.Timer.now_ns ()) a0) /. 1e9
            in
            let solve_s = float_of_int (Atomic.get solve_ns) /. 1e9 in
            phases :=
              {
                division_s = max 0. (wall -. solve_s);
                solve_s;
                merge_s = 0.;
              };
            colors
          end
          else begin
            let colors, estats, cstats, division_s, merge_s =
              engine_assign ~obs ~params ~stats ~solver ~fault ~prov
                ~caller_ns ~ext_pool:pool ~shared_cache ~salt ~on_component g
            in
            engine_stats := Some estats;
            cache_stats := cstats;
            phases :=
              {
                division_s;
                solve_s = float_of_int (Atomic.get solve_ns) /. 1e9;
                merge_s;
              };
            colors
          end
        in
        let colors =
          match params.post with
          | No_post -> colors
          | Local_search ->
            Mpl_obs.Obs.span obs "post.local_search" (fun () ->
                Refine.local_search ~k:params.k ~alpha:params.alpha g colors)
          | Anneal iterations ->
            Mpl_obs.Obs.span obs "post.anneal" (fun () ->
                Refine.anneal ~iterations ~k:params.k ~alpha:params.alpha g
                  colors)
        in
        if params.balance then
          Mpl_obs.Obs.span obs "post.balance" (fun () ->
              Balance.rebalance ~k:params.k ~alpha:params.alpha g colors)
        else colors)
  in
  assert (Coloring.is_complete colors);
  assert (Coloring.check_range ~k:params.k colors);
  let cost = Coloring.evaluate ~alpha:params.alpha g colors in
  let metrics =
    let m = obs.Mpl_obs.Obs.metrics in
    if Mpl_obs.Metrics.enabled m then Some (Mpl_obs.Metrics.snapshot m)
    else None
  in
  {
    algorithm;
    params;
    cost;
    colors;
    elapsed_s;
    timed_out = Atomic.get timed_out;
    division = stats;
    phases = !phases;
    engine = !engine_stats;
    cache = !cache_stats;
    resilience = prov_snapshot prov ~fault;
    metrics;
    balance = Some (compute_balance ~k:params.k g colors);
    eco = None;
  }

let decompose ?(params = default_params) ?pool ?shared_cache ?on_component
    ?max_stitches_per_feature ~min_s algorithm layout =
  (* One context for the whole run, so the graph-construction spans and
     counters land in the same sink/registry as the assignment's. *)
  let obs = make_obs params in
  let g = Decomp_graph.of_layout ~obs ?max_stitches_per_feature layout ~min_s in
  (g, assign ~params ~obs ?pool ?shared_cache ?on_component algorithm g)

(* Sharded streaming front-end (the million-feature path): cut the
   layout into geometric windows with [min_s + hp]-wide halos
   ({!Shard.plan}), build each window's decomposition graph
   independently — bounding the resident graph-construction working set
   to O(window) — and stream every globally closed component through
   the same division/engine machinery as {!engine_assign}. Interior
   components are pushed window by window; border-straddling
   components are reconciled at feature granularity and rebuilt
   bit-identically from canonical owner-window shapes, then pushed
   last. Each border piece flows through the normal division pipeline,
   whose GH-cut merge reconnects the window-spanning halves by Lemma 1
   color rotation ({!Division.best_rotation}) via the same
   deterministic replay-merge thunks an unsharded run uses.

   Forcing lags pushing by a bounded number of cells, and a forced
   cell retains only its coloring and back maps — the piece graph is
   dropped — so peak residency is O(window) + O(output), not
   O(layout).

   Output bit-identity with the unsharded path: pieces are
   bit-identical to the unsharded components (see {!Shard}), each
   piece's division and solve are deterministic in the piece alone,
   and the final coloring is a scatter through the canonical
   (feature, segment) vertex order. Only the *emission order* of
   components differs (windows first, border classes last), which the
   cost cannot observe: every conflict and stitch edge is
   intra-component, so the total is the sum of per-piece costs.
   (Caveat: the shared-budget algorithms, Ilp/Exact, may trip their
   budget at a different piece than an unsharded run under time
   pressure — the bit-identity contract is for the self-contained
   solvers.) *)
let force_lag = 64

let sharded_assign ~obs ~params ~(rc : run_ctx) ~ext_pool ~shared_cache
    ~on_component ?max_stitches_per_feature ~min_s
    (layout : Mpl_layout.Layout.t) =
  let jobs = max 1 params.jobs in
  let check_cancel () =
    match params.cancel with
    | Some tok when Mpl_engine.Pool.cancelled tok ->
      raise Mpl_engine.Pool.Cancelled
    | _ -> ()
  in
  let hp = layout.Mpl_layout.Layout.tech.Mpl_layout.Layout.half_pitch in
  let halo = min_s + hp in
  let sh =
    Mpl_obs.Obs.span obs "shard.plan"
      ~args:
        (rid_args params
           [
             ( "features",
               Mpl_obs.Sink.Int (Array.length layout.Mpl_layout.Layout.features)
             );
           ])
      (fun () ->
        Shard.plan ?window_nm:params.window_nm ~windows:params.windows ~halo
          layout)
  in
  let m = obs.Mpl_obs.Obs.metrics in
  Mpl_obs.Metrics.add
    (Mpl_obs.Metrics.counter m "shard.windows")
    (Array.length sh.Shard.windows);
  let cache =
    if not params.cache then None
    else
      match shared_cache with
      | Some c -> Some c
      | None ->
        Some
          (Mpl_engine.Cache.create
             ~mode:
               (if params.cache_permuted then Mpl_engine.Cache.Permuted
                else Mpl_engine.Cache.Exact)
             ~obs ~fault:rc.rc_fault ())
  in
  let signature (p : Shard.piece) =
    if params.cache then piece_signature ~salt:rc.rc_salt p.Shard.graph
    else None
  in
  let validate (p : Shard.piece) colors =
    Array.length colors = p.Shard.graph.Decomp_graph.n
    && Coloring.is_complete colors
    && Coloring.check_range ~k:params.k colors
  in
  let recover (p : Shard.piece) e bt =
    (match e with
    | Mpl_engine.Pool.Cancelled -> Printexc.raise_with_backtrace e bt
    | _ -> ());
    let local = Division.fresh_stats () in
    local.Division.pieces <- 1;
    local.Division.largest_piece <- p.Shard.graph.Decomp_graph.n;
    let colors =
      Bnb.greedy ~k:params.k
        (Bnb.instance_of_graph ~alpha:params.alpha p.Shard.graph)
    in
    prov_record rc.rc_prov ~raised:true ~fallbacks:1
      {
        piece_n = p.Shard.graph.Decomp_graph.n;
        failed_step = "component";
        error = Printexc.to_string e;
        solved_by = "greedy";
        attempts = 1;
      };
    (colors, local)
  in
  let chunk_below = max 0 params.chunk_below in
  let chunk_len = max 1 params.chunk_len in
  let bias = params.priority_bias in
  let run_with_pool f =
    match ext_pool with
    | Some pool -> f pool
    | None -> Mpl_engine.Pool.with_pool ~obs ~fault:rc.rc_fault ~jobs f
  in
  run_with_pool (fun pool ->
      let pending = ref [] and pending_len = ref 0 in
      let flush () =
        match !pending with
        | [] -> ()
        | ps ->
          let ps = List.rev ps in
          pending := [];
          pending_len := 0;
          let prio =
            List.fold_left
              (fun mx ((p : Decomp_graph.t), _) -> max mx p.Decomp_graph.n)
              0 ps
          in
          let futs =
            Mpl_engine.Pool.submit_group ~priority:(bias + prio)
              ?cancel:params.cancel pool
              (List.map (fun (p, _) () -> rc.rc_solver p) ps)
          in
          List.iter2 (fun (_, slot) fut -> slot := Some fut) ps futs
      in
      let emit_leaf (piece : Decomp_graph.t) =
        check_cancel ();
        if piece.Decomp_graph.n >= chunk_below then begin
          let fut =
            Mpl_engine.Pool.submit ~priority:(bias + piece.Decomp_graph.n)
              ?cancel:params.cancel pool (fun () -> rc.rc_solver piece)
          in
          fun () -> Mpl_engine.Pool.await pool fut
        end
        else begin
          let slot = ref None in
          pending := (piece, slot) :: !pending;
          incr pending_len;
          if !pending_len >= chunk_len then flush ();
          fun () ->
            (match !slot with None -> flush () | Some _ -> ());
            Mpl_engine.Pool.await pool (Option.get !slot)
        end
      in
      let plant (p : Shard.piece) =
        let local = Division.fresh_stats () in
        let join =
          Division.plan ~obs ~stages:params.stages ~stats:local ~k:params.k
            ~alpha:params.alpha ~emit:emit_leaf p.Shard.graph
        in
        fun () -> (join (), local)
      in
      let t =
        Mpl_engine.Engine.stream ~obs ?cache ~signature ~validate ~recover
          ~plant ()
      in
      Mpl_obs.Obs.span obs "engine.batch"
        ~args:
          (rid_args params
             [ ("windows", Mpl_obs.Sink.Int (Array.length sh.Shard.windows)) ])
      @@ fun () ->
      let t0 = Mpl_util.Timer.now_ns () and c0 = !(rc.rc_caller_ns) in
      let acc = Shard.fresh_acc sh in
      let inflight = Queue.create () in
      let done_rev = ref [] in
      let cost_conf = ref 0 and cost_st = ref 0 and cost_sc = ref 0 in
      let merge_ns = ref 0L and merge_caller = ref 0. in
      let stats = rc.rc_stats in
      (* Forcing a cell is merge work: it reassembles a component's
         coloring and folds its cost and division stats, then drops the
         piece graph, keeping only (colors, back maps). *)
      let force_one () =
        let cell, (p : Shard.piece) = Queue.pop inflight in
        check_cancel ();
        let f0 = Mpl_util.Timer.now_ns () and fc0 = !(rc.rc_caller_ns) in
        let pc, (local : Division.stats) = Mpl_engine.Engine.force t cell in
        let c = Coloring.evaluate ~alpha:params.alpha p.Shard.graph pc in
        cost_conf := !cost_conf + c.Coloring.conflicts;
        cost_st := !cost_st + c.Coloring.stitches;
        cost_sc := !cost_sc + c.Coloring.scaled;
        stats.Division.pieces <- stats.Division.pieces + local.Division.pieces;
        if local.Division.largest_piece > stats.Division.largest_piece then
          stats.Division.largest_piece <- local.Division.largest_piece;
        stats.Division.peeled <- stats.Division.peeled + local.Division.peeled;
        stats.Division.cuts <- stats.Division.cuts + local.Division.cuts;
        done_rev := (pc, p.Shard.back_feature, p.Shard.back_seg) :: !done_rev;
        merge_ns :=
          Int64.add !merge_ns (Int64.sub (Mpl_util.Timer.now_ns ()) f0);
        merge_caller := !merge_caller +. (!(rc.rc_caller_ns) -. fc0)
      in
      let push_piece (p : Shard.piece) =
        check_cancel ();
        let cell = Mpl_engine.Engine.push t p in
        Queue.add (cell, p) inflight;
        if Queue.length inflight > force_lag then force_one ()
      in
      Array.iter
        (fun w ->
          List.iter push_piece
            (Shard.scan_window ~obs ?max_stitches_per_feature ~acc ~min_s ~hp
               layout w))
        sh.Shard.windows;
      let border = Shard.border_pieces ~obs acc ~min_s ~hp in
      Mpl_obs.Metrics.add
        (Mpl_obs.Metrics.counter m "shard.border_pieces")
        (List.length border);
      List.iter push_piece border;
      flush ();
      while not (Queue.is_empty inflight) do
        force_one ()
      done;
      let estats = Mpl_engine.Engine.finish t in
      let off, n = Shard.offsets acc in
      let colors = Array.make n (-1) in
      let m0 = Mpl_util.Timer.now_ns () in
      (* Scatter in emission (= push) order; [on_component] therefore
         streams deterministically, exactly like the unsharded engine
         path. Back maps translate to global vertex ids through the
         canonical feature-major offsets. *)
      List.iteri
        (fun i (pc, bf, bs) ->
          match on_component with
          | Some f ->
            let back =
              Array.init (Array.length bf) (fun j -> off.(bf.(j)) + bs.(j))
            in
            Array.iteri (fun j v -> colors.(v) <- pc.(j)) back;
            f i back pc
          | None ->
            Array.iteri (fun j c -> colors.(off.(bf.(j)) + bs.(j)) <- c) pc)
        (List.rev !done_rev);
      merge_ns := Int64.add !merge_ns (Int64.sub (Mpl_util.Timer.now_ns ()) m0);
      let t1 = Mpl_util.Timer.now_ns () and c1 = !(rc.rc_caller_ns) in
      let s ns = Int64.to_float ns /. 1e9 in
      let merge_s = max 0. (s !merge_ns -. !merge_caller) in
      let division_s =
        max 0. (s (Int64.sub t1 t0) -. (c1 -. c0) -. merge_s)
      in
      let cost =
        {
          Coloring.conflicts = !cost_conf;
          stitches = !cost_st;
          scaled = !cost_sc;
        }
      in
      let cstats = Option.map Mpl_engine.Cache.stats cache in
      (colors, cost, estats, cstats, division_s, merge_s))

let decompose_sharded ?(params = default_params) ?obs ?pool ?shared_cache
    ?on_component ?max_stitches_per_feature ~min_s algorithm layout =
  (match params.post with
  | No_post -> ()
  | Local_search | Anneal _ ->
    invalid_arg "decompose_sharded: post passes need the whole graph");
  if params.balance then
    invalid_arg "decompose_sharded: balance needs the whole graph";
  let obs = match obs with Some o -> o | None -> make_obs params in
  let rc = make_run_ctx ~obs ~params algorithm in
  let result = ref None in
  let (), elapsed_s =
    Mpl_util.Timer.time (fun () ->
        Mpl_obs.Obs.span obs "assign"
          ~args:
            (rid_args params
               [
                 ("algorithm", Mpl_obs.Sink.Str (algorithm_name algorithm));
                 ("windows", Mpl_obs.Sink.Int params.windows);
               ])
        @@ fun () ->
        result :=
          Some
            (sharded_assign ~obs ~params ~rc ~ext_pool:pool ~shared_cache
               ~on_component ?max_stitches_per_feature ~min_s layout))
  in
  let colors, cost, estats, cstats, division_s, merge_s =
    Option.get !result
  in
  assert (Coloring.is_complete colors);
  assert (Coloring.check_range ~k:params.k colors);
  let metrics =
    let mm = obs.Mpl_obs.Obs.metrics in
    if Mpl_obs.Metrics.enabled mm then Some (Mpl_obs.Metrics.snapshot mm)
    else None
  in
  {
    algorithm;
    params;
    cost;
    colors;
    elapsed_s;
    timed_out = Atomic.get rc.rc_timed_out;
    division = rc.rc_stats;
    phases =
      {
        division_s;
        solve_s = float_of_int (Atomic.get rc.rc_solve_ns) /. 1e9;
        merge_s;
      };
    engine = Some estats;
    cache = cstats;
    resilience = prov_snapshot rc.rc_prov ~fault:rc.rc_fault;
    metrics;
    (* The sharded path never materializes the whole graph, so the
       per-mask tallies (which want every vertex's area) are skipped —
       same reason the balance *pass* is rejected above. *)
    balance = None;
    eco = None;
  }

let pp_report ppf r =
  Format.fprintf ppf
    "%-13s cn#=%-4d st#=%-5d cost=%.1f CPU=%.3fs pieces=%d largest=%d%s%s%s"
    (algorithm_name r.algorithm) r.cost.Coloring.conflicts
    r.cost.Coloring.stitches
    (float_of_int r.cost.Coloring.scaled /. 1000.)
    r.elapsed_s r.division.Division.pieces r.division.Division.largest_piece
    (match r.engine with
    | Some e when r.params.cache ->
      Printf.sprintf " cache=%d/%d"
        (e.Mpl_engine.Engine.hits + e.Mpl_engine.Engine.reused)
        e.Mpl_engine.Engine.pieces
    | Some _ | None -> "")
    (if r.resilience.degraded > 0 then
       Printf.sprintf " degraded=%d" r.resilience.degraded
     else "")
    (if r.timed_out then " (TIMEOUT)" else "")

(* ------------------------------------------------------------------ *)
(* Incremental (ECO) re-decomposition                                 *)
(* ------------------------------------------------------------------ *)

(* Capture everything a later [redecompose] needs from a finished run.
   Component colorings are stored in (feature, segment) order restricted
   to each component's ascending vertex list — exactly the order
   [Decomp_graph.subgraph] extracts, so reuse is a pure blit. *)
let snapshot ?(params = default_params) ~min_s algorithm
    (g : Decomp_graph.t) (layout : Mpl_layout.Layout.t) (report : report) =
  let nf = Array.length layout.Mpl_layout.Layout.features in
  let seg_counts = Array.make nf 0 in
  Array.iter
    (fun f -> seg_counts.(f) <- seg_counts.(f) + 1)
    g.Decomp_graph.feature;
  let comps =
    Mpl_graph.Connectivity.components (Decomp_graph.union_graph g)
  in
  let colors = report.colors in
  let comp_of vs =
    let piece, _back = Decomp_graph.subgraph g vs in
    let pc = Array.map (fun v -> colors.(v)) vs in
    let cost = Coloring.evaluate ~alpha:params.alpha piece pc in
    (* vertices are feature-major, so one scan dedups feature ids *)
    let feats = ref [] in
    Array.iter
      (fun v ->
        let f = g.Decomp_graph.feature.(v) in
        match !feats with
        | f' :: _ when f' = f -> ()
        | _ -> feats := f :: !feats)
      vs;
    {
      Eco.features = Array.of_list (List.rev !feats);
      colors = pc;
      conflicts = cost.Coloring.conflicts;
      stitches = cost.Coloring.stitches;
      scaled = cost.Coloring.scaled;
    }
  in
  let layout_text = Mpl_layout.Layout_io.to_string layout in
  {
    Eco.layout_text;
    layout_hash = Digest.to_hex (Digest.string layout_text);
    min_s;
    salt = params_salt ~params algorithm;
    seg_counts;
    comps = Array.map comp_of comps;
  }

(* The core of [redecompose], after all validation has passed. Runs
   under the caller's span; returns [Ok (edited, report, session)]. *)
let redecompose_run ~(params : params) ~obs ~pool ~shared_cache ~on_component
    ~(prev : Eco.session) ~(base : Mpl_layout.Layout.t)
    ~(edited : Mpl_layout.Layout.t) ~new_of_old ~comp_of_feature ~salt ~edits
    algorithm =
  let module L = Mpl_layout.Layout in
  let module Geo = Mpl_geometry in
  let t0 = Mpl_util.Timer.start () in
  let nf_old = Array.length base.L.features in
  let nf_new = Array.length edited.L.features in
  let hp = base.L.tech.L.half_pitch in
  let min_s = prev.Eco.min_s in
  let halo = min_s + hp in
  (* --- dirty window: base features within [halo] of any edited rect.
     The Grid_index query is a superset; the polygon distance refine
     uses the same integer predicate as graph construction, so the
     touched set is exactly the features whose incident edges (or
     stitch splits) the edit could have changed. --- *)
  let touched = Array.make nf_old false in
  let drects = Eco.dirty_rects base edits in
  if nf_old > 0 && drects <> [] then begin
    (* Index only the features near the edit, not the whole die: a
       feature can be touched only if its bbox meets the dilated
       bounding box of all dirty rects, and on a localized ECO that
       window holds a few percent of the layout. The full pass is one
       cheap bbox test per feature; the index build is proportional to
       the window. *)
    let win =
      List.fold_left Geo.Rect.union_bbox (List.hd drects) (List.tl drects)
    in
    let win = Geo.Rect.inflate win halo in
    let idx = Geo.Grid_index.create ~cell:(max halo 16) in
    Array.iteri
      (fun i p ->
        let bb = Geo.Polygon.bbox p in
        if Geo.Rect.overlaps bb win || Geo.Rect.touches bb win then
          Geo.Grid_index.add idx i bb)
      base.L.features;
    let halo2 = halo * halo in
    List.iter
      (fun r ->
        let rp = Geo.Polygon.of_rect r in
        List.iter
          (fun i ->
            if
              (not touched.(i))
              && Geo.Polygon.distance2 base.L.features.(i) rp <= halo2
            then touched.(i) <- true)
          (Geo.Grid_index.query idx r ~radius:halo))
      drects
  end;
  (* --- dirty vs. clean previous components --- *)
  let ncomps_old = Array.length prev.Eco.comps in
  let comp_dirty = Array.make ncomps_old false in
  Array.iteri
    (fun f t -> if t then comp_dirty.(comp_of_feature.(f)) <- true)
    touched;
  let nclean = ref 0 in
  Array.iter (fun d -> if not d then incr nclean) comp_dirty;
  let nclean = !nclean in
  (* --- dirty features of the *edited* layout, ascending: survivors of
     dirty components keep their relative order, and every added
     feature (appended by [Eco.apply]) is dirty by definition --- *)
  let dirty_mark = Array.make nf_new false in
  Array.iteri
    (fun f o ->
      match o with
      | Some j when comp_dirty.(comp_of_feature.(f)) -> dirty_mark.(j) <- true
      | _ -> ())
    new_of_old;
  let n_surv =
    Array.fold_left
      (fun a o -> match o with Some _ -> a + 1 | None -> a)
      0 new_of_old
  in
  for j = n_surv to nf_new - 1 do
    dirty_mark.(j) <- true
  done;
  let ndirty_f = ref 0 in
  Array.iter (fun d -> if d then incr ndirty_f) dirty_mark;
  let dirty_new = Array.make !ndirty_f 0 in
  let w = ref 0 in
  Array.iteri
    (fun j d ->
      if d then begin
        dirty_new.(!w) <- j;
        incr w
      end)
    dirty_mark;
  let ndirty_f = !ndirty_f in
  let m = obs.Mpl_obs.Obs.metrics in
  Mpl_obs.Metrics.add
    (Mpl_obs.Metrics.counter m "eco.reused_components")
    nclean;
  Mpl_obs.Metrics.add
    (Mpl_obs.Metrics.counter m "eco.dirty_features")
    ndirty_f;
  (* --- dirty sub-layout and its graph. Feature order is ascending
     edited-layout order, so each rebuilt component is byte-identical
     to the [subgraph] extraction a cold run on the whole edited layout
     would hand the solver (see DESIGN.md §15). --- *)
  let sub =
    L.make ~name:edited.L.name edited.L.tech
      (Array.to_list (Array.map (fun j -> edited.L.features.(j)) dirty_new))
  in
  let g_d = Decomp_graph.of_layout ~obs sub ~min_s in
  (* --- seed the reuse machinery from the previous colorings of the
     dirty components: the engine's component cache (Exact hits skip
     byte-identical re-solves — repeated-pattern comps and comps whose
     graph the edit left unchanged) and the warm-hint cache (key-only
     matches seed SDP solves of near-isomorphic comps). The previous
     dirty sub-layout rebuilds those components bit-identically for the
     same reason [g_d] does. --- *)
  let engine_cache, ext_warm =
    if not (params.cache || params.cache_warm) then (shared_cache, None)
    else begin
      let ec =
        if not params.cache then None
        else
          match shared_cache with
          | Some _ as c -> c
          | None ->
            Some
              (Mpl_engine.Cache.create
                 ~mode:
                   (if params.cache_permuted then Mpl_engine.Cache.Permuted
                    else Mpl_engine.Cache.Exact)
                 ~obs ())
      in
      let wc =
        if params.cache_warm then
          Some (Mpl_engine.Cache.create ~mode:Mpl_engine.Cache.Permuted ~obs ())
        else None
      in
      let old_dirty = ref [] in
      for f = nf_old - 1 downto 0 do
        if comp_dirty.(comp_of_feature.(f)) then old_dirty := f :: !old_dirty
      done;
      let old_dirty = Array.of_list !old_dirty in
      if Array.length old_dirty > 0 then begin
        let sub_old =
          L.make ~name:base.L.name base.L.tech
            (Array.to_list (Array.map (fun f -> base.L.features.(f)) old_dirty))
        in
        let g_old = Decomp_graph.of_layout ~obs sub_old ~min_s in
        let comps_old =
          Mpl_graph.Connectivity.components (Decomp_graph.union_graph g_old)
        in
        Array.iter
          (fun vs ->
            let piece, _back = Decomp_graph.subgraph g_old vs in
            let ci =
              comp_of_feature.(old_dirty.(g_old.Decomp_graph.feature.(vs.(0))))
            in
            let c = prev.Eco.comps.(ci) in
            if
              Array.length c.Eco.colors = piece.Decomp_graph.n
              && Coloring.is_complete c.Eco.colors
              && Coloring.check_range ~k:params.k c.Eco.colors
            then
              match piece_signature ~salt piece with
              | None -> ()
              | Some s ->
                Option.iter
                  (fun cch ->
                    let st = Division.fresh_stats () in
                    st.Division.pieces <- 1;
                    st.Division.largest_piece <- piece.Decomp_graph.n;
                    Mpl_engine.Cache.store cch s (c.Eco.colors, st))
                  ec;
                Option.iter
                  (fun wch -> Mpl_engine.Cache.store wch s (c.Eco.colors, ()))
                  wc)
          comps_old
      end;
      (ec, wc)
    end
  in
  (* --- segment bookkeeping of the edited layout: clean features keep
     their previous split (the min_s-neighborhood fact), dirty features
     take theirs from [g_d] --- *)
  let new_seg = Array.make nf_new 0 in
  Array.iteri
    (fun f o ->
      match o with
      | Some j when not dirty_mark.(j) -> new_seg.(j) <- prev.Eco.seg_counts.(f)
      | _ -> ())
    new_of_old;
  for v = 0 to g_d.Decomp_graph.n - 1 do
    let gid = dirty_new.(g_d.Decomp_graph.feature.(v)) in
    new_seg.(gid) <- new_seg.(gid) + 1
  done;
  let off = Array.make (nf_new + 1) 0 in
  for j = 0 to nf_new - 1 do
    off.(j + 1) <- off.(j) + new_seg.(j)
  done;
  let n_new = off.(nf_new) in
  (* dirty-graph vertex -> edited-layout (full-graph) vertex *)
  let vmap = Array.make g_d.Decomp_graph.n 0 in
  let run_start = ref 0 and cur_f = ref (-1) in
  for v = 0 to g_d.Decomp_graph.n - 1 do
    let fd = g_d.Decomp_graph.feature.(v) in
    if fd <> !cur_f then begin
      cur_f := fd;
      run_start := v
    end;
    vmap.(v) <- off.(dirty_new.(fd)) + (v - !run_start)
  done;
  (* --- solve only the dirty graph through the standard engine path,
     streaming dirty components remapped to edited-layout vertex ids --- *)
  let rc = make_run_ctx ?ext_warm ~obs ~params algorithm in
  let on_component =
    Option.map
      (fun f i back pc -> f i (Array.map (fun v -> vmap.(v)) back) pc)
      on_component
  in
  let colors_d, estats, cstats, division_s, merge_s =
    engine_assign ~obs ~params ~stats:rc.rc_stats ~solver:rc.rc_solver
      ~fault:rc.rc_fault ~prov:rc.rc_prov ~caller_ns:rc.rc_caller_ns
      ~ext_pool:pool ~shared_cache:engine_cache ~salt ~on_component g_d
  in
  let comps_d =
    Mpl_graph.Connectivity.components (Decomp_graph.union_graph g_d)
  in
  Mpl_obs.Metrics.add
    (Mpl_obs.Metrics.counter m "eco.dirty_components")
    (Array.length comps_d);
  (* --- assemble the full coloring: dirty vertices scattered through
     [vmap], clean components blitted verbatim --- *)
  let colors_full = Array.make n_new (-1) in
  for v = 0 to g_d.Decomp_graph.n - 1 do
    colors_full.(vmap.(v)) <- colors_d.(v)
  done;
  Array.iteri
    (fun ci (c : Eco.comp) ->
      if not comp_dirty.(ci) then begin
        let cur = ref 0 in
        Array.iter
          (fun f ->
            let j = Option.get new_of_old.(f) in
            let len = prev.Eco.seg_counts.(f) in
            Array.blit c.Eco.colors !cur colors_full off.(j) len;
            cur := !cur + len)
          c.Eco.features
      end)
    prev.Eco.comps;
  assert (Coloring.is_complete colors_full);
  assert (Coloring.check_range ~k:params.k colors_full);
  (* --- total cost: clean components contribute their recorded costs
     (no edge ever crosses a component boundary), dirty ones are
     re-evaluated on [g_d] --- *)
  let cost_d = Coloring.evaluate ~alpha:params.alpha g_d colors_d in
  let conflicts = ref cost_d.Coloring.conflicts
  and stitches = ref cost_d.Coloring.stitches
  and scaled = ref cost_d.Coloring.scaled in
  Array.iteri
    (fun ci (c : Eco.comp) ->
      if not comp_dirty.(ci) then begin
        conflicts := !conflicts + c.Eco.conflicts;
        stitches := !stitches + c.Eco.stitches;
        scaled := !scaled + c.Eco.scaled
      end)
    prev.Eco.comps;
  (* --- next session, so edits chain: clean components remapped to
     edited-layout feature ids, dirty ones captured fresh --- *)
  let clean_comps = ref [] in
  Array.iteri
    (fun ci (c : Eco.comp) ->
      if not comp_dirty.(ci) then
        clean_comps :=
          {
            c with
            Eco.features =
              Array.map (fun f -> Option.get new_of_old.(f)) c.Eco.features;
          }
          :: !clean_comps)
    prev.Eco.comps;
  let dirty_comps =
    Array.map
      (fun vs ->
        let piece, _back = Decomp_graph.subgraph g_d vs in
        let pc = Array.map (fun v -> colors_d.(v)) vs in
        let cc = Coloring.evaluate ~alpha:params.alpha piece pc in
        let feats = ref [] in
        Array.iter
          (fun v ->
            let f = dirty_new.(g_d.Decomp_graph.feature.(v)) in
            match !feats with
            | f' :: _ when f' = f -> ()
            | _ -> feats := f :: !feats)
          vs;
        {
          Eco.features = Array.of_list (List.rev !feats);
          colors = pc;
          conflicts = cc.Coloring.conflicts;
          stitches = cc.Coloring.stitches;
          scaled = cc.Coloring.scaled;
        })
      comps_d
  in
  let comps =
    Array.append (Array.of_list (List.rev !clean_comps)) dirty_comps
  in
  Array.sort
    (fun (a : Eco.comp) (b : Eco.comp) ->
      compare a.Eco.features.(0) b.Eco.features.(0))
    comps;
  let layout_text = Mpl_layout.Layout_io.to_string edited in
  let session =
    {
      Eco.layout_text;
      layout_hash = Digest.to_hex (Digest.string layout_text);
      min_s;
      salt;
      seg_counts = new_seg;
      comps;
    }
  in
  let metrics =
    if Mpl_obs.Metrics.enabled m then Some (Mpl_obs.Metrics.snapshot m)
    else None
  in
  let report =
    {
      algorithm;
      params;
      cost =
        {
          Coloring.conflicts = !conflicts;
          stitches = !stitches;
          scaled = !scaled;
        };
      colors = colors_full;
      elapsed_s = Mpl_util.Timer.elapsed_s t0;
      timed_out = Atomic.get rc.rc_timed_out;
      division = rc.rc_stats;
      phases =
        {
          division_s;
          solve_s = float_of_int (Atomic.get rc.rc_solve_ns) /. 1e9;
          merge_s;
        };
      engine = Some estats;
      cache = cstats;
      resilience = prov_snapshot rc.rc_prov ~fault:rc.rc_fault;
      metrics;
      balance = None;
      eco =
        Some
          {
            dirty_components = Array.length comps_d;
            reused_components = nclean;
            dirty_features = ndirty_f;
          };
    }
  in
  Ok (edited, report, session)

(* Re-decompose after an edit, reusing every component the edit cannot
   have touched. Correctness argument (DESIGN.md §15, in brief): every
   edge of the decomposition graph joins features within the
   color-friendly radius [min_s + hp], and a feature's stitch split
   depends only on its neighbors within [min_s]. Dilating the edited
   rectangles by [min_s + hp] therefore bounds the region where the
   graph can differ from the previous run's: a component none of whose
   features intersects that window keeps exactly its previous vertex
   set, edges, and (because the solver is deterministic) its previous
   coloring — so we reuse its bytes instead of re-solving. The dirty
   features are re-split and re-solved as a sub-layout, which rebuilds
   their components bit-identically to a cold run on the whole edited
   layout. *)
let redecompose ?(params = default_params) ?obs ?pool ?shared_cache
    ?on_component ~(prev : Eco.session) ~edits algorithm =
  let module L = Mpl_layout.Layout in
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let salt = params_salt ~params algorithm in
  if salt <> prev.Eco.salt then
    err "redecompose: session solved under different parameters (%s vs %s)"
      prev.Eco.salt salt
  else if params.post <> No_post then
    Error "redecompose: post passes need the whole graph"
  else if params.balance then
    Error "redecompose: balance pass needs the whole graph"
  else
    match Mpl_layout.Layout_io.of_string prev.Eco.layout_text with
    | exception Mpl_layout.Layout_io.Parse_error { line; msg } ->
      err "redecompose: session layout line %d: %s" line msg
    | base -> (
      let nf_old = Array.length base.L.features in
      if Array.length prev.Eco.seg_counts <> nf_old then
        Error "redecompose: session corrupt (seg_counts/features mismatch)"
      else
        (* every base feature must belong to exactly one session comp *)
        let comp_of_feature = Array.make nf_old (-1) in
        let dup = ref false in
        Array.iteri
          (fun ci (c : Eco.comp) ->
            Array.iter
              (fun f ->
                if f < 0 || f >= nf_old || comp_of_feature.(f) >= 0 then
                  dup := true
                else comp_of_feature.(f) <- ci)
              c.Eco.features)
          prev.Eco.comps;
        if !dup || Array.exists (fun c -> c < 0) comp_of_feature then
          Error "redecompose: session corrupt (component cover)"
        else
          match Eco.apply base edits with
          | Error m -> Error m
          | Ok (edited, new_of_old) ->
            let obs = match obs with Some o -> o | None -> make_obs params in
            let result =
              Mpl_obs.Obs.span obs "redecompose"
                ~args:
                  (rid_args params
                     [ ("edits", Mpl_obs.Sink.Int (List.length edits)) ])
              @@ fun () ->
              redecompose_run ~params ~obs ~pool ~shared_cache ~on_component
                ~prev ~base ~edited ~new_of_old ~comp_of_feature ~salt
                ~edits algorithm
            in
            result)
