(** Weighted branch-and-bound k-coloring search.

    One engine serves two consumers: the exact reference colorer (unit
    edge weights) and the paper's Algorithm 1 BACKTRACK stage, where
    merged vertices carry multi-edges and therefore weighted conflict /
    stitch costs. The search assigns vertices in a connectivity-aware
    static order, prunes on partial cost against the incumbent, breaks
    color symmetry by capping each vertex's palette at one beyond the
    highest color used so far, and honors a node budget so it degrades
    into an anytime heuristic on oversized components. *)

type edge = {
  target : int;
  same_cost : int;  (** added when both endpoints share a color *)
  diff_cost : int;  (** added when they differ *)
}

type instance = { n : int; adj : edge list array }

val instance_of_graph : alpha:float -> Decomp_graph.t -> instance
(** Unit-weight instance: conflicts cost [Coloring.weight_conflict] when
    monochromatic, stitches cost [Coloring.stitch_weight ~alpha] when
    bichromatic. *)

val greedy : k:int -> instance -> int array
(** Quick greedy coloring (min local cost in search order), used to seed
    the incumbent. *)

val cost : instance -> int array -> int
(** Total scaled cost of a complete coloring. *)

type result = {
  colors : int array;
  scaled_cost : int;
  optimal : bool;  (** search space exhausted within the budget *)
  nodes : int;  (** branch nodes expanded *)
}

val solve :
  ?node_cap:int ->
  ?budget:Mpl_util.Timer.budget ->
  ?init:int array ->
  k:int ->
  instance ->
  result
(** Best coloring found. [init] seeds the incumbent (in addition to the
    internal greedy seed). Default node cap: 2_000_000. *)
