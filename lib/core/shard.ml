module Rect = Mpl_geometry.Rect
module Polygon = Mpl_geometry.Polygon
module Layout = Mpl_layout.Layout
module Stitch = Mpl_layout.Stitch
module Dsu = Mpl_graph.Dsu
module Connectivity = Mpl_graph.Connectivity

type window = { members : int array; core : bool array }

type plan = { n_features : int; halo : int; windows : window array }

let plan ?window_nm ?(windows = 1) ~halo (layout : Layout.t) =
  let feats = layout.Layout.features in
  let nf = Array.length feats in
  if nf = 0 then { n_features = 0; halo; windows = [||] }
  else begin
    let boxes = Array.map Polygon.bbox feats in
    let bb = Array.fold_left Rect.union_bbox boxes.(0) boxes in
    let horiz = Rect.width bb >= Rect.height bb in
    let lo, hi =
      if horiz then (bb.Rect.x0, bb.Rect.x1) else (bb.Rect.y0, bb.Rect.y1)
    in
    let count =
      match window_nm with
      | Some w when w > 0 -> max 1 (((hi - lo) + w - 1) / w)
      | Some _ | None -> max 1 windows
    in
    let count = min count nf in
    if count <= 1 then
      {
        n_features = nf;
        halo;
        windows =
          [|
            {
              members = Array.init nf (fun i -> i);
              core = Array.make nf true;
            };
          |];
      }
    else begin
      let span = hi - lo in
      let owner = Array.make nf 0 in
      for i = 0 to nf - 1 do
        let b = boxes.(i) in
        (* Twice the bbox center along the cutting axis, kept integral;
           strips partition [lo, hi] evenly. *)
        let c2 =
          if horiz then b.Rect.x0 + b.Rect.x1 else b.Rect.y0 + b.Rect.y1
        in
        let w = (c2 - (2 * lo)) * count / (2 * span) in
        owner.(i) <- min (count - 1) (max 0 w)
      done;
      let extent = Array.make count None in
      for i = 0 to nf - 1 do
        let w = owner.(i) in
        extent.(w) <-
          (match extent.(w) with
          | None -> Some boxes.(i)
          | Some e -> Some (Rect.union_bbox e boxes.(i)))
      done;
      let halo2 = halo * halo in
      let members = Array.make count [] in
      for i = nf - 1 downto 0 do
        for w = 0 to count - 1 do
          match extent.(w) with
          | None -> ()
          | Some e ->
            if owner.(i) = w || Rect.distance2 boxes.(i) e <= halo2 then
              members.(w) <- i :: members.(w)
        done
      done;
      let ws = ref [] in
      for w = count - 1 downto 0 do
        match extent.(w) with
        | None -> ()
        | Some _ ->
          let m = Array.of_list members.(w) in
          let core = Array.map (fun i -> owner.(i) = w) m in
          ws := { members = m; core } :: !ws
      done;
      { n_features = nf; halo; windows = Array.of_list !ws }
    end
  end

type piece = {
  graph : Decomp_graph.t;
  back_feature : int array;
  back_seg : int array;
}

type acc = {
  dsu : Dsu.t;  (* feature-level: observed conflict pairs *)
  border : bool array;  (* feature is in a border-straddling component *)
  segs : int array;  (* canonical segment count; -1 = owner not yet seen *)
  shapes : Polygon.t array array;  (* canonical shapes of border features *)
}

let fresh_acc plan =
  {
    dsu = Dsu.create plan.n_features;
    border = Array.make plan.n_features false;
    segs = Array.make plan.n_features (-1);
    shapes = Array.make plan.n_features [||];
  }

let seg_count acc f = acc.segs.(f)

let offsets acc =
  let nf = Array.length acc.segs in
  let off = Array.make nf 0 in
  let total = ref 0 in
  for f = 0 to nf - 1 do
    off.(f) <- !total;
    let s = acc.segs.(f) in
    if s < 0 then
      invalid_arg "Shard.offsets: a feature's owner window was never scanned";
    total := !total + s
  done;
  (off, !total)

let scan_window ?(obs = Mpl_obs.Obs.null) ?max_stitches_per_feature ~acc
    ~min_s ~hp (layout : Layout.t) w =
  let members = w.members in
  let nm = Array.length members in
  Mpl_obs.Obs.span obs "shard.window"
    ~args:[ ("features", Mpl_obs.Sink.Int nm) ]
  @@ fun () ->
  let wl =
    Layout.make ~name:layout.Layout.name layout.Layout.tech
      (Array.to_list (Array.map (fun i -> layout.Layout.features.(i)) members))
  in
  let split = Stitch.split ?max_stitches_per_feature wl ~min_s in
  let g = Decomp_graph.of_nodes ~obs split ~hp ~min_s in
  let nodes = split.Stitch.nodes in
  let n = g.Decomp_graph.n in
  (* Nodes are feature-major in window feature order: per-feature first
     vertex and segment count in one scan. *)
  let fstart = Array.make nm 0 in
  let fcount = Array.make nm 0 in
  Array.iteri
    (fun v (node : Stitch.node) ->
      let f = node.Stitch.feature in
      if fcount.(f) = 0 then fstart.(f) <- v;
      fcount.(f) <- fcount.(f) + 1)
    nodes;
  for f = 0 to nm - 1 do
    if w.core.(f) then acc.segs.(members.(f)) <- fcount.(f)
  done;
  (* Every observed conflict edge joins two features that really are
     within min_s globally (distances are absolute), so unioning them is
     always sound; completeness comes from each feature's owner window
     seeing its whole halo. *)
  let cadj = g.Decomp_graph.conflict in
  for u = 0 to n - 1 do
    Decomp_graph.iter cadj u (fun v ->
        if u < v then
          ignore
            (Dsu.union acc.dsu
               members.(nodes.(u).Stitch.feature)
               members.(nodes.(v).Stitch.feature)))
  done;
  let comps =
    Mpl_obs.Obs.span obs "division.components" (fun () ->
        Connectivity.components (Decomp_graph.union_graph g))
  in
  let interior = ref [] in
  Array.iter
    (fun comp ->
      let any_core = ref false and all_core = ref true in
      Array.iter
        (fun v ->
          if w.core.(nodes.(v).Stitch.feature) then any_core := true
          else all_core := false)
        comp;
      if !any_core then begin
        if !all_core then begin
          let graph, back = Decomp_graph.subgraph g comp in
          let back_feature =
            Array.map (fun v -> members.(nodes.(v).Stitch.feature)) back
          in
          let back_seg =
            Array.map (fun v -> v - fstart.(nodes.(v).Stitch.feature)) back
          in
          interior := { graph; back_feature; back_seg } :: !interior
        end
        else begin
          (* Border-straddling: defer. Record each core feature's
             canonical segment shapes once, in its owner window. *)
          let seen = Hashtbl.create 16 in
          Array.iter
            (fun v ->
              let f = nodes.(v).Stitch.feature in
              if w.core.(f) && not (Hashtbl.mem seen f) then begin
                Hashtbl.add seen f ();
                let gid = members.(f) in
                acc.border.(gid) <- true;
                acc.shapes.(gid) <-
                  Array.init fcount.(f) (fun s ->
                      nodes.(fstart.(f) + s).Stitch.shape)
              end)
            comp
        end
      end)
    comps;
  List.rev !interior

let border_pieces ?(obs = Mpl_obs.Obs.null) acc ~min_s ~hp =
  let nf = Array.length acc.border in
  (* Group border features by DSU class, classes ordered by smallest
     member, members ascending. *)
  let groups = Hashtbl.create 64 in
  for f = nf - 1 downto 0 do
    if acc.border.(f) then begin
      let r = Dsu.find acc.dsu f in
      match Hashtbl.find_opt groups r with
      | Some l -> Hashtbl.replace groups r (f :: l)
      | None -> Hashtbl.add groups r [ f ]
    end
  done;
  let seen = Hashtbl.create 64 in
  let ranked = ref [] in
  for f = 0 to nf - 1 do
    if acc.border.(f) then begin
      let r = Dsu.find acc.dsu f in
      if not (Hashtbl.mem seen r) then begin
        Hashtbl.add seen r ();
        ranked := r :: !ranked
      end
    end
  done;
  let ranked = List.rev !ranked in
  List.map
    (fun r ->
      let feats = Array.of_list (Hashtbl.find groups r) in
      (* Built high-to-low with conses: already ascending. *)
      let back_feature = ref [] and back_seg = ref [] in
      let nodes = ref [] and stitch_edges = ref [] in
      let next = ref 0 in
      Array.iteri
        (fun fi gid ->
          let shapes = acc.shapes.(gid) in
          let first = !next in
          Array.iteri
            (fun s shape ->
              nodes := { Stitch.feature = fi; shape } :: !nodes;
              back_feature := gid :: !back_feature;
              back_seg := s :: !back_seg;
              if s > 0 then
                stitch_edges := (first + s - 1, first + s) :: !stitch_edges;
              incr next)
            shapes)
        feats;
      let split =
        {
          Stitch.nodes = Array.of_list (List.rev !nodes);
          stitch_edges = List.rev !stitch_edges;
        }
      in
      let graph = Decomp_graph.of_nodes ~obs split ~hp ~min_s in
      {
        graph;
        back_feature = Array.of_list (List.rev !back_feature);
        back_seg = Array.of_list (List.rev !back_seg);
      })
    ranked
