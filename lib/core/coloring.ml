type t = int array

let weight_conflict = 1000

let stitch_weight ~alpha = int_of_float (Float.round (alpha *. 1000.))

type cost = { conflicts : int; stitches : int; scaled : int }

let evaluate ?(alpha = 0.1) (g : Decomp_graph.t) colors =
  let conflicts = ref 0 in
  let stitches = ref 0 in
  for u = 0 to g.Decomp_graph.n - 1 do
    if colors.(u) >= 0 then begin
      Decomp_graph.iter g.Decomp_graph.conflict u (fun v ->
          if u < v && colors.(v) = colors.(u) then incr conflicts);
      Decomp_graph.iter g.Decomp_graph.stitch u (fun v ->
          if u < v && colors.(v) >= 0 && colors.(v) <> colors.(u) then
            incr stitches)
    end
  done;
  let scaled =
    (weight_conflict * !conflicts) + (stitch_weight ~alpha * !stitches)
  in
  { conflicts = !conflicts; stitches = !stitches; scaled }

let check_range ~k colors =
  Array.for_all (fun c -> c >= -1 && c < k) colors

let is_complete colors = Array.for_all (fun c -> c >= 0) colors

let permute colors sigma =
  Array.map (fun c -> if c < 0 then c else sigma.(c)) colors

let rotate_in_place colors vs ~k ~by =
  Array.iter
    (fun v -> if colors.(v) >= 0 then colors.(v) <- (colors.(v) + by) mod k)
    vs
