(* Deterministic fault injection for the decomposition engine.

   An armed injector targets exactly one site; the seed selects *which*
   eligible occurrence of that site fires (occurrence [seed mod 8],
   counted from 0), and [shots] consecutive occurrences fire starting
   there. Occurrences are counted with an atomic, so with one worker the
   firing point is fully deterministic; with several workers the set of
   eligible occurrences is the same but their global order may vary —
   the robustness guarantees (legal output, accurate provenance) hold
   either way. *)

type site =
  | Solver_raise
  | Worker_delay
  | Cache_corrupt
  | Budget_trip
  | Conn_drop
  | Write_stall
  | Torn_frame

type spec = { site : site; seed : int; shots : int }

exception Injected of site

type t = {
  spec : spec option;
  count : int Atomic.t;  (* eligible occurrences of the armed site seen *)
  fired_c : int Atomic.t;
}

let site_name = function
  | Solver_raise -> "solver_raise"
  | Worker_delay -> "worker_delay"
  | Cache_corrupt -> "cache_corrupt"
  | Budget_trip -> "budget_trip"
  | Conn_drop -> "conn_drop"
  | Write_stall -> "write_stall"
  | Torn_frame -> "torn_frame"

let site_of_name = function
  | "solver_raise" -> Some Solver_raise
  | "worker_delay" | "delay" -> Some Worker_delay
  | "cache_corrupt" -> Some Cache_corrupt
  | "budget_trip" -> Some Budget_trip
  | "conn_drop" -> Some Conn_drop
  | "write_stall" -> Some Write_stall
  | "torn_frame" -> Some Torn_frame
  | _ -> None

let spec_to_string sp =
  Printf.sprintf "%s:seed=%d%s" (site_name sp.site) sp.seed
    (if sp.shots = 1 then "" else Printf.sprintf ":shots=%d" sp.shots)

let parse s =
  match String.split_on_char ':' s with
  | [] | [ "" ] -> Error "empty fault spec"
  | name :: opts -> (
    match site_of_name name with
    | None ->
      Error
        (Printf.sprintf
           "unknown fault site %S (expected solver_raise, worker_delay, \
            cache_corrupt, budget_trip, conn_drop, write_stall or \
            torn_frame)"
           name)
    | Some site ->
      let parse_opt acc opt =
        match acc with
        | Error _ -> acc
        | Ok sp -> (
          match String.split_on_char '=' opt with
          | [ "seed"; v ] -> (
            match int_of_string_opt v with
            | Some seed when seed >= 0 -> Ok { sp with seed }
            | _ -> Error (Printf.sprintf "bad seed %S" v))
          | [ "shots"; v ] -> (
            match int_of_string_opt v with
            | Some shots when shots >= 1 -> Ok { sp with shots }
            | _ -> Error (Printf.sprintf "bad shots %S" v))
          | _ -> Error (Printf.sprintf "bad fault option %S" opt))
      in
      List.fold_left parse_opt (Ok { site; seed = 0; shots = 1 }) opts)

let none = { spec = None; count = Atomic.make 0; fired_c = Atomic.make 0 }

let arm spec =
  { spec = Some spec; count = Atomic.make 0; fired_c = Atomic.make 0 }

let armed t = t.spec <> None

let fires t site =
  match t.spec with
  | None -> false
  | Some sp when sp.site <> site -> false
  | Some sp ->
    let c = Atomic.fetch_and_add t.count 1 in
    let first = sp.seed land 0x7 in
    if c >= first && c < first + sp.shots then begin
      Atomic.incr t.fired_c;
      true
    end
    else false

let fired t = Atomic.get t.fired_c > 0
let fire_count t = Atomic.get t.fired_c

(* Busy-wait so the delay works from any domain without a Unix
   dependency; ~5 ms is enough to perturb work-stealing schedules. *)
let delay ?(ns = 5_000_000L) () =
  let t0 = Mpl_util.Timer.now_ns () in
  while Int64.sub (Mpl_util.Timer.now_ns ()) t0 < ns do
    Domain.cpu_relax ()
  done
