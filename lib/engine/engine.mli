(** Streaming driver: route independent pieces through the {!Pool} with
    {!Cache}-based deduplication, overlapping piece production with
    solving.

    The driver is generic in the piece type ['a] and in the metadata
    the solver returns alongside each coloring ['v] (the decomposer
    threads per-piece division statistics through it). All cache probes
    and leader elections happen on the pushing thread in push order, so
    a given (piece sequence, cache mode) pair always resolves hits,
    batch reuses, and fresh solves identically — regardless of how many
    workers the pool has or how work is scheduled behind [plant]. This
    is what keeps [jobs] a pure performance knob. *)

type stats = {
  pieces : int;  (** pieces routed through the driver *)
  solved : int;  (** solved fresh (planted) *)
  hits : int;  (** served from pre-existing cache entries *)
  reused : int;  (** deduplicated against an earlier piece of this stream *)
  failed : int;  (** leaders whose solve raised and was recovered *)
  rejected : int;  (** cache hits discarded by [validate] *)
}

val no_stats : stats

val add_stats : stats -> stats -> stats

type ('a, 'v) t
(** A piece stream. Not thread-safe: push and force from the
    coordinating thread only (worker parallelism lives behind the
    [plant] callback). *)

type ('a, 'v) cell
(** A pushed piece's pending result; redeem with {!force}. *)

val stream :
  ?obs:Mpl_obs.Obs.t ->
  ?cache:'v Cache.t ->
  ?signature:('a -> Cache.signature option) ->
  ?validate:('a -> int array -> bool) ->
  ?recover:('a -> exn -> Printexc.raw_backtrace -> int array * 'v) ->
  plant:('a -> unit -> int array * 'v) ->
  unit ->
  ('a, 'v) t
(** Create a stream. [plant item] is invoked at {!push} time for every
    item that must be solved fresh (cache miss that is not a follower of
    an earlier pushed item); it starts the work — typically by
    submitting to a {!Pool} — and returns the join thunk {!force} later
    calls for the result. [signature], [validate] and [recover] have the
    same semantics as in {!solve_pieces}. *)

val push : ('a, 'v) t -> 'a -> ('a, 'v) cell
(** Route one piece: probe the cache, elect or follow a batch leader,
    or plant a fresh solve. Returns immediately; the result is demanded
    with {!force}. For a piece whose [signature] is [Some s]: a
    validated cache hit is [Ready] at once; a piece compatible with an
    earlier pushed *unsolved* piece follows that leader (one solve
    serves both); everything else is planted. Pieces with no signature
    (or no [cache]) are always planted. *)

val force : ('a, 'v) t -> ('a, 'v) cell -> int array * 'v
(** Redeem a cell (idempotent — the result is memoized). For a planted
    leader this joins the work, stores the result into the cache, and —
    if the join raises — routes the failure through [recover] (counted
    in [stats.failed]; the substitute is never cached) or re-raises
    with the original backtrace when no [recover] was given. Forcing a
    follower forces its leader first. *)

val finish : ('a, 'v) t -> stats
(** Snapshot the stream's statistics and accumulate them into the
    [engine.pieces] / [engine.solved] / [engine.cache_hits] /
    [engine.batch_reused] / [engine.piece_failures] /
    [engine.cache_rejects] counters of [obs]. Call once, after the last
    {!force}. *)

val solve_pieces :
  ?obs:Mpl_obs.Obs.t ->
  pool:Pool.t ->
  ?cache:'v Cache.t ->
  ?signature:('a -> Cache.signature option) ->
  ?validate:('a -> int array -> bool) ->
  ?recover:('a -> exn -> Printexc.raw_backtrace -> int array * 'v) ->
  solve:('a -> int array * 'v) ->
  'a list ->
  (int array * 'v) list * stats
(** Batch entry point on top of {!stream}: push every piece (planting
    leaders as pool submissions), then force in input order. Returns
    the solved colorings in input order plus the stream's {!stats}.

    [validate piece colors] (default: always [true]) vets every cache
    hit before reuse; a rejected hit counts in [stats.rejected] and the
    piece is re-solved as if it had missed.

    [recover piece exn bt] isolates solver failures per piece: when a
    leader's [solve] raises, the exception is confined to that piece and
    [recover] supplies a substitute result (which followers of the same
    leader also reuse, but which is never stored into the cache). The
    piece counts in [stats.failed]. Without [recover] the first failing
    leader's exception is re-raised with its original backtrace — the
    pre-existing all-or-nothing contract.

    With [obs], the whole batch runs under an [engine.batch] span. *)
