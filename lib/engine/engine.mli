(** Batch driver: route a list of independent pieces through the
    {!Pool} with {!Cache}-based deduplication.

    The driver is generic in the piece type ['a] and in the metadata
    the solver returns alongside each coloring ['v] (the decomposer
    threads per-piece division statistics through it). All cache probes
    and stores happen on the calling thread in piece-index order, so a
    given (piece list, cache mode) pair always resolves hits, batch
    reuses, and fresh solves identically — regardless of how many
    workers the pool has. This is what keeps [jobs] a pure performance
    knob. *)

type stats = {
  pieces : int;  (** pieces routed through the driver *)
  solved : int;  (** solved fresh (submitted to the pool) *)
  hits : int;  (** served from pre-existing cache entries *)
  reused : int;  (** deduplicated against an earlier piece of this batch *)
}

val no_stats : stats

val add_stats : stats -> stats -> stats

val solve_pieces :
  ?obs:Mpl_obs.Obs.t ->
  pool:Pool.t ->
  ?cache:'v Cache.t ->
  ?signature:('a -> Cache.signature option) ->
  solve:('a -> int array * 'v) ->
  'a list ->
  (int array * 'v) list * stats
(** [solve_pieces ~pool ?cache ?signature ~solve pieces] returns the
    solved colorings in input order. For a piece whose [signature] is
    [Some s]: a cache hit returns the stored coloring (mapped per the
    cache's mode); a piece compatible with an earlier *unsolved* piece
    of the same batch reuses that leader's result without a second
    solve; everything else is submitted to the pool and stored into the
    cache once joined. Pieces with no signature (or when [cache] /
    [signature] is omitted) are always solved fresh — the call then
    degenerates to a deterministic parallel map.

    With [obs], the whole batch runs under an [engine.batch] span and
    the [engine.pieces] / [engine.solved] / [engine.cache_hits] /
    [engine.batch_reused] counters accumulate the returned {!stats}. *)
