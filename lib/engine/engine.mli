(** Batch driver: route a list of independent pieces through the
    {!Pool} with {!Cache}-based deduplication.

    The driver is generic in the piece type ['a] and in the metadata
    the solver returns alongside each coloring ['v] (the decomposer
    threads per-piece division statistics through it). All cache probes
    and stores happen on the calling thread in piece-index order, so a
    given (piece list, cache mode) pair always resolves hits, batch
    reuses, and fresh solves identically — regardless of how many
    workers the pool has. This is what keeps [jobs] a pure performance
    knob. *)

type stats = {
  pieces : int;  (** pieces routed through the driver *)
  solved : int;  (** solved fresh (submitted to the pool) *)
  hits : int;  (** served from pre-existing cache entries *)
  reused : int;  (** deduplicated against an earlier piece of this batch *)
  failed : int;  (** leaders whose solve raised and was recovered *)
  rejected : int;  (** cache hits discarded by [validate] *)
}

val no_stats : stats

val add_stats : stats -> stats -> stats

val solve_pieces :
  ?obs:Mpl_obs.Obs.t ->
  pool:Pool.t ->
  ?cache:'v Cache.t ->
  ?signature:('a -> Cache.signature option) ->
  ?validate:('a -> int array -> bool) ->
  ?recover:('a -> exn -> Printexc.raw_backtrace -> int array * 'v) ->
  solve:('a -> int array * 'v) ->
  'a list ->
  (int array * 'v) list * stats
(** [solve_pieces ~pool ?cache ?signature ~solve pieces] returns the
    solved colorings in input order. For a piece whose [signature] is
    [Some s]: a cache hit returns the stored coloring (mapped per the
    cache's mode); a piece compatible with an earlier *unsolved* piece
    of the same batch reuses that leader's result without a second
    solve; everything else is submitted to the pool and stored into the
    cache once joined. Pieces with no signature (or when [cache] /
    [signature] is omitted) are always solved fresh — the call then
    degenerates to a deterministic parallel map.

    [validate piece colors] (default: always [true]) vets every cache
    hit before reuse; a rejected hit counts in [stats.rejected] and the
    piece is re-solved as if it had missed.

    [recover piece exn bt] isolates solver failures per piece: when a
    leader's [solve] raises, the exception is confined to that piece and
    [recover] supplies a substitute result (which followers of the same
    leader also reuse, but which is never stored into the cache). The
    piece counts in [stats.failed]. Without [recover] the first failing
    leader's exception is re-raised with its original backtrace — the
    pre-existing all-or-nothing contract.

    With [obs], the whole batch runs under an [engine.batch] span and
    the [engine.pieces] / [engine.solved] / [engine.cache_hits] /
    [engine.batch_reused] / [engine.piece_failures] /
    [engine.cache_rejects] counters accumulate the returned {!stats}. *)
