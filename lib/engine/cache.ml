type signature = {
  n : int;
  key : string;
  serial : string;
  perm : int array;
}

(* ------------------------------------------------------------------ *)
(* Canonicalization: iterated refinement (1-WL). Class ids are assigned
   by *structurally sorting* the per-round vertex signatures, so they
   depend only on the isomorphism class of the graph, never on the
   original labeling — the invariant that makes the canonical key a
   sound isomorphism witness. *)

let refine ~n ~(adj : int list array array) =
  let nrel = Array.length adj in
  let labels = Array.make n 0 in
  (* Round 0: per-relation degree vector. *)
  let sig0 v = Array.to_list (Array.init nrel (fun r -> List.length adj.(r).(v))) in
  let assign_classes sigs =
    (* sigs.(v) is this round's structural signature of v; rank the
       distinct signatures in sorted order. *)
    let distinct = List.sort_uniq compare (Array.to_list sigs) in
    let rank = Hashtbl.create (List.length distinct) in
    List.iteri (fun i s -> Hashtbl.replace rank s i) distinct;
    for v = 0 to n - 1 do
      labels.(v) <- Hashtbl.find rank sigs.(v)
    done;
    List.length distinct
  in
  let classes = ref (assign_classes (Array.init n sig0)) in
  let stable = ref false in
  while (not !stable) && !classes < n do
    let sigs =
      Array.init n (fun v ->
          ( labels.(v),
            Array.to_list
              (Array.init nrel (fun r ->
                   List.sort compare (List.map (fun u -> labels.(u)) adj.(r).(v))))
          ))
    in
    let c = assign_classes sigs in
    if c = !classes then stable := true;
    classes := c
  done;
  labels

let serialize ~salt ~n ~(edges : (int * int) list array) ~perm =
  let buf = Buffer.create (64 + (8 * n)) in
  if salt <> "" then begin
    Buffer.add_string buf salt;
    Buffer.add_char buf '!'
  end;
  Buffer.add_string buf (string_of_int n);
  Array.iter
    (fun es ->
      Buffer.add_char buf '|';
      let mapped =
        List.map
          (fun (u, v) ->
            let pu = perm.(u) and pv = perm.(v) in
            if pu <= pv then (pu, pv) else (pv, pu))
          es
      in
      List.iter
        (fun (u, v) ->
          Buffer.add_string buf (string_of_int u);
          Buffer.add_char buf ',';
          Buffer.add_string buf (string_of_int v);
          Buffer.add_char buf ';')
        (List.sort compare mapped))
    edges;
  Buffer.contents buf

let signature_salted ~salt ~n ~relations =
  if String.contains salt '\n' then
    invalid_arg "Cache.signature: salt must not contain newlines";
  let adj = Array.map (fun _ -> Array.make n []) relations in
  Array.iteri
    (fun r es ->
      List.iter
        (fun (u, v) ->
          if u < 0 || u >= n || v < 0 || v >= n then
            invalid_arg "Cache.signature: endpoint out of range";
          adj.(r).(u) <- v :: adj.(r).(u);
          adj.(r).(v) <- u :: adj.(r).(v))
        es)
    relations;
  let labels = refine ~n ~adj in
  (* Canonical order: by refinement class, remaining ties by original
     index (heuristic tie-break: sound, may under-merge). *)
  let order = Array.init n (fun v -> v) in
  Array.sort
    (fun a b ->
      let c = compare labels.(a) labels.(b) in
      if c <> 0 then c else compare a b)
    order;
  let perm = Array.make n 0 in
  Array.iteri (fun pos v -> perm.(v) <- pos) order;
  let identity = Array.init n (fun v -> v) in
  {
    n;
    key = serialize ~salt ~n ~edges:relations ~perm;
    serial = serialize ~salt ~n ~edges:relations ~perm:identity;
    perm;
  }

let signature ~n ~relations = signature_salted ~salt:"" ~n ~relations

let compatible ~exact sa sb =
  String.equal sa.key sb.key
  && ((not exact) || String.equal sa.serial sb.serial)

let transfer sa sb colors =
  if not (String.equal sa.key sb.key) then
    invalid_arg "Cache.transfer: signatures have different keys";
  let canon = Array.make sa.n 0 in
  Array.iteri (fun v p -> canon.(p) <- colors.(v)) sa.perm;
  Array.init sb.n (fun v -> canon.(sb.perm.(v)))

(* ------------------------------------------------------------------ *)

type mode = Exact | Permuted

type 'v entry = {
  e_key : string;  (* table key; kept so LRU eviction can unindex *)
  e_serial : string;
  colors_canon : int array;  (* exemplar coloring in canonical labels *)
  check : int;  (* integrity checksum of the entry at store time *)
  value : 'v;
  e_bytes : int;  (* approximate resident size of this entry *)
  (* Intrusive LRU list, most recent first. [None] links mean "end of
     list" — membership is tracked separately ([e_linked]) because the
     single-element list has [None] on both sides too. *)
  mutable e_prev : 'v entry option;  (* towards MRU head *)
  mutable e_next : 'v entry option;  (* towards LRU tail *)
  mutable e_linked : bool;
}

(* FNV-1a-style checksum over the length, the colors, and the key /
   serial strings, folded to 30 bits so it stays a small immediate on
   32- and 64-bit systems. Entries whose stored fields no longer match
   their checksum (memory fault, injected corruption, damaged persist
   file) are detected and dropped in [find] / [load]. *)
let checksum ~key ~serial n colors =
  let h = ref 0x811c9dc5 in
  let mix x = h := (!h lxor x) * 16777619 land 0x3FFFFFFF in
  mix n;
  Array.iter (fun c -> mix (c + 0x100)) colors;
  mix 0x1F;
  String.iter (fun c -> mix (Char.code c)) key;
  mix 0x2F;
  String.iter (fun c -> mix (Char.code c)) serial;
  !h

(* Resident-size estimate: the two strings dominate, plus one boxed int
   array and the record/links themselves (words, charged at 8 bytes). *)
let entry_size ~key ~serial colors =
  String.length key + String.length serial
  + (8 * Array.length colors)
  + 96

(* Observability handles: all no-ops (and [timed = false], so no clock
   reads) unless [create] was given an enabled metrics registry. *)
type handles = {
  probes : Mpl_obs.Metrics.counter;
  hit_c : Mpl_obs.Metrics.counter;
  warm_c : Mpl_obs.Metrics.counter;
  stores : Mpl_obs.Metrics.counter;
  corrupt : Mpl_obs.Metrics.counter;
  evict_m : Mpl_obs.Metrics.counter;
  bytes_g : Mpl_obs.Metrics.gauge;
  entries_g : Mpl_obs.Metrics.gauge;
  probe_ns : Mpl_obs.Metrics.histogram;
  store_ns : Mpl_obs.Metrics.histogram;
  timed : bool;
}

type 'v t = {
  mode : mode;
  table : (string, 'v entry list) Hashtbl.t;  (* key -> variants, oldest first *)
  lock : Mutex.t;
  hits_c : int Atomic.t;
  misses_c : int Atomic.t;
  warm_hits_c : int Atomic.t;  (* key-only matches served as warm hints *)
  mutable entries : int;
  mutable bytes : int;  (* sum of e_bytes over resident entries *)
  byte_budget : int option;
  mutable lru_head : 'v entry option;  (* most recently used *)
  mutable lru_tail : 'v entry option;  (* eviction candidate *)
  max_variants : int;
  corrupt_c : int Atomic.t;  (* entries dropped by checksum validation *)
  evict_c : int Atomic.t;  (* entries evicted by the byte budget *)
  fault : Fault.t;
  h : handles;
}

let make_handles (obs : Mpl_obs.Obs.t) =
  let m = obs.Mpl_obs.Obs.metrics in
  {
    probes = Mpl_obs.Metrics.counter m "cache.probes";
    hit_c = Mpl_obs.Metrics.counter m "cache.hits";
    warm_c = Mpl_obs.Metrics.counter m "cache.warm_hits";
    stores = Mpl_obs.Metrics.counter m "cache.stores";
    corrupt = Mpl_obs.Metrics.counter m "cache.corrupt_drops";
    evict_m = Mpl_obs.Metrics.counter m "cache.evictions";
    bytes_g = Mpl_obs.Metrics.gauge m "cache.bytes";
    entries_g = Mpl_obs.Metrics.gauge m "cache.entries";
    probe_ns = Mpl_obs.Metrics.histogram m "cache.probe_ns";
    store_ns = Mpl_obs.Metrics.histogram m "cache.store_ns";
    timed = Mpl_obs.Metrics.enabled m;
  }

let create ?(mode = Exact) ?(max_variants = 8) ?byte_budget
    ?(obs = Mpl_obs.Obs.null) ?(fault = Fault.none) () =
  (match byte_budget with
  | Some b when b < 0 -> invalid_arg "Cache.create: negative byte budget"
  | Some _ | None -> ());
  {
    mode;
    table = Hashtbl.create 256;
    lock = Mutex.create ();
    hits_c = Atomic.make 0;
    misses_c = Atomic.make 0;
    warm_hits_c = Atomic.make 0;
    entries = 0;
    bytes = 0;
    byte_budget;
    lru_head = None;
    lru_tail = None;
    max_variants;
    corrupt_c = Atomic.make 0;
    evict_c = Atomic.make 0;
    fault;
    h = make_handles obs;
  }

(* Time [f ()] into histogram [h] when metrics are on. [f] never raises
   here (both call sites are total up to programmer error). *)
let timed_ns h hist f =
  if h.timed then begin
    let t0 = Mpl_util.Timer.now_ns () in
    let r = f () in
    Mpl_obs.Metrics.observe hist
      (Int64.to_float (Int64.sub (Mpl_util.Timer.now_ns ()) t0));
    r
  end
  else f ()

let mode t = t.mode

let uncanon s colors_canon = Array.init s.n (fun v -> colors_canon.(s.perm.(v)))

(* --- LRU list management; every call site holds [t.lock]. --- *)

let unlink t e =
  if e.e_linked then begin
    (match e.e_prev with
    | Some p -> p.e_next <- e.e_next
    | None -> t.lru_head <- e.e_next);
    (match e.e_next with
    | Some nx -> nx.e_prev <- e.e_prev
    | None -> t.lru_tail <- e.e_prev);
    e.e_prev <- None;
    e.e_next <- None;
    e.e_linked <- false
  end

let push_front t e =
  e.e_prev <- None;
  e.e_next <- t.lru_head;
  (match t.lru_head with Some h -> h.e_prev <- Some e | None -> ());
  t.lru_head <- Some e;
  if t.lru_tail = None then t.lru_tail <- Some e;
  e.e_linked <- true

let touch t e =
  unlink t e;
  push_front t e

let publish_size t =
  Mpl_obs.Metrics.set t.h.bytes_g (float_of_int t.bytes);
  Mpl_obs.Metrics.set t.h.entries_g (float_of_int t.entries)

(* Drop [e] from the table's variant list and the LRU list; caller
   holds the lock and accounts the drop (eviction vs corruption). *)
let remove_entry t e =
  (match Hashtbl.find_opt t.table e.e_key with
  | None -> ()
  | Some variants -> (
    match List.filter (fun e' -> e' != e) variants with
    | [] -> Hashtbl.remove t.table e.e_key
    | rest -> Hashtbl.replace t.table e.e_key rest));
  unlink t e;
  t.entries <- t.entries - 1;
  t.bytes <- t.bytes - e.e_bytes

(* Evict least-recently-used entries until the resident bytes fit the
   budget. Caller holds the lock. *)
let enforce_budget t =
  match t.byte_budget with
  | None -> ()
  | Some budget ->
    let continue = ref true in
    while !continue && t.bytes > budget do
      match t.lru_tail with
      | None -> continue := false
      | Some victim ->
        remove_entry t victim;
        Atomic.incr t.evict_c;
        Mpl_obs.Metrics.incr t.h.evict_m
    done

let entry_valid s e =
  Array.length e.colors_canon = s.n
  && e.check = checksum ~key:e.e_key ~serial:e.e_serial s.n e.colors_canon

(* Checksum-validate the variants under [s.key] before reuse; drop
   corrupted entries so callers fall through to a fresh solve. A valid
   hit is moved to the LRU front by the caller-specific paths below. *)
let valid_variants t s =
  Mutex.lock t.lock;
  let all = Option.value ~default:[] (Hashtbl.find_opt t.table s.key) in
  let valid, corrupt = List.partition (entry_valid s) all in
  if corrupt <> [] then begin
    (if valid = [] then Hashtbl.remove t.table s.key
     else Hashtbl.replace t.table s.key valid);
    List.iter
      (fun e ->
        unlink t e;
        t.bytes <- t.bytes - e.e_bytes)
      corrupt;
    t.entries <- t.entries - List.length corrupt;
    Atomic.fetch_and_add t.corrupt_c (List.length corrupt) |> ignore;
    Mpl_obs.Metrics.add t.h.corrupt (List.length corrupt);
    publish_size t
  end;
  Mutex.unlock t.lock;
  valid

let find t s =
  Mpl_obs.Metrics.incr t.h.probes;
  timed_ns t.h t.h.probe_ns (fun () ->
      let variants = valid_variants t s in
      let found =
        match t.mode with
        | Permuted -> ( match variants with e :: _ -> Some e | [] -> None)
        | Exact ->
          List.find_opt (fun e -> String.equal e.e_serial s.serial) variants
      in
      match found with
      | Some e ->
        Mutex.lock t.lock;
        if e.e_linked then touch t e;
        Mutex.unlock t.lock;
        Atomic.incr t.hits_c;
        Mpl_obs.Metrics.incr t.h.hit_c;
        Some (uncanon s e.colors_canon, e.value)
      | None ->
        Atomic.incr t.misses_c;
        None)

(* Key-only probe: any stored exemplar whose canonical key matches,
   regardless of mode or serial. The transferred coloring is NOT an
   answer — same 1-WL key does not imply isomorphism — only a plausible
   starting point, so callers may use it to warm-start a solver but
   never to skip one. Does not touch the hit/miss counters. *)
let find_similar t s =
  timed_ns t.h t.h.probe_ns (fun () ->
      match valid_variants t s with
      | e :: _ ->
        Mutex.lock t.lock;
        if e.e_linked then touch t e;
        Mutex.unlock t.lock;
        Atomic.incr t.warm_hits_c;
        Mpl_obs.Metrics.incr t.h.warm_c;
        Some (uncanon s e.colors_canon)
      | [] -> None)

(* Shared by [store] and [load]: index + link a fresh entry and apply
   the byte budget. Caller holds the lock; dedup was already decided. *)
let insert_locked t entry variants =
  Hashtbl.replace t.table entry.e_key (variants @ [ entry ]);
  t.entries <- t.entries + 1;
  t.bytes <- t.bytes + entry.e_bytes;
  push_front t entry;
  enforce_budget t;
  publish_size t

let store t s (colors, value) =
  if Array.length colors <> s.n then
    invalid_arg "Cache.store: coloring length mismatch";
  Mpl_obs.Metrics.incr t.h.stores;
  timed_ns t.h t.h.store_ns (fun () ->
      let colors_canon = Array.make s.n 0 in
      Array.iteri (fun v p -> colors_canon.(p) <- colors.(v)) s.perm;
      let entry =
        {
          e_key = s.key;
          e_serial = s.serial;
          colors_canon;
          check = checksum ~key:s.key ~serial:s.serial s.n colors_canon;
          value;
          e_bytes = entry_size ~key:s.key ~serial:s.serial colors_canon;
          e_prev = None;
          e_next = None;
          e_linked = false;
        }
      in
      (* Injected corruption happens *after* the checksum is computed, so
         the mismatch is what [find] detects and drops. *)
      if Fault.fires t.fault Fault.Cache_corrupt && s.n > 0 then
        colors_canon.(0) <- colors_canon.(0) + 7919;
      Mutex.lock t.lock;
      let variants =
        Option.value ~default:[] (Hashtbl.find_opt t.table s.key)
      in
      let keep =
        match t.mode with
        | Permuted -> variants = []
        | Exact ->
          List.length variants < t.max_variants
          && not
               (List.exists
                  (fun e -> String.equal e.e_serial s.serial)
                  variants)
      in
      if keep then insert_locked t entry variants;
      Mutex.unlock t.lock)

let hits t = Atomic.get t.hits_c
let misses t = Atomic.get t.misses_c
let warm_hits t = Atomic.get t.warm_hits_c
let corrupt_drops t = Atomic.get t.corrupt_c
let evictions t = Atomic.get t.evict_c

let length t =
  Mutex.lock t.lock;
  let n = t.entries in
  Mutex.unlock t.lock;
  n

let bytes t =
  Mutex.lock t.lock;
  let b = t.bytes in
  Mutex.unlock t.lock;
  b

type stats = {
  entries : int;
  resident_bytes : int;
  byte_budget : int option;
  s_hits : int;
  s_misses : int;
  s_warm_hits : int;
  s_corrupt_drops : int;
  s_evictions : int;
}

let stats t =
  Mutex.lock t.lock;
  let entries = t.entries and resident_bytes = t.bytes in
  Mutex.unlock t.lock;
  {
    entries;
    resident_bytes;
    byte_budget = t.byte_budget;
    s_hits = Atomic.get t.hits_c;
    s_misses = Atomic.get t.misses_c;
    s_warm_hits = Atomic.get t.warm_hits_c;
    s_corrupt_drops = Atomic.get t.corrupt_c;
    s_evictions = Atomic.get t.evict_c;
  }

(* ------------------------------------------------------------------ *)
(* Disk persistence. Line-oriented format, one header plus four lines
   per entry:

     mplcache 1 <exact|permuted> <nentries>
     <key>
     <serial>
     <check> <n> <c0> ... <c(n-1)>
     <value line>

   Keys and serials are '|'/','/';'/digit strings by construction (plus
   a caller salt, which [signature] rejects if it contains a newline),
   so every field is single-line safe. Entries are written LRU-first:
   reloading pushes each entry to the LRU front, so the reloaded cache
   reproduces the saved recency order. Each entry is validated against
   its stored checksum on load — a corrupted line drops exactly that
   entry, never its neighbours. *)

let magic = "mplcache 1"

let mode_name = function Exact -> "exact" | Permuted -> "permuted"

let save t ~value_to_string path =
  Mutex.lock t.lock;
  (* Collect LRU-first (tail to head) under the lock. *)
  let entries = ref [] in
  let cur = ref t.lru_tail in
  let continue = ref true in
  while !continue do
    match !cur with
    | None -> continue := false
    | Some e ->
      entries := e :: !entries;
      cur := e.e_prev
  done;
  let entries = List.rev !entries in
  Mutex.unlock t.lock;
  let buf = Buffer.create (4096 + (128 * List.length entries)) in
  Buffer.add_string buf
    (Printf.sprintf "%s %s %d\n" magic (mode_name t.mode)
       (List.length entries));
  List.iter
    (fun e ->
      let v = value_to_string e.value in
      if String.contains v '\n' then
        invalid_arg "Cache.save: serialized value contains a newline";
      Buffer.add_string buf e.e_key;
      Buffer.add_char buf '\n';
      Buffer.add_string buf e.e_serial;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (string_of_int e.check);
      Buffer.add_char buf ' ';
      Buffer.add_string buf (string_of_int (Array.length e.colors_canon));
      Array.iter
        (fun c ->
          Buffer.add_char buf ' ';
          Buffer.add_string buf (string_of_int c))
        e.colors_canon;
      Buffer.add_char buf '\n';
      Buffer.add_string buf v;
      Buffer.add_char buf '\n')
    entries;
  (* Atomic publish: write to a sibling temp file, then rename. *)
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (Buffer.contents buf));
  Sys.rename tmp path

exception Bad_file of string

let load t ~value_of_string path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
  let line () = try Some (input_line ic) with End_of_file -> None in
  let header =
    match line () with
    | Some h -> h
    | None -> raise (Bad_file "empty cache file")
  in
  let count =
    match String.split_on_char ' ' header with
    | [ "mplcache"; "1"; m; n ] -> (
      if m <> mode_name t.mode then
        raise
          (Bad_file
             (Printf.sprintf "cache file mode %s does not match cache mode %s"
                m (mode_name t.mode)));
      match int_of_string_opt n with
      | Some n when n >= 0 -> n
      | Some _ | None -> raise (Bad_file "bad entry count"))
    | _ -> raise (Bad_file "bad cache file header")
  in
  let loaded = ref 0 and dropped = ref 0 in
  (try
     for _ = 1 to count do
       match (line (), line (), line (), line ()) with
       | Some key, Some serial, Some colors_line, Some value_line ->
         let parsed =
           match String.split_on_char ' ' colors_line with
           | check :: n :: colors -> (
             match (int_of_string_opt check, int_of_string_opt n) with
             | Some check, Some n when n >= 0 && List.length colors = n -> (
               let cs = List.map int_of_string_opt colors in
               if List.exists (( = ) None) cs then None
               else
                 let colors_canon =
                   Array.of_list (List.map Option.get cs)
                 in
                 if check = checksum ~key ~serial n colors_canon then
                   match value_of_string value_line with
                   | Some value -> Some (n, colors_canon, check, value)
                   | None -> None
                 else None)
             | _ -> None)
           | _ -> None
         in
         (match parsed with
         | None -> incr dropped
         | Some (_n, colors_canon, check, value) ->
           let entry =
             {
               e_key = key;
               e_serial = serial;
               colors_canon;
               check;
               value;
               e_bytes = entry_size ~key ~serial colors_canon;
               e_prev = None;
               e_next = None;
               e_linked = false;
             }
           in
           Mutex.lock t.lock;
           let variants =
             Option.value ~default:[] (Hashtbl.find_opt t.table key)
           in
           let keep =
             match t.mode with
             | Permuted -> variants = []
             | Exact ->
               List.length variants < t.max_variants
               && not
                    (List.exists
                       (fun e -> String.equal e.e_serial serial)
                       variants)
           in
           if keep then begin
             insert_locked t entry variants;
             incr loaded
           end
           else incr dropped;
           Mutex.unlock t.lock)
       | _ ->
         (* Truncated file: keep what we have. *)
         incr dropped;
         raise Exit
     done
   with Exit -> ());
  (!loaded, !dropped)
