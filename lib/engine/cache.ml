type signature = {
  n : int;
  key : string;
  serial : string;
  perm : int array;
}

(* ------------------------------------------------------------------ *)
(* Canonicalization: iterated refinement (1-WL). Class ids are assigned
   by *structurally sorting* the per-round vertex signatures, so they
   depend only on the isomorphism class of the graph, never on the
   original labeling — the invariant that makes the canonical key a
   sound isomorphism witness. *)

let refine ~n ~(adj : int list array array) =
  let nrel = Array.length adj in
  let labels = Array.make n 0 in
  (* Round 0: per-relation degree vector. *)
  let sig0 v = Array.to_list (Array.init nrel (fun r -> List.length adj.(r).(v))) in
  let assign_classes sigs =
    (* sigs.(v) is this round's structural signature of v; rank the
       distinct signatures in sorted order. *)
    let distinct = List.sort_uniq compare (Array.to_list sigs) in
    let rank = Hashtbl.create (List.length distinct) in
    List.iteri (fun i s -> Hashtbl.replace rank s i) distinct;
    for v = 0 to n - 1 do
      labels.(v) <- Hashtbl.find rank sigs.(v)
    done;
    List.length distinct
  in
  let classes = ref (assign_classes (Array.init n sig0)) in
  let stable = ref false in
  while (not !stable) && !classes < n do
    let sigs =
      Array.init n (fun v ->
          ( labels.(v),
            Array.to_list
              (Array.init nrel (fun r ->
                   List.sort compare (List.map (fun u -> labels.(u)) adj.(r).(v))))
          ))
    in
    let c = assign_classes sigs in
    if c = !classes then stable := true;
    classes := c
  done;
  labels

let serialize ~n ~(edges : (int * int) list array) ~perm =
  let buf = Buffer.create (64 + (8 * n)) in
  Buffer.add_string buf (string_of_int n);
  Array.iter
    (fun es ->
      Buffer.add_char buf '|';
      let mapped =
        List.map
          (fun (u, v) ->
            let pu = perm.(u) and pv = perm.(v) in
            if pu <= pv then (pu, pv) else (pv, pu))
          es
      in
      List.iter
        (fun (u, v) ->
          Buffer.add_string buf (string_of_int u);
          Buffer.add_char buf ',';
          Buffer.add_string buf (string_of_int v);
          Buffer.add_char buf ';')
        (List.sort compare mapped))
    edges;
  Buffer.contents buf

let signature ~n ~relations =
  let adj = Array.map (fun _ -> Array.make n []) relations in
  Array.iteri
    (fun r es ->
      List.iter
        (fun (u, v) ->
          if u < 0 || u >= n || v < 0 || v >= n then
            invalid_arg "Cache.signature: endpoint out of range";
          adj.(r).(u) <- v :: adj.(r).(u);
          adj.(r).(v) <- u :: adj.(r).(v))
        es)
    relations;
  let labels = refine ~n ~adj in
  (* Canonical order: by refinement class, remaining ties by original
     index (heuristic tie-break: sound, may under-merge). *)
  let order = Array.init n (fun v -> v) in
  Array.sort
    (fun a b ->
      let c = compare labels.(a) labels.(b) in
      if c <> 0 then c else compare a b)
    order;
  let perm = Array.make n 0 in
  Array.iteri (fun pos v -> perm.(v) <- pos) order;
  let identity = Array.init n (fun v -> v) in
  {
    n;
    key = serialize ~n ~edges:relations ~perm;
    serial = serialize ~n ~edges:relations ~perm:identity;
    perm;
  }

let compatible ~exact sa sb =
  String.equal sa.key sb.key
  && ((not exact) || String.equal sa.serial sb.serial)

let transfer sa sb colors =
  if not (String.equal sa.key sb.key) then
    invalid_arg "Cache.transfer: signatures have different keys";
  let canon = Array.make sa.n 0 in
  Array.iteri (fun v p -> canon.(p) <- colors.(v)) sa.perm;
  Array.init sb.n (fun v -> canon.(sb.perm.(v)))

(* ------------------------------------------------------------------ *)

type mode = Exact | Permuted

type 'v entry = {
  e_serial : string;
  colors_canon : int array;  (* exemplar coloring in canonical labels *)
  check : int;  (* integrity checksum of [colors_canon] at store time *)
  value : 'v;
}

(* FNV-1a-style checksum over the length and colors, folded to 30 bits
   so it stays a small immediate on 32- and 64-bit systems. Entries
   whose stored colors no longer match their checksum (memory fault,
   injected corruption) are detected and dropped in [find]. *)
let checksum n colors =
  let h = ref 0x811c9dc5 in
  let mix x = h := (!h lxor x) * 16777619 land 0x3FFFFFFF in
  mix n;
  Array.iter (fun c -> mix (c + 0x100)) colors;
  !h

(* Observability handles: all no-ops (and [timed = false], so no clock
   reads) unless [create] was given an enabled metrics registry. *)
type stats = {
  probes : Mpl_obs.Metrics.counter;
  hit_c : Mpl_obs.Metrics.counter;
  warm_c : Mpl_obs.Metrics.counter;
  stores : Mpl_obs.Metrics.counter;
  corrupt : Mpl_obs.Metrics.counter;
  probe_ns : Mpl_obs.Metrics.histogram;
  store_ns : Mpl_obs.Metrics.histogram;
  timed : bool;
}

type 'v t = {
  mode : mode;
  table : (string, 'v entry list) Hashtbl.t;  (* key -> variants, oldest first *)
  lock : Mutex.t;
  hits_c : int Atomic.t;
  misses_c : int Atomic.t;
  warm_hits_c : int Atomic.t;  (* key-only matches served as warm hints *)
  mutable entries : int;
  max_variants : int;
  corrupt_c : int Atomic.t;  (* entries dropped by checksum validation *)
  fault : Fault.t;
  stats : stats;
}

let make_stats (obs : Mpl_obs.Obs.t) =
  let m = obs.Mpl_obs.Obs.metrics in
  {
    probes = Mpl_obs.Metrics.counter m "cache.probes";
    hit_c = Mpl_obs.Metrics.counter m "cache.hits";
    warm_c = Mpl_obs.Metrics.counter m "cache.warm_hits";
    stores = Mpl_obs.Metrics.counter m "cache.stores";
    corrupt = Mpl_obs.Metrics.counter m "cache.corrupt_drops";
    probe_ns = Mpl_obs.Metrics.histogram m "cache.probe_ns";
    store_ns = Mpl_obs.Metrics.histogram m "cache.store_ns";
    timed = Mpl_obs.Metrics.enabled m;
  }

let create ?(mode = Exact) ?(max_variants = 8) ?(obs = Mpl_obs.Obs.null)
    ?(fault = Fault.none) () =
  {
    mode;
    table = Hashtbl.create 256;
    lock = Mutex.create ();
    hits_c = Atomic.make 0;
    misses_c = Atomic.make 0;
    warm_hits_c = Atomic.make 0;
    entries = 0;
    max_variants;
    corrupt_c = Atomic.make 0;
    fault;
    stats = make_stats obs;
  }

(* Time [f ()] into histogram [h] when metrics are on. [f] never raises
   here (both call sites are total up to programmer error). *)
let timed_ns stats h f =
  if stats.timed then begin
    let t0 = Mpl_util.Timer.now_ns () in
    let r = f () in
    Mpl_obs.Metrics.observe h
      (Int64.to_float (Int64.sub (Mpl_util.Timer.now_ns ()) t0));
    r
  end
  else f ()

let mode t = t.mode

let uncanon s colors_canon = Array.init s.n (fun v -> colors_canon.(s.perm.(v)))

let entry_valid s e =
  Array.length e.colors_canon = s.n && e.check = checksum s.n e.colors_canon

(* Checksum-validate the variants under [s.key] before reuse; drop
   corrupted entries so callers fall through to a fresh solve. *)
let valid_variants t s =
  Mutex.lock t.lock;
  let all = Option.value ~default:[] (Hashtbl.find_opt t.table s.key) in
  let valid, corrupt = List.partition (entry_valid s) all in
  if corrupt <> [] then begin
    (if valid = [] then Hashtbl.remove t.table s.key
     else Hashtbl.replace t.table s.key valid);
    t.entries <- t.entries - List.length corrupt;
    Atomic.fetch_and_add t.corrupt_c (List.length corrupt) |> ignore;
    Mpl_obs.Metrics.add t.stats.corrupt (List.length corrupt)
  end;
  Mutex.unlock t.lock;
  valid

let find t s =
  Mpl_obs.Metrics.incr t.stats.probes;
  timed_ns t.stats t.stats.probe_ns (fun () ->
      let variants = valid_variants t s in
      let found =
        match t.mode with
        | Permuted -> ( match variants with e :: _ -> Some e | [] -> None)
        | Exact ->
          List.find_opt (fun e -> String.equal e.e_serial s.serial) variants
      in
      match found with
      | Some e ->
        Atomic.incr t.hits_c;
        Mpl_obs.Metrics.incr t.stats.hit_c;
        Some (uncanon s e.colors_canon, e.value)
      | None ->
        Atomic.incr t.misses_c;
        None)

(* Key-only probe: any stored exemplar whose canonical key matches,
   regardless of mode or serial. The transferred coloring is NOT an
   answer — same 1-WL key does not imply isomorphism — only a plausible
   starting point, so callers may use it to warm-start a solver but
   never to skip one. Does not touch the hit/miss counters. *)
let find_similar t s =
  timed_ns t.stats t.stats.probe_ns (fun () ->
      match valid_variants t s with
      | e :: _ ->
        Atomic.incr t.warm_hits_c;
        Mpl_obs.Metrics.incr t.stats.warm_c;
        Some (uncanon s e.colors_canon)
      | [] -> None)

let store t s (colors, value) =
  if Array.length colors <> s.n then
    invalid_arg "Cache.store: coloring length mismatch";
  Mpl_obs.Metrics.incr t.stats.stores;
  timed_ns t.stats t.stats.store_ns (fun () ->
      let colors_canon = Array.make s.n 0 in
      Array.iteri (fun v p -> colors_canon.(p) <- colors.(v)) s.perm;
      let entry =
        { e_serial = s.serial; colors_canon; check = checksum s.n colors_canon;
          value }
      in
      (* Injected corruption happens *after* the checksum is computed, so
         the mismatch is what [find] detects and drops. *)
      if Fault.fires t.fault Fault.Cache_corrupt && s.n > 0 then
        colors_canon.(0) <- colors_canon.(0) + 7919;
      Mutex.lock t.lock;
      let variants =
        Option.value ~default:[] (Hashtbl.find_opt t.table s.key)
      in
      let keep =
        match t.mode with
        | Permuted -> variants = []
        | Exact ->
          List.length variants < t.max_variants
          && not
               (List.exists
                  (fun e -> String.equal e.e_serial s.serial)
                  variants)
      in
      if keep then begin
        Hashtbl.replace t.table s.key (variants @ [ entry ]);
        t.entries <- t.entries + 1
      end;
      Mutex.unlock t.lock)

let hits t = Atomic.get t.hits_c
let misses t = Atomic.get t.misses_c
let warm_hits t = Atomic.get t.warm_hits_c
let corrupt_drops t = Atomic.get t.corrupt_c

let length t =
  Mutex.lock t.lock;
  let n = t.entries in
  Mutex.unlock t.lock;
  n
