(** Canonical-signature memo table for solved pieces — a shared,
    byte-budgeted LRU with optional disk persistence.

    Standard-cell layouts repeat the same small conflict cliques
    thousands of times (paper Fig. 7 patterns); after graph division the
    resulting pieces are tiny and massively duplicated. This cache
    recognizes a repeated piece *up to vertex relabeling*: a piece's
    multi-relation graph (conflict / stitch / friendly edge sets) is
    canonicalized by iterated degree-sequence refinement
    (1-dimensional Weisfeiler–Leman with structurally-sorted class ids)
    and serialized under the canonical ordering. Two pieces share a key
    only if their canonically relabeled graphs are *byte-identical* —
    the key encodes the whole graph, so a key match is itself a proof
    of isomorphism and false positives are impossible. (Ties the
    refinement cannot break are resolved by original index, so some
    isomorphic pairs may *miss*; that only costs a duplicate solve.)

    Two reuse policies:

    - {!Exact} (the default used by [Decomposer]): a hit additionally
      requires the piece to be byte-identical to the stored exemplar in
      its *original* labeling. The returned coloring is then exactly
      what the deterministic solver would have produced, so enabling
      the cache can never change any reported cost or coloring.
    - {!Permuted}: a key match alone suffices; the exemplar's coloring
      is mapped through the label permutation. The result is always a
      valid coloring with the exemplar's internal cost, but because the
      heuristic solvers break ties by vertex index, it may differ from
      (be better or worse than) what a fresh solve of this labeling
      would return. Higher hit rate, weaker reproducibility contract.

    The table is designed to outlive a single run: [mpld serve] shares
    one instance across every request, bounds its resident size with a
    byte budget (least-recently-used entries are evicted first), and
    persists it across restarts with {!save} / {!load}. Eviction can
    only turn hits into re-solves, so sharing, budgeting and reloading
    never change any result produced under {!Exact} reuse.

    All operations are thread-safe (single internal mutex); hit/miss
    counters are [Atomic]. *)

type signature = private {
  n : int;
  key : string;  (** canonical-form serialization: the table key *)
  serial : string;  (** original-labeling serialization *)
  perm : int array;  (** original index -> canonical index *)
}

val signature : n:int -> relations:(int * int) list array -> signature
(** [signature ~n ~relations] canonicalizes the graph on [n] vertices
    whose [relations.(r)] is the edge list of relation [r] (relations
    are distinguished: a conflict edge never matches a stitch edge).
    Edges are undirected; endpoints must be in [0..n-1]. Equivalent to
    {!signature_salted} with an empty salt. *)

val signature_salted :
  salt:string -> n:int -> relations:(int * int) list array -> signature
(** Like {!signature}, with [salt] prefixed to both the canonical key
    and the original-labeling serialization, partitioning the table:
    signatures with different salts can never match each other. A cache
    shared across requests with different solver parameters salts each
    piece with a parameter fingerprint, so a piece solved under one
    (k, algorithm, ...) setting is never served to another.
    @raise Invalid_argument if [salt] contains a newline (salts are
    embedded in the single-line persistence format). *)

val compatible : exact:bool -> signature -> signature -> bool
(** Would a piece with the second signature hit an entry stored under
    the first? *)

val transfer : signature -> signature -> int array -> int array
(** [transfer sa sb colors] maps a coloring of the piece signed [sa]
    onto the piece signed [sb] through the canonical permutations.
    @raise Invalid_argument if the signatures' keys differ. *)

type mode = Exact | Permuted

type 'v t
(** A memo table storing, per canonical key, solved colorings plus an
    arbitrary metadata payload ['v] (e.g. division statistics). *)

val create :
  ?mode:mode ->
  ?max_variants:int ->
  ?byte_budget:int ->
  ?obs:Mpl_obs.Obs.t ->
  ?fault:Fault.t ->
  unit ->
  'v t
(** Default [mode] is [Exact]; [max_variants] (default 8) bounds the
    number of distinct original labelings remembered per canonical key
    in [Exact] mode. [byte_budget] (default: unlimited) bounds the
    approximate resident size — each entry is charged its key, serial
    and coloring lengths plus a fixed overhead — by evicting
    least-recently-used entries on store ({!evictions}); both {!find}
    and {!find_similar} hits refresh an entry's recency. When [obs]
    carries an enabled metrics registry the cache maintains
    [cache.probes] / [cache.hits] / [cache.stores] /
    [cache.corrupt_drops] / [cache.evictions] counters, [cache.bytes] /
    [cache.entries] gauges and [cache.probe_ns] / [cache.store_ns]
    latency histograms; otherwise every probe is a no-op with no clock
    read. When [fault] is armed for {!Fault.Cache_corrupt}, the
    selected stores write a corrupted coloring (checksummed first, so
    validation catches it). *)

val mode : 'v t -> mode

val find : 'v t -> signature -> (int array * 'v) option
(** On a hit, the coloring is returned in the probing piece's own
    labeling. Updates the hit/miss counters. Every stored coloring
    carries an integrity checksum computed at store time; entries that
    fail validation (wrong length or checksum mismatch) are dropped —
    counted in {!corrupt_drops} — and the probe reports a miss, so the
    caller re-solves instead of reusing a damaged coloring. *)

val store : 'v t -> signature -> int array * 'v -> unit
(** Remember a solved piece. First writer wins: an entry that would
    duplicate (Exact: same original serialization; Permuted: same key)
    is ignored, keeping replays deterministic. May evict LRU entries
    when a byte budget is set. *)

val find_similar : 'v t -> signature -> int array option
(** Key-only probe serving *warm hints*: returns the stored exemplar
    under the matching canonical key mapped into the probing piece's
    labeling, regardless of {!mode} and without requiring a serial
    match. A 1-WL key match proves isomorphism here (the key encodes
    the whole canonical graph), but the transferred coloring reflects
    the exemplar's tie-breaks, not this labeling's — so callers must
    treat it as a solver starting point (e.g. an SDP warm start), never
    as an answer. Does not touch the {!hits}/{!misses} counters;
    successful probes are counted in {!warm_hits} and the
    [cache.warm_hits] metric. *)

val hits : 'v t -> int
val misses : 'v t -> int

val warm_hits : 'v t -> int
(** Successful {!find_similar} probes. *)

val corrupt_drops : 'v t -> int
(** Entries dropped by checksum validation in {!find}. *)

val evictions : 'v t -> int
(** Entries evicted by the byte budget. *)

val length : 'v t -> int
(** Number of stored entries (variants counted individually). *)

val bytes : 'v t -> int
(** Approximate resident size of all stored entries. *)

type stats = {
  entries : int;  (** resident entries (variants counted individually) *)
  resident_bytes : int;  (** approximate resident size *)
  byte_budget : int option;
  s_hits : int;
  s_misses : int;
  s_warm_hits : int;
  s_corrupt_drops : int;
  s_evictions : int;
}

val stats : 'v t -> stats
(** One consistent snapshot of the size and traffic counters. *)

(** {1 Persistence}

    The whole table round-trips through a line-oriented disk format so
    a serving process can carry its accumulated entries across
    restarts. Every entry is covered by the same integrity checksum
    {!find} validates, recomputed on load: corrupting an entry on disk
    drops exactly that entry. Files record the cache {!mode} and the
    LRU order; {!load} refuses files whose mode differs. *)

exception Bad_file of string
(** Raised by {!load} on a structurally unusable file (bad header or
    mode mismatch). Damaged {e entries} never raise — they are
    dropped and counted instead. *)

val save : 'v t -> value_to_string:('v -> string) -> string -> unit
(** [save t ~value_to_string path] writes every resident entry to
    [path] (via a temp file + rename, so a crash never leaves a
    half-written file). [value_to_string] must produce a single-line
    encoding of the payload.
    @raise Invalid_argument if a serialized value contains a newline. *)

val load : 'v t -> value_of_string:(string -> 'v option) -> string -> int * int
(** [load t ~value_of_string path] inserts the file's entries into [t]
    — normally freshly created with the same mode and budget — and
    returns [(loaded, dropped)]. An entry is dropped (never raising)
    when its checksum no longer matches, its payload fails
    [value_of_string], it would duplicate a resident entry, or the file
    is truncated mid-entry. Loading respects the byte budget, evicting
    as it fills. Saved LRU order is preserved.
    @raise Bad_file on a bad header or a mode mismatch.
    @raise Sys_error if the file cannot be read. *)
