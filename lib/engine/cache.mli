(** Canonical-signature memo table for solved pieces.

    Standard-cell layouts repeat the same small conflict cliques
    thousands of times (paper Fig. 7 patterns); after graph division the
    resulting pieces are tiny and massively duplicated. This cache
    recognizes a repeated piece *up to vertex relabeling*: a piece's
    multi-relation graph (conflict / stitch / friendly edge sets) is
    canonicalized by iterated degree-sequence refinement
    (1-dimensional Weisfeiler–Leman with structurally-sorted class ids)
    and serialized under the canonical ordering. Two pieces share a key
    only if their canonically relabeled graphs are *byte-identical* —
    the key encodes the whole graph, so a key match is itself a proof
    of isomorphism and false positives are impossible. (Ties the
    refinement cannot break are resolved by original index, so some
    isomorphic pairs may *miss*; that only costs a duplicate solve.)

    Two reuse policies:

    - {!Exact} (the default used by [Decomposer]): a hit additionally
      requires the piece to be byte-identical to the stored exemplar in
      its *original* labeling. The returned coloring is then exactly
      what the deterministic solver would have produced, so enabling
      the cache can never change any reported cost or coloring.
    - {!Permuted}: a key match alone suffices; the exemplar's coloring
      is mapped through the label permutation. The result is always a
      valid coloring with the exemplar's internal cost, but because the
      heuristic solvers break ties by vertex index, it may differ from
      (be better or worse than) what a fresh solve of this labeling
      would return. Higher hit rate, weaker reproducibility contract.

    All operations are thread-safe (single internal mutex); hit/miss
    counters are [Atomic]. *)

type signature = private {
  n : int;
  key : string;  (** canonical-form serialization: the table key *)
  serial : string;  (** original-labeling serialization *)
  perm : int array;  (** original index -> canonical index *)
}

val signature : n:int -> relations:(int * int) list array -> signature
(** [signature ~n ~relations] canonicalizes the graph on [n] vertices
    whose [relations.(r)] is the edge list of relation [r] (relations
    are distinguished: a conflict edge never matches a stitch edge).
    Edges are undirected; endpoints must be in [0..n-1]. *)

val compatible : exact:bool -> signature -> signature -> bool
(** Would a piece with the second signature hit an entry stored under
    the first? *)

val transfer : signature -> signature -> int array -> int array
(** [transfer sa sb colors] maps a coloring of the piece signed [sa]
    onto the piece signed [sb] through the canonical permutations.
    @raise Invalid_argument if the signatures' keys differ. *)

type mode = Exact | Permuted

type 'v t
(** A memo table storing, per canonical key, solved colorings plus an
    arbitrary metadata payload ['v] (e.g. division statistics). *)

val create :
  ?mode:mode ->
  ?max_variants:int ->
  ?obs:Mpl_obs.Obs.t ->
  ?fault:Fault.t ->
  unit ->
  'v t
(** Default [mode] is [Exact]; [max_variants] (default 8) bounds the
    number of distinct original labelings remembered per canonical key
    in [Exact] mode. When [obs] carries an enabled metrics registry the
    cache maintains [cache.probes] / [cache.hits] / [cache.stores] /
    [cache.corrupt_drops] counters and [cache.probe_ns] /
    [cache.store_ns] latency histograms; otherwise every probe is a
    no-op with no clock read. When [fault] is armed for
    {!Fault.Cache_corrupt}, the selected stores write a corrupted
    coloring (checksummed first, so validation catches it). *)

val mode : 'v t -> mode

val find : 'v t -> signature -> (int array * 'v) option
(** On a hit, the coloring is returned in the probing piece's own
    labeling. Updates the hit/miss counters. Every stored coloring
    carries an integrity checksum computed at store time; entries that
    fail validation (wrong length or checksum mismatch) are dropped —
    counted in {!corrupt_drops} — and the probe reports a miss, so the
    caller re-solves instead of reusing a damaged coloring. *)

val store : 'v t -> signature -> int array * 'v -> unit
(** Remember a solved piece. First writer wins: an entry that would
    duplicate (Exact: same original serialization; Permuted: same key)
    is ignored, keeping replays deterministic. *)

val find_similar : 'v t -> signature -> int array option
(** Key-only probe serving *warm hints*: returns the stored exemplar
    under the matching canonical key mapped into the probing piece's
    labeling, regardless of {!mode} and without requiring a serial
    match. A 1-WL key match proves isomorphism here (the key encodes
    the whole canonical graph), but the transferred coloring reflects
    the exemplar's tie-breaks, not this labeling's — so callers must
    treat it as a solver starting point (e.g. an SDP warm start), never
    as an answer. Does not touch the {!hits}/{!misses} counters;
    successful probes are counted in {!warm_hits} and the
    [cache.warm_hits] metric. *)

val hits : 'v t -> int
val misses : 'v t -> int

val warm_hits : 'v t -> int
(** Successful {!find_similar} probes. *)

val corrupt_drops : 'v t -> int
(** Entries dropped by checksum validation in {!find}. *)

val length : 'v t -> int
(** Number of stored entries (variants counted individually). *)
