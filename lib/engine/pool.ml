(* Work-stealing domain pool. One deque per worker; owners pop oldest
   from the front (submission order — this is what makes jobs = 1
   deterministic), thieves steal newest from the back. All deques hang
   off a single mutex: tasks here are whole divided pieces (micro- to
   multi-second solves), so queue contention is irrelevant and the
   single lock keeps the blocking/wakeup protocol easy to audit. *)

module Deque = struct
  (* Amortized O(1) double-ended queue: [front] in front-to-back order,
     [back] in back-to-front order. *)
  type 'a t = { mutable front : 'a list; mutable back : 'a list }

  let create () = { front = []; back = [] }
  let push_back d x = d.back <- x :: d.back

  let pop_front d =
    match d.front with
    | x :: tl ->
      d.front <- tl;
      Some x
    | [] -> (
      match List.rev d.back with
      | [] -> None
      | x :: tl ->
        d.back <- [];
        d.front <- tl;
        Some x)

  let pop_back d =
    match d.back with
    | x :: tl ->
      d.back <- tl;
      Some x
    | [] -> (
      match List.rev d.front with
      | [] -> None
      | x :: tl ->
        d.front <- [];
        d.back <- tl;
        Some x)
end

(* Failures carry the backtrace captured at the raise site, so a
   re-raise in [await] (possibly on another domain) keeps the original
   trace instead of pointing at the join. *)
type 'a state =
  | Pending
  | Done of 'a
  | Failed of exn * Printexc.raw_backtrace

type 'a future = {
  mutable state : 'a state;
  fm : Mutex.t;
  fc : Condition.t;
}

(* Observability handles; all are no-op [None] handles when the pool is
   created without [?obs] or the registry is the null one, so the
   untraced pool pays one branch per event and reads no clocks. *)
type stats = {
  submitted : Mpl_obs.Metrics.counter;
  steals : Mpl_obs.Metrics.counter;
  helped : Mpl_obs.Metrics.counter;
  idle_waits : Mpl_obs.Metrics.counter;
  busy_ns : Mpl_obs.Metrics.counter array;  (* per worker slot, 0 = caller *)
  timed : bool;  (* read the clock around task bodies *)
}

type t = {
  jobs : int;
  deques : (unit -> unit) Deque.t array;  (* index 0 belongs to the caller *)
  lock : Mutex.t;
  nonempty : Condition.t;
  mutable next : int;  (* round-robin submission cursor *)
  mutable closed : bool;
  mutable domains : unit Domain.t array;
  mutable joined : bool;
  stats : stats;
  fault : Fault.t;
}

let jobs t = t.jobs

let make_stats ~jobs (obs : Mpl_obs.Obs.t) =
  let m = obs.Mpl_obs.Obs.metrics in
  {
    submitted = Mpl_obs.Metrics.counter m "pool.submitted";
    steals = Mpl_obs.Metrics.counter m "pool.steals";
    helped = Mpl_obs.Metrics.counter m "pool.helped";
    idle_waits = Mpl_obs.Metrics.counter m "pool.idle_waits";
    busy_ns =
      Array.init jobs (fun i ->
          Mpl_obs.Metrics.counter m (Printf.sprintf "pool.worker%d.busy_ns" i));
    timed = Mpl_obs.Metrics.enabled m;
  }

(* Run [task] on worker slot [slot], charging wall time to that slot's
   busy counter when metrics are on. *)
let run_task t slot task =
  if Fault.fires t.fault Fault.Worker_delay then Fault.delay ();
  if t.stats.timed then begin
    let t0 = Mpl_util.Timer.now_ns () in
    let finish () =
      let dt = Int64.sub (Mpl_util.Timer.now_ns ()) t0 in
      Mpl_obs.Metrics.add t.stats.busy_ns.(slot) (Int64.to_int dt)
    in
    match task () with
    | () -> finish ()
    | exception e ->
      finish ();
      raise e
  end
  else task ()

(* Pop from our own deque front, else steal from another's back.
   Must hold [t.lock]. Returns the task paired with [true] when it was
   stolen from another worker's deque. *)
let take_locked t own =
  match Deque.pop_front t.deques.(own) with
  | Some task -> Some (task, false)
  | None ->
    let n = Array.length t.deques in
    let rec scan k =
      if k >= n then None
      else
        match Deque.pop_back t.deques.((own + k) mod n) with
        | Some task -> Some (task, true)
        | None -> scan (k + 1)
    in
    scan 1

let worker t own () =
  Mutex.lock t.lock;
  let rec loop () =
    match take_locked t own with
    | Some (task, stolen) ->
      Mutex.unlock t.lock;
      if stolen then Mpl_obs.Metrics.incr t.stats.steals;
      run_task t own task;
      Mutex.lock t.lock;
      loop ()
    | None ->
      if t.closed then Mutex.unlock t.lock
      else begin
        Mpl_obs.Metrics.incr t.stats.idle_waits;
        Condition.wait t.nonempty t.lock;
        loop ()
      end
  in
  loop ()

let create ?(obs = Mpl_obs.Obs.null) ?(fault = Fault.none) ~jobs () =
  if jobs < 1 then invalid_arg "Pool.create: jobs < 1";
  let t =
    {
      jobs;
      deques = Array.init jobs (fun _ -> Deque.create ());
      lock = Mutex.create ();
      nonempty = Condition.create ();
      next = 0;
      closed = false;
      domains = [||];
      joined = false;
      stats = make_stats ~jobs obs;
      fault;
    }
  in
  t.domains <- Array.init (jobs - 1) (fun i -> Domain.spawn (worker t (i + 1)));
  t

let submit t f =
  let fut = { state = Pending; fm = Mutex.create (); fc = Condition.create () } in
  let task () =
    let r =
      try Done (f ())
      with e -> Failed (e, Printexc.get_raw_backtrace ())
    in
    Mutex.lock fut.fm;
    fut.state <- r;
    Condition.broadcast fut.fc;
    Mutex.unlock fut.fm
  in
  Mutex.lock t.lock;
  if t.closed then begin
    Mutex.unlock t.lock;
    invalid_arg "Pool.submit: pool is shut down"
  end;
  Deque.push_back t.deques.(t.next) task;
  t.next <- (t.next + 1) mod Array.length t.deques;
  Condition.signal t.nonempty;
  Mutex.unlock t.lock;
  Mpl_obs.Metrics.incr t.stats.submitted;
  fut

let try_await t fut =
  let rec loop () =
    Mutex.lock fut.fm;
    match fut.state with
    | Done v ->
      Mutex.unlock fut.fm;
      Ok v
    | Failed (e, bt) ->
      Mutex.unlock fut.fm;
      Error (e, bt)
    | Pending ->
      Mutex.unlock fut.fm;
      (* Help: run a queued task of the pool instead of blocking. *)
      Mutex.lock t.lock;
      (match take_locked t 0 with
      | Some (task, _) ->
        Mutex.unlock t.lock;
        Mpl_obs.Metrics.incr t.stats.helped;
        run_task t 0 task;
        loop ()
      | None ->
        Mutex.unlock t.lock;
        (* Nothing to help with: the awaited task is running on a
           worker. Block until some state change. The re-check under
           [fut.fm] before waiting prevents a lost wakeup. *)
        Mutex.lock fut.fm;
        (match fut.state with
        | Pending -> Condition.wait fut.fc fut.fm
        | Done _ | Failed _ -> ());
        Mutex.unlock fut.fm;
        loop ())
  in
  loop ()

let await t fut =
  match try_await t fut with
  | Ok v -> v
  | Error (e, bt) -> Printexc.raise_with_backtrace e bt

let map_list t f xs =
  let futs = List.map (fun x -> submit t (fun () -> f x)) xs in
  List.map (await t) futs

let map_array t f xs =
  let futs = Array.map (fun x -> submit t (fun () -> f x)) xs in
  Array.map (await t) futs

let shutdown t =
  Mutex.lock t.lock;
  t.closed <- true;
  Condition.broadcast t.nonempty;
  let join = not t.joined in
  t.joined <- true;
  Mutex.unlock t.lock;
  if join then Array.iter Domain.join t.domains

let with_pool ?obs ?fault ~jobs f =
  let t = create ?obs ?fault ~jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
