(* Work-stealing domain pool. One deque per worker; owners pop oldest
   from the front (submission order — this is what makes jobs = 1
   deterministic), thieves steal newest from the back. All deques hang
   off a single mutex: tasks here are whole divided pieces (micro- to
   multi-second solves), so queue contention is irrelevant and the
   single lock keeps the blocking/wakeup protocol easy to audit. *)

module Deque = struct
  (* Amortized O(1) double-ended queue: [front] in front-to-back order,
     [back] in back-to-front order. *)
  type 'a t = { mutable front : 'a list; mutable back : 'a list }

  let create () = { front = []; back = [] }
  let push_back d x = d.back <- x :: d.back

  let pop_front d =
    match d.front with
    | x :: tl ->
      d.front <- tl;
      Some x
    | [] -> (
      match List.rev d.back with
      | [] -> None
      | x :: tl ->
        d.back <- [];
        d.front <- tl;
        Some x)

  let pop_back d =
    match d.back with
    | x :: tl ->
      d.back <- tl;
      Some x
    | [] -> (
      match List.rev d.front with
      | [] -> None
      | x :: tl ->
        d.front <- [];
        d.back <- tl;
        Some x)
end

type 'a state = Pending | Done of 'a | Failed of exn

type 'a future = {
  mutable state : 'a state;
  fm : Mutex.t;
  fc : Condition.t;
}

type t = {
  jobs : int;
  deques : (unit -> unit) Deque.t array;  (* index 0 belongs to the caller *)
  lock : Mutex.t;
  nonempty : Condition.t;
  mutable next : int;  (* round-robin submission cursor *)
  mutable closed : bool;
  mutable domains : unit Domain.t array;
  mutable joined : bool;
}

let jobs t = t.jobs

(* Pop from our own deque front, else steal from another's back.
   Must hold [t.lock]. *)
let take_locked t own =
  match Deque.pop_front t.deques.(own) with
  | Some _ as r -> r
  | None ->
    let n = Array.length t.deques in
    let rec scan k =
      if k >= n then None
      else
        match Deque.pop_back t.deques.((own + k) mod n) with
        | Some _ as r -> r
        | None -> scan (k + 1)
    in
    scan 1

let worker t own () =
  Mutex.lock t.lock;
  let rec loop () =
    match take_locked t own with
    | Some task ->
      Mutex.unlock t.lock;
      task ();
      Mutex.lock t.lock;
      loop ()
    | None ->
      if t.closed then Mutex.unlock t.lock
      else begin
        Condition.wait t.nonempty t.lock;
        loop ()
      end
  in
  loop ()

let create ~jobs =
  if jobs < 1 then invalid_arg "Pool.create: jobs < 1";
  let t =
    {
      jobs;
      deques = Array.init jobs (fun _ -> Deque.create ());
      lock = Mutex.create ();
      nonempty = Condition.create ();
      next = 0;
      closed = false;
      domains = [||];
      joined = false;
    }
  in
  t.domains <- Array.init (jobs - 1) (fun i -> Domain.spawn (worker t (i + 1)));
  t

let submit t f =
  let fut = { state = Pending; fm = Mutex.create (); fc = Condition.create () } in
  let task () =
    let r = try Done (f ()) with e -> Failed e in
    Mutex.lock fut.fm;
    fut.state <- r;
    Condition.broadcast fut.fc;
    Mutex.unlock fut.fm
  in
  Mutex.lock t.lock;
  if t.closed then begin
    Mutex.unlock t.lock;
    invalid_arg "Pool.submit: pool is shut down"
  end;
  Deque.push_back t.deques.(t.next) task;
  t.next <- (t.next + 1) mod Array.length t.deques;
  Condition.signal t.nonempty;
  Mutex.unlock t.lock;
  fut

let await t fut =
  let rec loop () =
    Mutex.lock fut.fm;
    match fut.state with
    | Done v ->
      Mutex.unlock fut.fm;
      v
    | Failed e ->
      Mutex.unlock fut.fm;
      raise e
    | Pending ->
      Mutex.unlock fut.fm;
      (* Help: run a queued task of the pool instead of blocking. *)
      Mutex.lock t.lock;
      (match take_locked t 0 with
      | Some task ->
        Mutex.unlock t.lock;
        task ();
        loop ()
      | None ->
        Mutex.unlock t.lock;
        (* Nothing to help with: the awaited task is running on a
           worker. Block until some state change. The re-check under
           [fut.fm] before waiting prevents a lost wakeup. *)
        Mutex.lock fut.fm;
        (match fut.state with
        | Pending -> Condition.wait fut.fc fut.fm
        | Done _ | Failed _ -> ());
        Mutex.unlock fut.fm;
        loop ())
  in
  loop ()

let map_list t f xs =
  let futs = List.map (fun x -> submit t (fun () -> f x)) xs in
  List.map (await t) futs

let map_array t f xs =
  let futs = Array.map (fun x -> submit t (fun () -> f x)) xs in
  Array.map (await t) futs

let shutdown t =
  Mutex.lock t.lock;
  t.closed <- true;
  Condition.broadcast t.nonempty;
  let join = not t.joined in
  t.joined <- true;
  Mutex.unlock t.lock;
  if join then Array.iter Domain.join t.domains

let with_pool ~jobs f =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
