(* Shared-queue domain pool with priorities and backpressure. Tasks are
   whole divided pieces (micro- to multi-second solves), so one mutex
   around a binary heap is never the bottleneck and keeps the
   blocking/wakeup protocol easy to audit.

   The queue is a max-heap on (priority, submission seq): higher
   priority first, FIFO among equals — so with the default priority
   every consumer sees exact submission order and jobs = 1 degenerates
   to deterministic sequential execution. The heap is bounded: a
   submission that finds it full first helps run queued tasks from the
   calling thread until there is room, which both caps memory for
   streaming producers and is deadlock-free at any [jobs] (the producer
   never blocks on a condition another producer must signal). *)

(* A cancel token covers every task submitted with it (one token per
   request in the server). Cancellation is checked only when a task is
   about to be dequeued for execution: a cancelled task never runs, its
   future is resolved to [Failed Cancelled], and the drop is counted on
   the token. Tasks already running are unaffected — their results are
   simply never looked at by the cancelled consumer. *)
type token = {
  tflag : bool Atomic.t;
  tdrops : int Atomic.t;  (* logical tasks dropped without running *)
}

exception Cancelled

let token () = { tflag = Atomic.make false; tdrops = Atomic.make 0 }
let cancel tok = Atomic.set tok.tflag true
let cancelled tok = Atomic.get tok.tflag
let drops tok = Atomic.get tok.tdrops

type task = {
  run : unit -> unit;
  drop : unit -> int;  (* resolve futures as Cancelled; # logical tasks *)
  cancel : token option;
  prio : int;
  seq : int;
}

(* Binary max-heap ordered by (prio desc, seq asc). Plain array
   storage, grown geometrically up to the queue bound. *)
module Heap = struct
  type t = {
    mutable a : task array;
    mutable len : int;
  }

  let dummy =
    { run = ignore; drop = (fun () -> 0); cancel = None; prio = 0; seq = 0 }
  let create () = { a = Array.make 64 dummy; len = 0 }
  let length h = h.len

  let before x y = x.prio > y.prio || (x.prio = y.prio && x.seq < y.seq)

  let push h x =
    if h.len = Array.length h.a then begin
      let b = Array.make (2 * h.len) dummy in
      Array.blit h.a 0 b 0 h.len;
      h.a <- b
    end;
    let i = ref h.len in
    h.len <- h.len + 1;
    h.a.(!i) <- x;
    while
      !i > 0
      &&
      let p = (!i - 1) / 2 in
      before h.a.(!i) h.a.(p)
    do
      let p = (!i - 1) / 2 in
      let tmp = h.a.(p) in
      h.a.(p) <- h.a.(!i);
      h.a.(!i) <- tmp;
      i := p
    done

  let pop h =
    if h.len = 0 then None
    else begin
      let top = h.a.(0) in
      h.len <- h.len - 1;
      h.a.(0) <- h.a.(h.len);
      h.a.(h.len) <- dummy;
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let best = ref !i in
        if l < h.len && before h.a.(l) h.a.(!best) then best := l;
        if r < h.len && before h.a.(r) h.a.(!best) then best := r;
        if !best = !i then continue := false
        else begin
          let tmp = h.a.(!best) in
          h.a.(!best) <- h.a.(!i);
          h.a.(!i) <- tmp;
          i := !best
        end
      done;
      Some top
    end
end

(* Failures carry the backtrace captured at the raise site, so a
   re-raise in [await] (possibly on another domain) keeps the original
   trace instead of pointing at the join. *)
type 'a state =
  | Pending
  | Done of 'a
  | Failed of exn * Printexc.raw_backtrace

type 'a future = {
  mutable state : 'a state;
  fm : Mutex.t;
  fc : Condition.t;
}

(* Observability handles; all are no-op [None] handles when the pool is
   created without [?obs] or the registry is the null one, so the
   untraced pool pays one branch per event and reads no clocks. *)
type stats = {
  submitted : Mpl_obs.Metrics.counter;
  groups : Mpl_obs.Metrics.counter;
  helped : Mpl_obs.Metrics.counter;
  backpressure : Mpl_obs.Metrics.counter;
  idle_waits : Mpl_obs.Metrics.counter;
  dropped : Mpl_obs.Metrics.counter;  (* cancelled before running *)
  busy_ns : Mpl_obs.Metrics.counter array;  (* per worker slot, 0 = caller *)
  timed : bool;  (* read the clock around task bodies *)
}

type t = {
  jobs : int;
  queue : Heap.t;
  bound : int;
  lock : Mutex.t;
  nonempty : Condition.t;
  mutable seq : int;  (* submission counter, FIFO tie-break *)
  mutable closed : bool;
  mutable domains : unit Domain.t array;
  mutable joined : bool;
  stats : stats;
  fault : Fault.t;
}

let jobs t = t.jobs
let default_bound = 1024

let bound t = t.bound

let queue_depth t =
  Mutex.lock t.lock;
  let n = Heap.length t.queue in
  Mutex.unlock t.lock;
  n

let make_stats ~jobs (obs : Mpl_obs.Obs.t) =
  let m = obs.Mpl_obs.Obs.metrics in
  {
    submitted = Mpl_obs.Metrics.counter m "pool.submitted";
    groups = Mpl_obs.Metrics.counter m "pool.groups";
    helped = Mpl_obs.Metrics.counter m "pool.helped";
    backpressure = Mpl_obs.Metrics.counter m "pool.backpressure";
    idle_waits = Mpl_obs.Metrics.counter m "pool.idle_waits";
    dropped = Mpl_obs.Metrics.counter m "pool.dropped";
    busy_ns =
      Array.init jobs (fun i ->
          Mpl_obs.Metrics.counter m (Printf.sprintf "pool.worker%d.busy_ns" i));
    timed = Mpl_obs.Metrics.enabled m;
  }

(* Run [task] on worker slot [slot], charging wall time to that slot's
   busy counter when metrics are on. *)
let run_task t slot task =
  if Fault.fires t.fault Fault.Worker_delay then Fault.delay ();
  if t.stats.timed then begin
    let t0 = Mpl_util.Timer.now_ns () in
    let finish () =
      let dt = Int64.sub (Mpl_util.Timer.now_ns ()) t0 in
      Mpl_obs.Metrics.add t.stats.busy_ns.(slot) (Int64.to_int dt)
    in
    match task () with
    | () -> finish ()
    | exception e ->
      finish ();
      raise e
  end
  else task ()

(* Drop a cancelled task instead of running it: resolve its futures so
   joiners raise [Cancelled], count the logical tasks on the token and
   the pool counter. Called with [t.lock] held — safe, because the lock
   order everywhere else is pool lock strictly before future lock. *)
let drop_task t task =
  let n = task.drop () in
  (match task.cancel with
  | Some tok -> ignore (Atomic.fetch_and_add tok.tdrops n)
  | None -> ());
  Mpl_obs.Metrics.add t.stats.dropped n;
  n

(* Pop the next runnable task, discarding cancelled ones in passing —
   the O(1)-per-task dequeue-time cancellation check. Caller holds
   [t.lock]. *)
let rec pop_live t =
  match Heap.pop t.queue with
  | None -> None
  | Some task -> (
    match task.cancel with
    | Some tok when Atomic.get tok.tflag ->
      ignore (drop_task t task);
      pop_live t
    | _ -> Some task)

let worker t own () =
  Mutex.lock t.lock;
  let rec loop () =
    match pop_live t with
    | Some task ->
      Mutex.unlock t.lock;
      run_task t own task.run;
      Mutex.lock t.lock;
      loop ()
    | None ->
      if t.closed then Mutex.unlock t.lock
      else begin
        Mpl_obs.Metrics.incr t.stats.idle_waits;
        Condition.wait t.nonempty t.lock;
        loop ()
      end
  in
  loop ()

let create ?(obs = Mpl_obs.Obs.null) ?(fault = Fault.none)
    ?(bound = default_bound) ~jobs () =
  if jobs < 1 then invalid_arg "Pool.create: jobs < 1";
  if bound < 1 then invalid_arg "Pool.create: bound < 1";
  let t =
    {
      jobs;
      queue = Heap.create ();
      bound;
      lock = Mutex.create ();
      nonempty = Condition.create ();
      seq = 0;
      closed = false;
      domains = [||];
      joined = false;
      stats = make_stats ~jobs obs;
      fault;
    }
  in
  t.domains <- Array.init (jobs - 1) (fun i -> Domain.spawn (worker t (i + 1)));
  t

let fresh_future () =
  { state = Pending; fm = Mutex.create (); fc = Condition.create () }

let resolve fut r =
  Mutex.lock fut.fm;
  fut.state <- r;
  Condition.broadcast fut.fc;
  Mutex.unlock fut.fm

let task_of fut f () =
  let r =
    try Done (f ()) with e -> Failed (e, Printexc.get_raw_backtrace ())
  in
  resolve fut r

(* Enqueue under the bound: while the queue is full, pop and run one
   task on the calling thread (backpressure by helping — never waits on
   a condition, so it cannot deadlock at jobs = 1). *)
let enqueue t ~prio ~cancel ~drop run =
  Mutex.lock t.lock;
  if t.closed then begin
    Mutex.unlock t.lock;
    invalid_arg "Pool.submit: pool is shut down"
  end;
  while Heap.length t.queue >= t.bound do
    match pop_live t with
    | Some task ->
      Mutex.unlock t.lock;
      Mpl_obs.Metrics.incr t.stats.backpressure;
      run_task t 0 task.run;
      Mutex.lock t.lock
    | None -> ()
  done;
  Heap.push t.queue { run; drop; cancel; prio; seq = t.seq };
  t.seq <- t.seq + 1;
  Condition.signal t.nonempty;
  Mutex.unlock t.lock;
  Mpl_obs.Metrics.incr t.stats.submitted

let submit ?(priority = 0) ?cancel t f =
  let fut = fresh_future () in
  let drop () =
    resolve fut (Failed (Cancelled, Printexc.get_callstack 0));
    1
  in
  enqueue t ~prio:priority ~cancel ~drop (task_of fut f);
  fut

(* One queue slot, many logical tasks: the chunk runs its members
   sequentially in submission order inside a single pool task, so tiny
   pieces pay one enqueue/dequeue for the whole group. Each member still
   gets its own future (failures stay isolated per member). *)
let submit_group ?(priority = 0) ?cancel t fs =
  match fs with
  | [] -> []
  | fs ->
    let cells = List.map (fun f -> (fresh_future (), f)) fs in
    let run () = List.iter (fun (fut, f) -> task_of fut f ()) cells in
    let drop () =
      let bt = Printexc.get_callstack 0 in
      List.iter (fun (fut, _) -> resolve fut (Failed (Cancelled, bt))) cells;
      List.length cells
    in
    enqueue t ~prio:priority ~cancel ~drop run;
    Mpl_obs.Metrics.incr t.stats.groups;
    List.map fst cells

let try_await t fut =
  let rec loop () =
    Mutex.lock fut.fm;
    match fut.state with
    | Done v ->
      Mutex.unlock fut.fm;
      Ok v
    | Failed (e, bt) ->
      Mutex.unlock fut.fm;
      Error (e, bt)
    | Pending ->
      Mutex.unlock fut.fm;
      (* Help: run a queued task of the pool instead of blocking. *)
      Mutex.lock t.lock;
      (match pop_live t with
      | Some task ->
        Mutex.unlock t.lock;
        Mpl_obs.Metrics.incr t.stats.helped;
        run_task t 0 task.run;
        loop ()
      | None ->
        Mutex.unlock t.lock;
        (* Nothing to help with: the awaited task is running on a
           worker. Block until some state change. The re-check under
           [fut.fm] before waiting prevents a lost wakeup. *)
        Mutex.lock fut.fm;
        (match fut.state with
        | Pending -> Condition.wait fut.fc fut.fm
        | Done _ | Failed _ -> ());
        Mutex.unlock fut.fm;
        loop ())
  in
  loop ()

let await t fut =
  match try_await t fut with
  | Ok v -> v
  | Error (e, bt) -> Printexc.raise_with_backtrace e bt

let map_list t f xs =
  let futs = List.map (fun x -> submit t (fun () -> f x)) xs in
  List.map (await t) futs

let map_array t f xs =
  let futs = Array.map (fun x -> submit t (fun () -> f x)) xs in
  Array.map (await t) futs

(* Eager sweep: with dequeue-time-only checks a cancelled task would
   sit in the queue until a consumer reaches it (possibly never, on an
   idle pool). The sweep settles the drop accounting promptly so a
   teardown path can read [drops] right away. One O(queue) pass. *)
let discard_cancelled t =
  Mutex.lock t.lock;
  let kept = ref [] in
  let dropped = ref 0 in
  let rec drain () =
    match Heap.pop t.queue with
    | None -> ()
    | Some task ->
      (match task.cancel with
      | Some tok when Atomic.get tok.tflag ->
        dropped := !dropped + drop_task t task
      | _ -> kept := task :: !kept);
      drain ()
  in
  drain ();
  List.iter (Heap.push t.queue) !kept;
  Mutex.unlock t.lock;
  !dropped

let shutdown t =
  Mutex.lock t.lock;
  t.closed <- true;
  Condition.broadcast t.nonempty;
  let join = not t.joined in
  t.joined <- true;
  Mutex.unlock t.lock;
  if join then Array.iter Domain.join t.domains

let with_pool ?obs ?fault ?bound ~jobs f =
  let t = create ?obs ?fault ?bound ~jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
