(** Fixed-size domain pool with one work-stealing deque per worker.

    Built on OCaml 5 [Domain] / [Mutex] / [Condition] only — no external
    dependencies. Designed for the coarse-grained tasks of the
    decomposition engine (one task = one divided piece), so the deques
    share a single lock: task bodies run for microseconds to seconds and
    the queue operations are never the bottleneck.

    A pool with [jobs = j] runs up to [j] tasks concurrently: [j - 1]
    worker domains plus the calling thread, which helps execute queued
    tasks whenever it blocks in {!await} (so [jobs = 1] spawns no domain
    at all and degenerates to eager sequential execution in submission
    order). Join order is deterministic: {!map_list} and {!map_array}
    always deliver results in submission order regardless of which
    worker ran which task. *)

type t

val create : ?obs:Mpl_obs.Obs.t -> ?fault:Fault.t -> jobs:int -> unit -> t
(** [create ~jobs ()] spawns [jobs - 1] worker domains. When [obs]
    carries an enabled metrics registry, the pool maintains
    [pool.submitted], [pool.steals], [pool.helped], [pool.idle_waits]
    counters plus a [pool.worker<i>.busy_ns] wall-time counter per
    worker slot (slot 0 is the calling thread helping in {!await});
    without it every probe is a no-op and no clock is read.
    When [fault] is armed for {!Fault.Worker_delay}, the selected task
    executions are delayed by ~5 ms before running (outputs must be
    unaffected — only schedules are perturbed).
    @raise Invalid_argument if [jobs < 1]. *)

val jobs : t -> int

type 'a future

val submit : t -> (unit -> 'a) -> 'a future
(** Enqueue a task (round-robin across the worker deques). Tasks must
    not themselves call {!submit} or {!await} on the same pool.
    @raise Invalid_argument if the pool was shut down. *)

val await : t -> 'a future -> 'a
(** Block until the task finished, running other queued tasks of the
    pool while waiting. Re-raises the task's exception if it failed,
    preserving the backtrace captured at the original raise site. *)

val try_await : t -> 'a future -> ('a, exn * Printexc.raw_backtrace) result
(** Like {!await}, but a failed task yields [Error (exn, backtrace)]
    instead of re-raising — the hook for per-piece failure isolation:
    one poisoned task no longer aborts the whole batch. *)

val map_list : t -> ('a -> 'b) -> 'a list -> 'b list
(** Parallel [List.map] with results in input order. If several tasks
    raise, the exception of the earliest submitted failing task is
    re-raised (deterministic join order). *)

val map_array : t -> ('a -> 'b) -> 'a array -> 'b array

val shutdown : t -> unit
(** Join all worker domains. Idempotent. Pending never-awaited tasks
    are discarded. *)

val with_pool :
  ?obs:Mpl_obs.Obs.t -> ?fault:Fault.t -> jobs:int -> (t -> 'a) -> 'a
(** [create], run, then [shutdown] (also on exception). *)
