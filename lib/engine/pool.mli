(** Fixed-size domain pool around one bounded priority queue.

    Built on OCaml 5 [Domain] / [Mutex] / [Condition] only — no external
    dependencies. Designed for the coarse-grained tasks of the
    decomposition engine (one task = one divided piece or one chunk of
    small pieces), so the queue shares a single lock: task bodies run
    for microseconds to seconds and queue operations are never the
    bottleneck.

    The queue is a max-heap on (priority, submission order): higher
    priority runs first, FIFO among equal priorities — so with the
    default priority 0 tasks execute in exact submission order and
    [jobs = 1] degenerates to deterministic sequential execution. The
    queue is bounded ({!create}'s [bound]); a submission that finds it
    full helps run queued tasks from the calling thread until there is
    room, which caps memory under a fast streaming producer without
    ever blocking on a condition (deadlock-free at any [jobs]).

    A pool with [jobs = j] runs up to [j] tasks concurrently: [j - 1]
    worker domains plus the calling thread, which helps execute queued
    tasks whenever it blocks in {!await}. Join order is deterministic:
    {!map_list} and {!map_array} always deliver results in submission
    order regardless of which worker ran which task. *)

type t

type token
(** A cancellation token shared by every task submitted with it —
    one token per request in the server. Cancellation is observed at
    dequeue time: a cancelled task is dropped in O(1) instead of
    running, and its future resolves to [Failed Cancelled]; a task
    already running is unaffected (its result is simply discarded by
    the cancelled consumer). Thread-safe. *)

exception Cancelled
(** Raised by {!await} on a future whose task was dropped. *)

val token : unit -> token

val cancel : token -> unit
(** Flag the token. Queued tasks carrying it will be dropped at
    dequeue (or eagerly by {!discard_cancelled}); already-running
    tasks finish normally. Idempotent. *)

val cancelled : token -> bool

val drops : token -> int
(** Logical tasks (group members count individually) dropped without
    running so far on this token. *)

val discard_cancelled : t -> int
(** Sweep the queue, dropping every task whose token is cancelled —
    resolving their futures and counting the drops — and return the
    number of logical tasks dropped by this sweep. Without the sweep a
    cancelled task is only dropped when a consumer would otherwise run
    it, which on an idle pool may be never; teardown paths call this to
    settle {!drops} accounting promptly. O(queue length). *)

val create :
  ?obs:Mpl_obs.Obs.t ->
  ?fault:Fault.t ->
  ?bound:int ->
  jobs:int ->
  unit ->
  t
(** [create ~jobs ()] spawns [jobs - 1] worker domains. [bound]
    (default 1024) caps the number of queued-but-unstarted tasks; a
    full queue applies backpressure by making {!submit} help run tasks
    first. When [obs] carries an enabled metrics registry, the pool
    maintains [pool.submitted], [pool.groups], [pool.helped],
    [pool.backpressure], [pool.idle_waits], [pool.dropped] counters
    plus a
    [pool.worker<i>.busy_ns] wall-time counter per worker slot (slot 0
    is the calling thread helping in {!await} or under backpressure);
    without it every probe is a no-op and no clock is read.
    When [fault] is armed for {!Fault.Worker_delay}, the selected task
    executions are delayed by ~5 ms before running (outputs must be
    unaffected — only schedules are perturbed).
    @raise Invalid_argument if [jobs < 1] or [bound < 1]. *)

val jobs : t -> int

val bound : t -> int
(** The queue bound the pool was created with. *)

val queue_depth : t -> int
(** Number of tasks currently waiting in the queue (excludes tasks
    already running on workers). Point-in-time: taken under the pool
    lock, stale by the time the caller looks at it — meant for
    admission gates and gauges, not synchronization. *)

type 'a future

val submit : ?priority:int -> ?cancel:token -> t -> (unit -> 'a) -> 'a future
(** Enqueue a task. Higher [priority] (default 0) runs first; equal
    priorities run in submission order. If the queue is at its bound
    the calling thread first helps run queued tasks (backpressure).
    Tasks must not themselves call {!submit} or {!await} on the same
    pool. When [cancel] is given and the token is cancelled before the
    task is dequeued, the task never runs and {!await} raises
    {!Cancelled}.
    @raise Invalid_argument if the pool was shut down. *)

val submit_group :
  ?priority:int -> ?cancel:token -> t -> (unit -> 'a) list -> 'a future list
(** Enqueue a list of tasks as ONE queue entry: the group occupies a
    single slot and its members run sequentially, in list order, on
    whichever consumer dequeues it — amortizing per-task submission
    and dispatch overhead for many tiny tasks. Each member still gets
    its own future, and a member's exception is confined to its own
    future (later members still run). *)

val await : t -> 'a future -> 'a
(** Block until the task finished, running other queued tasks of the
    pool while waiting. Re-raises the task's exception if it failed,
    preserving the backtrace captured at the original raise site. *)

val try_await : t -> 'a future -> ('a, exn * Printexc.raw_backtrace) result
(** Like {!await}, but a failed task yields [Error (exn, backtrace)]
    instead of re-raising — the hook for per-piece failure isolation:
    one poisoned task no longer aborts the whole batch. *)

val map_list : t -> ('a -> 'b) -> 'a list -> 'b list
(** Parallel [List.map] with results in input order. If several tasks
    raise, the exception of the earliest submitted failing task is
    re-raised (deterministic join order). *)

val map_array : t -> ('a -> 'b) -> 'a array -> 'b array

val shutdown : t -> unit
(** Join all worker domains. Idempotent. Pending never-awaited tasks
    are discarded. *)

val with_pool :
  ?obs:Mpl_obs.Obs.t ->
  ?fault:Fault.t ->
  ?bound:int ->
  jobs:int ->
  (t -> 'a) ->
  'a
(** [create], run, then [shutdown] (also on exception). *)
