type stats = {
  pieces : int;
  solved : int;
  hits : int;
  reused : int;
  failed : int;
  rejected : int;
}

let no_stats =
  { pieces = 0; solved = 0; hits = 0; reused = 0; failed = 0; rejected = 0 }

let add_stats a b =
  {
    pieces = a.pieces + b.pieces;
    solved = a.solved + b.solved;
    hits = a.hits + b.hits;
    reused = a.reused + b.reused;
    failed = a.failed + b.failed;
    rejected = a.rejected + b.rejected;
  }

(* Per-piece resolution plan, decided sequentially in index order. *)
type 'v plan =
  | Hit of int array * 'v  (* found in the cache before solving *)
  | Follower of int  (* reuse the result of batch leader [i] *)
  | Leader  (* solve fresh on the pool *)

let solve_pieces ?(obs = Mpl_obs.Obs.null) ~pool ?cache ?signature
    ?(validate = fun _ _ -> true) ?recover ~solve pieces =
  let items = Array.of_list pieces in
  Mpl_obs.Obs.span obs "engine.batch"
    ~args:[ ("pieces", Mpl_obs.Sink.Int (Array.length items)) ]
  @@ fun () ->
  let n = Array.length items in
  let sigs =
    match (cache, signature) with
    | Some _, Some f -> Array.map f items
    | _ -> Array.make n None
  in
  let exact =
    match cache with
    | Some c -> Cache.mode c = Cache.Exact
    | None -> true
  in
  (* Batch-leader index per canonical key (Exact mode distinguishes the
     original serialization too, so followers are byte-identical). *)
  let leaders : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let hits = ref 0 and reused = ref 0 and solved = ref 0 in
  let failed = ref 0 and rejected = ref 0 in
  let lead i s =
    let dedup_key =
      if exact then s.Cache.key ^ "\x00" ^ s.Cache.serial else s.Cache.key
    in
    match Hashtbl.find_opt leaders dedup_key with
    | Some j ->
      incr reused;
      Follower j
    | None ->
      Hashtbl.replace leaders dedup_key i;
      incr solved;
      Leader
  in
  let plans =
    Array.init n (fun i ->
        match sigs.(i) with
        | None ->
          incr solved;
          Leader
        | Some s -> (
          match Option.bind cache (fun c -> Cache.find c s) with
          | Some (colors, v) when validate items.(i) colors ->
            incr hits;
            Hit (colors, v)
          | Some _ ->
            (* Cached coloring failed validation: treat as a miss and
               re-solve rather than propagate a bad reuse. *)
            incr rejected;
            lead i s
          | None -> lead i s))
  in
  let futures =
    Array.mapi
      (fun i plan ->
        match plan with
        | Leader -> Some (Pool.submit pool (fun () -> solve items.(i)))
        | Hit _ | Follower _ -> None)
      plans
  in
  (* Join in index order; leaders are resolved (and stored) before any
     follower that points at them, because followers always reference a
     smaller index. *)
  let results : (int array * 'v) option array = Array.make n None in
  for i = 0 to n - 1 do
    match plans.(i) with
    | Hit (colors, v) -> results.(i) <- Some (colors, v)
    | Leader ->
      let outcome =
        match futures.(i) with
        | Some fut -> Pool.try_await pool fut
        | None -> assert false
      in
      (match outcome with
      | Ok ((colors, v) as r) ->
        (match (cache, sigs.(i)) with
        | Some c, Some s -> Cache.store c s r
        | _ -> ());
        results.(i) <- Some (colors, v)
      | Error (e, bt) -> (
        match recover with
        | None -> Printexc.raise_with_backtrace e bt
        | Some recover ->
          (* Isolate the failure to this piece: recover a substitute
             result (never cached — it is not what [solve] returns) and
             let any followers reuse it. *)
          incr failed;
          results.(i) <- Some (recover items.(i) e bt)))
    | Follower j ->
      let lc, lv =
        match results.(j) with Some r -> r | None -> assert false
      in
      let colors =
        match (sigs.(j), sigs.(i)) with
        | Some sj, Some si ->
          if exact then Array.copy lc else Cache.transfer sj si lc
        | _ -> assert false
      in
      results.(i) <- Some (colors, lv)
  done;
  let out =
    Array.to_list
      (Array.map (function Some r -> r | None -> assert false) results)
  in
  let m = obs.Mpl_obs.Obs.metrics in
  Mpl_obs.Metrics.add (Mpl_obs.Metrics.counter m "engine.pieces") n;
  Mpl_obs.Metrics.add (Mpl_obs.Metrics.counter m "engine.solved") !solved;
  Mpl_obs.Metrics.add (Mpl_obs.Metrics.counter m "engine.cache_hits") !hits;
  Mpl_obs.Metrics.add (Mpl_obs.Metrics.counter m "engine.batch_reused") !reused;
  Mpl_obs.Metrics.add (Mpl_obs.Metrics.counter m "engine.piece_failures") !failed;
  Mpl_obs.Metrics.add (Mpl_obs.Metrics.counter m "engine.cache_rejects") !rejected;
  ( out,
    {
      pieces = n;
      solved = !solved;
      hits = !hits;
      reused = !reused;
      failed = !failed;
      rejected = !rejected;
    } )
