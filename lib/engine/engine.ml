type stats = {
  pieces : int;
  solved : int;
  hits : int;
  reused : int;
  failed : int;
  rejected : int;
}

let no_stats =
  { pieces = 0; solved = 0; hits = 0; reused = 0; failed = 0; rejected = 0 }

let add_stats a b =
  {
    pieces = a.pieces + b.pieces;
    solved = a.solved + b.solved;
    hits = a.hits + b.hits;
    reused = a.reused + b.reused;
    failed = a.failed + b.failed;
    rejected = a.rejected + b.rejected;
  }

(* ------------------------------------------------------------------ *)
(* Streaming driver. A [stream] accepts items one at a time ([push]),
   decides each item's resolution plan immediately — cache hit, batch
   follower, or fresh leader — and returns a [cell] whose result is
   demanded later with [force]. All cache probes and leader elections
   happen on the pushing thread in push order, so a given (item
   sequence, cache mode) pair always resolves hits, batch reuses and
   fresh solves identically regardless of pool width or of how work is
   scheduled behind the [plant] callback: [jobs] stays a pure
   performance knob. *)

type ('a, 'v) cell_state =
  | Ready of int array * 'v
  | Planned of (unit -> int array * 'v)  (* leader: demand-side join *)
  | Follow of ('a, 'v) cell  (* reuse that leader's result *)

and ('a, 'v) cell = {
  item : 'a;
  c_sig : Cache.signature option;
  mutable cs : ('a, 'v) cell_state;
}

type ('a, 'v) t = {
  obs : Mpl_obs.Obs.t;
  cache : 'v Cache.t option;
  exact : bool;
  signature : 'a -> Cache.signature option;
  validate : 'a -> int array -> bool;
  recover : ('a -> exn -> Printexc.raw_backtrace -> int array * 'v) option;
  plant : 'a -> unit -> int array * 'v;
  leaders : (string, ('a, 'v) cell) Hashtbl.t;
  mutable n_pieces : int;
  mutable n_solved : int;
  mutable n_hits : int;
  mutable n_reused : int;
  mutable n_failed : int;
  mutable n_rejected : int;
}

let stream ?(obs = Mpl_obs.Obs.null) ?cache
    ?(signature = fun _ -> None) ?(validate = fun _ _ -> true) ?recover
    ~plant () =
  let exact =
    match cache with Some c -> Cache.mode c = Cache.Exact | None -> true
  in
  {
    obs;
    cache;
    exact;
    signature;
    validate;
    recover;
    plant;
    leaders = Hashtbl.create 64;
    n_pieces = 0;
    n_solved = 0;
    n_hits = 0;
    n_reused = 0;
    n_failed = 0;
    n_rejected = 0;
  }

let push t item =
  t.n_pieces <- t.n_pieces + 1;
  let c_sig = match t.cache with Some _ -> t.signature item | None -> None in
  (* Batch-leader election per canonical key (Exact mode distinguishes
     the original serialization too, so followers are byte-identical). *)
  let lead () =
    match c_sig with
    | None ->
      t.n_solved <- t.n_solved + 1;
      { item; c_sig; cs = Planned (t.plant item) }
    | Some s -> (
      let dedup_key =
        if t.exact then s.Cache.key ^ "\x00" ^ s.Cache.serial else s.Cache.key
      in
      match Hashtbl.find_opt t.leaders dedup_key with
      | Some leader ->
        t.n_reused <- t.n_reused + 1;
        { item; c_sig; cs = Follow leader }
      | None ->
        t.n_solved <- t.n_solved + 1;
        let cell = { item; c_sig; cs = Planned (t.plant item) } in
        Hashtbl.replace t.leaders dedup_key cell;
        cell)
  in
  match c_sig with
  | None -> lead ()
  | Some s -> (
    match Option.bind t.cache (fun c -> Cache.find c s) with
    | Some (colors, v) when t.validate item colors ->
      t.n_hits <- t.n_hits + 1;
      { item; c_sig; cs = Ready (colors, v) }
    | Some _ ->
      (* Cached coloring failed validation: treat as a miss and re-solve
         rather than propagate a bad reuse. *)
      t.n_rejected <- t.n_rejected + 1;
      lead ()
    | None -> lead ())

let rec force t cell =
  match cell.cs with
  | Ready (colors, v) -> (colors, v)
  | Planned join ->
    let r =
      match join () with
      | r ->
        (match (t.cache, cell.c_sig) with
        | Some c, Some s -> Cache.store c s r
        | _ -> ());
        r
      | exception e -> (
        match t.recover with
        | None -> raise e
        | Some recover ->
          (* Isolate the failure to this item: recover a substitute
             result (never cached — it is not what the planner returns)
             and let any followers reuse it. *)
          let bt = Printexc.get_raw_backtrace () in
          t.n_failed <- t.n_failed + 1;
          recover cell.item e bt)
    in
    let colors, v = r in
    cell.cs <- Ready (colors, v);
    r
  | Follow leader ->
    let lc, lv = force t leader in
    let colors =
      match (leader.c_sig, cell.c_sig) with
      | Some sj, Some si ->
        if t.exact then Array.copy lc else Cache.transfer sj si lc
      | _ -> assert false
    in
    cell.cs <- Ready (colors, lv);
    (colors, lv)

let finish t =
  let m = t.obs.Mpl_obs.Obs.metrics in
  Mpl_obs.Metrics.add (Mpl_obs.Metrics.counter m "engine.pieces") t.n_pieces;
  Mpl_obs.Metrics.add (Mpl_obs.Metrics.counter m "engine.solved") t.n_solved;
  Mpl_obs.Metrics.add (Mpl_obs.Metrics.counter m "engine.cache_hits") t.n_hits;
  Mpl_obs.Metrics.add
    (Mpl_obs.Metrics.counter m "engine.batch_reused")
    t.n_reused;
  Mpl_obs.Metrics.add
    (Mpl_obs.Metrics.counter m "engine.piece_failures")
    t.n_failed;
  Mpl_obs.Metrics.add
    (Mpl_obs.Metrics.counter m "engine.cache_rejects")
    t.n_rejected;
  {
    pieces = t.n_pieces;
    solved = t.n_solved;
    hits = t.n_hits;
    reused = t.n_reused;
    failed = t.n_failed;
    rejected = t.n_rejected;
  }

(* ------------------------------------------------------------------ *)
(* Batch driver, kept as the simple all-at-once entry point: push every
   piece (submitting leaders to the pool), then force in index order.
   Identical plan/store order to pushing-and-forcing interleaved. *)

let solve_pieces ?(obs = Mpl_obs.Obs.null) ~pool ?cache ?signature
    ?(validate = fun _ _ -> true) ?recover ~solve pieces =
  Mpl_obs.Obs.span obs "engine.batch"
    ~args:[ ("pieces", Mpl_obs.Sink.Int (List.length pieces)) ]
  @@ fun () ->
  let plant item =
    let fut = Pool.submit pool (fun () -> solve item) in
    fun () -> Pool.await pool fut
  in
  let t = stream ~obs ?cache ?signature ~validate ?recover ~plant () in
  let cells = List.map (push t) pieces in
  let out = List.map (force t) cells in
  (out, finish t)
