(** Deterministic, seedable fault injection for the engine and the
    decomposition pipeline.

    A fault {!spec} names one {!site} and a seed. Arming it yields an
    injector that fires at the site's occurrence number [seed mod 8]
    (0-based, counted across the run) and at the [shots - 1] following
    occurrences — so a single spec describes exactly which solve /
    store / task the fault hits. With one worker the firing point is
    fully deterministic; with several, the same occurrences fire but
    their global interleaving may vary. An unarmed injector ({!none})
    never fires and costs one branch per probe.

    Sites:
    - [Solver_raise]: the per-piece solver raises {!Injected} instead of
      solving — exercises the fallback ladder.
    - [Worker_delay]: a pool task is delayed ~5 ms before running —
      perturbs work-stealing schedules; must never change outputs.
    - [Cache_corrupt]: a cache store writes a corrupted coloring (its
      integrity checksum is computed first, so probes detect and drop
      the entry) — exercises cache-hit validation.
    - [Budget_trip]: the shared solver budget is force-expired before an
      exact solve — exercises budget-free heuristic fallback.

    Network sites (probed by the server's connection I/O layer; an
    occurrence is one send, flush, or body-read operation on the armed
    site):
    - [Conn_drop]: the connection is shut down at a send or body-read —
      models a client vanishing mid-request.
    - [Write_stall]: a flush reports an exhausted write deadline without
      sleeping — models a reader that stops draining its socket.
    - [Torn_frame]: a flush writes only the first half of its buffer and
      then shuts the connection down — models a mid-frame disconnect. *)

type site =
  | Solver_raise
  | Worker_delay
  | Cache_corrupt
  | Budget_trip
  | Conn_drop
  | Write_stall
  | Torn_frame

type spec = { site : site; seed : int; shots : int }

exception Injected of site
(** What a [Solver_raise] injection raises. *)

val site_name : site -> string
val site_of_name : string -> site option

val spec_to_string : spec -> string

val parse : string -> (spec, string) result
(** Parse a CLI fault spec: [SITE[:seed=N][:shots=N]], e.g.
    ["solver_raise:seed=7"] or ["cache_corrupt"]. Defaults:
    [seed = 0], [shots = 1]. *)

type t
(** An armed (or inert) injector. Thread-safe. *)

val none : t
(** Never fires. *)

val arm : spec -> t

val armed : t -> bool

val fires : t -> site -> bool
(** [fires t site] records one eligible occurrence of [site] (when it
    is the armed site) and reports whether the fault fires here. *)

val fired : t -> bool
(** Did any occurrence fire so far? *)

val fire_count : t -> int

val delay : ?ns:int64 -> unit -> unit
(** Busy-wait (default ~5 ms); the [Worker_delay] payload. *)
