type t = { lp : Lp.t; binary : bool array }

type outcome =
  | Optimal of float * float array
  | Infeasible
  | Timeout of (float * float array) option

let int_eps = 1e-6

(* Substitute fixed variables into the LP: their columns vanish and their
   contribution moves into the right-hand side / objective constant. *)
let restrict lp (fixed : float option array) =
  let constraints =
    List.map
      (fun (c : Lp.constr) ->
        let rhs = ref c.Lp.rhs in
        let coeffs =
          List.filter
            (fun (v, x) ->
              match fixed.(v) with
              | Some value ->
                rhs := !rhs -. (x *. value);
                false
              | None -> true)
            c.Lp.coeffs
        in
        { Lp.coeffs; rel = c.Lp.rel; rhs = !rhs })
      lp.Lp.constraints
  in
  let const = ref 0. in
  let objective = Array.copy lp.Lp.objective in
  Array.iteri
    (fun v fx ->
      match fx with
      | Some value ->
        const := !const +. (objective.(v) *. value);
        objective.(v) <- 0.
      | None -> ())
    fixed;
  ({ lp with Lp.constraints; objective }, !const)

let solve ?(budget = Mpl_util.Timer.budget 0.) t =
  let nvars = t.lp.Lp.nvars in
  let fixed = Array.make nvars None in
  let incumbent = ref None in
  let timed_out = ref false in
  let better obj =
    match !incumbent with None -> true | Some (best, _) -> obj < best -. 1e-9
  in
  let rec branch () =
    if Mpl_util.Timer.expired budget then timed_out := true
    else begin
      let sub, const = restrict t.lp fixed in
      match Lp.solve sub with
      | Lp.Infeasible -> ()
      | Lp.Unbounded ->
        (* With binaries fixed or in [0,1]-implied rows this should not
           happen for well-posed models; treat as a dead branch. *)
        ()
      | Lp.Optimal (obj, x) ->
        let obj = obj +. const in
        if better obj then begin
          (* Most fractional branching variable. *)
          let pick = ref (-1) in
          let frac_dist = ref 0. in
          for v = 0 to nvars - 1 do
            if t.binary.(v) && fixed.(v) = None then begin
              let f = x.(v) -. Float.round x.(v) in
              let d = abs_float f in
              if d > int_eps && d > !frac_dist then begin
                frac_dist := d;
                pick := v
              end
            end
          done;
          if !pick < 0 then begin
            (* LP solution is integral on all binaries: feasible. *)
            let full = Array.copy x in
            Array.iteri
              (fun v fx -> match fx with Some value -> full.(v) <- value | None -> ())
              fixed;
            (* Round residual noise on binaries. *)
            Array.iteri
              (fun v b -> if b then full.(v) <- Float.round full.(v))
              t.binary;
            (* An integral solution found after the deadline is not
               latched: the result is already reported as [Timeout], and
               the incumbent must not depend on how far past the
               deadline this branch happened to run. *)
            if Mpl_util.Timer.expired budget then timed_out := true
            else if better obj then incumbent := Some (obj, full)
          end
          else begin
            let v = !pick in
            (* Explore the side the relaxation leans toward first. *)
            let first, second = if x.(v) >= 0.5 then (1., 0.) else (0., 1.) in
            fixed.(v) <- Some first;
            branch ();
            fixed.(v) <- Some second;
            branch ();
            fixed.(v) <- None
          end
        end
    end
  in
  branch ();
  if !timed_out then Timeout !incumbent
  else match !incumbent with None -> Infeasible | Some (obj, x) -> Optimal (obj, x)
