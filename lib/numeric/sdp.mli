(** Solver for the multiple-patterning coloring SDP
    (paper Eq. (2) for K = 4, Eq. (3) for general K):

    {v
      min   sum_(ij in CE) vi.vj  -  alpha * sum_(ij in SE) vi.vj
      s.t.  vi.vi = 1                    for all i
            vi.vj >= -1/(K-1)            for all ij in CE
    v}

    The paper uses CSDP; this repo substitutes two in-house methods (see
    DESIGN.md):

    - [Projected] (default for post-division piece sizes): projected
      subgradient on the Gram matrix X itself, with Dykstra alternating
      projections between the PSD cone (exact projection by Jacobi
      eigendecomposition) and the box {diag = 1, X_ij >= -1/(K-1) on CE,
      |X_ij| <= 1}. The problem is convex, so this converges to the true
      SDP optimum; at tens of vertices per piece the O(n^3)
      eigendecompositions are cheap.
    - [Lagrangian] (fallback for oversized pieces): low-rank
      Burer-Monteiro factorization optimized by Mixing-method coordinate
      descent, with augmented-Lagrangian multipliers for the conflict
      inequality.
    - [Penalty]: the one-sided quadratic-penalty variant, kept for the
      ablation bench.

    The production kernels run on a flat row-major [floatarray] Gram
    with edge-sparse gradient accumulation and preallocated scratch (the
    iteration loop allocates nothing); {!solve_dense} retains the
    original boxed [float array array] projected kernel as a reference —
    the flat path executes the identical float-operation sequence, so
    the two agree bit-for-bit (checked by [bench kernels --check] and
    the qcheck parity property).

    Consumers only read Gram entries [gram s i j], which is all the
    paper's backtrack / greedy mapping stages use. *)

type problem = {
  n : int;  (** number of vertices *)
  conflict_edges : (int * int) array;
  stitch_edges : (int * int) array;
  k : int;  (** number of colors (>= 2); bound is -1/(k-1) *)
  alpha : float;  (** stitch weight (paper: 0.1) *)
}

type mode =
  | Auto  (** [Projected] up to [projected_max] vertices, else [Lagrangian] *)
  | Projected
  | Lagrangian
  | Penalty

type options = {
  mode : mode;
  projected_max : int;  (** Auto threshold; default 150 *)
  pg_iters : int;  (** projected-gradient steps; default 60 *)
  pg_step : float;  (** initial step size (decays 1/sqrt t); default 0.6 *)
  dykstra_rounds : int;  (** projection rounds per step; default 3 *)
  rank : int option;  (** BM vector dimension; default max (k-1) 8 *)
  max_sweeps : int;  (** BM sweeps per inner solve; default 60 *)
  tol : float;  (** movement tolerance; default 1e-4 *)
  outer_rounds : int;  (** BM Lagrangian dual updates; default 12 *)
  dual_step : float;  (** BM dual ascent step; default 1.0 *)
  penalties : float list;  (** penalty-mode schedule; default [0;2;8] *)
  seed : int;  (** deterministic initialization *)
}

val default_options : options

type solution = {
  gram : floatarray;  (** the solved Gram matrix X, row-major n x n *)
  gn : int;  (** row length of [gram] *)
  objective : float;  (** paper objective (2)/(3) value at X *)
  iterations : int;
      (** work performed: projected-gradient steps ([Projected]) or
          Mixing-method sweeps (factorized modes) *)
  warm : bool;  (** whether a warm-start coloring actually seeded the solve *)
}

val solve : ?options:options -> ?warm:int array -> problem -> solution
(** [solve ?options ?warm p] solves the relaxation. When [warm] is given
    (a length-n coloring with values in [0, k)), the solver starts from
    that coloring's ideal Gram matrix — X_ij = 1 on same-color pairs and
    -1/(K-1) across colors, which is PSD and feasible — instead of the
    identity ([Projected]) or from the corresponding simplex color
    vectors instead of random ones (factorized modes, when the rank
    admits it). Warm-started [Projected] solves may additionally stop
    early once the per-step movement drops below [tol]; the cold path
    always runs the full schedule, keeping its output bit-identical to
    {!solve_dense}. Raises [Invalid_argument] if [warm] has the wrong
    length. *)

val solve_dense : ?options:options -> problem -> solution
(** Reference implementation of the [Projected] kernel on boxed
    [float array array] matrices with per-iteration allocation — the
    original code path, kept for parity testing and [bench kernels].
    Factorized modes are shared with {!solve} (they were always
    edge-sparse). The returned Gram is flattened for a uniform
    [solution] type. *)

val gram : solution -> int -> int -> float
(** [gram s i j] is [X_ij], clamped to [-1, 1]. *)

val ideal_offdiag : int -> float
(** [-1/(k-1)], the pairwise inner product of the K ideal color vectors
    (paper Fig. 3 for K = 4). *)
