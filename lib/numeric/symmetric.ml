(* Cyclic Jacobi eigendecomposition. Each rotation zeroes one
   off-diagonal pair; sweeps repeat until the off-diagonal mass is
   negligible. Quadratic convergence once nearly diagonal. *)
let eigh a0 =
  let n = Array.length a0 in
  let a = Array.map Array.copy a0 in
  let v = Array.init n (fun i -> Array.init n (fun j -> if i = j then 1. else 0.)) in
  let off () =
    let s = ref 0. in
    for p = 0 to n - 1 do
      for q = p + 1 to n - 1 do
        s := !s +. (a.(p).(q) *. a.(p).(q))
      done
    done;
    !s
  in
  let rotate p q =
    let apq = a.(p).(q) in
    if abs_float apq > 1e-13 then begin
      let tau = (a.(q).(q) -. a.(p).(p)) /. (2. *. apq) in
      let t =
        let s = if tau >= 0. then 1. else -1. in
        s /. (abs_float tau +. sqrt (1. +. (tau *. tau)))
      in
      let c = 1. /. sqrt (1. +. (t *. t)) in
      let s = t *. c in
      (* Update rows/columns p and q of A. *)
      for i = 0 to n - 1 do
        if i <> p && i <> q then begin
          let aip = a.(i).(p) and aiq = a.(i).(q) in
          a.(i).(p) <- (c *. aip) -. (s *. aiq);
          a.(p).(i) <- a.(i).(p);
          a.(i).(q) <- (s *. aip) +. (c *. aiq);
          a.(q).(i) <- a.(i).(q)
        end
      done;
      let app = a.(p).(p) and aqq = a.(q).(q) in
      a.(p).(p) <- app -. (t *. apq);
      a.(q).(q) <- aqq +. (t *. apq);
      a.(p).(q) <- 0.;
      a.(q).(p) <- 0.;
      for i = 0 to n - 1 do
        let vip = v.(i).(p) and viq = v.(i).(q) in
        v.(i).(p) <- (c *. vip) -. (s *. viq);
        v.(i).(q) <- (s *. vip) +. (c *. viq)
      done
    end
  in
  let max_sweeps = 30 in
  let rec sweeps k =
    if k < max_sweeps && off () > 1e-18 *. float_of_int (n * n) then begin
      for p = 0 to n - 1 do
        for q = p + 1 to n - 1 do
          rotate p q
        done
      done;
      sweeps (k + 1)
    end
  in
  if n > 0 then sweeps 0;
  let w = Array.init n (fun i -> a.(i).(i)) in
  (w, v)

let project_psd m =
  let n = Array.length m in
  let w, v = eigh m in
  let out = Array.make_matrix n n 0. in
  for e = 0 to n - 1 do
    if w.(e) > 0. then begin
      let we = w.(e) in
      for i = 0 to n - 1 do
        let vie = v.(i).(e) *. we in
        if vie <> 0. then
          for j = i to n - 1 do
            out.(i).(j) <- out.(i).(j) +. (vie *. v.(j).(e))
          done
      done
    end
  done;
  (* Mirror the upper triangle so the projection is exactly symmetric
     bit-for-bit: fl((a*w)*b) and fl((b*w)*a) can disagree in the last
     ulp, and downstream kernels rely on exact symmetry. *)
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      out.(j).(i) <- out.(i).(j)
    done
  done;
  out

let frobenius_distance a b =
  let n = Array.length a in
  let s = ref 0. in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let d = a.(i).(j) -. b.(i).(j) in
      s := !s +. (d *. d)
    done
  done;
  sqrt !s

(* ------------------------------------------------------------------ *)
(* Flat unboxed kernels. Same cyclic-Jacobi arithmetic as [eigh] above,
   executed in the same operation order so results are bit-identical,
   but on a single row-major [floatarray] (one contiguous block, no row
   pointers, no bounds checks) and into caller-provided buffers, so the
   projected SDP solver's hot loop allocates nothing. *)

module FA = Float.Array

let fget = FA.unsafe_get
let fset = FA.unsafe_set

(* Diagonalize [a] (n x n row-major, destroyed) in place; eigenvectors
   land in the ROWS of [v] (v.{e*n+i} is component i of eigenvector e),
   eigenvalues in [w]. Only the upper triangle of [a] is read or
   written — callers must pass an exactly symmetric matrix (the
   projection pipeline guarantees this by mirroring its outputs).
   Under that precondition the eigenpairs are bit-identical to [eigh]:
   every float operation consumes the same values in the same order,
   the dense kernel merely reads some of them from the mirror cell.
   Row-stored eigenvectors keep the per-rotation update on two
   contiguous rows; upper-triangle updates halve the A-matrix
   stores. *)
let eigh_flat ~n ~a ~v ~w =
  for i = 0 to (n * n) - 1 do
    fset v i 0.
  done;
  for i = 0 to n - 1 do
    fset v ((i * n) + i) 1.
  done;
  let off () =
    let s = ref 0. in
    for p = 0 to n - 1 do
      let rp = p * n in
      for q = p + 1 to n - 1 do
        let apq = fget a (rp + q) in
        s := !s +. (apq *. apq)
      done
    done;
    !s
  in
  let rotate p q =
    let rp = p * n and rq = q * n in
    let apq = fget a (rp + q) in
    if abs_float apq > 1e-13 then begin
      let tau = (fget a (rq + q) -. fget a (rp + p)) /. (2. *. apq) in
      let t =
        let s = if tau >= 0. then 1. else -1. in
        s /. (abs_float tau +. sqrt (1. +. (tau *. tau)))
      in
      let c = 1. /. sqrt (1. +. (t *. t)) in
      let s = t *. c in
      (* Upper triangle only: the pair {i,p} lives at cell
         (min, max), so the i <> p, q sweep splits into three
         branch-free ranges — strided column walks above p, then
         progressively contiguous row segments. Half the stores of the
         mirrored dense update; the lower triangle is never read. *)
      let ip = ref p and iq = ref q in
      for _ = 0 to p - 1 do
        let aip = fget a !ip and aiq = fget a !iq in
        fset a !ip ((c *. aip) -. (s *. aiq));
        fset a !iq ((s *. aip) +. (c *. aiq));
        ip := !ip + n;
        iq := !iq + n
      done;
      let iq = ref (((p + 1) * n) + q) in
      for i = p + 1 to q - 1 do
        let aip = fget a (rp + i) and aiq = fget a !iq in
        fset a (rp + i) ((c *. aip) -. (s *. aiq));
        fset a !iq ((s *. aip) +. (c *. aiq));
        iq := !iq + n
      done;
      for i = q + 1 to n - 1 do
        let aip = fget a (rp + i) and aiq = fget a (rq + i) in
        fset a (rp + i) ((c *. aip) -. (s *. aiq));
        fset a (rq + i) ((s *. aip) +. (c *. aiq))
      done;
      let app = fget a (rp + p) and aqq = fget a (rq + q) in
      fset a (rp + p) (app -. (t *. apq));
      fset a (rq + q) (aqq +. (t *. apq));
      fset a (rp + q) 0.;
      (* Eigenvector update: rows p and q of the transposed store,
         both contiguous. *)
      for i = 0 to n - 1 do
        let vip = fget v (rp + i) and viq = fget v (rq + i) in
        fset v (rp + i) ((c *. vip) -. (s *. viq));
        fset v (rq + i) ((s *. vip) +. (c *. viq))
      done
    end
  in
  let max_sweeps = 30 in
  let rec sweeps k =
    if k < max_sweeps && off () > 1e-18 *. float_of_int (n * n) then begin
      for p = 0 to n - 1 do
        for q = p + 1 to n - 1 do
          rotate p q
        done
      done;
      sweeps (k + 1)
    end
  in
  if n > 0 then sweeps 0;
  for i = 0 to n - 1 do
    fset w i (fget a ((i * n) + i))
  done

(* [dst] <- nearest-PSD projection of [src]; [work] is clobbered (the
   Jacobi working copy), [v]/[w] receive the eigendecomposition. All
   buffers are n*n (w: n); [dst] must not alias [src] or [work]. *)
let project_psd_flat ~n ~src ~work ~v ~w ~dst =
  FA.blit src 0 work 0 (n * n);
  eigh_flat ~n ~a:work ~v ~w;
  for i = 0 to (n * n) - 1 do
    fset dst i 0.
  done;
  (* Rank-one accumulation over positive eigenvalues, upper triangle
     only; with eigenvectors stored as rows the inner loop streams row
     e of [v] and row i of [dst], both contiguous. The mirror pass
     makes [dst] exactly symmetric bit-for-bit — fl((a*w)*b) and
     fl((b*w)*a) can disagree in the last ulp — which is what lets
     [eigh_flat] ignore the lower triangle. *)
  for e = 0 to n - 1 do
    let we = fget w e in
    if we > 0. then begin
      let re = e * n in
      for i = 0 to n - 1 do
        let vie = fget v (re + i) *. we in
        if vie <> 0. then begin
          let ri = i * n in
          for j = i to n - 1 do
            fset dst (ri + j) (fget dst (ri + j) +. (vie *. fget v (re + j)))
          done
        end
      done
    end
  done;
  for i = 0 to n - 1 do
    let ri = i * n in
    for j = i + 1 to n - 1 do
      fset dst ((j * n) + i) (fget dst (ri + j))
    done
  done
