(* Cyclic Jacobi eigendecomposition. Each rotation zeroes one
   off-diagonal pair; sweeps repeat until the off-diagonal mass is
   negligible. Quadratic convergence once nearly diagonal. *)
let eigh a0 =
  let n = Array.length a0 in
  let a = Array.map Array.copy a0 in
  let v = Array.init n (fun i -> Array.init n (fun j -> if i = j then 1. else 0.)) in
  let off () =
    let s = ref 0. in
    for p = 0 to n - 1 do
      for q = p + 1 to n - 1 do
        s := !s +. (a.(p).(q) *. a.(p).(q))
      done
    done;
    !s
  in
  let rotate p q =
    let apq = a.(p).(q) in
    if abs_float apq > 1e-13 then begin
      let tau = (a.(q).(q) -. a.(p).(p)) /. (2. *. apq) in
      let t =
        let s = if tau >= 0. then 1. else -1. in
        s /. (abs_float tau +. sqrt (1. +. (tau *. tau)))
      in
      let c = 1. /. sqrt (1. +. (t *. t)) in
      let s = t *. c in
      (* Update rows/columns p and q of A. *)
      for i = 0 to n - 1 do
        if i <> p && i <> q then begin
          let aip = a.(i).(p) and aiq = a.(i).(q) in
          a.(i).(p) <- (c *. aip) -. (s *. aiq);
          a.(p).(i) <- a.(i).(p);
          a.(i).(q) <- (s *. aip) +. (c *. aiq);
          a.(q).(i) <- a.(i).(q)
        end
      done;
      let app = a.(p).(p) and aqq = a.(q).(q) in
      a.(p).(p) <- app -. (t *. apq);
      a.(q).(q) <- aqq +. (t *. apq);
      a.(p).(q) <- 0.;
      a.(q).(p) <- 0.;
      for i = 0 to n - 1 do
        let vip = v.(i).(p) and viq = v.(i).(q) in
        v.(i).(p) <- (c *. vip) -. (s *. viq);
        v.(i).(q) <- (s *. vip) +. (c *. viq)
      done
    end
  in
  let max_sweeps = 30 in
  let rec sweeps k =
    if k < max_sweeps && off () > 1e-18 *. float_of_int (n * n) then begin
      for p = 0 to n - 1 do
        for q = p + 1 to n - 1 do
          rotate p q
        done
      done;
      sweeps (k + 1)
    end
  in
  if n > 0 then sweeps 0;
  let w = Array.init n (fun i -> a.(i).(i)) in
  (w, v)

let project_psd m =
  let n = Array.length m in
  let w, v = eigh m in
  let out = Array.make_matrix n n 0. in
  for e = 0 to n - 1 do
    if w.(e) > 0. then begin
      let we = w.(e) in
      for i = 0 to n - 1 do
        let vie = v.(i).(e) *. we in
        if vie <> 0. then
          for j = 0 to n - 1 do
            out.(i).(j) <- out.(i).(j) +. (vie *. v.(j).(e))
          done
      done
    end
  done;
  out

let frobenius_distance a b =
  let n = Array.length a in
  let s = ref 0. in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let d = a.(i).(j) -. b.(i).(j) in
      s := !s +. (d *. d)
    done
  done;
  sqrt !s

(* ------------------------------------------------------------------ *)
(* Flat unboxed kernels. Same cyclic-Jacobi arithmetic as [eigh] above,
   executed in the same operation order so results are bit-identical,
   but on a single row-major [floatarray] (one contiguous block, no row
   pointers, no bounds checks) and into caller-provided buffers, so the
   projected SDP solver's hot loop allocates nothing. *)

module FA = Float.Array

let fget = FA.unsafe_get
let fset = FA.unsafe_set

(* Diagonalize [a] (n x n row-major, destroyed) in place; eigenvectors
   land in the COLUMNS of [v] (v.{i*n+e} is component i of eigenvector
   e), eigenvalues in [w]. *)
let eigh_flat ~n ~a ~v ~w =
  for i = 0 to (n * n) - 1 do
    fset v i 0.
  done;
  for i = 0 to n - 1 do
    fset v ((i * n) + i) 1.
  done;
  let off () =
    let s = ref 0. in
    for p = 0 to n - 1 do
      for q = p + 1 to n - 1 do
        let apq = fget a ((p * n) + q) in
        s := !s +. (apq *. apq)
      done
    done;
    !s
  in
  let rotate p q =
    let apq = fget a ((p * n) + q) in
    if abs_float apq > 1e-13 then begin
      let tau = (fget a ((q * n) + q) -. fget a ((p * n) + p)) /. (2. *. apq) in
      let t =
        let s = if tau >= 0. then 1. else -1. in
        s /. (abs_float tau +. sqrt (1. +. (tau *. tau)))
      in
      let c = 1. /. sqrt (1. +. (t *. t)) in
      let s = t *. c in
      for i = 0 to n - 1 do
        if i <> p && i <> q then begin
          let aip = fget a ((i * n) + p) and aiq = fget a ((i * n) + q) in
          let nip = (c *. aip) -. (s *. aiq) in
          fset a ((i * n) + p) nip;
          fset a ((p * n) + i) nip;
          let niq = (s *. aip) +. (c *. aiq) in
          fset a ((i * n) + q) niq;
          fset a ((q * n) + i) niq
        end
      done;
      let app = fget a ((p * n) + p) and aqq = fget a ((q * n) + q) in
      fset a ((p * n) + p) (app -. (t *. apq));
      fset a ((q * n) + q) (aqq +. (t *. apq));
      fset a ((p * n) + q) 0.;
      fset a ((q * n) + p) 0.;
      for i = 0 to n - 1 do
        let vip = fget v ((i * n) + p) and viq = fget v ((i * n) + q) in
        fset v ((i * n) + p) ((c *. vip) -. (s *. viq));
        fset v ((i * n) + q) ((s *. vip) +. (c *. viq))
      done
    end
  in
  let max_sweeps = 30 in
  let rec sweeps k =
    if k < max_sweeps && off () > 1e-18 *. float_of_int (n * n) then begin
      for p = 0 to n - 1 do
        for q = p + 1 to n - 1 do
          rotate p q
        done
      done;
      sweeps (k + 1)
    end
  in
  if n > 0 then sweeps 0;
  for i = 0 to n - 1 do
    fset w i (fget a ((i * n) + i))
  done

(* [dst] <- nearest-PSD projection of [src]; [work] is clobbered (the
   Jacobi working copy), [v]/[w] receive the eigendecomposition. All
   buffers are n*n (w: n); [dst] must not alias [src] or [work]. *)
let project_psd_flat ~n ~src ~work ~v ~w ~dst =
  FA.blit src 0 work 0 (n * n);
  eigh_flat ~n ~a:work ~v ~w;
  for i = 0 to (n * n) - 1 do
    fset dst i 0.
  done;
  for e = 0 to n - 1 do
    let we = fget w e in
    if we > 0. then
      for i = 0 to n - 1 do
        let vie = fget v ((i * n) + e) *. we in
        if vie <> 0. then
          for j = 0 to n - 1 do
            fset dst ((i * n) + j)
              (fget dst ((i * n) + j) +. (vie *. fget v ((j * n) + e)))
          done
      done
  done
