(** Small dense float vectors (the unit "color vectors" of the SDP
    relaxation live in R^r for a configurable rank r).

    Backed by [floatarray]: the flat unboxed float representation, with
    bounds checks elided in the O(length) kernels ([dot] / [axpy] /
    [scale]) — these run inside the Mixing-method sweep, the innermost
    loop of the factorized SDP solver. *)

type t = floatarray

val zero : int -> t
val copy : t -> t

val of_array : float array -> t
val to_array : t -> float array

val get : t -> int -> float

val dot : t -> t -> float
val norm : t -> float

val axpy : alpha:float -> t -> t -> unit
(** [axpy ~alpha x y] sets [y <- alpha * x + y]. *)

val scale : float -> t -> unit
(** In-place scalar multiply. *)

val normalize : t -> unit
(** Rescale to unit norm. Vectors of norm below 1e-12 are replaced by the
    first canonical basis vector (an arbitrary deterministic direction,
    as the objective is indifferent there). *)

val random_unit : Mpl_util.Rng.t -> int -> t
(** Uniform-ish random unit vector by normalizing a cube sample. *)
