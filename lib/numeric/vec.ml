module FA = Float.Array

type t = floatarray

let zero n = FA.make n 0.

let copy = FA.copy

let of_array a = FA.init (Array.length a) (Array.unsafe_get a)

let to_array v = Array.init (FA.length v) (FA.unsafe_get v)

let get = FA.get

let dot a b =
  let s = ref 0. in
  for i = 0 to FA.length a - 1 do
    s := !s +. (FA.unsafe_get a i *. FA.unsafe_get b i)
  done;
  !s

let norm a = sqrt (dot a a)

let axpy ~alpha x y =
  for i = 0 to FA.length x - 1 do
    FA.unsafe_set y i ((alpha *. FA.unsafe_get x i) +. FA.unsafe_get y i)
  done

let scale c a =
  for i = 0 to FA.length a - 1 do
    FA.unsafe_set a i (c *. FA.unsafe_get a i)
  done

let normalize a =
  let n = norm a in
  if n < 1e-12 then begin
    FA.fill a 0 (FA.length a) 0.;
    FA.set a 0 1.
  end
  else scale (1. /. n) a

let random_unit rng r =
  let v = FA.init r (fun _ -> Mpl_util.Rng.float rng 2.0 -. 1.0) in
  normalize v;
  v
