(** Symmetric-matrix kernels for the projected SDP solver.

    Two families share the same cyclic-Jacobi arithmetic:

    - the dense [float array array] functions — the original reference
      kernels, kept for tests, parity benchmarks ([bench kernels]) and
      small one-off uses;
    - the [_flat] functions — the production hot path, operating on a
      single row-major [floatarray] (unboxed, contiguous, no per-row
      indirection) with caller-provided scratch buffers so the solver's
      iteration loop performs no allocation. They execute the identical
      operation sequence as the dense kernels, so their results are
      bit-identical — a guarantee the decomposer relies on to keep
      colorings reproducible across the kernel swap.

    Sizes here are post-division component sizes (tens of vertices), so
    O(n^3) cyclic Jacobi is the right tool. *)

val eigh : float array array -> float array * float array array
(** [eigh a] returns [(w, v)] with eigenvalues [w] and orthonormal
    eigenvectors as the COLUMNS of [v] ([v.(i).(j)] is component i of
    eigenvector j), such that [a = v diag(w) v^T]. [a] is not modified. *)

val project_psd : float array array -> float array array
(** Nearest (Frobenius) positive-semidefinite matrix: negative
    eigenvalues clipped to zero. *)

val frobenius_distance : float array array -> float array array -> float

val eigh_flat : n:int -> a:floatarray -> v:floatarray -> w:floatarray -> unit
(** Flat in-place Jacobi: diagonalizes [a] (n x n row-major, destroyed),
    writes the orthonormal eigenvectors into the ROWS of [v]
    ([v.{e*n+i}] is component i of eigenvector e — transposed relative
    to {!eigh}, so the hot update touches contiguous rows) and the
    eigenvalues into [w] (length n). [a] must be exactly symmetric:
    only its upper triangle is read or written (half the stores of the
    mirrored dense update). Under that precondition the eigenpairs are
    bit-identical to {!eigh}; only the storage layout differs. *)

val project_psd_flat :
  n:int ->
  src:floatarray ->
  work:floatarray ->
  v:floatarray ->
  w:floatarray ->
  dst:floatarray ->
  unit
(** [dst <- ] nearest-PSD projection of [src] (both n x n row-major).
    [src] must be exactly symmetric; [dst] is exactly symmetric
    bit-for-bit (upper triangle accumulated, lower mirrored — exactly
    as {!project_psd} does). [work] is clobbered (the Jacobi working
    copy); [v] and [w] receive the eigendecomposition. [dst] must not
    alias [src] or [work]. Bit-identical to {!project_psd}. *)
